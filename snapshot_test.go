package xmlsearch

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/jdewey"
	"repro/internal/occur"
	"repro/internal/score"
	"repro/internal/xmltree"
)

// The tests in this file exercise the snapshot-isolation contract: queries
// pin an immutable view, writers publish finished snapshots atomically, and
// the two never need external synchronization.

const hammerDoc = `<lib>` +
	`<shelf><b>alpha xml</b><b>beta data</b><b>gamma xml data</b></shelf>` +
	`<scratch>pad</scratch>` +
	`</lib>`

// TestConcurrentMutationHammer runs writers mutating a scratch subtree
// against readers querying every engine, with no locking outside the
// library. Run under -race this is the concurrency gate of the CI pipeline.
// Each query must return an internally consistent answer from SOME
// published snapshot: no error, stable results for the untouched content,
// and monotonically non-increasing top-K scores.
func TestConcurrentMutationHammer(t *testing.T) {
	idx, err := Open(strings.NewReader(hammerDoc))
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers      = 4
		mutationsPer = 120
		readers      = 6
	)
	var done atomic.Bool
	var wWG, rWG sync.WaitGroup

	errs := make(chan error, writers+readers)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Writers churn the scratch subtree only: insert a leaf at the front,
	// occasionally remove the current front child. The shelf content is
	// never touched, so readers can assert on it at every instant.
	for w := 0; w < writers; w++ {
		wWG.Add(1)
		go func(w int) {
			defer wWG.Done()
			for i := 0; i < mutationsPer; i++ {
				if i%3 == 2 {
					if err := idx.RemoveElement("1.2.1"); err != nil &&
						!strings.Contains(err.Error(), "no element") {
						fail(err)
						return
					}
					continue
				}
				if _, err := idx.InsertElement("1.2", 0, "n", "churn xml data"); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}

	type probe struct {
		query string
		algo  Algorithm
		sem   Semantics
		topK  int // 0: complete evaluation
	}
	probes := []probe{
		{"alpha xml", AlgoJoin, ELCA, 0},
		{"xml data", AlgoJoin, SLCA, 0},
		{"beta data", AlgoStack, ELCA, 0},
		{"gamma xml", AlgoIndexLookup, SLCA, 0},
		{"xml data", AlgoJoin, ELCA, 3},
		{"alpha xml", AlgoRDIL, ELCA, 3},
		{"xml data", AlgoHybrid, ELCA, 3},
		{"churn xml", AlgoJoin, ELCA, 5}, // races with the writers by design
	}
	checkResults := func(p probe, rs []Result) {
		prev := math.Inf(1)
		for _, r := range rs {
			if r.Score > prev {
				fail(errAt(p.query, "scores not non-increasing"))
				return
			}
			prev = r.Score
			if r.Dewey == "" || r.Path == "" || r.Level < 1 {
				fail(errAt(p.query, "malformed result"))
				return
			}
		}
		// The shelf content is immutable during the hammer, so queries
		// planted there must resolve on every snapshot.
		if p.query != "churn xml" && len(rs) == 0 {
			fail(errAt(p.query, "stable content vanished"))
		}
	}
	for r := 0; r < readers; r++ {
		rWG.Add(1)
		go func(r int) {
			defer rWG.Done()
			for i := 0; !done.Load(); i++ {
				p := probes[(r+i)%len(probes)]
				if p.topK == 0 {
					rs, err := idx.Search(p.query, SearchOptions{Semantics: p.sem, Algorithm: p.algo})
					if err != nil {
						fail(err)
						return
					}
					checkResults(p, rs)
					continue
				}
				if i%2 == 0 {
					rs, err := idx.TopK(p.query, p.topK, SearchOptions{Semantics: p.sem, Algorithm: p.algo})
					if err != nil {
						fail(err)
						return
					}
					checkResults(p, rs)
					continue
				}
				var rs []Result
				if err := idx.TopKStream(p.query, p.topK, SearchOptions{Semantics: p.sem},
					func(r Result) bool { rs = append(rs, r); return true }); err != nil {
					fail(err)
					return
				}
				if len(rs) > p.topK {
					fail(errAt(p.query, "stream over-delivered"))
					return
				}
				checkResults(p, rs)
			}
		}(r)
	}

	// Stop the readers once every writer has drained.
	wWG.Wait()
	done.Store(true)
	rWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// The writer metrics account every attempt: successes as inserts or
	// removes with a published snapshot each, tolerated races ("no element"
	// on an already-empty scratch) as errors.
	ws := idx.Stats().Writer
	if ws.Inserts+ws.Removes+ws.Errors != int64(writers*mutationsPer) {
		t.Fatalf("writer metrics account %d mutations, want %d",
			ws.Inserts+ws.Removes+ws.Errors, writers*mutationsPer)
	}
	if ws.Snapshots != ws.Inserts+ws.Removes {
		t.Fatalf("published %d snapshots for %d successful mutations", ws.Snapshots, ws.Inserts+ws.Removes)
	}

	// The final snapshot must be internally consistent across engines and
	// must agree (as a result set) with an index rebuilt from the final
	// document; scores differ only through the frozen corpus constant N.
	assertEnginesAgree(t, idx, []string{"alpha xml", "xml data", "beta data"})
}

type probeErr struct{ q, msg string }

func (e probeErr) Error() string { return e.q + ": " + e.msg }

func errAt(q, msg string) error { return probeErr{q, msg} }

// assertEnginesAgree cross-checks the complete evaluations and the rebuild.
func assertEnginesAgree(t *testing.T, idx *Index, queries []string) {
	t.Helper()
	var buf strings.Builder
	if err := idx.view().doc.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		base, err := idx.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []Algorithm{AlgoStack, AlgoIndexLookup} {
			alt, err := idx.Search(q, SearchOptions{Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			if len(alt) != len(base) {
				t.Fatalf("%q: engine %d found %d results, join found %d", q, algo, len(alt), len(base))
			}
			byID := map[string]float64{}
			for _, r := range base {
				byID[r.Dewey] = r.Score
			}
			for _, r := range alt {
				s, ok := byID[r.Dewey]
				if !ok || math.Abs(s-r.Score) > 1e-6*(1+math.Abs(s)) {
					t.Fatalf("%q: engine %d disagrees at %s: %v vs %v", q, algo, r.Dewey, r.Score, s)
				}
			}
		}
		ref, err := fresh.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(ref) != len(base) {
			t.Fatalf("%q: final state has %d results, rebuild has %d", q, len(base), len(ref))
		}
	}
}

// TestStreamServesPinnedSnapshot pins the snapshot contract down
// deterministically: a stream whose callback blocks while a mutation
// publishes mid-flight must keep serving the pre-mutation snapshot, and a
// stream started after the mutation must see the post-mutation state.
func TestStreamServesPinnedSnapshot(t *testing.T) {
	const doc = `<r><a>pinned one</a><b>pinned two</b><c>pinned three</c></r>`
	baseIdx, err := Open(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var want []Result
	if err := baseIdx.TopKStream("pinned", 10, SearchOptions{}, func(r Result) bool {
		want = append(want, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline stream empty")
	}

	idx, err := Open(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	firstResult := make(chan struct{})
	release := make(chan struct{})
	var got []Result
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- idx.TopKStream("pinned", 10, SearchOptions{}, func(r Result) bool {
			if len(got) == 0 {
				close(firstResult)
				<-release
			}
			got = append(got, r)
			return true
		})
	}()
	<-firstResult
	// Publish a mutation while the stream is blocked mid-delivery.
	if err := idx.RemoveElement("1.3"); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-streamDone; err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("pinned stream delivered %d results, want the pre-mutation %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Dewey != want[i].Dewey || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("result %d: %+v, want pre-mutation %+v", i, got[i], want[i])
		}
	}

	// A stream pinned after the publication sees the mutated document.
	var after []Result
	if err := idx.TopKStream("pinned", 10, SearchOptions{}, func(r Result) bool {
		after = append(after, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(after) != len(want)-1 {
		t.Fatalf("post-mutation stream delivered %d results, want %d", len(after), len(want)-1)
	}
}

// TestElemRankRefreshedOnMutation is the regression test for the stale-
// ElemRank bug: a structural mutation shifts the link-based rank of nodes
// far from the mutation site, so every list — not just the lists of the
// terms the mutation touched — must carry ranks of the post-mutation tree.
// The expected state is recomputed from scratch over the mutated document
// with the frozen corpus constant.
func TestElemRankRefreshedOnMutation(t *testing.T) {
	idx, err := Open(strings.NewReader(
		`<r><hub><a>zeta</a><b>mmm</b><c>mmm</c></hub><leaf>zeta</leaf></r>`), WithElemRank())
	if err != nil {
		t.Fatal(err)
	}
	// The inserted text introduces only the term "fresh", so the mutation's
	// own dirty set does not contain "zeta" or "mmm" — yet their ranks move
	// because the tree grew a child under the root.
	if _, err := idx.InsertElement("1", 2, "extra", "fresh"); err != nil {
		t.Fatal(err)
	}
	s := idx.view()
	exp := occur.ExtractN(s.doc, s.m.N)
	ranks := score.ElemRank(s.doc, score.DefaultElemRankParams())
	for term, want := range exp.Terms {
		got := s.m.Terms[term]
		if len(got) != len(want) {
			t.Fatalf("term %q: %d occurrences, want %d", term, len(got), len(want))
		}
		for i := range want {
			w := float64(want[i].Score) * ranks[want[i].Node.Ord]
			if math.Abs(float64(got[i].Score)-w) > 1e-6*(1+math.Abs(w)) {
				t.Fatalf("term %q occ %d: score %v, want fresh-ranked %v", term, i, got[i].Score, w)
			}
		}
	}
	// The published column store agrees with the occurrence map: every
	// engine returns those scores.
	assertEnginesAgree(t, idx, []string{"zeta", "mmm", "fresh"})
}

// TestSortByJDewey covers the rewritten single-allocation sort: an
// insertion out of number order (the gap mechanics of Section III-A hand
// earlier siblings larger JDewey numbers) must come out in sequence order,
// and occurrences with equal sequences must keep their input order.
func TestSortByJDewey(t *testing.T) {
	chain := func(seq ...uint32) *xmltree.Node {
		var parent *xmltree.Node
		for level, jd := range seq {
			parent = &xmltree.Node{Parent: parent, JD: jd, Level: level + 1}
		}
		return parent
	}
	// Nodes deliberately out of number order, with a duplicated sequence to
	// exercise stability (TF tags the original positions).
	occs := []occur.Occ{
		{Node: chain(1, 90, 5), TF: 0},
		{Node: chain(1, 10, 7), TF: 1},
		{Node: chain(1, 90, 2), TF: 2},
		{Node: chain(1, 10), TF: 3},
		{Node: chain(1, 10, 7), TF: 4}, // equal sequence to TF=1
		{Node: chain(1), TF: 5},
	}
	sortByJDewey(occs)
	for i := 1; i < len(occs); i++ {
		c := jdewey.Compare(occs[i-1].Node.JDeweySeq(), occs[i].Node.JDeweySeq())
		if c > 0 {
			t.Fatalf("occurrence %d out of JDewey order", i)
		}
		if c == 0 && occs[i-1].TF > occs[i].TF {
			t.Fatalf("equal sequences reordered: TF %d before TF %d", occs[i-1].TF, occs[i].TF)
		}
	}
	wantTF := []int{5, 3, 1, 4, 2, 0}
	for i, w := range wantTF {
		if occs[i].TF != w {
			t.Fatalf("position %d: TF %d, want %d", i, occs[i].TF, w)
		}
	}
	// The degenerate sizes must not allocate or panic.
	sortByJDewey(nil)
	sortByJDewey(occs[:1])
}

// TestPublishExpvarRebind is the regression test for the duplicate-name
// panic: republishing under a used name — same registry or another index's
// — must be a quiet rebind, not an expvar.Publish panic.
func TestPublishExpvarRebind(t *testing.T) {
	a := openSmall(t)
	b := openSmall(t)
	a.PublishExpvar("xkw_test_rebind")
	a.PublishExpvar("xkw_test_rebind") // idempotent
	b.PublishExpvar("xkw_test_rebind") // rebind to another index: last wins
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.PublishExpvar("xkw_test_rebind")
			b.PublishExpvar("xkw_test_rebind")
		}()
	}
	wg.Wait()
}
