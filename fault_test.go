package xmlsearch

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// Crash-injection tests for the full index directory (column store blobs
// plus document, numbering, and corpus names): a crash at any filesystem
// operation of Save must leave a directory from which Load serves exactly
// the previously committed index or exactly the new one.

const faultDocA = `<lib><book><title>sensor network design</title></book><book><title>query processing</title></book></lib>`
const faultDocB = `<lib><book><title>sensor fusion</title></book><paper><title>network query ranking</title></paper><paper><title>sensor query</title></paper></lib>`

func copyIndexDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// queryFingerprint captures an index's observable behaviour on a fixed
// query set.
func queryFingerprint(t *testing.T, ix *Index) [][]Result {
	t.Helper()
	var fp [][]Result
	for _, q := range []string{"sensor", "query", "sensor query", "network"} {
		rs, err := ix.Search(q, SearchOptions{})
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		fp = append(fp, rs)
	}
	return fp
}

func TestIndexSaveCrashInvariant(t *testing.T) {
	oldIdx, err := Open(strings.NewReader(faultDocA))
	if err != nil {
		t.Fatal(err)
	}
	newIdx, err := Open(strings.NewReader(faultDocB))
	if err != nil {
		t.Fatal(err)
	}
	base := t.TempDir()
	if err := oldIdx.Save(base); err != nil {
		t.Fatal(err)
	}
	oldFP := queryFingerprint(t, oldIdx)
	newFP := queryFingerprint(t, newIdx)
	if reflect.DeepEqual(oldFP, newFP) {
		t.Fatal("test needs distinguishable indexes")
	}

	completed := false
	for n := 1; n <= 96 && !completed; n++ {
		dir := copyIndexDir(t, base)
		fsys := faultinject.NewFaultFS(faultinject.OS())
		fsys.CrashAt(n)
		fsys.TornFraction(0.5)
		err := newIdx.saveFS(dir, fsys, nil)
		if !fsys.Crashed() {
			if err != nil {
				t.Fatalf("crash-free save failed: %v", err)
			}
			completed = true
		} else if err != nil && !errors.Is(err, faultinject.ErrCrashed) {
			t.Fatalf("crash at op %d surfaced as %v, want ErrCrashed", n, err)
		}

		loaded, lerr := Load(dir)
		if lerr != nil {
			t.Fatalf("crash at op %d left an unloadable index: %v", n, lerr)
		}
		if h := loaded.Health(); h.Degraded() {
			t.Fatalf("crash at op %d left a degraded index: %+v", n, h)
		}
		fp := queryFingerprint(t, loaded)
		if !reflect.DeepEqual(fp, oldFP) && !reflect.DeepEqual(fp, newFP) {
			t.Fatalf("crash at op %d mixed generations", n)
		}
	}
	if !completed {
		t.Fatal("save never ran to completion within the op budget")
	}
}

func makeCorpus(t *testing.T, docs ...string) *Corpus {
	t.Helper()
	readers := make([]io.Reader, len(docs))
	names := make([]string, len(docs))
	for i, d := range docs {
		readers[i] = strings.NewReader(d)
		names[i] = "doc" + string(rune('a'+i)) + ".xml"
	}
	c, err := OpenCorpusReaders(readers, names)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCorpusSaveCrashInvariant runs the same old-or-new check over a
// corpus save, which bundles the extra corpus.names file into the same
// committed generation — a crash must never pair one generation's names
// with another generation's index.
func TestCorpusSaveCrashInvariant(t *testing.T) {
	oldC := makeCorpus(t, faultDocA, faultDocB)
	newC := makeCorpus(t, faultDocB, faultDocA, faultDocA)
	base := t.TempDir()
	if err := oldC.Save(base); err != nil {
		t.Fatal(err)
	}

	completed := false
	for n := 1; n <= 96 && !completed; n++ {
		dir := copyIndexDir(t, base)
		fsys := faultinject.NewFaultFS(faultinject.OS())
		fsys.CrashAt(n)
		err := newC.Index.saveFS(dir, fsys,
			map[string][]byte{fileCorpusNames: encodeCorpusNames(newC.names)})
		if !fsys.Crashed() {
			if err != nil {
				t.Fatalf("crash-free save failed: %v", err)
			}
			completed = true
		} else if err != nil && !errors.Is(err, faultinject.ErrCrashed) {
			t.Fatalf("crash at op %d surfaced as %v", n, err)
		}
		loaded, lerr := LoadCorpus(dir)
		if lerr != nil {
			t.Fatalf("crash at op %d left an unloadable corpus: %v", n, lerr)
		}
		docs := loaded.Docs()
		switch {
		case reflect.DeepEqual(docs, oldC.Docs()):
			if loaded.Len() != oldC.Len() {
				t.Fatalf("crash at op %d: old names with %d nodes, want %d", n, loaded.Len(), oldC.Len())
			}
		case reflect.DeepEqual(docs, newC.Docs()):
			if loaded.Len() != newC.Len() {
				t.Fatalf("crash at op %d: new names with %d nodes, want %d", n, loaded.Len(), newC.Len())
			}
		default:
			t.Fatalf("crash at op %d mixed corpus names: %v", n, docs)
		}
	}
	if !completed {
		t.Fatal("corpus save never ran to completion within the op budget")
	}
}

// TestParseIndexMetaHardening exercises the numbering parser against the
// corruption shapes Load must reject: bad magic, bad flags, a node count
// larger than the payload could hold, truncation mid-varint, a zero or
// oversized number, and trailing garbage.
func TestParseIndexMetaHardening(t *testing.T) {
	idx, err := Open(strings.NewReader(faultDocA))
	if err != nil {
		t.Fatal(err)
	}
	good := idx.encodeMeta(idx.view())
	if _, jds, err := parseIndexMeta(good); err != nil || len(jds) != idx.Len() {
		t.Fatalf("round trip: %v, %d numbers (want %d)", err, len(jds), idx.Len())
	}
	// Legacy magic with the same body parses too.
	legacy := append([]byte(indexMetaMagic), good[len(indexMetaMagicV2):]...)
	if _, jds, err := parseIndexMeta(legacy); err != nil || len(jds) != idx.Len() {
		t.Fatalf("legacy magic: %v, %d numbers", err, len(jds))
	}

	bad := map[string][]byte{
		"empty":          {},
		"magic":          []byte("XKWMETA9\n\x00\x01\x01"),
		"flags":          append(append([]byte{}, good[:len(indexMetaMagicV2)]...), 7, 1, 1),
		"huge count":     append(append([]byte{}, good[:len(indexMetaMagicV2)+1]...), 0xff, 0xff, 0xff, 0xff, 0x0f),
		"truncated":      good[:len(good)-1],
		"zero number":    append(append([]byte{}, good[:len(indexMetaMagicV2)]...), 0, 1, 0),
		"trailing bytes": append(append([]byte{}, good...), 0x7f),
	}
	for name, data := range bad {
		if _, _, err := parseIndexMeta(data); err == nil {
			t.Errorf("%s: corrupt meta accepted", name)
		}
	}
}
