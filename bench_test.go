// Benchmark targets regenerating the paper's evaluation section (one per
// table/figure/ablation; see DESIGN.md's experiment index). Each
// sub-benchmark is one sweep point: its ns/op is the mean query time the
// corresponding figure plots. The dataset scale can be adjusted with the
// XKW_BENCH_SCALE environment variable (default 0.1); cmd/xkwbench runs
// the same sweeps at paper scale with tabular output.
//
// This file is an external test package (xmlsearch_test): the bench
// harness itself imports the library (its telemetry smoke exercises the
// planner and plan cache through the public API), so an in-package test
// importing bench would be an import cycle.
package xmlsearch_test

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	xmlsearch "repro"
	"repro/internal/bench"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/ixlookup"
	"repro/internal/obs"
	"repro/internal/stack"
	"repro/internal/topk"
)

var (
	benchOnce  sync.Once
	benchDBLP  *bench.Env
	benchXMark *bench.Env
)

func benchScale() float64 {
	if s := os.Getenv("XKW_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.1
}

func benchEnvs(b *testing.B) (*bench.Env, *bench.Env) {
	b.Helper()
	benchOnce.Do(func() {
		scale := benchScale()
		benchDBLP = bench.NewDBLPEnv(scale, 1)
		benchXMark = bench.NewXMarkEnv(scale, 1)
	})
	return benchDBLP, benchXMark
}

// BenchmarkTable1 regenerates the Table I index-size accounting; sizes are
// reported as metrics, the measured op is the serialization pass itself.
func BenchmarkTable1(b *testing.B) {
	dblp, xmark := benchEnvs(b)
	for _, e := range []*bench.Env{dblp, xmark} {
		b.Run(e.DS.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := e.Store.Stats()
				b.ReportMetric(float64(s.ColumnLists), "ILbytes")
				b.ReportMetric(float64(s.ColumnSparse), "sparsebytes")
				b.ReportMetric(float64(s.TopKLists), "topKbytes")
				b.ReportMetric(float64(e.Inv.EncodedSize()), "stackbytes")
				b.ReportMetric(float64(e.Inv.KeyPerPostingBTreeSize()), "btreebytes")
				b.ReportMetric(float64(e.Inv.ScoreOrderBTreeSize()), "rdilbtreebytes")
			}
		})
	}
}

// BenchmarkFigure9VaryLowFreq is Figure 9(a)-(d): complete result set,
// one low-frequency keyword plus k-1 high-frequency keywords. DBLP takes
// the full keyword sweep; XMark (whose deeper shape mostly changes
// constants, not orderings) is sampled at k=2.
func BenchmarkFigure9VaryLowFreq(b *testing.B) {
	dblp, xmark := benchEnvs(b)
	point := func(e *bench.Env, k, low int) {
		qs := e.BandQueries(1, k, low, 4)
		for name, run := range map[string]func(q []string){
			"join":  func(q []string) { e.RunJoin(q, core.ELCA, core.PlanAuto) },
			"stack": func(q []string) { e.RunStack(q, stack.ELCA) },
			"index": func(q []string) { e.RunIxlookup(q, ixlookup.ELCA) },
		} {
			b.Run(fmt.Sprintf("%s/k=%d/low=%d/%s", e.DS.Name, k, low, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					run(qs[i%len(qs)])
				}
			})
		}
	}
	for _, k := range []int{2, 3, 5} {
		for _, low := range dblp.DS.BandValues {
			point(dblp, k, low)
		}
	}
	for _, low := range xmark.DS.BandValues {
		point(xmark, 2, low)
	}
}

// BenchmarkFigure9EqualFreq is Figure 9(e)-(f): all keywords at the same
// frequency.
func BenchmarkFigure9EqualFreq(b *testing.B) {
	dblp, _ := benchEnvs(b)
	for _, k := range []int{2, 3, 5} {
		qs := dblp.EqualFreqQueries(1, k, dblp.DS.HighDF, 4)
		for name, run := range map[string]func(q []string){
			"join":  func(q []string) { dblp.RunJoin(q, core.ELCA, core.PlanAuto) },
			"stack": func(q []string) { dblp.RunStack(q, stack.ELCA) },
			"index": func(q []string) { dblp.RunIxlookup(q, ixlookup.ELCA) },
		} {
			b.Run(fmt.Sprintf("k=%d/df=%d/%s", k, dblp.DS.HighDF, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					run(qs[i%len(qs)])
				}
			})
		}
	}
}

// BenchmarkFigure10Random is Figure 10(a): top-10 over random
// (low-correlation) queries across the frequency bands.
func BenchmarkFigure10Random(b *testing.B) {
	dblp, _ := benchEnvs(b)
	for _, low := range dblp.DS.BandValues {
		qs := dblp.BandQueries(1, 2, low, 4)
		for name, run := range map[string]func(q []string){
			"topkjoin": func(q []string) { dblp.RunTopKJoin(q, 10, topk.StarJoin) },
			"joinfull": func(q []string) { dblp.RunJoinThenSort(q, 10) },
			"rdil":     func(q []string) { dblp.RunRDIL(q, 10) },
		} {
			b.Run(fmt.Sprintf("low=%d/%s", low, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					run(qs[i%len(qs)])
				}
			})
		}
	}
}

// BenchmarkFigure10Correlated is Figure 10(b)/(c): top-10 over the
// hand-picked correlated queries.
func BenchmarkFigure10Correlated(b *testing.B) {
	dblp, _ := benchEnvs(b)
	for qi, q := range dblp.CorrelatedQueries() {
		q := q
		if qi >= 2 {
			break // two representative queries; xkwbench sweeps them all
		}
		for name, run := range map[string]func(){
			"topkjoin": func() { dblp.RunTopKJoin(q, 10, topk.StarJoin) },
			"joinfull": func() { dblp.RunJoinThenSort(q, 10) },
			"rdil":     func() { dblp.RunRDIL(q, 10) },
		} {
			b.Run(fmt.Sprintf("q%d/%s", qi, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					run()
				}
			})
		}
	}
}

// BenchmarkAblationThreshold compares the Section IV-B star-join threshold
// against the classic HRJN bound; rows pulled per query is the metric the
// tightness claim is about.
func BenchmarkAblationThreshold(b *testing.B) {
	dblp, _ := benchEnvs(b)
	q := dblp.CorrelatedQueries()[0]
	for name, mode := range map[string]topk.ThresholdMode{
		"star":    topk.StarJoin,
		"classic": topk.ClassicHRJN,
	} {
		b.Run(name, func(b *testing.B) {
			var rows int
			for i := 0; i < b.N; i++ {
				_, st := dblp.RunTopKJoin(q, 10, mode)
				rows = st.RowsPulled
			}
			b.ReportMetric(float64(rows), "rows/query")
		})
	}
}

// BenchmarkAblationJoinPlan compares dynamic join selection against forced
// merge-only and index-only plans (Section III-C).
func BenchmarkAblationJoinPlan(b *testing.B) {
	dblp, _ := benchEnvs(b)
	low := dblp.DS.BandValues[len(dblp.DS.BandValues)-1]
	qs := dblp.BandQueries(1, 3, low, 4)
	for name, plan := range map[string]core.JoinPlan{
		"dynamic":   core.PlanAuto,
		"mergeonly": core.PlanMergeOnly,
		"indexonly": core.PlanIndexOnly,
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dblp.RunJoin(qs[i%len(qs)], core.ELCA, plan)
			}
		})
	}
}

// BenchmarkAblationCompression measures column encode+decode throughput
// and reports the compression ratio against raw (value, row) pairs.
func BenchmarkAblationCompression(b *testing.B) {
	dblp, _ := benchEnvs(b)
	words := dblp.Store.Words()
	b.Run("dblp", func(b *testing.B) {
		var compressed, raw int64
		var buf []byte
		for i := 0; i < b.N; i++ {
			w := words[i%len(words)]
			l := dblp.Store.List(w)
			buf, _ = l.AppendEncoded(buf[:0])
			compressed += int64(len(buf))
			for ci := range l.Cols {
				raw += int64(l.Cols[ci].NumEntries() * 8)
			}
		}
		if compressed > 0 {
			b.ReportMetric(float64(raw)/float64(compressed), "compression-ratio")
		}
	})
}

// BenchmarkTopK measures the join-based top-K star join with tracing
// disabled — the default configuration, whose only instrumentation cost
// is one nil check per site. BenchmarkTopKTraced runs the identical query
// with a live trace, bounding what -trace adds. Comparing the two (and
// BenchmarkTopK against its pre-instrumentation baseline; see
// EXPERIMENTS.md) verifies the zero-cost-when-disabled contract.
func BenchmarkTopK(b *testing.B) {
	dblp, _ := benchEnvs(b)
	q := dblp.CorrelatedQueries()[0]
	lists := make([]*colstore.TKList, len(q))
	for i, w := range q {
		lists[i] = dblp.Store.TopKList(w)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topk.Evaluate(lists, topk.Options{K: 10})
	}
}

// BenchmarkTopKTraced is BenchmarkTopK with a fresh trace per query.
func BenchmarkTopKTraced(b *testing.B) {
	dblp, _ := benchEnvs(b)
	q := dblp.CorrelatedQueries()[0]
	lists := make([]*colstore.TKList, len(q))
	for i, w := range q {
		lists[i] = dblp.Store.TopKList(w)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topk.Evaluate(lists, topk.Options{K: 10, Trace: obs.NewTrace()})
	}
}

// BenchmarkBuildWorkers measures the per-keyword-parallel column-store
// construction against the sequential build.
func BenchmarkBuildWorkers(b *testing.B) {
	dblp, _ := benchEnvs(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				colstore.BuildWorkers(dblp.M, workers)
			}
		})
	}
}

// BenchmarkIndexBuild measures end-to-end index construction, the fixed
// cost every engine's numbers sit on top of.
func BenchmarkIndexBuild(b *testing.B) {
	dblp, _ := benchEnvs(b)
	var xml []byte
	{
		var sb osWriteBuffer
		if err := dblp.DS.Doc.WriteXML(&sb); err != nil {
			b.Fatal(err)
		}
		xml = sb.buf
	}
	b.SetBytes(int64(len(xml)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xmlsearch.Open(bytes.NewReader(xml)); err != nil {
			b.Fatal(err)
		}
	}
}

type osWriteBuffer struct{ buf []byte }

func (w *osWriteBuffer) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}
