package xmlsearch

import (
	"context"
	"io"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/qlog"
)

// QueryStats is the per-query execution profile returned by the *Traced
// entry points: which engine ran, how long it took, and the full event
// trace (join-order decisions, plan switches, threshold updates, list
// decodes, early termination, cancellation strides).
type QueryStats struct {
	Query    string        `json:"query"`
	Keywords []string      `json:"keywords"`
	Engine   string        `json:"engine"`
	K        int           `json:"k,omitempty"` // 0 for a complete evaluation
	Results  int           `json:"results"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	Trace    *obs.Trace    `json:"trace"`
	// TraceID is the trace's ID in the index's trace store — nonzero only
	// when a store is installed (SetTraceStore) and tail sampling retained
	// this query's trace; /traces/{id} then serves it back.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Partial reports that the evaluation was aborted (deadline,
	// cancellation, or budget) before completing; with AllowPartial the
	// results are the certified-partial answer. UnseenBound is the
	// engine's abort-time upper bound on any unreturned result's score
	// (+Inf when the engine could not bound them).
	Partial     bool    `json:"partial,omitempty"`
	UnseenBound float64 `json:"unseen_bound,omitempty"`
	// Stages is the critical-path reduction of the trace: where the wall
	// time went, stage by stage, plus the straggler shard of a scattered
	// query (see obs.BreakdownOf).
	Stages *obs.StageBreakdown `json:"stages,omitempty"`
}

// RenderTrace writes the human-readable span-and-event timeline.
func (qs *QueryStats) RenderTrace(w io.Writer) {
	qs.Trace.Render(w)
}

// newQueryStats assembles the profile after the traced evaluation ended.
// By this point the *Obs path has already offered the trace to the trace
// store (if one is installed), so a retained trace carries its ID.
func newQueryStats(query string, engine obs.Engine, k, results int, meta exec.RunMeta, tr *obs.Trace) *QueryStats {
	qs := &QueryStats{
		Query:       query,
		Keywords:    Keywords(query),
		Engine:      engine.String(),
		K:           k,
		Results:     results,
		Elapsed:     tr.Duration(),
		Trace:       tr,
		TraceID:     tr.ID(),
		Partial:     meta.Partial,
		UnseenBound: meta.UnseenBound,
	}
	if spans := tr.Spans(); len(spans) > 0 {
		bd := obs.BreakdownOf(spans, qs.Elapsed)
		qs.Stages = &bd
	}
	return qs
}

// spanName names the root span of a traced query. Explicit algorithms
// name their engine's metrics slot; AlgoAuto names the planner — the
// engine it chose is recorded on the plan-switch event and in the
// returned QueryStats.Engine.
func spanName(a Algorithm, topK bool) string {
	if a == AlgoAuto {
		return "auto"
	}
	return engines.ObsFor(int(a), topK, obs.EngineJoin).String()
}

// newTrace builds a per-query trace honoring the installed trace store's
// span cap (TraceStore.SetMaxSpans; the trace default applies when no
// store is installed or the store leaves the cap unset).
func (ix *Index) newTrace() *obs.Trace {
	tr := obs.NewTrace()
	if n := ix.traces.Load().MaxSpans(); n > 0 {
		tr.SetMaxSpans(n)
	}
	return tr
}

// SearchTraced is SearchContext with per-query tracing enabled: it returns
// the results plus the execution profile. Tracing allocates a bounded
// event log per query; untraced queries pay only a nil check per
// instrumentation site.
func (ix *Index) SearchTraced(ctx context.Context, query string, opt SearchOptions) ([]Result, *QueryStats, error) {
	tr := ix.newTrace()
	sp := tr.Start("search/" + spanName(opt.Algorithm, false))
	rs, meta, eng, err := ix.searchObs(ctx, query, nil, opt, tr)
	tr.End(sp)
	return rs, newQueryStats(query, eng, 0, len(rs), meta, tr), err
}

// TopKTraced is TopKContext with per-query tracing enabled.
func (ix *Index) TopKTraced(ctx context.Context, query string, k int, opt SearchOptions) ([]Result, *QueryStats, error) {
	tr := ix.newTrace()
	sp := tr.Start("topk/" + spanName(opt.Algorithm, true))
	rs, meta, eng, err := ix.topKObs(ctx, query, nil, k, opt, tr)
	tr.End(sp)
	return rs, newQueryStats(query, eng, k, len(rs), meta, tr), err
}

// TopKStreamTraced is TopKStreamContext with per-query tracing enabled:
// fn receives each result the moment it is proven safe, and the returned
// profile covers the whole evaluation including the early-termination
// point.
func (ix *Index) TopKStreamTraced(ctx context.Context, query string, k int, opt SearchOptions, fn func(Result) bool) (*QueryStats, error) {
	tr := ix.newTrace()
	sp := tr.Start("topk-stream/" + obs.EngineTopK.String())
	delivered, meta, err := ix.topKStreamObs(ctx, query, nil, k, opt, fn, tr)
	tr.End(sp)
	return newQueryStats(query, obs.EngineTopK, k, delivered, meta, tr), err
}

// Metrics returns the index's live metrics registry: cumulative per-engine
// query counters and latency histograms plus the column-store decode
// counters. It is safe for concurrent use with queries; see
// Metrics.Snapshot, Metrics.WriteJSON-style exposition via Snapshot, and
// Metrics.PublishExpvar.
func (ix *Index) Metrics() *obs.Metrics { return ix.metrics }

// Stats returns a point-in-time snapshot of every engine counter,
// histogram, and store counter, taken without blocking concurrent queries.
func (ix *Index) Stats() obs.Snapshot { return ix.metrics.Snapshot() }

// SetSlowQueryThreshold enables the slow-query log: queries at or above d
// are captured (engine, query text, latency, result count, and — when the
// query was traced — the trace signature). Zero disables capture.
func (ix *Index) SetSlowQueryThreshold(d time.Duration) {
	ix.metrics.SetSlowQueryThreshold(d)
}

// SlowQueries returns the captured slow-query entries, oldest first.
func (ix *Index) SlowQueries() []obs.SlowQuery { return ix.metrics.SlowQueries() }

// SetTraceStore installs (or, with nil, removes) the tail-sampled trace
// store: every traced query that completes is offered to it, slow/error/
// cancelled traces are always retained until ring capacity, ordinary ones
// are reservoir-sampled, and retained trace IDs are linked into the
// latency histograms as exemplars. Untraced queries (plain Search/TopK)
// cost one extra pointer check and are never captured — capture requires
// the *Traced entry points that allocate a trace to begin with.
func (ix *Index) SetTraceStore(ts *obs.TraceStore) { ix.traces.Store(ts) }

// TraceStore returns the installed trace store (nil when capture is off).
func (ix *Index) TraceStore() *obs.TraceStore { return ix.traces.Load() }

// SetQueryLog installs (or, with nil, removes) the query flight recorder:
// every query that finishes — complete, partial, aborted, or failed — is
// offered to it as one compact structured record (keywords, plan, outcome
// class, latency, resource profile, result-set fingerprint). The offer is
// a non-blocking enqueue: a full recorder queue drops the record and
// counts the drop rather than ever stalling the query path. Untraced,
// unlogged queries cost one pointer check. The recorder's drop/rotation
// counters are wired into this index's metrics registry.
func (ix *Index) SetQueryLog(r *qlog.Recorder) {
	if r != nil {
		r.SetObs(&ix.metrics.QLog)
	}
	ix.qlog.Store(r)
}

// QueryLog returns the installed query flight recorder (nil when capture
// is off).
func (ix *Index) QueryLog() *qlog.Recorder { return ix.qlog.Load() }

// PublishExpvar publishes the metrics snapshot under the given expvar
// name. Publishing is idempotent and rebindable: the name is registered
// with the expvar package at most once, and publishing another index's
// metrics under the same name atomically redirects the variable to the
// newer registry (last publication wins) instead of panicking on the
// duplicate registration.
func (ix *Index) PublishExpvar(name string) { ix.metrics.PublishExpvar(name) }
