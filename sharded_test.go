package xmlsearch

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/qlog"
	"repro/internal/testutil"
)

// shardedTestXML is a small corpus with four top-level subtrees, so a
// 2-way partition puts two in each shard. "sensor" appears in every
// subtree; "alpha"/"omega" are shard-exclusive.
const shardedTestXML = `<bib>
  <book><title>sensor network alpha</title><author>smith</author></book>
  <book><title>sensor ranking</title><note>alpha survey</note></book>
  <paper><title>sensor keyword omega</title><author>jones</author></paper>
  <paper><abstract>omega sensor xml search</abstract></paper>
</bib>`

func mustSharded(t testing.TB, xml string, n int) *Sharded {
	t.Helper()
	sh, err := OpenSharded(strings.NewReader(xml), n)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// oracleResults is the unsharded reference answer a sharded index must
// reproduce: the complete evaluation with root-level (level 1) results
// dropped, since a sharded index never surfaces the global root (its
// text is unindexed and each shard's synthetic root is filtered, the
// same contract Corpus has for its synthetic root).
func oracleResults(t *testing.T, ix *Index, query string, opt SearchOptions) []Result {
	t.Helper()
	rs, err := ix.Search(query, opt)
	if err != nil {
		t.Fatalf("oracle %q: %v", query, err)
	}
	out := rs[:0:0]
	for _, r := range rs {
		if r.Level > 1 {
			out = append(out, r)
		}
	}
	return out
}

// TestShardedDifferential proves scatter-gather answers rank-for-rank
// identical to the unsharded oracle on randomized corpora: complete
// evaluations compare as exact result sets, top-K compares score
// vectors at every rank (engines may legitimately disagree on
// membership at a k-boundary score tie, as in the cross-engine
// differential), across shard counts, engines, and both semantics.
func TestShardedDifferential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		params := testutil.SmallParams()
		doc := testutil.RandomDoc(rand.New(rand.NewSource(seed)), params)
		oracle, err := FromDocument(doc.Clone())
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 4} {
			// NewSharded disassembles the document it is given, so each
			// shard count rebuilds the identical doc from the same seed.
			sh, err := NewSharded(testutil.RandomDoc(rand.New(rand.NewSource(seed)), params), n)
			if err != nil {
				// A random root may have no element children; nothing to
				// shard. Single-child roots clamp to one shard instead.
				if strings.Contains(err.Error(), "no top-level elements") {
					break
				}
				t.Fatalf("seed %d shards %d: %v", seed, n, err)
			}
			qrng := rand.New(rand.NewSource(seed * 1000))
			for qi := 0; qi < 5; qi++ {
				kws := 1 + qrng.Intn(3)
				query := strings.Join(testutil.RandomQuery(qrng, params.Vocab, kws), " ")
				if len(Keywords(query)) == 0 {
					continue
				}
				for _, sem := range []Semantics{ELCA, SLCA} {
					name := fmt.Sprintf("seed=%d shards=%d %q %v", seed, sh.Shards(), query, sem)
					ref := oracleResults(t, oracle, query, SearchOptions{Semantics: sem})

					for _, algo := range []Algorithm{AlgoJoin, AlgoStack, AlgoAuto} {
						rs, err := sh.Search(query, SearchOptions{Semantics: sem, Algorithm: algo})
						if err != nil {
							t.Fatalf("%s search algo %v: %v", name, algo, err)
						}
						assertSameResults(t, "sharded-"+algo.String(), name, ref, rs)
					}

					for _, k := range []int{1, 3, 25} {
						want := k
						if len(ref) < want {
							want = len(ref)
						}
						for _, algo := range []Algorithm{AlgoJoin, AlgoRDIL, AlgoHybrid, AlgoAuto} {
							top, err := sh.TopK(query, k, SearchOptions{Semantics: sem, Algorithm: algo})
							if err != nil {
								t.Fatalf("%s algo %v k=%d: %v", name, algo, k, err)
							}
							if len(top) != want {
								t.Fatalf("%s algo %v: top-%d returned %d of %d", name, algo, k, len(top), want)
							}
							for i := range top {
								if math.Abs(top[i].Score-ref[i].Score) > 1e-6*(1+math.Abs(ref[i].Score)) {
									t.Fatalf("%s algo %v rank %d: score %v, want %v", name, algo, i, top[i].Score, ref[i].Score)
								}
							}
						}
					}

					// The streaming path (threshold exchange + early shard
					// cancel) must deliver the same ranking.
					var streamed []Result
					if err := sh.TopKStream(query, 3, SearchOptions{Semantics: sem}, func(r Result) bool {
						streamed = append(streamed, r)
						return true
					}); err != nil {
						t.Fatalf("%s stream: %v", name, err)
					}
					want := 3
					if len(ref) < want {
						want = len(ref)
					}
					if len(streamed) != want {
						t.Fatalf("%s stream: %d results, want %d", name, len(streamed), want)
					}
					for i := range streamed {
						if math.Abs(streamed[i].Score-ref[i].Score) > 1e-6*(1+math.Abs(ref[i].Score)) {
							t.Fatalf("%s stream rank %d: score %v, want %v", name, i, streamed[i].Score, ref[i].Score)
						}
					}
				}
			}
		}
	}
}

// TestShardedCertifiedPartial: under a candidate budget with
// AllowPartial, the sharded answer settles with nil error, and every
// result it certifies as Exact truly belongs to the oracle answer with
// a score at or above the advertised unseen bound.
func TestShardedCertifiedPartial(t *testing.T) {
	partials := 0
	for seed := int64(1); seed <= 6; seed++ {
		params := testutil.MediumParams()
		doc := testutil.RandomDoc(rand.New(rand.NewSource(seed)), params)
		oracle, err := FromDocument(doc.Clone())
		if err != nil {
			t.Fatal(err)
		}
		sh, err := NewSharded(testutil.RandomDoc(rand.New(rand.NewSource(seed)), params), 4)
		if err != nil {
			// A random root may have no element children; nothing to shard.
			if strings.Contains(err.Error(), "no top-level elements") {
				continue
			}
			t.Fatal(err)
		}
		qrng := rand.New(rand.NewSource(seed * 77))
		for qi := 0; qi < 4; qi++ {
			query := strings.Join(testutil.RandomQuery(qrng, params.Vocab, 2), " ")
			if len(Keywords(query)) == 0 {
				continue
			}
			ref := oracleResults(t, oracle, query, SearchOptions{})
			byID := map[string]float64{}
			for _, r := range ref {
				byID[r.Dewey] = r.Score
			}
			opt := SearchOptions{Algorithm: AlgoJoin, AllowPartial: true, MaxCandidates: 2}
			rs, qs, err := sh.TopKTraced(context.Background(), query, 10, opt)
			if err != nil {
				t.Fatalf("seed %d %q: certified-partial settle failed: %v", seed, query, err)
			}
			if !qs.Partial {
				continue // budget not tripped on this query; nothing to certify
			}
			partials++
			for i, r := range rs {
				if !r.Exact {
					continue
				}
				if r.Score < qs.UnseenBound-1e-9 {
					t.Fatalf("seed %d %q rank %d: Exact below unseen bound: %v < %v",
						seed, query, i, r.Score, qs.UnseenBound)
				}
				s, ok := byID[r.Dewey]
				if !ok {
					t.Fatalf("seed %d %q rank %d: Exact result %s not in oracle answer", seed, query, i, r.Dewey)
				}
				if math.Abs(r.Score-s) > 1e-6*(1+math.Abs(s)) {
					t.Fatalf("seed %d %q rank %d: Exact result %s score %v, oracle %v", seed, query, i, r.Dewey, r.Score, s)
				}
			}
		}
	}
	if partials == 0 {
		t.Fatal("no query settled as certified-partial; the budget never tripped and the test checked nothing")
	}
}

// TestShardedPlanCacheCrossShardSurvival: a mutation on one shard
// invalidates only that shard's plan cache (its generation moved); the
// sibling shard's plans survive and keep serving hits.
func TestShardedPlanCacheCrossShardSurvival(t *testing.T) {
	sh := mustSharded(t, shardedTestXML, 2)
	if sh.Shards() != 2 {
		t.Fatalf("shards = %d, want 2", sh.Shards())
	}
	warm := func() {
		// "sensor" lives in both shards, so AlgoAuto plans on each.
		if _, err := sh.TopK("sensor", 3, SearchOptions{Algorithm: AlgoAuto}); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	before := sh.ShardInfo()
	for _, inf := range before {
		if inf.PlanCacheEntries == 0 {
			t.Fatalf("shard %d: plan cache empty after AlgoAuto warm-up", inf.ID)
		}
	}

	// Mutate shard 1 (global child 3 is the first paper, owned by the
	// second shard under a 2+2 split).
	if _, err := sh.InsertElement("1.3", 0, "note", "freshly inserted omega"); err != nil {
		t.Fatal(err)
	}
	after := sh.ShardInfo()
	if after[0].PlanCacheEntries != before[0].PlanCacheEntries {
		t.Fatalf("shard 0 plans did not survive a shard-1 write: %d -> %d",
			before[0].PlanCacheEntries, after[0].PlanCacheEntries)
	}
	if after[0].Generation != before[0].Generation {
		t.Fatalf("shard 0 generation moved on a shard-1 write: %d -> %d",
			before[0].Generation, after[0].Generation)
	}
	if after[1].PlanCacheEntries != 0 {
		t.Fatalf("shard 1 plans not evicted by its own write: %d entries", after[1].PlanCacheEntries)
	}
	if after[1].Generation == before[1].Generation {
		t.Fatal("shard 1 generation did not advance on its own write")
	}

	// Replanning repopulates only the written shard.
	warm()
	final := sh.ShardInfo()
	if final[1].PlanCacheEntries == 0 {
		t.Fatal("shard 1 did not replan after eviction")
	}
	if final[0].PlanCacheEntries != before[0].PlanCacheEntries {
		t.Fatalf("shard 0 plans churned: %d -> %d", before[0].PlanCacheEntries, final[0].PlanCacheEntries)
	}
}

// TestShardedSaveLoad round-trips a sharded index through its on-disk
// layout: auto-detection, identical answers, and writability after load.
func TestShardedSaveLoad(t *testing.T) {
	sh := mustSharded(t, shardedTestXML, 2)
	want, err := sh.Search("sensor", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir() + "/shidx"
	if err := sh.Save(dir); err != nil {
		t.Fatal(err)
	}
	if !IsShardedDir(dir) {
		t.Fatal("IsShardedDir = false for a saved sharded index")
	}
	ld, err := LoadSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ld.Shards() != sh.Shards() || ld.Len() != sh.Len() {
		t.Fatalf("loaded shape %d shards / %d nodes, want %d / %d", ld.Shards(), ld.Len(), sh.Shards(), sh.Len())
	}
	got, err := ld.Search("sensor", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "loaded", "sensor", want, got)

	// The loaded index accepts mutations and reflects them in queries.
	if _, err := ld.InsertElement("1.1", 0, "note", "reloaded zzzfresh"); err != nil {
		t.Fatal(err)
	}
	rs, err := ld.Search("zzzfresh", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("mutation after load is not searchable")
	}

	// Saving on top of the previous generation commits cleanly.
	if err := ld.Save(dir); err != nil {
		t.Fatal(err)
	}
	re, err := LoadSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := re.Search("zzzfresh", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2) != len(rs) {
		t.Fatalf("re-saved index lost the mutation: %d results, want %d", len(rs2), len(rs))
	}
}

// TestShardedFingerprintInvariance: the coordinator's flight-recorder
// fingerprint folds only the merged global rank order, so the same
// query fingerprints identically at shards=1 and shards=4.
func TestShardedFingerprintInvariance(t *testing.T) {
	fps := map[int]string{}
	for _, n := range []int{1, 4} {
		sh := mustSharded(t, shardedTestXML, n)
		rec, err := qlog.New(qlog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		sh.SetQueryLog(rec)
		if _, err := sh.TopK("sensor omega", 5, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
		// The recorder drains asynchronously; wait for the record.
		deadline := time.Now().Add(5 * time.Second)
		for len(rec.Recent()) < 1 {
			if time.Now().After(deadline) {
				t.Fatalf("shards=%d: no qlog record drained", n)
			}
			time.Sleep(time.Millisecond)
		}
		recs := rec.Recent()
		if len(recs) != 1 {
			t.Fatalf("shards=%d: %d records, want 1", n, len(recs))
		}
		if recs[0].Shards != n {
			t.Fatalf("shards=%d: record fan-out %d", n, recs[0].Shards)
		}
		if recs[0].Fingerprint == "" {
			t.Fatalf("shards=%d: empty fingerprint", n)
		}
		fps[n] = recs[0].Fingerprint
	}
	if fps[1] != fps[4] {
		t.Fatalf("fingerprint differs across shard counts: shards=1 %s, shards=4 %s", fps[1], fps[4])
	}
}

// TestShardedValidation: the sharded facade mirrors the Index's
// argument contract.
func TestShardedValidation(t *testing.T) {
	sh := mustSharded(t, shardedTestXML, 2)
	if _, err := sh.Search("", SearchOptions{}); err != ErrNoKeywords {
		t.Fatalf("empty query: %v, want ErrNoKeywords", err)
	}
	if _, err := sh.TopK("sensor", 0, SearchOptions{}); err == nil || !strings.Contains(err.Error(), "k must be positive") {
		t.Fatalf("k=0: %v", err)
	}
	if err := sh.TopKStream("sensor", 3, SearchOptions{}, nil); err == nil || !strings.Contains(err.Error(), "nil callback") {
		t.Fatalf("nil callback: %v", err)
	}
	if _, err := sh.Prepare("", SearchOptions{}); err != ErrNoKeywords {
		t.Fatalf("prepare empty: %v, want ErrNoKeywords", err)
	}
	if _, err := NewSharded(nil, 2); err == nil {
		t.Fatal("NewSharded(nil) succeeded")
	}
	if _, err := OpenSharded(strings.NewReader("<r><a>x</a><b>y</b></r>"), 2, WithElemRank()); err == nil ||
		!strings.Contains(err.Error(), "ElemRank") {
		t.Fatalf("sharded ElemRank: %v", err)
	}
}

// TestShardedPrepared: a prepared sharded query reuses its tokenization
// and observes mutations (per-execution snapshot pinning, per shard).
func TestShardedPrepared(t *testing.T) {
	sh := mustSharded(t, shardedTestXML, 2)
	pq, err := sh.Prepare("sensor alpha", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	adhoc, err := sh.Search("sensor alpha", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := pq.Search(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "sharded-prepared", "sensor alpha", adhoc, prepared)

	var streamed []Result
	if err := pq.TopKStream(context.Background(), 2, func(r Result) bool {
		streamed = append(streamed, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	top, err := pq.TopK(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "sharded-prepared-stream", "sensor alpha", top, streamed)

	before := len(prepared)
	if _, err := sh.InsertElement("1.2", 0, "note", "sensor alpha sensor alpha"); err != nil {
		t.Fatal(err)
	}
	after, err := pq.Search(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= before {
		t.Fatalf("prepared sharded query pinned to a stale snapshot: %d results, had %d", len(after), before)
	}
}
