// Package xmlsearch is a top-K keyword search engine for XML documents,
// implementing the join-based algorithms of Chen & Papakonstantinou,
// "Supporting Top-K Keyword Search in XML Databases" (ICDE 2010).
//
// A keyword query over an XML document returns the ELCAs or SLCAs — the
// lowest subtrees containing every keyword, under the standard exclusion
// semantics — ranked by a damped tf-idf score. Evaluation reduces to
// per-level relational joins over column-oriented JDewey inverted lists;
// the top-K engine additionally reads the lists in score order and emits
// results as soon as a threshold over the unseen results proves them safe,
// so Search with a small K typically touches a small fraction of the index.
//
// Basic usage:
//
//	idx, err := xmlsearch.Open(xmlFile)
//	results, err := idx.TopK("sensor network", 10, xmlsearch.SearchOptions{})
//
// The zero SearchOptions value selects ELCA semantics, the default damping
// factor 0.9, and the join-based engines. The baseline engines the paper
// compares against (stack-based, index-based, RDIL) are available through
// SearchOptions.Algorithm for side-by-side experimentation.
//
// # Durability
//
// Save writes the index directory as an atomically committed generation:
// every file is checksummed (CRC32C, per list and per file), fsynced, and
// published by a single rename of the CURRENT commit-point file. A crash at
// any earlier point leaves the previously committed index fully intact.
// Load verifies checksums lazily; damage to a single term's list
// quarantines that term (its queries return no occurrences) instead of
// failing the whole index, and Health reports the degradation so callers
// can choose degraded service over an outage. Damage to the small metadata
// files (CURRENT, lexicon, document, numbering) is a clean Load error —
// never a panic, never silently wrong results.
//
// # Concurrency
//
// An Index serves queries and mutations concurrently without any caller
// synchronization. Queries pin an immutable snapshot with one atomic load
// and run entirely against it; InsertElement and RemoveElement build the
// next snapshot copy-on-write and publish it with one atomic swap, so a
// query never blocks behind a writer and never observes a half-applied
// mutation. See DESIGN.md §9 for the snapshot lifecycle.
//
// # Cancellation
//
// Every engine has a Context variant (SearchContext, TopKContext,
// TopKStreamContext) that observes ctx cancellation and deadlines
// periodically inside its evaluation loops, returning ctx.Err() promptly
// instead of completing the scan. The Context entry points additionally
// contain panics from corrupted in-memory state, converting them to errors
// wrapping ErrInternal.
package xmlsearch

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/invindex"
	"repro/internal/jdewey"
	"repro/internal/obs"
	"repro/internal/occur"
	"repro/internal/qlog"
	"repro/internal/rdil"
	"repro/internal/score"
	"repro/internal/stack"
	"repro/internal/tokenize"
	"repro/internal/wal"
	"repro/internal/xmltree"
)

// Semantics selects which LCA variant defines the result set.
type Semantics int

const (
	// ELCA (Exclusive LCA): nodes containing at least one occurrence of
	// every keyword after excluding occurrences inside descendant subtrees
	// that already contain all keywords.
	ELCA Semantics = iota
	// SLCA (Smallest LCA): LCAs none of whose descendants is also an LCA.
	SLCA
)

// Algorithm selects the evaluation engine.
type Algorithm int

const (
	// AlgoJoin is the paper's join-based algorithm (the default): bottom-up
	// per-level joins over the JDewey column store, with dynamic merge/index
	// join selection. For TopK it uses the join-based top-K star join.
	AlgoJoin Algorithm = iota
	// AlgoStack is the stack-based baseline: a document-order merge of the
	// Dewey lists. TopK computes everything, then sorts.
	AlgoStack
	// AlgoIndexLookup is the index-based baseline driven by the shortest
	// list with binary-search probes. TopK computes everything, then sorts.
	AlgoIndexLookup
	// AlgoRDIL is the RDIL top-K baseline: score-ordered lists with
	// lookup-based result discovery under the classic TA threshold. It only
	// supports TopK.
	AlgoRDIL
	// AlgoHybrid (TopK only) is the Section V-D strategy: a cheap join-
	// cardinality estimate over the column runs decides between the top-K
	// star join (large result sets, i.e. correlated keywords) and the
	// complete join-based evaluation (small result sets).
	AlgoHybrid
	// AlgoAuto selects the engine per query with the cost-based planner:
	// per-keyword row counts are read from the lexicon (no list is
	// decoded), every capable engine is costed with the paper's
	// frequency-skew heuristics, and the cheapest runs. The plan is cached
	// in a bounded LRU keyed on (keywords, semantics, k-bucket, snapshot
	// generation), so hot repeated queries skip planning entirely; see
	// Prepare for skipping tokenization too.
	AlgoAuto
)

// String names the algorithm for display and error messages.
func (a Algorithm) String() string {
	switch a {
	case AlgoJoin:
		return "join"
	case AlgoStack:
		return "stack"
	case AlgoIndexLookup:
		return "ixlookup"
	case AlgoRDIL:
		return "rdil"
	case AlgoHybrid:
		return "hybrid"
	case AlgoAuto:
		return "auto"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// SearchOptions configures a query. The zero value is ready to use.
type SearchOptions struct {
	Semantics Semantics
	Algorithm Algorithm
	// Decay is the damping base d(Δl) = Decay^Δl applied to a keyword
	// occurrence at distance Δl below its result node; 0 selects the
	// default 0.9.
	Decay float64

	// Timeout, when positive, bounds the query's wall-clock time: the
	// evaluation is run under a context.WithTimeout derived from the
	// caller's context, and expiry aborts with an error matching
	// ErrDeadlineExceeded (or, with AllowPartial, returns the certified
	// partial answer produced so far).
	Timeout time.Duration
	// MaxDecodedBytes, when positive, bounds the total in-memory size of
	// the inverted lists the query may touch through the column store.
	// Exceeding it aborts with an error matching ErrBudgetExceeded.
	MaxDecodedBytes int64
	// MaxCandidates, when positive, bounds the number of candidate rows
	// the score-ordered top-K engines may pull. Exceeding it aborts with
	// an error matching ErrBudgetExceeded.
	MaxCandidates int64
	// AllowPartial converts a deadline/cancellation/budget abort into a
	// successful partial answer: the results produced before the abort are
	// returned with a nil error, each carrying Exact — true when the
	// engine's unseen-result bound proves the result belongs to the true
	// answer at its rank (see DESIGN.md §12). Without AllowPartial an
	// abort returns no results and the classified error.
	AllowPartial bool
}

// Result is one search hit.
type Result struct {
	// Path is the slash-separated element path from the root, e.g.
	// "/dblp/conf/year/paper".
	Path string
	// Dewey is the node's Dewey identifier in dotted notation.
	Dewey string
	// Level is the node's depth (root = 1).
	Level int
	// Score is the aggregated ranking score (higher is better).
	Score float64
	// Snippet is the node's direct text, truncated for display.
	Snippet string
	// Exact reports whether this result is certified to belong to the true
	// answer at its rank position. Always true for a completed query; on a
	// certified-partial answer (SearchOptions.AllowPartial) it is true
	// exactly when Score is at or above the engine's bound on every unseen
	// result, the Section IV-B/IV-C threshold at the abort point.
	Exact bool
}

// Index is a searchable in-memory index over one XML document. It is safe
// for fully concurrent use: queries (Search, TopK, TopKStream, and their
// Context/Traced variants) pin an immutable snapshot of the index with a
// single atomic load and never block, while incremental mutations
// (InsertElement, RemoveElement) build the next snapshot copy-on-write off
// to the side and publish it with one atomic swap. In-flight queries
// finish on the snapshot they pinned; queries arriving after the swap see
// the mutated index. No external synchronization is required.
type Index struct {
	// snap is the currently published immutable view; queries load it
	// exactly once and never observe a half-applied mutation.
	snap atomic.Pointer[snapshot]
	// writeMu serializes mutations (and only mutations — queries never
	// take it): one writer at a time clones, applies, and publishes.
	writeMu sync.Mutex

	cfg     config
	metrics *obs.Metrics
	// cache is the decoded-list cache shared by every snapshot of this
	// index (see colstore.Cache for why sharing across snapshots is safe).
	cache *colstore.Cache
	// plans caches cost-based query plans keyed on (keywords, semantics,
	// k-bucket, snapshot generation); mutations invalidate by generation.
	plans *exec.PlanCache
	// traces, when set, tail-samples completed traced queries (see
	// SetTraceStore); nil disables capture with one pointer check.
	traces atomic.Pointer[obs.TraceStore]
	// qlog, when set, records every finished query into the flight
	// recorder (see SetQueryLog); nil disables capture with one pointer
	// check.
	qlog atomic.Pointer[qlog.Recorder]
	// gen is the generation of the published snapshot: 1 at construction,
	// +1 per published mutation. pinned counts in-flight queries holding a
	// snapshot pin. Both feed the obs gauges.
	gen    atomic.Int64
	pinned atomic.Int64

	// epochs stamps materialized (delta-free) snapshots; every fast-path
	// successor inherits its base's epoch, so the compactor can tell "this
	// published chain still extends the state I folded" with one compare.
	epochs atomic.Uint64

	// log, when non-nil, is the durable write-ahead log every mutation is
	// appended to (and fsynced) before its snapshot publishes. Guarded by
	// writeMu; walDir/walFsys remember where and through which filesystem
	// the log's generations commit. walRecords counts records appended to
	// the current log file, the rotation trigger for slow-path-heavy
	// workloads.
	log        *wal.Log
	walDir     string
	walFsys    faultinject.FS
	walRecords atomic.Int64

	// compactMu serializes compactions (background and explicit); the
	// background trigger TryLocks and skips when one is already running.
	// compactThreshold is the delta-ops/WAL-records trigger (0 = default).
	compactMu        sync.Mutex
	compactThreshold atomic.Int64
	compactWG        sync.WaitGroup
	closed           atomic.Bool
}

// snapshot is one immutable view of the index: the document tree, the
// occurrence map, the column store, the JDewey maintenance handle, and the
// lazily-built document-order baselines. Everything a query touches hangs
// off the snapshot it pinned, so a concurrently published mutation can
// never tear a running evaluation. The lazily-built parts (baseline
// indexes, lazy list decodes inside the store) are internally synchronized
// and idempotent — they fill in caches without changing what the snapshot
// logically contains.
type snapshot struct {
	doc   *xmltree.Document
	m     *occur.Map
	store *colstore.Store
	enc   *jdewey.Encoding
	// gen is the generation this snapshot was published as; the planner
	// keys cached plans on it so a plan built from one snapshot's
	// statistics is never reused against another's.
	gen int64

	// delta, when non-nil, is the in-memory delta segment layered over the
	// base parts above (doc/m/enc are then the base, store is the merged
	// overlay); see delta.go. epoch identifies the materialized base this
	// snapshot's chain grows from.
	delta *deltaSeg
	epoch uint64

	// Lazily-built document-order baselines, built at most once per
	// snapshot on first use by the stack/index-lookup/RDIL engines.
	baseOnce sync.Once
	inv      *invindex.Index
	rdilIdx  *rdil.Index
	// Lazily merged base ⊕ delta occurrence map (delta snapshots only).
	occOnce sync.Once
	occ     *occur.Map
}

// newIndex assembles an Index around its parts and hooks the metrics
// registry into the column store so list opens, decodes, and quarantines
// are counted from the first query on. Disk-backed stores additionally get
// the shared size-bounded decode cache.
func newIndex(doc *xmltree.Document, m *occur.Map, store *colstore.Store, enc *jdewey.Encoding, cfg config) *Index {
	ix := &Index{cfg: cfg, metrics: obs.NewMetrics(), cache: colstore.NewCache(0), plans: exec.NewPlanCache(0)}
	ix.cache.SetObs(&ix.metrics.Store)
	ix.plans.SetObs(&ix.metrics.Planner)
	store.SetObs(&ix.metrics.Store)
	store.SetCache(ix.cache)
	ix.gen.Store(1)
	ix.metrics.SetGaugeSource(func() obs.Gauges {
		g := obs.Gauges{
			SnapshotGen:      ix.gen.Load(),
			PinnedQueries:    ix.pinned.Load(),
			CacheLists:       int64(ix.cache.Len()),
			CacheBytes:       ix.cache.Bytes(),
			PlanCacheEntries: int64(ix.plans.Len()),
			WALRecords:       ix.walRecords.Load(),
		}
		if d := ix.view().delta; d != nil {
			g.DeltaOps = int64(len(d.ops))
			g.DeltaTerms = int64(len(d.terms))
		}
		return g
	})
	ix.snap.Store(&snapshot{doc: doc, m: m, store: store, enc: enc, gen: 1})
	return ix
}

// SetPlanCacheCapacity rebounds the plan cache (entries, not bytes);
// n <= 0 restores the default bound. Shrinking evicts immediately.
func (ix *Index) SetPlanCacheCapacity(n int) { ix.plans.SetCapacity(n) }

// view returns the currently published snapshot. Callers use every part of
// the returned snapshot together; mixing parts of different snapshots is
// what the pinning discipline exists to prevent.
func (ix *Index) view() *snapshot { return ix.snap.Load() }

// Option configures index construction.
type Option func(*config)

type config struct {
	elemRank bool
	erParams score.ElemRankParams
}

// WithElemRank folds a link-based global-importance factor (a
// PageRank-style ElemRank over the containment edges, after [5]) into
// every occurrence's local score, the combined g(v, w) of Section II-B.
// Structurally central elements then outrank peripheral ones at equal
// text relevance.
func WithElemRank() Option {
	return func(c *config) {
		c.elemRank = true
		c.erParams = score.DefaultElemRankParams()
	}
}

// Open parses an XML document from r and builds the index: the document
// tree with Dewey and JDewey identifiers, and the column-oriented JDewey
// inverted lists (both the JDewey-ordered and the score-sorted variants).
func Open(r io.Reader, opts ...Option) (*Index, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: %w", err)
	}
	return FromDocument(doc, opts...)
}

// OpenFile opens and indexes the XML document at path.
func OpenFile(path string, opts ...Option) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: %w", err)
	}
	defer f.Close()
	return Open(f, opts...)
}

// FromDocument indexes an already-parsed document tree. The document is
// retained and must not be mutated afterwards. JDewey numbers are
// (re)assigned.
func FromDocument(doc *xmltree.Document, opts ...Option) (*Index, error) {
	if doc == nil || doc.Root == nil {
		return nil, fmt.Errorf("xmlsearch: empty document")
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	// A small reserved gap lets most future insertions keep their family's
	// JDewey numbers (Section III-A).
	enc := jdewey.Assign(doc, 4)
	var m *occur.Map
	if cfg.elemRank {
		m = occur.ExtractRanked(doc, score.ElemRank(doc, cfg.erParams))
	} else {
		m = occur.Extract(doc)
	}
	return newIndex(doc, m, colstore.Build(m), enc, cfg), nil
}

// Len returns the number of element nodes indexed.
func (ix *Index) Len() int { return ix.view().docLen() }

// Depth returns the document's tree depth.
func (ix *Index) Depth() int { return ix.view().docDepth() }

// rootChildCount returns the published snapshot's top-level child count,
// including delta-appended children not yet folded into the base tree —
// the count the sharded routing table is built from.
func (ix *Index) rootChildCount() int {
	s := ix.view()
	return len(s.visibleChildren(s.doc.Root))
}

// DocFreq returns the number of nodes directly containing the (normalized)
// keyword.
func (ix *Index) DocFreq(keyword string) int {
	w := tokenize.Normalize(keyword)
	if w == "" {
		return 0
	}
	return ix.view().store.DocFreq(w)
}

// Keywords tokenizes a free-text query into the distinct normalized
// keywords the engines evaluate. Stopwords are dropped.
func Keywords(query string) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range tokenize.Tokens(query) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// ErrNoKeywords is returned when a query contains no indexable keywords.
var ErrNoKeywords = fmt.Errorf("xmlsearch: query contains no indexable keywords")

// Search evaluates the complete result set of the keyword query, ranked by
// descending score. Queries with a keyword absent from the document return
// an empty (nil) slice.
func (ix *Index) Search(query string, opt SearchOptions) ([]Result, error) {
	return ix.SearchContext(context.Background(), query, opt)
}

// TopK returns the k best results of the keyword query in descending score
// order, using the top-K engine selected by opt.Algorithm (the join-based
// top-K star join by default).
func (ix *Index) TopK(query string, k int, opt SearchOptions) ([]Result, error) {
	return ix.TopKContext(context.Background(), query, k, opt)
}

// TopKStream evaluates a top-K query with the join-based top-K engine and
// hands each result to fn the moment the unseen-result threshold proves it
// safe — before the evaluation finishes ("output without blocking"). fn
// returning false cancels the remaining evaluation. Results arrive in
// descending score order.
func (ix *Index) TopKStream(query string, k int, opt SearchOptions, fn func(Result) bool) error {
	return ix.TopKStreamContext(context.Background(), query, k, opt, fn)
}

// File names of the xmlsearch layer inside an index directory; the column
// store adds its three (see internal/colstore/durable.go for the
// generation-and-CURRENT commit protocol every file shares).
const (
	fileDocument    = "document.xml"
	fileMeta        = "index.meta"
	fileCorpusNames = "corpus.names"
)

const (
	indexMetaMagic   = "XKWMETA1\n" // legacy v1: no footer, no corpus file
	indexMetaMagicV2 = "XKWMETA2\n"
)

// Save persists the index directory — the column store blobs, the source
// document, the JDewey numbering (which after incremental mutations is no
// longer the canonical fresh assignment), and the index flags — as one
// atomically committed, checksummed generation: a crash at any point
// leaves either the previous index or the new one fully intact, never a
// mix and never a torn file that loads.
func (ix *Index) Save(dir string) error {
	return ix.saveFS(dir, faultinject.OS(), nil)
}

// saveFS writes one complete generation — the column store's three files
// plus document.xml, index.meta, and any extra files — then publishes it
// with the single CommitGen rename. It is the injection point of the
// crash tests.
func (ix *Index) saveFS(dir string, fsys faultinject.FS, extra map[string][]byte) error {
	ix.writeMu.Lock()
	ontoWAL := ix.log != nil && dir == ix.walDir
	ix.writeMu.Unlock()
	if ontoWAL {
		// Saving onto the live WAL directory is exactly a compaction: fold
		// the delta, commit the new generation, rotate the log. (The WAL
		// layer never writes extra files; corpus manifests live in the
		// corpus root, not in member directories.)
		return ix.Compact()
	}
	// Pin one snapshot for the whole save: a mutation published midway
	// cannot mix generations inside the written directory. A pinned delta
	// snapshot is folded first — saved directories are always fully
	// materialized, so Load never needs a delta notion of its own.
	s := ix.view()
	if s.delta != nil {
		s = ix.materializeOf(s)
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("xmlsearch: save: %w", err)
	}
	gen, err := colstore.NextGen(dir)
	if err != nil {
		return fmt.Errorf("xmlsearch: save: %w", err)
	}
	if err := ix.writeGenFiles(s, dir, gen, fsys, extra); err != nil {
		return err
	}
	if err := colstore.CommitGen(dir, gen, fsys); err != nil {
		return err
	}
	colstore.RemoveStaleGens(dir, gen, fsys, fileDocument, fileMeta, fileCorpusNames)
	return nil
}

// writeGenFiles writes the uncommitted files of one generation — the
// column store's three plus document.xml, index.meta, and any extras —
// for a fully materialized snapshot. The caller commits (CommitGen) and
// sweeps stale generations; the compactor shares this with saveFS.
func (ix *Index) writeGenFiles(s *snapshot, dir string, gen uint64, fsys faultinject.FS, extra map[string][]byte) error {
	if err := s.store.SaveGen(dir, gen, fsys); err != nil {
		return err
	}
	var xml bytes.Buffer
	if err := s.doc.WriteXML(&xml); err != nil {
		return fmt.Errorf("xmlsearch: save: %w", err)
	}
	files := []struct {
		name string
		data []byte
	}{
		{fileDocument, xml.Bytes()},
		{fileMeta, ix.encodeMeta(s)},
	}
	extraNames := make([]string, 0, len(extra))
	for name := range extra {
		extraNames = append(extraNames, name)
	}
	sort.Strings(extraNames)
	for _, name := range extraNames {
		files = append(files, struct {
			name string
			data []byte
		}{name, extra[name]})
	}
	for _, f := range files {
		path := filepath.Join(dir, colstore.GenName(f.name, gen))
		if err := fsys.WriteFile(path, colstore.AppendFooter(f.data), 0o644); err != nil {
			return fmt.Errorf("xmlsearch: save %s: %w", f.name, err)
		}
	}
	return nil
}

// encodeMeta serializes the index flags and the preorder JDewey numbering
// of the pinned snapshot, one uvarint per node.
func (ix *Index) encodeMeta(s *snapshot) []byte {
	jd := []byte(indexMetaMagicV2)
	if ix.cfg.elemRank {
		jd = append(jd, 1)
	} else {
		jd = append(jd, 0)
	}
	jd = binary.AppendUvarint(jd, uint64(s.doc.Len()))
	for _, n := range s.doc.Nodes {
		jd = binary.AppendUvarint(jd, uint64(n.JD))
	}
	return jd
}

// parseIndexMeta decodes an index.meta payload (either magic). The node
// count is bounded by the bytes that could possibly hold that many varints
// before anything is allocated, every number must fit a nonzero uint32,
// and bytes after the last varint are rejected — a flipped length byte
// yields an error, not a huge allocation or a silently misnumbered tree.
func parseIndexMeta(meta []byte) (elemRank bool, jds []uint32, err error) {
	if len(meta) < len(indexMetaMagic)+1 ||
		(string(meta[:len(indexMetaMagic)]) != indexMetaMagic &&
			string(meta[:len(indexMetaMagicV2)]) != indexMetaMagicV2) {
		return false, nil, fmt.Errorf("xmlsearch: load: not an index.meta file")
	}
	switch meta[len(indexMetaMagic)] {
	case 0:
	case 1:
		elemRank = true
	default:
		return false, nil, fmt.Errorf("xmlsearch: load: bad index flags %#x", meta[len(indexMetaMagic)])
	}
	off := len(indexMetaMagic) + 1
	count, sz := binary.Uvarint(meta[off:])
	if sz <= 0 {
		return false, nil, fmt.Errorf("xmlsearch: load: truncated numbering header")
	}
	off += sz
	if count > uint64(len(meta)-off) {
		return false, nil, fmt.Errorf("xmlsearch: load: numbering claims %d nodes, %d bytes remain", count, len(meta)-off)
	}
	jds = make([]uint32, count)
	for i := range jds {
		v, sz := binary.Uvarint(meta[off:])
		if sz <= 0 || v == 0 || v > 1<<32-1 {
			return false, nil, fmt.Errorf("xmlsearch: load: truncated numbering at node %d", i)
		}
		jds[i] = uint32(v)
		off += sz
	}
	if off != len(meta) {
		return false, nil, fmt.Errorf("xmlsearch: load: %d trailing bytes after numbering", len(meta)-off)
	}
	return elemRank, jds, nil
}

// Load opens an index directory written by Save: the column store decodes
// (and checksum-verifies) lazily, the document is re-parsed for result
// materialization, and the saved JDewey numbering is adopted so the blobs
// and the tree agree even when the index had been mutated incrementally
// before saving. Damage to individual term lists degrades only those terms
// (see Health); damage to the metadata files is a clean error here.
func Load(dir string) (*Index, error) {
	store, err := colstore.Open(dir)
	if err != nil {
		return nil, err
	}
	gen, v2, err := colstore.CurrentGen(dir)
	if err != nil {
		return nil, err
	}
	readFile := func(base string) ([]byte, error) {
		data, err := os.ReadFile(filepath.Join(dir, genFileName(base, gen, v2)))
		if err != nil {
			return nil, fmt.Errorf("xmlsearch: load: %w", err)
		}
		if v2 {
			payload, ferr := colstore.StripFooter(data)
			if ferr != nil {
				return nil, fmt.Errorf("xmlsearch: load %s: %w", base, ferr)
			}
			return payload, nil
		}
		return data, nil
	}
	docRaw, err := readFile(fileDocument)
	if err != nil {
		return nil, err
	}
	doc, err := xmltree.Parse(bytes.NewReader(docRaw))
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: load: %w", err)
	}
	meta, err := readFile(fileMeta)
	if err != nil {
		return nil, err
	}
	elemRank, jds, err := parseIndexMeta(meta)
	if err != nil {
		return nil, err
	}
	var cfg config
	if elemRank {
		cfg.elemRank = true
		cfg.erParams = score.DefaultElemRankParams()
	}
	if len(jds) != doc.Len() {
		return nil, fmt.Errorf("xmlsearch: load: numbering covers %d nodes, document has %d", len(jds), doc.Len())
	}
	for i, n := range doc.Nodes {
		n.JD = jds[i]
	}
	enc, err := jdewey.Adopt(doc, 4)
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: load: %w", err)
	}
	// Rebuild the occurrence map against the frozen corpus constant the
	// saved scores were computed with.
	var m *occur.Map
	var ix *Index
	if cfg.elemRank {
		m = occur.ExtractRanked(doc, score.ElemRank(doc, cfg.erParams))
		m.N = store.N
		// Rank factors are position-dependent; rebuild the store from the
		// recomputed map rather than trusting potentially stale blobs.
		ix = newIndex(doc, m, colstore.Build(m), enc, cfg)
	} else {
		m = occur.ExtractN(doc, store.N)
		ix = newIndex(doc, m, store, enc, cfg)
	}
	if v2 {
		if err := ix.attachWAL(dir, gen); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// attachWAL completes a Load on a WAL-enabled directory: recover the
// committed generation's log, replay its acknowledged records through the
// normal mutation path (the log is not attached yet, so the replay is not
// re-logged), and attach the open log so subsequent mutations append to
// it. A directory without wal.<gen> is a plain snapshot directory and
// loads unchanged. The loaded base plus the replayed records reconstructs
// exactly the acknowledged state: recovery already dropped any torn tail
// (those mutations were never acknowledged), and a CRC-valid record that
// fails to re-apply means the directory does not match its log — a load
// error, never a partially applied index.
func (ix *Index) attachWAL(dir string, gen uint64) error {
	path := filepath.Join(dir, wal.FileName(gen))
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("xmlsearch: load: %w", err)
	}
	log, res, err := wal.Open(faultinject.OS(), path)
	if err != nil {
		return fmt.Errorf("xmlsearch: load: %w", err)
	}
	// Suppress background compaction during replay (there is no log to
	// rotate yet); restore the configured trigger after.
	saved := ix.compactThreshold.Load()
	ix.compactThreshold.Store(-1)
	for i, rec := range res.Records {
		mut, derr := decodeMutationRecord(rec)
		if derr == nil {
			if mut.Remove {
				derr = ix.RemoveElement(mut.ID)
			} else {
				_, derr = ix.InsertElement(mut.ID, mut.Pos, mut.Tag, mut.Text)
			}
		}
		if derr != nil {
			log.Close()
			return fmt.Errorf("xmlsearch: load: wal replay record %d: %w", i, derr)
		}
	}
	ix.compactThreshold.Store(saved)
	ix.metrics.WAL.RecordReplay(len(res.Records), res.QuarantinedBytes)
	ix.writeMu.Lock()
	ix.log = log
	ix.walDir = dir
	ix.walFsys = faultinject.OS()
	ix.walRecords.Store(int64(len(res.Records)))
	ix.writeMu.Unlock()
	return nil
}

// genFileName resolves a base file name within a loaded index directory:
// generation-suffixed on v2 layouts, bare on legacy ones.
func genFileName(base string, gen uint64, v2 bool) string {
	if v2 {
		return colstore.GenName(base, gen)
	}
	return base
}

// TermFault is one quarantined keyword in a Health report.
type TermFault struct {
	Term string // the normalized keyword
	Err  string // what its on-disk bytes failed
}

// Health is the degradation report of a loaded index. Quarantined keywords
// read as absent — queries containing them return no results — while every
// other keyword keeps serving exact results; FileDamage lists file-level
// corruption not attributable to a single keyword.
type Health struct {
	Format      int // 0 in-memory, 1 legacy on-disk, 2 checksummed
	Terms       int
	Quarantined []TermFault
	FileDamage  []string
}

// Degraded reports whether any damage was detected.
func (h Health) Degraded() bool { return len(h.Quarantined) > 0 || len(h.FileDamage) > 0 }

// Health eagerly verifies every list in the index (checksums plus
// structural invariants) and reports what, if anything, is damaged. After
// Load succeeds on a partially corrupted directory this is how a caller
// distinguishes a fully intact index from degraded service.
func (ix *Index) Health() Health {
	sh := ix.view().store.Health()
	h := Health{Format: sh.Format, Terms: sh.Terms, FileDamage: sh.FileDamage}
	for _, q := range sh.Quarantined {
		h.Quarantined = append(h.Quarantined, TermFault{Term: q.Term, Err: q.Err})
	}
	return h
}

// --- materialization and adapters ---

const snippetLen = 80

func (s *snapshot) materializeJoin(rs []core.Result) []Result {
	out := make([]Result, 0, len(rs))
	for _, r := range rs {
		n := s.nodeByJDewey(r.Level, r.Value)
		if n == nil {
			continue
		}
		out = append(out, materializeNode(n, r.Score))
	}
	return out
}

func (s *snapshot) materializeDewey(id []uint32, score float64) Result {
	n := s.nodeByDewey(id)
	if n == nil {
		return Result{Dewey: "?", Score: score, Exact: true}
	}
	return materializeNode(n, score)
}

func materializeNode(n *xmltree.Node, s float64) Result {
	snippet := n.Text
	if len(snippet) > snippetLen {
		cut := snippetLen
		for cut > 0 && !utf8.RuneStart(snippet[cut]) {
			cut--
		}
		snippet = snippet[:cut] + "…"
	}
	return Result{
		Path:    n.Path(),
		Dewey:   n.Dewey.String(),
		Level:   n.Level,
		Score:   s,
		Snippet: snippet,
		// Materialized results default to exact; a certified-partial settle
		// recomputes Exact against the abort-time unseen bound.
		Exact: true,
	}
}

func (s *snapshot) invLists(keywords []string) []*invindex.List {
	s.ensureInv()
	lists := make([]*invindex.List, len(keywords))
	for i, w := range keywords {
		lists[i] = s.inv.Get(w)
	}
	return lists
}

// invListsObs is invLists with per-query tracing: one list-open event per
// keyword (the document-order baselines have no block decoding, so only
// the row counts are meaningful).
func (s *snapshot) invListsObs(keywords []string, tr *obs.Trace) []*invindex.List {
	lists := s.invLists(keywords)
	if tr != nil {
		for i, l := range lists {
			if l == nil {
				tr.ListOpen(keywords[i], 0, 0, 0)
				continue
			}
			tr.ListOpen(l.Word, l.Len(), 0, 0)
		}
	}
	return lists
}

// ensureInv builds the document-order baseline indexes at most once per
// snapshot. A freshly published snapshot starts without them — the paper's
// own index (the column store) is maintained incrementally, while the
// baselines simply rebuild from the snapshot's occurrence map on first
// baseline query.
func (s *snapshot) ensureInv() {
	s.baseOnce.Do(func() {
		s.inv = invindex.Build(s.occMap())
		s.rdilIdx = rdil.NewIndex(s.inv)
	})
}

func coreSem(s Semantics) core.Semantics {
	if s == SLCA {
		return core.SLCA
	}
	return core.ELCA
}

func stackSem(s Semantics) stack.Semantics {
	if s == SLCA {
		return stack.SLCA
	}
	return stack.ELCA
}

func rdilSem(s Semantics) rdil.Semantics {
	if s == SLCA {
		return rdil.SLCA
	}
	return rdil.ELCA
}
