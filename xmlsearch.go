// Package xmlsearch is a top-K keyword search engine for XML documents,
// implementing the join-based algorithms of Chen & Papakonstantinou,
// "Supporting Top-K Keyword Search in XML Databases" (ICDE 2010).
//
// A keyword query over an XML document returns the ELCAs or SLCAs — the
// lowest subtrees containing every keyword, under the standard exclusion
// semantics — ranked by a damped tf-idf score. Evaluation reduces to
// per-level relational joins over column-oriented JDewey inverted lists;
// the top-K engine additionally reads the lists in score order and emits
// results as soon as a threshold over the unseen results proves them safe,
// so Search with a small K typically touches a small fraction of the index.
//
// Basic usage:
//
//	idx, err := xmlsearch.Open(xmlFile)
//	results, err := idx.TopK("sensor network", 10, xmlsearch.SearchOptions{})
//
// The zero SearchOptions value selects ELCA semantics, the default damping
// factor 0.9, and the join-based engines. The baseline engines the paper
// compares against (stack-based, index-based, RDIL) are available through
// SearchOptions.Algorithm for side-by-side experimentation.
package xmlsearch

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"unicode/utf8"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/invindex"
	"repro/internal/ixlookup"
	"repro/internal/jdewey"
	"repro/internal/occur"
	"repro/internal/rdil"
	"repro/internal/score"
	"repro/internal/stack"
	"repro/internal/tokenize"
	"repro/internal/topk"
	"repro/internal/xmltree"
)

// Semantics selects which LCA variant defines the result set.
type Semantics int

const (
	// ELCA (Exclusive LCA): nodes containing at least one occurrence of
	// every keyword after excluding occurrences inside descendant subtrees
	// that already contain all keywords.
	ELCA Semantics = iota
	// SLCA (Smallest LCA): LCAs none of whose descendants is also an LCA.
	SLCA
)

// Algorithm selects the evaluation engine.
type Algorithm int

const (
	// AlgoJoin is the paper's join-based algorithm (the default): bottom-up
	// per-level joins over the JDewey column store, with dynamic merge/index
	// join selection. For TopK it uses the join-based top-K star join.
	AlgoJoin Algorithm = iota
	// AlgoStack is the stack-based baseline: a document-order merge of the
	// Dewey lists. TopK computes everything, then sorts.
	AlgoStack
	// AlgoIndexLookup is the index-based baseline driven by the shortest
	// list with binary-search probes. TopK computes everything, then sorts.
	AlgoIndexLookup
	// AlgoRDIL is the RDIL top-K baseline: score-ordered lists with
	// lookup-based result discovery under the classic TA threshold. It only
	// supports TopK.
	AlgoRDIL
	// AlgoHybrid (TopK only) is the Section V-D strategy: a cheap join-
	// cardinality estimate over the column runs decides between the top-K
	// star join (large result sets, i.e. correlated keywords) and the
	// complete join-based evaluation (small result sets).
	AlgoHybrid
)

// SearchOptions configures a query. The zero value is ready to use.
type SearchOptions struct {
	Semantics Semantics
	Algorithm Algorithm
	// Decay is the damping base d(Δl) = Decay^Δl applied to a keyword
	// occurrence at distance Δl below its result node; 0 selects the
	// default 0.9.
	Decay float64
}

// Result is one search hit.
type Result struct {
	// Path is the slash-separated element path from the root, e.g.
	// "/dblp/conf/year/paper".
	Path string
	// Dewey is the node's Dewey identifier in dotted notation.
	Dewey string
	// Level is the node's depth (root = 1).
	Level int
	// Score is the aggregated ranking score (higher is better).
	Score float64
	// Snippet is the node's direct text, truncated for display.
	Snippet string
}

// Index is a searchable in-memory index over one XML document. It is safe
// for concurrent queries after construction; incremental mutations
// (InsertElement, RemoveElement) require external synchronization with
// in-flight queries.
type Index struct {
	doc   *xmltree.Document
	m     *occur.Map
	store *colstore.Store
	enc   *jdewey.Encoding
	cfg   config

	invMu   sync.Mutex
	inv     *invindex.Index
	rdilIdx *rdil.Index
}

// Option configures index construction.
type Option func(*config)

type config struct {
	elemRank bool
	erParams score.ElemRankParams
}

// WithElemRank folds a link-based global-importance factor (a
// PageRank-style ElemRank over the containment edges, after [5]) into
// every occurrence's local score, the combined g(v, w) of Section II-B.
// Structurally central elements then outrank peripheral ones at equal
// text relevance.
func WithElemRank() Option {
	return func(c *config) {
		c.elemRank = true
		c.erParams = score.DefaultElemRankParams()
	}
}

// Open parses an XML document from r and builds the index: the document
// tree with Dewey and JDewey identifiers, and the column-oriented JDewey
// inverted lists (both the JDewey-ordered and the score-sorted variants).
func Open(r io.Reader, opts ...Option) (*Index, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: %w", err)
	}
	return FromDocument(doc, opts...)
}

// OpenFile opens and indexes the XML document at path.
func OpenFile(path string, opts ...Option) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: %w", err)
	}
	defer f.Close()
	return Open(f, opts...)
}

// FromDocument indexes an already-parsed document tree. The document is
// retained and must not be mutated afterwards. JDewey numbers are
// (re)assigned.
func FromDocument(doc *xmltree.Document, opts ...Option) (*Index, error) {
	if doc == nil || doc.Root == nil {
		return nil, fmt.Errorf("xmlsearch: empty document")
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	// A small reserved gap lets most future insertions keep their family's
	// JDewey numbers (Section III-A).
	enc := jdewey.Assign(doc, 4)
	var m *occur.Map
	if cfg.elemRank {
		m = occur.ExtractRanked(doc, score.ElemRank(doc, cfg.erParams))
	} else {
		m = occur.Extract(doc)
	}
	return &Index{doc: doc, m: m, store: colstore.Build(m), enc: enc, cfg: cfg}, nil
}

// Len returns the number of element nodes indexed.
func (ix *Index) Len() int { return ix.doc.Len() }

// Depth returns the document's tree depth.
func (ix *Index) Depth() int { return ix.doc.Depth }

// DocFreq returns the number of nodes directly containing the (normalized)
// keyword.
func (ix *Index) DocFreq(keyword string) int {
	w := tokenize.Normalize(keyword)
	if w == "" {
		return 0
	}
	return ix.store.DocFreq(w)
}

// Keywords tokenizes a free-text query into the distinct normalized
// keywords the engines evaluate. Stopwords are dropped.
func Keywords(query string) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range tokenize.Tokens(query) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// ErrNoKeywords is returned when a query contains no indexable keywords.
var ErrNoKeywords = fmt.Errorf("xmlsearch: query contains no indexable keywords")

// Search evaluates the complete result set of the keyword query, ranked by
// descending score. Queries with a keyword absent from the document return
// an empty (nil) slice.
func (ix *Index) Search(query string, opt SearchOptions) ([]Result, error) {
	keywords := Keywords(query)
	if len(keywords) == 0 {
		return nil, ErrNoKeywords
	}
	decay := opt.Decay
	if decay == 0 {
		decay = score.DefaultDecay
	}
	switch opt.Algorithm {
	case AlgoJoin:
		lists := make([]*colstore.List, len(keywords))
		for i, w := range keywords {
			lists[i] = ix.store.List(w)
		}
		rs, _ := core.Evaluate(lists, core.Options{Semantics: coreSem(opt.Semantics), Decay: decay})
		core.SortByScore(rs)
		return ix.materializeJoin(rs), nil
	case AlgoStack:
		rs, _ := stack.Evaluate(ix.invLists(keywords), stackSem(opt.Semantics), decay)
		stack.SortByScore(rs)
		out := make([]Result, 0, len(rs))
		for _, r := range rs {
			out = append(out, ix.materializeDewey(r.ID, r.Score))
		}
		return out, nil
	case AlgoIndexLookup:
		rs, _ := ixlookup.Evaluate(ix.invLists(keywords), ixlookupSem(opt.Semantics), decay)
		out := make([]Result, 0, len(rs))
		for _, r := range rs {
			out = append(out, ix.materializeDewey(r.ID, r.Score))
		}
		sortResults(out)
		return out, nil
	case AlgoRDIL, AlgoHybrid:
		return nil, fmt.Errorf("xmlsearch: algorithm %d is top-K only; use TopK", opt.Algorithm)
	default:
		return nil, fmt.Errorf("xmlsearch: unknown algorithm %d", opt.Algorithm)
	}
}

// TopK returns the k best results of the keyword query in descending score
// order, using the top-K engine selected by opt.Algorithm (the join-based
// top-K star join by default).
func (ix *Index) TopK(query string, k int, opt SearchOptions) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("xmlsearch: k must be positive")
	}
	keywords := Keywords(query)
	if len(keywords) == 0 {
		return nil, ErrNoKeywords
	}
	decay := opt.Decay
	if decay == 0 {
		decay = score.DefaultDecay
	}
	switch opt.Algorithm {
	case AlgoJoin:
		lists := make([]*colstore.TKList, len(keywords))
		for i, w := range keywords {
			lists[i] = ix.store.TopKList(w)
		}
		rs, _ := topkEvaluate(lists, coreSem(opt.Semantics), decay, k)
		return ix.materializeJoin(rs), nil
	case AlgoRDIL:
		ix.ensureInv()
		rs, _ := ix.rdilIdx.TopK(keywords, rdilSem(opt.Semantics), decay, k)
		out := make([]Result, 0, len(rs))
		for _, r := range rs {
			out = append(out, ix.materializeDewey(r.ID, r.Score))
		}
		return out, nil
	case AlgoHybrid:
		colLists := make([]*colstore.List, len(keywords))
		tkLists := make([]*colstore.TKList, len(keywords))
		for i, w := range keywords {
			colLists[i] = ix.store.List(w)
			tkLists[i] = ix.store.TopKList(w)
		}
		rs, _ := topkEvaluateHybrid(colLists, tkLists, coreSem(opt.Semantics), decay, k)
		return ix.materializeJoin(rs), nil
	default:
		all, err := ix.Search(query, opt)
		if err != nil {
			return nil, err
		}
		if k < len(all) {
			all = all[:k]
		}
		return all, nil
	}
}

// TopKStream evaluates a top-K query with the join-based top-K engine and
// hands each result to fn the moment the unseen-result threshold proves it
// safe — before the evaluation finishes ("output without blocking"). fn
// returning false cancels the remaining evaluation. Results arrive in
// descending score order.
func (ix *Index) TopKStream(query string, k int, opt SearchOptions, fn func(Result) bool) error {
	if k <= 0 {
		return fmt.Errorf("xmlsearch: k must be positive")
	}
	if fn == nil {
		return fmt.Errorf("xmlsearch: nil callback")
	}
	keywords := Keywords(query)
	if len(keywords) == 0 {
		return ErrNoKeywords
	}
	decay := opt.Decay
	if decay == 0 {
		decay = score.DefaultDecay
	}
	lists := make([]*colstore.TKList, len(keywords))
	for i, w := range keywords {
		lists[i] = ix.store.TopKList(w)
	}
	_, _ = topk.EvaluateFunc(lists, topk.Options{Semantics: coreSem(opt.Semantics), Decay: decay, K: k},
		func(r core.Result) bool {
			n := ix.doc.NodeByJDewey(r.Level, r.Value)
			if n == nil {
				return true
			}
			return fn(ix.materializeNode(n, r.Score))
		})
	return nil
}

// Save persists the index directory: the column store blobs, the source
// document, the JDewey numbering (which after incremental mutations is no
// longer the canonical fresh assignment), and the index flags.
func (ix *Index) Save(dir string) error {
	if err := ix.store.Save(dir); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "document.xml"))
	if err != nil {
		return fmt.Errorf("xmlsearch: save: %w", err)
	}
	if err := ix.doc.WriteXML(f); err != nil {
		f.Close()
		return fmt.Errorf("xmlsearch: save: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("xmlsearch: save: %w", err)
	}
	// JDewey numbering, one uvarint per node in preorder.
	jd := []byte(indexMetaMagic)
	if ix.cfg.elemRank {
		jd = append(jd, 1)
	} else {
		jd = append(jd, 0)
	}
	jd = binary.AppendUvarint(jd, uint64(ix.doc.Len()))
	for _, n := range ix.doc.Nodes {
		jd = binary.AppendUvarint(jd, uint64(n.JD))
	}
	if err := os.WriteFile(filepath.Join(dir, "index.meta"), jd, 0o644); err != nil {
		return fmt.Errorf("xmlsearch: save: %w", err)
	}
	return nil
}

const indexMetaMagic = "XKWMETA1\n"

// Load opens an index directory written by Save: the column store decodes
// lazily, the document is re-parsed for result materialization, and the
// saved JDewey numbering is adopted so the blobs and the tree agree even
// when the index had been mutated incrementally before saving.
func Load(dir string) (*Index, error) {
	store, err := colstore.Open(dir)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, "document.xml"))
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: load: %w", err)
	}
	doc, err := xmltree.Parse(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: load: %w", err)
	}
	meta, err := os.ReadFile(filepath.Join(dir, "index.meta"))
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: load: %w", err)
	}
	if len(meta) < len(indexMetaMagic)+1 || string(meta[:len(indexMetaMagic)]) != indexMetaMagic {
		return nil, fmt.Errorf("xmlsearch: load: bad index.meta")
	}
	var cfg config
	if meta[len(indexMetaMagic)] == 1 {
		cfg.elemRank = true
		cfg.erParams = score.DefaultElemRankParams()
	}
	off := len(indexMetaMagic) + 1
	count, sz := binary.Uvarint(meta[off:])
	if sz <= 0 || int(count) != doc.Len() {
		return nil, fmt.Errorf("xmlsearch: load: numbering covers %d nodes, document has %d", count, doc.Len())
	}
	off += sz
	for _, n := range doc.Nodes {
		v, sz := binary.Uvarint(meta[off:])
		if sz <= 0 || v == 0 || v > 1<<32-1 {
			return nil, fmt.Errorf("xmlsearch: load: truncated numbering")
		}
		n.JD = uint32(v)
		off += sz
	}
	enc, err := jdewey.Adopt(doc, 4)
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: load: %w", err)
	}
	// Rebuild the occurrence map against the frozen corpus constant the
	// saved scores were computed with.
	var m *occur.Map
	if cfg.elemRank {
		m = occur.ExtractRanked(doc, score.ElemRank(doc, cfg.erParams))
		m.N = store.N
		// Rank factors are position-dependent; rebuild the store from the
		// recomputed map rather than trusting potentially stale blobs.
		return &Index{doc: doc, m: m, store: colstore.Build(m), enc: enc, cfg: cfg}, nil
	}
	m = occur.ExtractN(doc, store.N)
	return &Index{doc: doc, m: m, store: store, enc: enc, cfg: cfg}, nil
}

// --- materialization and adapters ---

const snippetLen = 80

func (ix *Index) materializeJoin(rs []core.Result) []Result {
	out := make([]Result, 0, len(rs))
	for _, r := range rs {
		n := ix.doc.NodeByJDewey(r.Level, r.Value)
		if n == nil {
			continue
		}
		out = append(out, ix.materializeNode(n, r.Score))
	}
	return out
}

func (ix *Index) materializeDewey(id []uint32, s float64) Result {
	n := ix.doc.NodeByDewey(id)
	if n == nil {
		return Result{Dewey: "?", Score: s}
	}
	return ix.materializeNode(n, s)
}

func (ix *Index) materializeNode(n *xmltree.Node, s float64) Result {
	snippet := n.Text
	if len(snippet) > snippetLen {
		cut := snippetLen
		for cut > 0 && !utf8.RuneStart(snippet[cut]) {
			cut--
		}
		snippet = snippet[:cut] + "…"
	}
	return Result{
		Path:    n.Path(),
		Dewey:   n.Dewey.String(),
		Level:   n.Level,
		Score:   s,
		Snippet: snippet,
	}
}

func (ix *Index) invLists(keywords []string) []*invindex.List {
	ix.ensureInv()
	lists := make([]*invindex.List, len(keywords))
	for i, w := range keywords {
		lists[i] = ix.inv.Get(w)
	}
	return lists
}

func (ix *Index) ensureInv() {
	ix.invMu.Lock()
	defer ix.invMu.Unlock()
	if ix.inv == nil {
		ix.inv = invindex.Build(ix.m)
		ix.rdilIdx = rdil.NewIndex(ix.inv)
	}
}

// invalidateBaselines drops the lazily-built document-order indexes after
// a mutation; they rebuild on next use. (The paper's own index — the
// column store — is maintained incrementally instead.)
func (ix *Index) invalidateBaselines() {
	ix.invMu.Lock()
	defer ix.invMu.Unlock()
	ix.inv, ix.rdilIdx = nil, nil
}

func coreSem(s Semantics) core.Semantics {
	if s == SLCA {
		return core.SLCA
	}
	return core.ELCA
}

func stackSem(s Semantics) stack.Semantics {
	if s == SLCA {
		return stack.SLCA
	}
	return stack.ELCA
}

func rdilSem(s Semantics) rdil.Semantics {
	if s == SLCA {
		return rdil.SLCA
	}
	return rdil.ELCA
}
