package xmlsearch

import (
	"strings"
	"testing"
)

// TestWithElemRankChangesRanking: two structurally different containers of
// the same keywords rank equally under pure tf-idf but diverge once the
// link-based component weighs in.
func TestWithElemRankChangesRanking(t *testing.T) {
	// "x y" occurs directly on a heavily-connected hub element (five
	// children feed rank back into it) and on an isolated sibling leaf.
	// tf-idf alone cannot tell the two containers apart.
	docXML := `<root>
	  <hub>x y<meta>m</meta><meta>m</meta><meta>m</meta><meta>m</meta><meta>m</meta></hub>
	  <leaf>x y</leaf>
	</root>`

	plain, err := Open(strings.NewReader(docXML))
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := Open(strings.NewReader(docXML), WithElemRank())
	if err != nil {
		t.Fatal(err)
	}

	rsPlain, err := plain.Search("x y", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rsRanked, err := ranked.Search("x y", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rsPlain) != len(rsRanked) {
		t.Fatalf("result sets differ in size: %d vs %d (semantics must not change)", len(rsPlain), len(rsRanked))
	}
	// Under tf-idf the two direct containers tie; under ElemRank they must
	// not, and the hub's title (backed by the hub's rank mass) wins.
	scoreOf := func(rs []Result, dewey string) float64 {
		for _, r := range rs {
			if r.Dewey == dewey {
				return r.Score
			}
		}
		t.Fatalf("result %s missing", dewey)
		return 0
	}
	hubDewey, leafDewey := "1.1", "1.2"
	if scoreOf(rsPlain, hubDewey) != scoreOf(rsPlain, leafDewey) {
		t.Fatalf("tf-idf should tie the two containers: %v vs %v",
			scoreOf(rsPlain, hubDewey), scoreOf(rsPlain, leafDewey))
	}
	if scoreOf(rsRanked, hubDewey) <= scoreOf(rsRanked, leafDewey) {
		t.Errorf("ElemRank should favour the hub: %v vs %v",
			scoreOf(rsRanked, hubDewey), scoreOf(rsRanked, leafDewey))
	}
}

// TestWithElemRankKeepsResultSets: the link factor reweights scores but
// must not change which nodes are results.
func TestWithElemRankKeepsResultSets(t *testing.T) {
	docXML := `<bib><book><t>alpha</t><u>beta</u></book><mix>alpha beta</mix></bib>`
	plain, err := Open(strings.NewReader(docXML))
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := Open(strings.NewReader(docXML), WithElemRank())
	if err != nil {
		t.Fatal(err)
	}
	for _, sem := range []Semantics{ELCA, SLCA} {
		a, err := plain.Search("alpha beta", SearchOptions{Semantics: sem})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ranked.Search("alpha beta", SearchOptions{Semantics: sem})
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, r := range b {
			got[r.Dewey] = true
		}
		if len(a) != len(b) {
			t.Fatalf("sem %d: %d vs %d results", sem, len(a), len(b))
		}
		for _, r := range a {
			if !got[r.Dewey] {
				t.Fatalf("sem %d: result %s lost under ElemRank", sem, r.Dewey)
			}
		}
	}
}
