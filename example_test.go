package xmlsearch_test

import (
	"fmt"
	"log"
	"strings"

	xmlsearch "repro"
)

const exampleXML = `<bib>
  <book>
    <title>XML data management</title>
    <chapter><section>querying xml</section><section>storing data</section></chapter>
  </book>
  <article><title>keyword search over xml data</title></article>
</bib>`

// Example indexes a document and runs a ranked keyword search.
func Example() {
	idx, err := xmlsearch.Open(strings.NewReader(exampleXML))
	if err != nil {
		log.Fatal(err)
	}
	results, err := idx.Search("xml data", xmlsearch.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%s %s\n", r.Dewey, r.Path)
	}
	// Output:
	// 1.1.1 /bib/book/title
	// 1.2.1 /bib/article/title
	// 1.1.2 /bib/book/chapter
}

// ExampleIndex_TopK retrieves only the best result, letting the top-K
// engine stop early.
func ExampleIndex_TopK() {
	idx, err := xmlsearch.Open(strings.NewReader(exampleXML))
	if err != nil {
		log.Fatal(err)
	}
	top, err := idx.TopK("xml data", 1, xmlsearch.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(top[0].Path)
	// Output:
	// /bib/book/title
}

// ExampleIndex_Search_slca switches to the SLCA semantics, which keeps
// only the lowest subtrees.
func ExampleIndex_Search_slca() {
	idx, err := xmlsearch.Open(strings.NewReader(exampleXML))
	if err != nil {
		log.Fatal(err)
	}
	results, err := idx.Search("xml data", xmlsearch.SearchOptions{Semantics: xmlsearch.SLCA})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println(r.Path)
	}
	// Output:
	// /bib/book/title
	// /bib/article/title
	// /bib/book/chapter
}
