package xmlsearch

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
)

// TestFullPipelineOnGeneratedCorpora is the end-to-end integration test:
// generate each synthetic corpus, index it, persist it, reload it, and
// check that every engine agrees on a mixed workload, before and after the
// disk round trip.
func TestFullPipelineOnGeneratedCorpora(t *testing.T) {
	for _, build := range []func() *gen.Dataset{
		func() *gen.Dataset { return gen.DBLP(0.02, 5) },
		func() *gen.Dataset { return gen.XMark(0.02, 5) },
	} {
		ds := build()
		idx, err := FromDocument(ds.Doc)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := idx.Save(dir); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}

		var queries []string
		for _, q := range ds.Correlated {
			queries = append(queries, strings.Join(q, " "))
		}
		for _, b := range ds.BandValues {
			queries = append(queries, ds.Bands[b][0]+" "+ds.HighTerms[0])
		}

		for _, q := range queries {
			for _, sem := range []Semantics{ELCA, SLCA} {
				ref, err := idx.Search(q, SearchOptions{Semantics: sem})
				if err != nil {
					t.Fatal(err)
				}
				for _, algo := range []Algorithm{AlgoStack, AlgoIndexLookup} {
					rs, err := idx.Search(q, SearchOptions{Semantics: sem, Algorithm: algo})
					if err != nil {
						t.Fatal(err)
					}
					assertSameResults(t, ds.Name, q, ref, rs)
				}
				reloaded, err := loaded.Search(q, SearchOptions{Semantics: sem})
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, ds.Name, q+" (reloaded)", ref, reloaded)
			}
			// Top-K engines agree with the ranked full set.
			ref, err := idx.Search(q, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			k := 5
			if len(ref) < k {
				k = len(ref)
			}
			if k == 0 {
				continue
			}
			for _, algo := range []Algorithm{AlgoJoin, AlgoRDIL, AlgoHybrid} {
				top, err := loaded.TopK(q, k, SearchOptions{Algorithm: algo})
				if err != nil {
					t.Fatal(err)
				}
				if len(top) != k {
					t.Fatalf("%s %q algo %d: top-%d returned %d", ds.Name, q, algo, k, len(top))
				}
				for i := range top {
					if math.Abs(top[i].Score-ref[i].Score) > 1e-6*(1+math.Abs(ref[i].Score)) {
						t.Fatalf("%s %q algo %d rank %d: %v vs %v", ds.Name, q, algo, i, top[i].Score, ref[i].Score)
					}
				}
			}
		}
	}
}

func assertSameResults(t *testing.T, name, q string, ref, got []Result) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s %q: %d results vs %d", name, q, len(got), len(ref))
	}
	byID := map[string]float64{}
	for _, r := range ref {
		byID[r.Dewey] = r.Score
	}
	for _, r := range got {
		s, ok := byID[r.Dewey]
		if !ok {
			t.Fatalf("%s %q: unexpected result %s", name, q, r.Dewey)
		}
		if math.Abs(r.Score-s) > 1e-6*(1+math.Abs(s)) {
			t.Fatalf("%s %q: %s score %v vs %v", name, q, r.Dewey, r.Score, s)
		}
	}
}

// TestDeepChainDocument stresses the per-level machinery on a pathological
// depth-50 chain with keywords scattered along it.
func TestDeepChainDocument(t *testing.T) {
	var sb strings.Builder
	depth := 50
	for i := 0; i < depth; i++ {
		sb.WriteString("<n>")
		switch {
		case i == 10:
			sb.WriteString("alpha ")
		case i == 30:
			sb.WriteString("beta ")
		case i == 49:
			sb.WriteString("alpha beta gamma ")
		}
	}
	for i := 0; i < depth; i++ {
		sb.WriteString("</n>")
	}
	idx, err := Open(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Depth() != depth {
		t.Fatalf("depth = %d", idx.Depth())
	}
	// {alpha, beta}: on a single chain, every node down to level 31
	// contains both keywords, but the exclusion semantics leaves exactly
	// one ELCA — the leaf. The level-31 node is contains-all, so its own
	// beta occurrence is claimed there and excluded for every ancestor;
	// but level 31 itself has no alpha witness outside the contains-all
	// leaf, so it is not an ELCA either. Likewise level 11's alpha is
	// claimed at level 11, which lacks a beta witness of its own.
	for _, algo := range []Algorithm{AlgoJoin, AlgoStack, AlgoIndexLookup} {
		rs, err := idx.Search("alpha beta", SearchOptions{Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != 1 || rs[0].Level != depth {
			t.Fatalf("algo %d: ELCAs = %+v, want the leaf only", algo, rs)
		}
		slca, err := idx.Search("alpha beta", SearchOptions{Algorithm: algo, Semantics: SLCA})
		if err != nil {
			t.Fatal(err)
		}
		if len(slca) != 1 || slca[0].Level != depth {
			t.Fatalf("algo %d: SLCA = %+v, want the leaf only", algo, slca)
		}
	}
	top, err := idx.TopK("alpha beta gamma", 3, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Level != depth {
		t.Fatalf("three-keyword top-K = %+v, want the leaf", top)
	}
}

// TestOpenCorruptionFuzz flips random bytes in a saved index and requires
// Load/Verify/queries to fail cleanly or succeed — never panic.
func TestOpenCorruptionFuzz(t *testing.T) {
	ds := gen.DBLP(0.01, 9)
	idx, err := FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := idx.Save(dir); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			// Reload a pristine copy, then corrupt one file in memory via
			// a temp dir copy.
			tmp := t.TempDir()
			if err := idx.Save(tmp); err != nil {
				t.Fatal(err)
			}
			corruptRandomFile(t, rng, tmp)
			loaded, err := Load(tmp)
			if err != nil {
				return // clean failure
			}
			// Queries over a corrupt-but-loadable index may return errors
			// or degraded results; they must not panic.
			_, _ = loaded.Search("sensor network", SearchOptions{})
			_, _ = loaded.TopK("sensor network", 3, SearchOptions{})
		}()
	}
}
