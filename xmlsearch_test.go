package xmlsearch

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
)

const sampleXML = `<bib>
  <book>
    <title>xml</title>
    <chapter><sec>xml basics</sec><sec>data models</sec></chapter>
  </book>
  <book><title>data warehousing</title></book>
  <book><title>xml processing</title><note>big data</note></book>
</bib>`

func open(t *testing.T) *Index {
	t.Helper()
	idx, err := Open(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestOpenAndMetadata(t *testing.T) {
	idx := open(t)
	if idx.Len() != 11 {
		t.Errorf("Len = %d, want 11", idx.Len())
	}
	if idx.Depth() != 4 {
		t.Errorf("Depth = %d, want 4", idx.Depth())
	}
	if idx.DocFreq("xml") != 3 || idx.DocFreq("XML") != 3 {
		t.Errorf("DocFreq(xml) = %d, want 3 (case-insensitive)", idx.DocFreq("xml"))
	}
	if idx.DocFreq("the") != 0 || idx.DocFreq("") != 0 {
		t.Error("stopwords and empties must have zero frequency")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(strings.NewReader("not xml at all")); err == nil {
		t.Error("garbage input must fail")
	}
	if _, err := FromDocument(nil); err == nil {
		t.Error("nil document must fail")
	}
}

func TestSearchELCA(t *testing.T) {
	idx := open(t)
	rs, err := idx.Search("XML data", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %+v, want 2 ELCAs", rs)
	}
	// Score-descending.
	if rs[0].Score < rs[1].Score {
		t.Error("results not ranked")
	}
	paths := map[string]bool{}
	for _, r := range rs {
		paths[r.Dewey] = true
		if r.Path == "" || r.Level == 0 {
			t.Errorf("unmaterialized result: %+v", r)
		}
	}
	if !paths["1.1.2"] || !paths["1.3"] {
		t.Errorf("wrong result set: %+v", rs)
	}
}

func TestSearchAlgorithmsAgree(t *testing.T) {
	idx := open(t)
	for _, sem := range []Semantics{ELCA, SLCA} {
		var ref []Result
		for ai, algo := range []Algorithm{AlgoJoin, AlgoStack, AlgoIndexLookup} {
			rs, err := idx.Search("xml data", SearchOptions{Semantics: sem, Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			if ai == 0 {
				ref = rs
				continue
			}
			if len(rs) != len(ref) {
				t.Fatalf("algo %d sem %d: %d results vs %d", algo, sem, len(rs), len(ref))
			}
			for i := range rs {
				if rs[i].Dewey != ref[i].Dewey || math.Abs(rs[i].Score-ref[i].Score) > 1e-6 {
					t.Fatalf("algo %d sem %d result %d: %+v vs %+v", algo, sem, i, rs[i], ref[i])
				}
			}
		}
	}
}

func TestTopKEnginesAgree(t *testing.T) {
	ds := gen.DBLP(0.01, 42)
	idx, err := FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	q := strings.Join(ds.Correlated[0], " ")
	full, err := idx.Search(q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoJoin, AlgoRDIL, AlgoStack, AlgoIndexLookup, AlgoHybrid} {
		top, err := idx.TopK(q, 5, SearchOptions{Algorithm: algo})
		if err != nil {
			t.Fatalf("algo %d: %v", algo, err)
		}
		want := 5
		if len(full) < want {
			want = len(full)
		}
		if len(top) != want {
			t.Fatalf("algo %d: top-5 returned %d, full has %d", algo, len(top), len(full))
		}
		for i := range top {
			if math.Abs(top[i].Score-full[i].Score) > 1e-6*(1+math.Abs(full[i].Score)) {
				t.Fatalf("algo %d rank %d: score %v, want %v", algo, i, top[i].Score, full[i].Score)
			}
		}
	}
}

func TestQueryErrors(t *testing.T) {
	idx := open(t)
	if _, err := idx.Search("", SearchOptions{}); err == nil {
		t.Error("empty query must error")
	}
	if _, err := idx.Search("the of", SearchOptions{}); err == nil {
		t.Error("stopword-only query must error")
	}
	if _, err := idx.TopK("xml", 0, SearchOptions{}); err == nil {
		t.Error("k=0 must error")
	}
	if _, err := idx.Search("xml", SearchOptions{Algorithm: AlgoRDIL}); err == nil {
		t.Error("RDIL full search must error")
	}
	if _, err := idx.Search("xml", SearchOptions{Algorithm: AlgoHybrid}); err == nil {
		t.Error("hybrid full search must error")
	}
	if _, err := idx.Search("xml", SearchOptions{Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm must error")
	}
	if rs, err := idx.Search("xml zzzznothere", SearchOptions{}); err != nil || len(rs) != 0 {
		t.Errorf("absent keyword: rs=%v err=%v, want empty and nil", rs, err)
	}
}

func TestKeywords(t *testing.T) {
	got := Keywords("The XML, xml DATA!")
	if len(got) != 2 || got[0] != "xml" || got[1] != "data" {
		t.Errorf("Keywords = %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	idx := open(t)
	dir := t.TempDir()
	if err := idx.Save(dir); err != nil {
		t.Fatal(err)
	}
	idx2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := idx.Search("xml data", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := idx2.Search("xml data", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("loaded index returns %d results, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i].Dewey != b[i].Dewey || math.Abs(a[i].Score-b[i].Score) > 1e-6 {
			t.Fatalf("result %d differs after reload: %+v vs %+v", i, a[i], b[i])
		}
	}
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("loading an empty directory must fail")
	}
}

func TestSLCADiffersFromELCA(t *testing.T) {
	// A document where the root is an ELCA but not an SLCA.
	doc := `<r><a><t>x</t><t>y</t></a><b><t>x</t></b><c>y</c></r>`
	idx, err := Open(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	elca, err := idx.Search("x y", SearchOptions{Semantics: ELCA})
	if err != nil {
		t.Fatal(err)
	}
	slca, err := idx.Search("x y", SearchOptions{Semantics: SLCA})
	if err != nil {
		t.Fatal(err)
	}
	if len(elca) != 2 || len(slca) != 1 {
		t.Fatalf("ELCA=%d SLCA=%d, want 2 and 1", len(elca), len(slca))
	}
}

func TestSnippetTruncation(t *testing.T) {
	long := strings.Repeat("word ", 40) + "käse"
	doc := "<r><a>" + long + " x</a><b>y</b></r>"
	idx, err := Open(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := idx.Search("x y", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if len(r.Snippet) > snippetLen+4 {
			t.Errorf("snippet too long: %d bytes", len(r.Snippet))
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	ds := gen.DBLP(0.01, 11)
	idx, err := FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		algo := []Algorithm{AlgoJoin, AlgoStack, AlgoIndexLookup, AlgoRDIL}[g%4]
		go func(algo Algorithm) {
			var err error
			if algo == AlgoRDIL {
				_, err = idx.TopK("sensor network", 5, SearchOptions{Algorithm: algo})
			} else {
				_, err = idx.Search("sensor network", SearchOptions{Algorithm: algo})
			}
			done <- err
		}(algo)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
