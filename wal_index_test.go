package xmlsearch

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/colstore"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Durability and delta-read-path tests of the incremental write path:
// crash-at-every-op ingest recovery, torn/bit-flipped log tails, and
// rank-for-rank differential parity of delta-chain snapshots against the
// materializing (clone-everything) path — including compaction flips
// racing concurrent readers and writers.

// walIngestScript applies a fixed mutation sequence — appending inserts
// with unique terms, an explicit compaction, a removal, and a batch —
// and reports which operations were acknowledged. An op that fails
// (e.g. because the injected crash fired) is simply not acknowledged;
// the script continues so every post-crash op exercises the failure path.
func walIngestScript(idx *Index) (ackedTerms []string, removeAcked bool) {
	for i := 0; i < 8; i++ {
		term := fmt.Sprintf("uq%d", i)
		if _, err := idx.InsertElement("1", idx.rootChildCount(), "n", term+" sensor"); err == nil {
			ackedTerms = append(ackedTerms, term)
		}
		if i == 3 {
			_ = idx.Compact() // a compaction commit mid-ingest is a crash point too
		}
		if i == 5 {
			if err := idx.RemoveElement("1.1"); err == nil {
				removeAcked = true
			}
		}
	}
	muts := []Mutation{
		{ID: "1", Pos: idx.rootChildCount(), Tag: "n", Text: "bq0 sensor"},
		{ID: "1", Pos: idx.rootChildCount() + 1, Tag: "n", Text: "bq1 sensor"},
	}
	if _, err := idx.ApplyBatch(muts); err == nil {
		ackedTerms = append(ackedTerms, "bq0", "bq1")
	}
	return ackedTerms, removeAcked
}

// TestWALCrashAtEveryOpDuringIngest kills the filesystem at every point
// of the ingest schedule (file creates, WAL writes, WAL fsyncs, commit
// renames, compaction writes) and checks the recovery contract after
// each: Load succeeds on the surviving directory, every acknowledged
// mutation is present, and no list is corrupted. Recovery may include a
// final unacknowledged mutation (a crash between the log write and its
// acknowledgement), never lose an acknowledged one.
func TestWALCrashAtEveryOpDuringIngest(t *testing.T) {
	// Size the schedule with a crash-free run.
	sizing := faultinject.NewFaultFS(faultinject.OS())
	{
		idx, err := Open(strings.NewReader(faultDocA))
		if err != nil {
			t.Fatal(err)
		}
		idx.SetCompactionThreshold(-1) // deterministic schedule: only the explicit Compact
		if err := idx.enableWALFS(t.TempDir(), sizing); err != nil {
			t.Fatal(err)
		}
		acked, removeAcked := walIngestScript(idx)
		if len(acked) != 10 || !removeAcked {
			t.Fatalf("crash-free script acked %d ops (remove %v), want all 10", len(acked), removeAcked)
		}
	}
	total := sizing.Ops()
	if total < 20 {
		t.Fatalf("suspiciously small op schedule: %d", total)
	}

	for n := 1; n <= total; n++ {
		dir := t.TempDir()
		idx, err := Open(strings.NewReader(faultDocA))
		if err != nil {
			t.Fatal(err)
		}
		idx.SetCompactionThreshold(-1)
		fsys := faultinject.NewFaultFS(faultinject.OS())
		fsys.CrashAt(n)
		if err := idx.enableWALFS(dir, fsys); err != nil {
			if !errors.Is(err, faultinject.ErrCrashed) {
				t.Fatalf("crash at op %d surfaced as %v", n, err)
			}
			continue // WAL never attached: nothing was acknowledged as durable
		}
		acked, removeAcked := walIngestScript(idx)

		loaded, lerr := Load(dir)
		if lerr != nil {
			t.Fatalf("crash at op %d left an unloadable index: %v", n, lerr)
		}
		if h := loaded.Health(); h.Degraded() {
			t.Fatalf("crash at op %d left corrupted lists: %+v", n, h)
		}
		for _, term := range acked {
			if loaded.DocFreq(term) == 0 {
				t.Fatalf("crash at op %d lost acknowledged insert %q", n, term)
			}
			rs, err := loaded.Search(term, SearchOptions{})
			if err != nil || len(rs) == 0 {
				t.Fatalf("crash at op %d: acked term %q unsearchable: %v %v", n, term, rs, err)
			}
		}
		if removeAcked && loaded.DocFreq("design") != 0 {
			t.Fatalf("crash at op %d resurrected an acknowledged removal", n)
		}
		// The recovered index keeps accepting durable mutations.
		if _, err := loaded.InsertElement("1", loaded.rootChildCount(), "n", "postcrash sensor"); err != nil {
			t.Fatalf("crash at op %d: recovered index rejects mutations: %v", n, err)
		}
		if err := loaded.Close(); err != nil {
			t.Fatalf("crash at op %d: close: %v", n, err)
		}
	}
}

// walEnabledDir builds an index with an attached WAL holding unreplayed
// records (compaction disabled) and returns its directory and the terms
// the log carries, in append order.
func walEnabledDir(t *testing.T) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	idx, err := Open(strings.NewReader(faultDocA))
	if err != nil {
		t.Fatal(err)
	}
	idx.SetCompactionThreshold(-1)
	if err := idx.EnableWAL(dir); err != nil {
		t.Fatal(err)
	}
	var terms []string
	for i := 0; i < 5; i++ {
		term := fmt.Sprintf("wq%d", i)
		if _, err := idx.InsertElement("1", idx.rootChildCount(), "n", term+" sensor"); err != nil {
			t.Fatal(err)
		}
		terms = append(terms, term)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, terms
}

func walPathOf(t *testing.T, dir string) string {
	t.Helper()
	gen, _, err := colstore.CurrentGen(dir)
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, wal.FileName(gen))
}

// TestWALTornTailQuarantined: a torn final record (lost tail bytes) is
// quarantined — the intact prefix replays, the torn mutation is dropped,
// and the index serves cleanly.
func TestWALTornTailQuarantined(t *testing.T) {
	dir, terms := walEnabledDir(t)
	path := walPathOf(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("torn tail must not fail load: %v", err)
	}
	defer loaded.Close()
	if h := loaded.Health(); h.Degraded() {
		t.Fatalf("torn tail degraded the index: %+v", h)
	}
	for _, term := range terms[:len(terms)-1] {
		if loaded.DocFreq(term) == 0 {
			t.Fatalf("intact record %q lost with the torn tail", term)
		}
	}
	if loaded.DocFreq(terms[len(terms)-1]) != 0 {
		t.Fatal("torn (never-durable) record replayed")
	}
	if got := loaded.Metrics().Snapshot().WAL; got.QuarantinedBytes == 0 || got.ReplayedRecords != int64(len(terms)-1) {
		t.Fatalf("replay counters wrong: %+v", got)
	}
}

// TestWALBitFlipStopsReplay: bit damage inside a record stops replay at
// the damaged frame — earlier records serve, later ones are quarantined,
// and nothing half-applied survives.
func TestWALBitFlipStopsReplay(t *testing.T) {
	dir, terms := walEnabledDir(t)
	path := walPathOf(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the last record's payload.
	if err := faultinject.FlipByte(path, fi.Size()-4, 0x40); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("record damage must quarantine, not fail load: %v", err)
	}
	defer loaded.Close()
	for _, term := range terms[:len(terms)-1] {
		if loaded.DocFreq(term) == 0 {
			t.Fatalf("record %q before the damage lost", term)
		}
	}
	if loaded.DocFreq(terms[len(terms)-1]) != 0 {
		t.Fatal("damaged record replayed")
	}
}

// TestWALHeaderDamageFailsLoad: an unidentifiable log (damaged header) is
// a load error — silently skipping replay would serve an index missing
// acknowledged mutations.
func TestWALHeaderDamageFailsLoad(t *testing.T) {
	dir, _ := walEnabledDir(t)
	if err := faultinject.FlipByte(walPathOf(t, dir), 2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("damaged WAL header must fail Load")
	}
}

// TestWALReplayAcrossCompaction: with background compaction folding the
// delta every few mutations, a reload still recovers the full acked
// state — the committed generation plus the rotated log's short suffix.
func TestWALReplayAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	idx, err := Open(strings.NewReader(faultDocA))
	if err != nil {
		t.Fatal(err)
	}
	idx.SetCompactionThreshold(4)
	if err := idx.EnableWAL(dir); err != nil {
		t.Fatal(err)
	}
	var terms []string
	for i := 0; i < 25; i++ {
		term := fmt.Sprintf("cq%d", i)
		if _, err := idx.InsertElement("1", idx.rootChildCount(), "n", term+" sensor"); err != nil {
			t.Fatal(err)
		}
		terms = append(terms, term)
	}
	want := idx.Len()
	if err := idx.Close(); err != nil { // waits out in-flight background folds
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != want {
		t.Fatalf("reloaded %d nodes, want %d", loaded.Len(), want)
	}
	for _, term := range terms {
		if loaded.DocFreq(term) != 1 {
			t.Fatalf("term %q lost across compaction + reload", term)
		}
	}
	if h := loaded.Health(); h.Degraded() {
		t.Fatalf("degraded after compacted reload: %+v", h)
	}
	cs := idx.Metrics().Snapshot().Compaction
	if cs.Runs == 0 {
		t.Fatal("background compaction never ran")
	}
}

// assertIndexParity fails unless both indexes return rank-for-rank
// identical results (Dewey and score) for every query, semantics, and
// engine — the differential oracle of the delta read path.
func assertIndexParity(t *testing.T, label string, got, want *Index, queries []string) {
	t.Helper()
	for _, q := range queries {
		for _, sem := range []Semantics{ELCA, SLCA} {
			for _, algo := range []Algorithm{AlgoJoin, AlgoStack, AlgoIndexLookup} {
				g, err := got.Search(q, SearchOptions{Semantics: sem, Algorithm: algo})
				if err != nil {
					t.Fatalf("%s: %q algo %d: %v", label, q, algo, err)
				}
				w, err := want.Search(q, SearchOptions{Semantics: sem, Algorithm: algo})
				if err != nil {
					t.Fatalf("%s: %q algo %d oracle: %v", label, q, algo, err)
				}
				if len(g) != len(w) {
					t.Fatalf("%s: %q sem %d algo %d: %d vs %d results", label, q, sem, algo, len(g), len(w))
				}
				for i := range g {
					if g[i].Dewey != w[i].Dewey || math.Abs(g[i].Score-w[i].Score) > 1e-6*(1+math.Abs(w[i].Score)) {
						t.Fatalf("%s: %q sem %d algo %d rank %d: %s/%v vs %s/%v",
							label, q, sem, algo, i, g[i].Dewey, g[i].Score, w[i].Dewey, w[i].Score)
					}
				}
			}
		}
		for _, algo := range []Algorithm{AlgoJoin, AlgoRDIL, AlgoHybrid} {
			g, err := got.TopK(q, 3, SearchOptions{Algorithm: algo})
			if err != nil {
				t.Fatalf("%s: topk %q algo %d: %v", label, q, algo, err)
			}
			w, err := want.TopK(q, 3, SearchOptions{Algorithm: algo})
			if err != nil {
				t.Fatalf("%s: topk %q algo %d oracle: %v", label, q, algo, err)
			}
			if len(g) != len(w) {
				t.Fatalf("%s: topk %q algo %d: %d vs %d", label, q, algo, len(g), len(w))
			}
			for i := range g {
				if g[i].Dewey != w[i].Dewey || math.Abs(g[i].Score-w[i].Score) > 1e-6*(1+math.Abs(w[i].Score)) {
					t.Fatalf("%s: topk %q algo %d rank %d diverged", label, q, algo, i)
				}
			}
		}
	}
}

// TestDeltaChainParityAllEngines pins delta chains open (compaction
// disabled) on one index while a mirror index applies the identical
// mutations through the materializing path (compacted after every op).
// Every engine must return rank-for-rank identical results on both —
// the merged base ⊕ delta view is indistinguishable from the clone.
func TestDeltaChainParityAllEngines(t *testing.T) {
	const doc = `<lib><shelf><b>alpha xml</b><b>beta data</b></shelf><shelf><b>gamma xml data</b></shelf></lib>`
	queries := []string{"xml data", "alpha xml", "gamma", "beta data", "sensor xml"}

	delta, err := Open(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	delta.SetCompactionThreshold(-1)
	mat, err := Open(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	mat.SetCompactionThreshold(-1)

	step := func(parent string, tag, text string) {
		t.Helper()
		pos := func(ix *Index) int {
			s := ix.view()
			n := s.nodeByDewey(mustDewey(t, parent))
			if n == nil {
				t.Fatalf("no parent %s", parent)
			}
			return len(s.visibleChildren(n))
		}
		d1, err := delta.InsertElement(parent, pos(delta), tag, text)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := mat.InsertElement(parent, pos(mat), tag, text)
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("dewey divergence: %s vs %s", d1, d2)
		}
		if err := mat.Compact(); err != nil { // mirror always materialized
			t.Fatal(err)
		}
	}

	step("1", "ins", "sensor xml")
	step("1.1", "ins", "alpha sensor")
	step("1.3", "ins", "data sensor")
	if delta.view().delta == nil {
		t.Fatal("append inserts did not take the fast path")
	}
	if mat.view().delta != nil {
		t.Fatal("mirror failed to materialize")
	}
	assertIndexParity(t, "after fast chain", delta, mat, queries)

	// A removal materializes the delta index too; parity must hold across
	// the fold and the chains that grow after it.
	for _, ix := range []*Index{delta, mat} {
		if err := ix.RemoveElement("1.2"); err != nil {
			t.Fatal(err)
		}
	}
	if err := mat.Compact(); err != nil {
		t.Fatal(err)
	}
	assertIndexParity(t, "after removal", delta, mat, queries)

	step("1", "ins", "gamma xml")
	step("1", "ins", "beta query")
	if delta.view().delta == nil {
		t.Fatal("post-removal appends did not re-enter the fast path")
	}
	assertIndexParity(t, "after regrown chain", delta, mat, queries)

	// Folding the pinned chain must be invisible.
	if err := delta.Compact(); err != nil {
		t.Fatal(err)
	}
	if delta.view().delta != nil {
		t.Fatal("explicit Compact left a delta")
	}
	assertIndexParity(t, "after fold", delta, mat, queries)
}

func mustDewey(t *testing.T, s string) (id []uint32) {
	t.Helper()
	parts := strings.Split(s, ".")
	for _, p := range parts {
		var v uint32
		if _, err := fmt.Sscanf(p, "%d", &v); err != nil {
			t.Fatal(err)
		}
		id = append(id, v)
	}
	return id
}

// TestApplyBatchSemantics: a batch publishes once (queries see none or
// all of it), fsyncs once, and aborts atomically on a bad operation.
func TestApplyBatchSemantics(t *testing.T) {
	dir := t.TempDir()
	idx, err := Open(strings.NewReader(faultDocA))
	if err != nil {
		t.Fatal(err)
	}
	idx.SetCompactionThreshold(-1)
	if err := idx.EnableWAL(dir); err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	gen0 := idx.gen.Load()
	base := idx.rootChildCount()
	ids, err := idx.ApplyBatch([]Mutation{
		{ID: "1", Pos: base, Tag: "n", Text: "batch0 sensor"},
		{ID: "1", Pos: base + 1, Tag: "n", Text: "batch1 sensor"},
		{ID: "1", Pos: base + 2, Tag: "n", Text: "batch2 sensor"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] == "" || ids[1] == "" || ids[2] == "" {
		t.Fatalf("bad ids: %v", ids)
	}
	if got := idx.gen.Load(); got != gen0+1 {
		t.Fatalf("batch published %d generations, want 1", got-gen0)
	}
	ws := idx.Metrics().Snapshot().WAL
	if ws.Appends != 1 || ws.Records != 3 || ws.Fsyncs != 1 {
		t.Fatalf("batch group commit: %+v, want 1 append / 3 records / 1 fsync", ws)
	}
	for i := 0; i < 3; i++ {
		if idx.DocFreq(fmt.Sprintf("batch%d", i)) != 1 {
			t.Fatalf("batch term %d unsearchable", i)
		}
	}

	// A batch with a removal takes the materializing path — still one
	// publish, one fsync.
	gen1 := idx.gen.Load()
	if _, err := idx.ApplyBatch([]Mutation{
		{Remove: true, ID: ids[0]},
		{ID: "1", Pos: idx.rootChildCount() - 1, Tag: "n", Text: "batch3 sensor"},
	}); err != nil {
		t.Fatal(err)
	}
	if got := idx.gen.Load(); got != gen1+1 {
		t.Fatalf("mixed batch published %d generations, want 1", got-gen1)
	}
	if idx.DocFreq("batch0") != 0 || idx.DocFreq("batch3") != 1 {
		t.Fatal("mixed batch misapplied")
	}
	if ws := idx.Metrics().Snapshot().WAL; ws.Appends != 2 || ws.Fsyncs != 2 {
		t.Fatalf("mixed batch group commit: %+v", ws)
	}

	// All-or-nothing: an invalid op anywhere aborts the whole batch.
	gen2 := idx.gen.Load()
	if _, err := idx.ApplyBatch([]Mutation{
		{ID: "1", Pos: idx.rootChildCount(), Tag: "n", Text: "batch4 sensor"},
		{ID: "9.9", Pos: 0, Tag: "n", Text: "nope"},
	}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if idx.gen.Load() != gen2 || idx.DocFreq("batch4") != 0 {
		t.Fatal("aborted batch leaked state")
	}
	// Same for the materializing path.
	if _, err := idx.ApplyBatch([]Mutation{
		{Remove: true, ID: ids[1]},
		{ID: "1", Pos: 99999, Tag: "n", Text: "nope"},
	}); err == nil {
		t.Fatal("invalid slow batch accepted")
	}
	if idx.gen.Load() != gen2 || idx.DocFreq("batch1") != 1 {
		t.Fatal("aborted slow batch leaked state")
	}
}

// TestApplyBatchElemRankParity: on an ElemRank index ApplyBatch defers
// the global re-rank to one pass; the outcome must equal per-op
// mutations.
func TestApplyBatchElemRankParity(t *testing.T) {
	const doc = `<r><hub>x<a>m</a><b>m</b></hub><leaf>y</leaf></r>`
	batched, err := Open(strings.NewReader(doc), WithElemRank())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Open(strings.NewReader(doc), WithElemRank())
	if err != nil {
		t.Fatal(err)
	}
	muts := []Mutation{
		{ID: "1", Pos: 2, Tag: "extra", Text: "x y fresh"},
		{ID: "1.1", Pos: 2, Tag: "c", Text: "m y"},
		{Remove: true, ID: "1.2"},
	}
	if _, err := batched.ApplyBatch(muts); err != nil {
		t.Fatal(err)
	}
	for _, m := range muts {
		if m.Remove {
			if err := serial.RemoveElement(m.ID); err != nil {
				t.Fatal(err)
			}
		} else if _, err := serial.InsertElement(m.ID, m.Pos, m.Tag, m.Text); err != nil {
			t.Fatal(err)
		}
	}
	assertIndexParity(t, "elemrank batch", batched, serial, []string{"x y", "m", "x m", "fresh"})
}

// TestIngestCompactionHammer races concurrent readers against a writer
// doing fast appends with an aggressive background-compaction trigger, so
// readers repeatedly hold pins across compaction flips. Run with -race
// in CI; the final state must match a mirror that never compacted.
func TestIngestCompactionHammer(t *testing.T) {
	const doc = `<lib><shelf><b>alpha xml</b></shelf><shelf><b>beta xml</b></shelf></lib>`
	idx, err := Open(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	idx.SetCompactionThreshold(2) // flip constantly
	mirror, err := Open(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	mirror.SetCompactionThreshold(-1)

	done := make(chan struct{})
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		go func() {
			for {
				select {
				case <-done:
					errs <- nil
					return
				default:
				}
				if _, err := idx.Search("alpha xml", SearchOptions{}); err != nil {
					errs <- err
					return
				}
				if _, err := idx.TopK("xml", 3, SearchOptions{}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 120; i++ {
		text := fmt.Sprintf("hx%d xml", i)
		parent := "1"
		if i%3 == 1 {
			parent = "1.1"
		}
		pos := func(ix *Index) int {
			s := ix.view()
			return len(s.visibleChildren(s.nodeByDewey(mustDewey(t, parent))))
		}
		if _, err := idx.InsertElement(parent, pos(idx), "n", text); err != nil {
			t.Fatal(err)
		}
		if _, err := mirror.InsertElement(parent, pos(mirror), "n", text); err != nil {
			t.Fatal(err)
		}
		if i%40 == 39 {
			if err := idx.RemoveElement(fmt.Sprintf("1.1.%d", i%5+1)); err != nil {
				t.Fatal(err)
			}
			if err := mirror.RemoveElement(fmt.Sprintf("1.1.%d", i%5+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(done)
	for r := 0; r < 4; r++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// A deterministic tail: grow a fresh delta and fold it synchronously,
	// so at least one compaction run is guaranteed regardless of how the
	// background races above resolved.
	for j := 0; j < 3; j++ {
		text := fmt.Sprintf("hz%d xml", j)
		if _, err := idx.InsertElement("1", idx.rootChildCount(), "n", text); err != nil {
			t.Fatal(err)
		}
		if _, err := mirror.InsertElement("1", mirror.rootChildCount(), "n", text); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	cs := idx.Metrics().Snapshot().Compaction
	if cs.Runs == 0 {
		t.Fatal("hammer never compacted")
	}
	assertIndexParity(t, "hammer", idx, mirror, []string{"alpha xml", "xml", "hx5 xml", "beta"})
}

// TestShardedIngestWithWALAndCompaction: sharded mutations (batched and
// routed) racing per-shard background compaction, with per-shard WALs,
// must reload into exactly the served state.
func TestShardedIngestWithWALAndCompaction(t *testing.T) {
	const doc = `<lib><a>alpha xml</a><b>beta data</b><c>gamma xml</c><d>delta data</d></lib>`
	sh, err := OpenSharded(strings.NewReader(doc), 2)
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := OpenSharded(strings.NewReader(doc), 2)
	if err != nil {
		t.Fatal(err)
	}
	mirror.SetCompactionThreshold(-1)
	sh.SetCompactionThreshold(3)
	dir := t.TempDir()
	if err := sh.EnableWAL(dir); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	rerr := make(chan error, 2)
	for r := 0; r < 2; r++ {
		go func() {
			for {
				select {
				case <-done:
					rerr <- nil
					return
				default:
				}
				if _, err := sh.Search("xml", SearchOptions{}); err != nil {
					rerr <- err
					return
				}
			}
		}()
	}

	var terms []string
	for i := 0; i < 30; i++ {
		term := fmt.Sprintf("sq%d", i)
		terms = append(terms, term)
		muts := []Mutation{
			{ID: "1.1", Pos: i, Tag: "n", Text: term + " xml"},
			{ID: "1.3", Pos: i, Tag: "n", Text: term + " data"},
		}
		ids1, err := sh.ApplyBatch(muts)
		if err != nil {
			t.Fatal(err)
		}
		ids2, err := mirror.ApplyBatch(muts)
		if err != nil {
			t.Fatal(err)
		}
		if ids1[0] != ids2[0] || ids1[1] != ids2[1] {
			t.Fatalf("op %d: sharded ids diverged: %v vs %v", i, ids1, ids2)
		}
	}
	close(done)
	for r := 0; r < 2; r++ {
		if err := <-rerr; err != nil {
			t.Fatal(err)
		}
	}

	check := func(label string, got *Sharded) {
		t.Helper()
		for _, q := range []string{"xml", "sq7 xml", "sq29 data", "alpha"} {
			g, err := got.Search(q, SearchOptions{})
			if err != nil {
				t.Fatalf("%s: %q: %v", label, q, err)
			}
			w, err := mirror.Search(q, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(g) != len(w) {
				t.Fatalf("%s: %q: %d vs %d results", label, q, len(g), len(w))
			}
			for i := range g {
				if g[i].Dewey != w[i].Dewey || math.Abs(g[i].Score-w[i].Score) > 1e-6*(1+math.Abs(w[i].Score)) {
					t.Fatalf("%s: %q rank %d diverged: %s vs %s", label, q, i, g[i].Dewey, w[i].Dewey)
				}
			}
		}
	}
	check("live", sh)
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	for _, term := range terms {
		if rs, err := loaded.Search(term, SearchOptions{}); err != nil || len(rs) == 0 {
			t.Fatalf("reloaded shard lost %q: %v %v", term, rs, err)
		}
	}
	check("reloaded", loaded)
}

// TestWALRecordCodecRoundTrip fuzz-shapes the mutation codec: every
// encodable mutation round-trips, and corrupt payloads error instead of
// panicking or silently misparsing.
func TestWALRecordCodecRoundTrip(t *testing.T) {
	muts := []Mutation{
		{ID: "1", Pos: 0, Tag: "a", Text: ""},
		{ID: "1.2.3", Pos: 17, Tag: "node", Text: "some text with spaces"},
		{ID: "1.999", Pos: 1 << 20, Tag: "x", Text: strings.Repeat("y", 3000)},
		{Remove: true, ID: "1.4.2"},
	}
	for _, m := range muts {
		var rec []byte
		if m.Remove {
			rec = encodeRemoveRecord(m.ID)
		} else {
			rec = encodeInsertRecord(m.ID, m.Pos, m.Tag, m.Text)
		}
		got, err := decodeMutationRecord(rec)
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip: %+v vs %+v", got, m)
		}
	}
	bad := [][]byte{
		{},
		{99},
		{walOpInsert, 0xff, 0xff},
		append(encodeRemoveRecord("1.2"), 0x01),
		encodeInsertRecord("1", 0, "t", "x")[:5],
	}
	for i, rec := range bad {
		if _, err := decodeMutationRecord(rec); err == nil {
			t.Errorf("corrupt record %d accepted", i)
		}
	}
}

// TestCompactionObservability: a compaction run lands in the flight
// recorder as a stage/compact trace under the "background" label, and
// the write-path counter families appear in the Prometheus exposition.
func TestCompactionObservability(t *testing.T) {
	idx, err := Open(strings.NewReader(faultDocA))
	if err != nil {
		t.Fatal(err)
	}
	idx.SetCompactionThreshold(-1)
	ts := obs.NewTraceStore(8, 4, 0, 1) // threshold 0: retain every completed trace
	idx.SetTraceStore(ts)
	if err := idx.EnableWAL(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	for i := 0; i < 3; i++ {
		if _, err := idx.InsertElement("1", idx.rootChildCount(), "n", fmt.Sprintf("ob%d sensor", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.Compact(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sum := range ts.Traces() {
		if sum.Query != "(compaction)" {
			continue
		}
		found = true
		if sum.Engine != "background" {
			t.Fatalf("compaction trace labeled %q", sum.Engine)
		}
		st, ok := ts.Get(sum.ID)
		if !ok {
			t.Fatal("summary without stored trace")
		}
		hasStage := false
		for _, sp := range st.Spans {
			if sp.Name == obs.StageSpanName(obs.StageCompact) {
				hasStage = true
			}
		}
		if !hasStage {
			t.Fatal("compaction trace missing its stage/compact span")
		}
		if st.Stages == nil || st.Stages.Dominant != obs.StageCompact {
			t.Fatalf("compaction breakdown: %+v", st.Stages)
		}
	}
	if !found {
		t.Fatal("no compaction trace retained")
	}

	var buf bytes.Buffer
	idx.Metrics().Snapshot().WritePrometheus(&buf)
	text := buf.String()
	for _, family := range []string{
		"xkw_wal_appends_total", "xkw_wal_records_total", "xkw_wal_fsyncs_total",
		"xkw_wal_rotations_total", "xkw_compaction_runs_total",
		"xkw_compaction_folded_ops_total", "xkw_compaction_seconds_total",
		"xkw_delta_ops", "xkw_wal_records ",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("exposition missing %s", family)
		}
	}
	if !strings.Contains(text, "xkw_wal_records_total 3") {
		t.Fatal("wal record count not exposed")
	}
	if !strings.Contains(text, "xkw_compaction_runs_total 1") {
		t.Fatal("compaction run count not exposed")
	}
}
