package xmlsearch

import (
	"fmt"
	"time"

	"repro/internal/dewey"
)

// Mutation routing. A global Dewey identifier "1.j.rest" belongs to the
// shard owning top-level child j; the shard sees the local identifier
// "1.(j-off).rest" where off is the shard's child offset. Mutations
// inside a subtree only read the routing table (RLock) and then run
// under the owning shard's writer lock — writers on distinct shards
// proceed concurrently. Mutations that change the top-level child count
// (inserting under the root, removing a whole top-level subtree) take
// the routing table's write lock, so the offsets every concurrent query
// remaps with stay consistent with the counts.
//
// Consistency note: a query scatter reads the routing offsets once and
// each shard pins its own snapshot; a top-level structural mutation
// committing between those reads can shift the global numbering of
// results from later-read shards (the same snapshot-per-shard relaxation
// any federated store exhibits; see DESIGN.md §14). Subtree-interior
// mutations never shift cross-shard numbering.

// route locates the shard owning global top-level child index j
// (1-based, as in a Dewey's second component) and returns its shard
// index and child offset. Callers hold sh.mu.
func (sh *Sharded) routeLocked(j int) (si, off int, ok bool) {
	offs, total := sh.offsetsLocked()
	if j < 1 || j > total {
		return 0, 0, false
	}
	for i := len(offs) - 1; i >= 0; i-- {
		if j > offs[i] {
			return i, offs[i], true
		}
	}
	return 0, 0, false
}

// localID rewrites a global Dewey identifier into shard-local
// coordinates by shifting the top-level component down by off.
func localID(id dewey.ID, off int) dewey.ID {
	l := id.Clone()
	l[1] -= uint32(off)
	return l
}

// InsertElement adds a new leaf element under the element identified by
// its global Dewey identifier, routing to the owning shard's writer (see
// Index.InsertElement for the mutation contract). Inserting directly
// under the root creates a brand-new top-level subtree: the insertion
// position picks the shard (a boundary position joins the preceding
// shard), and the new subtree's fresh Dewey identifiers are assigned by
// that shard.
func (sh *Sharded) InsertElement(parentDewey string, pos int, tag, text string) (newDewey string, err error) {
	start := time.Now()
	defer func() {
		sh.metrics.Writer.RecordMutation(true, 0, false, time.Since(start), err)
	}()
	id, err := dewey.Parse(parentDewey)
	if err != nil {
		return "", fmt.Errorf("xmlsearch: bad parent id: %w", err)
	}
	if id[0] != 1 {
		return "", fmt.Errorf("xmlsearch: no element at %s", parentDewey)
	}
	if len(id) == 1 {
		// New top-level subtree under the (virtual) global root.
		sh.mu.Lock()
		defer sh.mu.Unlock()
		offs, total := sh.offsetsLocked()
		if pos < 0 || pos > total {
			return "", fmt.Errorf("xmlsearch: position %d out of range [0,%d]", pos, total)
		}
		si := 0
		for i := range sh.counts {
			si = i
			if pos <= offs[i]+sh.counts[i] {
				break
			}
		}
		local, lerr := sh.shards[si].InsertElement("1", pos-offs[si], tag, text)
		if lerr != nil {
			return "", lerr
		}
		sh.counts[si]++
		lid, lerr := dewey.Parse(local)
		if lerr != nil {
			return "", lerr
		}
		lid[1] += uint32(offs[si])
		return lid.String(), nil
	}
	sh.mu.RLock()
	si, off, ok := sh.routeLocked(int(id[1]))
	sh.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("xmlsearch: no element at %s", parentDewey)
	}
	local, err := sh.shards[si].InsertElement(localID(id, off).String(), pos, tag, text)
	if err != nil {
		return "", err
	}
	lid, err := dewey.Parse(local)
	if err != nil {
		return "", err
	}
	lid[1] += uint32(off)
	return lid.String(), nil
}

// RemoveElement detaches the element (and subtree) identified by its
// global Dewey identifier, routing to the owning shard's writer. The
// root cannot be removed; removing a whole top-level subtree is allowed
// down to a shard's last one (the shard then stays up, empty, and keeps
// accepting insertions).
func (sh *Sharded) RemoveElement(deweyStr string) (err error) {
	start := time.Now()
	defer func() {
		sh.metrics.Writer.RecordMutation(false, 0, false, time.Since(start), err)
	}()
	id, err := dewey.Parse(deweyStr)
	if err != nil {
		return fmt.Errorf("xmlsearch: bad id: %w", err)
	}
	if len(id) == 1 {
		if id[0] == 1 {
			return fmt.Errorf("xmlsearch: cannot remove the document root")
		}
		return fmt.Errorf("xmlsearch: no element at %s", deweyStr)
	}
	if id[0] != 1 {
		return fmt.Errorf("xmlsearch: no element at %s", deweyStr)
	}
	if len(id) == 2 {
		// Removing a whole top-level subtree changes the routing table.
		sh.mu.Lock()
		defer sh.mu.Unlock()
		si, off, ok := sh.routeLocked(int(id[1]))
		if !ok {
			return fmt.Errorf("xmlsearch: no element at %s", deweyStr)
		}
		if err := sh.shards[si].RemoveElement(localID(id, off).String()); err != nil {
			return err
		}
		sh.counts[si]--
		return nil
	}
	sh.mu.RLock()
	si, off, ok := sh.routeLocked(int(id[1]))
	sh.mu.RUnlock()
	if !ok {
		return fmt.Errorf("xmlsearch: no element at %s", deweyStr)
	}
	return sh.shards[si].RemoveElement(localID(id, off).String())
}

// ApplyBatch applies the mutations in order across the shards. Maximal
// runs of subtree-interior operations are grouped per owning shard and
// applied through each shard's ApplyBatch — one atomic publish, one WAL
// group commit per shard per run — while operations that change the
// top-level routing (inserting under the root, removing a whole top-level
// subtree) are applied singly through the routed paths. Atomicity is per
// shard per run, not global: on error, earlier runs and other shards'
// completed groups stay applied. The returned slice carries each insert's
// new global Dewey identifier ("" for removals).
func (sh *Sharded) ApplyBatch(muts []Mutation) ([]string, error) {
	if len(muts) == 0 {
		return nil, nil
	}
	ids := make([]string, len(muts))
	i := 0
	for i < len(muts) {
		m := muts[i]
		id, perr := dewey.Parse(m.ID)
		if perr != nil {
			if m.Remove {
				return nil, fmt.Errorf("xmlsearch: bad id: %w", perr)
			}
			return nil, fmt.Errorf("xmlsearch: bad parent id: %w", perr)
		}
		if id[0] != 1 || len(id) == 1 || (m.Remove && len(id) == 2) {
			// Root-level (or unroutable) operation: the routed single-op
			// paths handle routing-table updates and error wording.
			var err error
			if m.Remove {
				err = sh.RemoveElement(m.ID)
			} else {
				ids[i], err = sh.InsertElement(m.ID, m.Pos, m.Tag, m.Text)
			}
			if err != nil {
				return nil, err
			}
			i++
			continue
		}
		// Maximal run of interior operations starting at i: group per
		// owning shard, preserving order within each shard.
		type loc struct {
			mi  int
			off int
			m   Mutation
		}
		groups := map[int][]loc{}
		sh.mu.RLock()
		j := i
		for ; j < len(muts); j++ {
			mm := muts[j]
			mid, jerr := dewey.Parse(mm.ID)
			if jerr != nil || mid[0] != 1 || len(mid) == 1 || (mm.Remove && len(mid) == 2) {
				break // the next loop turn deals with it
			}
			si, off, ok := sh.routeLocked(int(mid[1]))
			if !ok {
				sh.mu.RUnlock()
				return nil, fmt.Errorf("xmlsearch: no element at %s", mm.ID)
			}
			lm := mm
			lm.ID = localID(mid, off).String()
			groups[si] = append(groups[si], loc{mi: j, off: off, m: lm})
		}
		for si := 0; si < len(sh.shards); si++ {
			items := groups[si]
			if len(items) == 0 {
				continue
			}
			batch := make([]Mutation, len(items))
			for k, it := range items {
				batch[k] = it.m
			}
			localIDs, err := sh.shards[si].ApplyBatch(batch)
			if err != nil {
				sh.mu.RUnlock()
				return nil, err
			}
			for k, it := range items {
				sh.metrics.Writer.RecordMutation(!it.m.Remove, 0, false, 0, nil)
				if it.m.Remove {
					continue
				}
				lid, perr := dewey.Parse(localIDs[k])
				if perr != nil {
					sh.mu.RUnlock()
					return nil, perr
				}
				lid[1] += uint32(it.off)
				ids[it.mi] = lid.String()
			}
		}
		sh.mu.RUnlock()
		i = j
	}
	return ids, nil
}
