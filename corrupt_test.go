package xmlsearch

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// corruptRandomFile flips a handful of random bytes in (or truncates) one
// random file of an index directory.
func corruptRandomFile(t *testing.T, rng *rand.Rand, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("index dir unreadable: %v", err)
	}
	target := filepath.Join(dir, entries[rng.Intn(len(entries))].Name())
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		return
	}
	if rng.Intn(3) == 0 {
		data = data[:rng.Intn(len(data))]
	} else {
		for i := 0; i < 4; i++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
	}
	if err := os.WriteFile(target, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
