package xmlsearch

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/colstore"
	"repro/internal/faultinject"
)

// corruptRandomFile flips a handful of random bytes in (or truncates) one
// random file of an index directory.
func corruptRandomFile(t *testing.T, rng *rand.Rand, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("index dir unreadable: %v", err)
	}
	target := filepath.Join(dir, entries[rng.Intn(len(entries))].Name())
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		return
	}
	if rng.Intn(3) == 0 {
		data = data[:rng.Intn(len(data))]
	} else {
		for i := 0; i < 4; i++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
	}
	if err := os.WriteFile(target, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorpusLoadQuarantine corrupts part of the postings blob of a saved
// corpus and requires the degraded-service contract end to end: LoadCorpus
// still succeeds, Health names the quarantined terms, queries over healthy
// terms keep working, and queries over quarantined terms come back empty —
// not wrong, not a panic.
func TestCorpusLoadQuarantine(t *testing.T) {
	c := makeCorpus(t,
		`<lib><book><title>sensor network</title></book><book><title>ranking algebra</title></book></lib>`,
		`<lib><paper><title>sensor ranking</title></paper><paper><title>corruption recovery</title></paper></lib>`,
	)
	dir := t.TempDir()
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the middle of the column blob payload: exactly the
	// terms whose extents cover it are damaged.
	gen, v2, err := colstore.CurrentGen(dir)
	if err != nil || !v2 {
		t.Fatalf("no v2 commit point: %v", err)
	}
	colPath := filepath.Join(dir, colstore.GenName("postings.col", gen))
	info, err := os.Stat(colPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.FlipByte(colPath, info.Size()/2, 0); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadCorpus(dir)
	if err != nil {
		t.Fatalf("partial blob damage must not fail LoadCorpus: %v", err)
	}
	if got := loaded.Docs(); len(got) != 2 {
		t.Fatalf("corpus names lost: %v", got)
	}
	h := loaded.Health()
	if !h.Degraded() {
		t.Fatal("Health claims intact corpus despite blob damage")
	}
	if len(h.Quarantined) == 0 {
		// The flip landed between extents is impossible (extents tile the
		// blob), so some term must be quarantined.
		t.Fatalf("no term quarantined: %+v", h)
	}
	if len(h.Quarantined) >= h.Terms {
		t.Fatalf("all %d terms quarantined by a single byte flip", h.Terms)
	}
	bad := map[string]bool{}
	for _, q := range h.Quarantined {
		bad[q.Term] = true
	}
	// A query on a healthy keyword must return the exact intact results;
	// one on a quarantined keyword must be empty without error.
	intactFP := map[string][]Result{}
	for _, w := range []string{"sensor", "ranking", "network", "corruption", "recovery", "algebra"} {
		rs, err := c.Search(w, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		intactFP[w] = rs
	}
	checkedHealthy, checkedBad := false, false
	for w, want := range intactFP {
		got, err := loaded.Search(w, SearchOptions{})
		if err != nil {
			t.Fatalf("query %q over degraded corpus: %v", w, err)
		}
		if bad[w] {
			checkedBad = true
			if len(got) != 0 {
				t.Fatalf("quarantined term %q returned %d results", w, len(got))
			}
			continue
		}
		checkedHealthy = true
		if len(got) != len(want) {
			t.Fatalf("healthy term %q: %d results, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("healthy term %q result %d diverged", w, i)
			}
		}
	}
	if !checkedHealthy {
		t.Fatal("every probe keyword was quarantined; test lost its healthy control")
	}
	_ = checkedBad // the flip may land on a non-probe term; healthy control is the invariant
}

// TestCorpusSaveLoadRoundTrip is the fault-free baseline: names, document
// attribution, and results survive a save/load cycle.
func TestCorpusSaveLoadRoundTrip(t *testing.T) {
	c := makeCorpus(t,
		`<lib><book><title>sensor network</title></book></lib>`,
		`<lib><paper><title>sensor ranking</title></paper></lib>`,
	)
	dir := t.TempDir()
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Docs(), c.Docs(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("names %v, want %v", got, want)
	}
	rs, err := loaded.Search("sensor", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := c.Search("sensor", SearchOptions{})
	if len(rs) != len(want) {
		t.Fatalf("%d results after reload, want %d", len(rs), len(want))
	}
	for i := range rs {
		if rs[i] != want[i] {
			t.Fatalf("result %d diverged after reload", i)
		}
		if loaded.FileOf(rs[i]) != c.FileOf(want[i]) {
			t.Fatalf("result %d attributed to %q, want %q", i, loaded.FileOf(rs[i]), c.FileOf(want[i]))
		}
	}
	if h := loaded.Health(); h.Degraded() || h.Format != 2 {
		t.Fatalf("health after clean reload = %+v", h)
	}
}
