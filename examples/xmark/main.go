// XMark scenario: keyword search over a deep, irregular auction-site
// document, persisted to and reloaded from an on-disk index directory —
// the deployment shape a downstream user of the library would run.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	xmlsearch "repro"
	"repro/internal/gen"
)

func main() {
	ds := gen.XMark(0.05, 7)
	idx, err := xmlsearch.FromDocument(ds.Doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic XMark: %d nodes, depth %d\n", idx.Len(), idx.Depth())

	dir, err := os.MkdirTemp("", "xmark-index-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	start := time.Now()
	if err := idx.Save(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index saved to %s in %v\n", dir, time.Since(start).Round(time.Millisecond))

	loaded, err := xmlsearch.Load(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index reloaded: %d nodes\n\n", loaded.Len())

	for _, q := range ds.Correlated {
		query := strings.Join(q, " ")
		for _, sem := range []struct {
			name string
			s    xmlsearch.Semantics
		}{{"ELCA", xmlsearch.ELCA}, {"SLCA", xmlsearch.SLCA}} {
			start := time.Now()
			rs, err := loaded.TopK(query, 5, xmlsearch.SearchOptions{Semantics: sem.s})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s top-5 for %q in %v\n", sem.name, query, time.Since(start).Round(time.Microsecond))
			for i, r := range rs {
				fmt.Printf("  %d. score=%.3f %-20s %s\n", i+1, r.Score, r.Dewey, r.Path)
			}
		}
		fmt.Println()
	}
}
