// Live maintenance scenario: a bibliography index that keeps serving
// queries while papers are added and retracted. Inserts ride the JDewey
// reserved gaps (Section III-A); only the touched inverted lists are
// rebuilt, as the printed timings show.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	xmlsearch "repro"
)

func main() {
	idx, err := xmlsearch.Open(strings.NewReader(`<dblp>
	  <conf><name>icde</name>
	    <paper><title>join processing in relational databases</title></paper>
	  </conf>
	  <conf><name>vldb</name>
	    <paper><title>column stores for analytics</title></paper>
	  </conf>
	</dblp>`))
	if err != nil {
		log.Fatal(err)
	}
	show := func(query string) {
		rs, err := idx.Search(query, xmlsearch.SearchOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %q -> %d result(s)\n", query, len(rs))
		for _, r := range rs {
			fmt.Printf("     %.3f %-10s %s %q\n", r.Score, r.Dewey, r.Path, r.Snippet)
		}
	}

	fmt.Println("before updates:")
	show("keyword search")
	show("column stores")

	// A new paper lands at ICDE.
	start := time.Now()
	d, err := idx.InsertElement("1.1", 2, "paper", "")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := idx.InsertElement(d, 0, "title", "top-k keyword search in xml databases"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninserted paper %s in %v\n", d, time.Since(start).Round(time.Microsecond))
	show("keyword search")
	show("xml keyword")

	// The column-stores paper is retracted.
	start = time.Now()
	if err := idx.RemoveElement("1.2.2"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nretracted 1.2.2 in %v\n", time.Since(start).Round(time.Microsecond))
	show("column stores")

	// Insertions keep working past the reserved gap: a burst of papers
	// forces a partial JDewey re-encode, invisibly to searches.
	start = time.Now()
	for i := 0; i < 20; i++ {
		p, err := idx.InsertElement("1.2", 1, "paper", "")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := idx.InsertElement(p, 0, "title", fmt.Sprintf("streaming systems part %d", i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\ninserted 20 more papers in %v\n", time.Since(start).Round(time.Microsecond))
	show("streaming systems")
	top, err := idx.TopK("streaming systems", 3, xmlsearch.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  top-3 of %d:\n", len(top))
	for i, r := range top {
		fmt.Printf("     %d. %.3f %s\n", i+1, r.Score, r.Dewey)
	}
}
