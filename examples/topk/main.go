// Top-K anatomy: looks under the hood of the join-based top-K algorithm
// (Section IV) using the internal engine directly, showing how many rows
// the score-sorted cursors pull before the top-10 is proven, against the
// cost of the full evaluation — and how keyword correlation flips which
// engine wins, the paper's Figure 10 story.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/jdewey"
	"repro/internal/occur"
	"repro/internal/topk"
)

func main() {
	ds := gen.DBLP(0.05, 3)
	jdewey.Assign(ds.Doc, 0)
	m := occur.Extract(ds.Doc)
	fmt.Printf("synthetic DBLP: %d nodes\n\n", ds.Doc.Len())

	run := func(label string, keywords []string) {
		var colLists []*colstore.List
		var tkLists []*colstore.TKList
		for _, w := range keywords {
			occs := m.Terms[w]
			if len(occs) == 0 {
				log.Fatalf("keyword %q not in corpus", w)
			}
			colLists = append(colLists, colstore.BuildList(w, occs))
			tkLists = append(tkLists, colstore.BuildTKList(w, occs))
		}

		start := time.Now()
		full, _ := core.Evaluate(colLists, core.Options{})
		fullTime := time.Since(start)

		start = time.Now()
		top, st := topk.Evaluate(tkLists, topk.Options{K: 10})
		topTime := time.Since(start)

		fmt.Printf("%s: %v\n", label, keywords)
		for _, w := range keywords {
			fmt.Printf("  df(%s)=%d", w, len(m.Terms[w]))
		}
		fmt.Printf("\n  full evaluation: %5d results in %8v\n", len(full), fullTime.Round(time.Microsecond))
		fmt.Printf("  top-10:          %5d results in %8v\n", len(top), topTime.Round(time.Microsecond))
		fmt.Printf("  rows pulled %d of %d (%.1f%%), early emissions %d, terminated early: %v\n\n",
			st.RowsPulled, st.RowsTotal, 100*float64(st.RowsPulled)/float64(st.RowsTotal),
			st.EarlyEmits, st.TerminatedEarly)
	}

	// Correlated keywords: many results, top-K terminates early.
	run("correlated query", ds.Correlated[0])
	run("correlated query", ds.Correlated[1])

	// Uncorrelated band terms: few results, top-K degenerates to a full
	// scan — the Figure 10(a) regime where the general join-based
	// algorithm is the better choice.
	low := ds.Bands[ds.BandValues[len(ds.BandValues)-1]]
	run("uncorrelated query", []string{low[0], ds.HighTerms[0]})

	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("threshold ablation (star join vs classic HRJN), correlated query:")
	var tkLists []*colstore.TKList
	for _, w := range ds.Correlated[0] {
		tkLists = append(tkLists, colstore.BuildTKList(w, m.Terms[w]))
	}
	_, star := topk.Evaluate(tkLists, topk.Options{K: 10, Threshold: topk.StarJoin})
	_, classic := topk.Evaluate(tkLists, topk.Options{K: 10, Threshold: topk.ClassicHRJN})
	fmt.Printf("  star-join threshold:  %d rows pulled\n", star.RowsPulled)
	fmt.Printf("  classic threshold:    %d rows pulled\n", classic.RowsPulled)
}
