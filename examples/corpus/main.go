// Corpus scenario: keyword search across several XML documents at once,
// with per-document result attribution and progressive top-K streaming —
// the shape of a small federated search service built on the library.
package main

import (
	"fmt"
	"io"
	"log"
	"strings"

	xmlsearch "repro"
)

var documents = map[string]string{
	"catalog.xml": `<catalog>
	  <product><name>wireless sensor node</name><desc>low power radio network module</desc></product>
	  <product><name>gateway</name><desc>connects the sensor network to the cloud</desc></product>
	</catalog>`,
	"manual.xml": `<manual>
	  <chapter><title>installing the sensor</title><body>mount the sensor and join the network</body></chapter>
	  <chapter><title>troubleshooting</title><body>radio interference and packet loss</body></chapter>
	</manual>`,
	"faq.xml": `<faq>
	  <entry><q>what is the battery life</q><a>about two years per sensor</a></entry>
	  <entry><q>how many nodes per network</q><a>up to 250 in one radio network</a></entry>
	</faq>`,
}

func main() {
	var (
		readers []io.Reader
		names   []string
	)
	for name, content := range map[string]string{
		"catalog.xml": documents["catalog.xml"],
		"manual.xml":  documents["manual.xml"],
		"faq.xml":     documents["faq.xml"],
	} {
		readers = append(readers, strings.NewReader(content))
		names = append(names, name)
	}
	corpus, err := xmlsearch.OpenCorpusReaders(readers, names)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus of %d documents: %v\n\n", len(corpus.Docs()), corpus.Docs())

	for _, query := range []string{"sensor network", "radio network", "battery sensor"} {
		rs, err := corpus.Search(query, xmlsearch.SearchOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%q: %d results\n", query, len(rs))
		for i, r := range rs {
			fmt.Printf("  %d. [%s] score=%.3f %s\n     %q\n", i+1, corpus.FileOf(r), r.Score, r.Path, r.Snippet)
		}
		fmt.Println()
	}

	// Streaming: results arrive the moment the threshold proves them.
	fmt.Println("streaming top-3 for \"sensor network\":")
	rank := 0
	if err := corpus.Index.TopKStream("sensor network", 3, xmlsearch.SearchOptions{}, func(r xmlsearch.Result) bool {
		rank++
		fmt.Printf("  #%d arrives: [%s] %.3f %s\n", rank, corpus.FileOf(r), r.Score, r.Path)
		return true
	}); err != nil {
		log.Fatal(err)
	}
}
