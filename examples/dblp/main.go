// DBLP scenario: the paper's Section III-C running example. A synthetic
// bibliography (papers grouped by conference, then year) is searched with
// keyword pairs whose correlation depends on the context level — rare
// together at the paper level, common at the conference level — and the
// engines are compared side by side.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	xmlsearch "repro"
	"repro/internal/gen"
)

func main() {
	ds := gen.DBLP(0.05, 2026)
	idx, err := xmlsearch.FromDocument(ds.Doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic DBLP: %d nodes, depth %d\n\n", idx.Len(), idx.Depth())

	queries := make([]string, 0, len(ds.Correlated))
	for _, q := range ds.Correlated {
		queries = append(queries, strings.Join(q, " "))
	}

	for _, q := range queries {
		fmt.Printf("query %q", q)
		for _, kw := range xmlsearch.Keywords(q) {
			fmt.Printf("  df(%s)=%d", kw, idx.DocFreq(kw))
		}
		fmt.Println()
		for _, algo := range []struct {
			name string
			a    xmlsearch.Algorithm
		}{
			{"join-based", xmlsearch.AlgoJoin},
			{"stack-based", xmlsearch.AlgoStack},
			{"index-based", xmlsearch.AlgoIndexLookup},
		} {
			start := time.Now()
			rs, err := idx.Search(q, xmlsearch.SearchOptions{Algorithm: algo.a})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s %4d results in %8v", algo.name, len(rs), time.Since(start).Round(time.Microsecond))
			if len(rs) > 0 {
				fmt.Printf("  best: %.3f at %s", rs[0].Score, rs[0].Path)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// Results land at different context levels: papers for tight matches,
	// years/conferences when keywords only co-occur loosely.
	rs, err := idx.Search(queries[0], xmlsearch.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	byPath := map[string]int{}
	for _, r := range rs {
		byPath[r.Path]++
	}
	fmt.Println("result context distribution for", queries[0])
	for p, n := range byPath {
		fmt.Printf("  %-32s %d\n", p, n)
	}
}
