// Quickstart: index a small XML document and run ranked ELCA and SLCA
// keyword searches plus a top-K query through the public API.
package main

import (
	"fmt"
	"log"
	"strings"

	xmlsearch "repro"
)

const doc = `<bib>
  <book year="2003">
    <title>XML data management</title>
    <chapter>
      <section>storing xml in relational databases</section>
      <section>querying semistructured data</section>
    </chapter>
  </book>
  <book year="2006">
    <title>Data warehousing fundamentals</title>
  </book>
  <article>
    <title>Keyword search over XML streams</title>
    <abstract>ranking xml keyword query results with damped tf-idf scores over data trees</abstract>
  </article>
</bib>`

func main() {
	idx, err := xmlsearch.Open(strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d nodes, depth %d, df(xml)=%d df(data)=%d\n\n",
		idx.Len(), idx.Depth(), idx.DocFreq("xml"), idx.DocFreq("data"))

	show := func(title string, rs []xmlsearch.Result, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(title)
		for i, r := range rs {
			fmt.Printf("  %d. score=%.3f %-12s %s\n     %q\n", i+1, r.Score, r.Dewey, r.Path, r.Snippet)
		}
		fmt.Println()
	}

	rs, err := idx.Search("xml data", xmlsearch.SearchOptions{})
	show("ELCA results for {xml, data}:", rs, err)

	rs, err = idx.Search("xml data", xmlsearch.SearchOptions{Semantics: xmlsearch.SLCA})
	show("SLCA results for {xml, data}:", rs, err)

	rs, err = idx.TopK("xml keyword search", 2, xmlsearch.SearchOptions{})
	show("Top-2 for {xml, keyword, search} (join-based top-K):", rs, err)
}
