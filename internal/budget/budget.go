// Package budget tracks per-query resource budgets: a decoded-bytes
// limit charged by the storage layer as inverted lists are materialized,
// and a candidate limit charged by the score-ordered engines as rows are
// pulled. A budget is owned by exactly one query but may be charged from
// several goroutines (the parallel list open fans decodes out), so the
// consumption counters are atomics.
//
// A nil *B is the unlimited budget: every charge on it is a nil-check
// no-op, which keeps unbudgeted queries — the overwhelmingly common
// case — at one predictable branch per charge site.
package budget

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrExceeded is the sentinel every budget trip matches with errors.Is.
// The concrete error is *Error, carrying which resource tripped and by
// how much.
var ErrExceeded = errors.New("budget exceeded")

// Resource names the budgeted dimension that tripped.
type Resource string

const (
	// DecodedBytes is the in-memory size of every inverted list the query
	// materialized (cache hits included: the budget bounds what the query
	// touches, not what it happened to decode first).
	DecodedBytes Resource = "decoded_bytes"
	// Candidates is the number of candidate rows the score-ordered engines
	// pulled from their cursors.
	Candidates Resource = "candidates"
)

// Error reports one budget trip. It matches ErrExceeded under errors.Is.
type Error struct {
	Resource Resource
	Limit    int64
	Used     int64 // consumption including the charge that tripped
}

// Error renders the trip for logs and HTTP error bodies.
func (e *Error) Error() string {
	return fmt.Sprintf("budget exceeded: %s %d > limit %d", e.Resource, e.Used, e.Limit)
}

// Is matches the package sentinel so callers need no type assertion.
func (e *Error) Is(target error) bool { return target == ErrExceeded }

// B is one query's budget: limits fixed at construction, consumption
// accumulated atomically. The zero limit disables enforcement of that
// dimension; consumption is still metered, so a B doubles as the query's
// resource profile (decoded bytes, candidate pulls, cache hits) for the
// query flight recorder.
type B struct {
	maxDecoded    int64
	maxCandidates int64
	decoded       atomic.Int64
	candidates    atomic.Int64
	cacheHits     atomic.Int64
}

// New builds a budget; a non-positive limit leaves that dimension
// unlimited. When both limits are unlimited New returns nil — the
// charge-site no-op — so callers can pass user-supplied options through
// unconditionally.
func New(maxDecodedBytes, maxCandidates int64) *B {
	if maxDecodedBytes <= 0 && maxCandidates <= 0 {
		return nil
	}
	return &B{maxDecoded: maxDecodedBytes, maxCandidates: maxCandidates}
}

// Meter builds an enforcement-free budget: every charge accumulates,
// nothing ever trips. The facade hands one to otherwise-unbudgeted
// queries when the flight recorder is on, so their records still carry
// the resource profile.
func Meter() *B { return &B{} }

// ChargeDecoded accounts n decoded bytes against the budget, returning a
// *Error once the running total exceeds the limit (never with no limit).
// Nil-safe.
func (b *B) ChargeDecoded(n int64) error {
	if b == nil {
		return nil
	}
	used := b.decoded.Add(n)
	if b.maxDecoded > 0 && used > b.maxDecoded {
		return &Error{Resource: DecodedBytes, Limit: b.maxDecoded, Used: used}
	}
	return nil
}

// ChargeCandidates accounts n pulled candidate rows against the budget,
// returning a *Error once the running total exceeds the limit (never
// with no limit). Nil-safe.
func (b *B) ChargeCandidates(n int64) error {
	if b == nil {
		return nil
	}
	used := b.candidates.Add(n)
	if b.maxCandidates > 0 && used > b.maxCandidates {
		return &Error{Resource: Candidates, Limit: b.maxCandidates, Used: used}
	}
	return nil
}

// NoteCacheHit counts one decoded-list cache hit for this query. Cache
// hits are metered, never limited. Nil-safe.
func (b *B) NoteCacheHit() {
	if b == nil {
		return
	}
	b.cacheHits.Add(1)
}

// CacheHits returns the decoded-list cache hits noted so far. Nil-safe.
func (b *B) CacheHits() int64 {
	if b == nil {
		return 0
	}
	return b.cacheHits.Load()
}

// Decoded returns the decoded bytes charged so far. Nil-safe.
func (b *B) Decoded() int64 {
	if b == nil {
		return 0
	}
	return b.decoded.Load()
}

// Candidates returns the candidate rows charged so far. Nil-safe.
func (b *B) Candidates() int64 {
	if b == nil {
		return 0
	}
	return b.candidates.Load()
}
