package budget

import (
	"errors"
	"sync"
	"testing"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *B
	if err := b.ChargeDecoded(1 << 40); err != nil {
		t.Fatalf("nil budget charged decoded: %v", err)
	}
	if err := b.ChargeCandidates(1 << 40); err != nil {
		t.Fatalf("nil budget charged candidates: %v", err)
	}
	if b.Decoded() != 0 || b.Candidates() != 0 {
		t.Fatalf("nil budget reports consumption")
	}
}

func TestNewUnlimitedReturnsNil(t *testing.T) {
	if New(0, 0) != nil {
		t.Fatalf("New(0,0) should be the nil (unlimited) budget")
	}
	if New(-1, -5) != nil {
		t.Fatalf("negative limits should be the nil (unlimited) budget")
	}
	if New(1, 0) == nil || New(0, 1) == nil {
		t.Fatalf("a single positive limit must allocate a budget")
	}
}

func TestChargeDecodedTrips(t *testing.T) {
	b := New(100, 0)
	if err := b.ChargeDecoded(100); err != nil {
		t.Fatalf("charge at limit must pass: %v", err)
	}
	err := b.ChargeDecoded(1)
	if err == nil {
		t.Fatalf("charge past limit must trip")
	}
	if !errors.Is(err, ErrExceeded) {
		t.Fatalf("trip must match ErrExceeded, got %v", err)
	}
	var be *Error
	if !errors.As(err, &be) {
		t.Fatalf("trip must be a *Error, got %T", err)
	}
	if be.Resource != DecodedBytes || be.Limit != 100 || be.Used != 101 {
		t.Fatalf("bad trip detail: %+v", be)
	}
	// Candidates dimension is unlimited on this budget.
	if err := b.ChargeCandidates(1 << 30); err != nil {
		t.Fatalf("unlimited candidates dimension tripped: %v", err)
	}
}

func TestChargeCandidatesTrips(t *testing.T) {
	b := New(0, 3)
	for i := 0; i < 3; i++ {
		if err := b.ChargeCandidates(1); err != nil {
			t.Fatalf("charge %d within limit tripped: %v", i, err)
		}
	}
	err := b.ChargeCandidates(1)
	if !errors.Is(err, ErrExceeded) {
		t.Fatalf("want ErrExceeded, got %v", err)
	}
	var be *Error
	if !errors.As(err, &be) || be.Resource != Candidates {
		t.Fatalf("want candidates trip, got %v", err)
	}
	if b.Candidates() != 4 {
		t.Fatalf("consumption = %d, want 4 (including the tripping charge)", b.Candidates())
	}
}

func TestConcurrentChargesTripExactlyPastLimit(t *testing.T) {
	const (
		workers = 8
		each    = 1000
		limit   = workers*each - 500
	)
	b := New(0, limit)
	var wg sync.WaitGroup
	trips := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := b.ChargeCandidates(1); err != nil {
					trips[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range trips {
		total += n
	}
	if total != workers*each-limit {
		t.Fatalf("trips = %d, want %d (every charge past the limit)", total, workers*each-limit)
	}
}
