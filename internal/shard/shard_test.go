package shard

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsAll(t *testing.T) {
	p := NewPool(3)
	if p.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", p.Workers())
	}
	var hits [17]int32
	p.Each(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, h)
		}
	}
	// n = 0 and n = 1 paths.
	p.Each(0, func(int) { t.Fatal("fn called for n=0") })
	ran := false
	p.Each(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("fn(0) not called for n=1")
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 2
	p := NewPool(workers)
	var cur, peak int32
	var mu sync.Mutex
	p.Each(16, func(int) {
		n := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
		// Busy-wait a moment so overlaps are observable.
		for i := 0; i < 1000; i++ {
			_ = atomic.LoadInt32(&cur)
		}
		atomic.AddInt32(&cur, -1)
	})
	if peak > workers {
		t.Fatalf("observed %d concurrent tasks, pool bound is %d", peak, workers)
	}
}

func TestPoolSharedAcrossQueries(t *testing.T) {
	// Two concurrent "queries" share one pool; both must complete.
	p := NewPool(1)
	var wg sync.WaitGroup
	var total int32
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Each(4, func(int) { atomic.AddInt32(&total, 1) })
		}()
	}
	wg.Wait()
	if total != 8 {
		t.Fatalf("ran %d tasks, want 8", total)
	}
}

func TestThresholdKth(t *testing.T) {
	th := NewThreshold(3)
	if !math.IsInf(th.Kth(), -1) {
		t.Fatalf("empty threshold Kth = %v, want -Inf", th.Kth())
	}
	th.Offer(5)
	th.Offer(1)
	if !math.IsInf(th.Kth(), -1) {
		t.Fatalf("underfull threshold Kth = %v, want -Inf", th.Kth())
	}
	th.Offer(3)
	if got := th.Kth(); got != 1 {
		t.Fatalf("Kth = %v, want 1", got)
	}
	th.Offer(4) // top-3 becomes {5,4,3}
	if got := th.Kth(); got != 3 {
		t.Fatalf("Kth = %v, want 3", got)
	}
	th.Offer(2) // below current Kth: no change
	if got := th.Kth(); got != 3 {
		t.Fatalf("Kth after low offer = %v, want 3", got)
	}
	th.Offer(10) // top-3 becomes {10,5,4}
	if got := th.Kth(); got != 4 {
		t.Fatalf("Kth = %v, want 4", got)
	}
}

func TestThresholdMonotone(t *testing.T) {
	th := NewThreshold(2)
	prev := math.Inf(-1)
	for _, s := range []float64{3, 7, 1, 9, 2, 8, 8, 0.5} {
		th.Offer(s)
		k := th.Kth()
		if k < prev {
			t.Fatalf("Kth decreased: %v after %v", k, prev)
		}
		prev = k
	}
	if prev != 8 {
		t.Fatalf("final Kth = %v, want 8", prev)
	}
}

func TestThresholdConcurrent(t *testing.T) {
	th := NewThreshold(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				th.Offer(float64(g*100 + i))
				_ = th.Kth()
			}
		}(g)
	}
	wg.Wait()
	// Best four scores overall are 799, 798, 797, 796.
	if got := th.Kth(); got != 796 {
		t.Fatalf("final Kth = %v, want 796", got)
	}
}

// TestEachTimedReportsWait: every task receives a non-negative queue
// wait, and a task that had to wait for a saturated pool reports a wait
// at least as long as the holder kept its slot.
func TestEachTimedReportsWait(t *testing.T) {
	p := NewPool(1)
	const hold = 20 * time.Millisecond
	waits := make([]time.Duration, 2)
	p.EachTimed(len(waits), func(i int, wait time.Duration) {
		waits[i] = wait
		if i == 0 {
			time.Sleep(hold)
		}
	})
	for i, w := range waits {
		if w < 0 {
			t.Fatalf("task %d wait = %v, want >= 0", i, w)
		}
	}
	// With one worker, submission of task 1 blocks until task 0 releases
	// its slot, so its measured wait covers the hold.
	if waits[1] < hold/2 {
		t.Errorf("queued task wait = %v, want >= %v", waits[1], hold/2)
	}
}
