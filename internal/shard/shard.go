// Package shard holds the coordinator-side primitives of the sharded
// index: a bounded worker pool that caps how many per-shard evaluations
// run at once (across every concurrent scatter-gather query sharing the
// pool), and the threshold-exchange accumulator — a concurrent top-K
// score heap whose K-th best value is the coordinator's cancel signal
// to shards whose remaining results provably cannot place (the §IV-C
// unseen-result bound turned inside out: instead of each shard bounding
// its own unseen results, the coordinator bounds what a shard would
// still need to beat).
package shard

import (
	"math"
	"sync"
	"time"
)

// Pool bounds concurrent shard evaluations. One pool is shared by every
// query of a sharded index, so total engine parallelism stays capped at
// the worker count no matter how many queries scatter at once; excess
// tasks queue on the semaphore. Tasks never block on one another, so the
// shared semaphore cannot deadlock — a scatter just proceeds with less
// parallelism under load.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool running at most workers tasks concurrently
// (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Each runs fn(0) … fn(n-1) concurrently, bounded by the pool's worker
// count, and returns when every call has finished. fn must handle its
// own panics; the indices partition the work, so calls share nothing
// unless fn makes them.
func (p *Pool) Each(n int, fn func(i int)) {
	p.EachTimed(n, func(i int, _ time.Duration) { fn(i) })
}

// EachTimed is Each with queue-slot accounting: each call receives how
// long its task waited for a pool slot (the blocking semaphore send in
// the submit loop — the admission latency a scatter pays under load).
// The wait is measured on the submitting goroutine, so it includes time
// spent behind this scatter's own earlier tasks as well as other
// concurrent queries.
func (p *Pool) EachTimed(n int, fn func(i int, wait time.Duration)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		t0 := time.Now()
		p.sem <- struct{}{}
		wait := time.Since(t0)
		fn(0, wait)
		<-p.sem
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		p.sem <- struct{}{}
		wait := time.Since(t0)
		go func(i int, wait time.Duration) {
			defer func() {
				<-p.sem
				wg.Done()
			}()
			fn(i, wait)
		}(i, wait)
	}
	wg.Wait()
}

// Threshold is the coordinator's running bound for one scatter-gather
// query: the K-th best score offered so far across every shard. Kth is
// monotone nondecreasing (results only ever raise it), so once a shard's
// next result scores strictly below Kth, every later result from that
// shard — shards emit in descending score order — scores strictly below
// the final global K-th as well and the shard can be cancelled without
// affecting the answer. It is safe for concurrent Offer/Kth from every
// shard's emit callback.
type Threshold struct {
	mu   sync.Mutex
	k    int
	heap []float64 // min-heap of the best k scores offered
}

// NewThreshold returns a threshold for a top-k merge (k >= 1).
func NewThreshold(k int) *Threshold {
	if k < 1 {
		k = 1
	}
	return &Threshold{k: k, heap: make([]float64, 0, k)}
}

// Offer folds one candidate score into the running top-k.
func (t *Threshold) Offer(score float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.heap) < t.k {
		t.heap = append(t.heap, score)
		t.up(len(t.heap) - 1)
		return
	}
	if score <= t.heap[0] {
		return
	}
	t.heap[0] = score
	t.down(0)
}

// Kth returns the K-th best score offered so far, or -Inf while fewer
// than k scores have been offered (no shard can be cancelled before the
// global top-k is even populated).
func (t *Threshold) Kth() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.heap) < t.k {
		return math.Inf(-1)
	}
	return t.heap[0]
}

func (t *Threshold) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent] <= t.heap[i] {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *Threshold) down(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && t.heap[l] < t.heap[least] {
			least = l
		}
		if r < n && t.heap[r] < t.heap[least] {
			least = r
		}
		if least == i {
			return
		}
		t.heap[i], t.heap[least] = t.heap[least], t.heap[i]
		i = least
	}
}
