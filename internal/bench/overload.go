package bench

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	xmlsearch "repro"
	"repro/internal/gen"
	"repro/internal/obshttp"
)

// The overload experiment measures the serving stack's degradation
// behavior rather than raw engine speed: it drives the full HTTP stack
// (admission control included, over a real loopback listener so requests
// genuinely overlap) at twice its in-flight capacity and reports what
// the resilience layer did — how much load was shed, how many admitted
// queries settled as certified-partial answers, and the latency the
// admitted queries saw. CI stores the report next to the smoke gate so a
// regression in degradation behavior (shedding stops working, partial
// settlement breaks, admitted-latency blows up under contention) is
// machine-visible.

// overloadInflight and overloadQueue size the admission policy under
// test. Small on purpose: the hammer needs to exceed capacity with a
// modest number of goroutines on any CI machine.
const (
	overloadInflight = 8
	overloadQueue    = 4
)

// overloadRequest is one pre-built hammer request.
type overloadRequest struct {
	url string
	// budgeted requests carry a tight candidate budget plus partial=1, so
	// they settle as certified-partial 200s instead of erroring.
	budgeted bool
}

// overloadWorkload builds the request mix: the mid-band k=2 queries as
// plain top-K requests, every third one duplicated with a candidate
// budget low enough to trip mid-evaluation and partial=1 to opt into
// the certified-partial settlement.
func overloadWorkload(ds *gen.Dataset, seed int64, queriesPerPt, topK int) []overloadRequest {
	mid := ds.BandValues[len(ds.BandValues)/2]
	qs := (&Env{DS: ds}).BandQueries(seed, 2, mid, queriesPerPt)
	out := make([]overloadRequest, 0, len(qs)*4/3)
	for i, q := range qs {
		base := fmt.Sprintf("/search?q=%s&k=%d", strings.Join(q, "+"), topK)
		out = append(out, overloadRequest{url: base})
		if i%3 == 0 {
			out = append(out, overloadRequest{url: base + "&maxcand=2&partial=1", budgeted: true})
		}
	}
	return out
}

// overloadOutcome tallies one phase of the hammer.
type overloadOutcome struct {
	mu                             sync.Mutex
	total, admitted, shed, partial int
	durs                           []time.Duration // admitted requests only
}

func (o *overloadOutcome) point(exp, label string, queries, reps int) Point {
	sort.Slice(o.durs, func(i, j int) bool { return o.durs[i] < o.durs[j] })
	var total time.Duration
	for _, d := range o.durs {
		total += d
	}
	var mean time.Duration
	var qps float64
	if len(o.durs) > 0 {
		mean = total / time.Duration(len(o.durs))
		if total > 0 {
			qps = float64(len(o.durs)) / total.Seconds()
		}
	}
	return Point{
		Exp: exp, Engine: "http", Label: label, K: 0,
		Queries: queries, Reps: reps,
		P50Ns: int64(quantile(o.durs, 50)), P95Ns: int64(quantile(o.durs, 95)),
		P99Ns: int64(quantile(o.durs, 99)), MeanNs: int64(mean), QPS: qps,
	}
}

// run fires every request once over the wire, accounting status and
// latency. Safe for concurrent use.
func (o *overloadOutcome) run(client *http.Client, base string, reqs []overloadRequest) error {
	for _, req := range reqs {
		start := time.Now()
		resp, err := client.Get(base + req.url)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		d := time.Since(start)
		o.mu.Lock()
		o.total++
		switch resp.StatusCode {
		case http.StatusOK:
			o.admitted++
			o.durs = append(o.durs, d)
			if strings.Contains(string(body), `"partial": true`) {
				o.partial++
			}
		case http.StatusServiceUnavailable:
			o.shed++
		}
		o.mu.Unlock()
	}
	return nil
}

// Overload runs the degradation benchmark: an uncontended pass for the
// baseline latency, then 2x overloadInflight workers hammering the
// server in closed loops. The report's ShedRate/PartialRate/
// AdmissionRejected fields summarize the overload phase.
func Overload(cfg Config) (*Report, error) {
	ds := gen.DBLP(cfg.Scale, cfg.Seed)
	ix, err := xmlsearch.FromDocument(ds.Doc)
	if err != nil {
		return nil, fmt.Errorf("bench: index for overload: %w", err)
	}
	// The hammer needs handlers to genuinely overlap: on a machine with
	// fewer cores than workers, CPU-bound handlers would otherwise run to
	// completion one at a time and the in-flight semaphore would never
	// fill. Extra Ps let the OS timeslice mid-handler, so offered
	// concurrency reaches the admission layer like it does on big servers.
	workers := 2 * overloadInflight
	if prev := runtime.GOMAXPROCS(0); prev < workers {
		runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
	}

	h := obshttp.NewHandler(ix, obshttp.Options{MaxInflight: overloadInflight, QueueLen: overloadQueue})
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := srv.Client()
	reqs := overloadWorkload(ds, cfg.Seed, cfg.QueriesPerPt, cfg.TopK)

	// Uncontended baseline: one closed loop, nothing ever queues or sheds.
	if err := (&overloadOutcome{}).run(client, srv.URL, reqs); err != nil { // warm-up pass
		return nil, fmt.Errorf("bench: overload warm-up: %w", err)
	}
	uncontended := &overloadOutcome{}
	for r := 0; r < cfg.RepsPerQuery; r++ {
		if err := uncontended.run(client, srv.URL, reqs); err != nil {
			return nil, fmt.Errorf("bench: overload baseline: %w", err)
		}
	}

	// Overload phase: twice the in-flight capacity in concurrent closed
	// loops, so at any instant about half the offered load must be shed
	// or queued.
	contended := &overloadOutcome{}
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < cfg.RepsPerQuery; r++ {
				if err := contended.run(client, srv.URL, reqs); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, fmt.Errorf("bench: overload hammer: %w", err)
	}

	r := &Report{Exp: "overload", Env: CurrentFingerprint(), Config: cfg}
	r.Points = append(r.Points,
		uncontended.point("overload", "uncontended", len(reqs), cfg.RepsPerQuery),
		contended.point("overload", "2x-inflight", len(reqs), cfg.RepsPerQuery),
	)
	if contended.total > 0 {
		r.ShedRate = float64(contended.shed) / float64(contended.total)
	}
	if contended.admitted > 0 {
		r.PartialRate = float64(contended.partial) / float64(contended.admitted)
	}
	r.AdmissionRejected = ix.Metrics().Snapshot().Serving.AdmissionRejected
	return r, nil
}
