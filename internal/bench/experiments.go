package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ixlookup"
	"repro/internal/stack"
	"repro/internal/topk"
)

// Config sizes the experiment sweep. Defaults approximate the paper's
// protocol scaled to the synthetic corpora.
type Config struct {
	Scale        float64 // dataset scale factor
	Seed         int64
	QueriesPerPt int // queries per (k, band) point; the paper uses 40
	RepsPerQuery int // repetitions per query; the paper uses 5
	TopK         int // K for the top-K experiments; the paper uses 10
	MaxKeywords  int // keyword counts 2..MaxKeywords; the paper uses 5
}

// DefaultConfig is sized to regenerate every figure in a few minutes.
func DefaultConfig() Config {
	return Config{Scale: 0.25, Seed: 1, QueriesPerPt: 8, RepsPerQuery: 3, TopK: 10, MaxKeywords: 5}
}

// FullConfig mirrors the paper's protocol (40 queries x 5 runs).
func FullConfig() Config {
	return Config{Scale: 1.0, Seed: 1, QueriesPerPt: 40, RepsPerQuery: 5, TopK: 10, MaxKeywords: 5}
}

// Table1 prints the index-size accounting for both datasets.
func Table1(w io.Writer, dblp, xmark *Env) {
	fmt.Fprintln(w, "== Table I: index sizes ==")
	fmt.Fprintf(w, "%-22s %14s %14s\n", "", "DBLP", "XMark")
	row := func(name string, f func(e *Env) int64) {
		fmt.Fprintf(w, "%-22s %14s %14s\n", name, fmtBytes(f(dblp)), fmtBytes(f(xmark)))
	}
	dblpStats, xmarkStats := dblp.Store.Stats(), xmark.Store.Stats()
	pick := func(e *Env, a, b int64) int64 {
		if e == dblp {
			return a
		}
		return b
	}
	row("join-based IL", func(e *Env) int64 { return pick(e, dblpStats.ColumnLists, xmarkStats.ColumnLists) })
	row("join-based sparse", func(e *Env) int64 { return pick(e, dblpStats.ColumnSparse, xmarkStats.ColumnSparse) })
	row("stack-based IL", func(e *Env) int64 { return e.Inv.EncodedSize() })
	row("index-based B-tree", func(e *Env) int64 { return e.Inv.KeyPerPostingBTreeSize() })
	row("top-K join IL", func(e *Env) int64 { return pick(e, dblpStats.TopKLists, xmarkStats.TopKLists) })
	row("top-K join sparse", func(e *Env) int64 { return pick(e, dblpStats.TopKSparse, xmarkStats.TopKSparse) })
	row("RDIL IL", func(e *Env) int64 { return e.Inv.EncodedSize() })
	row("RDIL B-tree", func(e *Env) int64 { return e.Inv.ScoreOrderBTreeSize() })
	fmt.Fprintln(w)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Figure9 prints the complete-result query performance sweep: parts
// (a)-(d) vary the low frequency under a fixed high frequency for k=2..5
// keywords; parts (e)-(f) use equal-frequency keywords.
func Figure9(w io.Writer, e *Env, cfg Config) {
	fmt.Fprintf(w, "== Figure 9: complete result set, %s (high df=%d, ELCA) ==\n", e.DS.Name, e.DS.HighDF)
	part := 'a'
	for k := 2; k <= cfg.MaxKeywords; k++ {
		fmt.Fprintf(w, "-- 9(%c): k=%d, one low-frequency keyword + %d high --\n", part, k, k-1)
		fmt.Fprintf(w, "%-10s %14s %14s %14s\n", "low df", "join-based", "stack-based", "index-based")
		for _, low := range e.DS.BandValues {
			qs := e.BandQueries(cfg.Seed, k, low, cfg.QueriesPerPt)
			j := meanOver(qs, cfg.RepsPerQuery, func(q []string) { e.RunJoin(q, core.ELCA, core.PlanAuto) })
			s := meanOver(qs, cfg.RepsPerQuery, func(q []string) { e.RunStack(q, stack.ELCA) })
			x := meanOver(qs, cfg.RepsPerQuery, func(q []string) { e.RunIxlookup(q, ixlookup.ELCA) })
			fmt.Fprintf(w, "%-10d %14v %14v %14v\n", low, j, s, x)
		}
		part++
	}
	equalDFs := []int{e.DS.HighDF}
	if n := len(e.DS.BandValues); n >= 2 && e.DS.BandValues[n-2] != e.DS.HighDF {
		equalDFs = []int{e.DS.BandValues[n-2], e.DS.HighDF}
	}
	for _, df := range equalDFs {
		fmt.Fprintf(w, "-- 9(%c): equal frequencies, df=%d --\n", part, df)
		fmt.Fprintf(w, "%-10s %14s %14s %14s\n", "k", "join-based", "stack-based", "index-based")
		for k := 2; k <= cfg.MaxKeywords; k++ {
			qs := e.EqualFreqQueries(cfg.Seed, k, df, cfg.QueriesPerPt)
			j := meanOver(qs, cfg.RepsPerQuery, func(q []string) { e.RunJoin(q, core.ELCA, core.PlanAuto) })
			s := meanOver(qs, cfg.RepsPerQuery, func(q []string) { e.RunStack(q, stack.ELCA) })
			x := meanOver(qs, cfg.RepsPerQuery, func(q []string) { e.RunIxlookup(q, ixlookup.ELCA) })
			fmt.Fprintf(w, "%-10d %14v %14v %14v\n", k, j, s, x)
		}
		part++
	}
	fmt.Fprintln(w)
}

// Figure10 prints the top-K performance comparison: (a) random
// low-correlation queries over the frequency bands, (b)/(c) hand-picked
// correlated queries.
func Figure10(w io.Writer, e *Env, cfg Config) {
	fmt.Fprintf(w, "== Figure 10: top-%d results, %s (ELCA) ==\n", cfg.TopK, e.DS.Name)
	fmt.Fprintln(w, "-- 10(a): random (low-correlation) queries, k=2, one low + one high keyword --")
	fmt.Fprintf(w, "%-10s %14s %14s %14s %14s\n", "low df", "top-K join", "join (full)", "RDIL", "hybrid (V-D)")
	for _, low := range e.DS.BandValues {
		qs := e.BandQueries(cfg.Seed, 2, low, cfg.QueriesPerPt)
		tk := meanOver(qs, cfg.RepsPerQuery, func(q []string) { e.RunTopKJoin(q, cfg.TopK, topk.StarJoin) })
		jf := meanOver(qs, cfg.RepsPerQuery, func(q []string) { e.RunJoinThenSort(q, cfg.TopK) })
		rd := meanOver(qs, cfg.RepsPerQuery, func(q []string) { e.RunRDIL(q, cfg.TopK) })
		hy := meanOver(qs, cfg.RepsPerQuery, func(q []string) { e.RunHybrid(q, cfg.TopK) })
		fmt.Fprintf(w, "%-10d %14v %14v %14v %14v\n", low, tk, jf, rd, hy)
	}
	fmt.Fprintln(w, "-- 10(b)/(c): hand-picked correlated queries --")
	fmt.Fprintf(w, "%-36s %14s %14s %14s %14s\n", "query", "top-K join", "join (full)", "RDIL", "hybrid (V-D)")
	for _, q := range e.CorrelatedQueries() {
		q := q
		tk := Timing(cfg.RepsPerQuery, func() { e.RunTopKJoin(q, cfg.TopK, topk.StarJoin) })
		jf := Timing(cfg.RepsPerQuery, func() { e.RunJoinThenSort(q, cfg.TopK) })
		rd := Timing(cfg.RepsPerQuery, func() { e.RunRDIL(q, cfg.TopK) })
		hy := Timing(cfg.RepsPerQuery, func() { e.RunHybrid(q, cfg.TopK) })
		fmt.Fprintf(w, "%-36s %14v %14v %14v %14v\n", strings.Join(q, " "), tk, jf, rd, hy)
	}
	fmt.Fprintln(w)
}

// AblationThreshold compares rows pulled under the star-join threshold
// (Section IV-B) against the classic HRJN threshold on the correlated
// queries, where the bound tightness decides how early emission starts.
func AblationThreshold(w io.Writer, e *Env, cfg Config) {
	fmt.Fprintf(w, "== Ablation A1: star-join vs classic threshold (rows pulled, top-%d), %s ==\n", cfg.TopK, e.DS.Name)
	fmt.Fprintf(w, "%-36s %12s %12s %12s\n", "query", "star", "classic", "total rows")
	for _, q := range e.CorrelatedQueries() {
		_, sStar := e.RunTopKJoin(q, cfg.TopK, topk.StarJoin)
		_, sClassic := e.RunTopKJoin(q, cfg.TopK, topk.ClassicHRJN)
		fmt.Fprintf(w, "%-36s %12d %12d %12d\n", strings.Join(q, " "), sStar.RowsPulled, sClassic.RowsPulled, sStar.RowsTotal)
	}
	fmt.Fprintln(w)
}

// AblationJoinPlan compares the dynamic join-plan selection of Section
// III-C against forcing the merge join or the index join everywhere.
func AblationJoinPlan(w io.Writer, e *Env, cfg Config) {
	fmt.Fprintf(w, "== Ablation A2: join-plan selection (k=3), %s ==\n", e.DS.Name)
	fmt.Fprintf(w, "%-10s %14s %14s %14s\n", "low df", "dynamic", "merge-only", "index-only")
	for _, low := range e.DS.BandValues {
		qs := e.BandQueries(cfg.Seed, 3, low, cfg.QueriesPerPt)
		auto := meanOver(qs, cfg.RepsPerQuery, func(q []string) { e.RunJoin(q, core.ELCA, core.PlanAuto) })
		merge := meanOver(qs, cfg.RepsPerQuery, func(q []string) { e.RunJoin(q, core.ELCA, core.PlanMergeOnly) })
		index := meanOver(qs, cfg.RepsPerQuery, func(q []string) { e.RunJoin(q, core.ELCA, core.PlanIndexOnly) })
		fmt.Fprintf(w, "%-10d %14v %14v %14v\n", low, auto, merge, index)
	}
	fmt.Fprintln(w)
}

// AblationKSweep extends the paper's fixed K=10 with a K sweep on a
// correlated query: the rows the top-K join must pull to prove the answer
// grow with K, closing in on the full evaluation as K approaches the
// result count.
func AblationKSweep(w io.Writer, e *Env, cfg Config) {
	q := e.CorrelatedQueries()[0]
	total := len(q)
	_ = total
	full := Timing(cfg.RepsPerQuery, func() { e.RunJoinThenSort(q, 1<<30) })
	results := e.RunJoin(q, core.ELCA, core.PlanAuto)
	fmt.Fprintf(w, "== Ablation A4: K sweep, %s, query %v (%d results; full evaluation %v) ==\n",
		e.DS.Name, q, results, full)
	fmt.Fprintf(w, "%-8s %14s %12s %12s\n", "K", "top-K join", "rows pulled", "of total")
	for _, k := range []int{1, 5, 10, 25, 50, 100} {
		k := k
		var st topk.Stats
		d := Timing(cfg.RepsPerQuery, func() { _, st = e.RunTopKJoin(q, k, topk.StarJoin) })
		fmt.Fprintf(w, "%-8d %14v %12d %11.1f%%\n", k, d, st.RowsPulled,
			100*float64(st.RowsPulled)/float64(st.RowsTotal))
	}
	fmt.Fprintln(w)
}

// SemanticsParity quantifies the paper's Section V remark that "query
// execution time for the SLCA semantics is around the same as the ELCA
// semantics for any algorithm": for each engine, the SLCA/ELCA time ratio
// over the mid-band workload.
func SemanticsParity(w io.Writer, e *Env, cfg Config) {
	fmt.Fprintf(w, "== SLCA vs ELCA parity, %s (k=2, mid band) ==\n", e.DS.Name)
	fmt.Fprintf(w, "%-14s %14s %14s %8s\n", "engine", "ELCA", "SLCA", "ratio")
	mid := e.DS.BandValues[len(e.DS.BandValues)/2]
	qs := e.BandQueries(cfg.Seed, 2, mid, cfg.QueriesPerPt)
	engines := []struct {
		name string
		run  func(q []string, slca bool)
	}{
		{"join-based", func(q []string, slca bool) {
			sem := core.ELCA
			if slca {
				sem = core.SLCA
			}
			e.RunJoin(q, sem, core.PlanAuto)
		}},
		{"stack-based", func(q []string, slca bool) {
			sem := stack.ELCA
			if slca {
				sem = stack.SLCA
			}
			e.RunStack(q, sem)
		}},
		{"index-based", func(q []string, slca bool) {
			sem := ixlookup.ELCA
			if slca {
				sem = ixlookup.SLCA
			}
			e.RunIxlookup(q, sem)
		}},
	}
	for _, eng := range engines {
		eng := eng
		elca := meanOver(qs, cfg.RepsPerQuery, func(q []string) { eng.run(q, false) })
		slca := meanOver(qs, cfg.RepsPerQuery, func(q []string) { eng.run(q, true) })
		ratio := float64(slca) / float64(elca)
		fmt.Fprintf(w, "%-14s %14v %14v %7.2fx\n", eng.name, elca, slca, ratio)
	}
	fmt.Fprintln(w)
}

// AblationCompression reports the column-store compression effectiveness:
// compressed bytes vs the raw (value, row) encoding the columns would take.
func AblationCompression(w io.Writer, envs ...*Env) {
	fmt.Fprintln(w, "== Ablation A3: column compression ==")
	fmt.Fprintf(w, "%-10s %14s %14s %8s\n", "dataset", "compressed", "raw", "ratio")
	for _, e := range envs {
		st := e.Store.Stats()
		var raw int64
		for _, wrd := range e.Store.Words() {
			l := e.Store.List(wrd)
			for ci := range l.Cols {
				raw += int64(l.Cols[ci].NumEntries() * 8) // uint32 value + uint32 row id
			}
			raw += int64(len(l.Lens)) + int64(4*len(l.Scores))
		}
		fmt.Fprintf(w, "%-10s %14s %14s %7.2fx\n", e.DS.Name, fmtBytes(st.ColumnLists), fmtBytes(raw),
			float64(raw)/float64(st.ColumnLists))
	}
	fmt.Fprintln(w)
}

// meanOver times fn across a query set, returning the per-query mean.
func meanOver(qs [][]string, reps int, fn func(q []string)) time.Duration {
	var total time.Duration
	for _, q := range qs {
		q := q
		total += Timing(reps, func() { fn(q) })
	}
	return total / time.Duration(len(qs))
}

// RunAll regenerates every table, figure, and ablation into w.
func RunAll(w io.Writer, cfg Config) {
	RunAllEnvs(w, cfg, NewDBLPEnv(cfg.Scale, cfg.Seed), NewXMarkEnv(cfg.Scale, cfg.Seed))
}

// RunAllEnvs is RunAll over caller-built environments, letting the caller
// inspect the accumulated metrics (Env.Obs) after the sweep.
func RunAllEnvs(w io.Writer, cfg Config, dblp, xmark *Env) {
	start := time.Now()
	fmt.Fprintf(w, "experiment sweep: scale=%.2f seed=%d queries/pt=%d reps=%d K=%d\n",
		cfg.Scale, cfg.Seed, cfg.QueriesPerPt, cfg.RepsPerQuery, cfg.TopK)
	fmt.Fprintf(w, "dblp: %d nodes depth %d | xmark: %d nodes depth %d\n\n",
		dblp.DS.Doc.Len(), dblp.DS.Doc.Depth, xmark.DS.Doc.Len(), xmark.DS.Doc.Depth)
	Table1(w, dblp, xmark)
	Figure9(w, dblp, cfg)
	Figure9(w, xmark, cfg)
	Figure10(w, dblp, cfg)
	Figure10(w, xmark, cfg)
	AblationThreshold(w, dblp, cfg)
	AblationJoinPlan(w, dblp, cfg)
	AblationCompression(w, dblp, xmark)
	AblationKSweep(w, dblp, cfg)
	SemanticsParity(w, dblp, cfg)
	SemanticsParity(w, xmark, cfg)
	fmt.Fprintf(w, "total sweep time: %v\n", time.Since(start).Round(time.Millisecond))
}
