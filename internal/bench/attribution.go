package bench

import (
	"context"
	"fmt"
	"strings"

	xmlsearch "repro"
	"repro/internal/gen"
	"repro/internal/obs"
)

// Latency-attribution experiment: where does scatter-gather wall time
// go, stage by stage, as the shard count changes? The sweep builds the
// same DBLP corpus at shards=1 and shards=4, runs the mid-band workload
// through the traced top-K entry point, reduces every stitched trace
// with the critical-path analyzer, and reports each stage's share of
// the total wall time.
//
// Shares are ratios, not latencies, so they cannot ride the usual
// CompareReports p50 gate directly: a share of zero would make any
// nonzero future share an unbounded regression. Each point therefore
// encodes its share as P50Ns = (share + attributionShareFloor) seconds —
// a fixed floor added to both baseline and candidate — so the one-sided
// p50 tolerance becomes a bounded stage-share drift gate. With -tol t,
// a stage at baseline share s may drift up to (1+t)*(s+floor)-floor.
// Every canonical stage plus "other" is emitted for every shard count
// (zero shares included), so a vanished or new stage surfaces as a
// missing-point violation rather than silently passing.

// attributionShareFloor is the share offset baked into every encoded
// point (see above).
const attributionShareFloor = 0.10

// attributionShardCounts mirrors the shard experiment's sweep.
var attributionShardCounts = [...]int{1, 4}

// Attribution runs the attribution sweep and assembles the
// "attribution" report, plus one sample stitched trace (the last traced
// query of the widest sweep) for artifact upload.
func Attribution(cfg Config) (*Report, *obs.TraceExport, error) {
	rep := &Report{Exp: "attribution", Env: CurrentFingerprint(), Config: cfg}
	var sample *obs.TraceExport
	for _, n := range attributionShardCounts {
		ds := gen.DBLP(cfg.Scale, cfg.Seed)
		qs := bandQueriesFromDataset(ds, cfg)
		sh, err := xmlsearch.NewSharded(ds.Doc, n)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: attribution sweep n=%d: %w", n, err)
		}
		shares, trace, err := measureAttribution(sh, qs, cfg.TopK, cfg.RepsPerQuery)
		if err != nil {
			return nil, nil, err
		}
		if trace != nil {
			sample = trace
		}
		for _, st := range append(obs.Stages(), "other") {
			rep.Points = append(rep.Points, Point{
				Exp: "attribution", Engine: "scatter",
				Label:   fmt.Sprintf("stage=%s/shards=%d", st, n),
				K:       cfg.TopK,
				Queries: len(qs), Reps: cfg.RepsPerQuery,
				P50Ns: encodeShare(shares[st]),
			})
		}
	}
	return rep, sample, nil
}

// encodeShare maps a stage share into the Point's P50Ns slot under the
// floor convention documented above.
func encodeShare(share float64) int64 {
	return int64((share + attributionShareFloor) * 1e9)
}

// DecodeShare recovers a stage share from an encoded point — the
// inverse of the encoding Attribution applies.
func DecodeShare(p50ns int64) float64 {
	return float64(p50ns)/1e9 - attributionShareFloor
}

// measureAttribution runs every workload query reps times through the
// traced scatter path, reduces each stitched trace with the
// critical-path analyzer, and returns each stage's share of the total
// wall time (key "other" holds the unattributed remainder) plus the
// last query's full trace export.
func measureAttribution(sh *xmlsearch.Sharded, qs [][]string, k, reps int) (map[string]float64, *obs.TraceExport, error) {
	if reps < 1 {
		reps = 1
	}
	ctx := context.Background()
	stageNs := map[string]int64{}
	var wallNs int64
	var sample *obs.TraceExport
	for _, q := range qs {
		query := strings.Join(q, " ")
		for r := 0; r < reps; r++ {
			_, stats, err := sh.TopKTraced(ctx, query, k, xmlsearch.SearchOptions{})
			if err != nil {
				return nil, nil, fmt.Errorf("bench: attribution top-K %q: %w", query, err)
			}
			bd := stats.Stages
			if bd == nil {
				return nil, nil, fmt.Errorf("bench: attribution top-K %q: traced query produced no stage breakdown", query)
			}
			wallNs += bd.WallNs
			for _, s := range bd.Stages {
				stageNs[s.Stage] += s.Nanos
			}
			stageNs["other"] += bd.OtherNs
			ex := stats.Trace.Export()
			sample = &ex
		}
	}
	shares := make(map[string]float64, len(stageNs))
	if wallNs > 0 {
		for st, ns := range stageNs {
			shares[st] = float64(ns) / float64(wallNs)
		}
	}
	return shares, sample, nil
}
