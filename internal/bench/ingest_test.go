package bench

import (
	"testing"
	"time"
)

func TestIngestReportShape(t *testing.T) {
	cfg := smokeConfig()
	r, err := Ingest(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if r.Exp != "ingest" {
		t.Errorf("exp = %q", r.Exp)
	}
	if r.Env.GoVersion == "" || r.Env.GOOS == "" || r.Env.NumCPU == 0 {
		t.Errorf("fingerprint incomplete: %+v", r.Env)
	}
	// Four phases at each of two scales, in sweep order.
	want := map[string]map[string]bool{
		"read-only":          {"scale=1x": false, "scale=2x": false},
		"writer":             {"scale=1x": false, "scale=2x": false},
		"read-under-writers": {"scale=1x": false, "scale=2x": false},
		"recovery":           {"scale=1x": false, "scale=2x": false},
	}
	for _, p := range r.Points {
		labels, ok := want[p.Engine]
		if !ok {
			t.Errorf("unexpected phase %q", p.Engine)
			continue
		}
		if _, ok := labels[p.Label]; !ok {
			t.Errorf("%s: unexpected corpus label %q", p.Engine, p.Label)
			continue
		}
		labels[p.Label] = true
		if p.P50Ns <= 0 || p.MeanNs <= 0 {
			t.Errorf("%s/%s: empty timings: %+v", p.Engine, p.Label, p)
		}
		if p.P50Ns > p.P95Ns || p.P95Ns > p.P99Ns {
			t.Errorf("%s/%s: quantiles not monotone: p50=%d p95=%d p99=%d",
				p.Engine, p.Label, p.P50Ns, p.P95Ns, p.P99Ns)
		}
	}
	for phase, labels := range want {
		for label, seen := range labels {
			if !seen {
				t.Errorf("no point for %s at %s", phase, label)
			}
		}
	}
	// The writer phase acked every scripted mutation and the recovery
	// reopen replayed the WAL tail that survived compaction — a recovery
	// Load that replays nothing would mean the log was not engaged.
	for _, p := range r.Points {
		switch p.Engine {
		case "writer":
			if p.QPS <= 0 {
				t.Errorf("writer %s: no acknowledged throughput", p.Label)
			}
			if got := p.Queries * p.Reps; got != ingestWriterOps {
				t.Errorf("writer %s: acked %d ops, want %d", p.Label, got, ingestWriterOps)
			}
		case "recovery":
			if p.Queries < 0 {
				t.Errorf("recovery %s: negative replay count", p.Label)
			}
			if time.Duration(p.P50Ns) <= 0 {
				t.Errorf("recovery %s: no load time", p.Label)
			}
		}
	}
}
