package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// smokeConfig is Smoke at test size: seconds, not minutes.
func smokeConfig() Config {
	return Config{Scale: 0.05, Seed: 1, QueriesPerPt: 2, RepsPerQuery: 2, TopK: 5, MaxKeywords: 3}
}

func TestSmokeReportShape(t *testing.T) {
	cfg := smokeConfig()
	r, err := Smoke(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if r.Exp != "smoke" {
		t.Errorf("exp = %q", r.Exp)
	}
	if r.Env.GoVersion == "" || r.Env.GOOS == "" || r.Env.NumCPU == 0 {
		t.Errorf("fingerprint incomplete: %+v", r.Env)
	}
	wantEngines := map[string]bool{"join": false, "stack": false, "ixlookup": false, "topk": false, "rdil": false, "hybrid": false}
	var decoded int64
	for _, p := range r.Points {
		if _, ok := wantEngines[p.Engine]; !ok {
			t.Errorf("unexpected engine %q", p.Engine)
			continue
		}
		wantEngines[p.Engine] = true
		if p.P50Ns <= 0 || p.MeanNs <= 0 || p.QPS <= 0 {
			t.Errorf("%s: empty timings: %+v", p.Engine, p)
		}
		if p.P50Ns > p.P95Ns || p.P95Ns > p.P99Ns {
			t.Errorf("%s: quantiles not monotone: p50=%d p95=%d p99=%d", p.Engine, p.P50Ns, p.P95Ns, p.P99Ns)
		}
		if p.Queries != cfg.QueriesPerPt || p.Reps != cfg.RepsPerQuery {
			t.Errorf("%s: workload size %d x %d", p.Engine, p.Queries, p.Reps)
		}
		decoded += p.DecodedBytes
	}
	for eng, seen := range wantEngines {
		if !seen {
			t.Errorf("no point for engine %q", eng)
		}
	}
	// The store was persisted and reopened, so the sweep's first touches
	// of each list decode real on-disk bytes.
	if decoded == 0 {
		t.Error("no decoded bytes attributed across the whole sweep — store not disk-backed?")
	}
}

func TestReportRoundTripAndGate(t *testing.T) {
	cfg := smokeConfig()
	r, err := Smoke(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := WriteReport(path, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(r.Points) || back.Env != r.Env {
		t.Fatalf("round trip lost data: %d points vs %d", len(back.Points), len(r.Points))
	}

	// A report gated against itself always passes.
	if v := CompareReports(back, r, 0.25); len(v) != 0 {
		t.Errorf("self-comparison flagged regressions: %v", v)
	}

	// Inverted gate: doctor the baseline impossibly fast — every point
	// must now read as a regression, proving the gate can fail.
	doctored := *back
	doctored.Points = make([]Point, len(back.Points))
	copy(doctored.Points, back.Points)
	for i := range doctored.Points {
		doctored.Points[i].P50Ns = 1 // 1ns baseline
	}
	v := CompareReports(&doctored, r, 0.25)
	if len(v) != len(r.Points) {
		t.Fatalf("doctored baseline flagged %d of %d points:\n%s", len(v), len(r.Points), strings.Join(v, "\n"))
	}
	if !strings.Contains(v[0], "exceeds baseline") {
		t.Errorf("violation message unhelpful: %q", v[0])
	}
}

func TestCompareReportsMissingPoint(t *testing.T) {
	base := &Report{Points: []Point{
		{Exp: "smoke", Engine: "join", Label: "band-mid/k=2", P50Ns: 1000},
		{Exp: "smoke", Engine: "topk", Label: "band-mid/k=2", K: 10, P50Ns: 1000},
	}}
	cur := &Report{Points: []Point{
		{Exp: "smoke", Engine: "join", Label: "band-mid/k=2", P50Ns: 1100},
	}}
	v := CompareReports(base, cur, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("missing point not flagged: %v", v)
	}

	// Within tolerance passes; beyond it fails; extra current points are
	// not regressions.
	cur.Points = append(cur.Points,
		Point{Exp: "smoke", Engine: "topk", Label: "band-mid/k=2", K: 10, P50Ns: 1249},
		Point{Exp: "smoke", Engine: "rdil", Label: "band-mid/k=2", K: 10, P50Ns: 999999})
	if v := CompareReports(base, cur, 0.25); len(v) != 0 {
		t.Errorf("within-tolerance comparison failed: %v", v)
	}
	cur.Points[1].P50Ns = 1300
	if v := CompareReports(base, cur, 0.25); len(v) != 1 {
		t.Errorf("25%% tolerance missed a 30%% regression: %v", v)
	}
}
