package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ixlookup"
	"repro/internal/stack"
	"repro/internal/topk"
)

func smallCfg() Config {
	return Config{Scale: 0.02, Seed: 1, QueriesPerPt: 2, RepsPerQuery: 1, TopK: 5, MaxKeywords: 3}
}

func TestEnvAndWorkloads(t *testing.T) {
	e := NewDBLPEnv(0.02, 1)
	if e.Store == nil || e.Inv == nil || e.RDIL == nil {
		t.Fatal("env incomplete")
	}
	for _, low := range e.DS.BandValues {
		qs := e.BandQueries(1, 3, low, 5)
		if len(qs) != 5 {
			t.Fatalf("band %d: %d queries", low, len(qs))
		}
		for _, q := range qs {
			if len(q) != 3 {
				t.Fatalf("query %v has %d keywords", q, len(q))
			}
			if e.M.DocFreq(q[0]) != low {
				t.Fatalf("low keyword %q df=%d, want %d", q[0], e.M.DocFreq(q[0]), low)
			}
			for _, w := range q[1:] {
				if e.M.DocFreq(w) != e.DS.HighDF {
					t.Fatalf("high keyword %q df=%d, want %d", w, e.M.DocFreq(w), e.DS.HighDF)
				}
			}
		}
	}
	qs := e.EqualFreqQueries(1, 3, e.DS.HighDF, 4)
	for _, q := range qs {
		seen := map[string]bool{}
		for _, w := range q {
			if seen[w] {
				t.Fatalf("duplicate keyword in equal-freq query %v", q)
			}
			seen[w] = true
			if e.M.DocFreq(w) != e.DS.HighDF {
				t.Fatalf("equal-freq keyword %q df=%d", w, e.M.DocFreq(w))
			}
		}
	}
}

// TestEnginesAgreeOnWorkloads: on the benchmark workloads themselves, the
// three complete-result engines must report identical result counts, and
// the top-K engines must agree with the truncated ranked full set.
func TestEnginesAgreeOnWorkloads(t *testing.T) {
	e := NewDBLPEnv(0.02, 1)
	var queries [][]string
	for _, low := range e.DS.BandValues {
		queries = append(queries, e.BandQueries(1, 2, low, 2)...)
		queries = append(queries, e.BandQueries(1, 3, low, 2)...)
	}
	queries = append(queries, e.CorrelatedQueries()...)
	for _, q := range queries {
		j := e.RunJoin(q, core.ELCA, core.PlanAuto)
		s := e.RunStack(q, stack.ELCA)
		x := e.RunIxlookup(q, ixlookup.ELCA)
		if j != s || j != x {
			t.Fatalf("query %v: join=%d stack=%d index=%d", q, j, s, x)
		}
		want := j
		if want > 5 {
			want = 5
		}
		tk, _ := e.RunTopKJoin(q, 5, topk.StarJoin)
		rd, _ := e.RunRDIL(q, 5)
		jf := e.RunJoinThenSort(q, 5)
		if tk != want || rd != want || jf != want {
			t.Fatalf("query %v: topk=%d rdil=%d joinfull=%d want=%d", q, tk, rd, jf, want)
		}
	}
}

func TestDriversProduceReports(t *testing.T) {
	cfg := smallCfg()
	dblp := NewDBLPEnv(cfg.Scale, cfg.Seed)
	xmark := NewXMarkEnv(cfg.Scale, cfg.Seed)
	var buf bytes.Buffer
	Table1(&buf, dblp, xmark)
	Figure9(&buf, dblp, cfg)
	Figure10(&buf, dblp, cfg)
	AblationThreshold(&buf, dblp, cfg)
	AblationJoinPlan(&buf, dblp, cfg)
	AblationCompression(&buf, dblp, xmark)
	AblationKSweep(&buf, dblp, cfg)
	SemanticsParity(&buf, dblp, cfg)
	out := buf.String()
	for _, want := range []string{
		"Table I", "join-based IL", "index-based B-tree",
		"Figure 9", "9(a)", "equal frequencies",
		"Figure 10", "10(a)", "correlated",
		"Ablation A1", "Ablation A2", "Ablation A3",
		"Ablation A4", "SLCA vs ELCA parity",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestStarNeverLooserOnWorkloads re-checks the Section IV-B tightness
// property on the benchmark's own correlated workload.
func TestStarNeverLooserOnWorkloads(t *testing.T) {
	e := NewDBLPEnv(0.05, 1)
	for _, q := range e.CorrelatedQueries() {
		_, star := e.RunTopKJoin(q, 10, topk.StarJoin)
		_, classic := e.RunTopKJoin(q, 10, topk.ClassicHRJN)
		if star.RowsPulled > classic.RowsPulled {
			t.Errorf("query %v: star pulled %d > classic %d", q, star.RowsPulled, classic.RowsPulled)
		}
	}
}
