package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	xmlsearch "repro"
	"repro/internal/gen"
)

// Multi-core shard scaling experiment. Builds the same DBLP corpus as a
// single-shard index and as a 4-way sharded index, then measures two
// things on each: scatter-gather top-K latency over the smoke's mid-band
// workload (Engine "scatter"), and aggregate writer throughput under a
// fixed pool of concurrent deep-insert workers spread round-robin over
// the shards (Engine "writer"). With one shard all writers contend one
// writer lock; with four they run on distinct shards. On a multi-core
// machine the shards=4 points should show lower top-K p50 and higher
// writer QPS; CI gates the committed BENCH_shard.json with
// CompareReports like every other experiment.

// shardCounts are the sweep's shard counts: the unsharded baseline and
// the 4-way partition the issue's acceptance criteria compare.
var shardCounts = [...]int{1, 4}

// shardWriterWorkers is the fixed concurrent-writer pool size, chosen
// to saturate the 4-way partition (one writer per shard).
const shardWriterWorkers = 4

// shardWriterOps is the deep-insert count per writer worker.
const shardWriterOps = 40

// ShardScaling runs the shard sweep and assembles the "shard" report.
func ShardScaling(cfg Config) (*Report, error) {
	rep := &Report{Exp: "shard", Env: CurrentFingerprint(), Config: cfg}
	for _, n := range shardCounts {
		ds := gen.DBLP(cfg.Scale, cfg.Seed)
		qs := bandQueriesFromDataset(ds, cfg)
		sh, err := xmlsearch.NewSharded(ds.Doc, n)
		if err != nil {
			return nil, fmt.Errorf("bench: shard sweep n=%d: %w", n, err)
		}
		label := fmt.Sprintf("shards=%d", n)
		p, err := measureScatter(sh, qs, cfg.TopK, cfg.RepsPerQuery, label)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, p)
		w, err := measureShardWriters(sh, label)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, w)
	}
	return rep, nil
}

// measureScatter times scatter-gather top-K over the workload — one
// warm-up pass per query, then reps timed executions, matching
// Env.measure's protocol.
func measureScatter(sh *xmlsearch.Sharded, qs [][]string, k, reps int, label string) (Point, error) {
	if reps < 1 {
		reps = 1
	}
	ctx := context.Background()
	durs := make([]time.Duration, 0, len(qs)*reps)
	var total time.Duration
	for _, q := range qs {
		query := strings.Join(q, " ")
		run := func() error {
			_, err := sh.TopKContext(ctx, query, k, xmlsearch.SearchOptions{})
			return err
		}
		if err := run(); err != nil { // warm up caches and plans
			return Point{}, fmt.Errorf("bench: shard top-K %q: %w", query, err)
		}
		for r := 0; r < reps; r++ {
			start := time.Now()
			if err := run(); err != nil {
				return Point{}, fmt.Errorf("bench: shard top-K %q: %w", query, err)
			}
			d := time.Since(start)
			durs = append(durs, d)
			total += d
		}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	p := Point{
		Exp: "shard", Engine: "scatter", Label: label, K: k,
		Queries: len(qs), Reps: reps,
		P50Ns: int64(quantile(durs, 50)), P95Ns: int64(quantile(durs, 95)),
		P99Ns: int64(quantile(durs, 99)),
	}
	if len(durs) > 0 {
		p.MeanNs = int64(total / time.Duration(len(durs)))
		if total > 0 {
			p.QPS = float64(len(durs)) / total.Seconds()
		}
	}
	return p, nil
}

// measureShardWriters runs shardWriterWorkers concurrent deep-insert
// workers, worker i targeting the first top-level subtree of shard
// i mod Shards(), and reports aggregate mutation throughput (QPS) plus
// per-mutation latency quantiles under that contention.
func measureShardWriters(sh *xmlsearch.Sharded, label string) (Point, error) {
	infos := sh.ShardInfo()
	parents := make([]string, 0, len(infos))
	off := 0
	for _, inf := range infos {
		if inf.Docs > 0 {
			parents = append(parents, fmt.Sprintf("1.%d", off+1))
		}
		off += inf.Docs
	}
	if len(parents) == 0 {
		return Point{}, fmt.Errorf("bench: shard writer sweep: no populated shards")
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		durs []time.Duration
		errs = make([]error, shardWriterWorkers)
	)
	start := time.Now()
	for w := 0; w < shardWriterWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parent := parents[w%len(parents)]
			local := make([]time.Duration, 0, shardWriterOps)
			for op := 0; op < shardWriterOps; op++ {
				t0 := time.Now()
				if _, err := sh.InsertElement(parent, 0, "benchnote", "shard bench payload"); err != nil {
					errs[w] = fmt.Errorf("bench: shard writer %d: %w", w, err)
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			durs = append(durs, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return Point{}, err
		}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var total time.Duration
	for _, d := range durs {
		total += d
	}
	p := Point{
		Exp: "shard", Engine: "writer", Label: label,
		Queries: shardWriterWorkers, Reps: shardWriterOps,
		P50Ns: int64(quantile(durs, 50)), P95Ns: int64(quantile(durs, 95)),
		P99Ns: int64(quantile(durs, 99)),
	}
	if len(durs) > 0 {
		p.MeanNs = int64(total / time.Duration(len(durs)))
	}
	if wall > 0 {
		p.QPS = float64(len(durs)) / wall.Seconds()
	}
	return p, nil
}
