// Package bench is the experiment harness that regenerates every table and
// figure of the paper's Section V over the synthetic corpora: index-size
// accounting (Table I), complete-result query performance across frequency
// bands and keyword counts (Figure 9), top-10 performance on random and
// correlated queries (Figure 10), and the ablations DESIGN.md calls out
// (threshold tightness, join-plan selection, compression).
package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/invindex"
	"repro/internal/ixlookup"
	"repro/internal/jdewey"
	"repro/internal/obs"
	"repro/internal/occur"
	"repro/internal/rdil"
	"repro/internal/stack"
	"repro/internal/topk"
)

// Env is one dataset indexed for every engine, the shared fixture of all
// experiments. All indexes are built eagerly so measured query times never
// include index construction (the paper measures on hot caches).
type Env struct {
	DS    *gen.Dataset
	M     *occur.Map
	Store *colstore.Store
	Inv   *invindex.Index
	RDIL  *rdil.Index
	// Obs accumulates per-engine query counters and latency histograms
	// across every Run* call, for xkwbench -metrics.
	Obs *obs.Metrics
}

// NewEnv indexes a generated dataset for all engines.
func NewEnv(ds *gen.Dataset) *Env {
	jdewey.Assign(ds.Doc, 0)
	m := occur.Extract(ds.Doc)
	inv := invindex.Build(m)
	e := &Env{
		DS:    ds,
		M:     m,
		Store: colstore.Build(m),
		Inv:   inv,
		RDIL:  rdil.NewIndex(inv),
		Obs:   obs.NewMetrics(),
	}
	e.Store.SetObs(&e.Obs.Store)
	return e
}

// record accounts one benchmark query into the environment's metrics.
func (e *Env) record(eng obs.Engine, q []string, k int, start time.Time, n int) {
	e.Obs.RecordQuery(eng, strings.Join(q, " "), k, time.Since(start), n, nil, nil)
}

// Fingerprint identifies the machine and toolchain a benchmark report was
// produced on. Reports carry it so a regression gate can tell "the code
// got slower" apart from "the report came from a different machine" — CI
// comparisons across differing fingerprints need a generous tolerance.
type Fingerprint struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// CurrentFingerprint samples the running process's environment.
func CurrentFingerprint() Fingerprint {
	return Fingerprint{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// NewDBLPEnv and NewXMarkEnv build the two standard environments.
func NewDBLPEnv(scale float64, seed int64) *Env { return NewEnv(gen.DBLP(scale, seed)) }

// NewXMarkEnv builds the auction-site environment.
func NewXMarkEnv(scale float64, seed int64) *Env { return NewEnv(gen.XMark(scale, seed)) }

// colLists resolves a query to column-oriented lists.
func (e *Env) colLists(q []string) []*colstore.List {
	out := make([]*colstore.List, len(q))
	for i, w := range q {
		out[i] = e.Store.List(w)
	}
	return out
}

// tkLists resolves a query to score-sorted lists.
func (e *Env) tkLists(q []string) []*colstore.TKList {
	out := make([]*colstore.TKList, len(q))
	for i, w := range q {
		out[i] = e.Store.TopKList(w)
	}
	return out
}

// invLists resolves a query to document-order lists.
func (e *Env) invLists(q []string) []*invindex.List {
	out := make([]*invindex.List, len(q))
	for i, w := range q {
		out[i] = e.Inv.Get(w)
	}
	return out
}

// --- engine runners; each returns the result count so drivers can assert
// engines agree while measuring ---

// RunJoin evaluates the complete result set with the join-based algorithm.
func (e *Env) RunJoin(q []string, sem core.Semantics, plan core.JoinPlan) int {
	start := time.Now()
	rs, _ := core.Evaluate(e.colLists(q), core.Options{Semantics: sem, Plan: plan})
	e.record(obs.EngineJoin, q, 0, start, len(rs))
	return len(rs)
}

// RunStack evaluates with the stack-based baseline.
func (e *Env) RunStack(q []string, sem stack.Semantics) int {
	start := time.Now()
	rs, _ := stack.Evaluate(e.invLists(q), sem, 0)
	e.record(obs.EngineStack, q, 0, start, len(rs))
	return len(rs)
}

// RunIxlookup evaluates with the index-based baseline.
func (e *Env) RunIxlookup(q []string, sem ixlookup.Semantics) int {
	start := time.Now()
	rs, _ := ixlookup.Evaluate(e.invLists(q), sem, 0)
	e.record(obs.EngineIxLookup, q, 0, start, len(rs))
	return len(rs)
}

// RunTopKJoin runs the join-based top-K algorithm and returns the stats.
func (e *Env) RunTopKJoin(q []string, k int, mode topk.ThresholdMode) (int, topk.Stats) {
	start := time.Now()
	rs, st := topk.Evaluate(e.tkLists(q), topk.Options{Semantics: core.ELCA, K: k, Threshold: mode})
	e.record(obs.EngineTopK, q, k, start, len(rs))
	return len(rs), st
}

// RunJoinThenSort evaluates the complete set with the join-based algorithm
// and ranks it — the "general join-based algorithm" line of Figure 10.
func (e *Env) RunJoinThenSort(q []string, k int) int {
	start := time.Now()
	rs, _ := core.Evaluate(e.colLists(q), core.Options{})
	core.SortByScore(rs)
	if k < len(rs) {
		rs = rs[:k]
	}
	e.record(obs.EngineJoin, q, k, start, len(rs))
	return len(rs)
}

// RunHybrid runs the Section V-D hybrid strategy and reports whether the
// top-K join was selected.
func (e *Env) RunHybrid(q []string, k int) (int, bool) {
	start := time.Now()
	rs, usedTopK := topk.EvaluateHybrid(e.colLists(q), e.tkLists(q), topk.HybridOptions{K: k})
	e.record(obs.EngineHybrid, q, k, start, len(rs))
	return len(rs), usedTopK
}

// RunRDIL runs the RDIL top-K baseline.
func (e *Env) RunRDIL(q []string, k int) (int, rdil.Stats) {
	start := time.Now()
	rs, st := e.RDIL.TopK(q, rdil.ELCA, 0, k)
	e.record(obs.EngineRDIL, q, k, start, len(rs))
	return len(rs), st
}

// Timing measures fn over reps repetitions and returns the mean duration,
// mirroring the paper's protocol (each query executed 5 times, hot cache).
func Timing(reps int, fn func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	fn() // warm up caches and lazily-decoded lists
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(reps)
}

// --- workload selection ---

// BandQueries builds n queries of k keywords each: one keyword planted at
// the low document frequency plus k-1 of the fixed high-frequency terms,
// the paper's Figure 9(a)-(d) workload. Planted terms are mutually
// uncorrelated by construction, matching the paper's observation that
// randomly selected keywords have low correlations.
func (e *Env) BandQueries(seed int64, k, lowDF, n int) [][]string {
	rng := rand.New(rand.NewSource(seed))
	lows := e.DS.Bands[lowDF]
	if len(lows) == 0 {
		panic(fmt.Sprintf("bench: no band terms at df=%d", lowDF))
	}
	highs := e.DS.HighTerms
	out := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		q := []string{lows[i%len(lows)]}
		perm := rng.Perm(len(highs))
		for j := 0; j < k-1; j++ {
			q = append(q, highs[perm[j%len(perm)]])
		}
		out = append(out, q)
	}
	return out
}

// EqualFreqQueries builds n queries of k keywords all planted at the same
// document frequency, the Figure 9(e)-(f) workload.
func (e *Env) EqualFreqQueries(seed int64, k, df, n int) [][]string {
	rng := rand.New(rand.NewSource(seed))
	terms := e.DS.Bands[df]
	if df == e.DS.HighDF {
		terms = e.DS.HighTerms
	}
	if len(terms) < k {
		panic(fmt.Sprintf("bench: band df=%d has only %d terms for k=%d", df, len(terms), k))
	}
	out := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		perm := rng.Perm(len(terms))
		q := make([]string, k)
		for j := 0; j < k; j++ {
			q[j] = terms[perm[j]]
		}
		out = append(out, q)
	}
	return out
}

// CorrelatedQueries returns the dataset's hand-picked correlated queries,
// the Figure 10(b)/(c) workload.
func (e *Env) CorrelatedQueries() [][]string { return e.DS.Correlated }
