package bench

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	xmlsearch "repro"
	"repro/internal/gen"
)

// Sustained-ingest experiment for the incremental write path. Two claims
// of the delta ⊕ WAL design are measured, each at two corpus scales:
//
//   - Writer throughput is corpus-independent: an acknowledged append
//     costs one delta-segment extension plus one WAL group commit, never
//     an O(corpus) clone, so the "writer" points at scale=1x and
//     scale=2x should sit within noise of each other.
//   - Reads pay almost nothing for concurrent ingest: the merged
//     base ⊕ delta view adds a bounded overlay probe, so the
//     "read-under-writers" p50 should stay within ~1.2x of the
//     "read-only" p50.
//
// A final "recovery" point per scale kills nothing but measures the cold
// path anyway: Close the ingesting index, reopen the directory, and time
// the Load — base generation plus WAL replay — that a crash restart
// would pay (Queries carries the replayed-record count).

// ingestWriterOps is the number of acknowledged mutations per writer
// phase; ingestBatch is the ApplyBatch group-commit size.
const (
	ingestWriterOps = 240
	ingestBatch     = 8
)

// ingestScales are the corpus scale multipliers the sweep compares.
var ingestScales = [...]struct {
	mult  float64
	label string
}{
	{1, "scale=1x"},
	{2, "scale=2x"},
}

// Ingest runs the sustained-ingest sweep, using dir for the per-scale
// WAL directories, and assembles the "ingest" report.
func Ingest(cfg Config, dir string) (*Report, error) {
	rep := &Report{Exp: "ingest", Env: CurrentFingerprint(), Config: cfg}
	for _, sc := range ingestScales {
		pts, err := ingestAtScale(cfg, cfg.Scale*sc.mult, sc.label, filepath.Join(dir, sc.label))
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, pts...)
	}
	return rep, nil
}

// ingestAtScale measures one corpus scale: read-only latency, sustained
// writer throughput, read latency under those writers, and recovery.
func ingestAtScale(cfg Config, scale float64, label, dir string) ([]Point, error) {
	ds := gen.DBLP(scale, cfg.Seed)
	topLevel := len(ds.Doc.Root.Children)
	idx, err := xmlsearch.FromDocument(ds.Doc)
	if err != nil {
		return nil, fmt.Errorf("bench: ingest index %s: %w", label, err)
	}
	if err := idx.EnableWAL(dir); err != nil {
		return nil, fmt.Errorf("bench: ingest wal %s: %w", label, err)
	}
	qs := bandQueriesFromDataset(ds, cfg)

	appended := 0
	nextBatch := func(tag string) []xmlsearch.Mutation {
		muts := make([]xmlsearch.Mutation, ingestBatch)
		for i := range muts {
			muts[i] = xmlsearch.Mutation{
				ID: "1", Pos: topLevel + appended, Tag: tag,
				Text: fmt.Sprintf("ingestnote%d payload", appended),
			}
			appended++
		}
		return muts
	}

	readOnly, err := measureIngestReads(idx, qs, cfg.TopK, cfg.RepsPerQuery, label, "read-only")
	if err != nil {
		return nil, err
	}

	// Sustained writer phase: acknowledged (WAL-durable) appends in
	// group-committed batches, with background compaction folding the
	// delta at its default cadence.
	writerDurs := make([]time.Duration, 0, ingestWriterOps/ingestBatch)
	wstart := time.Now()
	for appended < ingestWriterOps {
		t0 := time.Now()
		if _, err := idx.ApplyBatch(nextBatch("inote")); err != nil {
			return nil, fmt.Errorf("bench: ingest writer %s: %w", label, err)
		}
		writerDurs = append(writerDurs, time.Since(t0))
	}
	wall := time.Since(wstart)
	sort.Slice(writerDurs, func(i, j int) bool { return writerDurs[i] < writerDurs[j] })
	var wtotal time.Duration
	for _, d := range writerDurs {
		wtotal += d
	}
	writer := Point{
		Exp: "ingest", Engine: "writer", Label: label,
		Queries: ingestWriterOps / ingestBatch, Reps: ingestBatch,
		// Quantiles are per-batch (one group commit each); MeanNs is
		// per-mutation, QPS acknowledged mutations per second.
		P50Ns: int64(quantile(writerDurs, 50)), P95Ns: int64(quantile(writerDurs, 95)),
		P99Ns: int64(quantile(writerDurs, 99)),
	}
	if appended > 0 {
		writer.MeanNs = int64(wtotal) / int64(appended)
		if wall > 0 {
			writer.QPS = float64(appended) / wall.Seconds()
		}
	}

	// Read latency with a concurrent writer appending (and compacting)
	// the whole time. The writer is paced — sustained ingest, not a
	// saturation test — so the ratio against read-only isolates the
	// base ⊕ delta overlay cost instead of CPU starvation.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var bgErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if _, err := idx.ApplyBatch(nextBatch("cnote")); err != nil {
				bgErr = err
				return
			}
		}
	}()
	underWriters, rerr := measureIngestReads(idx, qs, cfg.TopK, cfg.RepsPerQuery, label, "read-under-writers")
	close(stop)
	wg.Wait()
	if rerr != nil {
		return nil, rerr
	}
	if bgErr != nil {
		return nil, fmt.Errorf("bench: ingest background writer %s: %w", label, bgErr)
	}

	if err := idx.Close(); err != nil {
		return nil, fmt.Errorf("bench: ingest close %s: %w", label, err)
	}

	// Recovery: reopen the directory as a crash restart would — load the
	// committed base generation and replay the WAL suffix.
	lstart := time.Now()
	loaded, err := xmlsearch.Load(dir)
	if err != nil {
		return nil, fmt.Errorf("bench: ingest recovery %s: %w", label, err)
	}
	loadNs := int64(time.Since(lstart))
	replayed := loaded.Metrics().Snapshot().WAL.ReplayedRecords
	recovery := Point{
		Exp: "ingest", Engine: "recovery", Label: label,
		Queries: int(replayed), Reps: 1,
		P50Ns: loadNs, P95Ns: loadNs, P99Ns: loadNs, MeanNs: loadNs,
	}
	if loadNs > 0 {
		recovery.QPS = float64(replayed) / (float64(loadNs) / float64(time.Second))
	}
	if err := loaded.Close(); err != nil {
		return nil, fmt.Errorf("bench: ingest recovery close %s: %w", label, err)
	}
	return []Point{readOnly, writer, underWriters, recovery}, nil
}

// measureIngestReads times top-K over the mid-band workload against the
// live (possibly delta-carrying) index, one warm-up pass per query.
func measureIngestReads(ix *xmlsearch.Index, qs [][]string, k, reps int, label, engine string) (Point, error) {
	if reps < 1 {
		reps = 1
	}
	durs := make([]time.Duration, 0, len(qs)*reps)
	var total time.Duration
	for _, q := range qs {
		query := strings.Join(q, " ")
		run := func() error {
			_, err := ix.TopK(query, k, xmlsearch.SearchOptions{})
			return err
		}
		if err := run(); err != nil { // warm up caches and plans
			return Point{}, fmt.Errorf("bench: ingest read %q: %w", query, err)
		}
		for r := 0; r < reps; r++ {
			start := time.Now()
			if err := run(); err != nil {
				return Point{}, fmt.Errorf("bench: ingest read %q: %w", query, err)
			}
			d := time.Since(start)
			durs = append(durs, d)
			total += d
		}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	p := Point{
		Exp: "ingest", Engine: engine, Label: label, K: k,
		Queries: len(qs), Reps: reps,
		P50Ns: int64(quantile(durs, 50)), P95Ns: int64(quantile(durs, 95)),
		P99Ns: int64(quantile(durs, 99)),
	}
	if len(durs) > 0 {
		p.MeanNs = int64(total / time.Duration(len(durs)))
		if total > 0 {
			p.QPS = float64(len(durs)) / total.Seconds()
		}
	}
	return p, nil
}
