package bench

import (
	"context"
	"path/filepath"
	"testing"

	xmlsearch "repro"
	"repro/internal/gen"
	"repro/internal/qlog"
)

func replayTestConfig() Config {
	cfg := DefaultConfig()
	cfg.QueriesPerPt = 3
	cfg.TopK = 5
	return cfg
}

// TestCaptureReplayRoundTrip: capture the mixed workload, replay it on a
// freshly built index of the same (scale, seed), and require zero
// fingerprint mismatches — the end-to-end property the CI smoke gates.
func TestCaptureReplayRoundTrip(t *testing.T) {
	cfg := replayTestConfig()
	dir := t.TempDir()
	workload := filepath.Join(dir, "w.ndjson")
	n, err := CaptureWorkload(cfg, workload, filepath.Join(dir, "qlog"))
	if err != nil {
		t.Fatal(err)
	}
	// 8 records per workload query (2 search + 3 topk + 1 stream + budget
	// + partial) plus the one deadline query.
	if want := cfg.QueriesPerPt*8 + 1; n != want {
		t.Fatalf("captured %d records, want %d", n, want)
	}
	// The on-disk sink carries the same capture as the workload file.
	sunk, err := qlog.ReadFile(filepath.Join(dir, "qlog", "qlog.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sunk) != n {
		t.Fatalf("sink has %d records, workload %d", len(sunk), n)
	}

	rep, err := Replay(cfg, workload, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := rep.Replay
	if sum.Replayed != n || sum.Skipped != 0 {
		t.Fatalf("replayed %d skipped %d, want %d/0", sum.Replayed, sum.Skipped, n)
	}
	if sum.Checked == 0 || sum.Mismatches != 0 {
		t.Fatalf("checked %d mismatches %d (examples %v), want >0 and 0",
			sum.Checked, sum.Mismatches, sum.MismatchExamples)
	}
	// The capture must exercise the whole outcome taxonomy reachable
	// without admission control.
	for _, o := range []string{qlog.OutcomeOK, qlog.OutcomeBudget, qlog.OutcomePartial, qlog.OutcomeDeadline} {
		if sum.Outcomes[o] == 0 {
			t.Errorf("no %q records in capture: %v", o, sum.Outcomes)
		}
	}
	// Per-outcome latency points, labeled for the CI gate.
	if len(rep.Points) != len(sum.Outcomes) {
		t.Errorf("%d points for %d outcomes", len(rep.Points), len(sum.Outcomes))
	}
	for _, p := range rep.Points {
		if p.Exp != "replay" || p.Engine != "facade" || p.P50Ns <= 0 {
			t.Errorf("implausible point: %+v", p)
		}
	}
}

// TestReplayPaced: paced replay honors the recorded schedule (and still
// verifies fingerprints). The sample offsets are microseconds apart, so
// the test only checks it completes correctly, not wall-clock pacing.
func TestReplayPaced(t *testing.T) {
	cfg := replayTestConfig()
	workload := filepath.Join(t.TempDir(), "w.ndjson")
	if _, err := CaptureWorkload(cfg, workload, ""); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(cfg, workload, ReplayOptions{Paced: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Replay.Paced || rep.Replay.Mismatches != 0 {
		t.Fatalf("paced replay summary: %+v", rep.Replay)
	}
}

// TestReplayDeterminismAcrossEngines replays every recorded-ok top-K
// record twice under each of the five top-K engines on one snapshot:
// each engine must reproduce its own fingerprint exactly across runs.
// (Engines may disagree with each other on tie order; each must at
// least agree with itself, or captured fingerprints would be useless as
// regression baselines.)
func TestReplayDeterminismAcrossEngines(t *testing.T) {
	cfg := replayTestConfig()
	workload := filepath.Join(t.TempDir(), "w.ndjson")
	if _, err := CaptureWorkload(cfg, workload, ""); err != nil {
		t.Fatal(err)
	}
	records, err := qlog.ReadFile(workload)
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.DBLP(cfg.Scale, cfg.Seed)
	ix, err := xmlsearch.FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	engines := []string{"join", "stack", "ixlookup", "rdil", "hybrid"}
	checked := 0
	for _, eng := range engines {
		for _, r := range records {
			if r.Op != "topk" || r.Outcome != qlog.OutcomeOK {
				continue
			}
			first, err := replayOne(ctx, ix, r, eng)
			if err != nil {
				t.Fatalf("%s: replay %v: %v", eng, r.Keywords, err)
			}
			second, err := replayOne(ctx, ix, r, eng)
			if err != nil {
				t.Fatalf("%s: second replay %v: %v", eng, r.Keywords, err)
			}
			if first != second {
				t.Errorf("%s: %v k=%d: fingerprint %s then %s — engine not deterministic",
					eng, r.Keywords, r.K, first, second)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no recorded-ok topk records to check")
	}
}

// TestReplayShardCountInvariance replays the committed workload capture
// on sharded indexes at shards=1 and shards=4: the fingerprint folds
// only the final merged rank order, so the two shard counts must agree
// on every record with zero mismatches. (Recorded unsharded
// fingerprints are not the baseline here — sharding drops root-level
// results by construction — the invariant is across shard counts.)
func TestReplayShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the committed scale-0.25 workload")
	}
	cfg := DefaultConfig()
	workload := filepath.Join("..", "..", "results", "workload_sample.ndjson")
	one, err := ShardedFingerprints(cfg, workload, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := ShardedFingerprints(cfg, workload, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) == 0 {
		t.Fatal("no replayable records in the committed workload")
	}
	if len(one) != len(four) {
		t.Fatalf("replayed %d records at shards=1 but %d at shards=4", len(one), len(four))
	}
	mismatches := 0
	for seq, fp1 := range one {
		fp4, ok := four[seq]
		if !ok {
			t.Errorf("seq %d replayed at shards=1 only", seq)
			continue
		}
		if fp1 != fp4 {
			mismatches++
			if mismatches <= 3 {
				t.Errorf("seq %d: fingerprint %s at shards=1, %s at shards=4", seq, fp1, fp4)
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d fingerprint mismatches across shard counts, want 0", mismatches)
	}
}
