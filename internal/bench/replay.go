package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	xmlsearch "repro"
	"repro/internal/gen"
	"repro/internal/qlog"
)

// Workload capture and replay. Capture drives a deterministic mixed
// workload — complete and top-K queries across engines, streaming
// queries, and a few that trip budgets, deadlines, or settle as partial
// answers — through the public facade with the flight recorder
// installed, and writes the captured records as an NDJSON workload file.
// Replay re-executes a workload file (captured here, scraped from GET
// /qlog, or rotated out of a production sink) against a freshly rebuilt
// index of the same (scale, seed), unconstrained — no budgets, no
// deadlines — and verifies that every record the original run completed
// (outcome "ok") reproduces its result-set fingerprint exactly. The
// fingerprint has no wall-clock input, so a mismatch is a behavior
// change, not noise; CI gates on zero mismatches.

// ReplayOptions configures Replay beyond the workload file.
type ReplayOptions struct {
	// Paced replays the workload on the captured schedule, sleeping out
	// the recorded inter-arrival offsets, instead of the default
	// closed-loop back-to-back replay.
	Paced bool
	// ForceAlgo, when non-empty, overrides the recorded algorithm of
	// every top-K record (complete-evaluation and streaming records keep
	// their recorded algorithm — the force names may be top-K only).
	// Used by the determinism tests to replay one workload under every
	// engine.
	ForceAlgo string
}

// ReplaySummary is the replay verdict carried in the Report: how much of
// the workload was re-executed and whether the recorded-ok fingerprints
// reproduced.
type ReplaySummary struct {
	Workload string `json:"workload"`
	// Records is the workload size; Replayed how many were re-executed
	// (unknown ops are skipped and counted in Skipped).
	Records  int `json:"records"`
	Replayed int `json:"replayed"`
	Skipped  int `json:"skipped,omitempty"`
	// Checked counts records with a recorded-ok fingerprint that were
	// verified; Mismatches how many failed to reproduce (0 is the CI
	// gate).
	Checked    int  `json:"fingerprints_checked"`
	Mismatches int  `json:"fingerprint_mismatches"`
	Paced      bool `json:"paced,omitempty"`
	// Outcomes histograms the replayed records by their *recorded*
	// outcome class.
	Outcomes map[string]int `json:"outcomes,omitempty"`
	// MismatchExamples carries up to five human-readable mismatch
	// descriptions for the CI log.
	MismatchExamples []string `json:"mismatch_examples,omitempty"`
}

// CaptureWorkload runs the deterministic mixed workload through the
// facade with a recorder installed and writes the capture to
// workloadPath. With qlogDir non-empty the recorder also sinks to disk
// there (rotation included), exercising the full capture pipeline. The
// returned count is the number of records captured.
func CaptureWorkload(cfg Config, workloadPath, qlogDir string) (int, error) {
	ds := gen.DBLP(cfg.Scale, cfg.Seed)
	ix, err := xmlsearch.FromDocument(ds.Doc)
	if err != nil {
		return 0, fmt.Errorf("bench: capture index: %w", err)
	}
	qs := bandQueriesFromDataset(ds, cfg)
	// Ring must hold the whole capture: ~8 records per workload query.
	rec, err := qlog.New(qlog.Options{Dir: qlogDir, RingCap: len(qs)*8 + 16})
	if err != nil {
		return 0, fmt.Errorf("bench: capture recorder: %w", err)
	}
	ix.SetQueryLog(rec)
	if err := driveCapture(ix, qs, cfg.TopK); err != nil {
		rec.Close()
		return 0, err
	}
	if err := rec.Close(); err != nil {
		return 0, fmt.Errorf("bench: close recorder: %w", err)
	}
	records := rec.Recent()
	if err := qlog.WriteFile(workloadPath, records); err != nil {
		return 0, fmt.Errorf("bench: write workload: %w", err)
	}
	return len(records), nil
}

// bandQueriesFromDataset rebuilds the smoke's mid-band k=2 workload
// without the full Env (capture needs only the facade index).
func bandQueriesFromDataset(ds *gen.Dataset, cfg Config) [][]string {
	e := &Env{DS: ds}
	mid := ds.BandValues[len(ds.BandValues)/2]
	return e.BandQueries(cfg.Seed, 2, mid, cfg.QueriesPerPt)
}

// driveCapture executes the mixed workload: per query, complete
// evaluations on two engines, top-K on three, one streaming top-K, one
// budget trip, and one certified-partial settle; plus one immediate
// deadline expiry for the whole run. Everything it does is
// deterministic given (scale, seed).
func driveCapture(ix *xmlsearch.Index, qs [][]string, k int) error {
	ctx := context.Background()
	for _, q := range qs {
		query := strings.Join(q, " ")
		for _, algo := range []xmlsearch.Algorithm{xmlsearch.AlgoJoin, xmlsearch.AlgoStack} {
			if _, err := ix.SearchContext(ctx, query, xmlsearch.SearchOptions{Algorithm: algo}); err != nil {
				return fmt.Errorf("bench: capture search %q: %w", query, err)
			}
		}
		for _, algo := range []xmlsearch.Algorithm{xmlsearch.AlgoJoin, xmlsearch.AlgoRDIL, xmlsearch.AlgoAuto} {
			if _, err := ix.TopKContext(ctx, query, k, xmlsearch.SearchOptions{Algorithm: algo}); err != nil {
				return fmt.Errorf("bench: capture topk %q: %w", query, err)
			}
		}
		err := ix.TopKStreamContext(ctx, query, k, xmlsearch.SearchOptions{}, func(xmlsearch.Result) bool { return true })
		if err != nil {
			return fmt.Errorf("bench: capture stream %q: %w", query, err)
		}
		// A one-byte decoded budget trips on the first list: outcome
		// "budget" without AllowPartial, "partial" with it.
		tiny := xmlsearch.SearchOptions{MaxDecodedBytes: 1}
		if _, err := ix.TopKContext(ctx, query, k, tiny); err == nil {
			return fmt.Errorf("bench: capture budget query %q unexpectedly succeeded", query)
		}
		tiny.AllowPartial = true
		if _, err := ix.TopKContext(ctx, query, k, tiny); err != nil {
			return fmt.Errorf("bench: capture partial %q: %w", query, err)
		}
	}
	// An already-expired deadline records outcome "deadline" before any
	// list is touched — deterministically, unlike a racing timeout.
	expired, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel()
	q0 := strings.Join(qs[0], " ")
	if _, err := ix.TopKContext(expired, q0, k, xmlsearch.SearchOptions{}); err == nil {
		return fmt.Errorf("bench: capture deadline query %q unexpectedly succeeded", q0)
	}
	return nil
}

// replayAlgo maps a recorded algorithm label back to the Algorithm.
func replayAlgo(name string) (xmlsearch.Algorithm, error) {
	switch name {
	case "join":
		return xmlsearch.AlgoJoin, nil
	case "stack":
		return xmlsearch.AlgoStack, nil
	case "ixlookup":
		return xmlsearch.AlgoIndexLookup, nil
	case "rdil":
		return xmlsearch.AlgoRDIL, nil
	case "hybrid":
		return xmlsearch.AlgoHybrid, nil
	case "auto", "":
		return xmlsearch.AlgoAuto, nil
	default:
		return 0, fmt.Errorf("bench: unknown recorded algorithm %q", name)
	}
}

// foldResults fingerprints a result slice the way the facade does.
func foldResults(rs []xmlsearch.Result) qlog.Hash {
	h := qlog.NewHash()
	for _, r := range rs {
		h = h.Result(r.Dewey, r.Score)
	}
	return h
}

// replayTarget is the slice of the facade the replay loop needs — both
// *xmlsearch.Index and *xmlsearch.Sharded satisfy it, so a captured
// workload replays identically against either layout.
type replayTarget interface {
	SearchContext(ctx context.Context, query string, opt xmlsearch.SearchOptions) ([]xmlsearch.Result, error)
	TopKContext(ctx context.Context, query string, k int, opt xmlsearch.SearchOptions) ([]xmlsearch.Result, error)
	TopKStreamContext(ctx context.Context, query string, k int, opt xmlsearch.SearchOptions, fn func(xmlsearch.Result) bool) error
}

// replayOne re-executes one record unconstrained and returns the
// replayed fingerprint (valid only when err is nil).
func replayOne(ctx context.Context, ix replayTarget, r qlog.Record, force string) (qlog.Hash, error) {
	algoName := r.Algo
	if force != "" && r.Op == "topk" {
		algoName = force
	}
	algo, err := replayAlgo(algoName)
	if err != nil {
		return 0, err
	}
	opt := xmlsearch.SearchOptions{Algorithm: algo}
	if r.Semantics == "slca" {
		opt.Semantics = xmlsearch.SLCA
	}
	query := strings.Join(r.Keywords, " ")
	switch r.Op {
	case "search":
		rs, err := ix.SearchContext(ctx, query, opt)
		return foldResults(rs), err
	case "topk":
		rs, err := ix.TopKContext(ctx, query, r.K, opt)
		return foldResults(rs), err
	case "topk_stream":
		h := qlog.NewHash()
		err := ix.TopKStreamContext(ctx, query, r.K, opt, func(res xmlsearch.Result) bool {
			h = h.Result(res.Dewey, res.Score)
			return true
		})
		return h, err
	default:
		return 0, fmt.Errorf("bench: unknown recorded op %q", r.Op)
	}
}

// Replay loads a captured workload and re-executes it against a fresh
// index built at cfg's (scale, seed) — which must match the capture's,
// or every fingerprint check will fail. It reports per-recorded-outcome
// latency points plus the ReplaySummary; the caller decides whether
// mismatches fail the run.
func Replay(cfg Config, workload string, opt ReplayOptions) (*Report, error) {
	records, err := qlog.ReadFile(workload)
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("bench: workload %s is empty", workload)
	}
	ds := gen.DBLP(cfg.Scale, cfg.Seed)
	ix, err := xmlsearch.FromDocument(ds.Doc)
	if err != nil {
		return nil, fmt.Errorf("bench: replay index: %w", err)
	}

	sum := &ReplaySummary{
		Workload: workload,
		Records:  len(records),
		Paced:    opt.Paced,
		Outcomes: map[string]int{},
	}
	durs := map[string][]time.Duration{} // recorded outcome -> replay latencies
	ctx := context.Background()
	start := time.Now()
	base := records[0].OffsetNs
	for _, r := range records {
		if opt.Paced {
			if wait := time.Duration(r.OffsetNs-base) - time.Since(start); wait > 0 {
				time.Sleep(wait)
			}
		}
		t0 := time.Now()
		fp, rerr := replayOne(ctx, ix, r, opt.ForceAlgo)
		d := time.Since(t0)
		if rerr != nil && strings.Contains(rerr.Error(), "unknown recorded op") {
			sum.Skipped++
			continue
		}
		sum.Replayed++
		sum.Outcomes[r.Outcome]++
		durs[r.Outcome] = append(durs[r.Outcome], d)
		if r.Outcome != qlog.OutcomeOK || r.Fingerprint == "" || opt.ForceAlgo != "" {
			// Only recorded-complete answers have a reproducible
			// fingerprint; under ForceAlgo the engine changed, so result
			// order may legitimately differ.
			continue
		}
		sum.Checked++
		want, perr := qlog.ParseHash(r.Fingerprint)
		switch {
		case perr != nil:
			sum.Mismatches++
			sum.noteMismatch(fmt.Sprintf("seq %d %v: bad recorded fingerprint %q", r.Seq, r.Keywords, r.Fingerprint))
		case rerr != nil:
			sum.Mismatches++
			sum.noteMismatch(fmt.Sprintf("seq %d %v: recorded ok, replay failed: %v", r.Seq, r.Keywords, rerr))
		case fp != want:
			sum.Mismatches++
			sum.noteMismatch(fmt.Sprintf("seq %d %v %s/%s k=%d: fingerprint %s, recorded %s",
				r.Seq, r.Keywords, r.Op, r.Algo, r.K, fp, want))
		}
	}

	rep := &Report{Exp: "replay", Env: CurrentFingerprint(), Config: cfg, Replay: sum}
	outcomes := make([]string, 0, len(durs))
	for o := range durs {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		ds := durs[o]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var total time.Duration
		for _, d := range ds {
			total += d
		}
		p := Point{
			Exp: "replay", Engine: "facade", Label: "outcome=" + o,
			Queries: len(ds), Reps: 1,
			P50Ns: int64(quantile(ds, 50)), P95Ns: int64(quantile(ds, 95)),
			P99Ns: int64(quantile(ds, 99)), MeanNs: int64(total / time.Duration(len(ds))),
		}
		if total > 0 {
			p.QPS = float64(len(ds)) / total.Seconds()
		}
		rep.Points = append(rep.Points, p)
	}
	return rep, nil
}

// ShardedFingerprints re-executes a captured workload's recorded-ok
// queries against a fresh sharded index built at cfg's (scale, seed)
// with the given shard count, and returns the replayed fingerprint per
// record sequence number. Fingerprints fold only the final merged rank
// order (Dewey, score) — never shard identity or fan-out — so the same
// workload replayed at different shard counts must fingerprint
// identically record-for-record (the shard-count-invariance check in
// the determinism tests).
func ShardedFingerprints(cfg Config, workload string, shards int) (map[uint64]qlog.Hash, error) {
	records, err := qlog.ReadFile(workload)
	if err != nil {
		return nil, err
	}
	ds := gen.DBLP(cfg.Scale, cfg.Seed)
	sh, err := xmlsearch.NewSharded(ds.Doc, shards)
	if err != nil {
		return nil, fmt.Errorf("bench: sharded replay index: %w", err)
	}
	out := make(map[uint64]qlog.Hash, len(records))
	ctx := context.Background()
	for _, r := range records {
		if r.Outcome != qlog.OutcomeOK || r.Fingerprint == "" {
			continue
		}
		fp, rerr := replayOne(ctx, sh, r, "")
		if rerr != nil {
			if strings.Contains(rerr.Error(), "unknown recorded op") {
				continue
			}
			return nil, fmt.Errorf("bench: sharded replay seq %d %v: %w", r.Seq, r.Keywords, rerr)
		}
		out[r.Seq] = fp
	}
	return out, nil
}

// noteMismatch retains the first few mismatch descriptions for the log.
func (s *ReplaySummary) noteMismatch(msg string) {
	if len(s.MismatchExamples) < 5 {
		s.MismatchExamples = append(s.MismatchExamples, msg)
	}
}
