package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	xmlsearch "repro"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/ixlookup"
	"repro/internal/qlog"
	"repro/internal/stack"
	"repro/internal/topk"
)

// Machine-readable benchmark telemetry. The table/figure renderers in
// experiments.go print for humans; this file measures the same workloads
// into a Report — per-engine latency quantiles, throughput, and decode
// volume, stamped with the machine fingerprint — that CI stores as an
// artifact and gates against a committed baseline with CompareReports.

// Point is one measured sweep point: one engine on one workload.
// Latencies are per-execution quantiles over Queries x Reps executions
// (plus one untimed warm-up pass per query, matching Timing's protocol).
type Point struct {
	Exp    string `json:"exp"`
	Engine string `json:"engine"`
	// Label names the workload within the experiment, stable across
	// scales and machines — CompareReports matches points on
	// (Exp, Engine, Label, K).
	Label   string `json:"label"`
	K       int    `json:"k,omitempty"` // 0 for complete evaluations
	Queries int    `json:"queries"`
	Reps    int    `json:"reps"`

	P50Ns  int64   `json:"p50_ns"`
	P95Ns  int64   `json:"p95_ns"`
	P99Ns  int64   `json:"p99_ns"`
	MeanNs int64   `json:"mean_ns"`
	QPS    float64 `json:"qps"`
	// DecodedBytes is the store decode volume attributed to this point
	// (first touch of each list decodes it; later points reusing the same
	// terms read the already-decoded list and attribute 0).
	DecodedBytes int64 `json:"decoded_bytes"`
}

// Report is one benchmark run: which experiment, on what machine, under
// which configuration, measuring which points.
type Report struct {
	Exp    string      `json:"exp"`
	Env    Fingerprint `json:"env"`
	Config Config      `json:"config"`
	Points []Point     `json:"points"`
	// PlanCacheHitRatio is the planner's plan-cache hit ratio over the
	// smoke's prepared-query phase (three passes over the workload under
	// AlgoAuto — first pass misses, later passes hit, so a healthy cache
	// reads about 2/3). Informational: CompareReports does not gate on it.
	PlanCacheHitRatio float64 `json:"plan_cache_hit_ratio,omitempty"`
	// Degradation-behavior summary, populated by the overload experiment
	// (and recorded — as zero — by the smoke, whose workload never sheds):
	// ShedRate is the fraction of offered requests shed by admission
	// control, PartialRate the fraction of admitted queries settled as
	// certified-partial answers, AdmissionRejected the raw shed counter.
	// Deliberately not omitempty: a zero is a recorded measurement, and
	// future regressions in degradation behavior stay machine-visible.
	ShedRate          float64 `json:"shed_rate"`
	PartialRate       float64 `json:"partial_rate"`
	AdmissionRejected int64   `json:"admission_rejected"`
	// Replay is the capture→replay verdict, populated only by the replay
	// experiment (see replay.go); omitted from every other report so the
	// committed smoke/overload baselines are untouched.
	Replay *ReplaySummary `json:"replay,omitempty"`
}

// quantile returns the q-th percentile (nearest-rank on the sorted slice).
func quantile(sorted []time.Duration, q int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[(len(sorted)-1)*q/100]
}

// measure times fn over the workload — per-execution durations, one
// warm-up per query — and assembles the Point, attributing the store
// decode volume that happened during the measurement (warm-up included:
// that is where first-touch decodes land).
func (e *Env) measure(exp, engine, label string, k int, qs [][]string, reps int, fn func(q []string)) Point {
	if reps < 1 {
		reps = 1
	}
	before := e.Obs.Store.Snapshot().DecodedBytes
	durs := make([]time.Duration, 0, len(qs)*reps)
	var total time.Duration
	for _, q := range qs {
		fn(q) // warm up caches and lazily-decoded lists
		for r := 0; r < reps; r++ {
			start := time.Now()
			fn(q)
			d := time.Since(start)
			durs = append(durs, d)
			total += d
		}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var mean time.Duration
	var qps float64
	if len(durs) > 0 {
		mean = total / time.Duration(len(durs))
		if total > 0 {
			qps = float64(len(durs)) / total.Seconds()
		}
	}
	return Point{
		Exp: exp, Engine: engine, Label: label, K: k,
		Queries: len(qs), Reps: reps,
		P50Ns: int64(quantile(durs, 50)), P95Ns: int64(quantile(durs, 95)),
		P99Ns: int64(quantile(durs, 99)), MeanNs: int64(mean), QPS: qps,
		DecodedBytes: e.Obs.Store.Snapshot().DecodedBytes - before,
	}
}

// Smoke runs the CI benchmark smoke: every engine over the mid-band k=2
// workload (top-K engines at cfg.TopK), measured against a disk-backed
// column store persisted into dir and reopened — so list decodes pull
// real on-disk bytes and DecodedBytes measures the true decode volume
// rather than reading pre-built in-memory lists.
func Smoke(cfg Config, dir string) (*Report, error) {
	e := NewDBLPEnv(cfg.Scale, cfg.Seed)
	if err := e.Store.Save(dir); err != nil {
		return nil, fmt.Errorf("bench: persist store: %w", err)
	}
	reopened, err := colstore.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("bench: reopen store: %w", err)
	}
	reopened.SetObs(&e.Obs.Store)
	e.Store = reopened

	mid := e.DS.BandValues[len(e.DS.BandValues)/2]
	qs := e.BandQueries(cfg.Seed, 2, mid, cfg.QueriesPerPt)
	const label = "band-mid/k=2"
	r := &Report{Exp: "smoke", Env: CurrentFingerprint(), Config: cfg}
	r.Points = append(r.Points,
		e.measure("smoke", "join", label, 0, qs, cfg.RepsPerQuery,
			func(q []string) { e.RunJoin(q, core.ELCA, core.PlanAuto) }),
		e.measure("smoke", "stack", label, 0, qs, cfg.RepsPerQuery,
			func(q []string) { e.RunStack(q, stack.ELCA) }),
		e.measure("smoke", "ixlookup", label, 0, qs, cfg.RepsPerQuery,
			func(q []string) { e.RunIxlookup(q, ixlookup.ELCA) }),
		e.measure("smoke", "topk", label, cfg.TopK, qs, cfg.RepsPerQuery,
			func(q []string) { e.RunTopKJoin(q, cfg.TopK, topk.StarJoin) }),
		e.measure("smoke", "rdil", label, cfg.TopK, qs, cfg.RepsPerQuery,
			func(q []string) { e.RunRDIL(q, cfg.TopK) }),
		e.measure("smoke", "hybrid", label, cfg.TopK, qs, cfg.RepsPerQuery,
			func(q []string) { e.RunHybrid(q, cfg.TopK) }),
	)

	// Prepared-query phase: the same workload through the library's
	// planner — Prepare once per query, three executions under AlgoAuto —
	// so the report carries the plan-cache hit ratio CI can eyeball.
	// This runs after every engine point on purpose: FromDocument
	// re-assigns JDewey numbers on the shared document, which would skew
	// the engines' pre-built lists if it ran first.
	ratio, err := planCacheRatio(e, qs, cfg.TopK)
	if err != nil {
		return nil, err
	}
	r.PlanCacheHitRatio = ratio
	return r, nil
}

// planCacheRatio indexes the environment's document through the public
// API and replays the workload as prepared AlgoAuto queries: pass one
// populates the plan cache (all misses), passes two and three hit it,
// so the returned ratio lands near 2/3 when caching works.
func planCacheRatio(e *Env, qs [][]string, k int) (float64, error) {
	ix, err := xmlsearch.FromDocument(e.DS.Doc)
	if err != nil {
		return 0, fmt.Errorf("bench: index for plan-cache phase: %w", err)
	}
	// Run the phase with the flight recorder on (memory-only), so the CI
	// smoke exercises the recording path — metered budgets, fingerprints,
	// the lossy queue — on every run, not just in unit tests.
	rec, err := qlog.New(qlog.Options{})
	if err != nil {
		return 0, fmt.Errorf("bench: smoke recorder: %w", err)
	}
	defer rec.Close()
	ix.SetQueryLog(rec)
	opt := xmlsearch.SearchOptions{Algorithm: xmlsearch.AlgoAuto}
	prepared := make([]*xmlsearch.PreparedQuery, 0, len(qs))
	for _, q := range qs {
		pq, err := ix.Prepare(strings.Join(q, " "), opt)
		if err != nil {
			return 0, fmt.Errorf("bench: prepare %v: %w", q, err)
		}
		prepared = append(prepared, pq)
	}
	ctx := context.Background()
	for pass := 0; pass < 3; pass++ {
		for _, pq := range prepared {
			if _, err := pq.TopK(ctx, k); err != nil {
				return 0, fmt.Errorf("bench: prepared top-K %q: %w", pq.Query(), err)
			}
		}
	}
	return ix.Stats().Planner.CacheHitRatio, nil
}

// WriteReport writes the report as indented JSON.
func WriteReport(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a report written by WriteReport.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// CompareReports gates cur against base: for every baseline point, the
// matching current point (same Exp, Engine, Label, K) must exist and its
// p50 must not exceed base p50 * (1 + tol). It returns one human-readable
// line per violation — empty means the gate passes. Points the current
// report adds beyond the baseline are ignored (new benchmarks are not
// regressions). tol is fractional: 0.25 allows 25% slower; CI comparing
// across unlike machines (see Fingerprint) should use a multiple of that.
func CompareReports(base, cur *Report, tol float64) []string {
	type key struct {
		exp, engine, label string
		k                  int
	}
	curPts := make(map[key]Point, len(cur.Points))
	for _, p := range cur.Points {
		curPts[key{p.Exp, p.Engine, p.Label, p.K}] = p
	}
	var violations []string
	for _, b := range base.Points {
		c, ok := curPts[key{b.Exp, b.Engine, b.Label, b.K}]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s/%s %s k=%d: point missing from current report", b.Exp, b.Engine, b.Label, b.K))
			continue
		}
		limit := float64(b.P50Ns) * (1 + tol)
		if float64(c.P50Ns) > limit {
			violations = append(violations,
				fmt.Sprintf("%s/%s %s k=%d: p50 %v exceeds baseline %v by more than %.0f%% (limit %v)",
					b.Exp, b.Engine, b.Label, b.K,
					time.Duration(c.P50Ns), time.Duration(b.P50Ns), tol*100, time.Duration(int64(limit))))
		}
	}
	return violations
}
