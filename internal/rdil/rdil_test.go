package rdil

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/invindex"
	"repro/internal/naive"
	"repro/internal/occur"
	"repro/internal/testutil"
	"repro/internal/xmltree"
)

type env struct {
	doc *xmltree.Document
	m   *occur.Map
	r   *Index
}

func newEnv(doc *xmltree.Document) *env {
	m := occur.Extract(doc)
	return &env{doc: doc, m: m, r: NewIndex(invindex.Build(m))}
}

// assertValidTopK checks that the emitted results are a correct top-K
// answer: same score sequence as the oracle's best K, and every emitted
// node is a true result with its true score. (Equal-score results may be
// returned in either order, so IDs are compared only through scores plus
// membership in the oracle's full result set.)
func assertValidTopK(t *testing.T, e *env, keywords []string, sem Semantics, k int) {
	t.Helper()
	nsem := naive.ELCA
	if sem == SLCA {
		nsem = naive.SLCA
	}
	all := naive.Evaluate(e.doc, e.m, keywords, nsem, 0)
	naive.SortByScore(all)
	want := all
	if k < len(want) {
		want = want[:k]
	}
	got, _ := e.r.TopK(keywords, sem, 0, k)
	if len(got) != len(want) {
		t.Fatalf("%v sem=%d k=%d: %d results, oracle %d", keywords, sem, k, len(got), len(want))
	}
	truth := map[string]float64{}
	for _, r := range all {
		truth[r.Node.Dewey.String()] = r.Score
	}
	for i, g := range got {
		ts, ok := truth[g.ID.String()]
		if !ok {
			t.Fatalf("%v sem=%d: emitted non-result %v", keywords, sem, g.ID)
		}
		if math.Abs(g.Score-ts) > 1e-6*(1+math.Abs(ts)) {
			t.Fatalf("%v sem=%d: %v score %v, truth %v", keywords, sem, g.ID, g.Score, ts)
		}
		if math.Abs(g.Score-want[i].Score) > 1e-6*(1+math.Abs(want[i].Score)) {
			t.Fatalf("%v sem=%d: rank %d score %v, oracle %v", keywords, sem, i, g.Score, want[i].Score)
		}
	}
	// Emission must be score-descending.
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Score > got[j].Score }) {
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score+1e-9 {
				t.Fatalf("%v: emission out of score order at %d", keywords, i)
			}
		}
	}
}

func sampleDoc() *xmltree.Document {
	return xmltree.NewBuilder().
		Open("bib").
		Open("book").
		Leaf("title", "xml").
		Open("chapter").Leaf("sec", "xml basics").Leaf("sec", "data models").Close().
		Close().
		Open("book").Leaf("title", "data warehousing").Close().
		Open("book").Leaf("title", "xml processing").Leaf("note", "big data").Close().
		Close().
		Doc()
}

func TestWorkedExample(t *testing.T) {
	e := newEnv(sampleDoc())
	got, st := e.r.TopK([]string{"xml", "data"}, ELCA, 0, 10)
	if len(got) != 2 {
		t.Fatalf("top-10 over 2 results = %d", len(got))
	}
	if st.Pulled == 0 || st.Verifications == 0 {
		t.Errorf("stats not collected: %+v", st)
	}
	assertValidTopK(t, e, []string{"xml", "data"}, ELCA, 1)
	assertValidTopK(t, e, []string{"xml", "data"}, SLCA, 2)
}

func TestDegenerate(t *testing.T) {
	e := newEnv(sampleDoc())
	if rs, _ := e.r.TopK(nil, ELCA, 0, 5); rs != nil {
		t.Error("empty query")
	}
	if rs, _ := e.r.TopK([]string{"xml", "absent"}, ELCA, 0, 5); rs != nil {
		t.Error("missing keyword")
	}
	if rs, _ := e.r.TopK([]string{"xml"}, ELCA, 0, 0); rs != nil {
		t.Error("k=0")
	}
	assertValidTopK(t, e, []string{"xml"}, ELCA, 2)
}

func TestValidTopKRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		params := testutil.SmallParams()
		if trial%3 == 0 {
			params = testutil.MediumParams()
		}
		e := newEnv(testutil.RandomDoc(rng, params))
		for _, k := range []int{1, 2, 3} {
			q := testutil.RandomQuery(rng, params.Vocab, k)
			for _, topk := range []int{1, 3, 10} {
				assertValidTopK(t, e, q, ELCA, topk)
				assertValidTopK(t, e, q, SLCA, topk)
			}
		}
	}
}

// TestEarlyTermination: with a clear winner, RDIL should stop well before
// exhausting the long lists.
func TestEarlyTermination(t *testing.T) {
	b := xmltree.NewBuilder().Open("root")
	// One tight pair with very high tf (high local scores).
	b.Open("hit").Text("needle needle needle needle haystack haystack haystack haystack").Close()
	for i := 0; i < 500; i++ {
		b.Leaf("filler", "haystack")
	}
	doc := b.Close().Doc()
	e := newEnv(doc)
	got, st := e.r.TopK([]string{"needle", "haystack"}, ELCA, 0, 1)
	if len(got) != 1 || got[0].ID.String() != "1.1" {
		t.Fatalf("top-1 = %v", got)
	}
	total := e.m.DocFreq("needle") + e.m.DocFreq("haystack")
	if st.Pulled >= total {
		t.Errorf("pulled %d of %d postings: no early termination", st.Pulled, total)
	}
	assertValidTopK(t, e, []string{"needle", "haystack"}, ELCA, 1)
}
