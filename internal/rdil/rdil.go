// Package rdil implements the RDIL baseline of [5] (XRank's Ranked Dewey
// Inverted Lists): inverted lists replicated in descending local-score
// order, consumed round-robin, with B-tree-style lookups (binary search
// over the document-order lists) used to discover the results each pulled
// occurrence participates in, under the classic TA threshold.
//
// The implementation is deliberately faithful to the two weaknesses the
// paper analyzes in Section II-C: pulling out of document order forfeits
// the semantic-pruning optimization, so every pulled occurrence triggers
// ancestor-chain containment checks and full ELCA verification of
// candidates that often turn out irrelevant; and a high local score says
// nothing about the damped global score, so termination can be slow.
package rdil

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dewey"
	"repro/internal/invindex"
	"repro/internal/obs"
	"repro/internal/score"
)

// Semantics selects the result semantics.
type Semantics int

const (
	ELCA Semantics = iota
	SLCA
)

// Result is one emitted result with its ranking score.
type Result struct {
	ID    dewey.ID
	Score float64
}

// Stats reports execution counters.
type Stats struct {
	Pulled        int   // occurrences consumed from the score-sorted lists
	Probes        int64 // binary searches over the document-order lists
	Verifications int   // candidate nodes fully verified
}

// Index is the RDIL index: the document-order lists plus, per keyword, the
// posting permutation sorted by descending local score (the score-ordered
// replica RDIL scans).
type Index struct {
	idx   *invindex.Index
	order map[string][]int32
}

// NewIndex builds the score-sorted replicas over a document-order index.
func NewIndex(idx *invindex.Index) *Index {
	r := &Index{idx: idx, order: make(map[string][]int32, len(idx.Lists))}
	for w, l := range idx.Lists {
		perm := make([]int32, l.Len())
		for i := range perm {
			perm[i] = int32(i)
		}
		sort.SliceStable(perm, func(a, b int) bool {
			return l.Postings[perm[a]].Score > l.Postings[perm[b]].Score
		})
		r.order[w] = perm
	}
	return r
}

// verdict caches the verification outcome for one candidate node.
type verdict struct {
	isResult bool
	score    float64
}

// TopK returns the top-k results for the keyword query. Keywords missing
// from the index yield no results.
func (r *Index) TopK(keywords []string, sem Semantics, decay float64, k int) ([]Result, Stats) {
	rs, st, _ := r.TopKCtx(context.Background(), keywords, sem, decay, k)
	return rs, st
}

// ctxCheckStride is how many pulled occurrences pass between context
// checks: RDIL's per-pull verification work is heavy, so a small stride
// keeps cancellation latency low.
const ctxCheckStride = 64

// TopKCtx is TopK honoring a context: the round-robin pull loop observes
// cancellation periodically and aborts with ctx.Err(), returning the
// results emitted so far.
func (r *Index) TopKCtx(ctx context.Context, keywords []string, sem Semantics, decay float64, k int) ([]Result, Stats, error) {
	return r.TopKObsCtx(ctx, keywords, sem, decay, k, nil)
}

// TopKObsCtx is TopKCtx with per-query tracing: the round-robin input
// order, TA threshold updates, emissions, early termination, and
// cancellation strides are recorded on tr (nil disables tracing).
func (r *Index) TopKObsCtx(ctx context.Context, keywords []string, sem Semantics, decay float64, k int, tr *obs.Trace) ([]Result, Stats, error) {
	var st Stats
	if ctx == nil {
		ctx = context.Background()
	}
	if len(keywords) == 0 || k <= 0 {
		return nil, st, nil
	}
	if decay == 0 {
		decay = score.DefaultDecay
	}
	lists := make([]*invindex.List, len(keywords))
	perms := make([][]int32, len(keywords))
	for i, w := range keywords {
		lists[i] = r.idx.Get(w)
		if lists[i] == nil || lists[i].Len() == 0 {
			return nil, st, nil
		}
		perms[i] = r.order[w]
	}
	totalRows := int64(0)
	if tr != nil {
		var b strings.Builder
		b.WriteString("score-order-round-robin:rows=")
		for i, l := range lists {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", l.Len())
			totalRows += int64(l.Len())
		}
		tr.JoinOrder(b.String(), len(lists), lists[0].Len(), totalRows)
		defer func() {
			tr.CancelChecks(int64(st.Pulled/ctxCheckStride), ctxCheckStride)
			tr.Note("rdil pulled/probes/verifications", int64(st.Pulled), st.Probes, int64(st.Verifications))
		}()
	}
	e := &engine{lists: lists, decay: decay, st: &st, verdicts: map[string]*verdict{}, sem: sem}

	cursors := make([]int, len(lists))
	candidates := map[string]float64{} // discovered, verified results not yet emitted
	var emitted []Result

	nextScore := func(i int) float64 {
		if cursors[i] >= len(perms[i]) {
			return 0
		}
		return float64(lists[i].Postings[perms[i][cursors[i]]].Score)
	}
	threshold := func() float64 {
		// TA bound: an undiscovered result has every occurrence unseen, so
		// its score is at most the sum of the next local scores (damping
		// only lowers them). An exhausted list rules undiscovered results
		// out entirely, contributing zero.
		t := 0.0
		for i := range lists {
			t += nextScore(i)
		}
		if tr != nil {
			tr.Threshold(0, t, len(candidates), len(emitted))
		}
		return t
	}
	drain := func(final bool) {
		for len(emitted) < k && len(candidates) > 0 {
			bestKey, bestScore := "", -1.0
			for key, s := range candidates {
				if s > bestScore || (s == bestScore && key < bestKey) {
					bestKey, bestScore = key, s
				}
			}
			if !final && bestScore < threshold() {
				return
			}
			delete(candidates, bestKey)
			id, err := dewey.Parse(bestKey)
			if err != nil {
				panic("rdil: corrupt candidate key: " + bestKey)
			}
			emitted = append(emitted, Result{ID: id, Score: bestScore})
			if tr != nil {
				tr.Emit(len(id), len(emitted), bestScore)
			}
		}
	}

	for len(emitted) < k {
		// Round-robin over the score-sorted lists, skipping exhausted ones.
		pulledAny := false
		for i := 0; i < len(lists) && len(emitted) < k; i++ {
			if cursors[i] >= len(perms[i]) {
				continue
			}
			if st.Pulled%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return emitted, st, err
				}
			}
			p := lists[i].Postings[perms[i][cursors[i]]]
			cursors[i]++
			st.Pulled++
			pulledAny = true
			// Discover every result the pulled occurrence belongs to: its
			// contains-all ancestors form a contiguous prefix chain ending
			// at the deepest contains-all ancestor.
			for depth := len(p.ID); depth >= 1; depth-- {
				u := p.ID[:depth]
				if !e.containsAll(u) {
					continue
				}
				// u and all its ancestors are contains-all; verify each
				// once.
				for d := depth; d >= 1; d-- {
					key := dewey.ID(p.ID[:d]).String()
					v, ok := e.verdicts[key]
					if !ok {
						v = e.verify(p.ID[:d].Clone())
						e.verdicts[key] = v
					}
					if v.isResult {
						if _, done := candidates[key]; !done && !inEmitted(emitted, key) {
							candidates[key] = v.score
						}
					}
				}
				break
			}
			drain(false)
		}
		if !pulledAny {
			break
		}
	}
	drain(true)
	if len(emitted) > k {
		emitted = emitted[:k]
	}
	if tr != nil && len(emitted) >= k && int64(st.Pulled) < totalRows {
		tr.Terminated(0, int64(st.Pulled), totalRows)
	}
	return emitted, st, nil
}

func inEmitted(emitted []Result, key string) bool {
	for _, r := range emitted {
		if r.ID.String() == key {
			return true
		}
	}
	return false
}

// engine bundles the verification helpers (shared logic with the
// index-based family: RDIL is "very similar to the index-based algorithms"
// per Section II-C).
type engine struct {
	lists    []*invindex.List
	decay    float64
	sem      Semantics
	st       *Stats
	verdicts map[string]*verdict
}

func (e *engine) containsAll(u dewey.ID) bool {
	for _, l := range e.lists {
		e.st.Probes++
		if !l.ContainsUnder(u) {
			return false
		}
	}
	return true
}

// verify decides whether the contains-all node u is an ELCA/SLCA and
// computes its score.
func (e *engine) verify(u dewey.ID) *verdict {
	e.st.Verifications++
	switch e.sem {
	case SLCA:
		// u is an SLCA iff no child branch with an occurrence of the first
		// keyword is contains-all (any contains-all descendant contains
		// occurrences of every keyword, the first included).
		l := e.lists[0]
		lo, hi := l.SubtreeRange(u)
		e.st.Probes++
		for i := lo; i < hi; {
			x := l.Postings[i]
			if len(x.ID) == len(u) {
				i++
				continue
			}
			branch := x.ID[:len(u)+1]
			if e.containsAll(branch) {
				return &verdict{}
			}
			next := branch.Clone()
			next[len(u)]++
			e.st.Probes++
			i = l.SearchGE(next)
		}
		total := 0.0
		for _, l := range e.lists {
			e.st.Probes++
			total += l.MaxScoreUnder(u, e.decay)
		}
		return &verdict{isResult: true, score: total}
	default: // ELCA
		total := 0.0
		branchCA := map[uint32]bool{}
		for _, l := range e.lists {
			lo, hi := l.SubtreeRange(u)
			e.st.Probes++
			best := 0.0
			found := false
			for i := lo; i < hi; {
				x := l.Postings[i]
				if len(x.ID) == len(u) {
					found = true
					if s := float64(x.Score); s > best {
						best = s
					}
					i++
					continue
				}
				comp := x.ID[len(u)]
				ca, ok := branchCA[comp]
				if !ok {
					ca = e.containsAll(x.ID[:len(u)+1])
					branchCA[comp] = ca
				}
				if ca {
					next := x.ID[:len(u)+1].Clone()
					next[len(u)]++
					e.st.Probes++
					i = l.SearchGE(next)
					continue
				}
				found = true
				if s := float64(x.Score) * pow(e.decay, len(x.ID)-len(u)); s > best {
					best = s
				}
				i++
			}
			if !found {
				return &verdict{}
			}
			total += best
		}
		return &verdict{isResult: true, score: total}
	}
}

func pow(base float64, n int) float64 {
	p := 1.0
	for i := 0; i < n; i++ {
		p *= base
	}
	return p
}
