package stack

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dewey"
	"repro/internal/invindex"
	"repro/internal/naive"
	"repro/internal/occur"
	"repro/internal/testutil"
	"repro/internal/xmltree"
)

type env struct {
	doc *xmltree.Document
	m   *occur.Map
	idx *invindex.Index
}

func newEnv(doc *xmltree.Document) *env {
	m := occur.Extract(doc)
	return &env{doc: doc, m: m, idx: invindex.Build(m)}
}

func (e *env) lists(keywords []string) []*invindex.List {
	out := make([]*invindex.List, len(keywords))
	for i, w := range keywords {
		out[i] = e.idx.Get(w)
	}
	return out
}

func assertMatchesOracle(t *testing.T, e *env, keywords []string, sem Semantics) {
	t.Helper()
	nsem := naive.ELCA
	if sem == SLCA {
		nsem = naive.SLCA
	}
	want := naive.Evaluate(e.doc, e.m, keywords, nsem, 0)
	got, _ := Evaluate(e.lists(keywords), sem, 0)
	if len(got) != len(want) {
		t.Fatalf("%v %d: %d results, oracle %d", keywords, sem, len(got), len(want))
	}
	byID := map[string]float64{}
	for _, r := range got {
		byID[r.ID.String()] = r.Score
	}
	for _, w := range want {
		s, ok := byID[w.Node.Dewey.String()]
		if !ok {
			t.Fatalf("%v %d: missing %v", keywords, sem, w.Node.Dewey)
		}
		if math.Abs(s-w.Score) > 1e-6*(1+math.Abs(w.Score)) {
			t.Fatalf("%v %d: %v score %v, oracle %v", keywords, sem, w.Node.Dewey, s, w.Score)
		}
	}
}

func sampleDoc() *xmltree.Document {
	return xmltree.NewBuilder().
		Open("bib").
		Open("book").
		Leaf("title", "xml").
		Open("chapter").Leaf("sec", "xml basics").Leaf("sec", "data models").Close().
		Close().
		Open("book").Leaf("title", "data warehousing").Close().
		Open("book").Leaf("title", "xml processing").Leaf("note", "big data").Close().
		Close().
		Doc()
}

func TestWorkedExample(t *testing.T) {
	e := newEnv(sampleDoc())
	got, st := Evaluate(e.lists([]string{"xml", "data"}), ELCA, 0)
	if len(got) != 2 {
		t.Fatalf("ELCA count = %d, want 2", len(got))
	}
	// Document order output: chapter (1.1.2) before book 3 (1.3).
	if got[0].ID.String() != "1.1.2" || got[1].ID.String() != "1.3" {
		t.Fatalf("results = %v, %v", got[0].ID, got[1].ID)
	}
	// Every posting of every list must have been read.
	wantRead := e.idx.Get("xml").Len() + e.idx.Get("data").Len()
	if st.PostingsRead != wantRead {
		t.Errorf("postings read = %d, want %d (full scans)", st.PostingsRead, wantRead)
	}
	assertMatchesOracle(t, e, []string{"xml", "data"}, ELCA)
	assertMatchesOracle(t, e, []string{"xml", "data"}, SLCA)
}

func TestDegenerate(t *testing.T) {
	e := newEnv(sampleDoc())
	if rs, _ := Evaluate(nil, ELCA, 0); rs != nil {
		t.Error("empty query")
	}
	if rs, _ := Evaluate(e.lists([]string{"xml", "absent"}), ELCA, 0); rs != nil {
		t.Error("missing keyword")
	}
	assertMatchesOracle(t, e, []string{"xml"}, ELCA)
	assertMatchesOracle(t, e, []string{"xml"}, SLCA)
}

func TestCrossEngineEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 120; trial++ {
		params := testutil.SmallParams()
		if trial%3 == 0 {
			params = testutil.MediumParams()
		}
		e := newEnv(testutil.RandomDoc(rng, params))
		for _, k := range []int{1, 2, 3, 4} {
			q := testutil.RandomQuery(rng, params.Vocab, k)
			assertMatchesOracle(t, e, q, ELCA)
			assertMatchesOracle(t, e, q, SLCA)
		}
	}
}

func TestTopKIsFullEvaluationThenSort(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	e := newEnv(testutil.RandomDoc(rng, testutil.MediumParams()))
	q := testutil.RandomQuery(rng, testutil.Vocab(20), 2)
	all, stAll := Evaluate(e.lists(q), ELCA, 0)
	top, stTop := TopK(e.lists(q), ELCA, 0, 3)
	if stTop.PostingsRead != stAll.PostingsRead {
		t.Errorf("top-K read %d postings, full run %d: this family cannot terminate early",
			stTop.PostingsRead, stAll.PostingsRead)
	}
	if len(all) >= 3 && len(top) != 3 {
		t.Fatalf("TopK returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("top-K not score-ordered")
		}
	}
}

func TestResultsInDocumentOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 20; trial++ {
		e := newEnv(testutil.RandomDoc(rng, testutil.MediumParams()))
		q := testutil.RandomQuery(rng, testutil.Vocab(20), 2)
		rs, _ := Evaluate(e.lists(q), ELCA, 0)
		for i := 1; i < len(rs); i++ {
			if dewey.Compare(rs[i-1].ID, rs[i].ID) >= 0 {
				t.Fatalf("results not in document order: %v then %v", rs[i-1].ID, rs[i].ID)
			}
		}
	}
}
