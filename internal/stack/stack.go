// Package stack implements the stack-based baseline algorithm ([5], the
// XRank Dewey-Inverted-List family): a k-way merge of the document-order
// Dewey lists through a single stack that mirrors the current root-to-node
// path. Every list is scanned in full — which is why, as Section V
// observes, its running time is bounded by the highest-frequency keyword
// regardless of the other lists — and results are produced in document
// order, never in score order, which is what makes this family incapable of
// top-K processing.
package stack

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dewey"
	"repro/internal/exec"
	"repro/internal/invindex"
	"repro/internal/obs"
	"repro/internal/score"
)

// Semantics selects the result semantics.
type Semantics int

const (
	ELCA Semantics = iota
	SLCA
)

// Result is one ELCA/SLCA with its ranking score.
type Result struct {
	ID    dewey.ID
	Score float64
}

// Stats reports execution counters.
type Stats struct {
	PostingsRead int // always Σ|L_i|: every list is fully scanned
	Pushes       int
	Pops         int
}

// entry is one stack slot, corresponding to one component of the current
// root-to-node path.
type entry struct {
	component uint32
	all       uint64    // keywords contained anywhere in the subtree
	wit       uint64    // keywords with a witness outside contains-all subtrees
	witBest   []float64 // per keyword, best damped witness score relative to this node
	caChild   bool      // some child subtree already contained all keywords
}

// Evaluate runs the stack algorithm over the document-order lists and
// returns all results in the (document) order they complete. Lists must
// come from the same index; a nil or empty list yields no results.
func Evaluate(lists []*invindex.List, sem Semantics, decay float64) ([]Result, Stats) {
	rs, st, _ := EvaluateCtx(context.Background(), lists, sem, decay)
	return rs, st
}

// ctxCheckStride is how many merged postings pass between context checks.
const ctxCheckStride = 1024

// EvaluateCtx is Evaluate honoring a context: the k-way merge observes
// cancellation periodically and aborts with ctx.Err().
func EvaluateCtx(ctx context.Context, lists []*invindex.List, sem Semantics, decay float64) ([]Result, Stats, error) {
	return EvaluateObsCtx(ctx, lists, sem, decay, nil)
}

// EvaluateObsCtx is EvaluateCtx with per-query tracing: the merge-order
// decision, cancellation-check strides, and stack-churn counters are
// recorded on tr (nil disables tracing).
func EvaluateObsCtx(ctx context.Context, lists []*invindex.List, sem Semantics, decay float64, tr *obs.Trace) ([]Result, Stats, error) {
	var st Stats
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	k := len(lists)
	if k == 0 || k > 64 {
		return nil, st, nil
	}
	for _, l := range lists {
		if l == nil || l.Len() == 0 {
			return nil, st, nil
		}
	}
	if decay == 0 {
		decay = score.DefaultDecay
	}
	if tr != nil {
		// The stack family has no order freedom — every list is merged in
		// document order and scanned in full, so the "driver" is the largest
		// list (Section V: runtime is bounded by the highest frequency).
		var b strings.Builder
		b.WriteString("doc-order-merge:rows=")
		maxRows, total := 0, int64(0)
		for i, l := range lists {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", l.Len())
			if l.Len() > maxRows {
				maxRows = l.Len()
			}
			total += int64(l.Len())
		}
		tr.JoinOrder(b.String(), k, maxRows, total)
		defer func() {
			tr.CancelChecks(int64(st.PostingsRead/ctxCheckStride), ctxCheckStride)
			tr.Note("stack pushes/pops/postings", int64(st.Pushes), int64(st.Pops), int64(st.PostingsRead))
		}()
	}
	full := uint64(1)<<k - 1

	var (
		stk     []entry
		results []Result
	)
	path := func(depth int) dewey.ID {
		id := make(dewey.ID, depth)
		for i := 0; i < depth; i++ {
			id[i] = stk[i].component
		}
		return id
	}
	// pop closes the deepest open node, emitting it if it is a result and
	// propagating its containment/witness state into its parent.
	pop := func() {
		st.Pops++
		d := len(stk)
		e := stk[d-1]
		if e.all == full {
			emit := false
			switch sem {
			case ELCA:
				emit = e.wit == full
			case SLCA:
				emit = !e.caChild
			}
			if emit {
				results = append(results, Result{ID: path(d), Score: score.Aggregate(e.witBest)})
			}
		}
		stk = stk[:d-1]
		if d == 1 {
			return
		}
		p := &stk[d-2]
		p.all |= e.all
		if e.all == full {
			// The whole child subtree contains every keyword: all of its
			// occurrences are excluded for every ancestor.
			p.caChild = true
			return
		}
		p.caChild = p.caChild || e.caChild
		p.wit |= e.wit
		for i := 0; i < k; i++ {
			if s := e.witBest[i] * decay; s > p.witBest[i] {
				p.witBest[i] = s
			}
		}
	}
	push := func(c uint32) {
		st.Pushes++
		stk = append(stk, entry{component: c, witBest: make([]float64, k)})
	}

	// k-way merge by document order.
	cursors := make([]int, k)
	for {
		best := -1
		for i := 0; i < k; i++ {
			if cursors[i] >= lists[i].Len() {
				continue
			}
			if best < 0 || dewey.Compare(lists[i].Postings[cursors[i]].ID, lists[best].Postings[cursors[best]].ID) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		p := lists[best].Postings[cursors[best]]
		cursors[best]++
		st.PostingsRead++
		if st.PostingsRead%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, st, err
			}
		}

		lcp := 0
		for lcp < len(stk) && lcp < len(p.ID) && stk[lcp].component == p.ID[lcp] {
			lcp++
		}
		for len(stk) > lcp {
			pop()
		}
		for _, c := range p.ID[lcp:] {
			push(c)
		}
		top := &stk[len(stk)-1]
		bit := uint64(1) << best
		top.all |= bit
		top.wit |= bit
		if s := float64(p.Score); s > top.witBest[best] {
			top.witBest[best] = s
		}
	}
	for len(stk) > 0 {
		pop()
	}
	// Completion order is post-order; normalize to document order.
	sort.SliceStable(results, func(i, j int) bool {
		return dewey.Compare(results[i].ID, results[j].ID) < 0
	})
	return results, st, nil
}

// TopK evaluates the full result set (the only option for this family),
// sorts by score, and returns the best K — the "compute everything, then
// rank" behaviour the paper contrasts top-K processing against.
func TopK(lists []*invindex.List, sem Semantics, decay float64, k int) ([]Result, Stats) {
	rs, st := Evaluate(lists, sem, decay)
	SortByScore(rs)
	if k < len(rs) {
		rs = rs[:k]
	}
	return rs, st
}

// SortByScore orders results by the canonical exec.Compare ordering
// (descending score, deeper levels first), breaking full ties by Dewey
// document order.
func SortByScore(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		if c := exec.Compare(rs[i].Score, rs[j].Score, len(rs[i].ID), len(rs[j].ID)); c != 0 {
			return c < 0
		}
		return dewey.Compare(rs[i].ID, rs[j].ID) < 0
	})
}
