// Package naive computes ELCA and SLCA result sets (with ranking scores)
// directly from the semantic definitions of Section II, with no indexing or
// pruning cleverness. It is the correctness oracle the cross-engine
// equivalence tests compare every optimized engine against.
package naive

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/obs"
	"repro/internal/occur"
	"repro/internal/score"
	"repro/internal/xmltree"
)

// Result is one ELCA/SLCA with its aggregated ranking score.
type Result struct {
	Node  *xmltree.Node
	Score float64
}

// Semantics mirrors core.Semantics without importing it, keeping the oracle
// free of dependencies on the code under test.
type Semantics int

const (
	ELCA Semantics = iota
	SLCA
)

// Evaluate returns the full result set for the keyword query in document
// order. A keyword with no occurrence yields no results. Queries of more
// than 64 keywords are unsupported (bitmask-based), far beyond anything the
// paper considers.
func Evaluate(doc *xmltree.Document, m *occur.Map, keywords []string, sem Semantics, decay float64) []Result {
	return EvaluateObs(doc, m, keywords, sem, decay, nil)
}

// EvaluateObs is Evaluate with per-query tracing: occurrence-list opens
// and the full-scan "plan" are recorded on tr (nil disables tracing). The
// oracle performs no joins, so its trace documents only what it read —
// which is also what makes it the baseline every other trace's early
// termination is measured against.
func EvaluateObs(doc *xmltree.Document, m *occur.Map, keywords []string, sem Semantics, decay float64, tr *obs.Trace) []Result {
	k := len(keywords)
	if k == 0 || k > 64 {
		return nil
	}
	if decay == 0 {
		decay = score.DefaultDecay
	}
	occs := make([][]occur.Occ, k)
	for i, w := range keywords {
		occs[i] = m.Terms[w]
		if len(occs[i]) == 0 {
			return nil
		}
	}
	if tr != nil {
		var b strings.Builder
		b.WriteString("full-scan:rows=")
		total := int64(0)
		for i, w := range keywords {
			maxLev := 0
			for _, o := range occs[i] {
				if o.Node.Level > maxLev {
					maxLev = o.Node.Level
				}
			}
			tr.ListOpen(w, len(occs[i]), maxLev, 0)
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", len(occs[i]))
			total += int64(len(occs[i]))
		}
		tr.JoinOrder(b.String(), k, len(occs[0]), total)
		tr.Note("naive nodes scanned", int64(doc.Len()), 0, 0)
	}
	full := uint64(1)<<k - 1

	// mask[n] = keywords contained anywhere in n's subtree.
	mask := make([]uint64, doc.Len())
	for i := range occs {
		for _, o := range occs[i] {
			mask[o.Node.Ord] |= 1 << i
		}
	}
	// Children precede nothing in preorder, so a reverse sweep sees every
	// child before its parent.
	for ord := doc.Len() - 1; ord >= 1; ord-- {
		n := doc.Nodes[ord]
		mask[n.Parent.Ord] |= mask[ord]
	}

	// lowestCA(x): the deepest contains-all ancestor-or-self of node x.
	lowestCA := func(x *xmltree.Node) *xmltree.Node {
		for v := x; v != nil; v = v.Parent {
			if mask[v.Ord] == full {
				return v
			}
		}
		return nil
	}

	// For each keyword, attribute each occurrence to its lowest
	// contains-all ancestor; those are the non-excluded witnesses.
	witMask := make([]uint64, doc.Len())
	witBest := make(map[int][]float64) // ord -> per-keyword best damped score
	for i := range occs {
		for _, o := range occs[i] {
			u := lowestCA(o.Node)
			if u == nil {
				continue
			}
			witMask[u.Ord] |= 1 << i
			best, ok := witBest[u.Ord]
			if !ok {
				best = make([]float64, k)
				witBest[u.Ord] = best
			}
			s := float64(o.Score) * math.Pow(decay, float64(o.Node.Level-u.Level))
			if s > best[i] {
				best[i] = s
			}
		}
	}

	var out []Result
	for _, n := range doc.Nodes {
		if mask[n.Ord] != full {
			continue
		}
		switch sem {
		case ELCA:
			// ELCA: a witness occurrence of every keyword not inside any
			// contains-all descendant.
			if witMask[n.Ord] != full {
				continue
			}
		case SLCA:
			// SLCA: no contains-all proper descendant, i.e. no child whose
			// subtree already contains all keywords.
			smallest := true
			for _, c := range n.Children {
				if mask[c.Ord] == full {
					smallest = false
					break
				}
			}
			if !smallest {
				continue
			}
		}
		out = append(out, Result{Node: n, Score: score.Aggregate(witBest[n.Ord])})
	}
	return out
}

// TopK returns the K best results by score (ties broken bottom-up by level,
// then by document order), computed exhaustively. It is the oracle for the
// top-K engines.
func TopK(doc *xmltree.Document, m *occur.Map, keywords []string, sem Semantics, decay float64, k int) []Result {
	all := Evaluate(doc, m, keywords, sem, decay)
	SortByScore(all)
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// SortByScore orders results by descending score with the same tie-breaks
// as core.SortByScore (deeper level first, then document order).
func SortByScore(rs []Result) {
	sortSlice(rs, func(a, b Result) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Node.Level != b.Node.Level {
			return a.Node.Level > b.Node.Level
		}
		return a.Node.Ord < b.Node.Ord
	})
}

func sortSlice(rs []Result, less func(a, b Result) bool) {
	// Insertion sort keeps the oracle dependency-free and is stable; result
	// sets in the oracle's regime are small.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && less(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
