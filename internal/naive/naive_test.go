package naive

import (
	"math"
	"testing"

	"repro/internal/occur"
	"repro/internal/score"
	"repro/internal/xmltree"
)

// The oracle itself is hand-verified on documents small enough to reason
// about exhaustively; every other engine is then compared against it.

func build() (*xmltree.Document, *occur.Map) {
	doc := xmltree.NewBuilder().
		Open("root").
		Open("a"). // 1.1 contains x (1.1.1) and y (1.1.2): ELCA+SLCA
		Leaf("t", "x").
		Leaf("t", "y").
		Close().
		Open("b"). // 1.2 contains x only
		Leaf("t", "x").
		Close().
		Leaf("c", "y"). // 1.3 contains y directly
		Close().
		Doc()
	return doc, occur.Extract(doc)
}

func nodesOf(rs []Result) map[string]float64 {
	m := make(map[string]float64, len(rs))
	for _, r := range rs {
		m[r.Node.Dewey.String()] = r.Score
	}
	return m
}

func TestELCAByHand(t *testing.T) {
	doc, m := build()
	rs := Evaluate(doc, m, []string{"x", "y"}, ELCA, 0.5)
	got := nodesOf(rs)
	// 1.1 is an ELCA. The root is also an ELCA: after excluding 1.1's
	// occurrences, it still has x from 1.2 and y from 1.3.
	if len(got) != 2 {
		t.Fatalf("ELCA = %v, want {1.1, 1}", got)
	}
	if _, ok := got["1.1"]; !ok {
		t.Fatal("missing 1.1")
	}
	if _, ok := got["1"]; !ok {
		t.Fatal("missing root")
	}
}

func TestSLCAByHand(t *testing.T) {
	doc, m := build()
	rs := Evaluate(doc, m, []string{"x", "y"}, SLCA, 0.5)
	got := nodesOf(rs)
	// Only 1.1: the root has the LCA descendant 1.1.
	if len(got) != 1 {
		t.Fatalf("SLCA = %v, want {1.1}", got)
	}
	if _, ok := got["1.1"]; !ok {
		t.Fatal("missing 1.1")
	}
}

func TestScoresByHand(t *testing.T) {
	doc, m := build()
	const decay = 0.5
	rs := Evaluate(doc, m, []string{"x", "y"}, ELCA, decay)
	got := nodesOf(rs)
	// Local scores: df(x)=2, df(y)=2, n=7, tf=1 everywhere, so every
	// occurrence has the same local score g.
	g := score.Local(1, 2, doc.Len())
	// 1.1 at level 2 with witnesses at level 3: score = 2 * g * 0.5.
	want11 := 2 * g * 0.5
	if math.Abs(got["1.1"]-want11) > 1e-6 {
		t.Errorf("score(1.1) = %v, want %v", got["1.1"], want11)
	}
	// Root at level 1: x witness at level 3 (1.2.1, damp 0.25),
	// y witness at level 2 (1.3, damp 0.5).
	wantRoot := g*0.25 + g*0.5
	if math.Abs(got["1"]-wantRoot) > 1e-6 {
		t.Errorf("score(root) = %v, want %v", got["1"], wantRoot)
	}
}

func TestDegenerateQueries(t *testing.T) {
	doc, m := build()
	if Evaluate(doc, m, nil, ELCA, 0) != nil {
		t.Error("empty query must be nil")
	}
	if Evaluate(doc, m, []string{"x", "nothere"}, ELCA, 0) != nil {
		t.Error("missing keyword must be nil")
	}
	big := make([]string, 65)
	for i := range big {
		big[i] = "x"
	}
	if Evaluate(doc, m, big, ELCA, 0) != nil {
		t.Error("queries beyond 64 keywords are unsupported and must be nil")
	}
}

func TestTopK(t *testing.T) {
	doc, m := build()
	all := Evaluate(doc, m, []string{"x", "y"}, ELCA, 0.5)
	top := TopK(doc, m, []string{"x", "y"}, ELCA, 0.5, 1)
	if len(top) != 1 {
		t.Fatalf("TopK(1) returned %d", len(top))
	}
	best := top[0]
	for _, r := range all {
		if r.Score > best.Score {
			t.Fatalf("TopK missed a better result: %v > %v", r.Score, best.Score)
		}
	}
	if got := TopK(doc, m, []string{"x", "y"}, ELCA, 0.5, 10); len(got) != len(all) {
		t.Fatalf("TopK beyond result count must return all %d", len(all))
	}
}

func TestSortByScoreTieBreaks(t *testing.T) {
	doc, _ := build()
	deep := doc.Root.Children[0].Children[0] // level 3
	shallow := doc.Root.Children[0]          // level 2
	rs := []Result{{Node: shallow, Score: 1}, {Node: deep, Score: 1}}
	SortByScore(rs)
	if rs[0].Node != deep {
		t.Error("equal scores must order deeper level first")
	}
}
