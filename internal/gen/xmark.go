package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// XMark generates the synthetic auction-site corpus after the XMark
// benchmark schema: regions with nested item descriptions, people with
// profiles, and open/closed auctions with annotations. The tree is deeper
// and more irregular than DBLP (descriptions nest parlist/listitem chains),
// which is the property that distinguishes the two corpora in the paper's
// evaluation. scale 1.0 yields roughly 60k element nodes.
func XMark(scale float64, seed int64) *Dataset {
	if scale <= 0 {
		scale = 1.0
	}
	rng := rand.New(rand.NewSource(seed))
	topics := 6
	vocabSize := max(500, int(20000*scale))
	tg := newTextGen(rng, vocabSize, topics)

	items := max(20, int(4000*scale))
	people := max(10, int(2500*scale))
	openAuctions := max(10, int(1200*scale))
	closedAuctions := max(10, int(1000*scale))
	regions := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

	b := xmltree.NewBuilder().Open("site")

	// description emits the nested free-text structure XMark is known for.
	description := func(topic, depth int) {
		b.Open("description")
		b.Open("text").Text(tg.words(4+rng.Intn(8), topic, 0.4)).Close()
		if depth > 0 && rng.Intn(3) == 0 {
			b.Open("parlist")
			for i := 0; i < 1+rng.Intn(3); i++ {
				b.Open("listitem")
				b.Open("text").Text(tg.words(3+rng.Intn(5), topic, 0.4)).Close()
				b.Close()
			}
			b.Close()
		}
		b.Close()
	}

	b.Open("regions")
	for ri, region := range regions {
		b.Open(region)
		n := items / len(regions)
		for i := 0; i < n; i++ {
			b.Open("item")
			b.Leaf("location", region)
			b.Leaf("name", tg.words(2+rng.Intn(3), ri, 0.5))
			description(ri, 1)
			if rng.Intn(2) == 0 {
				b.Open("mailbox")
				for m := 0; m < 1+rng.Intn(2); m++ {
					b.Open("mail")
					b.Leaf("from", fmt.Sprintf("person%d", rng.Intn(people)))
					b.Open("text").Text(tg.words(3+rng.Intn(6), ri, 0.3)).Close()
					b.Close()
				}
				b.Close()
			}
			b.Close()
		}
		b.Close()
	}
	b.Close()

	b.Open("categories")
	for c := 0; c < max(4, items/100); c++ {
		b.Open("category")
		b.Leaf("name", tg.words(2, c%topics, 0.7))
		description(c%topics, 0)
		b.Close()
	}
	b.Close()

	b.Open("people")
	for p := 0; p < people; p++ {
		b.Open("person")
		b.Leaf("name", fmt.Sprintf("person%d", p))
		b.Leaf("emailaddress", fmt.Sprintf("mailto%d", p))
		if rng.Intn(2) == 0 {
			b.Open("profile")
			b.Leaf("interest", tg.words(1+rng.Intn(3), rng.Intn(topics), 0.6))
			if rng.Intn(3) == 0 {
				b.Leaf("education", tg.words(2, rng.Intn(topics), 0.2))
			}
			b.Close()
		}
		b.Close()
	}
	b.Close()

	b.Open("open_auctions")
	for a := 0; a < openAuctions; a++ {
		topic := rng.Intn(topics)
		b.Open("open_auction")
		b.Leaf("initial", fmt.Sprintf("amount%d", rng.Intn(1000)))
		for bid := 0; bid < rng.Intn(4); bid++ {
			b.Open("bidder")
			b.Leaf("personref", fmt.Sprintf("person%d", rng.Intn(people)))
			b.Leaf("increase", fmt.Sprintf("amount%d", rng.Intn(50)))
			b.Close()
		}
		b.Open("annotation")
		description(topic, 1)
		b.Close()
		b.Close()
	}
	b.Close()

	b.Open("closed_auctions")
	for a := 0; a < closedAuctions; a++ {
		topic := rng.Intn(topics)
		b.Open("closed_auction")
		b.Leaf("buyer", fmt.Sprintf("person%d", rng.Intn(people)))
		b.Leaf("price", fmt.Sprintf("amount%d", rng.Intn(1000)))
		b.Open("annotation")
		description(topic, 1)
		b.Close()
		b.Close()
	}
	b.Close()

	doc := b.Close().Doc()

	highDF := max(16, int(6000*scale))
	ds := &Dataset{
		Name:       "xmark",
		Doc:        doc,
		HighDF:     highDF,
		Bands:      map[int][]string{},
		BandValues: bandsFor(highDF),
	}
	plantBands(rng, ds)
	plantCorrelated(rng, ds, [][]string{
		{"vintage", "camera"},
		{"gold", "coin", "rare"},
		{"shipping", "international"},
	}, max(8, int(700*scale)), max(8, int(1800*scale)), "name", "text")
	ds.sortBands()
	return ds
}
