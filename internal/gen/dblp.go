package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// DBLP generates the synthetic bibliography corpus. As in the paper's
// setup, papers are grouped first by conference/journal and then by year,
// giving the five-level shape dblp/conf/year/paper/field. scale 1.0 yields
// roughly 20k papers (about 1/10 of the frequency scale the paper runs at,
// with every band scaled by the same factor); seed fixes all randomness.
func DBLP(scale float64, seed int64) *Dataset {
	if scale <= 0 {
		scale = 1.0
	}
	rng := rand.New(rand.NewSource(seed))

	confs := max(4, int(40*scale))
	years := max(2, min(20, int(10*scale)+2))
	papersPerYear := max(3, int(float64(20000*scale)/float64(confs*years)))
	topics := max(2, confs/5)
	vocabSize := max(500, int(30000*scale))

	tg := newTextGen(rng, vocabSize, topics)
	authorPool := max(50, int(8000*scale))

	b := xmltree.NewBuilder().Open("dblp")
	papers := 0
	for c := 0; c < confs; c++ {
		topic := c % topics
		b.Open("conf")
		b.Leaf("name", fmt.Sprintf("conf%d %s", c, tg.words(1, topic, 0.9)))
		for y := 0; y < years; y++ {
			b.Open("year")
			b.Text(fmt.Sprintf("y%d", 1990+y))
			n := papersPerYear/2 + rng.Intn(papersPerYear+1)
			for p := 0; p < n; p++ {
				papers++
				b.Open("paper")
				b.Leaf("title", tg.words(5+rng.Intn(6), topic, 0.5))
				na := 1 + rng.Intn(3)
				for a := 0; a < na; a++ {
					b.Leaf("author", fmt.Sprintf("author%d", rng.Intn(authorPool)))
				}
				b.Leaf("pages", fmt.Sprintf("p%d p%d", rng.Intn(600), rng.Intn(600)))
				if rng.Intn(4) == 0 {
					b.Leaf("ee", tg.words(2, topic, 0.3))
				}
				b.Close()
			}
			b.Close()
		}
		b.Close()
	}
	doc := b.Close().Doc()

	highDF := max(16, int(10000*scale))
	ds := &Dataset{
		Name:       "dblp",
		Doc:        doc,
		HighDF:     highDF,
		Bands:      map[int][]string{},
		BandValues: bandsFor(highDF),
	}
	plantBands(rng, ds)
	// The hand-picked correlated queries of Figure 10(b)/(c).
	plantCorrelated(rng, ds, [][]string{
		{"sensor", "network"},
		{"xml", "keyword", "search"},
		{"topk", "rewriting"},
		{"stream", "window", "aggregation"},
		{"index", "btree"},
	}, max(8, int(1200*scale)), max(8, int(3000*scale)), "title")
	ds.sortBands()
	return ds
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
