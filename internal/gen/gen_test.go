package gen

import (
	"testing"

	"repro/internal/jdewey"
	"repro/internal/occur"
)

func TestDBLPShape(t *testing.T) {
	ds := DBLP(0.02, 1)
	if ds.Doc.Root.Tag != "dblp" {
		t.Fatalf("root = %q", ds.Doc.Root.Tag)
	}
	if ds.Doc.Depth != 5 {
		t.Fatalf("depth = %d, want 5 (dblp/conf/year/paper/field)", ds.Doc.Depth)
	}
	// Every paper sits under a year under a conf.
	papers := 0
	for _, n := range ds.Doc.Nodes {
		if n.Tag == "paper" {
			papers++
			if n.Parent.Tag != "year" || n.Parent.Parent.Tag != "conf" {
				t.Fatalf("paper at %v misplaced under %s/%s", n.Dewey, n.Parent.Parent.Tag, n.Parent.Tag)
			}
		}
	}
	if papers < 50 {
		t.Fatalf("only %d papers at scale 0.02", papers)
	}
}

func TestXMarkShape(t *testing.T) {
	ds := XMark(0.02, 1)
	if ds.Doc.Root.Tag != "site" {
		t.Fatalf("root = %q", ds.Doc.Root.Tag)
	}
	if ds.Doc.Depth < 6 {
		t.Fatalf("depth = %d, want deep irregular tree", ds.Doc.Depth)
	}
	tags := map[string]int{}
	for _, n := range ds.Doc.Nodes {
		tags[n.Tag]++
	}
	for _, tag := range []string{"item", "person", "open_auction", "closed_auction", "parlist"} {
		if tags[tag] == 0 {
			t.Errorf("no %q elements generated", tag)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := DBLP(0.02, 7)
	b := DBLP(0.02, 7)
	if a.Doc.Len() != b.Doc.Len() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.Doc.Len(), b.Doc.Len())
	}
	for i := range a.Doc.Nodes {
		if a.Doc.Nodes[i].Tag != b.Doc.Nodes[i].Tag || a.Doc.Nodes[i].Text != b.Doc.Nodes[i].Text {
			t.Fatalf("node %d differs between same-seed runs", i)
		}
	}
	c := DBLP(0.02, 8)
	if c.Doc.Len() == a.Doc.Len() {
		same := true
		for i := range a.Doc.Nodes {
			if a.Doc.Nodes[i].Text != c.Doc.Nodes[i].Text {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical corpora")
		}
	}
}

func TestBandFrequenciesExact(t *testing.T) {
	for _, ds := range []*Dataset{DBLP(0.02, 3), XMark(0.02, 3)} {
		m := occur.Extract(ds.Doc)
		for df, terms := range ds.Bands {
			if len(terms) != termsPerBand {
				t.Errorf("%s band %d has %d terms", ds.Name, df, len(terms))
			}
			for _, term := range terms {
				if got := m.DocFreq(term); got != df {
					t.Errorf("%s term %q df = %d, want %d", ds.Name, term, got, df)
				}
			}
		}
		for _, term := range ds.HighTerms {
			if got := m.DocFreq(term); got != ds.HighDF {
				t.Errorf("%s high term %q df = %d, want %d", ds.Name, term, got, ds.HighDF)
			}
		}
		// Bands ascend and stay below the high frequency.
		for i := 1; i < len(ds.BandValues); i++ {
			if ds.BandValues[i-1] >= ds.BandValues[i] {
				t.Errorf("%s bands not ascending: %v", ds.Name, ds.BandValues)
			}
		}
		if len(ds.BandValues) > 0 && ds.BandValues[len(ds.BandValues)-1] > ds.HighDF {
			t.Errorf("%s top band exceeds high frequency", ds.Name)
		}
	}
}

func TestCorrelatedQueriesCooccur(t *testing.T) {
	ds := DBLP(0.02, 3)
	m := occur.Extract(ds.Doc)
	if len(ds.Correlated) == 0 {
		t.Fatal("no correlated queries")
	}
	for _, q := range ds.Correlated {
		// Every term indexed, and co-occurrence high: count text nodes
		// containing all terms of the query.
		perNode := map[int]int{}
		for _, term := range q {
			if m.DocFreq(term) == 0 {
				t.Fatalf("correlated term %q unindexed", term)
			}
			for _, o := range m.Terms[term] {
				perNode[o.Node.Ord]++
			}
		}
		co := 0
		for _, c := range perNode {
			if c >= len(q) {
				co++
			}
		}
		if co < 5 {
			t.Errorf("query %v co-occurs in only %d nodes", q, co)
		}
	}
}

func TestJDeweyAssignableAtScale(t *testing.T) {
	ds := DBLP(0.05, 4)
	jdewey.Assign(ds.Doc, 0)
	if err := jdewey.Check(ds.Doc); err != nil {
		t.Fatal(err)
	}
}
