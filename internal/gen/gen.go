// Package gen builds the synthetic datasets that stand in for the paper's
// corpora (real DBLP, 496 MB, regrouped by conference then year; and XMark
// at factor 1.0, 113 MB). Neither corpus ships with this repository, so the
// generators reproduce the structural and statistical properties the
// algorithms are sensitive to:
//
//   - the DBLP shape dblp/conf/year/paper/{title,author,...} with
//     per-conference topic mixtures, so keyword correlation is bound to
//     context (the Section III-C motivation for dynamic join selection);
//   - the deeper, more irregular XMark auction-site shape;
//   - a Zipfian vocabulary, plus terms planted at exact document
//     frequencies so the Figure 9/10 frequency bands exist at any scale;
//   - hand-picked correlated queries ({sensor, network}-style) planted with
//     high co-occurrence for the Figure 10(b)/(c) experiments.
//
// Everything is deterministic given (scale, seed).
package gen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/xmltree"
)

// Dataset is one generated corpus plus the experiment metadata derived
// from it.
type Dataset struct {
	Name string
	Doc  *xmltree.Document

	// HighDF is the fixed "high frequency" of the evaluation (the paper's
	// 100k, linearly scaled).
	HighDF int
	// Bands maps each target low-frequency band to the terms planted at
	// exactly that document frequency.
	Bands map[int][]string
	// BandValues lists the band keys ascending (excluding HighDF).
	BandValues []int
	// HighTerms are planted at exactly HighDF.
	HighTerms []string
	// Correlated holds the hand-picked correlated queries of Figure
	// 10(b)/(c); every term of a correlated query co-occurs with the
	// others in many tight subtrees.
	Correlated [][]string
}

// plantBands appends band terms to randomly chosen text-bearing nodes so
// that each term's document frequency is exactly its band value (clamped to
// the number of available nodes, which the returned band keys reflect).
const termsPerBand = 8

// textNodes returns the nodes carrying direct text, the hosts for planted
// terms.
func textNodes(doc *xmltree.Document) []*xmltree.Node {
	var out []*xmltree.Node
	for _, n := range doc.Nodes {
		if n.Text != "" {
			out = append(out, n)
		}
	}
	return out
}

func plantTerm(rng *rand.Rand, hosts []*xmltree.Node, term string, df int) int {
	if df > len(hosts) {
		df = len(hosts)
	}
	perm := rng.Perm(len(hosts))
	for _, hi := range perm[:df] {
		hosts[hi].Text += " " + term
	}
	return df
}

func plantBands(rng *rand.Rand, ds *Dataset) {
	hosts := textNodes(ds.Doc)
	seen := map[int]bool{}
	for _, df := range ds.BandValues {
		if seen[df] {
			continue
		}
		seen[df] = true
		for t := 0; t < termsPerBand; t++ {
			name := fmt.Sprintf("band%dx%d", df, t)
			plantTerm(rng, hosts, name, df)
			ds.Bands[df] = append(ds.Bands[df], name)
		}
	}
	for t := 0; t < termsPerBand; t++ {
		name := fmt.Sprintf("high%dx%d", ds.HighDF, t)
		actual := plantTerm(rng, hosts, name, ds.HighDF)
		if actual < ds.HighDF {
			ds.HighDF = actual
		}
		ds.HighTerms = append(ds.HighTerms, name)
	}
}

// plantCorrelated plants each query's terms together in tight subtrees
// (co-occurring in the same text node, with term frequency 2 so genuinely
// relevant nodes outscore stray co-occurrences, as in real corpora) plus
// extra solo occurrences so the terms have realistic marginal frequencies.
// When hostTags is non-empty, co-occurrences are confined to elements with
// those tags (titles, descriptions, ...), keeping the planted topics in
// content-bearing fields.
func plantCorrelated(rng *rand.Rand, ds *Dataset, queries [][]string, together, solo int, hostTags ...string) {
	hosts := textNodes(ds.Doc)
	coHosts := hosts
	if len(hostTags) > 0 {
		tags := map[string]bool{}
		for _, tag := range hostTags {
			tags[tag] = true
		}
		coHosts = nil
		for _, n := range hosts {
			if tags[n.Tag] {
				coHosts = append(coHosts, n)
			}
		}
		if len(coHosts) == 0 {
			coHosts = hosts
		}
	}
	for _, q := range queries {
		phrase := strings.Join(q, " ")
		perm := rng.Perm(len(coHosts))
		n := together
		if n > len(perm) {
			n = len(perm)
		}
		for _, hi := range perm[:n] {
			// Term frequency 2..4, spread as in real corpora, so the most
			// relevant co-occurrences stand out from the stray ones.
			reps := 2 + rng.Intn(3)
			for r := 0; r < reps; r++ {
				coHosts[hi].Text += " " + phrase
			}
		}
		for _, term := range q {
			plantTerm(rng, hosts, term, solo)
		}
		ds.Correlated = append(ds.Correlated, q)
	}
}

// bandsFor derives the band ladder from the scaled high frequency,
// mirroring the paper's 10 / 100 / 1k / 10k lows under a 100k high.
func bandsFor(highDF int) []int {
	var bands []int
	for div := 1000; div >= 1; div /= 10 {
		b := highDF / div
		if b < 2 {
			b = 2
		}
		if len(bands) == 0 || b > bands[len(bands)-1] {
			bands = append(bands, b)
		}
	}
	return bands
}

// zipfText draws n words from a Zipf-distributed vocabulary, biased toward
// a topic-specific sub-vocabulary with probability topicBias.
type textGen struct {
	rng       *rand.Rand
	zipf      *rand.Zipf
	vocabSize int
	topics    int
}

func newTextGen(rng *rand.Rand, vocabSize, topics int) *textGen {
	return &textGen{
		rng:       rng,
		zipf:      rand.NewZipf(rng, 1.4, 4, uint64(vocabSize-1)),
		vocabSize: vocabSize,
		topics:    topics,
	}
}

func (g *textGen) words(n, topic int, topicBias float64) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if topic >= 0 && g.rng.Float64() < topicBias {
			// Topic vocabulary: a contiguous slice of the word space per
			// topic, so different contexts concentrate on different terms
			// (the Section III-D "word distribution is biased in different
			// contexts" property the RLE compression exploits).
			width := g.vocabSize / (g.topics * 2)
			w := topic*width + int(g.zipf.Uint64())%width
			fmt.Fprintf(&sb, "t%dw%d", topic, w)
		} else {
			fmt.Fprintf(&sb, "w%d", g.zipf.Uint64())
		}
	}
	return sb.String()
}

// sortBands finalizes the metadata ordering.
func (ds *Dataset) sortBands() {
	sort.Ints(ds.BandValues)
	for _, ts := range ds.Bands {
		sort.Strings(ts)
	}
}
