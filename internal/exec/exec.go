// Package exec is the planner/executor layer every query funnels
// through: an engine registry describing each evaluator's capabilities
// and cost model, a cost-based planner that picks an engine from lexicon
// statistics (the paper's Section III-C decisions lifted to the query
// level), and a bounded plan cache keyed on the query shape and the
// snapshot generation so hot repeated queries skip statistics lookup and
// planning entirely.
//
// The package is generic over the snapshot type S and the result type R
// of the hosting facade, so the registry's Run closures are fully typed
// while the planning core (Plan, PlanCache, the cost heuristics) stays
// type-free and unit-testable on synthetic statistics alone.
package exec

import (
	"context"

	"repro/internal/budget"
	"repro/internal/obs"
)

// Capability describes which evaluation modes an engine serves.
type Capability uint8

const (
	// CapComplete: the engine evaluates the complete ranked result set.
	CapComplete Capability = 1 << iota
	// CapTopK: the engine answers top-K queries (natively, or by a
	// complete evaluation truncated to K).
	CapTopK
	// CapStream: the engine delivers top-K results incrementally as each
	// is proven safe ("output without blocking").
	CapStream
	// CapPartial: when a deadline or budget aborts the evaluation, the
	// engine returns the results accumulated so far together with an
	// upper bound on the score of any result it has not produced
	// (RunMeta.UnseenBound), letting the facade certify which partial
	// results are guaranteed members of the true answer.
	CapPartial
)

// Query is the resolved query the planner and the Run closures work
// from: tokenization and option defaulting have already happened.
type Query struct {
	Keywords  []string
	Semantics int     // the facade's Semantics value (0 = ELCA, 1 = SLCA)
	K         int     // 0 for a complete evaluation
	Decay     float64 // resolved damping factor (never 0)
	// Budget, when non-nil, bounds the query's resource consumption: the
	// storage layer charges decoded list bytes, the score-ordered engines
	// charge pulled candidate rows. A trip aborts the evaluation with an
	// error matching budget.ErrExceeded.
	Budget *budget.B
	// AllowPartial asks a CapPartial engine to include its uncertified
	// buffered candidates in the returned results when a deadline or
	// budget aborts the run, rather than returning only the proven ones.
	AllowPartial bool
}

// RunMeta is the per-execution metadata a Run closure reports alongside
// its results.
type RunMeta struct {
	// Partial is set when the evaluation was aborted (deadline,
	// cancellation, or budget trip) before the answer was complete.
	Partial bool
	// UnseenBound, valid when Partial is set, is an upper bound on the
	// score of any result the engine did not return: a returned result
	// with Score >= UnseenBound is guaranteed to belong to the true
	// answer in its returned rank position. Engines that cannot bound
	// their unseen results report +Inf (nothing is certified).
	UnseenBound float64
}

// ListStat is one keyword's lexicon statistics, read without decoding
// the inverted list itself.
type ListStat struct {
	Keyword string `json:"keyword"`
	Rows    int    `json:"rows"`
}

// Stats is the planner's input: per-keyword row counts plus the document
// shape constants that scale the cost estimates.
type Stats struct {
	Lists []ListStat
	Nodes int // indexed element count
	Depth int // document tree depth
}

// Engine is one registered evaluator: its identity, what it can serve,
// its metrics slot, its cost estimate, and the closures that run it over
// a pinned snapshot. Run receives the actual K of the query (which may
// differ from the bucketed K a cached plan was costed with).
type Engine[S, R any] struct {
	Name string
	// Algo is the facade's Algorithm value this engine serves explicitly.
	// Two engines may share an Algo with disjoint capabilities (the
	// complete join and the top-K star join both serve AlgoJoin).
	Algo int
	Caps Capability
	Obs  obs.Engine
	Cost func(q Query, st Stats) float64
	Run  func(ctx context.Context, snap S, q Query, tr *obs.Trace) ([]R, RunMeta, error)
	// Stream is set only on CapStream engines. Streamed results are
	// always proven safe before delivery; a partial abort ends the stream
	// early and reports itself through the returned RunMeta.
	Stream func(ctx context.Context, snap S, q Query, tr *obs.Trace, emit func(R) bool) (int, RunMeta, error)
}

// Registry holds the registered engines in registration order (which
// doubles as the planner's tie-break order).
type Registry[S, R any] struct {
	engines []*Engine[S, R]
	byName  map[string]*Engine[S, R]
}

// NewRegistry assembles a registry. Names must be unique.
func NewRegistry[S, R any](engines ...*Engine[S, R]) *Registry[S, R] {
	r := &Registry[S, R]{engines: engines, byName: make(map[string]*Engine[S, R], len(engines))}
	for _, e := range engines {
		if _, dup := r.byName[e.Name]; dup {
			panic("exec: duplicate engine name " + e.Name)
		}
		r.byName[e.Name] = e
	}
	return r
}

// Engines returns the registered engines in registration order (shared
// slice; do not mutate).
func (r *Registry[S, R]) Engines() []*Engine[S, R] { return r.engines }

// ByName returns the engine registered under name, or nil.
func (r *Registry[S, R]) ByName(name string) *Engine[S, R] { return r.byName[name] }

// ForAlgo returns the engine serving the algorithm in the given mode
// (top-K or complete), or nil when no registered engine can: a top-K-only
// algorithm asked for a complete evaluation, or an unknown algorithm.
func (r *Registry[S, R]) ForAlgo(algo int, topK bool) *Engine[S, R] {
	want := CapComplete
	if topK {
		want = CapTopK
	}
	for _, e := range r.engines {
		if e.Algo == algo && e.Caps&want != 0 {
			return e
		}
	}
	return nil
}

// HasAlgo reports whether any engine is registered for the algorithm,
// regardless of capability.
func (r *Registry[S, R]) HasAlgo(algo int) bool {
	for _, e := range r.engines {
		if e.Algo == algo {
			return true
		}
	}
	return false
}

// ForStream returns the first streaming-capable engine, or nil.
func (r *Registry[S, R]) ForStream() *Engine[S, R] {
	for _, e := range r.engines {
		if e.Caps&CapStream != 0 {
			return e
		}
	}
	return nil
}

// ObsFor returns the metrics slot attributed to the algorithm in the
// given mode. A mode mismatch (e.g. a top-K-only engine asked for a
// complete evaluation) still attributes to the engine's own slot, so
// rejected queries are counted where the caller aimed them; unknown
// algorithms fall back to def.
func (r *Registry[S, R]) ObsFor(algo int, topK bool, def obs.Engine) obs.Engine {
	if e := r.ForAlgo(algo, topK); e != nil {
		return e.Obs
	}
	for _, e := range r.engines {
		if e.Algo == algo {
			return e.Obs
		}
	}
	return def
}

// Compare is the canonical result ordering shared by every engine and
// the facade: higher score first; at equal score the deeper (more
// specific) node first. It returns 0 on a full tie, letting each caller
// break the tie by document order over its own identifier type — the one
// piece of the comparator that is necessarily type-specific.
func Compare(scoreI, scoreJ float64, levelI, levelJ int) int {
	switch {
	case scoreI > scoreJ:
		return -1
	case scoreI < scoreJ:
		return 1
	}
	switch {
	case levelI > levelJ:
		return -1
	case levelI < levelJ:
		return 1
	}
	return 0
}
