package exec

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// EngineCost is one engine's estimated cost for a planned query, in
// abstract row-operation units (comparable only within one plan).
type EngineCost struct {
	Engine string  `json:"engine"`
	Cost   float64 `json:"cost"`
}

// Plan is a planned query: the resolved keywords and their statistics,
// the engine the planner chose, and why. Plans are immutable once built
// and safe to share between goroutines (the plan cache hands the same
// *Plan to every hit).
type Plan struct {
	Keywords  []string     `json:"keywords"`
	Semantics int          `json:"semantics"`
	K         int          `json:"k"` // the k-bucket the plan was costed for (0 = complete)
	Lists     []ListStat   `json:"lists"`
	Engine    string       `json:"engine"`
	Reason    string       `json:"reason"`
	Costs     []EngineCost `json:"costs"`
	// Generation is the snapshot generation the statistics were read from;
	// the cache drops the plan when a mutation publishes a new generation.
	Generation int64 `json:"generation"`
	// Auto records that the engine was chosen by the cost model rather
	// than an explicit SearchOptions.Algorithm.
	Auto bool `json:"auto"`
}

// Plan costs every engine capable of the query's mode and picks the
// cheapest (registration order breaks ties). It returns nil only when no
// registered engine can serve the mode at all.
func (r *Registry[S, R]) Plan(q Query, st Stats, gen int64) *Plan {
	want := CapComplete
	if q.K > 0 {
		want = CapTopK
	}
	p := &Plan{
		Keywords:   q.Keywords,
		Semantics:  q.Semantics,
		K:          q.K,
		Lists:      st.Lists,
		Generation: gen,
		Auto:       true,
	}
	var chosen *Engine[S, R]
	best := math.Inf(1)
	for _, e := range r.engines {
		if e.Caps&want == 0 {
			continue
		}
		c := math.Inf(1)
		if e.Cost != nil {
			c = e.Cost(q, st)
		}
		p.Costs = append(p.Costs, EngineCost{Engine: e.Name, Cost: c})
		if chosen == nil || c < best {
			chosen, best = e, c
		}
	}
	if chosen == nil {
		return nil
	}
	p.Engine = chosen.Name
	minRows, totalRows := rowBounds(st)
	p.Reason = fmt.Sprintf("cost %.4g over %d candidate(s); rows min=%d total=%d est-results=%d",
		best, len(p.Costs), minRows, totalRows, int(estResults(st)))
	return p
}

// TrivialPlan records an explicitly selected engine without costing the
// alternatives; Reason documents that no choice was made.
func TrivialPlan[S, R any](e *Engine[S, R], q Query, st Stats, gen int64) *Plan {
	return &Plan{
		Keywords:   q.Keywords,
		Semantics:  q.Semantics,
		K:          q.K,
		Lists:      st.Lists,
		Engine:     e.Name,
		Reason:     "explicitly selected",
		Generation: gen,
	}
}

// --- cost model ---
//
// The heuristics lift the paper's Section III-C per-level decisions
// (merge joins scan both lists, index joins probe the longer list once
// per row of the shorter) and the Section V crossovers (the star join
// wins when the expected result set is large relative to K — correlated
// keywords — while sort-after-complete wins on small result sets) to a
// whole-query estimate over the lexicon row counts. Costs are abstract
// row operations: only their order matters, and only within one plan.

// rowBounds returns the minimum and total list lengths.
func rowBounds(st Stats) (min, total int) {
	min = math.MaxInt
	for _, l := range st.Lists {
		if l.Rows < min {
			min = l.Rows
		}
		total += l.Rows
	}
	if min == math.MaxInt {
		min = 0
	}
	return min, total
}

// lg is a probe-cost logarithm, safe at zero.
func lg(n int) float64 { return math.Log2(float64(n) + 2) }

// estResults estimates the result cardinality under independence: each
// of the Nodes elements holds keyword i with probability rows_i/Nodes.
func estResults(st Stats) float64 {
	if st.Nodes <= 0 || len(st.Lists) == 0 {
		return 0
	}
	est := float64(st.Nodes)
	for _, l := range st.Lists {
		est *= float64(l.Rows) / float64(st.Nodes)
	}
	return est
}

// perLevel scales a single-pass cost by the number of join levels the
// bottom-up evaluation walks.
func perLevel(st Stats) float64 {
	if st.Depth > 1 {
		return float64(st.Depth - 1)
	}
	return 1
}

// CostJoin estimates the complete join-based evaluation: per level, the
// dynamic optimizer picks the cheaper of a merge join (scan both lists)
// and an index join (probe the longer list per row of the shorter), so
// the whole-query cost is the cheaper strategy's, plus a per-level
// setup overhead.
func CostJoin(q Query, st Stats) float64 {
	min, total := rowBounds(st)
	merge := float64(total)
	probe := float64(min) * float64(len(st.Lists)) * lg(total)
	return math.Min(merge, probe) + perLevel(st)*32
}

// CostStack estimates the stack-based baseline: one document-order merge
// of every Dewey list with per-row stack maintenance proportional to the
// tree depth.
func CostStack(q Query, st Stats) float64 {
	_, total := rowBounds(st)
	return float64(total) * (1 + 0.25*float64(st.Depth))
}

// CostIxLookup estimates the index-lookup baseline: the shortest list
// drives binary-search probes into each longer list. It beats the join
// when the shortest list is tiny (high frequency skew) because it pays
// no per-level setup.
func CostIxLookup(q Query, st Stats) float64 {
	min, total := rowBounds(st)
	return float64(min)*float64(len(st.Lists))*lg(total)*1.5 + 8
}

// CostTopKJoin estimates the top-K star join: the score-ordered cursors
// pull rows until the unseen-result threshold proves K results safe.
// The expected pulled fraction shrinks as the result set grows relative
// to K (correlated keywords terminate early); an empty expected result
// set means the threshold never proves anything and the scan completes.
func CostTopKJoin(q Query, st Stats) float64 {
	_, total := rowBounds(st)
	est := estResults(st)
	coverage := 1.0
	if est > 0 {
		coverage = math.Min(1, float64(q.K)/est)
	}
	return coverage*float64(total) + float64(q.K)*float64(len(st.Lists))*lg(total) + 16
}

// CostRDIL estimates the RDIL baseline: classic TA with random-access
// lookups per pulled row, an order of magnitude per-row overhead over
// the star join's sorted cursors.
func CostRDIL(q Query, st Stats) float64 {
	return CostTopKJoin(q, st)*4 + float64(q.K)*lg(rowTotal(st))*8 + 64
}

// CostHybrid estimates the Section V-D hybrid: it runs whichever of the
// star join and the complete join its cardinality estimate favors, so
// its cost tracks the better of the two plus the estimation overhead —
// a safe choice, never the predicted-cheapest one.
func CostHybrid(q Query, st Stats) float64 {
	complete := CostJoin(q, st) + float64(q.K)
	return math.Min(CostTopKJoin(q, st), complete)*1.1 + 24
}

func rowTotal(st Stats) int {
	_, total := rowBounds(st)
	return total
}

// KBucket buckets k for cache keying so nearby k values share one plan:
// 0 stays 0 (complete evaluation); positive k rounds up to the next
// power of two, saturating well below overflow.
func KBucket(k int) int {
	if k <= 0 {
		return 0
	}
	b := 1
	for b < k && b < 1<<30 {
		b <<= 1
	}
	return b
}

// CacheKey builds the plan-cache key for a resolved query: the keywords
// (order-sensitive, NUL-separated), semantics, k-bucket, and snapshot
// generation.
func CacheKey(keywords []string, semantics, kBucket int, gen int64) string {
	var b strings.Builder
	for _, w := range keywords {
		b.WriteString(w)
		b.WriteByte(0)
	}
	b.WriteString(strconv.Itoa(semantics))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(kBucket))
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(gen, 10))
	return b.String()
}
