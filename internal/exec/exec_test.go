package exec

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/obs"
)

// testRegistry mirrors the shape of the facade's real registry: a top-K
// star join and a complete join sharing one Algo (registration order
// resolves explicit top-K requests to the star join), plus a complete
// baseline and a top-K-only baseline.
func testRegistry() *Registry[int, int] {
	return NewRegistry(
		&Engine[int, int]{Name: "topk", Algo: 0, Caps: CapTopK | CapStream, Obs: obs.EngineTopK, Cost: CostTopKJoin},
		&Engine[int, int]{Name: "join", Algo: 0, Caps: CapComplete | CapTopK, Obs: obs.EngineJoin, Cost: CostJoin},
		&Engine[int, int]{Name: "stack", Algo: 1, Caps: CapComplete | CapTopK, Obs: obs.EngineStack, Cost: CostStack},
		&Engine[int, int]{Name: "rdil", Algo: 2, Caps: CapTopK, Obs: obs.EngineRDIL, Cost: CostRDIL},
	)
}

func stats(depth, nodes int, rows ...int) Stats {
	st := Stats{Nodes: nodes, Depth: depth}
	for i, r := range rows {
		st.Lists = append(st.Lists, ListStat{Keyword: fmt.Sprintf("kw%d", i), Rows: r})
	}
	return st
}

func TestRegistryDispatch(t *testing.T) {
	r := testRegistry()
	// Shared Algo 0: complete mode resolves past the top-K-only star join
	// to the complete join; top-K mode stops at the star join (first
	// registered capability match).
	if e := r.ForAlgo(0, false); e == nil || e.Name != "join" {
		t.Fatalf("ForAlgo(0, complete) = %v, want join", e)
	}
	if e := r.ForAlgo(0, true); e == nil || e.Name != "topk" {
		t.Fatalf("ForAlgo(0, topK) = %v, want topk", e)
	}
	// A top-K-only algorithm has no complete engine but is still known.
	if e := r.ForAlgo(2, false); e != nil {
		t.Fatalf("ForAlgo(2, complete) = %v, want nil", e)
	}
	if !r.HasAlgo(2) {
		t.Fatal("HasAlgo(2) = false")
	}
	if r.HasAlgo(99) {
		t.Fatal("HasAlgo(99) = true")
	}
	if e := r.ForStream(); e == nil || e.Name != "topk" {
		t.Fatalf("ForStream = %v, want topk", e)
	}
	if e := r.ByName("stack"); e == nil || e.Algo != 1 {
		t.Fatalf("ByName(stack) = %v", e)
	}
	if e := r.ByName("nope"); e != nil {
		t.Fatalf("ByName(nope) = %v, want nil", e)
	}
}

func TestRegistryObsFor(t *testing.T) {
	r := testRegistry()
	cases := []struct {
		algo int
		topK bool
		want obs.Engine
	}{
		{0, false, obs.EngineJoin},
		{0, true, obs.EngineTopK},
		{2, true, obs.EngineRDIL},
		// Mode mismatch still attributes to the algorithm's own slot: a
		// rejected complete query against a top-K-only engine counts where
		// the caller aimed it.
		{2, false, obs.EngineRDIL},
		// Unknown algorithm falls back to the default.
		{99, false, obs.EngineJoin},
	}
	for _, c := range cases {
		if got := r.ObsFor(c.algo, c.topK, obs.EngineJoin); got != c.want {
			t.Errorf("ObsFor(%d, %v) = %v, want %v", c.algo, c.topK, got, c.want)
		}
	}
}

func TestRegistryDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	NewRegistry(
		&Engine[int, int]{Name: "dup"},
		&Engine[int, int]{Name: "dup"},
	)
}

func TestPlanPicksCheapest(t *testing.T) {
	r := testRegistry()
	// Complete mode: only join and stack are candidates.
	st := stats(4, 1000, 50, 900)
	p := r.Plan(Query{Keywords: []string{"a", "b"}}, st, 7)
	if p == nil {
		t.Fatal("Plan returned nil")
	}
	if !p.Auto || p.Generation != 7 {
		t.Fatalf("plan meta = auto:%v gen:%d", p.Auto, p.Generation)
	}
	if len(p.Costs) != 2 {
		t.Fatalf("complete plan costed %d engines, want 2 (join, stack)", len(p.Costs))
	}
	best := math.Inf(1)
	var cheapest string
	for _, c := range p.Costs {
		if c.Cost < best {
			best, cheapest = c.Cost, c.Engine
		}
	}
	if p.Engine != cheapest {
		t.Fatalf("plan chose %s, cheapest is %s (%v)", p.Engine, cheapest, p.Costs)
	}
	if p.Reason == "" {
		t.Fatal("plan has no reason")
	}

	// Top-K mode admits every engine with CapTopK.
	p = r.Plan(Query{Keywords: []string{"a", "b"}, K: 10}, st, 7)
	if p == nil || len(p.Costs) != 4 {
		t.Fatalf("top-K plan = %+v, want 4 candidates", p)
	}
}

func TestPlanNoCapableEngine(t *testing.T) {
	r := NewRegistry(&Engine[int, int]{Name: "only-topk", Caps: CapTopK})
	if p := r.Plan(Query{Keywords: []string{"a"}}, stats(2, 10, 5), 1); p != nil {
		t.Fatalf("Plan over top-K-only registry served complete mode: %+v", p)
	}
}

func TestPlanRegistrationOrderBreaksTies(t *testing.T) {
	flat := func(Query, Stats) float64 { return 1 }
	r := NewRegistry(
		&Engine[int, int]{Name: "first", Caps: CapComplete, Cost: flat},
		&Engine[int, int]{Name: "second", Caps: CapComplete, Cost: flat},
	)
	if p := r.Plan(Query{Keywords: []string{"a"}}, stats(2, 10, 5), 1); p.Engine != "first" {
		t.Fatalf("tie broke to %s, want first", p.Engine)
	}
}

// TestCostModelSkew checks the paper's crossovers, not absolute numbers:
// high frequency skew favors probing (ixlookup-style) costs over full
// scans, and a tiny K over a huge expected result set favors the star
// join over the complete join.
func TestCostModelSkew(t *testing.T) {
	q := Query{Keywords: []string{"rare", "common"}}
	skewed := stats(6, 100000, 3, 80000)
	if probe, scan := CostIxLookup(q, skewed), CostStack(q, skewed); probe >= scan {
		t.Fatalf("skewed lists: probe cost %v >= scan cost %v", probe, scan)
	}
	// Correlated keywords (large expected result set), small K: the star
	// join reads a small prefix; the complete join pays the whole set.
	qk := Query{Keywords: []string{"a", "b"}, K: 10}
	correlated := stats(6, 10000, 8000, 9000)
	if star, complete := CostTopKJoin(qk, correlated), CostJoin(qk, correlated); star >= complete {
		t.Fatalf("correlated top-K: star %v >= complete %v", star, complete)
	}
	// A sparse workload whose expected result set is near zero: the star
	// join's threshold never proves anything, so the complete join with
	// truncation should not lose by much — and RDIL must always cost more
	// than the star join it approximates with random accesses.
	sparse := stats(6, 100000, 4, 5)
	if rd, star := CostRDIL(qk, sparse), CostTopKJoin(qk, sparse); rd <= star {
		t.Fatalf("RDIL %v <= star join %v", rd, star)
	}
}

func TestKBucket(t *testing.T) {
	cases := map[int]int{
		-3: 0, 0: 0, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 10: 16, 16: 16, 17: 32, 1000: 1024,
	}
	for k, want := range cases {
		if got := KBucket(k); got != want {
			t.Errorf("KBucket(%d) = %d, want %d", k, got, want)
		}
	}
	if got := KBucket(math.MaxInt); got != 1<<30 {
		t.Errorf("KBucket(MaxInt) = %d, want saturation at %d", got, 1<<30)
	}
}

func TestCacheKeyDistinguishes(t *testing.T) {
	base := CacheKey([]string{"a", "b"}, 0, 16, 1)
	for name, other := range map[string]string{
		"keyword order": CacheKey([]string{"b", "a"}, 0, 16, 1),
		"semantics":     CacheKey([]string{"a", "b"}, 1, 16, 1),
		"k-bucket":      CacheKey([]string{"a", "b"}, 0, 32, 1),
		"generation":    CacheKey([]string{"a", "b"}, 0, 16, 2),
		// The NUL separator keeps concatenations apart: ["ab"] vs ["a","b"].
		"boundaries": CacheKey([]string{"ab"}, 0, 16, 1),
	} {
		if other == base {
			t.Errorf("%s: key collision %q", name, base)
		}
	}
	if CacheKey([]string{"a", "b"}, 0, 16, 1) != base {
		t.Error("identical inputs produced different keys")
	}
}

func TestPlanCacheLRU(t *testing.T) {
	c := NewPlanCache(2)
	var pc obs.PlannerCounters
	c.SetObs(&pc)
	p1, p2, p3 := &Plan{Engine: "e1", Generation: 1}, &Plan{Engine: "e2", Generation: 1}, &Plan{Engine: "e3", Generation: 1}
	c.Put("k1", p1)
	c.Put("k2", p2)
	if got := c.Get("k1"); got != p1 {
		t.Fatalf("Get(k1) = %v", got)
	}
	// k1 is now most recent; inserting k3 evicts k2.
	c.Put("k3", p3)
	if c.Get("k2") != nil {
		t.Fatal("k2 survived eviction")
	}
	if c.Get("k1") != p1 || c.Get("k3") != p3 {
		t.Fatal("LRU evicted the wrong entry")
	}
	s := pc.Snapshot()
	if s.CacheEvictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.CacheEvictions)
	}
	if s.CacheHits != 3 || s.CacheMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", s.CacheHits, s.CacheMisses)
	}
	if ratio := s.CacheHitRatio; math.Abs(ratio-0.75) > 1e-9 {
		t.Fatalf("hit ratio = %v, want 0.75", ratio)
	}
}

func TestPlanCacheInvalidate(t *testing.T) {
	c := NewPlanCache(8)
	var pc obs.PlannerCounters
	c.SetObs(&pc)
	c.Put("old1", &Plan{Generation: 1})
	c.Put("old2", &Plan{Generation: 1})
	c.Put("cur", &Plan{Generation: 2})
	c.Invalidate(2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after invalidate, want 1", c.Len())
	}
	if c.Get("cur") == nil {
		t.Fatal("current-generation plan was invalidated")
	}
	if n := pc.Snapshot().CacheInvalidations; n != 2 {
		t.Fatalf("invalidations = %d, want 2", n)
	}
}

func TestPlanCacheSetCapacityEvicts(t *testing.T) {
	c := NewPlanCache(8)
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("k%d", i), &Plan{Generation: 1})
	}
	c.SetCapacity(3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d after SetCapacity(3)", c.Len())
	}
	// The three survivors are the most recently used.
	for i := 5; i < 8; i++ {
		if c.Get(fmt.Sprintf("k%d", i)) == nil {
			t.Fatalf("k%d evicted, want retained", i)
		}
	}
}

// TestPlanCacheNilObs: every counter path must be nil-safe — the cache is
// usable before SetObs is called.
func TestPlanCacheNilObs(t *testing.T) {
	c := NewPlanCache(1)
	c.Get("miss")
	c.Put("a", &Plan{Generation: 1})
	c.Get("a")
	c.Put("b", &Plan{Generation: 2}) // evicts a
	c.Invalidate(3)                  // drops b
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(16)
	var pc obs.PlannerCounters
	c.SetObs(&pc)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%40)
				if c.Get(key) == nil {
					c.Put(key, &Plan{Generation: int64(i % 3)})
				}
				if i%97 == 0 {
					c.Invalidate(int64(i % 3))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		si, sj float64
		li, lj int
		want   int
	}{
		{2, 1, 0, 0, -1}, // higher score first
		{1, 2, 5, 0, 1},
		{1, 1, 3, 2, -1}, // deeper node first at equal score
		{1, 1, 2, 3, 1},
		{1, 1, 3, 3, 0}, // full tie: caller breaks by document order
	}
	for _, c := range cases {
		if got := Compare(c.si, c.sj, c.li, c.lj); got != c.want {
			t.Errorf("Compare(%v,%v,%d,%d) = %d, want %d", c.si, c.sj, c.li, c.lj, got, c.want)
		}
	}
}
