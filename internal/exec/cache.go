package exec

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// DefaultPlanCacheCap bounds the plan cache when no capacity is set.
const DefaultPlanCacheCap = 1024

// PlanCache is a bounded LRU of built plans keyed by CacheKey. Because
// the snapshot generation is part of the key, a stale plan can never be
// returned for a mutated index — Invalidate exists to reclaim the dead
// entries eagerly rather than waiting for LRU pressure.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *cacheEntry
	byKey    map[string]*list.Element
	counters *obs.PlannerCounters
}

type cacheEntry struct {
	key  string
	plan *Plan
}

// NewPlanCache builds a cache bounded to capacity entries (<= 0 selects
// DefaultPlanCacheCap).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheCap
	}
	return &PlanCache{capacity: capacity, lru: list.New(), byKey: make(map[string]*list.Element)}
}

// SetObs wires the planner counters; nil disables counting.
func (c *PlanCache) SetObs(pc *obs.PlannerCounters) {
	c.mu.Lock()
	c.counters = pc
	c.mu.Unlock()
}

// Get returns the cached plan for key, or nil, counting the hit or miss.
func (c *PlanCache) Get(key string) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.counters.RecordCacheMiss()
		return nil
	}
	c.lru.MoveToFront(el)
	c.counters.RecordCacheHit()
	return el.Value.(*cacheEntry).plan
}

// Put inserts (or refreshes) the plan under key, evicting from the LRU
// tail past capacity.
func (c *PlanCache) Put(key string, p *Plan) {
	if p == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).plan = p
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, plan: p})
	for c.lru.Len() > c.capacity {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.byKey, tail.Value.(*cacheEntry).key)
		c.counters.RecordCacheEviction()
	}
}

// Len returns the current entry count.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// SetCapacity rebounds the cache, evicting down to the new capacity
// immediately (<= 0 selects DefaultPlanCacheCap).
func (c *PlanCache) SetCapacity(capacity int) {
	if capacity <= 0 {
		capacity = DefaultPlanCacheCap
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	for c.lru.Len() > c.capacity {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.byKey, tail.Value.(*cacheEntry).key)
		c.counters.RecordCacheEviction()
	}
}

// Invalidate drops every plan built against a generation other than
// current. A mutation publish calls it with the new generation, so the
// cache holds only live plans (stale ones could otherwise linger until
// LRU pressure; they can never be returned, because the generation is
// part of the lookup key).
func (c *PlanCache) Invalidate(current int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	dropped := 0
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.plan.Generation != current {
			c.lru.Remove(el)
			delete(c.byKey, e.key)
			dropped++
		}
	}
	if dropped > 0 {
		c.counters.RecordCacheInvalidations(dropped)
	}
}

// Reset drops every entry without counting (test and benchmark support).
func (c *PlanCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	clear(c.byKey)
}
