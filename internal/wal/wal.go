// Package wal implements the write-ahead log of the incremental write
// path. A log file belongs to one committed column generation — the file
// is named "wal.<gen>" beside the generation it extends — and records the
// mutations acknowledged after that generation was committed, so opening
// an index is always "load generation <gen>, replay wal.<gen>".
//
// On-disk format:
//
//	header  "XKWWAL1\n" | uint64 LE base generation
//	record  uint32 LE payload length | uint32 LE CRC32C(payload) | payload
//
// Appends are framed and checksummed per record, and a batch of records
// is written with a single Write followed by a single Sync — the group
// commit that amortizes fsync cost across a mutation batch. Recovery
// scans records in order and stops at the first frame that is torn,
// truncated, or fails its checksum: everything before the damage is the
// acknowledged prefix, everything at and after it is quarantined (counted
// and truncated away, never replayed) — a half-written record was by
// definition never acknowledged.
package wal

import (
	"encoding/binary"
	"fmt"
	"os"

	"repro/internal/colstore"
	"repro/internal/faultinject"
)

// Magic is the log file header magic.
const Magic = "XKWWAL1\n"

// headerSize is the fixed header: magic plus the base generation.
const headerSize = len(Magic) + 8

// frameOverhead is the per-record framing cost (length + CRC32C).
const frameOverhead = 8

// maxRecordSize bounds a single record payload; a frame announcing more
// is treated as corruption rather than an allocation request.
const maxRecordSize = 1 << 28

// Log is an open write-ahead log positioned for appends.
type Log struct {
	path string
	gen  uint64
	f    faultinject.AppendFile
}

// FileName names the log of one base generation: "wal.<gen>".
func FileName(gen uint64) string { return colstore.GenName("wal", gen) }

// header encodes the file header for gen.
func header(gen uint64) []byte {
	buf := make([]byte, 0, headerSize)
	buf = append(buf, Magic...)
	return binary.LittleEndian.AppendUint64(buf, gen)
}

// AppendRecord frames one payload onto buf.
func AppendRecord(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, colstore.Checksum(payload))
	return append(buf, payload...)
}

// Create writes a fresh log for base generation gen — header plus the
// given initial records, fsynced — and returns it open for appends. An
// existing file at path is truncated: creation happens at commit points,
// where the previous log's records are already folded into the base.
// The caller must SyncDir the parent directory before relying on the
// file surviving a crash (CommitGen's directory syncs cover the rotation
// performed at a generation flip).
func Create(fsys faultinject.FS, path string, gen uint64, records [][]byte) (*Log, error) {
	buf := header(gen)
	for _, r := range records {
		buf = AppendRecord(buf, r)
	}
	if err := fsys.WriteFile(path, buf, 0o644); err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", path, err)
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return &Log{path: path, gen: gen, f: f}, nil
}

// RecoverResult is the outcome of scanning a log file.
type RecoverResult struct {
	// Gen is the base generation named in the header.
	Gen uint64
	// Records are the acknowledged payloads, in append order.
	Records [][]byte
	// GoodBytes is the file prefix covering the header and every intact
	// record; bytes past it are quarantined.
	GoodBytes int64
	// QuarantinedBytes counts the torn/corrupt tail dropped by recovery
	// (0 for a clean log).
	QuarantinedBytes int64
}

// Recover scans the log at path without modifying it. It fails only when
// the file is unreadable or its header is damaged (an unidentifiable log
// is corruption the caller must surface, not silently treat as empty);
// record-level damage is not an error — the scan stops there and reports
// the intact prefix.
func Recover(path string) (*RecoverResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize || string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("wal: %s: not a write-ahead log", path)
	}
	res := &RecoverResult{Gen: binary.LittleEndian.Uint64(data[len(Magic):headerSize])}
	off := headerSize
	for {
		if off+frameOverhead > len(data) {
			break // clean end, or a torn frame header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordSize || off+frameOverhead+n > len(data) {
			break // implausible length or torn payload
		}
		payload := data[off+frameOverhead : off+frameOverhead+n]
		if colstore.Checksum(payload) != crc {
			break // bit damage inside the record
		}
		res.Records = append(res.Records, append([]byte(nil), payload...))
		off += frameOverhead + n
	}
	res.GoodBytes = int64(off)
	res.QuarantinedBytes = int64(len(data) - off)
	return res, nil
}

// Open recovers the log at path, truncates any quarantined tail (so new
// appends extend the acknowledged prefix, never bury garbage), and
// returns it open for appends along with the recovery result.
func Open(fsys faultinject.FS, path string) (*Log, *RecoverResult, error) {
	res, err := Recover(path)
	if err != nil {
		return nil, nil, err
	}
	if res.QuarantinedBytes > 0 {
		if err := os.Truncate(path, res.GoodBytes); err != nil {
			return nil, nil, fmt.Errorf("wal: truncate quarantined tail of %s: %w", path, err)
		}
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return &Log{path: path, gen: res.Gen, f: f}, res, nil
}

// Gen is the base generation this log extends.
func (l *Log) Gen() uint64 { return l.gen }

// Path is the log's file path.
func (l *Log) Path() string { return l.path }

// Append frames the payloads, writes them with one Write, and makes them
// durable with one Sync — the acknowledgement point of every mutation in
// the batch. It returns the framed byte count. On error nothing in the
// batch may be treated as acknowledged: the write may be torn mid-batch,
// which the next recovery's record scan quarantines.
func (l *Log) Append(payloads [][]byte) (int64, error) {
	size := 0
	for _, p := range payloads {
		size += frameOverhead + len(p)
	}
	buf := make([]byte, 0, size)
	for _, p := range payloads {
		buf = AppendRecord(buf, p)
	}
	if _, err := l.f.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return 0, fmt.Errorf("wal: fsync: %w", err)
	}
	return int64(len(buf)), nil
}

// Close releases the file handle. Appended records stay durable — every
// Append already synced.
func (l *Log) Close() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
