package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// openLog creates a fresh log with the given initial records and fails the
// test on error.
func openLog(t *testing.T, dir string, gen uint64, records [][]byte) *Log {
	t.Helper()
	l, err := Create(faultinject.OS(), filepath.Join(dir, FileName(gen)), gen, records)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, 7, [][]byte{[]byte("seed")})
	batches := [][][]byte{
		{[]byte("one")},
		{[]byte("two"), []byte("three")},
		{{}}, // empty payloads are legal records
	}
	for _, b := range batches {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Recover(l.Path())
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen != 7 {
		t.Fatalf("recovered gen %d, want 7", res.Gen)
	}
	want := [][]byte{[]byte("seed"), []byte("one"), []byte("two"), []byte("three"), {}}
	if len(res.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(res.Records), len(want))
	}
	for i := range want {
		if !bytes.Equal(res.Records[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, res.Records[i], want[i])
		}
	}
	if res.QuarantinedBytes != 0 {
		t.Fatalf("clean log quarantined %d bytes", res.QuarantinedBytes)
	}
}

// TestTornTailQuarantined truncates the log at every possible byte length
// and asserts recovery always yields an exact prefix of the appended
// records — never a mangled or phantom record.
func TestTornTailQuarantined(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, 1, nil)
	var want [][]byte
	for i := 0; i < 5; i++ {
		p := []byte(fmt.Sprintf("record-%d-%s", i, string(make([]byte, i*3))))
		want = append(want, p)
		if _, err := l.Append([][]byte{p}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	full, err := os.ReadFile(l.Path())
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(Magic) + 8; cut <= len(full); cut++ {
		p := filepath.Join(dir, "torn")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Recover(p)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for i, r := range res.Records {
			if !bytes.Equal(r, want[i]) {
				t.Fatalf("cut %d: record %d = %q, want %q", cut, i, r, want[i])
			}
		}
		if int64(cut)-res.GoodBytes != res.QuarantinedBytes {
			t.Fatalf("cut %d: good %d + quarantined %d != size", cut, res.GoodBytes, res.QuarantinedBytes)
		}
	}
	// A header cut is unidentifiable and must fail loudly.
	p := filepath.Join(dir, "torn")
	if err := os.WriteFile(p, full[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(p); err == nil {
		t.Fatal("torn header recovered silently")
	}
}

// TestBitFlipStopsReplay flips every byte of a record region in turn; the
// damaged record and everything after it must be quarantined, records
// before it replayed intact.
func TestBitFlipStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, 1, nil)
	var want [][]byte
	for i := 0; i < 4; i++ {
		p := []byte(fmt.Sprintf("payload-%d", i))
		want = append(want, p)
		if _, err := l.Append([][]byte{p}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	full, err := os.ReadFile(l.Path())
	if err != nil {
		t.Fatal(err)
	}
	for off := int64(len(Magic) + 8); off < int64(len(full)); off++ {
		p := filepath.Join(dir, "flipped")
		if err := os.WriteFile(p, full, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultinject.FlipByte(p, off, 0x40); err != nil {
			t.Fatal(err)
		}
		res, err := Recover(p)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if len(res.Records) >= len(want) {
			// The length prefix is not covered by the payload CRC; a flip
			// there may reframe the stream, but the CRC check must then
			// reject the reframed payload — recovering MORE records than
			// were written, or any record that is not the byte-exact
			// original, is the corruption bug this test exists to catch.
			if len(res.Records) > len(want) {
				t.Fatalf("offset %d: phantom records: %d > %d", off, len(res.Records), len(want))
			}
		}
		for i, r := range res.Records {
			if !bytes.Equal(r, want[i]) {
				t.Fatalf("offset %d: record %d damaged yet served: %q", off, i, r)
			}
		}
	}
}

// TestCrashAtEveryAppendOp drives appends through a FaultFS crash schedule:
// at every possible crash point, reopening the log must recover exactly the
// batches acknowledged before the crash (later batches may be torn away,
// never half-served).
func TestCrashAtEveryAppendOp(t *testing.T) {
	const batches = 6
	// Size the schedule with a crash-free run.
	probe := faultinject.NewFaultFS(faultinject.OS())
	dir := t.TempDir()
	run := func(fsys faultinject.FS, dir string) (acked int, err error) {
		l, err := Create(fsys, filepath.Join(dir, FileName(3)), 3, nil)
		if err != nil {
			return 0, err
		}
		defer l.Close()
		for i := 0; i < batches; i++ {
			b := [][]byte{[]byte(fmt.Sprintf("a-%d", i)), []byte(fmt.Sprintf("b-%d", i))}
			if _, err := l.Append(b); err != nil {
				return acked, err
			}
			acked++
		}
		return acked, nil
	}
	if _, err := run(probe, dir); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total == 0 {
		t.Fatal("schedule probe recorded no operations")
	}
	for crash := 1; crash <= total; crash++ {
		cdir := t.TempDir()
		fsys := faultinject.NewFaultFS(faultinject.OS()).CrashAt(crash).TornFraction(0.37)
		acked, runErr := run(fsys, cdir)
		if runErr == nil {
			t.Fatalf("crash %d: schedule never fired", crash)
		}
		path := filepath.Join(cdir, FileName(3))
		if _, err := os.Stat(path); err != nil {
			if acked != 0 {
				t.Fatalf("crash %d: %d acked batches but no log file", crash, acked)
			}
			continue // crashed before the file existed
		}
		res, err := Recover(path)
		if err != nil {
			// A torn header means Create itself crashed; the commit
			// protocol never publishes a CURRENT referencing such a file,
			// so nothing can have been acknowledged through it.
			if acked != 0 {
				t.Fatalf("crash %d: %d acked batches yet log unidentifiable: %v", crash, acked, err)
			}
			continue
		}
		if len(res.Records) < acked*2 {
			t.Fatalf("crash %d: acked %d batches, recovered %d records", crash, acked, len(res.Records))
		}
		for i, r := range res.Records {
			wantA := fmt.Sprintf("a-%d", i/2)
			wantB := fmt.Sprintf("b-%d", i/2)
			if i%2 == 0 && string(r) != wantA {
				t.Fatalf("crash %d: record %d = %q, want %q", crash, i, r, wantA)
			}
			if i%2 == 1 && string(r) != wantB {
				t.Fatalf("crash %d: record %d = %q, want %q", crash, i, r, wantB)
			}
		}
		// Open must truncate the quarantined tail so later appends land
		// after the acknowledged prefix.
		l, res2, err := Open(faultinject.OS(), path)
		if err != nil {
			t.Fatalf("crash %d: open: %v", crash, err)
		}
		if len(res2.Records) != len(res.Records) {
			t.Fatalf("crash %d: open recovered %d records, scan saw %d", crash, len(res2.Records), len(res.Records))
		}
		if _, err := l.Append([][]byte{[]byte("post")}); err != nil {
			t.Fatalf("crash %d: post-recovery append: %v", crash, err)
		}
		l.Close()
		res3, err := Recover(path)
		if err != nil {
			t.Fatal(err)
		}
		if n := len(res3.Records); n != len(res.Records)+1 || string(res3.Records[n-1]) != "post" {
			t.Fatalf("crash %d: post-recovery append not recovered cleanly", crash)
		}
	}
}

// FuzzWALRecord fuzzes the recovery scanner over arbitrary record regions:
// whatever the bytes, recovery must neither panic nor serve a record that
// fails its own checksum, and a well-formed prefix must replay intact.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte("hello"), []byte("world"))
	f.Add([]byte{}, []byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("a"), bytes.Repeat([]byte{0}, 64))
	f.Fuzz(func(t *testing.T, payload, junk []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, FileName(1))
		// A framed record followed by arbitrary junk: the record must
		// recover, the junk must never produce a phantom record equal to
		// nothing we wrote unless it happens to be a valid frame itself.
		buf := header(1)
		buf = AppendRecord(buf, payload)
		buf = append(buf, junk...)
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Recover(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) == 0 || !bytes.Equal(res.Records[0], payload) {
			t.Fatalf("framed record lost: got %d records", len(res.Records))
		}
		if res.GoodBytes+res.QuarantinedBytes != int64(len(buf)) {
			t.Fatalf("good %d + quarantined %d != file %d", res.GoodBytes, res.QuarantinedBytes, len(buf))
		}
		// Raw junk as the whole record region: must scan without panicking
		// and account every byte.
		raw := append(header(9), junk...)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err = Recover(path)
		if err != nil {
			t.Fatal(err)
		}
		if res.Gen != 9 {
			t.Fatalf("gen %d, want 9", res.Gen)
		}
		if res.GoodBytes+res.QuarantinedBytes != int64(len(raw)) {
			t.Fatalf("byte accounting broken on junk input")
		}
	})
}
