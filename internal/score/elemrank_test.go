package score

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/testutil"
	"repro/internal/xmltree"
)

func TestElemRankBasics(t *testing.T) {
	doc := xmltree.NewBuilder().
		Open("root").
		Open("hub").
		Leaf("a", "x").Leaf("b", "x").Leaf("c", "x").Leaf("d", "x").
		Close().
		Leaf("lonely", "x").
		Close().
		Doc()
	r := ElemRank(doc, DefaultElemRankParams())
	if len(r) != doc.Len() {
		t.Fatalf("rank vector length %d, want %d", len(r), doc.Len())
	}
	// Mean-1 normalization.
	var sum float64
	for _, v := range r {
		if v <= 0 {
			t.Fatalf("non-positive rank %v", v)
		}
		sum += v
	}
	if math.Abs(sum/float64(len(r))-1) > 1e-9 {
		t.Fatalf("mean rank = %v, want 1", sum/float64(len(r)))
	}
	// The hub (four children feeding rank back) outranks the lonely leaf.
	hub := doc.Root.Children[0]
	lonely := doc.Root.Children[1]
	if r[hub.Ord] <= r[lonely.Ord] {
		t.Errorf("hub rank %v not above leaf rank %v", r[hub.Ord], r[lonely.Ord])
	}
	// The root of a containment hierarchy dominates.
	if r[doc.Root.Ord] <= r[lonely.Ord] {
		t.Errorf("root rank %v not above leaf rank %v", r[doc.Root.Ord], r[lonely.Ord])
	}
}

func TestElemRankDegenerateParams(t *testing.T) {
	doc := xmltree.NewBuilder().Open("r").Leaf("c", "x").Close().Doc()
	// Invalid parameters fall back to the defaults instead of diverging.
	r := ElemRank(doc, ElemRankParams{Forward: 0.9, Backward: 0.9, Iters: -1})
	if len(r) != 2 || r[0] <= 0 {
		t.Fatalf("fallback rank = %v", r)
	}
	if got := ElemRank(&xmltree.Document{}, DefaultElemRankParams()); got != nil {
		t.Error("empty document must yield nil")
	}
}

func TestElemRankDeterministicAndConverged(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	doc := testutil.RandomDoc(rng, testutil.MediumParams())
	a := ElemRank(doc, DefaultElemRankParams())
	b := ElemRank(doc, DefaultElemRankParams())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ElemRank not deterministic")
		}
	}
	// Doubling the iterations must barely move the fixpoint.
	p := DefaultElemRankParams()
	p.Iters *= 2
	c := ElemRank(doc, p)
	for i := range a {
		if math.Abs(a[i]-c[i]) > 1e-6*(1+math.Abs(c[i])) {
			t.Fatalf("node %d rank not converged: %v vs %v", i, a[i], c[i])
		}
	}
}
