// Package score implements the ranking function of Section II-B: a local
// score g(v, w) per keyword occurrence, a decreasing damping function d(Δl)
// that discounts an occurrence by its vertical distance to the ELCA/SLCA,
// and the monotone aggregation F (sum of per-keyword maxima) that produces a
// result's global score.
package score

import "math"

// DefaultDecay is the damping base used throughout the experiments, chosen
// to match the paper's running example d(Δl) = 0.9^Δl.
const DefaultDecay = 0.9

// Params collects the ranking-function configuration.
type Params struct {
	// Decay is the base of the damping function d(Δl) = Decay^Δl. It must
	// lie in (0, 1]; 1 disables damping.
	Decay float64
}

// DefaultParams returns the configuration used by the paper's examples.
func DefaultParams() Params { return Params{Decay: DefaultDecay} }

// Damp returns d(dl) = Decay^dl for a vertical distance dl >= 0.
func (p Params) Damp(dl int) float64 {
	if dl <= 0 {
		return 1
	}
	return math.Pow(p.Decay, float64(dl))
}

// Local computes the local ranking score g(v, w) of one keyword occurrence:
// a tf-idf style product (1 + ln tf) * ln(1 + N/df), where tf is the term
// frequency within the node's direct text, df the number of nodes directly
// containing the term, and n the total number of element nodes. The paper
// leaves g pluggable; tf-idf is the standard instantiation and is monotone
// in the sense Section II-B requires.
func Local(tf, df, n int) float64 {
	if tf <= 0 || df <= 0 || n <= 0 {
		return 0
	}
	return (1 + math.Log(float64(tf))) * math.Log(1+float64(n)/float64(df))
}

// Aggregate implements F: the sum of the per-keyword damped maxima. inputs
// holds, per keyword, the best damped local score max_j g(v_j, w_i)*d(l_j - l̃)
// among the result's occurrences of that keyword.
func Aggregate(inputs []float64) float64 {
	var s float64
	for _, v := range inputs {
		s += v
	}
	return s
}
