package score

import "repro/internal/xmltree"

// ElemRank computes a PageRank-style global importance for every element
// of the document, the "link-based score that evaluates the global
// importance of the node" Section II-B allows g(v, w) to incorporate
// (after XRank's ElemRank [5]). XML documents have no hyperlinks here, so
// the recurrence uses the containment edges in both directions:
//
//	ER(v) = (1 - dFwd - dBack)/N
//	      + dFwd  * ER(parent(v)) / fanout(parent(v))
//	      + dBack * Σ_{c child of v} ER(c)
//
// iterated to a fixpoint and normalized to mean 1, so multiplying local
// scores by ER leaves the corpus-wide score mass unchanged. Structurally
// central elements (hubs with many descendants, elements high in heavy
// subtrees) score above 1, peripheral leaves below.
type ElemRankParams struct {
	Forward  float64 // dFwd: rank flowing from parent to children
	Backward float64 // dBack: rank flowing from children to parent
	Iters    int     // power iterations
}

// DefaultElemRankParams follows XRank's published constants.
func DefaultElemRankParams() ElemRankParams {
	return ElemRankParams{Forward: 0.35, Backward: 0.25, Iters: 30}
}

// ElemRank returns the per-node rank vector indexed by node ordinal.
func ElemRank(doc *xmltree.Document, p ElemRankParams) []float64 {
	n := doc.Len()
	if n == 0 {
		return nil
	}
	if p.Iters <= 0 {
		p.Iters = DefaultElemRankParams().Iters
	}
	if p.Forward < 0 || p.Backward < 0 || p.Forward+p.Backward >= 1 {
		p.Forward, p.Backward = DefaultElemRankParams().Forward, DefaultElemRankParams().Backward
	}
	base := (1 - p.Forward - p.Backward) / float64(n)
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	for it := 0; it < p.Iters; it++ {
		for i := range next {
			next[i] = base
		}
		for _, v := range doc.Nodes {
			if len(v.Children) > 0 {
				share := p.Forward * cur[v.Ord] / float64(len(v.Children))
				for _, c := range v.Children {
					next[c.Ord] += share
				}
			}
			if v.Parent != nil {
				next[v.Parent.Ord] += p.Backward * cur[v.Ord]
			}
		}
		cur, next = next, cur
	}
	// Normalize to mean 1.
	var sum float64
	for _, r := range cur {
		sum += r
	}
	if sum > 0 {
		scale := float64(n) / sum
		for i := range cur {
			cur[i] *= scale
		}
	}
	return cur
}
