package score

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDamp(t *testing.T) {
	p := DefaultParams()
	if got := p.Damp(0); got != 1 {
		t.Errorf("Damp(0) = %v", got)
	}
	if got := p.Damp(-3); got != 1 {
		t.Errorf("Damp(negative) = %v", got)
	}
	if got := p.Damp(1); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("Damp(1) = %v", got)
	}
	if got := p.Damp(3); math.Abs(got-0.729) > 1e-12 {
		t.Errorf("Damp(3) = %v", got)
	}
	// Strictly decreasing in the distance.
	for dl := 0; dl < 20; dl++ {
		if p.Damp(dl+1) >= p.Damp(dl) {
			t.Fatalf("damping not decreasing at %d", dl)
		}
	}
}

func TestLocal(t *testing.T) {
	n := 10000
	if Local(0, 5, n) != 0 || Local(3, 0, n) != 0 || Local(3, 5, 0) != 0 {
		t.Error("degenerate inputs must score zero")
	}
	// Monotone in tf.
	if Local(2, 100, n) <= Local(1, 100, n) {
		t.Error("score must grow with tf")
	}
	// Anti-monotone in df (rarer terms score higher).
	if Local(1, 10, n) <= Local(1, 1000, n) {
		t.Error("score must shrink with df")
	}
	if Local(1, 1, 1) <= 0 {
		t.Error("minimal occurrence must have positive score")
	}
}

func TestAggregate(t *testing.T) {
	if got := Aggregate(nil); got != 0 {
		t.Errorf("Aggregate(nil) = %v", got)
	}
	if got := Aggregate([]float64{0.73, 0.41}); math.Abs(got-1.14) > 1e-12 {
		// Example 4.1 of the paper: 0.73 + 0.41 = 1.14.
		t.Errorf("Aggregate = %v, want 1.14", got)
	}
}

// TestAggregateMonotone verifies the Monotonicity property of Section II-B:
// raising any per-keyword input cannot lower the aggregate.
func TestAggregateMonotone(t *testing.T) {
	f := func(a, b, c, bump float64) bool {
		abs := func(x float64) float64 {
			x = math.Mod(math.Abs(x), 100)
			if math.IsNaN(x) {
				return 0
			}
			return x
		}
		in := []float64{abs(a), abs(b), abs(c)}
		up := []float64{in[0] + abs(bump), in[1], in[2]}
		return Aggregate(up) >= Aggregate(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
