// Package occur extracts keyword occurrences from a document: for every
// term, the document-ordered list of nodes directly containing it, with term
// frequencies and the local ranking scores g(v, w) of Section II-B. Both
// index families (the document-order Dewey lists used by the baseline
// systems and the column-oriented JDewey lists used by the join-based
// algorithms) are built from this single extraction.
package occur

import (
	"sort"

	"repro/internal/score"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// Occ is one keyword occurrence: a node directly containing the term.
type Occ struct {
	Node  *xmltree.Node
	TF    int     // term frequency within the node's direct text
	Score float32 // local ranking score g(v, w)
}

// Map holds, per term, the occurrence list in document order. Because
// JDewey numbers are assigned in document order, the lists are
// simultaneously in Dewey order and in JDewey-sequence order.
type Map struct {
	Terms map[string][]Occ
	N     int // total element nodes in the document
	Depth int // document depth
}

// ExtractRanked is Extract with a link-based component: each occurrence's
// tf-idf local score is multiplied by the node's global-importance rank
// (see score.ElemRank), the combined g(v, w) form Section II-B describes.
// ranks is indexed by node ordinal; a nil ranks degenerates to Extract.
func ExtractRanked(doc *xmltree.Document, ranks []float64) *Map {
	m := Extract(doc)
	if ranks == nil {
		return m
	}
	for term, occs := range m.Terms {
		for i := range occs {
			occs[i].Score *= float32(ranks[occs[i].Node.Ord])
		}
		m.Terms[term] = occs
	}
	return m
}

// Extract tokenizes every node's direct text and builds the occurrence map,
// computing local scores from term and document frequencies.
func Extract(doc *xmltree.Document) *Map {
	return ExtractN(doc, doc.Len())
}

// ExtractN is Extract with an explicit corpus constant N for the idf
// component, used when reloading an index whose scores were computed
// against the original (pre-mutation) document size.
func ExtractN(doc *xmltree.Document, n int) *Map {
	m := &Map{Terms: make(map[string][]Occ), N: n, Depth: doc.Depth}
	for _, n := range doc.Nodes {
		if n.Text == "" {
			continue
		}
		for term, tf := range tokenize.TermCounts(n.Text) {
			m.Terms[term] = append(m.Terms[term], Occ{Node: n, TF: tf})
		}
	}
	// doc.Nodes is preorder, so each term's list is already in document
	// order; compute scores now that document frequencies are known.
	for term, occs := range m.Terms {
		df := len(occs)
		for i := range occs {
			occs[i].Score = float32(score.Local(occs[i].TF, df, m.N))
		}
		m.Terms[term] = occs
	}
	return m
}

// UpdateTerms rescans the document for the given terms only, replacing
// their occurrence lists (in document order) and recomputing their scores
// against the current document frequencies. The corpus constant N is kept
// frozen at its construction value — standard incremental-IR practice, so
// an insertion does not invalidate every unrelated list's idf — and Depth
// is refreshed. Terms that no longer occur are dropped.
func (m *Map) UpdateTerms(doc *xmltree.Document, terms map[string]bool) {
	if len(terms) == 0 {
		m.Depth = doc.Depth
		return
	}
	fresh := make(map[string][]Occ, len(terms))
	for _, n := range doc.Nodes {
		if n.Text == "" {
			continue
		}
		for term, tf := range tokenize.TermCounts(n.Text) {
			if terms[term] {
				fresh[term] = append(fresh[term], Occ{Node: n, TF: tf})
			}
		}
	}
	for term := range terms {
		occs := fresh[term]
		if len(occs) == 0 {
			delete(m.Terms, term)
			continue
		}
		df := len(occs)
		for i := range occs {
			occs[i].Score = float32(score.Local(occs[i].TF, df, m.N))
		}
		m.Terms[term] = occs
	}
	m.Depth = doc.Depth
}

// CloneRemapped copies the map with every occurrence's node pointer
// remapped by preorder ordinal into nodes (typically the Nodes slice of a
// Document.Clone of the tree the map was extracted from). Occurrence
// slices are duplicated, so mutating the clone's lists never touches the
// original — the copy-on-write step of snapshot-isolated maintenance.
func (m *Map) CloneRemapped(nodes []*xmltree.Node) *Map {
	nm := &Map{Terms: make(map[string][]Occ, len(m.Terms)), N: m.N, Depth: m.Depth}
	for term, occs := range m.Terms {
		cp := make([]Occ, len(occs))
		copy(cp, occs)
		for i := range cp {
			cp[i].Node = nodes[cp[i].Node.Ord]
		}
		nm.Terms[term] = cp
	}
	return nm
}

// DocFreq returns the number of nodes directly containing term.
func (m *Map) DocFreq(term string) int { return len(m.Terms[term]) }

// Words returns all indexed terms in lexicographic order.
func (m *Map) Words() []string {
	ws := make([]string, 0, len(m.Terms))
	for w := range m.Terms {
		ws = append(ws, w)
	}
	sort.Strings(ws)
	return ws
}
