package occur

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func sample(t *testing.T) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.Parse(strings.NewReader(
		`<bib><book><title>xml data</title><note>xml xml</note></book><paper>data mining</paper></bib>`))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestExtract(t *testing.T) {
	doc := sample(t)
	m := Extract(doc)
	if m.N != doc.Len() || m.Depth != doc.Depth {
		t.Fatalf("N/Depth = %d/%d", m.N, m.Depth)
	}
	if m.DocFreq("xml") != 2 {
		t.Fatalf("df(xml) = %d, want 2 (title and note)", m.DocFreq("xml"))
	}
	if m.DocFreq("data") != 2 || m.DocFreq("mining") != 1 || m.DocFreq("nothere") != 0 {
		t.Fatal("document frequencies wrong")
	}
	// tf of "xml" in the note node is 2.
	var noteOcc *Occ
	for i := range m.Terms["xml"] {
		if m.Terms["xml"][i].Node.Tag == "note" {
			noteOcc = &m.Terms["xml"][i]
		}
	}
	if noteOcc == nil || noteOcc.TF != 2 {
		t.Fatalf("note tf = %+v", noteOcc)
	}
	// Higher tf at equal df means higher local score.
	var titleOcc *Occ
	for i := range m.Terms["xml"] {
		if m.Terms["xml"][i].Node.Tag == "title" {
			titleOcc = &m.Terms["xml"][i]
		}
	}
	if noteOcc.Score <= titleOcc.Score {
		t.Errorf("tf=2 occurrence must outscore tf=1: %v vs %v", noteOcc.Score, titleOcc.Score)
	}
}

func TestExtractDocumentOrder(t *testing.T) {
	doc := sample(t)
	m := Extract(doc)
	for term, occs := range m.Terms {
		for i := 1; i < len(occs); i++ {
			if occs[i-1].Node.Ord >= occs[i].Node.Ord {
				t.Fatalf("list %q not in document order", term)
			}
		}
	}
}

func TestWords(t *testing.T) {
	m := Extract(sample(t))
	ws := m.Words()
	if len(ws) != 3 {
		t.Fatalf("words = %v", ws)
	}
	for i := 1; i < len(ws); i++ {
		if ws[i-1] >= ws[i] {
			t.Fatal("words not sorted")
		}
	}
}

func TestUpdateTerms(t *testing.T) {
	doc := sample(t)
	m := Extract(doc)
	frozenN := m.N

	// Mutate: the paper node gains an "xml" occurrence, "mining" vanishes.
	var paper *xmltree.Node
	for _, n := range doc.Nodes {
		if n.Tag == "paper" {
			paper = n
		}
	}
	paper.Text = "data warehousing xml"
	m.UpdateTerms(doc, map[string]bool{"xml": true, "mining": true, "warehousing": true})

	if m.DocFreq("xml") != 3 {
		t.Errorf("df(xml) = %d, want 3 after update", m.DocFreq("xml"))
	}
	if m.DocFreq("mining") != 0 {
		t.Error("vanished term still indexed")
	}
	if m.DocFreq("warehousing") != 1 {
		t.Error("new term not indexed")
	}
	if m.N != frozenN {
		t.Errorf("corpus constant drifted: %d vs %d", m.N, frozenN)
	}
	// Untouched term must be byte-identical.
	if m.DocFreq("data") != 2 {
		t.Error("untouched term disturbed")
	}
	// Document order preserved in updated lists.
	for _, term := range []string{"xml", "warehousing"} {
		occs := m.Terms[term]
		for i := 1; i < len(occs); i++ {
			if occs[i-1].Node.Ord >= occs[i].Node.Ord {
				t.Fatalf("updated list %q not in document order", term)
			}
		}
	}
	// Empty dirty set is a no-op beyond depth refresh.
	m.UpdateTerms(doc, nil)
	if m.DocFreq("xml") != 3 {
		t.Error("no-op update changed state")
	}
}

func TestExtractN(t *testing.T) {
	doc := sample(t)
	a := Extract(doc)
	b := ExtractN(doc, doc.Len()*10)
	// A larger corpus constant raises idf, hence scores.
	if b.Terms["xml"][0].Score <= a.Terms["xml"][0].Score {
		t.Error("larger N must raise scores")
	}
	if b.N != doc.Len()*10 {
		t.Errorf("N = %d", b.N)
	}
}

func TestExtractEmptyText(t *testing.T) {
	doc := xmltree.NewBuilder().Open("a").Open("b").Close().Close().Doc()
	m := Extract(doc)
	if len(m.Terms) != 0 {
		t.Fatalf("no-text document produced terms: %v", m.Words())
	}
}
