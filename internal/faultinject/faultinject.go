// Package faultinject provides the write-path filesystem abstraction the
// durable index storage goes through, plus a fault-injecting implementation
// used by the crash- and corruption-robustness tests. The production code
// saves indexes through the FS interface; tests substitute a FaultFS that
// simulates a process crash (or power loss) at an arbitrary point of the
// write schedule, including a torn write of the file being written at that
// moment. Separate helpers flip bits in or truncate already-written files
// to model media corruption.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
)

// FS is the mutation surface of an index save: every durable write the
// storage layer performs goes through exactly one of these calls, so a
// fault schedule over op indices covers every crash point.
type FS interface {
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
	// WriteFile atomically-in-content (create, write, fsync, close) writes
	// a file. It does NOT imply the directory entry is durable; callers
	// must SyncDir before relying on the name surviving a crash.
	WriteFile(path string, data []byte, perm fs.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (used for garbage collection of stale
	// generations; failures are non-fatal to callers).
	Remove(path string) error
	// SyncDir fsyncs a directory, making the entries created or renamed
	// inside it durable.
	SyncDir(path string) error
	// OpenAppend opens path for durable appends (creating it if absent).
	// Unlike WriteFile, durability is explicit: appended bytes are only
	// guaranteed on disk after Sync returns. The write-ahead log is the
	// intended caller; a fault schedule counts each Write and each Sync
	// as one mutating operation.
	OpenAppend(path string) (AppendFile, error)
}

// AppendFile is an append-only file handle: sequential writes plus an
// explicit durability barrier.
type AppendFile interface {
	io.Writer
	// Sync makes every byte written so far durable.
	Sync() error
	// Close releases the handle without implying durability.
	Close() error
}

// osFS is the production implementation.
type osFS struct{}

// OS returns the real filesystem implementation of FS.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (osFS) OpenAppend(path string) (AppendFile, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// ErrCrashed is returned by every FaultFS operation at and after the
// injected crash point: from the process's point of view the save fails,
// and from the disk's point of view nothing after the crash point happened.
var ErrCrashed = errors.New("faultinject: simulated crash")

// FaultFS wraps a base FS and simulates a crash at a chosen point in the
// operation schedule. Operation indices are 1-based: CrashAt(n) lets the
// first n-1 mutations complete, fails the n-th — a WriteFile caught at the
// crash point leaves a torn prefix of TornFraction of its data on disk —
// and rejects everything after it. CrashAt(0) (or a FaultFS that never
// reaches its crash point) injects nothing, which is how schedules are
// sized: run once with no crash point and read Ops().
type FaultFS struct {
	base FS

	mu      sync.Mutex
	ops     int
	crashAt int
	torn    float64
	crashed bool
}

// NewFaultFS returns a fault-injecting wrapper over base (usually OS()).
func NewFaultFS(base FS) *FaultFS {
	return &FaultFS{base: base, torn: 0.5}
}

// CrashAt arms the crash for the 1-based n-th mutating operation; n <= 0
// disarms it.
func (f *FaultFS) CrashAt(n int) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
	return f
}

// TornFraction sets the fraction (0..1) of the crashing WriteFile's data
// that reaches disk, modelling a torn write. The default is 0.5.
func (f *FaultFS) TornFraction(frac float64) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	f.torn = frac
	return f
}

// Ops reports how many mutating operations have been attempted, which sizes
// an exhaustive crash schedule.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the injected crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step accounts one mutating op and reports whether it is the crash point
// (fire=true) or past it (err=ErrCrashed).
func (f *FaultFS) step() (fire bool, torn float64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false, 0, ErrCrashed
	}
	f.ops++
	if f.crashAt > 0 && f.ops == f.crashAt {
		f.crashed = true
		return true, f.torn, nil
	}
	return false, 0, nil
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	fire, _, err := f.step()
	if err != nil || fire {
		return ErrCrashed
	}
	return f.base.MkdirAll(path, perm)
}

func (f *FaultFS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	fire, torn, err := f.step()
	if err != nil {
		return ErrCrashed
	}
	if fire {
		// Torn write: a prefix of the data reaches disk, the rest is lost
		// with the crash.
		n := int(float64(len(data)) * torn)
		_ = f.base.WriteFile(path, data[:n], perm)
		return ErrCrashed
	}
	return f.base.WriteFile(path, data, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	fire, _, err := f.step()
	if err != nil || fire {
		return ErrCrashed
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	fire, _, err := f.step()
	if err != nil || fire {
		return ErrCrashed
	}
	return f.base.Remove(path)
}

func (f *FaultFS) SyncDir(path string) error {
	fire, _, err := f.step()
	if err != nil || fire {
		return ErrCrashed
	}
	return f.base.SyncDir(path)
}

// OpenAppend counts the open (file creation is a mutation) and returns a
// handle whose every Write and Sync is itself one schedulable operation:
// a Write caught at the crash point leaves a torn prefix on disk, a Sync
// caught there fails after the data already reached the file (modelling a
// crash between the write and the durability acknowledgement).
func (f *FaultFS) OpenAppend(path string) (AppendFile, error) {
	fire, _, err := f.step()
	if err != nil || fire {
		return nil, ErrCrashed
	}
	af, err := f.base.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultAppendFile{fs: f, base: af}, nil
}

// faultAppendFile injects the FaultFS schedule into an append handle.
type faultAppendFile struct {
	fs   *FaultFS
	base AppendFile
}

func (a *faultAppendFile) Write(p []byte) (int, error) {
	fire, torn, err := a.fs.step()
	if err != nil {
		return 0, ErrCrashed
	}
	if fire {
		// Torn append: a prefix reaches the file, the rest is lost.
		n := int(float64(len(p)) * torn)
		_, _ = a.base.Write(p[:n])
		return n, ErrCrashed
	}
	return a.base.Write(p)
}

func (a *faultAppendFile) Sync() error {
	fire, _, err := a.fs.step()
	if err != nil || fire {
		return ErrCrashed
	}
	return a.base.Sync()
}

func (a *faultAppendFile) Close() error { return a.base.Close() }

var (
	_ FS = osFS{}
	_ FS = (*FaultFS)(nil)
)

// FlipByte XORs the byte at offset off of the file with mask (mask 0 is
// promoted to 0xff so the byte always changes), modelling a media bit-flip.
func FlipByte(path string, off int64, mask byte) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if off < 0 || off >= int64(len(data)) {
		return fmt.Errorf("faultinject: offset %d outside %q (%d bytes)", off, path, len(data))
	}
	if mask == 0 {
		mask = 0xff
	}
	data[off] ^= mask
	return os.WriteFile(path, data, 0o644)
}

// Truncate cuts the file to n bytes, modelling a torn append or lost tail.
func Truncate(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if n < 0 || n > fi.Size() {
		return fmt.Errorf("faultinject: truncation %d outside %q (%d bytes)", n, path, fi.Size())
	}
	return os.Truncate(path, n)
}
