package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestCrashSchedule(t *testing.T) {
	dir := t.TempDir()
	save := func(fsys FS) error {
		if err := fsys.WriteFile(filepath.Join(dir, "a"), []byte("aaaa"), 0o644); err != nil {
			return err
		}
		if err := fsys.WriteFile(filepath.Join(dir, "b.tmp"), []byte("bbbb"), 0o644); err != nil {
			return err
		}
		if err := fsys.Rename(filepath.Join(dir, "b.tmp"), filepath.Join(dir, "b")); err != nil {
			return err
		}
		return fsys.SyncDir(dir)
	}
	// Count the schedule.
	probe := NewFaultFS(OS())
	if err := save(probe); err != nil {
		t.Fatal(err)
	}
	if probe.Ops() != 4 {
		t.Fatalf("schedule has %d ops, want 4", probe.Ops())
	}
	if probe.Crashed() {
		t.Fatal("unarmed FaultFS must not crash")
	}

	// Crash at op 2 (the second WriteFile): "a" durable, "b" absent, the
	// torn prefix of "b.tmp" on disk, rename and sync never happen.
	os.RemoveAll(dir)
	os.MkdirAll(dir, 0o755)
	ffs := NewFaultFS(OS()).CrashAt(2).TornFraction(0.5)
	err := save(ffs)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !ffs.Crashed() {
		t.Fatal("crash did not fire")
	}
	if got, err := os.ReadFile(filepath.Join(dir, "a")); err != nil || string(got) != "aaaa" {
		t.Fatalf("pre-crash file damaged: %q, %v", got, err)
	}
	if got, err := os.ReadFile(filepath.Join(dir, "b.tmp")); err != nil || string(got) != "bb" {
		t.Fatalf("torn write = %q, %v; want prefix \"bb\"", got, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "b")); !os.IsNotExist(err) {
		t.Fatal("post-crash rename happened")
	}

	// Ops after the crash all fail without touching disk.
	if err := ffs.WriteFile(filepath.Join(dir, "c"), []byte("c"), 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write err = %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "c")); !os.IsNotExist(err) {
		t.Fatal("post-crash write reached disk")
	}
}

func TestCorruptionHelpers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte{1, 2, 3, 4}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipByte(path, 2, 0); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if got[2] == 3 {
		t.Fatal("FlipByte with zero mask left the byte unchanged")
	}
	if err := FlipByte(path, 99, 1); err == nil {
		t.Fatal("out-of-range flip must error")
	}
	if err := Truncate(path, 1); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); len(got) != 1 {
		t.Fatalf("truncated to %d bytes, want 1", len(got))
	}
	if err := Truncate(path, 5); err == nil {
		t.Fatal("growing truncate must error")
	}
}
