package ixlookup

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/invindex"
	"repro/internal/naive"
	"repro/internal/occur"
	"repro/internal/testutil"
	"repro/internal/xmltree"
)

type env struct {
	doc *xmltree.Document
	m   *occur.Map
	idx *invindex.Index
}

func newEnv(doc *xmltree.Document) *env {
	m := occur.Extract(doc)
	return &env{doc: doc, m: m, idx: invindex.Build(m)}
}

func (e *env) lists(keywords []string) []*invindex.List {
	out := make([]*invindex.List, len(keywords))
	for i, w := range keywords {
		out[i] = e.idx.Get(w)
	}
	return out
}

func assertMatchesOracle(t *testing.T, e *env, keywords []string, sem Semantics) {
	t.Helper()
	nsem := naive.ELCA
	if sem == SLCA {
		nsem = naive.SLCA
	}
	want := naive.Evaluate(e.doc, e.m, keywords, nsem, 0)
	got, _ := Evaluate(e.lists(keywords), sem, 0)
	if len(got) != len(want) {
		t.Fatalf("%v sem=%d: %d results, oracle %d", keywords, sem, len(got), len(want))
	}
	byID := map[string]float64{}
	for _, r := range got {
		byID[r.ID.String()] = r.Score
	}
	for _, w := range want {
		s, ok := byID[w.Node.Dewey.String()]
		if !ok {
			t.Fatalf("%v sem=%d: missing %v", keywords, sem, w.Node.Dewey)
		}
		if math.Abs(s-w.Score) > 1e-6*(1+math.Abs(w.Score)) {
			t.Fatalf("%v sem=%d: %v score %v, oracle %v", keywords, sem, w.Node.Dewey, s, w.Score)
		}
	}
}

func sampleDoc() *xmltree.Document {
	return xmltree.NewBuilder().
		Open("bib").
		Open("book").
		Leaf("title", "xml").
		Open("chapter").Leaf("sec", "xml basics").Leaf("sec", "data models").Close().
		Close().
		Open("book").Leaf("title", "data warehousing").Close().
		Open("book").Leaf("title", "xml processing").Leaf("note", "big data").Close().
		Close().
		Doc()
}

func TestWorkedExample(t *testing.T) {
	e := newEnv(sampleDoc())
	got, st := Evaluate(e.lists([]string{"xml", "data"}), ELCA, 0)
	if len(got) != 2 {
		t.Fatalf("ELCA = %v", got)
	}
	if st.DriverPostings == 0 || st.Probes == 0 {
		t.Errorf("stats not collected: %+v", st)
	}
	// The driver must be the shortest list.
	shortest := e.idx.Get("xml").Len()
	if l := e.idx.Get("data").Len(); l < shortest {
		shortest = l
	}
	if st.DriverPostings != shortest {
		t.Errorf("driver examined %d postings, want %d (shortest list)", st.DriverPostings, shortest)
	}
	assertMatchesOracle(t, e, []string{"xml", "data"}, ELCA)
	assertMatchesOracle(t, e, []string{"xml", "data"}, SLCA)
}

// TestExclusionCascade: the index-based ELCA verification must reject a
// node whose keyword occurrences all sit inside contains-all child
// branches.
func TestExclusionCascade(t *testing.T) {
	doc := xmltree.NewBuilder().
		Open("n").
		Open("uprime").
		Open("udoubleprime").Text("alpha beta").Close().
		Leaf("y", "alpha").
		Close().
		Leaf("x", "beta").
		Close().
		Doc()
	e := newEnv(doc)
	got, _ := Evaluate(e.lists([]string{"alpha", "beta"}), ELCA, 0)
	if len(got) != 1 || got[0].ID.String() != "1.1.1" {
		t.Fatalf("ELCA = %v, want exactly u'' (1.1.1)", got)
	}
	assertMatchesOracle(t, e, []string{"alpha", "beta"}, ELCA)
	assertMatchesOracle(t, e, []string{"alpha", "beta"}, SLCA)
}

func TestDegenerate(t *testing.T) {
	e := newEnv(sampleDoc())
	if rs, _ := Evaluate(nil, ELCA, 0); rs != nil {
		t.Error("empty query")
	}
	if rs, _ := Evaluate(e.lists([]string{"xml", "absent"}), ELCA, 0); rs != nil {
		t.Error("missing keyword")
	}
	assertMatchesOracle(t, e, []string{"xml"}, ELCA)
	assertMatchesOracle(t, e, []string{"data"}, SLCA)
}

func TestCrossEngineEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 120; trial++ {
		params := testutil.SmallParams()
		if trial%3 == 0 {
			params = testutil.MediumParams()
		}
		e := newEnv(testutil.RandomDoc(rng, params))
		for _, k := range []int{1, 2, 3, 4} {
			q := testutil.RandomQuery(rng, params.Vocab, k)
			assertMatchesOracle(t, e, q, ELCA)
			assertMatchesOracle(t, e, q, SLCA)
		}
	}
}

// TestProbeScaling: the probe count is driven by the shortest list, not the
// longest — the defining cost profile of this family.
func TestProbeScaling(t *testing.T) {
	b := xmltree.NewBuilder().Open("root")
	b.Open("special").Text("needle common").Close()
	for i := 0; i < 3000; i++ {
		b.Leaf("item", "common stuff")
	}
	doc := b.Close().Doc()
	e := newEnv(doc)
	_, st := Evaluate(e.lists([]string{"needle", "common"}), SLCA, 0)
	if st.DriverPostings != 1 {
		t.Errorf("driver postings = %d, want 1", st.DriverPostings)
	}
	if st.Probes > 100 {
		t.Errorf("probes = %d, expected a handful for a frequency-skewed query", st.Probes)
	}
}
