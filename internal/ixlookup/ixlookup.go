// Package ixlookup implements the index-based baseline algorithms ([6] for
// SLCA, [8]-style for ELCA): the shortest inverted list drives the
// computation, and for each of its occurrences the other lists are probed
// by binary search (standing in for the B-tree lookups of the original
// systems) to find the closest occurrences of the other keywords. Their
// complexity is O(k·|L1|·log|L|), which wins when the shortest list is tiny
// and loses badly once it grows — the crossover Figure 9 shows.
package ixlookup

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dewey"
	"repro/internal/invindex"
	"repro/internal/obs"
	"repro/internal/score"
)

// Semantics selects the result semantics.
type Semantics int

const (
	ELCA Semantics = iota
	SLCA
)

// Result is one ELCA/SLCA with its ranking score.
type Result struct {
	ID    dewey.ID
	Score float64
}

// Stats reports execution counters.
type Stats struct {
	DriverPostings int   // occurrences of the shortest list examined
	Probes         int64 // binary searches over the other lists
	Candidates     int   // distinct candidate nodes checked
}

// evalCtx carries one evaluation's state.
type evalCtx struct {
	goCtx context.Context
	err   error // sticky ctx.Err() once cancellation is observed
	ops   int
	lists []*invindex.List // ordered shortest-first
	decay float64
	st    *Stats
}

// ctxCheckStride is how many probes pass between context checks.
const ctxCheckStride = 512

// tick accounts one unit of work and reports whether the evaluation must
// abort (context cancelled).
func (c *evalCtx) tick() bool {
	if c.err != nil {
		return true
	}
	c.ops++
	if c.ops%ctxCheckStride != 0 {
		return false
	}
	if err := c.goCtx.Err(); err != nil {
		c.err = err
		return true
	}
	return false
}

// Evaluate runs the index-based algorithm and returns all results in
// document order.
func Evaluate(lists []*invindex.List, sem Semantics, decay float64) ([]Result, Stats) {
	rs, st, _ := EvaluateCtx(context.Background(), lists, sem, decay)
	return rs, st
}

// EvaluateCtx is Evaluate honoring a context: the driver-posting scan and
// the candidate verification loops observe cancellation periodically and
// abort with ctx.Err().
func EvaluateCtx(goCtx context.Context, lists []*invindex.List, sem Semantics, decay float64) ([]Result, Stats, error) {
	return EvaluateObsCtx(goCtx, lists, sem, decay, nil)
}

// EvaluateObsCtx is EvaluateCtx with per-query tracing: the driver-list
// choice (the family's one join-order decision), cancellation-check
// strides, and probe counters are recorded on tr (nil disables tracing).
func EvaluateObsCtx(goCtx context.Context, lists []*invindex.List, sem Semantics, decay float64, tr *obs.Trace) ([]Result, Stats, error) {
	var st Stats
	if goCtx == nil {
		goCtx = context.Background()
	}
	if err := goCtx.Err(); err != nil {
		return nil, st, err
	}
	if len(lists) == 0 {
		return nil, st, nil
	}
	for _, l := range lists {
		if l == nil || l.Len() == 0 {
			return nil, st, nil
		}
	}
	if decay == 0 {
		decay = score.DefaultDecay
	}
	ordered := make([]*invindex.List, len(lists))
	copy(ordered, lists)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Len() < ordered[j].Len() })
	ctx := &evalCtx{goCtx: goCtx, lists: ordered, decay: decay, st: &st}
	if tr != nil {
		var b strings.Builder
		fmt.Fprintf(&b, "driver=%s:rows=", ordered[0].Word)
		total := int64(0)
		for i, l := range ordered {
			if i > 0 {
				b.WriteByte('<')
			}
			fmt.Fprintf(&b, "%d", l.Len())
			total += int64(l.Len())
		}
		tr.JoinOrder(b.String(), len(ordered), ordered[0].Len(), total)
		defer func() {
			tr.CancelChecks(int64(ctx.ops/ctxCheckStride), ctxCheckStride)
			tr.Note("ixlookup driver/probes/candidates", int64(st.DriverPostings), st.Probes, int64(st.Candidates))
		}()
	}

	// Candidate generation: for every occurrence v of the shortest list,
	// the deepest contains-all ancestor of v, found from the closest
	// occurrences (pred/succ) of every other keyword. Every ELCA and every
	// SLCA has a witness from L1 whose deepest contains-all ancestor is
	// that node, so candidates cover the full result set.
	seen := map[string]bool{}
	var candidates []dewey.ID
	for _, p := range ordered[0].Postings {
		if ctx.tick() {
			return nil, st, ctx.err
		}
		st.DriverPostings++
		u := ctx.deepestCA(p.ID)
		if u == nil {
			continue
		}
		key := u.String()
		if !seen[key] {
			seen[key] = true
			candidates = append(candidates, u)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return dewey.Compare(candidates[i], candidates[j]) < 0 })

	var out []Result
	switch sem {
	case SLCA:
		// A candidate is an SLCA iff no other candidate is its descendant.
		// Candidates are contains-all, descendants are contiguous after
		// sorting, so one forward pass suffices.
		for i, u := range candidates {
			if ctx.tick() {
				return out, st, ctx.err
			}
			st.Candidates++
			if i+1 < len(candidates) && u.IsAncestorOf(candidates[i+1]) {
				continue
			}
			out = append(out, Result{ID: u, Score: ctx.scoreSLCA(u)})
		}
	case ELCA:
		for _, u := range candidates {
			if ctx.tick() {
				return out, st, ctx.err
			}
			st.Candidates++
			if ok, sc := ctx.verifyELCA(u); ok {
				out = append(out, Result{ID: u, Score: sc})
			}
		}
	}
	if ctx.err != nil {
		return out, st, ctx.err
	}
	return out, st, nil
}

// deepestCA returns the deepest ancestor-or-self of v whose subtree
// contains an occurrence of every keyword: the minimum over keywords of the
// longest common prefix between v and that keyword's closest occurrences.
func (c *evalCtx) deepestCA(v dewey.ID) dewey.ID {
	depth := len(v)
	for _, l := range c.lists[1:] {
		c.st.Probes++
		i := l.SearchGE(v)
		best := 0
		if i < l.Len() {
			if d := dewey.CommonPrefixLen(v, l.Postings[i].ID); d > best {
				best = d
			}
		}
		if i > 0 {
			if d := dewey.CommonPrefixLen(v, l.Postings[i-1].ID); d > best {
				best = d
			}
		}
		if best < depth {
			depth = best
		}
		if depth == 0 {
			return nil
		}
	}
	return v[:depth].Clone()
}

// containsAll reports whether the subtree of u holds at least one
// occurrence of every keyword.
func (c *evalCtx) containsAll(u dewey.ID) bool {
	for _, l := range c.lists {
		c.st.Probes++
		if !l.ContainsUnder(u) {
			return false
		}
	}
	return true
}

// verifyELCA checks the exclusion condition for candidate u — for each
// keyword, an occurrence under u whose child branch of u does not itself
// contain all keywords — and computes the score from those witnesses. The
// walk skips whole contains-all child branches via range jumps, the
// "checking correlations of LCAs" work the paper charges this family with.
func (c *evalCtx) verifyELCA(u dewey.ID) (bool, float64) {
	total := 0.0
	// Memoize per-child-branch contains-all checks across keywords.
	branchCA := map[uint32]bool{}
	for _, l := range c.lists {
		lo, hi := l.SubtreeRange(u)
		c.st.Probes++
		best := math.Inf(-1)
		found := false
		for i := lo; i < hi; {
			if c.tick() {
				return false, 0
			}
			x := l.Postings[i]
			if len(x.ID) == len(u) {
				// Occurrence directly at u: never excluded.
				found = true
				if s := float64(x.Score); s > best {
					best = s
				}
				i++
				continue
			}
			comp := x.ID[len(u)]
			ca, ok := branchCA[comp]
			if !ok {
				ca = c.containsAll(x.ID[:len(u)+1])
				branchCA[comp] = ca
			}
			if ca {
				// Skip the entire contains-all branch.
				next := x.ID[:len(u)+1].Clone()
				next[len(u)]++
				c.st.Probes++
				i = l.SearchGE(next)
				continue
			}
			found = true
			if s := float64(x.Score) * math.Pow(c.decay, float64(len(x.ID)-len(u))); s > best {
				best = s
			}
			i++
		}
		if !found {
			return false, 0
		}
		total += best
	}
	return true, total
}

// scoreSLCA aggregates the per-keyword best damped scores over all
// occurrences under u; an SLCA has no contains-all descendant, so nothing
// is excluded.
func (c *evalCtx) scoreSLCA(u dewey.ID) float64 {
	total := 0.0
	for _, l := range c.lists {
		c.st.Probes++
		total += l.MaxScoreUnder(u, c.decay)
	}
	return total
}
