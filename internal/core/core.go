// Package core implements the paper's primary contribution: the join-based
// algorithm of Section III. Keyword query evaluation is reduced to
// per-level relational joins over the column-oriented JDewey inverted
// lists; levels are processed bottom-up so that the ELCA/SLCA semantic
// pruning is a local range check against previously erased rows, with no
// document-order enforcement — which is what later makes top-K processing
// possible (package topk).
package core

import (
	"context"
	"math"
	"sort"

	"fmt"
	"strings"

	"repro/internal/colstore"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/score"
)

// Semantics selects the LCA-variant result semantics.
type Semantics int

const (
	// ELCA: nodes containing at least one occurrence of every keyword
	// after excluding occurrences inside descendant subtrees that already
	// contain all keywords.
	ELCA Semantics = iota
	// SLCA: LCA nodes none of whose descendants is also an LCA.
	SLCA
)

func (s Semantics) String() string {
	if s == SLCA {
		return "SLCA"
	}
	return "ELCA"
}

// JoinPlan selects how the per-column joins are executed (Section III-C).
type JoinPlan int

const (
	// PlanAuto chooses per join between merge and index join from the
	// current intermediate result size — the paper's dynamic optimization.
	PlanAuto JoinPlan = iota
	// PlanMergeOnly forces merge joins, as the ablation experiments do.
	PlanMergeOnly
	// PlanIndexOnly forces index joins.
	PlanIndexOnly
)

// indexJoinRatio is the selectivity cutover: the index join is chosen when
// the outer (intermediate) side is at least this many times smaller than
// the inner column.
const indexJoinRatio = 16

// Options configures Evaluate.
type Options struct {
	Semantics Semantics
	Plan      JoinPlan
	Decay     float64 // damping base d(Δl) = Decay^Δl; 0 selects score.DefaultDecay

	// Trace, when non-nil, receives the per-query execution events (join
	// order, per-level join steps, dynamic plan switches, cancellation
	// strides). Nil disables tracing at the cost of one pointer check per
	// instrumentation site.
	Trace *obs.Trace
}

func (o Options) decay() float64 {
	if o.Decay == 0 {
		return score.DefaultDecay
	}
	return o.Decay
}

// Result identifies one ELCA/SLCA: the node with JDewey number Value at
// tree level Level, with its aggregated ranking score.
type Result struct {
	Level int
	Value uint32
	Score float64
}

// Stats reports execution counters for the experiment harness.
type Stats struct {
	Levels      int   // columns processed
	MergeJoins  int   // joins executed as merge joins
	IndexJoins  int   // joins executed as index joins
	RunsScanned int64 // run entries touched by merge joins
	Probes      int64 // binary-search probes issued by index joins
	Matches     int   // contains-all nodes found (before output filtering)
	Results     int
	// JoinOrder is the chosen evaluation order as a permutation of the
	// caller's list indices: JoinOrder[i] is the input position of the
	// i-th list joined (shortest-first, Section III-C).
	JoinOrder []int
}

// Evaluate runs Algorithm 1 over fully-decoded in-memory lists. It is a
// convenience wrapper over EvaluateSources; see there for semantics.
func Evaluate(lists []*colstore.List, opt Options) ([]Result, Stats) {
	rs, st, _ := EvaluateCtx(context.Background(), lists, opt)
	return rs, st
}

// EvaluateCtx is Evaluate honoring a context: cancellation or deadline
// expiry is observed between levels and periodically inside the join
// loops, aborting the evaluation with ctx.Err().
func EvaluateCtx(ctx context.Context, lists []*colstore.List, opt Options) ([]Result, Stats, error) {
	srcs := make([]colstore.Source, len(lists))
	for i, l := range lists {
		if l != nil {
			srcs[i] = l
		}
	}
	return EvaluateSourcesCtx(ctx, srcs, opt)
}

// EvaluateSources runs Algorithm 1 over the given inverted-list sources
// (fully-decoded lists or streaming disk handles — only the columns the
// bottom-up sweep touches are ever decoded) and returns every ELCA or SLCA
// with its score, ordered bottom-up by level and by JDewey number within a
// level. A nil or empty source means some keyword has no occurrence, so
// there are no results.
func EvaluateSources(lists []colstore.Source, opt Options) ([]Result, Stats) {
	rs, st, _ := EvaluateSourcesCtx(context.Background(), lists, opt)
	return rs, st
}

// EvaluateSourcesCtx is EvaluateSources honoring a context (see
// EvaluateCtx). The partial results accumulated before the abort are
// returned alongside the error.
func EvaluateSourcesCtx(ctx context.Context, lists []colstore.Source, opt Options) ([]Result, Stats, error) {
	var st Stats
	if ctx == nil {
		ctx = context.Background()
	}
	if len(lists) == 0 {
		return nil, st, nil
	}
	for _, l := range lists {
		if l == nil || l.Rows() == 0 {
			return nil, st, nil
		}
	}
	// Join ordering (Section III-C): left-deep, shortest list first. The
	// permutation is kept in Stats so callers can name the lists.
	idx := make([]int, len(lists))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return lists[idx[a]].Rows() < lists[idx[b]].Rows() })
	ordered := make([]colstore.Source, len(lists))
	for i, j := range idx {
		ordered[i] = lists[j]
	}
	st.JoinOrder = idx
	if tr := opt.Trace; tr != nil {
		var b strings.Builder
		b.WriteString("rows:")
		total := int64(0)
		for i, l := range ordered {
			if i > 0 {
				b.WriteByte('<')
			}
			fmt.Fprintf(&b, "%d", l.Rows())
			total += int64(l.Rows())
		}
		tr.JoinOrder(b.String(), len(ordered), ordered[0].Rows(), total)
	}

	e := newEvaluator(ctx, ordered, opt)
	if tr := opt.Trace; tr != nil {
		defer func() { tr.CancelChecks(int64(e.ops/ctxCheckStride), ctxCheckStride) }()
	}
	lmin := ordered[0].MaxLevel()
	for _, l := range ordered {
		if l.MaxLevel() < lmin {
			lmin = l.MaxLevel()
		}
	}
	var results []Result
	for lev := lmin; lev >= 1; lev-- {
		if err := ctx.Err(); err != nil {
			return results, st, err
		}
		st.Levels++
		results = e.processLevel(lev, results, &st)
		if e.err != nil {
			return results, st, e.err
		}
	}
	st.Results = len(results)
	return results, st, nil
}

// ctxCheckStride is how many inner-loop iterations pass between context
// checks: frequent enough that cancellation lands within microseconds,
// rare enough to keep the checks off the join's hot-path profile.
const ctxCheckStride = 2048

// evaluator carries the per-query erasure state.
type evaluator struct {
	ctx     context.Context
	err     error // sticky ctx.Err() once cancellation is observed
	ops     int
	lists   []colstore.Source
	erased  []*eraseSet
	curCols []*colstore.Column // columns of the level being processed
	opt     Options
	decay   float64

	lastPlan string // previous dynamic join choice, for plan-switch events
}

func newEvaluator(ctx context.Context, lists []colstore.Source, opt Options) *evaluator {
	e := &evaluator{ctx: ctx, lists: lists, opt: opt, decay: opt.decay()}
	e.erased = make([]*eraseSet, len(lists))
	for i, l := range lists {
		e.erased[i] = newEraseSet(l.Rows())
	}
	return e
}

// tick accounts one unit of inner-loop work and reports whether the
// evaluation must abort (context cancelled).
func (e *evaluator) tick() bool {
	if e.err != nil {
		return true
	}
	e.ops++
	if e.ops%ctxCheckStride != 0 {
		return false
	}
	if err := e.ctx.Err(); err != nil {
		e.err = err
		return true
	}
	return false
}

// match is one joined value at the current level: the run index per list.
type match struct {
	value uint32
	runs  []int32
}

// processLevel joins the level's columns across all lists and applies the
// semantic pruning to each contains-all value found.
func (e *evaluator) processLevel(lev int, results []Result, st *Stats) []Result {
	k := len(e.lists)
	cols := make([]*colstore.Column, k)
	for i, l := range e.lists {
		cols[i] = l.Col(lev)
		if cols[i] == nil || len(cols[i].Runs) == 0 {
			return results
		}
	}
	e.curCols = cols
	// Left-deep join chain seeded by the shortest list's column.
	cur := make([]match, 0, len(cols[0].Runs))
	for ri := range cols[0].Runs {
		m := match{value: cols[0].Runs[ri].Value, runs: make([]int32, 1, k)}
		m.runs[0] = int32(ri)
		cur = append(cur, m)
	}
	for j := 1; j < k && len(cur) > 0; j++ {
		useIndex := false
		switch e.opt.Plan {
		case PlanIndexOnly:
			useIndex = true
		case PlanMergeOnly:
			useIndex = false
		default:
			// Dynamic optimization: the intermediate result shrank enough
			// below the next column to favour probing over scanning.
			useIndex = len(cur)*indexJoinRatio < len(cols[j].Runs)
		}
		if tr := e.opt.Trace; tr != nil {
			kind := "merge"
			if useIndex {
				kind = "index"
			}
			// A plan switch is the dynamic optimizer changing algorithm
			// between consecutive joins; the triggering cardinalities are
			// the intermediate size versus the next column's runs.
			if e.opt.Plan == PlanAuto && e.lastPlan != "" && kind != e.lastPlan {
				tr.PlanSwitch(kind, lev, len(cur), len(cols[j].Runs))
			}
			e.lastPlan = kind
			tr.JoinStep(kind, lev, len(cur), len(cols[j].Runs))
		}
		if useIndex {
			st.IndexJoins++
			cur = e.indexJoin(cur, cols[j], st)
		} else {
			st.MergeJoins++
			cur = e.mergeJoin(cur, cols[j], st)
		}
		if e.err != nil {
			return results
		}
	}
	for _, m := range cur {
		if e.tick() {
			return results
		}
		st.Matches++
		if r, ok := e.applyMatch(lev, m); ok {
			results = append(results, r)
		}
	}
	return results
}

// indexJoin probes the column for each intermediate value (binary search
// over the sorted runs; on disk this is the sparse-index lookup).
func (e *evaluator) indexJoin(cur []match, col *colstore.Column, st *Stats) []match {
	out := cur[:0]
	for _, m := range cur {
		if e.tick() {
			return out
		}
		st.Probes++
		if ri, ok := col.FindValue(m.value); ok {
			m.runs = append(m.runs, int32(ri))
			out = append(out, m)
		}
	}
	return out
}

// mergeJoin advances two cursors over the sorted intermediate values and
// the sorted column runs.
func (e *evaluator) mergeJoin(cur []match, col *colstore.Column, st *Stats) []match {
	out := cur[:0]
	i, j := 0, 0
	for i < len(cur) && j < len(col.Runs) {
		if e.tick() {
			return out
		}
		st.RunsScanned++
		a, b := cur[i].value, col.Runs[j].Value
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			m := cur[i]
			m.runs = append(m.runs, int32(j))
			out = append(out, m)
			i++
			j++
		}
	}
	return out
}

// applyMatch performs the semantic pruning for one contains-all value N at
// level lev (Sections III-B, III-E, III-F):
//
//   - ELCA: N is output iff every list still has a non-erased row under N
//     (the range check |A_k| > Σ|B_i|); all rows under N are erased either
//     way, because any occurrence inside a contains-all subtree is excluded
//     for every ancestor.
//   - SLCA: N is output iff no row under N was erased at a lower level (a
//     previously found LCA below disqualifies N); all rows under N are
//     erased either way, which transitively disqualifies every ancestor of
//     an LCA.
func (e *evaluator) applyMatch(lev int, m match) (Result, bool) {
	k := len(e.lists)
	output := true
	switch e.opt.Semantics {
	case ELCA:
		for i := 0; i < k; i++ {
			run := e.curCols[i].Runs[m.runs[i]]
			er := e.erased[i].erasedInRange(run.Row, run.Row+run.Count)
			if er >= int(run.Count) {
				output = false
				break
			}
		}
	case SLCA:
		for i := 0; i < k; i++ {
			run := e.curCols[i].Runs[m.runs[i]]
			if e.erased[i].erasedInRange(run.Row, run.Row+run.Count) > 0 {
				output = false
				break
			}
		}
	}
	var total float64
	if output {
		for i := 0; i < k; i++ {
			run := e.curCols[i].Runs[m.runs[i]]
			total += e.bestWitness(i, run, lev)
		}
	}
	// Erase all rows under N in every list, regardless of output.
	for i := 0; i < k; i++ {
		run := e.curCols[i].Runs[m.runs[i]]
		for row := run.Row; row < run.Row+run.Count; row++ {
			e.erased[i].erase(row)
		}
	}
	if !output {
		return Result{}, false
	}
	return Result{Level: lev, Value: m.value, Score: total}, true
}

// bestWitness returns the maximum damped local score among the non-erased
// rows of the run: the per-keyword input I_i = max g(v, w_i) * d(l_i - l̃)
// of the ranking function.
func (e *evaluator) bestWitness(i int, run colstore.Run, lev int) float64 {
	l := e.lists[i]
	best := 0.0
	for row := run.Row; row < run.Row+run.Count; row++ {
		if e.tick() {
			return best
		}
		if e.erased[i].isErased(row) {
			continue
		}
		s := float64(l.RowScore(row)) * math.Pow(e.decay, float64(l.RowLen(row)-lev))
		if s > best {
			best = s
		}
	}
	return best
}

// SortByScore orders results by the canonical exec.Compare ordering
// (descending score, deeper levels first), breaking full ties by JDewey
// number — the deterministic order the top-K engines and the experiments
// use.
func SortByScore(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		if c := exec.Compare(rs[i].Score, rs[j].Score, rs[i].Level, rs[j].Level); c != 0 {
			return c < 0
		}
		return rs[i].Value < rs[j].Value
	})
}
