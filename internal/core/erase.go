package core

// eraseSet tracks which rows of one inverted list have been erased by the
// semantic pruning (Section III-B/III-E). Rows sharing a column value are
// contiguous, so the pruning queries are range queries: "how many rows of
// this run are erased" decides ELCA output (|A_k| > Σ|B_i|) and "is any row
// of this run erased" decides SLCA output. A Fenwick tree over erased
// counts answers both in O(log n); each row is erased at most once over the
// whole evaluation, so total maintenance is O(n log n).
type eraseSet struct {
	bits []uint64
	tree []int32 // Fenwick tree, 1-based
}

func newEraseSet(n int) *eraseSet {
	return &eraseSet{
		bits: make([]uint64, (n+63)/64),
		tree: make([]int32, n+1),
	}
}

func (e *eraseSet) isErased(row uint32) bool {
	return e.bits[row/64]&(1<<(row%64)) != 0
}

// erase marks a row and reports whether it was newly erased.
func (e *eraseSet) erase(row uint32) bool {
	w, b := row/64, uint64(1)<<(row%64)
	if e.bits[w]&b != 0 {
		return false
	}
	e.bits[w] |= b
	for i := int(row) + 1; i < len(e.tree); i += i & -i {
		e.tree[i]++
	}
	return true
}

func (e *eraseSet) prefix(n int) int {
	s := 0
	for i := n; i > 0; i -= i & -i {
		s += int(e.tree[i])
	}
	return s
}

// erasedInRange returns the number of erased rows in [lo, hi).
func (e *eraseSet) erasedInRange(lo, hi uint32) int {
	if hi <= lo {
		return 0
	}
	return e.prefix(int(hi)) - e.prefix(int(lo))
}
