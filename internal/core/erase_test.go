package core

import (
	"math/rand"
	"testing"
)

func TestEraseSetBasics(t *testing.T) {
	e := newEraseSet(10)
	if e.isErased(3) || e.erasedInRange(0, 10) != 0 {
		t.Fatal("fresh set must be empty")
	}
	if !e.erase(3) {
		t.Fatal("first erase must report true")
	}
	if e.erase(3) {
		t.Fatal("second erase of the same row must report false")
	}
	if !e.isErased(3) || e.isErased(4) {
		t.Fatal("bit state wrong")
	}
	if e.erasedInRange(0, 10) != 1 || e.erasedInRange(3, 4) != 1 || e.erasedInRange(4, 10) != 0 {
		t.Fatal("range counts wrong")
	}
	if e.erasedInRange(5, 5) != 0 || e.erasedInRange(7, 2) != 0 {
		t.Fatal("empty/inverted ranges must count zero")
	}
}

// TestEraseSetAgainstReference fuzzes the Fenwick-backed set against a
// plain boolean slice.
func TestEraseSetAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 500
	e := newEraseSet(n)
	ref := make([]bool, n)
	for op := 0; op < 5000; op++ {
		if rng.Intn(2) == 0 {
			row := uint32(rng.Intn(n))
			was := ref[row]
			ref[row] = true
			if e.erase(row) == was {
				t.Fatalf("erase(%d) newness mismatch", row)
			}
		} else {
			lo := uint32(rng.Intn(n))
			hi := lo + uint32(rng.Intn(n-int(lo)+1))
			want := 0
			for i := lo; i < hi; i++ {
				if ref[i] {
					want++
				}
			}
			if got := e.erasedInRange(lo, hi); got != want {
				t.Fatalf("erasedInRange(%d, %d) = %d, want %d", lo, hi, got, want)
			}
		}
	}
}
