package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/colstore"
	"repro/internal/jdewey"
	"repro/internal/naive"
	"repro/internal/occur"
	"repro/internal/testutil"
	"repro/internal/xmltree"
)

// env bundles everything needed to evaluate queries over one document.
type env struct {
	doc *xmltree.Document
	m   *occur.Map
}

func newEnv(doc *xmltree.Document) *env {
	jdewey.Assign(doc, 0)
	return &env{doc: doc, m: occur.Extract(doc)}
}

func (e *env) lists(keywords []string) []*colstore.List {
	out := make([]*colstore.List, len(keywords))
	for i, w := range keywords {
		if occs := e.m.Terms[w]; len(occs) > 0 {
			out[i] = colstore.BuildList(w, occs)
		}
	}
	return out
}

// resolve maps engine results to nodes for comparison with the oracle.
func (e *env) resolve(t *testing.T, rs []Result) map[*xmltree.Node]float64 {
	t.Helper()
	out := make(map[*xmltree.Node]float64, len(rs))
	for _, r := range rs {
		n := e.doc.NodeByJDewey(r.Level, r.Value)
		if n == nil {
			t.Fatalf("result (%d, %d) resolves to no node", r.Level, r.Value)
		}
		if _, dup := out[n]; dup {
			t.Fatalf("result %v reported twice", n.Dewey)
		}
		out[n] = r.Score
	}
	return out
}

func assertMatchesOracle(t *testing.T, e *env, keywords []string, sem Semantics, plan JoinPlan) {
	t.Helper()
	nsem := naive.ELCA
	if sem == SLCA {
		nsem = naive.SLCA
	}
	want := naive.Evaluate(e.doc, e.m, keywords, nsem, 0)
	rs, _ := Evaluate(e.lists(keywords), Options{Semantics: sem, Plan: plan})
	got := e.resolve(t, rs)
	if len(got) != len(want) {
		t.Fatalf("%v %v plan %d: %d results, oracle has %d", keywords, sem, plan, len(got), len(want))
	}
	for _, w := range want {
		s, ok := got[w.Node]
		if !ok {
			t.Fatalf("%v %v: missing oracle result %v", keywords, sem, w.Node.Dewey)
		}
		if math.Abs(s-w.Score) > 1e-6*(1+math.Abs(w.Score)) {
			t.Fatalf("%v %v: node %v score %v, oracle %v", keywords, sem, w.Node.Dewey, s, w.Score)
		}
	}
}

// paperDoc is a document whose {xml, data} results are worked out by hand,
// mirroring the structure of the paper's running example: the lowest
// subtrees containing both keywords are ELCAs, their ancestors are checked
// for leftover witnesses.
func paperDoc() *xmltree.Document {
	return xmltree.NewBuilder().
		Open("bib").
		Open("book"). // 1.1: contains xml+data twice below
		Leaf("title", "xml").
		Open("chapter"). // 1.1.2: ELCA (xml in 1.1.2.1, data in 1.1.2.2)
		Leaf("sec", "xml basics").
		Leaf("sec", "data models").
		Close().
		Close().
		Open("book"). // 1.2: only data
		Leaf("title", "data warehousing").
		Close().
		Open("book"). // 1.3: ELCA (xml in title, data in note)
		Leaf("title", "xml processing").
		Leaf("note", "big data").
		Close().
		Close().
		Doc()
}

func TestELCAWorkedExample(t *testing.T) {
	e := newEnv(paperDoc())
	rs, st := Evaluate(e.lists([]string{"xml", "data"}), Options{Semantics: ELCA})
	got := e.resolve(t, rs)
	chapter := e.doc.Root.Children[0].Children[1]
	book1 := e.doc.Root.Children[0]
	book3 := e.doc.Root.Children[2]
	root := e.doc.Root
	// chapter and book3 are the lowest ELCAs. book1 still has the xml
	// witness in its title but its only data occurrences are inside the
	// chapter ELCA, so book1 is NOT an ELCA. The root has the leftover
	// data witness of book2's title and xml witness of... none: both xml
	// occurrences outside ELCAs are... book1's title xml has lowest
	// contains-all ancestor book1? book1 contains xml (title, chapter) and
	// data (chapter) => book1 is contains-all, so the title witness
	// attributes to book1, not the root. Root keeps only book2's data.
	if len(got) != 2 {
		t.Fatalf("ELCA set = %v, want {chapter, book3}", keysOf(got))
	}
	for _, n := range []*xmltree.Node{chapter, book3} {
		if _, ok := got[n]; !ok {
			t.Fatalf("missing ELCA %v", n.Dewey)
		}
	}
	for _, n := range []*xmltree.Node{book1, root} {
		if _, ok := got[n]; ok {
			t.Fatalf("%v must not be an ELCA", n.Dewey)
		}
	}
	if st.Results != 2 || st.Levels == 0 {
		t.Errorf("stats = %+v", st)
	}
	assertMatchesOracle(t, e, []string{"xml", "data"}, ELCA, PlanAuto)
}

func TestSLCAWorkedExample(t *testing.T) {
	e := newEnv(paperDoc())
	rs, _ := Evaluate(e.lists([]string{"xml", "data"}), Options{Semantics: SLCA})
	got := e.resolve(t, rs)
	chapter := e.doc.Root.Children[0].Children[1]
	book3 := e.doc.Root.Children[2]
	if len(got) != 2 {
		t.Fatalf("SLCA set size = %d, want 2", len(got))
	}
	for _, n := range []*xmltree.Node{chapter, book3} {
		if _, ok := got[n]; !ok {
			t.Fatalf("missing SLCA %v", n.Dewey)
		}
	}
	assertMatchesOracle(t, e, []string{"xml", "data"}, SLCA, PlanAuto)
}

// TestExclusionCascade reproduces the subtle case where a node contains all
// keywords only through subtrees that are themselves contains-all: its
// leftover occurrences are excluded for every ancestor, so the ancestor is
// not an ELCA even though each keyword "appears" under it outside an ELCA.
func TestExclusionCascade(t *testing.T) {
	// root(N) - u' - { u''(a, b), y(a) }, and x(b) elsewhere under N.
	// u'' is the only ELCA; u' is contains-all (not ELCA: no b left);
	// N must NOT be an ELCA: its only a-witnesses sit inside the
	// contains-all u'.
	doc := xmltree.NewBuilder().
		Open("n").
		Open("uprime").
		Open("udoubleprime").Text("alpha beta").Close().
		Leaf("y", "alpha").
		Close().
		Leaf("x", "beta").
		Close().
		Doc()
	e := newEnv(doc)
	rs, _ := Evaluate(e.lists([]string{"alpha", "beta"}), Options{Semantics: ELCA})
	got := e.resolve(t, rs)
	udp := doc.Root.Children[0].Children[0]
	if len(got) != 1 {
		t.Fatalf("ELCA set = %v, want exactly {u''}", keysOf(got))
	}
	if _, ok := got[udp]; !ok {
		t.Fatal("u'' must be the ELCA")
	}
	assertMatchesOracle(t, e, []string{"alpha", "beta"}, ELCA, PlanAuto)
	assertMatchesOracle(t, e, []string{"alpha", "beta"}, SLCA, PlanAuto)
}

func keysOf(m map[*xmltree.Node]float64) []string {
	var out []string
	for n := range m {
		out = append(out, n.Dewey.String())
	}
	return out
}

func TestSingleKeyword(t *testing.T) {
	e := newEnv(paperDoc())
	// ELCA of a single keyword: every node directly containing it.
	assertMatchesOracle(t, e, []string{"xml"}, ELCA, PlanAuto)
	assertMatchesOracle(t, e, []string{"xml"}, SLCA, PlanAuto)
	rs, _ := Evaluate(e.lists([]string{"xml"}), Options{Semantics: ELCA})
	if len(rs) != 3 {
		t.Fatalf("single-keyword ELCA count = %d, want 3 direct containers", len(rs))
	}
}

func TestMissingAndEmptyInput(t *testing.T) {
	e := newEnv(paperDoc())
	if rs, _ := Evaluate(e.lists([]string{"xml", "absent"}), Options{}); rs != nil {
		t.Error("missing keyword must yield no results")
	}
	if rs, _ := Evaluate(nil, Options{}); rs != nil {
		t.Error("empty query must yield no results")
	}
	if rs, _ := Evaluate([]*colstore.List{nil}, Options{}); rs != nil {
		t.Error("nil list must yield no results")
	}
}

func TestKeywordOnlyAtRoot(t *testing.T) {
	doc := xmltree.NewBuilder().
		Open("r").Text("alpha").
		Leaf("c", "beta").
		Close().
		Doc()
	e := newEnv(doc)
	assertMatchesOracle(t, e, []string{"alpha", "beta"}, ELCA, PlanAuto)
	rs, _ := Evaluate(e.lists([]string{"alpha", "beta"}), Options{Semantics: ELCA})
	if len(rs) != 1 || rs[0].Level != 1 {
		t.Fatalf("root ELCA expected, got %v", rs)
	}
}

func TestAllKeywordsInOneLeaf(t *testing.T) {
	doc := xmltree.NewBuilder().
		Open("r").
		Open("mid").Leaf("leaf", "alpha beta gamma").Close().
		Close().
		Doc()
	e := newEnv(doc)
	q := []string{"alpha", "beta", "gamma"}
	assertMatchesOracle(t, e, q, ELCA, PlanAuto)
	assertMatchesOracle(t, e, q, SLCA, PlanAuto)
	rs, _ := Evaluate(e.lists(q), Options{Semantics: SLCA})
	if len(rs) != 1 || rs[0].Level != 3 {
		t.Fatalf("leaf SLCA expected, got %v", rs)
	}
}

func TestDuplicateKeywords(t *testing.T) {
	e := newEnv(paperDoc())
	assertMatchesOracle(t, e, []string{"xml", "xml"}, ELCA, PlanAuto)
	assertMatchesOracle(t, e, []string{"data", "data", "data"}, SLCA, PlanAuto)
}

func TestDepthOneDocument(t *testing.T) {
	doc := xmltree.NewBuilder().Open("r").Text("alpha beta").Close().Doc()
	e := newEnv(doc)
	rs, _ := Evaluate(e.lists([]string{"alpha", "beta"}), Options{Semantics: ELCA})
	if len(rs) != 1 || rs[0].Level != 1 {
		t.Fatalf("depth-1 ELCA = %v", rs)
	}
	assertMatchesOracle(t, e, []string{"alpha", "beta"}, SLCA, PlanAuto)
}

// TestCrossEngineEquivalenceRandom is the main property test: on random
// documents and random queries, every plan mode and both semantics must
// equal the oracle, scores included.
func TestCrossEngineEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	plans := []JoinPlan{PlanAuto, PlanMergeOnly, PlanIndexOnly}
	for trial := 0; trial < 120; trial++ {
		params := testutil.SmallParams()
		if trial%3 == 0 {
			params = testutil.MediumParams()
		}
		e := newEnv(testutil.RandomDoc(rng, params))
		for _, k := range []int{1, 2, 3, 4, 5} {
			q := testutil.RandomQuery(rng, params.Vocab, k)
			for _, sem := range []Semantics{ELCA, SLCA} {
				assertMatchesOracle(t, e, q, sem, plans[trial%3])
			}
		}
	}
}

// TestPlansAgree verifies that all three join plans produce identical
// output on the same inputs (they must differ only in cost).
func TestPlansAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 40; trial++ {
		e := newEnv(testutil.RandomDoc(rng, testutil.MediumParams()))
		q := testutil.RandomQuery(rng, testutil.Vocab(20), 3)
		var ref []Result
		for pi, plan := range []JoinPlan{PlanAuto, PlanMergeOnly, PlanIndexOnly} {
			rs, _ := Evaluate(e.lists(q), Options{Semantics: ELCA, Plan: plan})
			if pi == 0 {
				ref = rs
				continue
			}
			if len(rs) != len(ref) {
				t.Fatalf("plan %d: %d results vs %d", plan, len(rs), len(ref))
			}
			for i := range rs {
				if rs[i] != ref[i] {
					t.Fatalf("plan %d result %d: %+v vs %+v", plan, i, rs[i], ref[i])
				}
			}
		}
	}
}

func TestForcedPlansUseForcedJoins(t *testing.T) {
	e := newEnv(paperDoc())
	q := []string{"xml", "data"}
	_, st := Evaluate(e.lists(q), Options{Plan: PlanMergeOnly})
	if st.IndexJoins != 0 || st.MergeJoins == 0 {
		t.Errorf("merge-only ran %d index joins, %d merge joins", st.IndexJoins, st.MergeJoins)
	}
	_, st = Evaluate(e.lists(q), Options{Plan: PlanIndexOnly})
	if st.MergeJoins != 0 || st.IndexJoins == 0 {
		t.Errorf("index-only ran %d merge joins, %d index joins", st.MergeJoins, st.IndexJoins)
	}
}

// TestDynamicPlanPrefersIndexJoinWhenSkewed checks the Section III-C
// behaviour: a tiny list joined against a huge one should go through the
// index join under PlanAuto.
func TestDynamicPlanPrefersIndexJoinWhenSkewed(t *testing.T) {
	b := xmltree.NewBuilder().Open("root")
	b.Open("special").Text("needle common").Close()
	for i := 0; i < 2000; i++ {
		b.Leaf("item", "common stuff")
	}
	doc := b.Close().Doc()
	e := newEnv(doc)
	_, st := Evaluate(e.lists([]string{"needle", "common"}), Options{Plan: PlanAuto})
	if st.IndexJoins == 0 {
		t.Errorf("expected index joins for skewed frequencies, stats %+v", st)
	}
}

func TestSortByScore(t *testing.T) {
	rs := []Result{
		{Level: 2, Value: 9, Score: 1.0},
		{Level: 3, Value: 1, Score: 2.0},
		{Level: 3, Value: 5, Score: 1.0},
		{Level: 2, Value: 1, Score: 1.0},
	}
	SortByScore(rs)
	want := []Result{
		{Level: 3, Value: 1, Score: 2.0},
		{Level: 3, Value: 5, Score: 1.0},
		{Level: 2, Value: 1, Score: 1.0},
		{Level: 2, Value: 9, Score: 1.0},
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("order[%d] = %+v, want %+v", i, rs[i], want[i])
		}
	}
}

// TestResultsBottomUpOrder checks the documented output order: levels
// descending (deepest first), values ascending within a level.
func TestResultsBottomUpOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 20; trial++ {
		e := newEnv(testutil.RandomDoc(rng, testutil.MediumParams()))
		q := testutil.RandomQuery(rng, testutil.Vocab(20), 2)
		rs, _ := Evaluate(e.lists(q), Options{Semantics: ELCA})
		for i := 1; i < len(rs); i++ {
			a, b := rs[i-1], rs[i]
			if a.Level < b.Level || (a.Level == b.Level && a.Value >= b.Value) {
				t.Fatalf("results out of bottom-up order at %d: %+v then %+v", i, a, b)
			}
		}
	}
}
