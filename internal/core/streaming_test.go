package core

import (
	"math/rand"
	"testing"

	"repro/internal/colstore"
	"repro/internal/jdewey"
	"repro/internal/occur"
	"repro/internal/testutil"
	"repro/internal/xmltree"
)

// handlesFor round-trips each keyword's list through the on-disk blob and
// returns streaming handles.
func handlesFor(t *testing.T, m *occur.Map, keywords []string) []colstore.Source {
	t.Helper()
	out := make([]colstore.Source, len(keywords))
	for i, w := range keywords {
		occs := m.Terms[w]
		if len(occs) == 0 {
			continue
		}
		blob, _ := colstore.BuildList(w, occs).AppendEncoded(nil)
		h, err := colstore.NewHandle(w, blob)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = h
	}
	return out
}

// TestStreamingMatchesInMemory: Algorithm 1 over streaming disk handles
// must equal the in-memory evaluation exactly, for both semantics and all
// plans.
func TestStreamingMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		doc := testutil.RandomDoc(rng, testutil.MediumParams())
		e := newEnv(doc)
		for _, k := range []int{1, 2, 3} {
			q := testutil.RandomQuery(rng, testutil.Vocab(20), k)
			for _, sem := range []Semantics{ELCA, SLCA} {
				want, _ := Evaluate(e.lists(q), Options{Semantics: sem})
				got, _ := EvaluateSources(handlesFor(t, e.m, q), Options{Semantics: sem})
				if len(got) != len(want) {
					t.Fatalf("%v sem=%v: %d results vs %d", q, sem, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v sem=%v result %d: %+v vs %+v", q, sem, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestStreamingDecodesOnlyNeededColumns verifies the Section III-B I/O
// property: the sweep starts at min(l_m) over the lists, so a deep list
// joined with a shallow one never decodes its deep columns.
func TestStreamingDecodesOnlyNeededColumns(t *testing.T) {
	b := xmltree.NewBuilder().Open("root")
	b.Open("shallow").Text("alpha").Close() // alpha only at level 2
	b.Open("chain")
	for i := 0; i < 10; i++ {
		b.Open("n")
	}
	b.Text("beta alpha") // beta (and alpha) deep at level 12
	for i := 0; i < 10; i++ {
		b.Close()
	}
	b.Close()
	doc := b.Close().Doc()
	jdewey.Assign(doc, 0)
	m := occur.Extract(doc)

	srcs := handlesFor(t, m, []string{"alpha", "beta"})
	rs, st := EvaluateSources(srcs, Options{})
	if len(rs) == 0 || st.Levels == 0 {
		t.Fatalf("no results: %+v", st)
	}
	alpha := srcs[0].(*colstore.Handle)
	beta := srcs[1].(*colstore.Handle)
	// lmin = alpha's max level (13, it has the deep occurrence too)...
	// alpha occurs at level 2 and level 12, beta only at 12, so the sweep
	// runs columns 12..1 — but if we flip the query so the shallow list
	// bounds the sweep, deep columns stay cold:
	if alpha.MaxLevel() != 12 || beta.MaxLevel() != 12 {
		t.Fatalf("levels: alpha %d beta %d", alpha.MaxLevel(), beta.MaxLevel())
	}

	// A keyword confined to level 2 caps the sweep at 2 columns.
	b2 := xmltree.NewBuilder().Open("root")
	b2.Open("shallow").Text("gamma").Close()
	b2.Open("chain")
	for i := 0; i < 10; i++ {
		b2.Open("n")
	}
	b2.Text("delta")
	for i := 0; i < 10; i++ {
		b2.Close()
	}
	b2.Close()
	doc2 := b2.Close().Doc()
	jdewey.Assign(doc2, 0)
	m2 := occur.Extract(doc2)
	srcs2 := handlesFor(t, m2, []string{"gamma", "delta"})
	_, _ = EvaluateSources(srcs2, Options{})
	gamma := srcs2[0].(*colstore.Handle)
	delta := srcs2[1].(*colstore.Handle)
	if gamma.MaxLevel() != 2 {
		t.Fatalf("gamma max level = %d", gamma.MaxLevel())
	}
	if got := delta.ColumnsDecoded(); got > 2 {
		t.Errorf("deep list decoded %d columns; the level-2 keyword caps the sweep at 2", got)
	}
	if delta.BytesRead() <= 0 {
		t.Error("bytes-read accounting missing")
	}
	// And the full 12-level evaluation reads strictly more of the deep
	// list than the capped one.
	full := srcs[1].(*colstore.Handle)
	if full.ColumnsDecoded() <= delta.ColumnsDecoded() {
		t.Errorf("capped sweep decoded %d columns, uncapped %d", delta.ColumnsDecoded(), full.ColumnsDecoded())
	}
	_ = beta
}

// TestHandleFromStore exercises the Store.Handle path over both in-memory
// and disk-opened stores.
func TestHandleFromStore(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	doc := testutil.RandomDoc(rng, testutil.MediumParams())
	e := newEnv(doc)
	s := colstore.Build(e.m)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	opened, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	q := testutil.RandomQuery(rng, testutil.Vocab(20), 2)
	var mem, disk []colstore.Source
	for _, w := range q {
		hm, hd := s.Handle(w), opened.Handle(w)
		if (hm == nil) != (hd == nil) {
			t.Fatalf("handle availability differs for %q", w)
		}
		if hm == nil {
			return // keyword missing: nothing to compare
		}
		mem = append(mem, hm)
		disk = append(disk, hd)
	}
	a, _ := EvaluateSources(mem, Options{})
	b, _ := EvaluateSources(disk, Options{})
	if len(a) != len(b) {
		t.Fatalf("in-memory handle: %d results, disk handle: %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if s.Handle("zzz-missing") != nil || opened.Handle("zzz-missing") != nil {
		t.Error("missing term must yield nil handle")
	}
}
