// Package tokenize provides the text-analysis substrate (the role Lucene
// plays in the paper's implementation): lowercasing word tokenization with a
// small English stopword list, and term-frequency accounting helpers used by
// the index builders.
package tokenize

import (
	"strings"
	"unicode"
)

// stopwords is a compact English stopword list; stopwords never enter the
// inverted index, matching standard IR practice.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "if": true, "in": true,
	"into": true, "is": true, "it": true, "no": true, "not": true, "of": true,
	"on": true, "or": true, "such": true, "that": true, "the": true,
	"their": true, "then": true, "there": true, "these": true, "they": true,
	"this": true, "to": true, "was": true, "will": true, "with": true,
}

// IsStopword reports whether the (already lowercased) term is a stopword.
func IsStopword(term string) bool { return stopwords[term] }

// Tokens splits text into lowercase alphanumeric terms, dropping stopwords
// and empty tokens.
func Tokens(text string) []string {
	if text == "" {
		return nil
	}
	var out []string
	Each(text, func(term string) { out = append(out, term) })
	return out
}

// Each calls fn for every indexable term of text, avoiding the intermediate
// slice of Tokens. Terms are lowercase runs of letters and digits.
func Each(text string, fn func(term string)) {
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		term := strings.ToLower(text[start:end])
		start = -1
		if !stopwords[term] {
			fn(term)
		}
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(text))
}

// TermCounts returns the term-frequency map of text.
func TermCounts(text string) map[string]int {
	var m map[string]int
	Each(text, func(term string) {
		if m == nil {
			m = make(map[string]int)
		}
		m[term]++
	})
	return m
}

// Normalize lowercases and validates a query keyword, returning the empty
// string for terms that could never be in the index (stopwords, empties,
// terms with no letters or digits).
func Normalize(keyword string) string {
	toks := Tokens(keyword)
	if len(toks) != 1 {
		return ""
	}
	return toks[0]
}
