package tokenize

import (
	"reflect"
	"testing"
)

func TestTokens(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"XML data management", []string{"xml", "data", "management"}},
		{"Top-K Keyword Search in XML Databases", []string{"top", "k", "keyword", "search", "xml", "databases"}},
		{"the of and", nil},
		{"  spaces\tand\nnewlines ", []string{"spaces", "newlines"}},
		{"IEEE 802.11b", []string{"ieee", "802", "11b"}},
		{"naïve café", []string{"naïve", "café"}},
	}
	for _, c := range cases {
		if got := Tokens(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokens(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTermCounts(t *testing.T) {
	m := TermCounts("xml data xml XML the")
	if m["xml"] != 3 || m["data"] != 1 {
		t.Errorf("TermCounts = %v", m)
	}
	if _, ok := m["the"]; ok {
		t.Error("stopword counted")
	}
	if TermCounts("") != nil {
		t.Error("empty text must yield nil map")
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"XML", "xml"},
		{"  Data ", "data"},
		{"the", ""},       // stopword
		{"", ""},          // empty
		{"two words", ""}, // not a single keyword
		{"!!!", ""},       // no letters/digits
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || IsStopword("xml") {
		t.Error("stopword classification wrong")
	}
}

func TestEachMatchesTokens(t *testing.T) {
	text := "Keyword search over XML; the join-based algorithm, 2010."
	var got []string
	Each(text, func(s string) { got = append(got, s) })
	if !reflect.DeepEqual(got, Tokens(text)) {
		t.Errorf("Each and Tokens disagree: %v vs %v", got, Tokens(text))
	}
}
