package colstore

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Cache is a size-bounded LRU over decoded inverted lists, shared by every
// snapshot of one index. Disk-opened stores route their lazy decodes
// through it instead of memoizing each list forever: the decoded form of a
// term's on-disk blob is immutable for the lifetime of the index (an
// incremental mutation removes the term's lexicon entry from the new
// snapshot before rebuilding it in memory, so a stale cached decode can
// never be served), which makes sharing one cache across concurrently
// serving snapshots safe.
//
// The bound is on decoded bytes, the same accounting the observability
// counters report, and eviction is strict LRU. Hits, misses, and evictions
// are recorded on the obs.StoreCounters installed with SetObs.
type Cache struct {
	mu    sync.Mutex
	max   int64
	cur   int64
	ll    *list.List // front = most recently used
	index map[cacheKey]*list.Element
	obsC  *obs.StoreCounters
}

type cacheKey struct {
	term string
	tk   bool // false: JDewey-ordered list; true: score-sorted list
}

type cacheEntry struct {
	key   cacheKey
	val   any // *List or *TKList
	bytes int64
}

// DefaultCacheBytes is the decoded-bytes bound installed on indexes that
// do not choose their own: large enough that a working set of hot lists
// stays decoded, small enough that an unbounded lexicon cannot exhaust
// memory.
const DefaultCacheBytes = 64 << 20

// NewCache returns a cache bounded at maxBytes of decoded list bytes.
// maxBytes <= 0 selects DefaultCacheBytes.
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cache{max: maxBytes, ll: list.New(), index: map[cacheKey]*list.Element{}}
}

// SetObs installs the counters cache hits/misses/evictions are recorded
// on (nil disables recording).
func (c *Cache) SetObs(o *obs.StoreCounters) {
	c.mu.Lock()
	c.obsC = o
	c.mu.Unlock()
}

// get returns the cached decode for key, marking it most recently used,
// and records the hit or miss.
func (c *Cache) get(k cacheKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[k]
	if !ok {
		c.obsC.RecordCacheMiss()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.obsC.RecordCacheHit()
	return el.Value.(*cacheEntry).val, true
}

// put inserts (or refreshes) a decoded list of the given decoded size,
// evicting least-recently-used entries until the bound holds again. An
// entry larger than the whole bound is still admitted alone — the caller
// already paid for the decode, and a cache that rejects it would thrash on
// every access to that term.
func (c *Cache) put(k cacheKey, v any, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		e := el.Value.(*cacheEntry)
		c.cur += bytes - e.bytes
		e.val, e.bytes = v, bytes
		c.ll.MoveToFront(el)
	} else {
		c.index[k] = c.ll.PushFront(&cacheEntry{key: k, val: v, bytes: bytes})
		c.cur += bytes
	}
	var evicted int64
	for c.cur > c.max && c.ll.Len() > 1 {
		back := c.ll.Back()
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.index, e.key)
		c.cur -= e.bytes
		evicted++
	}
	c.obsC.RecordCacheEvictions(evicted)
}

// Len returns the number of cached decoded lists.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the decoded bytes currently held.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}
