package colstore

import (
	"fmt"
	"math"
	"sync"
)

// TKSource is the access interface the join-based top-K engine (package
// topk) reads a score-sorted list through. TKList serves fully-decoded
// in-memory data; TKHandle decodes (group, level) columns lazily from the
// on-disk blob, so a query that terminates early never touches the columns
// it never reached — the disk shape of the Section IV-C segment cursors.
type TKSource interface {
	// NumRows returns the total occurrence count.
	NumRows() int
	// MaxLevel returns the longest sequence length.
	MaxLevel() int
	// GroupCount returns the number of length groups.
	GroupCount() int
	// GroupLen returns the sequence length of group g.
	GroupLen(g int) int
	// GroupSize returns the row count of group g.
	GroupSize(g int) int
	// Score returns the (undamped) local score of row i of group g; rows
	// are score-descending within a group.
	Score(g, i int) float32
	// Value returns the JDewey number of row i of group g at the 1-based
	// level (level <= GroupLen(g)).
	Value(g, i, level int) uint32
	// HasLen reports whether any group has exactly the given length.
	HasLen(n int) bool
	// MaxColScore returns per level the maximum damped column score
	// (indexed by level, entry 0 unused).
	MaxColScore(decay float64) []float64
}

// TKList implements TKSource eagerly.

// MaxLevel returns the longest sequence length.
func (l *TKList) MaxLevel() int { return l.MaxLen }

// GroupCount returns the number of length groups.
func (l *TKList) GroupCount() int { return len(l.Groups) }

// GroupLen returns the sequence length of group g.
func (l *TKList) GroupLen(g int) int { return l.Groups[g].Len }

// GroupSize returns the row count of group g.
func (l *TKList) GroupSize(g int) int { return len(l.Groups[g].Rows) }

// Score returns the local score of row i of group g.
func (l *TKList) Score(g, i int) float32 { return l.Groups[g].Rows[i].Score }

// Value returns the JDewey number of row i of group g at the given level.
func (l *TKList) Value(g, i, level int) uint32 { return l.Groups[g].Rows[i].Seq[level-1] }

// TKHandle is the streaming view over a score-sorted list blob: group
// shapes and score arrays decode eagerly (the cursors order pulls by
// score), value columns only when a level is actually visited. Safe for
// concurrent use.
type TKHandle struct {
	word string
	blob []byte
	hdr  *tkHeader

	mu      sync.Mutex
	cols    [][][]uint32 // [group][level-1] -> decoded values
	decoded int
}

// NewTKHandle parses the blob header and returns the streaming view.
func NewTKHandle(word string, blob []byte) (*TKHandle, error) {
	h, err := decodeTKHeader(blob)
	if err != nil {
		return nil, fmt.Errorf("colstore: tk handle %q: %w", word, err)
	}
	cols := make([][][]uint32, len(h.lens))
	for g := range cols {
		cols[g] = make([][]uint32, h.lens[g])
	}
	return &TKHandle{word: word, blob: blob, hdr: h, cols: cols}, nil
}

// Word returns the keyword the handle serves.
func (h *TKHandle) Word() string { return h.word }

// NumRows returns the total occurrence count.
func (h *TKHandle) NumRows() int {
	n := 0
	for _, s := range h.hdr.scores {
		n += len(s)
	}
	return n
}

// MaxLevel returns the longest sequence length.
func (h *TKHandle) MaxLevel() int { return h.hdr.maxLen }

// GroupCount returns the number of length groups.
func (h *TKHandle) GroupCount() int { return len(h.hdr.lens) }

// GroupLen returns the sequence length of group g.
func (h *TKHandle) GroupLen(g int) int { return h.hdr.lens[g] }

// GroupSize returns the row count of group g.
func (h *TKHandle) GroupSize(g int) int { return len(h.hdr.scores[g]) }

// Score returns the local score of row i of group g.
func (h *TKHandle) Score(g, i int) float32 { return h.hdr.scores[g][i] }

// Value returns the JDewey number of row i of group g at the given level,
// decoding that (group, level) column on first access. Corrupted payloads
// surface as zero values; Verify reports the underlying error.
func (h *TKHandle) Value(g, i, level int) uint32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	col := h.cols[g][level-1]
	if col == nil {
		data := h.blob[h.hdr.colOff[g][level-1] : h.hdr.colOff[g][level-1]+h.hdr.colLen[g][level-1]]
		var err error
		col, err = decodeTKColumn(data, len(h.hdr.scores[g]))
		if err != nil {
			col = make([]uint32, len(h.hdr.scores[g]))
		}
		h.cols[g][level-1] = col
		h.decoded++
	}
	return col[i]
}

// ColumnsDecoded reports how many (group, level) columns have been
// materialized — the I/O-saving accounting for early-terminating top-K
// queries.
func (h *TKHandle) ColumnsDecoded() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.decoded
}

// HasLen reports whether any group has exactly the given length.
func (h *TKHandle) HasLen(n int) bool {
	for _, l := range h.hdr.lens {
		if l == n {
			return true
		}
	}
	return false
}

// MaxColScore returns per level the maximum damped column score.
func (h *TKHandle) MaxColScore(decay float64) []float64 {
	out := make([]float64, h.hdr.maxLen+1)
	for g, scores := range h.hdr.scores {
		if len(scores) == 0 {
			continue
		}
		top := float64(scores[0])
		for lev := 1; lev <= h.hdr.lens[g]; lev++ {
			s := top * math.Pow(decay, float64(h.hdr.lens[g]-lev))
			if s > out[lev] {
				out[lev] = s
			}
		}
	}
	return out
}

var (
	_ TKSource = (*TKList)(nil)
	_ TKSource = (*TKHandle)(nil)
)
