package colstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/occur"
)

// File names inside an index directory. The paper stores inverted lists
// directly on disk rather than inside a column DBMS because the lexicon is
// huge and most lists are short (Section V); we mirror that with one blob
// file per list family plus a lexicon of offsets. Format v2 suffixes the
// names with a generation number and commits via CURRENT (see durable.go);
// v1 used these names directly.
const (
	fileColumns = "postings.col" // JDewey-ordered column lists
	fileTopK    = "postings.tk"  // score-sorted, length-grouped lists
	fileLexicon = "lexicon"
	magicV1     = "XKWCOL1\n"
	magicV2     = "XKWCOL2\n"
)

// Store is the column-oriented index for one document: every keyword's
// JDewey-ordered column list and its score-sorted top-K variant.
type Store struct {
	N     int // element-node count of the indexed document
	Depth int

	mu      sync.Mutex
	lists   map[string]*List
	tklists map[string]*TKList

	// Lazily decoded on-disk form (nil for purely in-memory stores).
	colBlob []byte
	tkBlob  []byte
	lex     map[string]lexEntry

	// Degradation state of a disk-opened store: terms whose on-disk bytes
	// failed their checksum or structural validation are quarantined (they
	// read as absent) instead of poisoning the whole index, and file-level
	// damage that could not be attributed to one term is recorded.
	format      int // 0 in-memory, 1 legacy, 2 checksummed
	quarantined map[string]error
	fileDamage  []string

	// Read-path observability counters (nil = disabled; see SetObs).
	obsC *obs.StoreCounters

	// Optional shared size-bounded cache for lazy decodes (see SetCache).
	// When installed, disk decodes land here instead of in the unbounded
	// lists/tklists memos; snapshot clones share it.
	cache *Cache

	// fallback, when set, makes this store a delta overlay: terms present
	// in the own in-memory maps are served from them, every other term is
	// delegated to the fallback (the immutable base store). Set only by
	// NewOverlay; immutable afterwards, so reading it needs no lock.
	fallback *Store
}

type lexEntry struct {
	colOff, colLen uint64
	tkOff, tkLen   uint64
	freq           uint64
	colCRC, tkCRC  uint32
	hasCRC         bool
}

// Build constructs an in-memory store from an occurrence map. Per-keyword
// lists are independent, so they are built concurrently across all CPUs;
// the result is identical to a sequential build.
func Build(m *occur.Map) *Store {
	return BuildWorkers(m, runtime.GOMAXPROCS(0))
}

// BuildWorkers is Build with an explicit worker count (1 = sequential),
// exposed for the construction benchmarks.
func BuildWorkers(m *occur.Map, workers int) *Store {
	s := &Store{
		N:       m.N,
		Depth:   m.Depth,
		lists:   make(map[string]*List, len(m.Terms)),
		tklists: make(map[string]*TKList, len(m.Terms)),
	}
	if workers <= 1 || len(m.Terms) < 64 {
		for term, occs := range m.Terms {
			s.lists[term] = BuildList(term, occs)
			s.tklists[term] = BuildTKList(term, occs)
		}
		return s
	}
	type job struct {
		term string
		occs []occur.Occ
	}
	type built struct {
		term string
		l    *List
		tk   *TKList
	}
	jobs := make(chan job, workers)
	out := make(chan built, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				out <- built{term: j.term, l: BuildList(j.term, j.occs), tk: BuildTKList(j.term, j.occs)}
			}
		}()
	}
	go func() {
		for term, occs := range m.Terms {
			jobs <- job{term: term, occs: occs}
		}
		close(jobs)
		wg.Wait()
		close(out)
	}()
	for b := range out {
		s.lists[b.term] = b.l
		s.tklists[b.term] = b.tk
	}
	return s
}

// SetCache routes this store's lazy decodes through a shared size-bounded
// cache instead of the store's own unbounded memo; nil restores the
// unbounded memoization. Snapshot clones inherit the cache, so every
// snapshot of one index shares one bounded decode budget.
func (s *Store) SetCache(c *Cache) {
	s.mu.Lock()
	s.cache = c
	s.mu.Unlock()
}

// Clone returns a copy-on-write snapshot of the store: the term maps are
// copied, while the immutable decoded lists, on-disk blobs, lexicon
// entries, shared cache, and observability counters carry over by
// reference. Replace on the clone rebuilds lists off to the side and never
// affects the original, so in-flight queries keep reading a consistent
// store while a writer prepares the next snapshot.
func (s *Store) Clone() *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	ns := &Store{
		N:       s.N,
		Depth:   s.Depth,
		lists:   make(map[string]*List, len(s.lists)),
		tklists: make(map[string]*TKList, len(s.tklists)),
		colBlob: s.colBlob,
		tkBlob:  s.tkBlob,
		format:  s.format,
		obsC:    s.obsC,
		cache:   s.cache,
	}
	for k, v := range s.lists {
		ns.lists[k] = v
	}
	for k, v := range s.tklists {
		ns.tklists[k] = v
	}
	if s.lex != nil {
		ns.lex = make(map[string]lexEntry, len(s.lex))
		for k, v := range s.lex {
			ns.lex[k] = v
		}
	}
	if s.quarantined != nil {
		ns.quarantined = make(map[string]error, len(s.quarantined))
		for k, v := range s.quarantined {
			ns.quarantined[k] = v
		}
	}
	ns.fileDamage = append([]string(nil), s.fileDamage...)
	ns.fallback = s.fallback
	return ns
}

// quarantine records one term's on-disk damage (under s.mu). The term then
// reads as absent; Health reports it.
func (s *Store) quarantine(term string, err error) {
	if s.quarantined == nil {
		s.quarantined = make(map[string]error)
	}
	if _, dup := s.quarantined[term]; !dup {
		s.quarantined[term] = err
		s.obsC.RecordQuarantine()
	}
}

// colSlice bounds- and checksum-verifies one term's extent of the column
// blob (under s.mu).
func (s *Store) colSlice(e lexEntry) ([]byte, error) {
	if e.colOff+e.colLen > uint64(len(s.colBlob)) {
		return nil, fmt.Errorf("colstore: column extent [%d,+%d) outside blob (%d bytes)", e.colOff, e.colLen, len(s.colBlob))
	}
	b := s.colBlob[e.colOff : e.colOff+e.colLen]
	if e.hasCRC && Checksum(b) != e.colCRC {
		return nil, fmt.Errorf("colstore: column list checksum mismatch")
	}
	return b, nil
}

// tkSlice is colSlice for the top-K blob.
func (s *Store) tkSlice(e lexEntry) ([]byte, error) {
	if e.tkOff+e.tkLen > uint64(len(s.tkBlob)) {
		return nil, fmt.Errorf("colstore: top-K extent [%d,+%d) outside blob (%d bytes)", e.tkOff, e.tkLen, len(s.tkBlob))
	}
	b := s.tkBlob[e.tkOff : e.tkOff+e.tkLen]
	if e.hasCRC && Checksum(b) != e.tkCRC {
		return nil, fmt.Errorf("colstore: top-K list checksum mismatch")
	}
	return b, nil
}

// List returns the JDewey-ordered column list for a term, or nil when the
// term is unindexed or its on-disk bytes are damaged (checksum or
// structural failure — the term is then quarantined and reported by
// Health, so one corrupt list degrades only its own term).
func (s *Store) List(term string) *List {
	return s.ListObs(term, nil)
}

// TopKList returns the score-sorted list for a term, or nil (same
// quarantine semantics as List).
func (s *Store) TopKList(term string) *TKList {
	return s.TopKListObs(term, nil)
}

// Handle returns the streaming (column-at-a-time) view of a term's list,
// or nil when the term is unindexed. Disk-opened stores serve the raw blob
// directly; in-memory stores encode once on demand so the same access path
// is testable without a save/load round trip.
func (s *Store) Handle(term string) *Handle {
	if fb := s.overlayMiss(term, false); fb != nil {
		return fb.Handle(term)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, bad := s.quarantined[term]; bad {
		return nil
	}
	var blob []byte
	if e, ok := s.lex[term]; ok {
		var err error
		blob, err = s.colSlice(e)
		if err != nil {
			s.quarantine(term, err)
			return nil
		}
	} else if l, ok := s.lists[term]; ok {
		blob, _ = l.AppendEncoded(nil)
	} else {
		return nil
	}
	h, err := NewHandle(term, blob)
	if err != nil {
		s.quarantine(term, err)
		return nil
	}
	return h
}

// TKHandle returns the streaming (column-at-a-time) view of a term's
// score-sorted list, or nil when the term is unindexed.
func (s *Store) TKHandle(term string) *TKHandle {
	if fb := s.overlayMiss(term, true); fb != nil {
		return fb.TKHandle(term)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, bad := s.quarantined[term]; bad {
		return nil
	}
	var blob []byte
	if e, ok := s.lex[term]; ok {
		var err error
		blob, err = s.tkSlice(e)
		if err != nil {
			s.quarantine(term, err)
			return nil
		}
	} else if l, ok := s.tklists[term]; ok {
		blob, _ = l.AppendEncoded(nil)
	} else {
		return nil
	}
	h, err := NewTKHandle(term, blob)
	if err != nil {
		s.quarantine(term, err)
		return nil
	}
	return h
}

// DocFreq returns the number of occurrences of a term, without decoding.
func (s *Store) DocFreq(term string) int {
	if fb := s.overlayMiss(term, false); fb != nil {
		return fb.DocFreq(term)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.lists[term]; ok {
		return l.NumRows
	}
	if e, ok := s.lex[term]; ok {
		return int(e.freq)
	}
	return 0
}

// Words returns every indexed term in lexicographic order. An overlay
// reports the union of its own terms and the fallback's.
func (s *Store) Words() []string {
	var base []string
	if s.fallback != nil {
		base = s.fallback.Words() // outside s.mu: overlay locks never nest under base locks
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool, len(s.lists)+len(s.lex)+len(base))
	for _, w := range base {
		seen[w] = true
	}
	for w := range s.lists {
		seen[w] = true
	}
	for w := range s.lex {
		seen[w] = true
	}
	ws := make([]string, 0, len(seen))
	for w := range seen {
		ws = append(ws, w)
	}
	sort.Strings(ws)
	return ws
}

// Replace rebuilds one term's lists from a fresh occurrence slice, which
// must be sorted in JDewey-sequence order (document order coincides with
// it until a partial re-encode moves a subtree to the top of the number
// space; callers sort accordingly). An empty slice removes the term. This
// is the incremental-maintenance hook: after a document mutation only the
// terms whose occurrences (or whose occurrences' JDewey numbers) changed
// are rebuilt.
func (s *Store) Replace(term string, occs []occur.Occ) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.lex, term) // any stale on-disk blob no longer describes the term
	delete(s.quarantined, term)
	if len(occs) == 0 {
		delete(s.lists, term)
		delete(s.tklists, term)
		return
	}
	s.lists[term] = BuildList(term, occs)
	s.tklists[term] = BuildTKList(term, occs)
}

// SetMeta updates the document metadata after a mutation.
func (s *Store) SetMeta(n, depth int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.N, s.Depth = n, depth
}

// SizeStats reports the Table I byte accounting for this store.
type SizeStats struct {
	ColumnLists  int64 // join-based IL
	ColumnSparse int64 // join-based sparse indices
	TopKLists    int64 // top-K join IL
	TopKSparse   int64 // top-K cursor bookmarks
}

// Stats serializes every list (without touching disk) and returns the size
// accounting.
func (s *Store) Stats() SizeStats {
	var st SizeStats
	var buf []byte
	for _, w := range s.Words() {
		l := s.List(w)
		if l == nil {
			continue
		}
		var sp int64
		buf, sp = l.AppendEncoded(buf[:0])
		st.ColumnLists += int64(len(buf))
		st.ColumnSparse += sp
		tl := s.TopKList(w)
		if tl == nil {
			continue
		}
		buf, sp = tl.AppendEncoded(buf[:0])
		st.TopKLists += int64(len(buf))
		st.TopKSparse += sp
	}
	return st
}

// Save writes the store to a directory as a new committed generation (see
// durable.go for the crash-safety protocol): the two blob files plus the
// lexicon, all checksummed, atomically published via CURRENT.
func (s *Store) Save(dir string) error {
	return s.SaveFS(dir, faultinject.OS())
}

// SaveFS is Save through an explicit filesystem, the injection point of
// the crash tests.
func (s *Store) SaveFS(dir string, fsys faultinject.FS) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("colstore: save: %w", err)
	}
	gen, err := NextGen(dir)
	if err != nil {
		return fmt.Errorf("colstore: save: %w", err)
	}
	if err := s.SaveGen(dir, gen, fsys); err != nil {
		return err
	}
	if err := CommitGen(dir, gen, fsys); err != nil {
		return err
	}
	RemoveStaleGens(dir, gen, fsys)
	return nil
}

// SaveGen writes the store's three files of one generation without
// committing it, for callers (the xmlsearch layer) that bundle more files
// into the same generation before the single CommitGen.
func (s *Store) SaveGen(dir string, gen uint64, fsys faultinject.FS) error {
	words := s.Words()
	var colBlob, tkBlob []byte
	lex := make([]byte, 0, 1024)
	lex = append(lex, magicV2...)
	lex = binary.AppendUvarint(lex, uint64(s.N))
	lex = binary.AppendUvarint(lex, uint64(s.Depth))
	lex = binary.AppendUvarint(lex, uint64(len(words)))
	var err error
	for _, w := range words {
		l := s.List(w)
		tl := s.TopKList(w)
		if l == nil || tl == nil {
			if qerr := s.QuarantineErr(w); qerr != nil {
				return fmt.Errorf("colstore: save: list %q quarantined: %w", w, qerr)
			}
			return fmt.Errorf("colstore: save: list %q unavailable", w)
		}
		colOff := uint64(len(colBlob))
		if colBlob, err = l.EncodeChecked(colBlob); err != nil {
			return fmt.Errorf("colstore: save: %w", err)
		}
		tkOff := uint64(len(tkBlob))
		if tkBlob, err = tl.EncodeChecked(tkBlob); err != nil {
			return fmt.Errorf("colstore: save: %w", err)
		}
		lex = binary.AppendUvarint(lex, uint64(len(w)))
		lex = append(lex, w...)
		lex = binary.AppendUvarint(lex, colOff)
		lex = binary.AppendUvarint(lex, uint64(len(colBlob))-colOff)
		lex = binary.AppendUvarint(lex, tkOff)
		lex = binary.AppendUvarint(lex, uint64(len(tkBlob))-tkOff)
		lex = binary.AppendUvarint(lex, uint64(l.NumRows))
		lex = binary.LittleEndian.AppendUint32(lex, Checksum(colBlob[colOff:]))
		lex = binary.LittleEndian.AppendUint32(lex, Checksum(tkBlob[tkOff:]))
	}
	for _, f := range []struct {
		name string
		data []byte
	}{
		{fileColumns, colBlob},
		{fileTopK, tkBlob},
		{fileLexicon, lex},
	} {
		path := filepath.Join(dir, GenName(f.name, gen))
		if err := fsys.WriteFile(path, AppendFooter(f.data), 0o644); err != nil {
			return fmt.Errorf("colstore: save %s: %w", f.name, err)
		}
	}
	return nil
}

// parseLexicon decodes a lexicon payload (magic included). Extent bounds
// against the blob files are checked by the caller, which can quarantine
// per term; everything here is fatal because a lexicon that cannot be
// parsed identifies nothing.
func parseLexicon(lex []byte) (n, depth int, entries map[string]lexEntry, err error) {
	var format int
	switch {
	case len(lex) >= len(magicV2) && string(lex[:len(magicV2)]) == magicV2:
		format = 2
	case len(lex) >= len(magicV1) && string(lex[:len(magicV1)]) == magicV1:
		format = 1
	default:
		return 0, 0, nil, fmt.Errorf("colstore: open: not an index lexicon")
	}
	off := len(magicV1)
	read := func() (uint64, error) {
		v, sz := binary.Uvarint(lex[off:])
		if sz <= 0 {
			return 0, fmt.Errorf("colstore: open: truncated lexicon")
		}
		off += sz
		return v, nil
	}
	nv, err := read()
	if err != nil {
		return 0, 0, nil, err
	}
	depthv, err := read()
	if err != nil {
		return 0, 0, nil, err
	}
	nWords, err := read()
	if err != nil {
		return 0, 0, nil, err
	}
	if depthv > 1<<15 {
		return 0, 0, nil, fmt.Errorf("colstore: open: implausible depth %d", depthv)
	}
	if nWords > uint64(len(lex)) {
		return 0, 0, nil, fmt.Errorf("colstore: open: implausible word count %d", nWords)
	}
	entries = make(map[string]lexEntry, nWords)
	for i := uint64(0); i < nWords; i++ {
		wl, err := read()
		if err != nil {
			return 0, 0, nil, err
		}
		if uint64(off)+wl > uint64(len(lex)) {
			return 0, 0, nil, fmt.Errorf("colstore: open: truncated word %d", i)
		}
		w := string(lex[off : off+int(wl)])
		off += int(wl)
		var e lexEntry
		for _, dst := range []*uint64{&e.colOff, &e.colLen, &e.tkOff, &e.tkLen, &e.freq} {
			if *dst, err = read(); err != nil {
				return 0, 0, nil, err
			}
		}
		if format == 2 {
			if off+8 > len(lex) {
				return 0, 0, nil, fmt.Errorf("colstore: open: truncated checksums for word %q", w)
			}
			e.colCRC = binary.LittleEndian.Uint32(lex[off:])
			e.tkCRC = binary.LittleEndian.Uint32(lex[off+4:])
			e.hasCRC = true
			off += 8
		}
		if _, dup := entries[w]; dup {
			return 0, 0, nil, fmt.Errorf("colstore: open: duplicate word %q", w)
		}
		entries[w] = e
	}
	if off != len(lex) {
		return 0, 0, nil, fmt.Errorf("colstore: open: %d trailing lexicon bytes", len(lex)-off)
	}
	return int(nv), int(depthv), entries, nil
}

// Open maps an index directory. Lists decode lazily on first access, and
// on the checksummed v2 format each access verifies its CRC32C first:
// damage to one term's bytes quarantines that term (reported via Health)
// while the rest of the index keeps serving. Only damage to the small,
// fully-verified metadata (CURRENT, the lexicon) fails the whole open.
func Open(dir string) (*Store, error) {
	gen, v2, err := CurrentGen(dir)
	if err != nil {
		return nil, err
	}
	name := func(base string) string {
		if v2 {
			return GenName(base, gen)
		}
		return base
	}
	lexRaw, err := os.ReadFile(filepath.Join(dir, name(fileLexicon)))
	if err != nil {
		return nil, fmt.Errorf("colstore: open: %w", err)
	}
	colBlob, err := os.ReadFile(filepath.Join(dir, name(fileColumns)))
	if err != nil {
		return nil, fmt.Errorf("colstore: open: %w", err)
	}
	tkBlob, err := os.ReadFile(filepath.Join(dir, name(fileTopK)))
	if err != nil {
		return nil, fmt.Errorf("colstore: open: %w", err)
	}
	s := &Store{
		lists:   make(map[string]*List),
		tklists: make(map[string]*TKList),
		format:  1,
	}
	lex := lexRaw
	if v2 {
		s.format = 2
		// The lexicon is the map of everything else: its footer and CRC are
		// verified eagerly and damage is fatal (a clean error, not wrong
		// results). Blob footers are advisory — per-list CRCs localize blob
		// damage, so a bad blob footer only flags file-level damage.
		lex, err = StripFooter(lexRaw)
		if err != nil {
			return nil, fmt.Errorf("colstore: open lexicon: %w", err)
		}
		if payload, ferr := StripFooter(colBlob); ferr == nil {
			colBlob = payload
		} else {
			s.fileDamage = append(s.fileDamage, fmt.Sprintf("%s: %v", fileColumns, ferr))
		}
		if payload, ferr := StripFooter(tkBlob); ferr == nil {
			tkBlob = payload
		} else {
			s.fileDamage = append(s.fileDamage, fmt.Sprintf("%s: %v", fileTopK, ferr))
		}
	}
	n, depth, entries, err := parseLexicon(lex)
	if err != nil {
		return nil, err
	}
	s.N, s.Depth = n, depth
	s.colBlob, s.tkBlob = colBlob, tkBlob
	s.lex = entries
	if s.format == 1 {
		// Legacy lexicons carry no checksums; an out-of-range extent is
		// indistinguishable from a corrupt lexicon, so reject wholesale as
		// v1 always did.
		for w, e := range entries {
			if e.colOff+e.colLen > uint64(len(colBlob)) || e.tkOff+e.tkLen > uint64(len(tkBlob)) {
				return nil, fmt.Errorf("colstore: open: word %q offsets out of range", w)
			}
		}
	}
	return s, nil
}

// TermFault is one quarantined term in a Health report.
type TermFault struct {
	Term string
	Err  string
}

// Health is the degradation report of a store: which terms are quarantined
// (their queries return no occurrences; everything else is exact) and any
// file-level damage. The zero Degraded/empty report means the index is
// fully intact.
type Health struct {
	Format      int // 0 in-memory, 1 legacy on-disk, 2 checksummed
	Terms       int // terms the index knows (healthy + quarantined)
	Quarantined []TermFault
	FileDamage  []string
}

// Degraded reports whether any damage was detected.
func (h Health) Degraded() bool { return len(h.Quarantined) > 0 || len(h.FileDamage) > 0 }

// Health eagerly verifies every not-yet-decoded list (checksums and
// structural invariants), quarantining failures, and returns the full
// degradation report. It is how a caller chooses degraded service over an
// outage after Open succeeds on a damaged directory.
func (s *Store) Health() Health {
	if s.fallback != nil {
		// An overlay's own lists are freshly built in memory and cannot be
		// damaged; degradation lives in the base chain. Shadowed terms may
		// be reported quarantined even though the overlay serves them — the
		// report errs conservative.
		h := s.fallback.Health()
		h.Terms = len(s.Words())
		return h
	}
	words := s.Words()
	for _, w := range words {
		// Side effect: decode-or-quarantine through the usual access path.
		if s.List(w) != nil {
			s.TopKList(w)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{Format: s.format, Terms: len(words)}
	h.FileDamage = append(h.FileDamage, s.fileDamage...)
	sort.Strings(h.FileDamage)
	for w, err := range s.quarantined {
		h.Quarantined = append(h.Quarantined, TermFault{Term: w, Err: err.Error()})
	}
	sort.Slice(h.Quarantined, func(i, j int) bool { return h.Quarantined[i].Term < h.Quarantined[j].Term })
	return h
}

// QuarantineErr returns the recorded damage for a term, or nil.
func (s *Store) QuarantineErr(term string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined[term]
}

// Verify eagerly decodes and validates every list, returning an error if
// any damage is found. It is the strict all-or-nothing integrity check;
// Health is the degraded-service variant.
func (s *Store) Verify() error {
	h := s.Health()
	if len(h.FileDamage) > 0 {
		return fmt.Errorf("colstore: verify: %s", h.FileDamage[0])
	}
	if len(h.Quarantined) > 0 {
		q := h.Quarantined[0]
		return fmt.Errorf("colstore: verify %q: %s", q.Term, q.Err)
	}
	return nil
}
