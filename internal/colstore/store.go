package colstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"repro/internal/occur"
)

// File names inside an index directory. The paper stores inverted lists
// directly on disk rather than inside a column DBMS because the lexicon is
// huge and most lists are short (Section V); we mirror that with one blob
// file per list family plus a lexicon of offsets.
const (
	fileColumns = "postings.col" // JDewey-ordered column lists
	fileTopK    = "postings.tk"  // score-sorted, length-grouped lists
	fileLexicon = "lexicon"
	magic       = "XKWCOL1\n"
)

// Store is the column-oriented index for one document: every keyword's
// JDewey-ordered column list and its score-sorted top-K variant.
type Store struct {
	N     int // element-node count of the indexed document
	Depth int

	mu      sync.Mutex
	lists   map[string]*List
	tklists map[string]*TKList

	// Lazily decoded on-disk form (nil for purely in-memory stores).
	colBlob []byte
	tkBlob  []byte
	lex     map[string]lexEntry
}

type lexEntry struct {
	colOff, colLen uint64
	tkOff, tkLen   uint64
	freq           uint64
}

// Build constructs an in-memory store from an occurrence map. Per-keyword
// lists are independent, so they are built concurrently across all CPUs;
// the result is identical to a sequential build.
func Build(m *occur.Map) *Store {
	return BuildWorkers(m, runtime.GOMAXPROCS(0))
}

// BuildWorkers is Build with an explicit worker count (1 = sequential),
// exposed for the construction benchmarks.
func BuildWorkers(m *occur.Map, workers int) *Store {
	s := &Store{
		N:       m.N,
		Depth:   m.Depth,
		lists:   make(map[string]*List, len(m.Terms)),
		tklists: make(map[string]*TKList, len(m.Terms)),
	}
	if workers <= 1 || len(m.Terms) < 64 {
		for term, occs := range m.Terms {
			s.lists[term] = BuildList(term, occs)
			s.tklists[term] = BuildTKList(term, occs)
		}
		return s
	}
	type job struct {
		term string
		occs []occur.Occ
	}
	type built struct {
		term string
		l    *List
		tk   *TKList
	}
	jobs := make(chan job, workers)
	out := make(chan built, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				out <- built{term: j.term, l: BuildList(j.term, j.occs), tk: BuildTKList(j.term, j.occs)}
			}
		}()
	}
	go func() {
		for term, occs := range m.Terms {
			jobs <- job{term: term, occs: occs}
		}
		close(jobs)
		wg.Wait()
		close(out)
	}()
	for b := range out {
		s.lists[b.term] = b.l
		s.tklists[b.term] = b.tk
	}
	return s
}

// List returns the JDewey-ordered column list for a term, or nil when the
// term is unindexed.
func (s *Store) List(term string) *List {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.lists[term]; ok {
		return l
	}
	e, ok := s.lex[term]
	if !ok {
		return nil
	}
	l, _, err := DecodeList(term, s.colBlob[e.colOff:e.colOff+e.colLen])
	if err != nil {
		// Decoding from a lexicon-verified offset only fails on
		// corruption; surface it as a missing list and let Verify report
		// details.
		return nil
	}
	s.lists[term] = l
	return l
}

// TopKList returns the score-sorted list for a term, or nil.
func (s *Store) TopKList(term string) *TKList {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.tklists[term]; ok {
		return l
	}
	e, ok := s.lex[term]
	if !ok {
		return nil
	}
	l, _, err := DecodeTKList(term, s.tkBlob[e.tkOff:e.tkOff+e.tkLen])
	if err != nil {
		return nil
	}
	s.tklists[term] = l
	return l
}

// Handle returns the streaming (column-at-a-time) view of a term's list,
// or nil when the term is unindexed. Disk-opened stores serve the raw blob
// directly; in-memory stores encode once on demand so the same access path
// is testable without a save/load round trip.
func (s *Store) Handle(term string) *Handle {
	s.mu.Lock()
	defer s.mu.Unlock()
	var blob []byte
	if e, ok := s.lex[term]; ok {
		blob = s.colBlob[e.colOff : e.colOff+e.colLen]
	} else if l, ok := s.lists[term]; ok {
		blob, _ = l.AppendEncoded(nil)
	} else {
		return nil
	}
	h, err := NewHandle(term, blob)
	if err != nil {
		return nil
	}
	return h
}

// TKHandle returns the streaming (column-at-a-time) view of a term's
// score-sorted list, or nil when the term is unindexed.
func (s *Store) TKHandle(term string) *TKHandle {
	s.mu.Lock()
	defer s.mu.Unlock()
	var blob []byte
	if e, ok := s.lex[term]; ok {
		blob = s.tkBlob[e.tkOff : e.tkOff+e.tkLen]
	} else if l, ok := s.tklists[term]; ok {
		blob, _ = l.AppendEncoded(nil)
	} else {
		return nil
	}
	h, err := NewTKHandle(term, blob)
	if err != nil {
		return nil
	}
	return h
}

// DocFreq returns the number of occurrences of a term, without decoding.
func (s *Store) DocFreq(term string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.lists[term]; ok {
		return l.NumRows
	}
	if e, ok := s.lex[term]; ok {
		return int(e.freq)
	}
	return 0
}

// Words returns every indexed term in lexicographic order.
func (s *Store) Words() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool, len(s.lists)+len(s.lex))
	for w := range s.lists {
		seen[w] = true
	}
	for w := range s.lex {
		seen[w] = true
	}
	ws := make([]string, 0, len(seen))
	for w := range seen {
		ws = append(ws, w)
	}
	sort.Strings(ws)
	return ws
}

// Replace rebuilds one term's lists from a fresh occurrence slice, which
// must be sorted in JDewey-sequence order (document order coincides with
// it until a partial re-encode moves a subtree to the top of the number
// space; callers sort accordingly). An empty slice removes the term. This
// is the incremental-maintenance hook: after a document mutation only the
// terms whose occurrences (or whose occurrences' JDewey numbers) changed
// are rebuilt.
func (s *Store) Replace(term string, occs []occur.Occ) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.lex, term) // any stale on-disk blob no longer describes the term
	if len(occs) == 0 {
		delete(s.lists, term)
		delete(s.tklists, term)
		return
	}
	s.lists[term] = BuildList(term, occs)
	s.tklists[term] = BuildTKList(term, occs)
}

// SetMeta updates the document metadata after a mutation.
func (s *Store) SetMeta(n, depth int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.N, s.Depth = n, depth
}

// SizeStats reports the Table I byte accounting for this store.
type SizeStats struct {
	ColumnLists  int64 // join-based IL
	ColumnSparse int64 // join-based sparse indices
	TopKLists    int64 // top-K join IL
	TopKSparse   int64 // top-K cursor bookmarks
}

// Stats serializes every list (without touching disk) and returns the size
// accounting.
func (s *Store) Stats() SizeStats {
	var st SizeStats
	var buf []byte
	for _, w := range s.Words() {
		l := s.List(w)
		if l == nil {
			continue
		}
		var sp int64
		buf, sp = l.AppendEncoded(buf[:0])
		st.ColumnLists += int64(len(buf))
		st.ColumnSparse += sp
		tl := s.TopKList(w)
		if tl == nil {
			continue
		}
		buf, sp = tl.AppendEncoded(buf[:0])
		st.TopKLists += int64(len(buf))
		st.TopKSparse += sp
	}
	return st
}

// Save writes the store to a directory: the two blob files plus the
// lexicon.
func (s *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("colstore: save: %w", err)
	}
	words := s.Words()
	var colBlob, tkBlob []byte
	lex := make([]byte, 0, 1024)
	lex = append(lex, magic...)
	lex = binary.AppendUvarint(lex, uint64(s.N))
	lex = binary.AppendUvarint(lex, uint64(s.Depth))
	lex = binary.AppendUvarint(lex, uint64(len(words)))
	for _, w := range words {
		l := s.List(w)
		tl := s.TopKList(w)
		if l == nil || tl == nil {
			return fmt.Errorf("colstore: save: list %q unavailable", w)
		}
		colOff := uint64(len(colBlob))
		colBlob, _ = l.AppendEncoded(colBlob)
		tkOff := uint64(len(tkBlob))
		tkBlob, _ = tl.AppendEncoded(tkBlob)
		lex = binary.AppendUvarint(lex, uint64(len(w)))
		lex = append(lex, w...)
		lex = binary.AppendUvarint(lex, colOff)
		lex = binary.AppendUvarint(lex, uint64(len(colBlob))-colOff)
		lex = binary.AppendUvarint(lex, tkOff)
		lex = binary.AppendUvarint(lex, uint64(len(tkBlob))-tkOff)
		lex = binary.AppendUvarint(lex, uint64(l.NumRows))
	}
	for name, data := range map[string][]byte{
		fileColumns: colBlob,
		fileTopK:    tkBlob,
		fileLexicon: lex,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return fmt.Errorf("colstore: save %s: %w", name, err)
		}
	}
	return nil
}

// Open maps an index directory. Lists decode lazily on first access.
func Open(dir string) (*Store, error) {
	lex, err := os.ReadFile(filepath.Join(dir, fileLexicon))
	if err != nil {
		return nil, fmt.Errorf("colstore: open: %w", err)
	}
	colBlob, err := os.ReadFile(filepath.Join(dir, fileColumns))
	if err != nil {
		return nil, fmt.Errorf("colstore: open: %w", err)
	}
	tkBlob, err := os.ReadFile(filepath.Join(dir, fileTopK))
	if err != nil {
		return nil, fmt.Errorf("colstore: open: %w", err)
	}
	if len(lex) < len(magic) || string(lex[:len(magic)]) != magic {
		return nil, fmt.Errorf("colstore: open: not an index lexicon")
	}
	s := &Store{
		lists:   make(map[string]*List),
		tklists: make(map[string]*TKList),
		colBlob: colBlob,
		tkBlob:  tkBlob,
		lex:     make(map[string]lexEntry),
	}
	off := len(magic)
	read := func() (uint64, error) {
		v, sz := binary.Uvarint(lex[off:])
		if sz <= 0 {
			return 0, fmt.Errorf("colstore: open: truncated lexicon")
		}
		off += sz
		return v, nil
	}
	n, err := read()
	if err != nil {
		return nil, err
	}
	depth, err := read()
	if err != nil {
		return nil, err
	}
	nWords, err := read()
	if err != nil {
		return nil, err
	}
	if nWords > uint64(len(lex)) {
		return nil, fmt.Errorf("colstore: open: implausible word count %d", nWords)
	}
	s.N, s.Depth = int(n), int(depth)
	for i := uint64(0); i < nWords; i++ {
		wl, err := read()
		if err != nil {
			return nil, err
		}
		if off+int(wl) > len(lex) {
			return nil, fmt.Errorf("colstore: open: truncated word %d", i)
		}
		w := string(lex[off : off+int(wl)])
		off += int(wl)
		var e lexEntry
		for _, dst := range []*uint64{&e.colOff, &e.colLen, &e.tkOff, &e.tkLen, &e.freq} {
			if *dst, err = read(); err != nil {
				return nil, err
			}
		}
		if e.colOff+e.colLen > uint64(len(colBlob)) || e.tkOff+e.tkLen > uint64(len(tkBlob)) {
			return nil, fmt.Errorf("colstore: open: word %q offsets out of range", w)
		}
		s.lex[w] = e
	}
	return s, nil
}

// Verify eagerly decodes and validates every list, returning the first
// error. It is the integrity check the failure-injection tests exercise.
func (s *Store) Verify() error {
	s.mu.Lock()
	words := make([]string, 0, len(s.lex))
	for w := range s.lex {
		words = append(words, w)
	}
	s.mu.Unlock()
	sort.Strings(words)
	for _, w := range words {
		s.mu.Lock()
		e := s.lex[w]
		_, _, err := DecodeList(w, s.colBlob[e.colOff:e.colOff+e.colLen])
		if err == nil {
			_, _, err = DecodeTKList(w, s.tkBlob[e.tkOff:e.tkOff+e.tkLen])
		}
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("colstore: verify %q: %w", w, err)
		}
	}
	return nil
}
