// Package colstore implements the column-oriented inverted lists of
// Sections III-A and III-D: per keyword, the JDewey sequences of the
// occurrence nodes are stored column by column (one column per tree level),
// with each column sorted and run-length structured, compressed on disk
// with the two schemes of [19] (delta blocks for high-distinct columns and
// (value, row, count) triples for low-distinct columns), plus the sparse
// per-column indices used by the index join.
package colstore

import (
	"fmt"
	"sort"

	"repro/internal/occur"
)

// Run is one value run of a column: the rows [Row, Row+Count) all carry
// Value at this column's level. Rows of a list sharing a value at a level
// are provably contiguous (Property 3.1 plus per-level uniqueness), so runs
// are exactly the paper's (v, r, c) triples.
type Run struct {
	Value uint32
	Row   uint32
	Count uint32
}

// Column is one level of a keyword's inverted list. Runs ascend strictly by
// Value (set-semantics grouping done at indexing time, which is the online
// computation the second compression scheme saves, per Section III-D).
type Column struct {
	Level int
	Runs  []Run
}

// NumEntries returns the number of rows that have this column, i.e. the
// occurrences at or below the column's level.
func (c *Column) NumEntries() int {
	n := 0
	for _, r := range c.Runs {
		n += int(r.Count)
	}
	return n
}

// FindValue binary-searches the column's runs for a value, returning the
// run index and whether it was found. This is the index-join probe; over
// the on-disk form it is served by the sparse index, and in memory the
// decoded runs play the same role.
func (c *Column) FindValue(v uint32) (int, bool) {
	i := sort.Search(len(c.Runs), func(i int) bool { return c.Runs[i].Value >= v })
	return i, i < len(c.Runs) && c.Runs[i].Value == v
}

// List is one keyword's column-oriented inverted list. Rows are the
// occurrence nodes in JDewey-sequence order; row r's sequence has length
// Lens[r] and local score Scores[r]. Cols[l-1] covers the rows whose
// sequences reach level l.
type List struct {
	Word    string
	NumRows int
	MaxLen  int       // l_m: the longest sequence length
	Lens    []uint16  // per-row sequence length
	Scores  []float32 // per-row local score g(v, w)
	Cols    []Column  // Cols[l-1] is the column of level l
}

// Col returns the column of 1-based level l, or nil when the list has no
// rows reaching that level.
func (l *List) Col(level int) *Column {
	if level < 1 || level > l.MaxLen {
		return nil
	}
	return &l.Cols[level-1]
}

// BuildList assembles the column-oriented list from one keyword's
// occurrences (already in document order, which equals JDewey-sequence
// order).
func BuildList(word string, occs []occur.Occ) *List {
	l := &List{Word: word, NumRows: len(occs)}
	l.Lens = make([]uint16, len(occs))
	l.Scores = make([]float32, len(occs))
	for i, o := range occs {
		if o.Node.Level > l.MaxLen {
			l.MaxLen = o.Node.Level
		}
		l.Lens[i] = uint16(o.Node.Level)
		l.Scores[i] = o.Score
	}
	l.Cols = make([]Column, l.MaxLen)
	for lev := range l.Cols {
		l.Cols[lev].Level = lev + 1
	}
	for i, o := range occs {
		row := uint32(i)
		for v := o.Node; v != nil; v = v.Parent {
			col := &l.Cols[v.Level-1]
			if n := len(col.Runs); n > 0 && col.Runs[n-1].Value == v.JD {
				col.Runs[n-1].Count++
			} else {
				col.Runs = append(col.Runs, Run{Value: v.JD, Row: row, Count: 1})
			}
		}
	}
	return l
}

// Validate checks the structural invariants the query algorithms rely on:
// strictly ascending run values, contiguous same-value rows, column
// coverage consistent with Lens, and MaxLen consistency. It is used by the
// property tests and by Open when verifying decoded lists.
func (l *List) Validate() error {
	return l.validate()
}

// EncodeChecked validates the list and then appends its on-disk blob,
// propagating the validation error instead of serializing a structure the
// decoder would reject. The save path uses it so an invalid in-memory list
// (e.g. after a buggy mutation) fails the save instead of writing a blob
// that poisons the next load.
func (l *List) EncodeChecked(buf []byte) ([]byte, error) {
	if err := l.validate(); err != nil {
		return buf, fmt.Errorf("colstore: encode %q: %w", l.Word, err)
	}
	out, _ := l.AppendEncoded(buf)
	return out, nil
}
