package colstore

import (
	"fmt"
	"sync"
)

// Source is the access interface the join-based evaluation (package core)
// reads an inverted list through. Both the fully-decoded List and the
// column-at-a-time Handle implement it, so the same algorithm runs over
// in-memory lists and over the streaming on-disk form that only decodes
// the columns a query actually touches (the Section III-B I/O property:
// "the algorithm does not read the whole JDewey sequences from the disk at
// once").
type Source interface {
	// Rows returns the number of occurrences.
	Rows() int
	// MaxLevel returns l_m, the longest sequence length.
	MaxLevel() int
	// Col returns the column of the 1-based level, or nil when out of
	// range. Implementations may decode lazily.
	Col(level int) *Column
	// RowLen returns the sequence length of a row (for damping).
	RowLen(row uint32) int
	// RowScore returns the local score of a row.
	RowScore(row uint32) float32
}

// List implements Source eagerly.

// Rows returns the number of occurrences.
func (l *List) Rows() int { return l.NumRows }

// MaxLevel returns the longest sequence length.
func (l *List) MaxLevel() int { return l.MaxLen }

// RowLen returns the sequence length of a row.
func (l *List) RowLen(row uint32) int { return int(l.Lens[row]) }

// RowScore returns the local score of a row.
func (l *List) RowScore(row uint32) float32 { return l.Scores[row] }

// Handle is the streaming view over one keyword's on-disk blob: the header
// (row lengths and scores) is decoded eagerly, column payloads only on
// first access. It is safe for concurrent use.
type Handle struct {
	word string
	blob []byte
	hdr  *header

	mu        sync.Mutex
	cols      []*Column
	bytesRead int64
	decoded   int
}

// NewHandle parses the blob header and returns the streaming view.
func NewHandle(word string, blob []byte) (*Handle, error) {
	h, err := decodeHeader(blob)
	if err != nil {
		return nil, fmt.Errorf("colstore: handle %q: %w", word, err)
	}
	// Header bytes (lengths, scores, offset table) are always read.
	headerBytes := int64(h.end)
	if h.maxLen > 0 {
		headerBytes = int64(h.colOff[0])
	}
	return &Handle{
		word:      word,
		blob:      blob,
		hdr:       h,
		cols:      make([]*Column, h.maxLen),
		bytesRead: headerBytes,
	}, nil
}

// Word returns the keyword the handle serves.
func (h *Handle) Word() string { return h.word }

// Rows returns the number of occurrences.
func (h *Handle) Rows() int { return h.hdr.numRows }

// MaxLevel returns the longest sequence length.
func (h *Handle) MaxLevel() int { return h.hdr.maxLen }

// RowLen returns the sequence length of a row.
func (h *Handle) RowLen(row uint32) int { return int(h.hdr.lens[row]) }

// RowScore returns the local score of a row.
func (h *Handle) RowScore(row uint32) float32 { return h.hdr.scores[row] }

// Col decodes (once) and returns the column of the 1-based level. A
// corrupted column payload yields nil, matching a missing level; Verify
// reports the underlying error.
func (h *Handle) Col(level int) *Column {
	if level < 1 || level > h.hdr.maxLen {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if c := h.cols[level-1]; c != nil {
		return c
	}
	off, ln := h.hdr.colOff[level-1], h.hdr.colLen[level-1]
	c, err := decodeColumn(h.blob[off:off+ln], level, h.hdr.numRows, h.hdr.lens)
	if err != nil {
		return nil
	}
	h.cols[level-1] = c
	h.bytesRead += int64(ln)
	h.decoded++
	return c
}

// ColumnsDecoded reports how many columns have been materialized — the
// Section III-B I/O accounting ("this would save disk I/O when the XML
// tree is deep and some keywords only appear at high levels").
func (h *Handle) ColumnsDecoded() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.decoded
}

// BytesRead reports the header plus decoded-column byte volume.
func (h *Handle) BytesRead() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bytesRead
}

var (
	_ Source = (*List)(nil)
	_ Source = (*Handle)(nil)
)
