package colstore

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/testutil"
)

// TestCacheLRUBound: the cache honors its decoded-bytes bound with strict
// LRU eviction, records hits/misses/evictions, and admits an entry larger
// than the whole bound alone rather than thrashing on it.
func TestCacheLRUBound(t *testing.T) {
	var ctr obs.StoreCounters
	c := NewCache(100)
	c.SetObs(&ctr)

	k := func(term string) cacheKey { return cacheKey{term: term} }
	if _, ok := c.get(k("a")); ok {
		t.Fatal("empty cache hit")
	}
	c.put(k("a"), "A", 40)
	c.put(k("b"), "B", 40)
	if v, ok := c.get(k("a")); !ok || v != "A" {
		t.Fatal("a must be cached")
	}
	// a is now most recently used; c's insertion must evict b, not a.
	c.put(k("c"), "C", 40)
	if _, ok := c.get(k("b")); ok {
		t.Fatal("LRU entry b must have been evicted")
	}
	if _, ok := c.get(k("a")); !ok {
		t.Fatal("recently used entry a must survive")
	}
	if got := c.Bytes(); got != 80 {
		t.Fatalf("cache holds %d bytes, want 80", got)
	}

	// Refreshing an entry updates its accounted size in place.
	c.put(k("a"), "A2", 10)
	if got, want := c.Bytes(), int64(50); got != want {
		t.Fatalf("after refresh: %d bytes, want %d", got, want)
	}
	if v, _ := c.get(k("a")); v != "A2" {
		t.Fatal("refresh must replace the value")
	}

	// An oversize entry is admitted alone: everything else goes, it stays.
	c.put(k("huge"), "H", 500)
	if c.Len() != 1 {
		t.Fatalf("oversize admission left %d entries, want 1", c.Len())
	}
	if v, ok := c.get(k("huge")); !ok || v != "H" {
		t.Fatal("oversize entry must be served")
	}

	// The same term's two list kinds are distinct keys.
	c2 := NewCache(1000)
	c2.put(cacheKey{term: "x"}, "col", 10)
	c2.put(cacheKey{term: "x", tk: true}, "tk", 10)
	if v, _ := c2.get(cacheKey{term: "x"}); v != "col" {
		t.Fatal("column entry clobbered by top-K entry")
	}
	if v, _ := c2.get(cacheKey{term: "x", tk: true}); v != "tk" {
		t.Fatal("top-K entry missing")
	}

	snap := ctr.Snapshot()
	if snap.CacheHits == 0 || snap.CacheMisses == 0 || snap.CacheEvictions == 0 {
		t.Fatalf("counters not recorded: %+v", snap)
	}
}

// TestStoreDecodesThroughCache: a disk-opened store with a cache installed
// serves the first open by decoding (a miss) and subsequent opens from the
// cache (hits), through both the single-list and the parallel multi-list
// paths.
func TestStoreDecodesThroughCache(t *testing.T) {
	_, m := buildDoc(t, 11, testutil.MediumParams())
	dir := t.TempDir()
	if err := Build(m).Save(dir); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ctr obs.StoreCounters
	s.SetObs(&ctr)
	cache := NewCache(0)
	cache.SetObs(&ctr)
	s.SetCache(cache)

	words := s.Words()
	if len(words) < 3 {
		t.Fatal("fixture too small")
	}
	w := words[0]
	if s.ListObs(w, nil) == nil {
		t.Fatal("list must open")
	}
	miss0, hit0 := ctr.CacheMisses.Load(), ctr.CacheHits.Load()
	if miss0 == 0 {
		t.Fatal("first open must miss the cache")
	}
	l1 := s.ListObs(w, nil)
	l2 := s.ListObs(w, nil)
	if l1 == nil || l1 != l2 {
		t.Fatal("repeated opens must serve the identical cached decode")
	}
	if ctr.CacheHits.Load() < hit0+2 {
		t.Fatal("repeated opens must hit the cache")
	}
	if ctr.CacheMisses.Load() != miss0 {
		t.Fatal("repeated opens must not miss")
	}

	// The parallel path resolves a mix of cached and cold terms, matching
	// what per-term opens produce.
	batch := append([]string{w}, words[1:3]...)
	lists := s.Lists(batch, nil)
	for i, term := range batch {
		if lists[i] == nil || lists[i] != s.ListObs(term, nil) {
			t.Fatalf("parallel open of %q differs from single open", term)
		}
	}
	tks := s.TopKLists(batch, nil)
	for i, term := range batch {
		if tks[i] == nil || tks[i] != s.TopKListObs(term, nil) {
			t.Fatalf("parallel top-K open of %q differs from single open", term)
		}
	}

	// A clone shares the cache: opens through the clone hit immediately.
	clone := s.Clone()
	hitBefore := ctr.CacheHits.Load()
	if clone.ListObs(w, nil) != l1 {
		t.Fatal("clone must serve the shared cached decode")
	}
	if ctr.CacheHits.Load() != hitBefore+1 {
		t.Fatal("clone open must count as a cache hit")
	}
}

// TestParallelListsMatchSerial: the parallel multi-list open over a store
// WITHOUT a cache must behave exactly like serial per-term opens, including
// nils for unindexed terms and duplicates resolving to the same list.
func TestParallelListsMatchSerial(t *testing.T) {
	_, m := buildDoc(t, 12, testutil.MediumParams())
	dir := t.TempDir()
	if err := Build(m).Save(dir); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	words := s.Words()
	batch := append(append([]string{}, words...), "no-such-term", words[0])
	lists := s.Lists(batch, nil)
	for i, term := range batch {
		want := s.ListObs(term, nil)
		if lists[i] != want {
			t.Fatalf("term %q: parallel open %p, serial %p", term, lists[i], want)
		}
	}
	if lists[len(words)] != nil {
		t.Fatal("unindexed term must resolve to nil")
	}
}

// Benchmarks for the CI smoke: the cached open path against the full
// checksum-verify-and-decode path of a cold open.
func benchStore(b *testing.B, withCache bool) (*Store, string) {
	b.Helper()
	_, m := buildDoc(b, 7, testutil.MediumParams())
	dir := b.TempDir()
	if err := Build(m).Save(dir); err != nil {
		b.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	if withCache {
		s.SetCache(NewCache(0))
	}
	// Pick the widest list so the benchmark measures real decode work.
	best, bestRows := "", -1
	for _, w := range s.Words() {
		if df := s.DocFreq(w); df > bestRows {
			best, bestRows = w, df
		}
	}
	return s, best
}

func BenchmarkListOpenCached(b *testing.B) {
	s, term := benchStore(b, true)
	s.ListObs(term, nil) // prime the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.ListObs(term, nil) == nil {
			b.Fatal("list vanished")
		}
	}
}

func BenchmarkListOpenUncached(b *testing.B) {
	s, term := benchStore(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.mu.Lock()
		delete(s.lists, term) // force the decode path every iteration
		s.mu.Unlock()
		if s.ListObs(term, nil) == nil {
			b.Fatal("list vanished")
		}
	}
}
