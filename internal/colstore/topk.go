package colstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/occur"
)

// TKRow is one occurrence in a score-sorted list: its full JDewey sequence
// and its (undamped) local score.
type TKRow struct {
	Seq   []uint32
	Score float32
}

// TKGroup holds the rows of one sequence length, sorted by descending
// score. Within a group the per-column score order is the same at every
// level (all rows share the same damping factor per column), which is the
// Section IV-C observation that makes score-sorted column access possible.
type TKGroup struct {
	Len  int
	Rows []TKRow
}

// TKList is the score-sorted, length-grouped inverted list that the
// join-based top-K algorithm reads (Figure 7 of the paper).
type TKList struct {
	Word   string
	MaxLen int
	Groups []TKGroup // ascending Len
}

// NumRows returns the total number of occurrences.
func (l *TKList) NumRows() int {
	n := 0
	for _, g := range l.Groups {
		n += len(g.Rows)
	}
	return n
}

// BuildTKList assembles the score-sorted list from one keyword's
// occurrences.
func BuildTKList(word string, occs []occur.Occ) *TKList {
	byLen := map[int][]TKRow{}
	maxLen := 0
	for _, o := range occs {
		n := o.Node.Level
		if n > maxLen {
			maxLen = n
		}
		byLen[n] = append(byLen[n], TKRow{Seq: o.Node.JDeweySeq(), Score: o.Score})
	}
	l := &TKList{Word: word, MaxLen: maxLen}
	lens := make([]int, 0, len(byLen))
	for n := range byLen {
		lens = append(lens, n)
	}
	sort.Ints(lens)
	for _, n := range lens {
		rows := byLen[n]
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].Score > rows[j].Score })
		l.Groups = append(l.Groups, TKGroup{Len: n, Rows: rows})
	}
	return l
}

// Validate checks the structural invariants of the score-sorted list:
// strictly ascending non-empty groups, per-row sequence lengths equal to
// their group's, scores descending within each group, and MaxLen
// consistency.
func (l *TKList) Validate() error {
	prevLen := 0
	maxLen := 0
	for gi, g := range l.Groups {
		if g.Len <= prevLen {
			return fmt.Errorf("group %d length %d not ascending", gi, g.Len)
		}
		prevLen = g.Len
		if g.Len > maxLen {
			maxLen = g.Len
		}
		if len(g.Rows) == 0 {
			return fmt.Errorf("group %d empty", gi)
		}
		for i, r := range g.Rows {
			if len(r.Seq) != g.Len {
				return fmt.Errorf("group %d row %d has %d components, want %d", gi, i, len(r.Seq), g.Len)
			}
			if i > 0 && r.Score > g.Rows[i-1].Score {
				return fmt.Errorf("group %d rows not score-sorted at %d", gi, i)
			}
		}
	}
	if maxLen != l.MaxLen {
		return fmt.Errorf("MaxLen %d, deepest group %d", l.MaxLen, maxLen)
	}
	return nil
}

// EncodeChecked validates the list and then appends its on-disk blob,
// propagating the validation error (see List.EncodeChecked).
func (l *TKList) EncodeChecked(buf []byte) ([]byte, error) {
	if err := l.Validate(); err != nil {
		return buf, fmt.Errorf("colstore: encode %q: %w", l.Word, err)
	}
	out, _ := l.AppendEncoded(buf)
	return out, nil
}

// MaxColScore returns, per 1-based level l <= MaxLen, the maximum damped
// column score s_m(l) = max over rows with length >= l of score * decay^(len-l).
// The slice is indexed by level (entry 0 unused). These are the per-column
// bounds the cross-column threshold of Section IV-C uses.
func (l *TKList) MaxColScore(decay float64) []float64 {
	out := make([]float64, l.MaxLen+1)
	for _, g := range l.Groups {
		if len(g.Rows) == 0 {
			continue
		}
		top := float64(g.Rows[0].Score)
		for lev := 1; lev <= g.Len; lev++ {
			s := top * math.Pow(decay, float64(g.Len-lev))
			if s > out[lev] {
				out[lev] = s
			}
		}
	}
	return out
}

// HasLen reports whether any row has exactly the given sequence length,
// which drives the paper's column-skipping rule for cross-column bounds.
func (l *TKList) HasLen(n int) bool {
	for _, g := range l.Groups {
		if g.Len == n {
			return true
		}
	}
	return false
}

// AppendEncoded appends the on-disk blob of the score-sorted list. Columns
// are stored per group in score order, so values are unsorted and cannot be
// run-length- or delta-compressed; this is why the top-K lists in Table I
// are larger than the JDewey-ordered ones. Each group carries a column
// offset table so the top-K engine can fetch one (group, level) column at
// a time — the on-disk shape of the Section IV-C segment cursors.
func (l *TKList) AppendEncoded(buf []byte) (out []byte, sparseBytes int64) {
	buf = binary.AppendUvarint(buf, uint64(len(l.Groups)))
	for _, g := range l.Groups {
		buf = binary.AppendUvarint(buf, uint64(g.Len))
		buf = binary.AppendUvarint(buf, uint64(len(g.Rows)))
		for _, r := range g.Rows {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(r.Score))
		}
		// Column-major within the group, behind an offset table.
		cols := make([][]byte, g.Len)
		for lev := 0; lev < g.Len; lev++ {
			var col []byte
			for _, r := range g.Rows {
				col = binary.AppendUvarint(col, uint64(r.Seq[lev]))
			}
			cols[lev] = col
		}
		for _, col := range cols {
			buf = binary.AppendUvarint(buf, uint64(len(col)))
		}
		for _, col := range cols {
			buf = append(buf, col...)
		}
		// One cursor bookmark (group start offset) per group per level.
		sparseBytes += int64(8 * g.Len)
	}
	return buf, sparseBytes
}

// tkHeader indexes the blob for lazy per-(group, level) column access.
type tkHeader struct {
	lens   []int       // group sequence lengths
	scores [][]float32 // per group, descending
	colOff [][]int     // per group per level: absolute payload offset
	colLen [][]int
	end    int
	maxLen int
}

func decodeTKHeader(buf []byte) (*tkHeader, error) {
	h := &tkHeader{}
	off := 0
	nGroups, sz := binary.Uvarint(buf[off:])
	if sz <= 0 || nGroups > uint64(len(buf)) {
		return nil, fmt.Errorf("colstore: bad top-K group count")
	}
	off += sz
	prevLen := 0
	for gi := uint64(0); gi < nGroups; gi++ {
		glen, sz := binary.Uvarint(buf[off:])
		if sz <= 0 || glen == 0 || glen > 1<<15 || int(glen) <= prevLen {
			return nil, fmt.Errorf("colstore: bad top-K group %d length", gi)
		}
		off += sz
		prevLen = int(glen)
		nRows, sz := binary.Uvarint(buf[off:])
		if sz <= 0 || nRows > uint64(len(buf)) {
			return nil, fmt.Errorf("colstore: bad top-K group %d row count", gi)
		}
		off += sz
		if off+4*int(nRows) > len(buf) {
			return nil, fmt.Errorf("colstore: truncated top-K scores")
		}
		scores := make([]float32, nRows)
		for i := range scores {
			scores[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
		for i := 1; i < len(scores); i++ {
			if scores[i] > scores[i-1] {
				return nil, fmt.Errorf("colstore: top-K group %d not score-sorted", gi)
			}
		}
		colLen := make([]int, glen)
		total := 0
		for lev := range colLen {
			v, sz := binary.Uvarint(buf[off:])
			if sz <= 0 || v > uint64(len(buf)) {
				return nil, fmt.Errorf("colstore: truncated top-K column table")
			}
			colLen[lev] = int(v)
			total += int(v)
			off += sz
		}
		if off+total > len(buf) {
			return nil, fmt.Errorf("colstore: top-K columns exceed blob")
		}
		colOff := make([]int, glen)
		for lev := range colOff {
			colOff[lev] = off
			off += colLen[lev]
		}
		h.lens = append(h.lens, int(glen))
		h.scores = append(h.scores, scores)
		h.colOff = append(h.colOff, colOff)
		h.colLen = append(h.colLen, colLen)
		if int(glen) > h.maxLen {
			h.maxLen = int(glen)
		}
	}
	h.end = off
	return h, nil
}

func decodeTKColumn(data []byte, nRows int) ([]uint32, error) {
	out := make([]uint32, nRows)
	off := 0
	for i := range out {
		v, sz := binary.Uvarint(data[off:])
		if sz <= 0 || v > 1<<32-1 {
			return nil, fmt.Errorf("colstore: truncated top-K column")
		}
		out[i] = uint32(v)
		off += sz
	}
	if off != len(data) {
		return nil, fmt.Errorf("colstore: top-K column has %d trailing bytes", len(data)-off)
	}
	return out, nil
}

// DecodeTKList decodes a blob written by AppendEncoded.
func DecodeTKList(word string, buf []byte) (*TKList, int, error) {
	h, err := decodeTKHeader(buf)
	if err != nil {
		return nil, 0, err
	}
	l := &TKList{Word: word, MaxLen: h.maxLen}
	for gi, glen := range h.lens {
		g := TKGroup{Len: glen, Rows: make([]TKRow, len(h.scores[gi]))}
		for i := range g.Rows {
			g.Rows[i].Score = h.scores[gi][i]
			g.Rows[i].Seq = make([]uint32, glen)
		}
		for lev := 0; lev < glen; lev++ {
			col, err := decodeTKColumn(buf[h.colOff[gi][lev]:h.colOff[gi][lev]+h.colLen[gi][lev]], len(g.Rows))
			if err != nil {
				return nil, 0, err
			}
			for i := range g.Rows {
				g.Rows[i].Seq[lev] = col[i]
			}
		}
		l.Groups = append(l.Groups, g)
	}
	return l, h.end, nil
}
