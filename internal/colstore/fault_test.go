package colstore

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/testutil"
)

// Crash- and corruption-injection tests for the durable v2 layout. The
// invariant under test: after a crash at ANY filesystem operation of a
// save, or after arbitrary byte damage to any file, Open either serves a
// complete committed index (possibly degraded, with the damage reported by
// Health) or fails with a clean error — never a panic, never silently
// wrong results.

// fingerprint captures a store's complete queryable content.
func fingerprint(t *testing.T, s *Store) map[string]*List {
	t.Helper()
	fp := make(map[string]*List)
	for _, w := range s.Words() {
		l := s.List(w)
		if l == nil {
			t.Fatalf("list %q unavailable: %v", w, s.QuarantineErr(w))
		}
		fp[w] = l
	}
	return fp
}

func sameContent(a, b map[string]*List) bool {
	if len(a) != len(b) {
		return false
	}
	for w, l := range a {
		ol, ok := b[w]
		if !ok || !reflect.DeepEqual(l, ol) {
			return false
		}
	}
	return true
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func twoStores(t *testing.T) (*Store, *Store) {
	t.Helper()
	_, m1 := buildDoc(t, 11, testutil.SmallParams())
	_, m2 := buildDoc(t, 22, testutil.SmallParams())
	return Build(m1), Build(m2)
}

// TestSaveCrashAtEveryOp simulates a crash (with a torn final write) at
// every filesystem operation of a save over an existing committed index.
// Whatever the crash point, Open must yield exactly the old index or
// exactly the new one.
func TestSaveCrashAtEveryOp(t *testing.T) {
	oldStore, newStore := twoStores(t)
	oldFP := fingerprint(t, oldStore)
	newFP := fingerprint(t, newStore)
	if sameContent(oldFP, newFP) {
		t.Fatal("test needs two distinguishable stores")
	}

	base := t.TempDir()
	if err := oldStore.Save(base); err != nil {
		t.Fatal(err)
	}

	completed := false
	for n := 1; n <= 64 && !completed; n++ {
		dir := copyDir(t, base)
		fsys := faultinject.NewFaultFS(faultinject.OS())
		fsys.CrashAt(n)
		fsys.TornFraction(0.5)
		err := newStore.SaveFS(dir, fsys)
		if !fsys.Crashed() {
			// The schedule outlived the save: the last iteration ran it to
			// completion and must have succeeded.
			if err != nil {
				t.Fatalf("crash-free save failed: %v", err)
			}
			completed = true
		} else if err != nil && !errors.Is(err, faultinject.ErrCrashed) {
			t.Fatalf("crash at op %d surfaced as %v, want ErrCrashed", n, err)
		}
		// err == nil with Crashed() is possible: the crash hit the
		// best-effort garbage collection after the commit point.

		reopened, oerr := Open(dir)
		if oerr != nil {
			t.Fatalf("crash at op %d left an unopenable index: %v", n, oerr)
		}
		if verr := reopened.Verify(); verr != nil {
			t.Fatalf("crash at op %d left a damaged index: %v", n, verr)
		}
		fp := fingerprint(t, reopened)
		if !sameContent(fp, oldFP) && !sameContent(fp, newFP) {
			t.Fatalf("crash at op %d left a mixed-generation index", n)
		}
	}
	if !completed {
		t.Fatal("save never ran to completion within the op budget")
	}
}

// TestSaveCrashOnEmptyDir is the first-save variant: with no previous
// generation, a crashed save must leave the directory unopenable with a
// clean error (there is nothing to fall back to), and a later retry must
// succeed and serve the full index.
func TestSaveCrashOnEmptyDir(t *testing.T) {
	s, _ := twoStores(t)
	want := fingerprint(t, s)
	for n := 1; n <= 10; n++ {
		dir := t.TempDir()
		fsys := faultinject.NewFaultFS(faultinject.OS())
		fsys.CrashAt(n)
		err := s.SaveFS(dir, fsys)
		if !fsys.Crashed() {
			if err != nil {
				t.Fatalf("crash-free save failed: %v", err)
			}
			break
		}
		if err != nil && !errors.Is(err, faultinject.ErrCrashed) {
			t.Fatalf("crash at op %d surfaced as %v", n, err)
		}
		if reopened, oerr := Open(dir); oerr == nil {
			// Only acceptable if the crash hit post-commit cleanup.
			if verr := reopened.Verify(); verr != nil {
				t.Fatalf("crash at op %d opened but damaged: %v", n, verr)
			}
			if !sameContent(fingerprint(t, reopened), want) {
				t.Fatalf("crash at op %d opened with wrong content", n)
			}
		}
		// Recovery: a retry over the crashed wreckage must work.
		if err := s.Save(dir); err != nil {
			t.Fatalf("retry after crash at op %d failed: %v", n, err)
		}
		reopened, oerr := Open(dir)
		if oerr != nil {
			t.Fatalf("retry after crash at op %d unopenable: %v", n, oerr)
		}
		if !sameContent(fingerprint(t, reopened), want) {
			t.Fatalf("retry after crash at op %d lost content", n)
		}
	}
}

// TestBitFlipEveryFile flips bytes at a sweep of offsets in every index
// file; each flip must produce a clean Open error or a degraded index
// whose Health reports the damage — never a panic and never an index that
// claims to be intact.
func TestBitFlipEveryFile(t *testing.T) {
	s, _ := twoStores(t)
	intact := fingerprint(t, s)
	base := t.TempDir()
	if err := s.Save(base); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		size := int(info.Size())
		step := size / 16
		if step == 0 {
			step = 1
		}
		for off := 0; off < size; off += step {
			dir := copyDir(t, base)
			if err := faultinject.FlipByte(filepath.Join(dir, e.Name()), int64(off), 0); err != nil {
				t.Fatal(err)
			}
			assertCleanOrDegraded(t, dir, intact, e.Name(), off)
		}
	}
}

// TestTruncationEveryFile truncates every index file at a sweep of
// lengths, with the same clean-or-degraded requirement.
func TestTruncationEveryFile(t *testing.T) {
	s, _ := twoStores(t)
	intact := fingerprint(t, s)
	base := t.TempDir()
	if err := s.Save(base); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		size := int(info.Size())
		for _, keep := range []int{0, 1, size / 4, size / 2, size - 1} {
			if keep < 0 || keep >= size {
				continue
			}
			dir := copyDir(t, base)
			if err := faultinject.Truncate(filepath.Join(dir, e.Name()), int64(keep)); err != nil {
				t.Fatal(err)
			}
			assertCleanOrDegraded(t, dir, intact, e.Name(), keep)
		}
	}
}

// assertCleanOrDegraded opens a damaged directory and enforces the
// degradation contract: Open fails cleanly, or it succeeds and every
// served list is bit-identical to the intact one while all damage is
// visible through Health.
func assertCleanOrDegraded(t *testing.T, dir string, intact map[string]*List, file string, off int) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s@%d: panic: %v", file, off, r)
		}
	}()
	reopened, err := Open(dir)
	if err != nil {
		return
	}
	h := reopened.Health()
	for w, want := range intact {
		got := reopened.List(w)
		if got == nil {
			continue // quarantined; must show up in Health below
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s@%d: term %q served wrong data", file, off, w)
		}
	}
	h = reopened.Health() // re-sweep: List() above may have quarantined more
	for w := range intact {
		if reopened.List(w) == nil && reopened.QuarantineErr(w) == nil {
			t.Fatalf("%s@%d: term %q vanished without quarantine", file, off, w)
		}
	}
	quarantined := map[string]bool{}
	for _, q := range h.Quarantined {
		quarantined[q.Term] = true
	}
	for w := range intact {
		if reopened.QuarantineErr(w) != nil && !quarantined[w] {
			t.Fatalf("%s@%d: term %q quarantined but not in Health", file, off, w)
		}
	}
}

// TestQuarantineContainment corrupts exactly one term's column extent and
// requires: that term reads as absent and is reported, every other term
// keeps serving exact results.
func TestQuarantineContainment(t *testing.T) {
	s, _ := twoStores(t)
	intact := fingerprint(t, s)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	gen, ok, err := CurrentGen(dir)
	if err != nil || !ok {
		t.Fatalf("no commit point after save: %v", err)
	}

	// Pick a deterministic victim term and flip one byte inside its extent.
	opened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	words := opened.Words()
	victim := words[len(words)/2]
	e := opened.lex[victim]
	if e.colLen == 0 {
		t.Fatalf("victim %q has empty extent", victim)
	}
	colPath := filepath.Join(dir, GenName(fileColumns, gen))
	// The blob payload starts at offset 0 of the file, so extent offsets are
	// file offsets.
	off := int64(e.colOff) + int64(rand.New(rand.NewSource(3)).Intn(int(e.colLen)))
	if err := faultinject.FlipByte(colPath, off, 0); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatalf("single-term damage must not fail Open: %v", err)
	}
	if l := reopened.List(victim); l != nil {
		t.Fatalf("victim %q still served after corruption", victim)
	}
	if reopened.QuarantineErr(victim) == nil {
		t.Fatalf("victim %q not quarantined", victim)
	}
	h := reopened.Health()
	if !h.Degraded() {
		t.Fatal("Health claims intact index despite quarantine")
	}
	found := false
	for _, q := range h.Quarantined {
		if q.Term == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("Health does not report victim %q: %+v", victim, h.Quarantined)
	}
	for _, w := range words {
		if w == victim {
			continue
		}
		got := reopened.List(w)
		if got == nil {
			t.Fatalf("healthy term %q collaterally damaged: %v", w, reopened.QuarantineErr(w))
		}
		if !reflect.DeepEqual(got, intact[w]) {
			t.Fatalf("healthy term %q served wrong data", w)
		}
	}
}
