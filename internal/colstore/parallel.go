package colstore

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/budget"
	"repro/internal/obs"
)

// Parallel multi-list open: a query's inverted lists are independent, so
// the checksum verification and block decoding of the ones not yet decoded
// fan out across a bounded worker pool instead of running serially under
// the store lock. Cached (or in-memory) lists are resolved under the lock
// without touching the pool, so the common hot-cache case costs exactly
// what the serial path did.

// openWorkers bounds the decode pool of one multi-list open. Queries
// rarely carry more than a handful of keywords; the bound exists so a
// pathological many-keyword query cannot monopolize every CPU.
const openWorkers = 8

// Lists opens the JDewey-ordered column lists of all terms at once,
// decoding cache misses in parallel. The result is positional: out[i] is
// the list of terms[i], nil when the term is unindexed or quarantined —
// exactly what a loop over ListObs would produce, minus the serial decode
// latency. Trace events are emitted from the calling goroutine only.
func (s *Store) Lists(terms []string, tr *obs.Trace) []*List {
	out, _ := s.ListsBudget(terms, tr, nil)
	return out
}

// ListsBudget is Lists charging every opened list's in-memory size
// against the query budget (nil = unlimited). A budget trip returns the
// budget error; lists decoded before the trip stay published to the
// cache — the work is done and reusable — but the query must not use the
// partially resolved slice.
func (s *Store) ListsBudget(terms []string, tr *obs.Trace, bdg *budget.B) ([]*List, error) {
	vals, err := s.openMany(terms, false, tr, bdg)
	out := make([]*List, len(vals))
	for i, v := range vals {
		if v != nil {
			out[i] = v.(*List)
		}
	}
	return out, err
}

// TopKLists is Lists for the score-sorted top-K lists.
func (s *Store) TopKLists(terms []string, tr *obs.Trace) []*TKList {
	out, _ := s.TopKListsBudget(terms, tr, nil)
	return out
}

// TopKListsBudget is ListsBudget for the score-sorted top-K lists.
func (s *Store) TopKListsBudget(terms []string, tr *obs.Trace, bdg *budget.B) ([]*TKList, error) {
	vals, err := s.openMany(terms, true, tr, bdg)
	out := make([]*TKList, len(vals))
	for i, v := range vals {
		if v != nil {
			out[i] = v.(*TKList)
		}
	}
	return out, err
}

// decodedSizeAny sizes either list kind for budget charging.
func decodedSizeAny(v any) int64 {
	switch l := v.(type) {
	case *List:
		return l.DecodedSize()
	case *TKList:
		return l.DecodedSize()
	}
	return 0
}

// listDims reports the row count and deepest level of either list kind,
// for trace attribution.
func listDims(v any) (rows, maxLen int) {
	switch l := v.(type) {
	case *List:
		return l.NumRows, l.MaxLen
	case *TKList:
		return l.NumRows(), l.MaxLen
	}
	return 0, 0
}

// openMany resolves every term in three phases: under the lock, memoized
// and cached lists are returned and the extents of the rest are
// bounds-checked and captured; off the lock, the captured blobs are
// checksum-verified and decoded concurrently (the blobs are immutable
// after Open, so reading them unlocked is safe); under the lock again, the
// decodes are published (cache or memo), failures quarantined, and
// counters and trace events recorded.
//
// Every resolved list — memo hit, cache hit, or fresh decode — is charged
// against bdg; the first trip aborts resolution with the budget error
// (decodes already completed are still published, so the work is not
// thrown away, but the caller must fail the query rather than run on the
// partial slice).
func (s *Store) openMany(terms []string, tk bool, tr *obs.Trace, bdg *budget.B) ([]any, error) {
	if s.fallback != nil {
		return s.openManyOverlay(terms, tk, tr, bdg)
	}
	out := make([]any, len(terms))
	type job struct {
		idxs    []int // positions in terms resolving to this decode
		term    string
		blob    []byte
		crc     uint32
		hasCRC  bool
		encLen  int64
		val     any
		blocks  int
		decoded int64
		sparse  int64
		err     error
	}
	var jobs []*job
	pending := map[string]*job{} // dedup: one decode per distinct term
	s.mu.Lock()
	for i, term := range terms {
		var memo any
		if tk {
			if l, ok := s.tklists[term]; ok {
				memo = l
			}
		} else {
			if l, ok := s.lists[term]; ok {
				memo = l
			}
		}
		e, onDisk := s.lex[term]
		var encLen int64
		if onDisk {
			if tk {
				encLen = int64(e.tkLen)
			} else {
				encLen = int64(e.colLen)
			}
		}
		if memo != nil {
			out[i] = memo
			s.obsC.RecordOpen()
			if tr != nil {
				rows, maxLen := listDims(memo)
				tr.ListOpen(term, rows, maxLen, encLen)
			}
			if err := bdg.ChargeDecoded(decodedSizeAny(memo)); err != nil {
				s.mu.Unlock()
				return out, err
			}
			continue
		}
		if qerr, bad := s.quarantined[term]; bad {
			if tr != nil {
				tr.Quarantine(term, qerr.Error())
			}
			continue
		}
		if !onDisk {
			continue
		}
		if s.cache != nil {
			if v, hit := s.cache.get(cacheKey{term: term, tk: tk}); hit {
				out[i] = v
				bdg.NoteCacheHit()
				s.obsC.RecordOpen()
				if tr != nil {
					rows, maxLen := listDims(v)
					tr.ListOpen(term, rows, maxLen, encLen)
				}
				if err := bdg.ChargeDecoded(decodedSizeAny(v)); err != nil {
					s.mu.Unlock()
					return out, err
				}
				continue
			}
		}
		if j, dup := pending[term]; dup {
			j.idxs = append(j.idxs, i)
			continue
		}
		j := &job{idxs: []int{i}, term: term, hasCRC: e.hasCRC, encLen: encLen}
		if tk {
			if e.tkOff+e.tkLen > uint64(len(s.tkBlob)) {
				j.err = fmt.Errorf("colstore: top-K extent [%d,+%d) outside blob (%d bytes)", e.tkOff, e.tkLen, len(s.tkBlob))
			} else {
				j.blob, j.crc = s.tkBlob[e.tkOff:e.tkOff+e.tkLen], e.tkCRC
			}
		} else {
			if e.colOff+e.colLen > uint64(len(s.colBlob)) {
				j.err = fmt.Errorf("colstore: column extent [%d,+%d) outside blob (%d bytes)", e.colOff, e.colLen, len(s.colBlob))
			} else {
				j.blob, j.crc = s.colBlob[e.colOff:e.colOff+e.colLen], e.colCRC
			}
		}
		jobs = append(jobs, j)
		pending[term] = j
	}
	s.mu.Unlock()
	if len(jobs) == 0 {
		return out, nil
	}
	// The stage span brackets only the decode fan-out (the part the cache
	// saves); it opens and closes on the calling goroutine, keeping the
	// trace single-goroutine while the workers run.
	dsp := tr.Stage(obs.StageDecode)

	decode := func(j *job) {
		if j.err != nil {
			return
		}
		if j.hasCRC && Checksum(j.blob) != j.crc {
			if tk {
				j.err = fmt.Errorf("colstore: top-K list checksum mismatch")
			} else {
				j.err = fmt.Errorf("colstore: column list checksum mismatch")
			}
			return
		}
		if tk {
			l, _, err := DecodeTKList(j.term, j.blob)
			if err != nil {
				j.err = err
				return
			}
			j.val = l
			j.blocks, j.decoded = tkDecodeStats(l)
		} else {
			l, _, err := DecodeList(j.term, j.blob)
			if err != nil {
				j.err = err
				return
			}
			j.val = l
			j.blocks, j.decoded, j.sparse = listDecodeStats(l)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > openWorkers {
		workers = openWorkers
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			decode(j)
		}
	} else {
		ch := make(chan *job, len(jobs))
		for _, j := range jobs {
			ch <- j
		}
		close(ch)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range ch {
					decode(j)
				}
			}()
		}
		wg.Wait()
	}
	tr.End(dsp)

	var budgetErr error
	s.mu.Lock()
	for _, j := range jobs {
		if j.err != nil {
			s.quarantine(j.term, j.err)
			if tr != nil {
				tr.Quarantine(j.term, j.err.Error())
			}
			continue
		}
		for _, idx := range j.idxs {
			out[idx] = j.val
			s.obsC.RecordOpen()
			if tr != nil {
				rows, maxLen := listDims(j.val)
				tr.ListOpen(j.term, rows, maxLen, j.encLen)
			}
		}
		if s.cache != nil {
			s.cache.put(cacheKey{term: j.term, tk: tk}, j.val, j.decoded)
		} else if _, still := s.lex[j.term]; still {
			// Guard against a concurrent Replace having superseded the
			// on-disk form between the phases.
			if tk {
				s.tklists[j.term] = j.val.(*TKList)
			} else {
				s.lists[j.term] = j.val.(*List)
			}
		}
		s.obsC.RecordDecode(j.blocks, int64(len(j.blob)), j.decoded)
		if !tk {
			s.obsC.RecordSparseSkips(j.sparse)
		}
		if tr != nil {
			tr.Decode(j.term, j.blocks, int64(len(j.blob)), j.decoded)
		}
		// Charge after publication: the decode is cached and reusable even
		// when this query's budget trips on it.
		if budgetErr == nil {
			budgetErr = bdg.ChargeDecoded(j.decoded)
		}
	}
	s.mu.Unlock()
	return out, budgetErr
}
