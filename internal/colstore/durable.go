package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/faultinject"
)

// Durable on-disk layout (format v2).
//
// A v2 index directory is a set of immutable generation files plus one
// commit point:
//
//	CURRENT            "XKWCUR1\n<gen>\n" — names the committed generation
//	lexicon.<gen>      v2 lexicon (magic XKWCOL2, per-list CRC32C) + footer
//	postings.col.<gen> column blob + footer
//	postings.tk.<gen>  top-K blob + footer
//
// plus, at the xmlsearch layer, document.xml.<gen> and index.meta.<gen>.
// A save writes a complete new generation (every file fsynced), fsyncs the
// directory, and only then publishes it by renaming CURRENT.tmp over
// CURRENT — the single atomic step. A crash or torn write at ANY earlier
// point leaves CURRENT pointing at the previous complete generation, so
// the old index stays readable; a crash after the rename leaves at worst
// unreferenced orphan files, which the next successful save garbage-
// collects. Directories without CURRENT are read as legacy v1 layouts
// (fixed file names, magic XKWCOL1, no checksums).
//
// Every v2 file ends with a fixed-size footer:
//
//	uint64 LE payload length | uint32 LE CRC32C(payload) | "XKWFTR1\n"
//
// so truncation and tail corruption are detectable per file, while the
// per-list CRCs in the lexicon localize damage to individual terms.

const (
	// CurrentFile is the commit-point file of a v2 index directory.
	CurrentFile  = "CURRENT"
	currentTmp   = "CURRENT.tmp"
	currentMagic = "XKWCUR1\n"

	footerMagic = "XKWFTR1\n"
	footerSize  = 8 + 4 + len(footerMagic)
)

// castagnoli is the CRC32C polynomial table all index checksums use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of data, the checksum every v2 index file
// and list extent is protected with.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// AppendFooter appends the v2 file footer (length, CRC32C, magic) to buf,
// which must hold the complete payload.
func AppendFooter(buf []byte) []byte {
	crc := Checksum(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(buf)))
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return append(buf, footerMagic...)
}

// StripFooter verifies a v2 file's footer and returns the payload. It
// fails on a missing or malformed footer, a length mismatch (truncation or
// trailing garbage), or a CRC mismatch.
func StripFooter(data []byte) ([]byte, error) {
	if len(data) < footerSize {
		return nil, fmt.Errorf("colstore: file shorter than its footer (%d bytes)", len(data))
	}
	tail := data[len(data)-footerSize:]
	if string(tail[12:]) != footerMagic {
		return nil, fmt.Errorf("colstore: missing footer magic")
	}
	payload := data[:len(data)-footerSize]
	if n := binary.LittleEndian.Uint64(tail[:8]); n != uint64(len(payload)) {
		return nil, fmt.Errorf("colstore: footer length %d, payload %d bytes", n, len(payload))
	}
	if crc := binary.LittleEndian.Uint32(tail[8:12]); crc != Checksum(payload) {
		return nil, fmt.Errorf("colstore: file checksum mismatch")
	}
	return payload, nil
}

// GenName returns the name of a generation file: "<name>.<gen>".
func GenName(name string, gen uint64) string {
	return name + "." + strconv.FormatUint(gen, 10)
}

// CurrentGen reads the commit point. ok is false when the directory has no
// CURRENT file (a legacy v1 layout or an empty directory); a CURRENT file
// that exists but cannot be parsed is corruption and returns an error.
func CurrentGen(dir string) (gen uint64, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, CurrentFile))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("colstore: read commit point: %w", err)
	}
	s := string(data)
	if !strings.HasPrefix(s, currentMagic) || !strings.HasSuffix(s, "\n") {
		return 0, false, fmt.Errorf("colstore: malformed commit point")
	}
	gen, perr := strconv.ParseUint(strings.TrimSuffix(s[len(currentMagic):], "\n"), 10, 64)
	if perr != nil || gen == 0 {
		return 0, false, fmt.Errorf("colstore: malformed commit point generation")
	}
	return gen, true, nil
}

// NextGen picks the generation number for a new save: one past both the
// committed generation and any orphaned generation files (from saves that
// crashed after writing files but before committing), so a new save never
// overwrites bytes any reader could be using.
func NextGen(dir string) (uint64, error) {
	gen, _, err := CurrentGen(dir)
	if err != nil {
		// A corrupt commit point must not block recovery by re-save; start
		// past any orphans instead.
		gen = 0
	}
	entries, derr := os.ReadDir(dir)
	if derr != nil && !os.IsNotExist(derr) {
		return 0, fmt.Errorf("colstore: next generation: %w", derr)
	}
	for _, e := range entries {
		if g, ok := genSuffix(e.Name()); ok && g > gen {
			gen = g
		}
	}
	return gen + 1, nil
}

// genSuffix parses the "<name>.<digits>" generation suffix.
func genSuffix(name string) (uint64, bool) {
	i := strings.LastIndexByte(name, '.')
	if i < 0 || i == len(name)-1 {
		return 0, false
	}
	g, err := strconv.ParseUint(name[i+1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

// CommitGen atomically publishes a fully-written generation: the directory
// is fsynced first (the generation files' names must be durable before
// anything references them), then CURRENT is replaced via rename, then the
// directory is fsynced again.
func CommitGen(dir string, gen uint64, fsys faultinject.FS) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("colstore: commit: %w", err)
	}
	cur := currentMagic + strconv.FormatUint(gen, 10) + "\n"
	if err := fsys.WriteFile(filepath.Join(dir, currentTmp), []byte(cur), 0o644); err != nil {
		return fmt.Errorf("colstore: commit: %w", err)
	}
	if err := fsys.Rename(filepath.Join(dir, currentTmp), filepath.Join(dir, CurrentFile)); err != nil {
		return fmt.Errorf("colstore: commit: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("colstore: commit: %w", err)
	}
	return nil
}

// legacyNames are the fixed pre-generation file names; once a v2 CURRENT
// exists they are dead and garbage-collected with the stale generations.
// The xmlsearch layer passes its own legacy names as extras.
var legacyNames = []string{fileColumns, fileTopK, fileLexicon}

// RemoveStaleGens best-effort deletes every generation file other than
// keep's, leftover commit temporaries, and the legacy fixed-name files
// (plus any extra legacy names). Failures are ignored: stale files are
// only wasted space, never incorrectness.
func RemoveStaleGens(dir string, keep uint64, fsys faultinject.FS, extraLegacy ...string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	legacy := append(append([]string{currentTmp}, legacyNames...), extraLegacy...)
	for _, e := range entries {
		name := e.Name()
		if g, ok := genSuffix(name); ok && g != keep {
			_ = fsys.Remove(filepath.Join(dir, name))
			continue
		}
		for _, l := range legacy {
			if name == l {
				_ = fsys.Remove(filepath.Join(dir, name))
				break
			}
		}
	}
}
