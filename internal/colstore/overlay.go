package colstore

import (
	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/occur"
)

// Delta overlay: the merged-view store of the incremental write path. An
// overlay is a normal in-memory Store built from just the dirty terms of a
// delta segment, with a fallback pointer to the immutable base store. Reads
// of a dirty term are served from the overlay's own maps (the merged
// base⊕delta list, rebuilt at publish time); every other term delegates to
// the base, so the overlay costs O(dirty terms) while queries see one
// coherent lexicon. Engines never know: they hold a *Store either way.

// NewOverlay builds a delta overlay serving m's terms itself and
// delegating everything else to base. The overlay shares base's read-path
// counters so store observability stays unified across the chain.
func NewOverlay(m *occur.Map, base *Store) *Store {
	s := Build(m)
	base.mu.Lock()
	s.obsC = base.obsC
	base.mu.Unlock()
	s.fallback = base
	return s
}

// Base returns the store this overlay delegates to (nil for a base store).
func (s *Store) Base() *Store { return s.fallback }

// OverlayDepth reports how many overlays are chained above the base store.
func (s *Store) OverlayDepth() int {
	d := 0
	for f := s.fallback; f != nil; f = f.fallback {
		d++
	}
	return d
}

// overlayMiss reports where term must be served from: nil when this store
// owns it (or is not an overlay), the fallback store otherwise.
func (s *Store) overlayMiss(term string, tk bool) *Store {
	if s.fallback == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var own bool
	if tk {
		_, own = s.tklists[term]
	} else {
		_, own = s.lists[term]
	}
	if own {
		return nil
	}
	return s.fallback
}

// openManyOverlay is the overlay arm of openMany: own terms resolve
// immediately from the in-memory maps, the rest delegate positionally to
// the fallback's full three-phase open.
func (s *Store) openManyOverlay(terms []string, tk bool, tr *obs.Trace, bdg *budget.B) ([]any, error) {
	out := make([]any, len(terms))
	rest := make([]string, 0, len(terms))
	restIdx := make([]int, 0, len(terms))
	s.mu.Lock()
	for i, term := range terms {
		var memo any
		if tk {
			if l, ok := s.tklists[term]; ok {
				memo = l
			}
		} else {
			if l, ok := s.lists[term]; ok {
				memo = l
			}
		}
		if memo == nil {
			rest = append(rest, term)
			restIdx = append(restIdx, i)
			continue
		}
		out[i] = memo
		s.obsC.RecordOpen()
		if tr != nil {
			rows, maxLen := listDims(memo)
			tr.ListOpen(term, rows, maxLen, 0)
		}
		if err := bdg.ChargeDecoded(decodedSizeAny(memo)); err != nil {
			s.mu.Unlock()
			return out, err
		}
	}
	s.mu.Unlock()
	if len(rest) == 0 {
		return out, nil
	}
	vals, err := s.fallback.openMany(rest, tk, tr, bdg)
	for i, v := range vals {
		out[restIdx[i]] = v
	}
	return out, err
}
