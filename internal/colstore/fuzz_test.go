package colstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/jdewey"
	"repro/internal/occur"
	"repro/internal/testutil"
)

// Fuzz targets: the decoders must never panic and must reject structural
// corruption instead of silently producing invalid lists. `go test` runs
// the seed corpus; `go test -fuzz` explores further.

func seedBlobs() ([][]byte, [][]byte) {
	rng := rand.New(rand.NewSource(1))
	doc := testutil.RandomDoc(rng, testutil.SmallParams())
	jdewey.Assign(doc, 0)
	m := occur.Extract(doc)
	var col, tk [][]byte
	for w, occs := range m.Terms {
		b, _ := BuildList(w, occs).AppendEncoded(nil)
		col = append(col, b)
		b2, _ := BuildTKList(w, occs).AppendEncoded(nil)
		tk = append(tk, b2)
	}
	return col, tk
}

// FuzzOpenLexicon drives the lexicon parser with mutations of real saved
// lexicons (both format magics). Accepted inputs must be self-consistent:
// per-entry extents non-wrapping and the entry count as declared.
func FuzzOpenLexicon(f *testing.F) {
	rng := rand.New(rand.NewSource(2))
	doc := testutil.RandomDoc(rng, testutil.SmallParams())
	jdewey.Assign(doc, 0)
	s := Build(occur.Extract(doc))
	dir := f.TempDir()
	if err := s.Save(dir); err != nil {
		f.Fatal(err)
	}
	gen, ok, err := CurrentGen(dir)
	if err != nil || !ok {
		f.Fatalf("no commit point: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, GenName(fileLexicon, gen)))
	if err != nil {
		f.Fatal(err)
	}
	payload, err := StripFooter(raw)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(payload)
	f.Add(raw) // footer still attached: must be rejected as trailing bytes
	f.Add([]byte(magicV1))
	f.Add([]byte(magicV2))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, depth, entries, err := parseLexicon(data)
		if err != nil {
			return
		}
		if n < 0 || depth < 0 || depth > 1<<15 {
			t.Fatalf("accepted implausible header n=%d depth=%d", n, depth)
		}
		for w, e := range entries {
			if e.colOff+e.colLen < e.colOff || e.tkOff+e.tkLen < e.tkOff {
				t.Fatalf("entry %q has wrapping extent", w)
			}
		}
	})
}

func FuzzDecodeList(f *testing.F) {
	col, _ := seedBlobs()
	for _, b := range col {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, _, err := DecodeList("w", data)
		if err != nil {
			return
		}
		// Anything accepted must satisfy the structural invariants.
		if vErr := l.Validate(); vErr != nil {
			t.Fatalf("decoded list violates invariants: %v", vErr)
		}
		// And a streaming handle over the same data must agree per column.
		h, hErr := NewHandle("w", data)
		if hErr != nil {
			t.Fatalf("DecodeList accepted what NewHandle rejected: %v", hErr)
		}
		for lev := 1; lev <= l.MaxLen; lev++ {
			hc := h.Col(lev)
			if hc == nil {
				t.Fatalf("handle lost column %d", lev)
			}
			if len(hc.Runs) != len(l.Cols[lev-1].Runs) {
				t.Fatalf("handle column %d has %d runs, list %d", lev, len(hc.Runs), len(l.Cols[lev-1].Runs))
			}
		}
	})
}

func FuzzDecodeTKList(f *testing.F) {
	_, tk := seedBlobs()
	for _, b := range tk {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, _, err := DecodeTKList("w", data)
		if err != nil {
			return
		}
		// Score-descending within groups, lengths consistent.
		for _, g := range l.Groups {
			for i, r := range g.Rows {
				if len(r.Seq) != g.Len {
					t.Fatal("row length mismatch survived decoding")
				}
				if i > 0 && r.Score > g.Rows[i-1].Score {
					t.Fatal("score order violation survived decoding")
				}
			}
		}
		if _, err := NewTKHandle("w", data); err != nil {
			t.Fatalf("DecodeTKList accepted what NewTKHandle rejected: %v", err)
		}
	})
}
