package colstore

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Column encodings (Section III-D, after [19]).
//
// Which rows a column covers is fully determined by the per-row sequence
// lengths (row r has column l iff Lens[r] >= l), so the encodings store
// only the values:
//
//   - encRLE stores one (value delta, repeat count) pair per run — the
//     paper's (v, r, c) triples with the row made implicit. Chosen for
//     columns whose values repeat (upper tree levels, biased contexts).
//   - encDelta stores one value delta per covered row, with the raw value
//     at every block boundary (the block-header scheme of [19]). Chosen
//     for distinct-heavy columns (leaf levels), where a delta is usually a
//     single byte — which is how the JDewey encoding stays competitive
//     with Dewey storage despite per-level-unique numbers.
const (
	encRLE   = 0
	encDelta = 1
)

// deltaBlock is the number of entries per delta block; each block boundary
// stores the raw JDewey number and contributes one sparse-index entry.
const deltaBlock = 128

// rleThreshold selects RLE when runs cover at least this many rows each on
// average.
const rleThreshold = 1.5

// chooseEncoding picks the compression scheme for a column.
func chooseEncoding(c *Column) byte {
	entries := c.NumEntries()
	if len(c.Runs) == 0 || float64(entries)/float64(len(c.Runs)) >= rleThreshold {
		return encRLE
	}
	return encDelta
}

// sparseEvery is the run stride of the per-column sparse index over RLE
// columns: one (value, offset) entry per sparseEvery runs. Columns with
// fewer runs need no sparse entries at all, which keeps the aggregate
// sparse size a few percent of the lists, as in Table I.
const sparseEvery = 64

// AppendEncoded appends the list's on-disk blob:
//
//	header:  uvarint numRows, uvarint maxLen,
//	         numRows x uvarint sequence length,
//	         numRows x float32 local score
//	table:   maxLen x uvarint column payload length
//	columns: maxLen x (enc byte, uvarint count, values payload)
//
// The offset table is what lets query evaluation read one column at a time
// (Section III-B: the algorithm never reads whole JDewey sequences from
// disk at once). It returns the blob plus the byte size of the sparse
// index that would accompany it (accounted separately, as in Table I).
func (l *List) AppendEncoded(buf []byte) (out []byte, sparseBytes int64) {
	buf = binary.AppendUvarint(buf, uint64(l.NumRows))
	buf = binary.AppendUvarint(buf, uint64(l.MaxLen))
	for _, n := range l.Lens {
		buf = binary.AppendUvarint(buf, uint64(n))
	}
	for _, s := range l.Scores {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(s))
	}
	cols := make([][]byte, l.MaxLen)
	for i := range l.Cols {
		var sp int64
		cols[i], sp = appendColumn(nil, &l.Cols[i])
		sparseBytes += sp
	}
	for _, c := range cols {
		buf = binary.AppendUvarint(buf, uint64(len(c)))
	}
	for _, c := range cols {
		buf = append(buf, c...)
	}
	return buf, sparseBytes
}

// appendColumn encodes one column payload.
func appendColumn(buf []byte, c *Column) (out []byte, sparseBytes int64) {
	enc := chooseEncoding(c)
	buf = append(buf, enc)
	switch enc {
	case encRLE:
		buf = binary.AppendUvarint(buf, uint64(len(c.Runs)))
		prevVal := uint32(0)
		for _, r := range c.Runs {
			buf = binary.AppendUvarint(buf, uint64(r.Value-prevVal))
			buf = binary.AppendUvarint(buf, uint64(r.Count))
			prevVal = r.Value
		}
		sparseBytes = int64(len(c.Runs) / sparseEvery * 8)
	case encDelta:
		entries := c.NumEntries()
		buf = binary.AppendUvarint(buf, uint64(entries))
		prevVal := uint32(0)
		n := 0
		for _, r := range c.Runs {
			for rep := uint32(0); rep < r.Count; rep++ {
				if n%deltaBlock == 0 {
					buf = binary.AppendUvarint(buf, uint64(r.Value))
				} else {
					buf = binary.AppendUvarint(buf, uint64(r.Value-prevVal))
				}
				prevVal = r.Value
				n++
			}
		}
		sparseBytes = int64(entries / deltaBlock * 8)
	}
	return buf, sparseBytes
}

// header is the decoded fixed part of a list blob plus the column extents.
type header struct {
	numRows int
	maxLen  int
	lens    []uint16
	scores  []float32
	colOff  []int // byte offset of each column payload within the blob
	colLen  []int
	end     int // offset just past the last column
}

// decodeHeader parses the header and column offset table.
func decodeHeader(buf []byte) (*header, error) {
	h := &header{}
	off := 0
	numRows, sz := binary.Uvarint(buf[off:])
	if sz <= 0 {
		return nil, fmt.Errorf("colstore: truncated row count")
	}
	off += sz
	maxLen, sz := binary.Uvarint(buf[off:])
	if sz <= 0 {
		return nil, fmt.Errorf("colstore: truncated max length")
	}
	off += sz
	if numRows > uint64(len(buf)) || maxLen > 1<<15 {
		return nil, fmt.Errorf("colstore: implausible header (%d rows, depth %d)", numRows, maxLen)
	}
	h.numRows = int(numRows)
	h.maxLen = int(maxLen)
	h.lens = make([]uint16, numRows)
	for i := range h.lens {
		v, sz := binary.Uvarint(buf[off:])
		if sz <= 0 || v == 0 || v > maxLen {
			return nil, fmt.Errorf("colstore: bad length for row %d", i)
		}
		h.lens[i] = uint16(v)
		off += sz
	}
	if off+4*h.numRows > len(buf) {
		return nil, fmt.Errorf("colstore: truncated scores")
	}
	h.scores = make([]float32, numRows)
	for i := range h.scores {
		h.scores[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	h.colOff = make([]int, h.maxLen)
	h.colLen = make([]int, h.maxLen)
	total := 0
	for i := 0; i < h.maxLen; i++ {
		v, sz := binary.Uvarint(buf[off:])
		if sz <= 0 || v > uint64(len(buf)) {
			return nil, fmt.Errorf("colstore: truncated column table")
		}
		h.colLen[i] = int(v)
		total += int(v)
		off += sz
	}
	if off+total > len(buf) {
		return nil, fmt.Errorf("colstore: columns exceed blob")
	}
	for i := 0; i < h.maxLen; i++ {
		h.colOff[i] = off
		off += h.colLen[i]
	}
	h.end = off
	return h, nil
}

// decodeColumn decodes the payload of one 1-based level. The lens slice
// drives the reconstruction of global row ids.
func decodeColumn(data []byte, lev int, numRows int, lens []uint16) (*Column, error) {
	c := &Column{Level: lev}
	if len(data) == 0 {
		return nil, fmt.Errorf("colstore: empty column %d", lev)
	}
	enc := data[0]
	off := 1
	count, sz := binary.Uvarint(data[off:])
	if sz <= 0 || count > uint64(numRows) {
		return nil, fmt.Errorf("colstore: bad entry count in column %d", lev)
	}
	off += sz
	cursor := 0
	nextCovered := func() int {
		for cursor < numRows && int(lens[cursor]) < lev {
			cursor++
		}
		return cursor
	}
	switch enc {
	case encRLE:
		prevVal := uint32(0)
		for j := uint64(0); j < count; j++ {
			dv, sz := binary.Uvarint(data[off:])
			if sz <= 0 {
				return nil, fmt.Errorf("colstore: truncated run in column %d", lev)
			}
			off += sz
			cnt, sz := binary.Uvarint(data[off:])
			if sz <= 0 || cnt == 0 || cnt > uint64(numRows) {
				return nil, fmt.Errorf("colstore: bad run count in column %d", lev)
			}
			off += sz
			row := nextCovered()
			if row+int(cnt) > numRows {
				return nil, fmt.Errorf("colstore: run exceeds rows in column %d", lev)
			}
			prevVal += uint32(dv)
			c.Runs = append(c.Runs, Run{Value: prevVal, Row: uint32(row), Count: uint32(cnt)})
			cursor = row + int(cnt)
		}
	case encDelta:
		prevVal := uint32(0)
		for j := uint64(0); j < count; j++ {
			v, sz := binary.Uvarint(data[off:])
			if sz <= 0 {
				return nil, fmt.Errorf("colstore: truncated entry in column %d", lev)
			}
			off += sz
			val := uint32(v)
			if j%deltaBlock != 0 {
				val += prevVal
			}
			prevVal = val
			row := nextCovered()
			if row >= numRows {
				return nil, fmt.Errorf("colstore: entry beyond rows in column %d", lev)
			}
			if n := len(c.Runs); n > 0 && c.Runs[n-1].Value == val && c.Runs[n-1].Row+c.Runs[n-1].Count == uint32(row) {
				c.Runs[n-1].Count++
			} else {
				c.Runs = append(c.Runs, Run{Value: val, Row: uint32(row), Count: 1})
			}
			cursor = row + 1
		}
	default:
		return nil, fmt.Errorf("colstore: unknown encoding %d in column %d", enc, lev)
	}
	if off != len(data) {
		return nil, fmt.Errorf("colstore: column %d has %d trailing bytes", lev, len(data)-off)
	}
	return c, nil
}

// DecodeList decodes a blob produced by AppendEncoded, reconstructing the
// run structure (global row ids included) from the stored lengths. The
// decoded list is validated before being returned, so corrupted input
// yields an error rather than a malformed structure.
func DecodeList(word string, buf []byte) (*List, int, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, 0, err
	}
	l := &List{
		Word:    word,
		NumRows: h.numRows,
		MaxLen:  h.maxLen,
		Lens:    h.lens,
		Scores:  h.scores,
		Cols:    make([]Column, h.maxLen),
	}
	for lev := 1; lev <= h.maxLen; lev++ {
		c, err := decodeColumn(buf[h.colOff[lev-1]:h.colOff[lev-1]+h.colLen[lev-1]], lev, h.numRows, h.lens)
		if err != nil {
			return nil, 0, err
		}
		l.Cols[lev-1] = *c
	}
	if err := l.validate(); err != nil {
		return nil, 0, fmt.Errorf("colstore: decoded list invalid: %w", err)
	}
	return l, h.end, nil
}

// validate checks the structural invariants documented on Validate.
func (l *List) validate() error {
	if len(l.Lens) != l.NumRows || len(l.Scores) != l.NumRows || len(l.Cols) != l.MaxLen {
		return fmt.Errorf("inconsistent sizes")
	}
	// Expected number of rows reaching each level.
	reach := make([]int, l.MaxLen+1)
	for i, n := range l.Lens {
		if int(n) < 1 || int(n) > l.MaxLen {
			return fmt.Errorf("row %d has length %d outside [1,%d]", i, n, l.MaxLen)
		}
		for lev := 1; lev <= int(n); lev++ {
			reach[lev]++
		}
	}
	if l.MaxLen > 0 && reach[l.MaxLen] == 0 {
		return fmt.Errorf("no row reaches MaxLen %d", l.MaxLen)
	}
	for li := range l.Cols {
		c := &l.Cols[li]
		if c.Level != li+1 {
			return fmt.Errorf("column %d mislabeled as level %d", li+1, c.Level)
		}
		covered := 0
		for j, r := range c.Runs {
			if r.Count == 0 {
				return fmt.Errorf("column %d run %d empty", c.Level, j)
			}
			if int(r.Row)+int(r.Count) > l.NumRows {
				return fmt.Errorf("column %d run %d exceeds rows", c.Level, j)
			}
			if j > 0 {
				prev := c.Runs[j-1]
				if r.Value <= prev.Value {
					return fmt.Errorf("column %d runs not ascending at %d", c.Level, j)
				}
				if r.Row < prev.Row+prev.Count {
					return fmt.Errorf("column %d runs overlap at %d", c.Level, j)
				}
			}
			for row := r.Row; row < r.Row+r.Count; row++ {
				if int(l.Lens[row]) < c.Level {
					return fmt.Errorf("column %d covers row %d of length %d", c.Level, row, l.Lens[row])
				}
			}
			covered += int(r.Count)
		}
		if covered != reach[c.Level] {
			return fmt.Errorf("column %d covers %d rows, want %d", c.Level, covered, reach[c.Level])
		}
	}
	return nil
}
