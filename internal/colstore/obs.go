package colstore

import (
	"repro/internal/obs"
)

// SetObs installs process-wide read-path counters on the store (nil
// disables recording). Counters are atomic; the pointer itself is guarded
// by s.mu like the rest of the store state.
func (s *Store) SetObs(c *obs.StoreCounters) {
	s.mu.Lock()
	s.obsC = c
	s.mu.Unlock()
}

// listDecodeStats sizes a freshly decoded JDewey-ordered list: blocks is
// the number of column payloads decoded, decodedBytes the in-memory size
// of the reconstructed structure, and sparseEntries the number of
// sparse-index entries the encoded columns carry (the skip points a
// seeking reader jumps across instead of scanning runs).
func listDecodeStats(l *List) (blocks int, decodedBytes, sparseEntries int64) {
	blocks = len(l.Cols)
	decodedBytes = int64(l.NumRows) * 6 // lens (uint16) + scores (float32)
	for i := range l.Cols {
		runs := len(l.Cols[i].Runs)
		decodedBytes += int64(runs) * 12 // Run{Value, Row, Count}
		sparseEntries += int64(runs / sparseEvery)
	}
	return
}

// tkDecodeStats sizes a freshly decoded score-sorted list: one block per
// (group, level) column payload.
func tkDecodeStats(l *TKList) (blocks int, decodedBytes int64) {
	for _, g := range l.Groups {
		blocks += g.Len
		decodedBytes += int64(len(g.Rows)) * int64(4+4*g.Len) // score + seq
	}
	return
}

// DecodedSize is the in-memory size of the list, the unit the per-query
// decoded-bytes budget is charged in. It matches what the decode counters
// record for a fresh decode, and is equally defined for memoized,
// cached, and purely in-memory lists — a budget bounds what a query
// touches, not what it happened to decode first.
func (l *List) DecodedSize() int64 {
	if l == nil {
		return 0
	}
	_, decoded, _ := listDecodeStats(l)
	return decoded
}

// DecodedSize is the in-memory size of the score-sorted list (see
// List.DecodedSize).
func (l *TKList) DecodedSize() int64 {
	if l == nil {
		return 0
	}
	_, decoded := tkDecodeStats(l)
	return decoded
}

// ListObs is List with per-query trace attribution: the open (and, on
// first disk access, the decode with block/byte accounting) is recorded
// on tr, and quarantine hits surface as trace events. The store-wide
// counters installed with SetObs are updated on either entry point.
func (s *Store) ListObs(term string, tr *obs.Trace) *List {
	if fb := s.overlayMiss(term, false); fb != nil {
		return fb.ListObs(term, tr)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.lists[term]; ok {
		s.obsC.RecordOpen()
		if tr != nil {
			var enc int64
			if e, onDisk := s.lex[term]; onDisk {
				enc = int64(e.colLen)
			}
			tr.ListOpen(term, l.NumRows, l.MaxLen, enc)
		}
		return l
	}
	if qerr, bad := s.quarantined[term]; bad {
		if tr != nil {
			tr.Quarantine(term, qerr.Error())
		}
		return nil
	}
	e, ok := s.lex[term]
	if !ok {
		return nil
	}
	if s.cache != nil {
		if v, hit := s.cache.get(cacheKey{term: term, tk: false}); hit {
			l := v.(*List)
			s.obsC.RecordOpen()
			if tr != nil {
				tr.ListOpen(term, l.NumRows, l.MaxLen, int64(e.colLen))
			}
			return l
		}
	}
	blob, err := s.colSlice(e)
	if err != nil {
		s.quarantine(term, err)
		if tr != nil {
			tr.Quarantine(term, err.Error())
		}
		return nil
	}
	l, _, err := DecodeList(term, blob)
	if err != nil {
		s.quarantine(term, err)
		if tr != nil {
			tr.Quarantine(term, err.Error())
		}
		return nil
	}
	blocks, decoded, sparse := listDecodeStats(l)
	if s.cache != nil {
		s.cache.put(cacheKey{term: term, tk: false}, l, decoded)
	} else {
		s.lists[term] = l
	}
	s.obsC.RecordOpen()
	s.obsC.RecordDecode(blocks, int64(len(blob)), decoded)
	s.obsC.RecordSparseSkips(sparse)
	if tr != nil {
		tr.ListOpen(term, l.NumRows, l.MaxLen, int64(e.colLen))
		tr.Decode(term, blocks, int64(len(blob)), decoded)
	}
	return l
}

// TopKListObs is TopKList with per-query trace attribution (see ListObs).
func (s *Store) TopKListObs(term string, tr *obs.Trace) *TKList {
	if fb := s.overlayMiss(term, true); fb != nil {
		return fb.TopKListObs(term, tr)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.tklists[term]; ok {
		s.obsC.RecordOpen()
		if tr != nil {
			var enc int64
			if e, onDisk := s.lex[term]; onDisk {
				enc = int64(e.tkLen)
			}
			tr.ListOpen(term, l.NumRows(), l.MaxLen, enc)
		}
		return l
	}
	if qerr, bad := s.quarantined[term]; bad {
		if tr != nil {
			tr.Quarantine(term, qerr.Error())
		}
		return nil
	}
	e, ok := s.lex[term]
	if !ok {
		return nil
	}
	if s.cache != nil {
		if v, hit := s.cache.get(cacheKey{term: term, tk: true}); hit {
			l := v.(*TKList)
			s.obsC.RecordOpen()
			if tr != nil {
				tr.ListOpen(term, l.NumRows(), l.MaxLen, int64(e.tkLen))
			}
			return l
		}
	}
	blob, err := s.tkSlice(e)
	if err != nil {
		s.quarantine(term, err)
		if tr != nil {
			tr.Quarantine(term, err.Error())
		}
		return nil
	}
	l, _, err := DecodeTKList(term, blob)
	if err != nil {
		s.quarantine(term, err)
		if tr != nil {
			tr.Quarantine(term, err.Error())
		}
		return nil
	}
	blocks, decoded := tkDecodeStats(l)
	if s.cache != nil {
		s.cache.put(cacheKey{term: term, tk: true}, l, decoded)
	} else {
		s.tklists[term] = l
	}
	s.obsC.RecordOpen()
	s.obsC.RecordDecode(blocks, int64(len(blob)), decoded)
	if tr != nil {
		tr.ListOpen(term, l.NumRows(), l.MaxLen, int64(e.tkLen))
		tr.Decode(term, blocks, int64(len(blob)), decoded)
	}
	return l
}
