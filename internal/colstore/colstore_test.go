package colstore

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/jdewey"
	"repro/internal/occur"
	"repro/internal/testutil"
	"repro/internal/xmltree"
)

func buildDoc(t testing.TB, seed int64, p testutil.DocParams) (*xmltree.Document, *occur.Map) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	doc := testutil.RandomDoc(rng, p)
	jdewey.Assign(doc, 0)
	return doc, occur.Extract(doc)
}

func TestBuildListInvariants(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		_, m := buildDoc(t, seed, testutil.MediumParams())
		for w, occs := range m.Terms {
			l := BuildList(w, occs)
			if err := l.Validate(); err != nil {
				t.Fatalf("seed %d word %q: %v", seed, w, err)
			}
			if l.NumRows != len(occs) {
				t.Fatalf("row count mismatch for %q", w)
			}
		}
	}
}

func TestColumnsMatchSequences(t *testing.T) {
	doc, m := buildDoc(t, 42, testutil.MediumParams())
	_ = doc
	for w, occs := range m.Terms {
		l := BuildList(w, occs)
		// Reconstruct each row's value at each level from the runs and
		// compare against the node's actual JDewey sequence.
		got := make([][]uint32, l.NumRows)
		for i := range got {
			got[i] = make([]uint32, l.Lens[i])
		}
		for li := range l.Cols {
			for _, r := range l.Cols[li].Runs {
				for row := r.Row; row < r.Row+r.Count; row++ {
					got[row][li] = r.Value
				}
			}
		}
		for i, o := range occs {
			want := o.Node.JDeweySeq()
			if len(want) != len(got[i]) {
				t.Fatalf("%q row %d length %d, want %d", w, i, len(got[i]), len(want))
			}
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("%q row %d level %d: %d, want %d", w, i, j+1, got[i][j], want[j])
				}
			}
		}
	}
}

func TestFindValue(t *testing.T) {
	_, m := buildDoc(t, 7, testutil.MediumParams())
	for w, occs := range m.Terms {
		l := BuildList(w, occs)
		for li := range l.Cols {
			c := &l.Cols[li]
			for ri, r := range c.Runs {
				if i, ok := c.FindValue(r.Value); !ok || i != ri {
					t.Fatalf("%q level %d FindValue(%d) = (%d, %v)", w, li+1, r.Value, i, ok)
				}
			}
			if _, ok := c.FindValue(^uint32(0)); ok {
				t.Fatal("absent value reported found")
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		_, m := buildDoc(t, 100+seed, testutil.MediumParams())
		for w, occs := range m.Terms {
			l := BuildList(w, occs)
			buf, sparse := l.AppendEncoded(nil)
			if sparse < 0 {
				t.Fatal("negative sparse size")
			}
			back, n, err := DecodeList(w, buf)
			if err != nil {
				t.Fatalf("decode %q: %v", w, err)
			}
			if n != len(buf) {
				t.Fatalf("decode %q consumed %d of %d", w, n, len(buf))
			}
			assertListsEqual(t, l, back)
		}
	}
}

func assertListsEqual(t *testing.T, a, b *List) {
	t.Helper()
	if a.NumRows != b.NumRows || a.MaxLen != b.MaxLen {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", a.NumRows, a.MaxLen, b.NumRows, b.MaxLen)
	}
	for i := range a.Lens {
		if a.Lens[i] != b.Lens[i] || a.Scores[i] != b.Scores[i] {
			t.Fatalf("row %d metadata mismatch", i)
		}
	}
	for li := range a.Cols {
		ra, rb := a.Cols[li].Runs, b.Cols[li].Runs
		if len(ra) != len(rb) {
			t.Fatalf("level %d run count %d vs %d", li+1, len(ra), len(rb))
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("level %d run %d: %+v vs %+v", li+1, j, ra[j], rb[j])
			}
		}
	}
}

func TestTKListBuild(t *testing.T) {
	_, m := buildDoc(t, 9, testutil.MediumParams())
	for w, occs := range m.Terms {
		l := BuildTKList(w, occs)
		if l.NumRows() != len(occs) {
			t.Fatalf("%q rows %d want %d", w, l.NumRows(), len(occs))
		}
		prevLen := 0
		for _, g := range l.Groups {
			if g.Len <= prevLen {
				t.Fatalf("%q groups not ascending by length", w)
			}
			prevLen = g.Len
			for i := 1; i < len(g.Rows); i++ {
				if g.Rows[i].Score > g.Rows[i-1].Score {
					t.Fatalf("%q group %d not score-sorted", w, g.Len)
				}
			}
			for _, r := range g.Rows {
				if len(r.Seq) != g.Len {
					t.Fatalf("%q sequence length mismatch", w)
				}
			}
		}
	}
}

func TestTKMaxColScore(t *testing.T) {
	_, m := buildDoc(t, 11, testutil.MediumParams())
	const decay = 0.9
	for w, occs := range m.Terms {
		l := BuildTKList(w, occs)
		bounds := l.MaxColScore(decay)
		// Brute force per level.
		for lev := 1; lev <= l.MaxLen; lev++ {
			want := 0.0
			for _, g := range l.Groups {
				if g.Len < lev {
					continue
				}
				for _, r := range g.Rows {
					s := float64(r.Score) * math.Pow(decay, float64(g.Len-lev))
					if s > want {
						want = s
					}
				}
			}
			if math.Abs(bounds[lev]-want) > 1e-9 {
				t.Fatalf("%q level %d bound %v want %v", w, lev, bounds[lev], want)
			}
		}
	}
}

func TestTKEncodeDecodeRoundTrip(t *testing.T) {
	_, m := buildDoc(t, 13, testutil.MediumParams())
	for w, occs := range m.Terms {
		l := BuildTKList(w, occs)
		buf, _ := l.AppendEncoded(nil)
		back, n, err := DecodeTKList(w, buf)
		if err != nil {
			t.Fatalf("decode %q: %v", w, err)
		}
		if n != len(buf) {
			t.Fatalf("decode %q consumed %d of %d", w, n, len(buf))
		}
		if back.MaxLen != l.MaxLen || len(back.Groups) != len(l.Groups) {
			t.Fatalf("%q shape mismatch", w)
		}
		for gi, g := range l.Groups {
			bg := back.Groups[gi]
			if bg.Len != g.Len || len(bg.Rows) != len(g.Rows) {
				t.Fatalf("%q group %d shape mismatch", w, gi)
			}
			for i := range g.Rows {
				if bg.Rows[i].Score != g.Rows[i].Score {
					t.Fatalf("%q group %d row %d score mismatch", w, gi, i)
				}
				for j := range g.Rows[i].Seq {
					if bg.Rows[i].Seq[j] != g.Rows[i].Seq[j] {
						t.Fatalf("%q group %d row %d seq mismatch", w, gi, i)
					}
				}
			}
		}
	}
}

// TestStoreReplace: the incremental-maintenance hook rebuilds or removes
// exactly one term's lists.
func TestStoreReplace(t *testing.T) {
	_, m := buildDoc(t, 91, testutil.SmallParams())
	s := Build(m)
	words := s.Words()
	if len(words) == 0 {
		t.Fatal("no words")
	}
	victim := words[0]
	occs := m.Terms[victim]
	// Replacing with a truncated occurrence set shrinks the lists.
	if len(occs) > 1 {
		s.Replace(victim, occs[:1])
		if s.List(victim).NumRows != 1 || s.TopKList(victim).NumRows() != 1 {
			t.Fatal("replace did not take effect")
		}
	}
	// Replacing with nothing removes the term.
	s.Replace(victim, nil)
	if s.List(victim) != nil || s.TopKList(victim) != nil || s.DocFreq(victim) != 0 {
		t.Fatal("empty replace did not remove the term")
	}
	// Other terms untouched.
	for _, w := range words[1:] {
		if s.List(w) == nil {
			t.Fatalf("unrelated term %q lost", w)
		}
	}
	// Replace over a disk-opened store shadows the stale blob.
	s2 := Build(m)
	dir := t.TempDir()
	if err := s2.Save(dir); err != nil {
		t.Fatal(err)
	}
	opened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opened.Replace(victim, occs[:1])
	if opened.List(victim).NumRows != 1 {
		t.Fatal("replace over opened store did not shadow the blob")
	}
	if opened.Handle(victim) == nil {
		t.Fatal("handle must serve the replaced in-memory list")
	}
}

// TestBuildWorkersEquivalence: the concurrent store build must produce
// exactly the sequential result.
func TestBuildWorkersEquivalence(t *testing.T) {
	_, m := buildDoc(t, 77, testutil.MediumParams())
	seq := BuildWorkers(m, 1)
	for _, workers := range []int{2, 8} {
		par := BuildWorkers(m, workers)
		if len(par.Words()) != len(seq.Words()) {
			t.Fatalf("workers=%d: %d words vs %d", workers, len(par.Words()), len(seq.Words()))
		}
		for _, w := range seq.Words() {
			assertListsEqual(t, seq.List(w), par.List(w))
			if par.TopKList(w).NumRows() != seq.TopKList(w).NumRows() {
				t.Fatalf("workers=%d: top-K list %q differs", workers, w)
			}
		}
	}
}

func TestStoreSaveOpen(t *testing.T) {
	doc, m := buildDoc(t, 21, testutil.MediumParams())
	_ = doc
	s := Build(m)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.N != s.N || s2.Depth != s.Depth {
		t.Fatal("metadata lost")
	}
	if err := s2.Verify(); err != nil {
		t.Fatal(err)
	}
	words := s.Words()
	if len(words) == 0 {
		t.Fatal("no words indexed")
	}
	for _, w := range words {
		a, b := s.List(w), s2.List(w)
		if b == nil {
			t.Fatalf("word %q lost", w)
		}
		assertListsEqual(t, a, b)
		if s.DocFreq(w) != s2.DocFreq(w) {
			t.Fatalf("df(%q) changed", w)
		}
		if tk := s2.TopKList(w); tk == nil || tk.NumRows() != s.TopKList(w).NumRows() {
			t.Fatalf("top-K list %q lost", w)
		}
	}
	if s2.List("absent") != nil || s2.TopKList("absent") != nil || s2.DocFreq("absent") != 0 {
		t.Error("absent word must be nil/0")
	}
}

// genPath returns the committed generation file for base, e.g. the live
// "postings.tk.<gen>".
func genPath(t *testing.T, dir, base string) string {
	t.Helper()
	gen, ok, err := CurrentGen(dir)
	if err != nil || !ok {
		t.Fatalf("no committed generation in %s: %v", dir, err)
	}
	return filepath.Join(dir, GenName(base, gen))
}

func TestOpenCorruption(t *testing.T) {
	_, m := buildDoc(t, 22, testutil.SmallParams())
	s := Build(m)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Missing file.
	if err := os.Remove(genPath(t, dir, fileTopK)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("open with missing blob must fail")
	}
	// Restore, then corrupt the lexicon magic: the lexicon's file checksum
	// must reject it wholesale.
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	lexPath := genPath(t, dir, fileLexicon)
	data, err := os.ReadFile(lexPath)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(lexPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupted magic must fail")
	}
	// Truncate the column blob: Open degrades, Verify must notice.
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	colPath := genPath(t, dir, fileColumns)
	data, err = os.ReadFile(colPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 10 {
		data = data[:len(data)/2]
	}
	if err := os.WriteFile(colPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if s3, err := Open(dir); err == nil {
		if err := s3.Verify(); err == nil {
			t.Fatal("verify over truncated blob must fail")
		}
		if h := s3.Health(); !h.Degraded() {
			t.Fatal("health over truncated blob must report damage")
		}
	}
	// Corrupt the commit point itself: a clean error, never a wrong read.
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, CurrentFile), []byte("XKWCUR1\nnonsense\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupted commit point must fail")
	}
}

func TestStats(t *testing.T) {
	_, m := buildDoc(t, 23, testutil.MediumParams())
	s := Build(m)
	st := s.Stats()
	if st.ColumnLists <= 0 || st.TopKLists <= 0 {
		t.Fatal("sizes must be positive")
	}
	if st.TopKLists <= st.ColumnLists {
		t.Errorf("top-K lists (%d) should exceed compressed column lists (%d), as in Table I",
			st.TopKLists, st.ColumnLists)
	}
	if st.ColumnSparse < 0 || st.ColumnSparse >= st.ColumnLists {
		t.Errorf("sparse index (%d) should be small vs %d", st.ColumnSparse, st.ColumnLists)
	}
}

// TestSparseIndexSizing: small columns need no sparse entries at all;
// columns beyond the block size contribute a few bytes per block.
func TestSparseIndexSizing(t *testing.T) {
	small := xmltree.NewBuilder().Open("r")
	for i := 0; i < 10; i++ {
		small.Leaf("c", "term")
	}
	docS := small.Close().Doc()
	jdewey.Assign(docS, 0)
	mS := occur.Extract(docS)
	_, sparse := BuildList("term", mS.Terms["term"]).AppendEncoded(nil)
	if sparse != 0 {
		t.Errorf("tiny list charged %d sparse bytes", sparse)
	}

	big := xmltree.NewBuilder().Open("r")
	for i := 0; i < 500; i++ {
		big.Leaf("c", "term")
	}
	docB := big.Close().Doc()
	jdewey.Assign(docB, 0)
	mB := occur.Extract(docB)
	bigList := BuildList("term", mB.Terms["term"])
	blob, sparse := bigList.AppendEncoded(nil)
	if sparse <= 0 {
		t.Error("large distinct column must carry sparse entries")
	}
	if sparse*4 > int64(len(blob)) {
		t.Errorf("sparse (%d) out of proportion to blob (%d)", sparse, len(blob))
	}
	// And the wide column round-trips.
	back, _, err := DecodeList("term", blob)
	if err != nil {
		t.Fatal(err)
	}
	assertListsEqual(t, bigList, back)
}
