package topk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/jdewey"
	"repro/internal/naive"
	"repro/internal/occur"
	"repro/internal/testutil"
	"repro/internal/xmltree"
)

type env struct {
	doc *xmltree.Document
	m   *occur.Map
}

func newEnv(doc *xmltree.Document) *env {
	jdewey.Assign(doc, 0)
	return &env{doc: doc, m: occur.Extract(doc)}
}

func (e *env) lists(keywords []string) []*colstore.TKList {
	out := make([]*colstore.TKList, len(keywords))
	for i, w := range keywords {
		if occs := e.m.Terms[w]; len(occs) > 0 {
			out[i] = colstore.BuildTKList(w, occs)
		}
	}
	return out
}

// assertValidTopK checks the emitted results against the oracle: the score
// sequence must equal the oracle's best-K scores, and each emitted node
// must be a true result carrying its true score.
func assertValidTopK(t *testing.T, e *env, keywords []string, sem core.Semantics, mode ThresholdMode, k int) {
	t.Helper()
	nsem := naive.ELCA
	if sem == core.SLCA {
		nsem = naive.SLCA
	}
	all := naive.Evaluate(e.doc, e.m, keywords, nsem, 0)
	naive.SortByScore(all)
	want := all
	if k < len(want) {
		want = want[:k]
	}
	got, _ := Evaluate(e.lists(keywords), Options{Semantics: sem, K: k, Threshold: mode})
	if len(got) != len(want) {
		t.Fatalf("%v sem=%v k=%d mode=%d: %d results, oracle %d", keywords, sem, k, mode, len(got), len(want))
	}
	truth := map[*xmltree.Node]float64{}
	for _, r := range all {
		truth[r.Node] = r.Score
	}
	for i, g := range got {
		n := e.doc.NodeByJDewey(g.Level, g.Value)
		if n == nil {
			t.Fatalf("%v: result (%d,%d) resolves to no node", keywords, g.Level, g.Value)
		}
		ts, ok := truth[n]
		if !ok {
			t.Fatalf("%v sem=%v: emitted non-result %v", keywords, sem, n.Dewey)
		}
		if math.Abs(g.Score-ts) > 1e-6*(1+math.Abs(ts)) {
			t.Fatalf("%v sem=%v: %v score %v, truth %v", keywords, sem, n.Dewey, g.Score, ts)
		}
		if math.Abs(g.Score-want[i].Score) > 1e-6*(1+math.Abs(want[i].Score)) {
			t.Fatalf("%v sem=%v: rank %d score %v, oracle %v", keywords, sem, i, g.Score, want[i].Score)
		}
	}
}

func sampleDoc() *xmltree.Document {
	return xmltree.NewBuilder().
		Open("bib").
		Open("book").
		Leaf("title", "xml").
		Open("chapter").Leaf("sec", "xml basics").Leaf("sec", "data models").Close().
		Close().
		Open("book").Leaf("title", "data warehousing").Close().
		Open("book").Leaf("title", "xml processing").Leaf("note", "big data").Close().
		Close().
		Doc()
}

func TestWorkedExample(t *testing.T) {
	e := newEnv(sampleDoc())
	got, st := Evaluate(e.lists([]string{"xml", "data"}), Options{Semantics: core.ELCA, K: 2})
	if len(got) != 2 {
		t.Fatalf("top-2 = %v", got)
	}
	if got[0].Score < got[1].Score {
		t.Fatal("not score-ordered")
	}
	if st.RowsPulled == 0 || st.Levels == 0 {
		t.Errorf("stats not collected: %+v", st)
	}
	for _, mode := range []ThresholdMode{StarJoin, ClassicHRJN} {
		for _, k := range []int{1, 2, 5} {
			assertValidTopK(t, e, []string{"xml", "data"}, core.ELCA, mode, k)
			assertValidTopK(t, e, []string{"xml", "data"}, core.SLCA, mode, k)
		}
	}
}

func TestDegenerate(t *testing.T) {
	e := newEnv(sampleDoc())
	if rs, _ := Evaluate(nil, Options{K: 5}); rs != nil {
		t.Error("empty query")
	}
	if rs, _ := Evaluate(e.lists([]string{"xml", "absent"}), Options{K: 5}); rs != nil {
		t.Error("missing keyword")
	}
	if rs, _ := Evaluate(e.lists([]string{"xml"}), Options{K: 0}); rs != nil {
		t.Error("k=0")
	}
	assertValidTopK(t, e, []string{"xml"}, core.ELCA, StarJoin, 2)
	assertValidTopK(t, e, []string{"data"}, core.SLCA, StarJoin, 3)
}

// TestExclusionCascade: mid-column emission must not bypass the erasure
// semantics across columns.
func TestExclusionCascade(t *testing.T) {
	doc := xmltree.NewBuilder().
		Open("n").
		Open("uprime").
		Open("udoubleprime").Text("alpha beta").Close().
		Leaf("y", "alpha").
		Close().
		Leaf("x", "beta").
		Close().
		Doc()
	e := newEnv(doc)
	got, _ := Evaluate(e.lists([]string{"alpha", "beta"}), Options{Semantics: core.ELCA, K: 10})
	if len(got) != 1 {
		t.Fatalf("ELCA top-10 = %v, want exactly u''", got)
	}
	assertValidTopK(t, e, []string{"alpha", "beta"}, core.ELCA, StarJoin, 10)
	assertValidTopK(t, e, []string{"alpha", "beta"}, core.SLCA, StarJoin, 10)
}

// TestValidTopKRandom is the central property test: on random documents,
// both threshold modes and both semantics must produce oracle-correct
// top-K answers for a range of K.
func TestValidTopKRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 100; trial++ {
		params := testutil.SmallParams()
		if trial%3 == 0 {
			params = testutil.MediumParams()
		}
		e := newEnv(testutil.RandomDoc(rng, params))
		for _, kws := range []int{1, 2, 3} {
			q := testutil.RandomQuery(rng, params.Vocab, kws)
			for _, mode := range []ThresholdMode{StarJoin, ClassicHRJN} {
				for _, k := range []int{1, 3, 10} {
					assertValidTopK(t, e, q, core.ELCA, mode, k)
					assertValidTopK(t, e, q, core.SLCA, mode, k)
				}
			}
		}
	}
}

// TestMatchesCoreFullEvaluation: with K set beyond the result count, the
// top-K engine must produce exactly the complete result set of the general
// join-based algorithm.
func TestMatchesCoreFullEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 40; trial++ {
		e := newEnv(testutil.RandomDoc(rng, testutil.MediumParams()))
		q := testutil.RandomQuery(rng, testutil.Vocab(20), 2)
		var colLists []*colstore.List
		for _, w := range q {
			if occs := e.m.Terms[w]; len(occs) > 0 {
				colLists = append(colLists, colstore.BuildList(w, occs))
			} else {
				colLists = append(colLists, nil)
			}
		}
		for _, sem := range []core.Semantics{core.ELCA, core.SLCA} {
			full, _ := core.Evaluate(colLists, core.Options{Semantics: sem})
			core.SortByScore(full)
			tk := Full(e.lists(q), sem, 0)
			if len(full) != len(tk) {
				t.Fatalf("sem=%v: %d vs %d results", sem, len(tk), len(full))
			}
			for i := range full {
				if full[i].Level != tk[i].Level || full[i].Value != tk[i].Value ||
					math.Abs(full[i].Score-tk[i].Score) > 1e-6*(1+math.Abs(full[i].Score)) {
					t.Fatalf("sem=%v rank %d: %+v vs %+v", sem, i, tk[i], full[i])
				}
			}
		}
	}
}

// TestEarlyTerminationOnCorrelatedData: with many high-scoring results, the
// top-K run must pull far fewer rows than the full evaluation touches —
// the Figure 10(b)/(c) behaviour.
func TestEarlyTerminationOnCorrelatedData(t *testing.T) {
	b := xmltree.NewBuilder().Open("root")
	for i := 0; i < 400; i++ {
		b.Open("paper").Text("sensor network").Close()
	}
	for i := 0; i < 2000; i++ {
		b.Leaf("other", "network")
	}
	doc := b.Close().Doc()
	e := newEnv(doc)
	got, st := Evaluate(e.lists([]string{"sensor", "network"}), Options{Semantics: core.ELCA, K: 10})
	if len(got) != 10 {
		t.Fatalf("top-10 = %d results", len(got))
	}
	if !st.TerminatedEarly {
		t.Error("expected early termination on correlated data")
	}
	if st.RowsPulled*4 > st.RowsTotal {
		t.Errorf("pulled %d of %d rows: insufficient pruning", st.RowsPulled, st.RowsTotal)
	}
	assertValidTopK(t, e, []string{"sensor", "network"}, core.ELCA, StarJoin, 10)
}

// TestStarThresholdNoLooser: on identical inputs the star-join threshold
// must never read more rows than the classic HRJN threshold (Section IV-B
// proves it is at least as tight).
func TestStarThresholdNoLooser(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	worse := 0
	trials := 0
	for trial := 0; trial < 60; trial++ {
		e := newEnv(testutil.RandomDoc(rng, testutil.MediumParams()))
		q := testutil.RandomQuery(rng, testutil.Vocab(12), 3)
		_, stStar := Evaluate(e.lists(q), Options{Semantics: core.ELCA, K: 5, Threshold: StarJoin})
		_, stClassic := Evaluate(e.lists(q), Options{Semantics: core.ELCA, K: 5, Threshold: ClassicHRJN})
		if stStar.RowsPulled == 0 {
			continue
		}
		trials++
		if stStar.RowsPulled > stClassic.RowsPulled {
			worse++
		}
	}
	// The group maxima are maintained as running maxima (sound but lazily
	// stale), so occasional ties going the other way are tolerated; a
	// systematic reversal is a bug.
	if trials > 0 && worse*5 > trials {
		t.Errorf("star threshold read more rows than classic in %d/%d trials", worse, trials)
	}
}

func TestStatsAccounting(t *testing.T) {
	e := newEnv(sampleDoc())
	_, st := Evaluate(e.lists([]string{"xml", "data"}), Options{Semantics: core.ELCA, K: 1})
	if st.RowsPulled > st.RowsTotal {
		t.Errorf("pulled %d > total %d", st.RowsPulled, st.RowsTotal)
	}
	if st.ThresholdChecks == 0 {
		t.Error("no threshold checks recorded")
	}
}
