package topk

import (
	"math"

	"repro/internal/colstore"
)

// listState is the per-keyword runtime state: the score-sorted list, the
// persistent erasure bitmaps (one per group), and the per-column merged
// cursor over the length groups.
//
// Section IV-C: a keyword list is broken into groups by sequence length so
// that within a group the per-column score order is the same at every
// level; the complete score order of a column is reconstructed online by
// merging the group cursors.
type listState struct {
	list   colstore.TKSource
	erased [][]bool // erased[g][r]: row r of group g was consumed by a lower result

	// Per-column cursor state, reset by startColumn.
	level   int
	cursors []int // next row per group; -1 for groups not reaching the level
	damp    []float64
}

func newListState(l colstore.TKSource) *listState {
	s := &listState{list: l}
	s.erased = make([][]bool, l.GroupCount())
	for g := range s.erased {
		s.erased[g] = make([]bool, l.GroupSize(g))
	}
	s.cursors = make([]int, l.GroupCount())
	s.damp = make([]float64, l.GroupCount())
	return s
}

// startColumn positions the merged cursor at the head of the given level's
// column: row zero of every group whose sequences reach the level.
func (s *listState) startColumn(level int, decay float64) {
	s.level = level
	for g := range s.cursors {
		if s.list.GroupLen(g) >= level {
			s.cursors[g] = 0
			s.damp[g] = math.Pow(decay, float64(s.list.GroupLen(g)-level))
		} else {
			s.cursors[g] = -1
		}
	}
}

// pulled is one row retrieved from the merged cursor.
type pulled struct {
	group, row int
	value      uint32  // JDewey number at the current level
	score      float64 // damped column score
	erased     bool
}

// peek returns the damped score of the next row (s^i in the paper's
// threshold formulas), or -Inf when the column is exhausted.
func (s *listState) peek() float64 {
	best := math.Inf(-1)
	for g, c := range s.cursors {
		if c < 0 || c >= s.list.GroupSize(g) {
			continue
		}
		if sc := float64(s.list.Score(g, c)) * s.damp[g]; sc > best {
			best = sc
		}
	}
	return best
}

// pull retrieves the highest-scoring unretrieved row of the column. Only
// here is the row's JDewey value touched, which is what lets a streaming
// source leave unvisited columns on disk.
func (s *listState) pull() (pulled, bool) {
	bestG, bestScore := -1, math.Inf(-1)
	for g, c := range s.cursors {
		if c < 0 || c >= s.list.GroupSize(g) {
			continue
		}
		if sc := float64(s.list.Score(g, c)) * s.damp[g]; sc > bestScore {
			bestG, bestScore = g, sc
		}
	}
	if bestG < 0 {
		return pulled{}, false
	}
	c := s.cursors[bestG]
	s.cursors[bestG]++
	return pulled{
		group:  bestG,
		row:    c,
		value:  s.list.Value(bestG, c, s.level),
		score:  bestScore,
		erased: s.erased[bestG][c],
	}, true
}

// exhausted reports whether the current column has no rows left.
func (s *listState) exhausted() bool {
	for g, c := range s.cursors {
		if c >= 0 && c < s.list.GroupSize(g) {
			return false
		}
	}
	return true
}
