package topk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/testutil"
	"repro/internal/xmltree"
)

func (e *env) colLists(keywords []string) []*colstore.List {
	out := make([]*colstore.List, len(keywords))
	for i, w := range keywords {
		if occs := e.m.Terms[w]; len(occs) > 0 {
			out[i] = colstore.BuildList(w, occs)
		}
	}
	return out
}

func TestEstimateCardinalityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 60; trial++ {
		e := newEnv(testutil.RandomDoc(rng, testutil.MediumParams()))
		q := testutil.RandomQuery(rng, testutil.Vocab(20), 2)
		cl := e.colLists(q)
		for _, l := range cl {
			if l == nil {
				cl = nil
				break
			}
		}
		if cl == nil {
			continue
		}
		est := EstimateCardinality(cl)
		full, _ := core.Evaluate(cl, core.Options{})
		if est < len(full) {
			t.Fatalf("estimate %d below true ELCA count %d for %v", est, len(full), q)
		}
	}
}

func TestEstimateCardinalityDegenerate(t *testing.T) {
	if EstimateCardinality(nil) != 0 {
		t.Error("empty query")
	}
	if EstimateCardinality([]*colstore.List{nil}) != 0 {
		t.Error("nil list")
	}
}

// TestHybridCorrectness: whichever engine the hybrid picks, the answer
// must be oracle-correct.
func TestHybridCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 60; trial++ {
		e := newEnv(testutil.RandomDoc(rng, testutil.MediumParams()))
		q := testutil.RandomQuery(rng, testutil.Vocab(12), 2)
		cl := e.colLists(q)
		tk := e.lists(q)
		for _, sem := range []core.Semantics{core.ELCA, core.SLCA} {
			got, _ := EvaluateHybrid(cl, tk, HybridOptions{Semantics: sem, K: 5})
			nsem := naive.ELCA
			if sem == core.SLCA {
				nsem = naive.SLCA
			}
			all := naive.Evaluate(e.doc, e.m, q, nsem, 0)
			naive.SortByScore(all)
			want := all
			if len(want) > 5 {
				want = want[:5]
			}
			if len(got) != len(want) {
				t.Fatalf("%v sem=%v: %d results, oracle %d", q, sem, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Score-want[i].Score) > 1e-6*(1+math.Abs(want[i].Score)) {
					t.Fatalf("%v sem=%v rank %d: %v vs %v", q, sem, i, got[i].Score, want[i].Score)
				}
			}
		}
	}
}

// TestHybridPicksByCorrelation: a highly-correlated corpus should engage
// the top-K join, an uncorrelated one the complete evaluation.
func TestHybridPicksByCorrelation(t *testing.T) {
	correlated := xmltree.NewBuilder().Open("root")
	for i := 0; i < 300; i++ {
		correlated.Open("paper").Text("alpha beta").Close()
	}
	docC := correlated.Close().Doc()
	eC := newEnv(docC)
	_, usedTopK := EvaluateHybrid(eC.colLists([]string{"alpha", "beta"}), eC.lists([]string{"alpha", "beta"}),
		HybridOptions{K: 10})
	if !usedTopK {
		t.Error("correlated corpus should use the top-K join")
	}

	sparse := xmltree.NewBuilder().Open("root")
	sparse.Open("hit").Text("alpha beta").Close()
	for i := 0; i < 300; i++ {
		sparse.Leaf("x", "beta")
	}
	docS := sparse.Close().Doc()
	eS := newEnv(docS)
	_, usedTopK = EvaluateHybrid(eS.colLists([]string{"alpha", "beta"}), eS.lists([]string{"alpha", "beta"}),
		HybridOptions{K: 10})
	if usedTopK {
		t.Error("uncorrelated corpus should use the complete evaluation")
	}
}
