package topk

import (
	"context"
	"sort"

	"repro/internal/budget"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/obs"
)

// This file implements the hybrid strategy sketched in Section V-D of the
// paper: the join-based top-K algorithm and the general join-based
// algorithm are complementary — the top-K join wins when the result set is
// large (high keyword correlation), the complete evaluation wins when it
// is small — so the engine picks between them from a join-cardinality
// estimate, "a well-defined problem that has been widely studied in the
// context of relational databases".

// EstimateCardinality upper-bounds the number of per-level join matches by
// intersecting the distinct values of every list's columns, level by
// level, over the run structure only (no row data, no erasure): a cheap
// O(Σ runs) pass. Because the semantic pruning can only remove matches, it
// is an upper bound on the true result count; empirically it tracks the
// result count closely because distinct-value matches usually survive at
// the level they first appear.
func EstimateCardinality(lists []*colstore.List) int {
	if len(lists) == 0 {
		return 0
	}
	for _, l := range lists {
		if l == nil || l.NumRows == 0 {
			return 0
		}
	}
	lmin := lists[0].MaxLen
	for _, l := range lists {
		if l.MaxLen < lmin {
			lmin = l.MaxLen
		}
	}
	total := 0
	for lev := lmin; lev >= 1; lev-- {
		cols := make([][]colstore.Run, len(lists))
		shortest := 0
		for i, l := range lists {
			cols[i] = l.Col(lev).Runs
			if len(cols[i]) < len(cols[shortest]) {
				shortest = i
			}
		}
		// Probe the shortest column's values against the others.
		matches := 0
		for _, r := range cols[shortest] {
			all := true
			for i := range cols {
				if i == shortest {
					continue
				}
				runs := cols[i]
				j := sort.Search(len(runs), func(j int) bool { return runs[j].Value >= r.Value })
				if j >= len(runs) || runs[j].Value != r.Value {
					all = false
					break
				}
			}
			if all {
				matches++
			}
		}
		total += matches
	}
	return total
}

// HybridOptions configures EvaluateHybrid.
type HybridOptions struct {
	Semantics core.Semantics
	Decay     float64
	K         int
	// MinRatio is the cardinality-to-K ratio above which the top-K join is
	// chosen; below it the complete evaluation is expected to be cheaper.
	// Zero selects DefaultHybridRatio.
	MinRatio int

	// Trace, when non-nil, records the plan decision (with the estimated
	// cardinality and the ratio*K cutoff that triggered it) and is passed
	// down to whichever engine runs.
	Trace *obs.Trace

	// Budget, when non-nil, is passed to the star join (which charges a
	// candidate per pulled row); the complete-evaluation branch observes
	// only the decoded-bytes dimension, charged by the storage layer.
	Budget *budget.B
}

// DefaultHybridRatio requires the estimated result count to exceed 4K
// before the top-K join is engaged, matching the Section V-C observation
// that "the join-based top-K algorithm only performs well when the number
// of results is fairly large".
const DefaultHybridRatio = 4

// EvaluateHybrid picks the engine by estimated cardinality and returns the
// top-K results plus which engine ran (true = top-K join) — the Section
// V-D hybrid. Both inputs must describe the same keywords in the same
// order.
func EvaluateHybrid(colLists []*colstore.List, tkLists []*colstore.TKList, opt HybridOptions) ([]core.Result, bool) {
	rs, usedTopK, _ := EvaluateHybridCtx(context.Background(), colLists, tkLists, opt)
	return rs, usedTopK
}

// EvaluateHybridCtx is EvaluateHybrid honoring a context: both the
// cardinality estimate and the chosen engine observe cancellation.
func EvaluateHybridCtx(ctx context.Context, colLists []*colstore.List, tkLists []*colstore.TKList, opt HybridOptions) ([]core.Result, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ratio := opt.MinRatio
	if ratio <= 0 {
		ratio = DefaultHybridRatio
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	est := EstimateCardinality(colLists)
	if est >= ratio*opt.K {
		if opt.Trace != nil {
			opt.Trace.PlanSwitch("topk-join", 0, est, ratio*opt.K)
		}
		rs, _, err := EvaluateCtx(ctx, tkLists, Options{Semantics: opt.Semantics, Decay: opt.Decay, K: opt.K, Trace: opt.Trace, Budget: opt.Budget})
		return rs, true, err
	}
	if opt.Trace != nil {
		opt.Trace.PlanSwitch("full-join", 0, est, ratio*opt.K)
	}
	rs, _, err := core.EvaluateCtx(ctx, colLists, core.Options{Semantics: opt.Semantics, Decay: opt.Decay, Trace: opt.Trace})
	if err != nil {
		return rs, false, err
	}
	core.SortByScore(rs)
	if len(rs) > opt.K {
		rs = rs[:opt.K]
	}
	return rs, false, nil
}
