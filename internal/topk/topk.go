// Package topk implements the join-based top-K algorithm of Section IV:
// the per-column joins of the general join-based algorithm (package core)
// executed as top-K star joins over score-sorted inverted lists, with the
// paper's tighter unseen-result threshold built from partial-result groups
// (Section IV-B) and the cross-column bounds with the column-skipping rule
// of Section IV-C. Results whose score meets the threshold are emitted
// without blocking; execution terminates as soon as K results are out.
package topk

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/budget"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/score"
)

// ThresholdMode selects the unseen-result bound of the star join.
type ThresholdMode int

const (
	// StarJoin is the paper's contribution (Section IV-B): partial results
	// are grouped by the subset of lists they have been seen in, and the
	// bound max_P(ms(G_P) + Σ_{j∉P} s^j) is provably no looser — and
	// usually tighter — than the classic bound.
	StarJoin ThresholdMode = iota
	// ClassicHRJN is the traditional top-K join bound of [21][22]
	// (Section IV-A): max_i(s^i + Σ_{j≠i} s_m^j). Kept for the ablation
	// benchmark.
	ClassicHRJN
)

// Options configures Evaluate.
type Options struct {
	Semantics core.Semantics
	Decay     float64 // 0 selects score.DefaultDecay
	K         int
	Threshold ThresholdMode

	// Trace, when non-nil, receives the per-query execution events
	// (star-join input order, threshold updates, emissions, early
	// termination, cancellation strides). Nil disables tracing at the cost
	// of one pointer check per instrumentation site.
	Trace *obs.Trace

	// Budget, when non-nil, is charged one candidate per pulled row; a
	// trip aborts the evaluation exactly like a cancelled context, with
	// the budget error in place of ctx.Err().
	Budget *budget.B
	// Partial asks an aborted evaluation (context or budget) to append
	// its buffered — not yet proven — candidates after the proven prefix
	// of the returned results, in score order. Stats.UnseenBound then
	// certifies the safe prefix: every result with Score >= UnseenBound
	// is a true member of the top-K at its returned rank. The emit
	// callback never sees unproven results regardless of this option.
	Partial bool
}

// Stats reports execution counters.
type Stats struct {
	Levels          int  // columns started
	RowsPulled      int  // rows retrieved from the score-sorted cursors
	RowsTotal       int  // Σ over lists and levels of column sizes (the full-scan cost)
	EarlyEmits      int  // results emitted before their column was drained
	TerminatedEarly bool // stopped before the root column completed
	ThresholdChecks int

	// Partial is set when the evaluation was aborted by cancellation,
	// deadline, or budget before the answer was complete. UnseenBound is
	// then the star join's upper bound on the score of any result not
	// produced (Sections IV-B/IV-C): the certification boundary of the
	// returned results.
	Partial     bool
	UnseenBound float64
}

// Evaluate returns the top-K results (score-descending) of the keyword
// query over the score-sorted lists. A nil or empty list yields no
// results.
func Evaluate(lists []*colstore.TKList, opt Options) ([]core.Result, Stats) {
	rs, st, _ := EvaluateCtx(context.Background(), lists, opt)
	return rs, st
}

// EvaluateCtx is Evaluate honoring a context: cancellation or deadline
// expiry is observed at every column start and periodically inside the
// pull loop, aborting the star join with ctx.Err().
func EvaluateCtx(ctx context.Context, lists []*colstore.TKList, opt Options) ([]core.Result, Stats, error) {
	srcs := make([]colstore.TKSource, len(lists))
	for i, l := range lists {
		if l != nil {
			srcs[i] = l
		}
	}
	return evaluate(ctx, srcs, opt, nil)
}

// EvaluateSources runs the top-K star join over TKSource views (in-memory
// lists or streaming disk handles that decode only the (group, level)
// columns the sweep visits before terminating).
func EvaluateSources(lists []colstore.TKSource, opt Options, emit func(core.Result) bool) ([]core.Result, Stats) {
	rs, st, _ := evaluate(context.Background(), lists, opt, emit)
	return rs, st
}

// EvaluateSourcesCtx is EvaluateSources honoring a context (see
// EvaluateCtx).
func EvaluateSourcesCtx(ctx context.Context, lists []colstore.TKSource, opt Options, emit func(core.Result) bool) ([]core.Result, Stats, error) {
	return evaluate(ctx, lists, opt, emit)
}

// EvaluateFunc is Evaluate with progressive emission: whenever a result's
// score reaches the unseen-result threshold it is handed to emit
// immediately — the paper's "output without blocking" — rather than only
// when the whole top-K is complete. A false return stops the evaluation
// early; the results emitted so far are still returned. A nil emit makes
// it equivalent to Evaluate.
func EvaluateFunc(lists []*colstore.TKList, opt Options, emit func(core.Result) bool) ([]core.Result, Stats) {
	srcs := make([]colstore.TKSource, len(lists))
	for i, l := range lists {
		if l != nil {
			srcs[i] = l
		}
	}
	rs, st, _ := evaluate(context.Background(), srcs, opt, emit)
	return rs, st
}

// EvaluateFuncCtx is EvaluateFunc honoring a context. On cancellation the
// results emitted so far are returned alongside ctx.Err().
func EvaluateFuncCtx(ctx context.Context, lists []*colstore.TKList, opt Options, emit func(core.Result) bool) ([]core.Result, Stats, error) {
	srcs := make([]colstore.TKSource, len(lists))
	for i, l := range lists {
		if l != nil {
			srcs[i] = l
		}
	}
	return evaluate(ctx, srcs, opt, emit)
}

func evaluate(ctx context.Context, lists []colstore.TKSource, opt Options, emit func(core.Result) bool) ([]core.Result, Stats, error) {
	var st Stats
	if ctx == nil {
		ctx = context.Background()
	}
	if len(lists) == 0 || opt.K <= 0 {
		return nil, st, nil
	}
	for _, l := range lists {
		if l == nil || l.NumRows() == 0 {
			return nil, st, nil
		}
	}
	decay := opt.Decay
	if decay == 0 {
		decay = score.DefaultDecay
	}
	e := &engine{ctx: ctx, opt: opt, decay: decay, st: &st, emit: emit, tr: opt.Trace}
	for _, l := range lists {
		e.states = append(e.states, newListState(l))
		e.maxCol = append(e.maxCol, l.MaxColScore(decay))
	}
	lmin := lists[0].MaxLevel()
	for _, l := range lists {
		if l.MaxLevel() < lmin {
			lmin = l.MaxLevel()
		}
	}
	// RowsTotal: the cost a full evaluation would pay over the same data.
	for _, l := range lists {
		for g := 0; g < l.GroupCount(); g++ {
			levels := l.GroupLen(g)
			if levels > lmin {
				levels = lmin
			}
			st.RowsTotal += l.GroupSize(g) * levels
		}
	}
	if tr := e.tr; tr != nil {
		// The star join reads every list round-robin (then max-peek); the
		// order decision here is the input arrangement and its row volumes.
		var b strings.Builder
		b.WriteString("star:rows=")
		minRows, total := lists[0].NumRows(), int64(0)
		for i, l := range lists {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", l.NumRows())
			if l.NumRows() < minRows {
				minRows = l.NumRows()
			}
			total += int64(l.NumRows())
		}
		tr.JoinOrder(b.String(), len(lists), minRows, total)
		defer func() { tr.CancelChecks(int64(st.RowsPulled/ctxCheckStride), ctxCheckStride) }()
	}

	e.colBound = math.Inf(1)
	for lev := lmin; lev >= 1 && !e.done(); lev-- {
		// The bound over all columns not yet completed (lev and above it in
		// sweep order), should the evaluation abort before or inside this
		// column's sweep.
		e.colBound = e.crossColumnBound(lev + 1)
		if err := ctx.Err(); err != nil {
			e.abortErr = err
			break
		}
		st.Levels++
		e.runColumn(lev)
	}
	if e.abortErr != nil {
		// Aborted (cancellation, deadline, or budget): whatever was emitted
		// before the abort is returned — those results are proven — and the
		// unseen-result bound at the abort point certifies them. With
		// opt.Partial the buffered, not-yet-proven candidates follow the
		// proven prefix in score order; they are never handed to the emit
		// callback.
		st.Partial = true
		st.UnseenBound = e.abortBound()
		if opt.Partial && e.buffer.Len() > 0 {
			rest := make(resultHeap, len(e.buffer))
			copy(rest, e.buffer)
			sort.Sort(rest)
			e.emitted = append(e.emitted, rest...)
			if len(e.emitted) > opt.K {
				e.emitted = e.emitted[:opt.K]
			}
		}
		if e.tr != nil {
			e.tr.Note(fmt.Sprintf("partial-abort: %v", e.abortErr),
				int64(len(e.emitted)), int64(e.buffer.Len()), int64(st.RowsPulled))
		}
		return e.emitted, st, e.abortErr
	}
	// All columns processed (or terminated): everything buffered is a true
	// result; drain by score.
	e.drain(math.Inf(-1))
	core.SortByScore(e.emitted)
	if len(e.emitted) > opt.K {
		e.emitted = e.emitted[:opt.K]
	}
	return e.emitted, st, nil
}

// valueState accumulates the star-join bucket entry for one JDewey number
// at the current column.
type valueState struct {
	seenMask uint64    // lists with any row (erased included) under the value
	witMask  uint64    // lists with a non-erased witness
	best     []float64 // per-list best damped witness score
	anyEr    bool      // some row under the value was erased at a lower level
	rows     []rowRef  // every row pulled for this value, for end-of-column erasure
	buffered bool      // already moved to the candidate buffer
}

type rowRef struct {
	list, group, row int
}

// ctxCheckStride is how many pulled rows pass between context checks
// inside a column.
const ctxCheckStride = 256

// engine carries one evaluation's state.
type engine struct {
	ctx      context.Context
	abortErr error // sticky abort cause: ctx.Err() or a budget trip
	opt      Options
	decay    float64
	st       *Stats
	states   []*listState
	maxCol   [][]float64 // per list: max damped column score per level

	emitted []core.Result
	buffer  resultHeap // completed results awaiting the threshold
	emit    func(core.Result) bool
	stopped bool       // consumer cancelled via the emit callback
	tr      *obs.Trace // nil = tracing disabled

	// Partial-abort bound bookkeeping. colBound bounds every result in
	// the columns not yet completed (set at each column start from the
	// Section IV-C cross-column bound); liveThreshold, non-nil while a
	// column sweep is active, is that column's current unseen-result
	// threshold (the tighter mid-column bound); slcaFullMax tracks the
	// best fully-witnessed SLCA value of the active column, which sits in
	// neither the partial groups nor the buffer mid-column and so is
	// invisible to the star threshold.
	colBound      float64
	liveThreshold func() float64
	slcaFullMax   float64
}

func (e *engine) done() bool { return e.stopped || e.abortErr != nil || len(e.emitted) >= e.opt.K }

// tick observes the context every ctxCheckStride pulls; true means abort.
func (e *engine) tick() bool {
	if e.abortErr != nil {
		return true
	}
	if e.st.RowsPulled%ctxCheckStride != 0 {
		return false
	}
	if err := e.ctx.Err(); err != nil {
		e.abortErr = err
		return true
	}
	return false
}

// abortBound is the unseen-result upper bound at the abort point: the
// active column's live threshold (which already folds in the
// cross-column bound) when a sweep was running, the cross-column bound
// over the unfinished columns otherwise, capped from below by the best
// fully-witnessed-but-unbuffered SLCA value of the active column.
func (e *engine) abortBound() float64 {
	b := e.colBound
	if e.liveThreshold != nil {
		b = e.liveThreshold()
	}
	if e.slcaFullMax > b {
		b = e.slcaFullMax
	}
	return b
}

func (e *engine) k() int { return len(e.states) }

func (e *engine) full() uint64 { return uint64(1)<<e.k() - 1 }

// crossColumnBound is the Section IV-C upper bound on results in columns
// above the current one (levels < lev), with the skipping rule: a column
// l < lev-1 needs checking only if some list has sequences of exactly
// length l; otherwise its bound is dominated by column l+1's.
func (e *engine) crossColumnBound(lev int) float64 {
	bound := math.Inf(-1)
	for l := lev - 1; l >= 1; l-- {
		if l != lev-1 {
			needed := false
			for _, s := range e.states {
				if s.list.HasLen(l) {
					needed = true
					break
				}
			}
			if !needed {
				continue
			}
		}
		sum := 0.0
		for i := range e.states {
			if l >= len(e.maxCol[i]) || e.maxCol[i][l] == 0 {
				// No rows of list i reach level l: no results there.
				sum = math.Inf(-1)
				break
			}
			sum += e.maxCol[i][l]
		}
		if sum > bound {
			bound = sum
		}
	}
	return bound
}

// runColumn executes the top-K star join over one column, with early
// emission and the possibility of terminating the whole query.
func (e *engine) runColumn(lev int) {
	k := e.k()
	full := e.full()
	for _, s := range e.states {
		s.startColumn(lev, e.decay)
	}
	bucket := make(map[uint32]*valueState)
	// groups[mask] holds ms(G_P) as a lazily-invalidated max-heap: a value
	// is pushed whenever its witness mask or partial score changes, and
	// entries whose value has since moved on (matched further, completed,
	// or re-scored) are discarded when they surface. This keeps the
	// Section IV-B bound exact — a stale running maximum would pin the
	// threshold at the score of long-completed partials and forfeit the
	// early termination the tighter bound exists to provide.
	groups := make(map[uint64]*partialHeap)
	pushPartial := func(vs *valueState, value uint32, partial float64) {
		h := groups[vs.witMask]
		if h == nil {
			h = &partialHeap{}
			groups[vs.witMask] = h
		}
		heap.Push(h, partialEntry{value: value, partial: partial})
	}
	groupMax := func(mask uint64, h *partialHeap) float64 {
		for h.Len() > 0 {
			top := (*h)[0]
			vs := bucket[top.value]
			if vs != nil && !vs.buffered && vs.witMask == mask && partialSum(vs) == top.partial {
				return top.partial
			}
			heap.Pop(h)
		}
		return math.Inf(-1)
	}
	higher := e.crossColumnBound(lev)

	starThreshold := func() float64 {
		e.st.ThresholdChecks++
		peeks := make([]float64, k)
		for i, s := range e.states {
			peeks[i] = s.peek()
		}
		// Case 1: values unseen in every list.
		t := 0.0
		for _, p := range peeks {
			t += p
		}
		// Case 2: partially seen values, grouped by witness subset.
		for mask, h := range groups {
			ms := groupMax(mask, h)
			if math.IsInf(ms, -1) {
				continue
			}
			b := ms
			for j := 0; j < k; j++ {
				if mask&(1<<j) == 0 {
					b += peeks[j]
				}
			}
			if b > t {
				t = b
			}
		}
		return t
	}
	classicThreshold := func() float64 {
		e.st.ThresholdChecks++
		t := math.Inf(-1)
		for i, s := range e.states {
			b := s.peek()
			for j := range e.states {
				if j != i {
					b += e.maxCol[j][lev]
				}
			}
			if b > t {
				t = b
			}
		}
		return t
	}
	threshold := func() float64 {
		var t float64
		if e.opt.Threshold == ClassicHRJN {
			t = classicThreshold()
		} else {
			t = starThreshold()
		}
		if higher > t {
			t = higher
		}
		// Infinite bounds ("nothing unseen can score at all") are not
		// recorded: only finite threshold values are meaningful updates.
		if e.tr != nil && !math.IsInf(t, 0) {
			e.tr.Threshold(lev, t, e.buffer.Len(), len(e.emitted))
		}
		return t
	}
	// While this sweep is live, a partial abort certifies against the
	// column's current threshold rather than the looser cross-column
	// bound. Abort returns leave liveThreshold installed on purpose —
	// evaluate reads the bound after runColumn returns; only a completed
	// sweep (which drained the column) tears it down at the bottom.
	e.slcaFullMax = math.Inf(-1)
	e.liveThreshold = threshold

	pullFrom := func() int {
		// Round-robin until K results have been generated, then the list
		// with the maximum next score (Section IV-B).
		generated := len(e.emitted) + e.buffer.Len()
		if generated < e.opt.K {
			for off := 0; off < k; off++ {
				i := (e.st.RowsPulled + off) % k
				if !e.states[i].exhausted() {
					return i
				}
			}
			return -1
		}
		best, bestScore := -1, math.Inf(-1)
		for i, s := range e.states {
			if s.exhausted() {
				continue
			}
			if p := s.peek(); p > bestScore {
				best, bestScore = i, p
			}
		}
		return best
	}

	for {
		if e.tick() {
			// Cancelled mid-column: the whole evaluation aborts, so the
			// end-of-column erasure bookkeeping is moot.
			return
		}
		i := pullFrom()
		if i < 0 {
			break // column drained
		}
		// Charge before pulling: a trip must abort with the candidate still
		// in its list, where the threshold's peek covers it. Charging after
		// the pull would consume a row that is in neither the bucket nor any
		// peek, and the abort bound could certify below its true score.
		if err := e.opt.Budget.ChargeCandidates(1); err != nil {
			e.abortErr = err
			return
		}
		p, ok := e.states[i].pull()
		if !ok {
			continue
		}
		e.st.RowsPulled++
		vs := bucket[p.value]
		if vs == nil {
			vs = &valueState{best: make([]float64, k)}
			bucket[p.value] = vs
		}
		vs.rows = append(vs.rows, rowRef{list: i, group: p.group, row: p.row})
		vs.seenMask |= 1 << i
		if p.erased {
			vs.anyEr = true
		} else {
			if vs.witMask&(1<<i) == 0 {
				vs.witMask |= 1 << i
				vs.best[i] = p.score // first witness carries the per-list maximum
			}
			partial := partialSum(vs)
			if vs.witMask == full && !vs.buffered && e.opt.Semantics == core.ELCA {
				// ELCA completion: a non-erased witness in every list.
				// (SLCA needs the whole column's erasure knowledge and
				// completes at column end.)
				vs.buffered = true
				heap.Push(&e.buffer, core.Result{Level: lev, Value: p.value, Score: partial})
			} else if vs.witMask != full {
				pushPartial(vs, p.value, partial)
			} else if e.opt.Semantics == core.SLCA && partial > e.slcaFullMax {
				// A fully-witnessed SLCA value is neither buffered nor in a
				// partial group mid-column, so the star threshold does not
				// see it; its known score must cap the partial-abort bound.
				e.slcaFullMax = partial
			}
		}
		// Mid-column emission is only sound for ELCA: an ELCA completion is
		// known the moment every list has contributed a witness, whereas an
		// SLCA can be invalidated by rows not yet pulled, so SLCA results
		// wait for the column to drain and the star-join threshold would
		// not cover them here.
		if e.opt.Semantics == core.ELCA && e.buffer.Len() > 0 {
			before := len(e.emitted)
			e.drain(threshold())
			if len(e.emitted) > before {
				e.st.EarlyEmits += len(e.emitted) - before
			}
			if e.done() {
				e.st.TerminatedEarly = true
				if e.tr != nil {
					e.tr.Terminated(lev, int64(e.st.RowsPulled), int64(e.st.RowsTotal))
				}
				return
			}
		}
	}

	// Column drained: finish SLCA completions and apply the semantic
	// pruning (erase every row under every contains-all value).
	for value, vs := range bucket {
		if vs.seenMask != full {
			continue
		}
		if e.opt.Semantics == core.SLCA && !vs.anyEr && !vs.buffered {
			total := 0.0
			for j := 0; j < k; j++ {
				total += vs.best[j]
			}
			vs.buffered = true
			heap.Push(&e.buffer, core.Result{Level: lev, Value: value, Score: total})
		}
		for _, r := range vs.rows {
			e.states[r.list].erased[r.group][r.row] = true
		}
	}
	// The column holds no more unseen results; only higher columns bound
	// the buffer now.
	e.liveThreshold = nil
	e.slcaFullMax = math.Inf(-1)
	if e.tr != nil && !math.IsInf(higher, 0) {
		e.tr.Threshold(lev, higher, e.buffer.Len(), len(e.emitted))
	}
	e.drain(higher)
	if e.done() && !e.st.TerminatedEarly {
		e.st.TerminatedEarly = true
		if e.tr != nil {
			e.tr.Terminated(lev, int64(e.st.RowsPulled), int64(e.st.RowsTotal))
		}
	}
}

// drain emits buffered results whose score meets the threshold, best
// first, until K results are out or the consumer cancels.
func (e *engine) drain(threshold float64) {
	for e.buffer.Len() > 0 && len(e.emitted) < e.opt.K && !e.stopped {
		top := e.buffer[0]
		if top.Score < threshold {
			return
		}
		heap.Pop(&e.buffer)
		e.emitted = append(e.emitted, top)
		if e.tr != nil {
			e.tr.Emit(top.Level, len(e.emitted), top.Score)
		}
		if e.emit != nil && !e.emit(top) {
			e.stopped = true
		}
	}
}

// partialSum returns a value's current partial score Σ best.
func partialSum(vs *valueState) float64 {
	t := 0.0
	for _, b := range vs.best {
		t += b
	}
	return t
}

// partialEntry is one (possibly stale) G_P member.
type partialEntry struct {
	value   uint32
	partial float64
}

// partialHeap is a max-heap of partial scores with lazy invalidation.
type partialHeap []partialEntry

func (h partialHeap) Len() int           { return len(h) }
func (h partialHeap) Less(i, j int) bool { return h[i].partial > h[j].partial }
func (h partialHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *partialHeap) Push(x any)        { *h = append(*h, x.(partialEntry)) }
func (h *partialHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// resultHeap is a max-heap on result score with the shared tie-breaks.
type resultHeap []core.Result

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score > h[j].Score
	}
	if h[i].Level != h[j].Level {
		return h[i].Level > h[j].Level
	}
	return h[i].Value < h[j].Value
}
func (h resultHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)   { *h = append(*h, x.(core.Result)) }
func (h *resultHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Full evaluates the complete ranked result set through the same engine by
// setting K beyond any possible result count; used by tests.
func Full(lists []*colstore.TKList, sem core.Semantics, decay float64) []core.Result {
	total := 0
	for _, l := range lists {
		if l != nil {
			total += l.NumRows()
		}
	}
	rs, _ := Evaluate(lists, Options{Semantics: sem, Decay: decay, K: total*2 + 16})
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		if rs[i].Level != rs[j].Level {
			return rs[i].Level > rs[j].Level
		}
		return rs[i].Value < rs[j].Value
	})
	return rs
}
