package topk

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/testutil"
)

// TestCancelledBeforeStart proves the "without completing the scan" half
// of the cancellation contract: an already-cancelled context aborts before
// a single row is pulled from the score-sorted cursors.
func TestCancelledBeforeStart(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := newEnv(testutil.RandomDoc(rng, testutil.MediumParams()))
	keywords := []string{"kw0", "kw1"}
	lists := e.lists(keywords)
	for _, l := range lists {
		if l == nil {
			t.Skip("generated doc lacks the test keywords")
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs, st, err := EvaluateCtx(ctx, lists, Options{Semantics: core.ELCA, K: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.RowsPulled != 0 {
		t.Fatalf("pulled %d rows under a pre-cancelled context", st.RowsPulled)
	}
	if len(rs) != 0 {
		t.Fatalf("emitted %d results under a pre-cancelled context", len(rs))
	}
}

// TestCancelMidScan cancels from inside the emit callback and requires the
// evaluation to stop early with ctx.Err() while keeping the results it had
// already proven safe.
func TestCancelMidScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := newEnv(testutil.RandomDoc(rng, testutil.MediumParams()))
	keywords := []string{"kw0", "kw1"}
	lists := e.lists(keywords)
	for _, l := range lists {
		if l == nil {
			t.Skip("generated doc lacks the test keywords")
		}
	}
	full, fullStats := Evaluate(lists, Options{Semantics: core.ELCA, K: 1 << 30})
	if len(full) < 2 {
		t.Skip("not enough results to observe an early stop")
	}
	ctx, cancel := context.WithCancel(context.Background())
	var emitted []core.Result
	rs, st, err := EvaluateFuncCtx(ctx, lists, Options{Semantics: core.ELCA, K: 1 << 30},
		func(r core.Result) bool {
			emitted = append(emitted, r)
			cancel()
			return true
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.RowsPulled >= fullStats.RowsPulled {
		t.Fatalf("cancelled run pulled %d rows, full run %d — no early stop", st.RowsPulled, fullStats.RowsPulled)
	}
	// Whatever was handed out before the cancellation must be a prefix of
	// the true result stream.
	for i, r := range rs {
		if r != full[i] {
			t.Fatalf("result %d diverges after cancellation: %+v != %+v", i, r, full[i])
		}
	}
	_ = emitted
}
