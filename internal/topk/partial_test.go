package topk

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/testutil"
	"repro/internal/xmltree"
)

// Partial-abort certification tests: when a budget or cancellation stops
// the evaluation early, the returned results plus Stats.UnseenBound must
// form a sound partial answer — every result scoring at or above the
// bound belongs to the true top-K at exactly its returned rank.

// assertCertifiedPrefix checks the §IV-C bound argument against the
// oracle: the results at ranks whose score clears UnseenBound must match
// the oracle's ranking prefix score-for-score and be true results.
// Returns how many results were certified.
func assertCertifiedPrefix(t *testing.T, e *env, q []string, rs []core.Result, bound float64) int {
	t.Helper()
	all := naive.Evaluate(e.doc, e.m, q, naive.ELCA, 0)
	naive.SortByScore(all)
	truth := map[*xmltree.Node]float64{}
	for _, r := range all {
		truth[r.Node] = r.Score
	}
	certified := 0
	for i, r := range rs {
		if i > 0 && rs[i-1].Score < r.Score {
			t.Fatalf("%v: results not score-sorted at rank %d", q, i)
		}
		if !(r.Score >= bound) { // the facade's Exact predicate, verbatim
			continue
		}
		if i > certified {
			t.Fatalf("%v: certified result at rank %d below an uncertified one", q, i)
		}
		certified++
		if i >= len(all) {
			t.Fatalf("%v: certified rank %d beyond the %d true results", q, i, len(all))
		}
		if math.Abs(r.Score-all[i].Score) > 1e-6*(1+math.Abs(all[i].Score)) {
			t.Fatalf("%v: certified rank %d score %v, oracle %v (bound %v)", q, i, r.Score, all[i].Score, bound)
		}
		n := e.doc.NodeByJDewey(r.Level, r.Value)
		if n == nil {
			t.Fatalf("%v: certified result (%d,%d) resolves to no node", q, r.Level, r.Value)
		}
		ts, ok := truth[n]
		if !ok {
			t.Fatalf("%v: certified non-result %v", q, n.Dewey)
		}
		if math.Abs(r.Score-ts) > 1e-6*(1+math.Abs(ts)) {
			t.Fatalf("%v: certified %v score %v, truth %v", q, n.Dewey, r.Score, ts)
		}
	}
	return certified
}

// TestPartialBudgetCertifiesPrefix sweeps every candidate-budget size on
// random documents: wherever the budget trips mid-evaluation, the
// certified prefix must be oracle-exact.
func TestPartialBudgetCertifiesPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	aborted, certifiedTotal := 0, 0
	for trial := 0; trial < 25; trial++ {
		e := newEnv(testutil.RandomDoc(rng, testutil.MediumParams()))
		q := testutil.RandomQuery(rng, testutil.Vocab(12), 2)
		const k = 5
		_, full := Evaluate(e.lists(q), Options{Semantics: core.ELCA, K: k})
		for n := int64(1); n <= int64(full.RowsPulled); n++ {
			rs, st, err := EvaluateCtx(context.Background(), e.lists(q), Options{
				Semantics: core.ELCA, K: k,
				Budget: budget.New(0, n), Partial: true,
			})
			if err == nil {
				continue // budget sufficed; completeness is covered elsewhere
			}
			if !errors.Is(err, budget.ErrExceeded) {
				t.Fatalf("%v budget=%d: err = %v, want ErrExceeded", q, n, err)
			}
			if !st.Partial {
				t.Fatalf("%v budget=%d: abort without Stats.Partial", q, n)
			}
			aborted++
			certifiedTotal += assertCertifiedPrefix(t, e, q, rs, st.UnseenBound)
		}
	}
	if aborted == 0 {
		t.Fatal("no budget ever tripped; the sweep tested nothing")
	}
	if certifiedTotal == 0 {
		t.Error("no partial run ever certified a result; bound is uselessly loose")
	}
}

// TestPartialCancelledContext: a pre-cancelled context with Partial set
// returns an empty-but-sound partial answer — nothing was seen, so the
// unseen bound is +Inf and nothing may be certified.
func TestPartialCancelledContext(t *testing.T) {
	e := newEnv(sampleDoc())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs, st, err := EvaluateCtx(ctx, e.lists([]string{"xml", "data"}), Options{
		Semantics: core.ELCA, K: 2, Partial: true,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !st.Partial {
		t.Fatal("abort without Stats.Partial")
	}
	for _, r := range rs {
		if r.Score >= st.UnseenBound {
			t.Fatalf("result %+v certified against bound %v with zero rows pulled", r, st.UnseenBound)
		}
	}
}

// TestPartialBudgetWithoutOptStillBounds: without opt.Partial the abort
// returns only the already-emitted (proven) results; they too must clear
// the reported bound.
func TestPartialBudgetWithoutOptStillBounds(t *testing.T) {
	e := newEnv(sampleDoc())
	q := []string{"xml", "data"}
	_, full := Evaluate(e.lists(q), Options{Semantics: core.ELCA, K: 2})
	for n := int64(1); n <= int64(full.RowsPulled); n++ {
		rs, st, err := EvaluateCtx(context.Background(), e.lists(q), Options{
			Semantics: core.ELCA, K: 2, Budget: budget.New(0, n),
		})
		if err == nil {
			continue
		}
		if !st.Partial {
			t.Fatalf("budget=%d: abort without Stats.Partial", n)
		}
		assertCertifiedPrefix(t, e, q, rs, st.UnseenBound)
	}
}
