package topk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/testutil"
	"repro/internal/xmltree"
)

// tkHandlesFor round-trips each keyword's score-sorted list through the
// on-disk blob and returns streaming handles.
func tkHandlesFor(t *testing.T, e *env, keywords []string) []colstore.TKSource {
	t.Helper()
	out := make([]colstore.TKSource, len(keywords))
	for i, w := range keywords {
		occs := e.m.Terms[w]
		if len(occs) == 0 {
			continue
		}
		blob, _ := colstore.BuildTKList(w, occs).AppendEncoded(nil)
		h, err := colstore.NewTKHandle(w, blob)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = h
	}
	return out
}

// TestTKStreamingMatchesInMemory: the top-K star join over streaming disk
// handles must equal the in-memory evaluation exactly.
func TestTKStreamingMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		e := newEnv(testutil.RandomDoc(rng, testutil.MediumParams()))
		for _, kws := range []int{1, 2, 3} {
			q := testutil.RandomQuery(rng, testutil.Vocab(15), kws)
			for _, sem := range []core.Semantics{core.ELCA, core.SLCA} {
				for _, k := range []int{1, 5, 50} {
					want, _ := Evaluate(e.lists(q), Options{Semantics: sem, K: k})
					got, _ := EvaluateSources(tkHandlesFor(t, e, q), Options{Semantics: sem, K: k}, nil)
					if len(got) != len(want) {
						t.Fatalf("%v sem=%v k=%d: %d vs %d results", q, sem, k, len(got), len(want))
					}
					for i := range want {
						if got[i].Level != want[i].Level || got[i].Value != want[i].Value ||
							math.Abs(got[i].Score-want[i].Score) > 1e-12 {
							t.Fatalf("%v sem=%v k=%d rank %d: %+v vs %+v", q, sem, k, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestTKStreamingEarlyTerminationSavesColumns: an early-terminating query
// must leave most (group, level) columns undecoded.
func TestTKStreamingEarlyTerminationSavesColumns(t *testing.T) {
	b := xmltree.NewBuilder().Open("root")
	for i := 0; i < 300; i++ {
		b.Open("paper").Text("alpha beta alpha beta").Close()
	}
	for i := 0; i < 1000; i++ {
		b.Leaf("other", "beta")
	}
	doc := b.Close().Doc()
	e := newEnv(doc)
	q := []string{"alpha", "beta"}
	srcs := tkHandlesFor(t, e, q)
	rs, st := EvaluateSources(srcs, Options{Semantics: core.ELCA, K: 10}, nil)
	if len(rs) != 10 || !st.TerminatedEarly {
		t.Fatalf("expected early-terminating top-10: %d results, %+v", len(rs), st)
	}
	for i, s := range srcs {
		h := s.(*colstore.TKHandle)
		total := 0
		for g := 0; g < h.GroupCount(); g++ {
			total += h.GroupLen(g)
		}
		if dec := h.ColumnsDecoded(); dec >= total {
			t.Errorf("list %d decoded all %d columns despite early termination", i, dec)
		}
	}
}
