package xmltree

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse: the XML parser must never panic, and every accepted document
// must round-trip through WriteXML with identical structure and text.
func FuzzParse(f *testing.F) {
	f.Add("<a><b>hello</b><c attr=\"v\">world</c></a>")
	f.Add("<root/>")
	f.Add("<a>&lt;escaped&gt;</a>")
	f.Add("not xml")
	f.Add("<a><a><a>deep</a></a></a>")
	f.Fuzz(func(t *testing.T, input string) {
		doc, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := doc.WriteXML(&buf); err != nil {
			t.Fatalf("accepted document failed to serialize: %v", err)
		}
		doc2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("serialized form unparsable: %v", err)
		}
		if doc2.Len() != doc.Len() || doc2.Depth != doc.Depth {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				doc2.Len(), doc2.Depth, doc.Len(), doc.Depth)
		}
		for i := range doc.Nodes {
			if doc.Nodes[i].Tag != doc2.Nodes[i].Tag || doc.Nodes[i].Text != doc2.Nodes[i].Text {
				t.Fatalf("node %d changed across round trip", i)
			}
		}
	})
}
