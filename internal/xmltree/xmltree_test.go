package xmltree

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dewey"
)

const sampleXML = `<bib>
  <book id="b1">
    <title>XML data management</title>
    <author>Jane</author>
  </book>
  <article>
    <title>keyword search</title>
  </article>
</bib>`

func TestParseStructure(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Tag != "bib" {
		t.Fatalf("root tag = %q", doc.Root.Tag)
	}
	if len(doc.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(doc.Root.Children))
	}
	if doc.Len() != 6 {
		t.Fatalf("node count = %d, want 6", doc.Len())
	}
	if doc.Depth != 3 {
		t.Fatalf("depth = %d, want 3", doc.Depth)
	}
	book := doc.Root.Children[0]
	if book.Tag != "book" || !strings.Contains(book.Text, "b1") {
		t.Errorf("attribute value not folded into text: %q", book.Text)
	}
	title := book.Children[0]
	if title.Text != "XML data management" {
		t.Errorf("title text = %q", title.Text)
	}
	if got := title.Dewey.String(); got != "1.1.1" {
		t.Errorf("title dewey = %q, want 1.1.1", got)
	}
	if got := title.Path(); got != "/bib/book/title" {
		t.Errorf("title path = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "   ", "<a><b></a></b>", "<a></a><b></b>"} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestDeweyAssignment(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"1", "1.1", "1.1.1", "1.1.2", "1.2", "1.2.1"}
	for i, want := range wantOrder {
		if got := doc.Nodes[i].Dewey.String(); got != want {
			t.Errorf("node %d dewey = %q, want %q", i, got, want)
		}
		if doc.Nodes[i].Ord != i {
			t.Errorf("node %d ord = %d", i, doc.Nodes[i].Ord)
		}
	}
	// Preorder equals document (Dewey) order.
	for i := 1; i < doc.Len(); i++ {
		if dewey.Compare(doc.Nodes[i-1].Dewey, doc.Nodes[i].Dewey) >= 0 {
			t.Fatalf("preorder not in document order at %d", i)
		}
	}
}

func TestNodeLookups(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	// Assign trivial JDewey numbers in document order per level.
	counters := map[int]uint32{}
	for _, n := range doc.Nodes {
		counters[n.Level]++
		n.JD = counters[n.Level]
	}
	for _, n := range doc.Nodes {
		if got := doc.NodeByJDewey(n.Level, n.JD); got != n {
			t.Errorf("NodeByJDewey(%d, %d) = %v, want %v", n.Level, n.JD, got, n)
		}
		if got := doc.NodeByDewey(n.Dewey); got != n {
			t.Errorf("NodeByDewey(%v) mismatch", n.Dewey)
		}
	}
	if doc.NodeByJDewey(2, 99) != nil || doc.NodeByJDewey(9, 1) != nil {
		t.Error("lookup of nonexistent JDewey must return nil")
	}
	if doc.NodeByDewey(dewey.ID{1, 9}) != nil || doc.NodeByDewey(dewey.ID{2}) != nil || doc.NodeByDewey(nil) != nil {
		t.Error("lookup of nonexistent Dewey must return nil")
	}
	seq := doc.Root.Children[0].Children[0].JDeweySeq()
	if len(seq) != 3 || seq[0] != 1 {
		t.Errorf("JDeweySeq = %v", seq)
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	doc2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if doc2.Len() != doc.Len() || doc2.Depth != doc.Depth {
		t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d depth",
			doc2.Len(), doc.Len(), doc2.Depth, doc.Depth)
	}
	for i := range doc.Nodes {
		a, b := doc.Nodes[i], doc2.Nodes[i]
		if a.Tag != b.Tag || a.Text != b.Text {
			t.Errorf("node %d changed: %q/%q vs %q/%q", i, a.Tag, a.Text, b.Tag, b.Text)
		}
	}
}

func TestWriteXMLEscaping(t *testing.T) {
	doc := NewBuilder().Open("r").Text(`a <b> & "c"`).Close().Doc()
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	doc2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse escaped: %v", err)
	}
	if doc2.Root.Text != doc.Root.Text {
		t.Errorf("escaped text round trip: %q vs %q", doc2.Root.Text, doc.Root.Text)
	}
}

func TestBuilder(t *testing.T) {
	doc := NewBuilder().
		Open("dblp").
		Open("conf").Text("SIGMOD").
		Leaf("paper", "xml keyword search").
		Leaf("paper", "top-k joins").
		Close().
		Close().
		Doc()
	if doc.Len() != 4 || doc.Depth != 3 {
		t.Fatalf("builder shape: %d nodes depth %d", doc.Len(), doc.Depth)
	}
	if doc.Root.Children[0].Children[1].Text != "top-k joins" {
		t.Error("leaf text lost")
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("unclosed", func() { NewBuilder().Open("a").Doc() })
	mustPanic("empty", func() { NewBuilder().Doc() })
	mustPanic("two roots", func() { NewBuilder().Open("a").Close().Open("b") })
	mustPanic("stray text", func() { NewBuilder().Text("x") })
	mustPanic("stray close", func() { NewBuilder().Close() })
}

func TestInsertRemove(t *testing.T) {
	doc := NewBuilder().
		Open("r").Leaf("a", "one").Leaf("c", "three").Close().
		Doc()
	b := &Node{Tag: "b", Text: "two"}
	doc.InsertChild(doc.Root, b, 1)
	if doc.Len() != 4 {
		t.Fatalf("after insert: %d nodes", doc.Len())
	}
	if got := doc.Root.Children[1]; got != b || got.Dewey.String() != "1.2" {
		t.Fatalf("inserted node misplaced: %v", got.Dewey)
	}
	if doc.Root.Children[2].Dewey.String() != "1.3" {
		t.Error("sibling dewey not refreshed")
	}
	doc.RemoveNode(b)
	if doc.Len() != 3 || doc.Root.Children[1].Tag != "c" {
		t.Error("remove did not restore structure")
	}
	if doc.Root.Children[1].Dewey.String() != "1.2" {
		t.Error("dewey not refreshed after removal")
	}
	doc.RemoveNode(doc.Root)
	if doc.Len() != 0 || doc.Root != nil {
		t.Error("removing root must empty the document")
	}
}

func TestNodesAtLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder().Open("root")
	for i := 0; i < 5; i++ {
		b.Open("mid")
		for j := 0; j < rng.Intn(4); j++ {
			b.Leaf("leaf", "x")
		}
		b.Close()
	}
	doc := b.Close().Doc()
	total := 0
	for l := 1; l <= doc.Depth; l++ {
		nodes := doc.NodesAtLevel(l)
		total += len(nodes)
		for _, n := range nodes {
			if n.Level != l {
				t.Fatalf("level table wrong: node level %d in bucket %d", n.Level, l)
			}
		}
		// Document order within level.
		for i := 1; i < len(nodes); i++ {
			if dewey.Compare(nodes[i-1].Dewey, nodes[i].Dewey) >= 0 {
				t.Fatal("level table not in document order")
			}
		}
	}
	if total != doc.Len() {
		t.Fatalf("level buckets cover %d of %d nodes", total, doc.Len())
	}
	if doc.NodesAtLevel(0) != nil || doc.NodesAtLevel(doc.Depth+1) != nil {
		t.Error("out-of-range level must return nil")
	}
}
