package xmltree

// Builder constructs a Document programmatically. It is the path the
// synthetic dataset generators take, producing the same tree model the XML
// parser produces, without a serialize/parse round trip.
type Builder struct {
	root  *Node
	stack []*Node
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Open starts a new element under the currently open element (or as the
// root if none is open) and returns the builder for chaining.
func (b *Builder) Open(tag string) *Builder {
	n := &Node{Tag: tag}
	if len(b.stack) == 0 {
		if b.root != nil {
			panic("xmltree: builder: multiple roots")
		}
		b.root = n
	} else {
		p := b.stack[len(b.stack)-1]
		n.Parent = p
		p.Children = append(p.Children, n)
	}
	b.stack = append(b.stack, n)
	return b
}

// Text appends character data to the currently open element.
func (b *Builder) Text(s string) *Builder {
	if len(b.stack) == 0 {
		panic("xmltree: builder: text outside element")
	}
	top := b.stack[len(b.stack)-1]
	if top.Text == "" {
		top.Text = s
	} else {
		top.Text += " " + s
	}
	return b
}

// Close ends the currently open element.
func (b *Builder) Close() *Builder {
	if len(b.stack) == 0 {
		panic("xmltree: builder: unbalanced close")
	}
	b.stack = b.stack[:len(b.stack)-1]
	return b
}

// Leaf emits <tag>text</tag> under the currently open element.
func (b *Builder) Leaf(tag, text string) *Builder {
	return b.Open(tag).Text(text).Close()
}

// Doc finalizes and returns the document. The builder must have all
// elements closed.
func (b *Builder) Doc() *Document {
	if len(b.stack) != 0 {
		panic("xmltree: builder: unclosed elements")
	}
	if b.root == nil {
		panic("xmltree: builder: empty document")
	}
	d := &Document{Root: b.root}
	d.freeze()
	return d
}

// InsertChild inserts child under parent at position pos (0-based; pos ==
// len(parent.Children) appends) and refreshes the document's derived tables.
// JDewey numbers are not assigned to the new subtree; callers use
// jdewey.Encoding.Insert for incremental maintenance or reassign from
// scratch.
func (d *Document) InsertChild(parent *Node, child *Node, pos int) {
	if pos < 0 || pos > len(parent.Children) {
		panic("xmltree: insert position out of range")
	}
	parent.Children = append(parent.Children, nil)
	copy(parent.Children[pos+1:], parent.Children[pos:])
	parent.Children[pos] = child
	child.Parent = parent
	d.freeze()
}

// RemoveNode detaches n (and its subtree) from the document and refreshes
// the derived tables. Removing the root empties the document.
func (d *Document) RemoveNode(n *Node) {
	if n.Parent == nil {
		d.Root = nil
		d.Nodes = nil
		d.Depth = 0
		d.byLevel = nil
		return
	}
	p := n.Parent
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	n.Parent = nil
	d.freeze()
}

// Refresh recomputes the derived per-document tables after external
// structural mutation.
func (d *Document) Refresh() { d.freeze() }

// Clone deep-copies the document: every node (tag, text, JDewey number) is
// duplicated and the derived tables are recomputed from the copied
// structure. Because freeze assigns Dewey identifiers, levels, and
// ordinals deterministically from structure alone, the clone's node at
// ordinal i corresponds exactly to the original's node at ordinal i — the
// property the copy-on-write mutation path relies on to remap occurrence
// lists onto the cloned tree.
func (d *Document) Clone() *Document {
	nd := &Document{}
	if d.Root == nil {
		return nd
	}
	var cloneNode func(n *Node) *Node
	cloneNode = func(n *Node) *Node {
		c := &Node{Tag: n.Tag, Text: n.Text, JD: n.JD}
		if len(n.Children) > 0 {
			c.Children = make([]*Node, len(n.Children))
			for i, ch := range n.Children {
				cc := cloneNode(ch)
				cc.Parent = c
				c.Children[i] = cc
			}
		}
		return c
	}
	nd.Root = cloneNode(d.Root)
	nd.freeze()
	return nd
}
