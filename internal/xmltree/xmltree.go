// Package xmltree builds the in-memory XML document model shared by every
// indexing and query-evaluation component: an element tree with Dewey
// identifiers assigned in document order, direct text content per element,
// and room for the JDewey numbers assigned by package jdewey.
//
// The paper's substrate for this role is Xerces; here the tree is produced
// either by parsing XML with encoding/xml or programmatically through the
// Builder API used by the synthetic dataset generators, so that both paths
// exercise the same model.
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/dewey"
)

// Node is one element of the document tree.
type Node struct {
	Tag      string  // element name
	Text     string  // character data directly under this element (attribute values included)
	Parent   *Node   // nil for the root
	Children []*Node // in document order

	Dewey dewey.ID // document-order identifier, root = [1]
	JD    uint32   // JDewey number, unique within the node's level; 0 until assigned
	Level int      // 1-based depth; root is level 1
	Ord   int      // preorder ordinal within the document, 0-based
}

// JDeweySeq returns the node's JDewey sequence: the JDewey numbers on the
// path from the root to the node. It panics if JDewey numbers have not been
// assigned.
func (n *Node) JDeweySeq() []uint32 {
	seq := make([]uint32, n.Level)
	for v := n; v != nil; v = v.Parent {
		if v.JD == 0 {
			panic("xmltree: JDewey numbers not assigned")
		}
		seq[v.Level-1] = v.JD
	}
	return seq
}

// Path returns the slash-separated tag path from the root to the node.
func (n *Node) Path() string {
	var tags []string
	for v := n; v != nil; v = v.Parent {
		tags = append(tags, v.Tag)
	}
	for i, j := 0, len(tags)-1; i < j; i, j = i+1, j-1 {
		tags[i], tags[j] = tags[j], tags[i]
	}
	return "/" + strings.Join(tags, "/")
}

// Document is a parsed or generated XML document.
type Document struct {
	Root  *Node
	Nodes []*Node // preorder
	Depth int     // maximum level

	lazyMu  sync.Mutex // guards the lazy builds of byLevel and jdIndex
	byLevel [][]*Node  // filled lazily by NodesAtLevel
	jdIndex [][]*Node  // per level, sorted by JDewey number; lazily built
}

// Len returns the number of element nodes in the document.
func (d *Document) Len() int { return len(d.Nodes) }

// freeze recomputes the derived per-document tables (preorder list, Dewey
// ids, levels, ordinals, depth). It must be called after structural changes.
func (d *Document) freeze() {
	d.Nodes = d.Nodes[:0]
	d.Depth = 0
	d.lazyMu.Lock()
	d.byLevel = nil
	d.jdIndex = nil
	d.lazyMu.Unlock()
	var walk func(n *Node, id dewey.ID, level int)
	walk = func(n *Node, id dewey.ID, level int) {
		n.Dewey = id.Clone()
		n.Level = level
		n.Ord = len(d.Nodes)
		d.Nodes = append(d.Nodes, n)
		if level > d.Depth {
			d.Depth = level
		}
		for i, c := range n.Children {
			c.Parent = n
			walk(c, append(id, uint32(i+1)), level+1)
		}
	}
	if d.Root != nil {
		walk(d.Root, dewey.ID{1}, 1)
	}
}

// NodesAtLevel returns the nodes at the given 1-based level in document
// order. Because JDewey numbers are assigned in document order within a
// level, the returned slice is also sorted by JDewey number.
func (d *Document) NodesAtLevel(level int) []*Node {
	d.lazyMu.Lock()
	defer d.lazyMu.Unlock()
	return d.nodesAtLevelLocked(level)
}

func (d *Document) nodesAtLevelLocked(level int) []*Node {
	if d.byLevel == nil {
		d.byLevel = make([][]*Node, d.Depth+1)
		for _, n := range d.Nodes {
			d.byLevel[n.Level] = append(d.byLevel[n.Level], n)
		}
	}
	if level < 1 || level > d.Depth {
		return nil
	}
	return d.byLevel[level]
}

// NodeByJDewey locates the node with the given JDewey number at the given
// level, or nil if none exists. It binary-searches a per-level table kept
// sorted by JDewey number; incremental maintenance can assign numbers out
// of document order (gap insertions, subtree renumbering), so the table is
// maintained separately from the document-order one and must be
// invalidated by whoever renumbers nodes (see InvalidateJDeweyIndex).
func (d *Document) NodeByJDewey(level int, jd uint32) *Node {
	d.lazyMu.Lock()
	d.buildJDIndexLocked()
	if level < 1 || level >= len(d.jdIndex) {
		d.lazyMu.Unlock()
		return nil
	}
	nodes := d.jdIndex[level]
	d.lazyMu.Unlock()
	lo, hi := 0, len(nodes)
	for lo < hi {
		mid := (lo + hi) / 2
		if nodes[mid].JD < jd {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nodes) && nodes[lo].JD == jd {
		return nodes[lo]
	}
	return nil
}

func (d *Document) buildJDIndexLocked() {
	if d.jdIndex != nil {
		return
	}
	d.jdIndex = make([][]*Node, d.Depth+1)
	for l := 1; l <= d.Depth; l++ {
		nodes := append([]*Node(nil), d.nodesAtLevelLocked(l)...)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].JD < nodes[j].JD })
		d.jdIndex[l] = nodes
	}
}

// MaxJDeweyNode returns the node carrying the highest JDewey number at the
// given level, or nil when the level is empty. It shares NodeByJDewey's
// lazily built per-level table; the delta write path uses it to bound
// append eligibility without scanning the level.
func (d *Document) MaxJDeweyNode(level int) *Node {
	d.lazyMu.Lock()
	defer d.lazyMu.Unlock()
	d.buildJDIndexLocked()
	if level < 1 || level >= len(d.jdIndex) || len(d.jdIndex[level]) == 0 {
		return nil
	}
	nodes := d.jdIndex[level]
	return nodes[len(nodes)-1]
}

// InvalidateJDeweyIndex drops the JDewey lookup table; package jdewey
// calls it whenever node numbers change without a structural refresh.
func (d *Document) InvalidateJDeweyIndex() {
	d.lazyMu.Lock()
	d.jdIndex = nil
	d.lazyMu.Unlock()
}

// NodeByDewey locates the node with the given Dewey ID, or nil.
func (d *Document) NodeByDewey(id dewey.ID) *Node {
	if d.Root == nil || len(id) == 0 || id[0] != 1 {
		return nil
	}
	n := d.Root
	for _, c := range id[1:] {
		if c < 1 || int(c) > len(n.Children) {
			return nil
		}
		n = n.Children[c-1]
	}
	return n
}

// Parse reads an XML document and builds the tree. Character data is
// attached to the innermost open element; attribute values are folded into
// their element's text so that attribute tokens are searchable, mirroring
// how the paper's systems treat element content.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var (
		root  *Node
		stack []*Node
	)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Tag: t.Name.Local}
			var texts []string
			for _, a := range t.Attr {
				if a.Value != "" {
					texts = append(texts, a.Value)
				}
			}
			n.Text = strings.Join(texts, " ")
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: multiple root elements")
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				n.Parent = p
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				s := strings.TrimSpace(string(t))
				if s != "" {
					top := stack[len(stack)-1]
					if top.Text == "" {
						top.Text = s
					} else {
						top.Text += " " + s
					}
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: no root element")
	}
	doc := &Document{Root: root}
	doc.freeze()
	return doc, nil
}

// WriteXML serializes the document as XML. Text is escaped; the output
// round-trips through Parse.
func (d *Document) WriteXML(w io.Writer) error {
	bw := &errWriter{w: w}
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		bw.writeString("<" + n.Tag + ">")
		if n.Text != "" {
			xml.EscapeText(bw, []byte(n.Text))
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
		bw.writeString("</" + n.Tag + ">")
	}
	if d.Root != nil {
		walk(d.Root, 0)
	}
	bw.writeString("\n")
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

func (e *errWriter) writeString(s string) {
	_, _ = io.WriteString(e, s)
}
