package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func buildTree(t *testing.T, keys []string, vals []string) *Tree {
	t.Helper()
	b := NewBuilder()
	for i := range keys {
		b.Add([]byte(keys[i]), []byte(vals[i]))
	}
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Open(img)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEmptyTree(t *testing.T) {
	tr := buildTree(t, nil, nil)
	if _, ok := tr.Get([]byte("x")); ok {
		t.Error("empty tree claims a key")
	}
	it, err := tr.Seek(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := it.Next(); ok {
		t.Error("empty tree iterates")
	}
}

func TestSmallTree(t *testing.T) {
	keys := []string{"alpha", "beta", "gamma"}
	vals := []string{"1", "2", "3"}
	tr := buildTree(t, keys, vals)
	for i, k := range keys {
		v, ok := tr.Get([]byte(k))
		if !ok || string(v) != vals[i] {
			t.Fatalf("Get(%q) = %q, %v", k, v, ok)
		}
	}
	if _, ok := tr.Get([]byte("delta")); ok {
		t.Error("absent key found")
	}
	if _, ok := tr.Get([]byte("")); ok {
		t.Error("empty key found")
	}
}

func TestLargeTreeGetAndScan(t *testing.T) {
	const n = 20000
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%08d", i*3)
	}
	b := NewBuilder()
	for i, k := range keys {
		b.Add([]byte(k), []byte(fmt.Sprintf("v%d", i)))
	}
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Open(img)
	if err != nil {
		t.Fatal(err)
	}
	// The tree must actually have multiple levels at this size.
	if tr.Size() < int64(n*10) {
		t.Fatalf("implausibly small image: %d bytes", tr.Size())
	}
	rng := rand.New(rand.NewSource(1))
	for probe := 0; probe < 2000; probe++ {
		i := rng.Intn(n)
		v, ok := tr.Get([]byte(keys[i]))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%q) = %q, %v", keys[i], v, ok)
		}
		// Keys between the planted ones are absent.
		if _, ok := tr.Get([]byte(fmt.Sprintf("key%08d", i*3+1))); ok {
			t.Fatalf("phantom key found near %d", i)
		}
	}
	// Full ordered scan.
	it, err := tr.Seek(nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var prev []byte
	for {
		k, _, ok := it.Next()
		if !ok {
			break
		}
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatal("scan out of order")
		}
		prev = append(prev[:0], k...)
		count++
	}
	if count != n {
		t.Fatalf("scan returned %d of %d", count, n)
	}
}

func TestSeekSemantics(t *testing.T) {
	var keys []string
	for i := 0; i < 500; i++ {
		keys = append(keys, fmt.Sprintf("k%05d", i*10))
	}
	vals := make([]string, len(keys))
	for i := range vals {
		vals[i] = "x"
	}
	tr := buildTree(t, keys, vals)
	rng := rand.New(rand.NewSource(2))
	for probe := 0; probe < 500; probe++ {
		target := fmt.Sprintf("k%05d", rng.Intn(5200))
		it, err := tr.Seek([]byte(target))
		if err != nil {
			t.Fatal(err)
		}
		k, _, ok := it.Next()
		// Reference: first key >= target.
		i := sort.SearchStrings(keys, target)
		if i == len(keys) {
			if ok {
				t.Fatalf("Seek(%q) found %q beyond the end", target, k)
			}
			continue
		}
		if !ok || string(k) != keys[i] {
			t.Fatalf("Seek(%q) = %q, want %q", target, k, keys[i])
		}
	}
}

func TestBuilderRejectsDisorder(t *testing.T) {
	b := NewBuilder()
	b.Add([]byte("b"), nil)
	b.Add([]byte("a"), nil)
	if _, err := b.Finish(); err == nil {
		t.Error("descending keys accepted")
	}
	b2 := NewBuilder()
	b2.Add([]byte("a"), nil)
	b2.Add([]byte("a"), nil)
	if _, err := b2.Finish(); err == nil {
		t.Error("duplicate keys accepted")
	}
}

func TestOpenCorruption(t *testing.T) {
	tr := buildTree(t, []string{"a", "b"}, []string{"1", "2"})
	img := append([]byte(nil), tr.data...)
	if _, err := Open(img[:4]); err == nil {
		t.Error("truncated magic accepted")
	}
	img[0] ^= 0xff
	if _, err := Open(img); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated pages.
	good := append([]byte(nil), tr.data...)
	if _, err := Open(good[:len(good)-3]); err == nil {
		t.Error("truncated image accepted")
	}
}

func TestLargeValuesSpillPages(t *testing.T) {
	b := NewBuilder()
	big := bytes.Repeat([]byte("v"), PageSize/2)
	for i := 0; i < 20; i++ {
		b.Add([]byte(fmt.Sprintf("k%02d", i)), big)
	}
	img, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Open(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		v, ok := tr.Get([]byte(fmt.Sprintf("k%02d", i)))
		if !ok || len(v) != len(big) {
			t.Fatalf("big value %d lost", i)
		}
	}
}
