// Package btree implements an immutable, page-based B+-tree, the substrate
// the paper's index-based baseline gets from BerkeleyDB: a single tree
// whose key entries are whole (keyword, Dewey id) pairs. It is bulk-loaded
// bottom-up from sorted input into fixed-size pages and serialized as one
// byte image, so the Table I size accounting measures real pages — key
// duplication, page headers, and fill slack included — rather than a
// formula. Lookups are point gets and ordered scans, the two operations
// the index-based algorithms and RDIL issue.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed page capacity in bytes. 4 KiB matches common
// database defaults (and BerkeleyDB's).
const PageSize = 4096

const (
	pageLeaf     = byte(1)
	pageInternal = byte(2)
)

// magic heads every serialized tree.
const magic = "XKWBT1\n"

// Builder accumulates sorted entries and emits the serialized tree.
// Keys must be added in strictly ascending order.
type Builder struct {
	pages   [][]byte
	cur     []byte
	curN    int
	firstK  [][]byte // first key of each finished leaf/internal page at current build
	lastKey []byte
	err     error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{}
}

// Add appends one key/value entry. Keys must arrive strictly ascending;
// violations surface from Finish.
func (b *Builder) Add(key, val []byte) {
	if b.err != nil {
		return
	}
	if b.lastKey != nil && bytes.Compare(key, b.lastKey) <= 0 {
		b.err = fmt.Errorf("btree: keys not strictly ascending at %q", key)
		return
	}
	b.lastKey = append(b.lastKey[:0], key...)
	need := entrySize(len(key), len(val))
	if b.cur != nil && len(b.cur)+need > PageSize {
		b.flushLeaf()
	}
	if b.cur == nil {
		b.cur = make([]byte, 0, PageSize)
		b.cur = append(b.cur, pageLeaf)
		b.cur = binary.AppendUvarint(b.cur, 0) // entry count patched at flush
		b.firstK = append(b.firstK, append([]byte(nil), key...))
	}
	b.cur = binary.AppendUvarint(b.cur, uint64(len(key)))
	b.cur = append(b.cur, key...)
	b.cur = binary.AppendUvarint(b.cur, uint64(len(val)))
	b.cur = append(b.cur, val...)
	b.curN++
}

func entrySize(k, v int) int { return 2*binary.MaxVarintLen32 + k + v }

// flushLeaf finalizes the current page: the placeholder count is rewritten
// by re-encoding the page with the true entry count.
func (b *Builder) flushLeaf() {
	if b.cur == nil {
		return
	}
	// Re-encode header with the real count (varint length may differ).
	body := b.cur[2:] // type byte + 1-byte placeholder varint (0)
	page := make([]byte, 0, len(body)+8)
	page = append(page, b.cur[0])
	page = binary.AppendUvarint(page, uint64(b.curN))
	page = append(page, body...)
	b.pages = append(b.pages, page)
	b.cur = nil
	b.curN = 0
}

// Finish assembles the internal levels above the leaves and returns the
// serialized image. An empty builder yields an empty (but valid) tree.
func (b *Builder) Finish() ([]byte, error) {
	if b.err != nil {
		return nil, b.err
	}
	b.flushLeaf()
	level := b.pages       // page images of the current level
	firsts := b.firstK     // first key per page
	pageIDBase := 0        // ids are assigned level by level, leaves first
	allPages := [][]byte{} // final page array
	allPages = append(allPages, level...)
	ids := make([]int, len(level))
	for i := range ids {
		ids[i] = pageIDBase + i
	}
	for len(ids) > 1 {
		pageIDBase = len(allPages)
		var (
			nextPages  [][]byte
			nextFirsts [][]byte
			nextIDs    []int
			cur        []byte
			curFirst   []byte
			curN       int
		)
		flush := func() {
			if cur == nil {
				return
			}
			body := cur[2:]
			page := make([]byte, 0, len(body)+8)
			page = append(page, pageInternal)
			page = binary.AppendUvarint(page, uint64(curN))
			page = append(page, body...)
			nextPages = append(nextPages, page)
			nextFirsts = append(nextFirsts, curFirst)
			cur, curFirst, curN = nil, nil, 0
		}
		for i, id := range ids {
			key := firsts[i]
			need := entrySize(len(key), binary.MaxVarintLen64)
			if cur != nil && len(cur)+need > PageSize {
				flush()
			}
			if cur == nil {
				cur = make([]byte, 0, PageSize)
				cur = append(cur, pageInternal)
				cur = binary.AppendUvarint(cur, 0)
				curFirst = key
			}
			cur = binary.AppendUvarint(cur, uint64(len(key)))
			cur = append(cur, key...)
			cur = binary.AppendUvarint(cur, uint64(id))
			curN++
		}
		flush()
		for i := range nextPages {
			nextIDs = append(nextIDs, pageIDBase+i)
		}
		allPages = append(allPages, nextPages...)
		level, firsts, ids = nextPages, nextFirsts, nextIDs
		_ = level
	}
	// Image: magic, page count, root id, page offset table, pages.
	out := []byte(magic)
	out = binary.AppendUvarint(out, uint64(len(allPages)))
	root := 0
	if len(ids) == 1 {
		root = ids[0]
	}
	out = binary.AppendUvarint(out, uint64(root))
	off := 0
	for _, p := range allPages {
		out = binary.AppendUvarint(out, uint64(off))
		off += len(p)
	}
	out = binary.AppendUvarint(out, uint64(off)) // sentinel end offset
	for _, p := range allPages {
		out = append(out, p...)
	}
	return out, nil
}

// Tree is a read-only view over a serialized image.
type Tree struct {
	data    []byte
	pageOff []int // len = pages+1
	base    int   // offset of first page
	root    int
	empty   bool
}

// Open parses a serialized image.
func Open(data []byte) (*Tree, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("btree: bad magic")
	}
	off := len(magic)
	nPages, sz := binary.Uvarint(data[off:])
	if sz <= 0 || nPages > uint64(len(data)) {
		return nil, fmt.Errorf("btree: bad page count")
	}
	off += sz
	root, sz := binary.Uvarint(data[off:])
	if sz <= 0 || (nPages > 0 && root >= nPages) {
		return nil, fmt.Errorf("btree: bad root")
	}
	off += sz
	t := &Tree{data: data, root: int(root), empty: nPages == 0}
	t.pageOff = make([]int, nPages+1)
	for i := range t.pageOff {
		v, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			return nil, fmt.Errorf("btree: truncated offset table")
		}
		t.pageOff[i] = int(v)
		off += sz
	}
	t.base = off
	if nPages > 0 && t.base+t.pageOff[nPages] > len(data) {
		return nil, fmt.Errorf("btree: pages exceed image")
	}
	return t, nil
}

// Size returns the serialized byte size.
func (t *Tree) Size() int64 { return int64(len(t.data)) }

func (t *Tree) page(id int) []byte {
	return t.data[t.base+t.pageOff[id] : t.base+t.pageOff[id+1]]
}

// findLeaf descends to the leaf that may contain key.
func (t *Tree) findLeaf(key []byte) (int, error) {
	id := t.root
	for depth := 0; depth < 64; depth++ {
		p := t.page(id)
		if len(p) == 0 {
			return 0, fmt.Errorf("btree: empty page %d", id)
		}
		if p[0] == pageLeaf {
			return id, nil
		}
		n, off := pageHeader(p)
		if off <= 0 {
			return 0, fmt.Errorf("btree: corrupt page %d", id)
		}
		// Last child whose first key <= key (children sorted; the first
		// child is taken when key precedes everything).
		child := -1
		for i := 0; i < n; i++ {
			k, v, next, err := internalEntry(p, off)
			if err != nil {
				return 0, err
			}
			if bytes.Compare(k, key) > 0 && child >= 0 {
				break
			}
			child = int(v)
			off = next
		}
		if child < 0 || child >= len(t.pageOff)-1 {
			return 0, fmt.Errorf("btree: bad child in page %d", id)
		}
		id = child
	}
	return 0, fmt.Errorf("btree: depth overflow")
}

func pageHeader(p []byte) (n int, off int) {
	v, sz := binary.Uvarint(p[1:])
	if sz <= 0 {
		return 0, -1
	}
	return int(v), 1 + sz
}

func internalEntry(p []byte, off int) (key []byte, child uint64, next int, err error) {
	kl, sz := binary.Uvarint(p[off:])
	if sz <= 0 || off+sz+int(kl) > len(p) {
		return nil, 0, 0, fmt.Errorf("btree: corrupt internal entry")
	}
	off += sz
	key = p[off : off+int(kl)]
	off += int(kl)
	child, sz = binary.Uvarint(p[off:])
	if sz <= 0 {
		return nil, 0, 0, fmt.Errorf("btree: corrupt child pointer")
	}
	return key, child, off + sz, nil
}

func leafEntry(p []byte, off int) (key, val []byte, next int, err error) {
	kl, sz := binary.Uvarint(p[off:])
	if sz <= 0 || off+sz+int(kl) > len(p) {
		return nil, nil, 0, fmt.Errorf("btree: corrupt leaf entry")
	}
	off += sz
	key = p[off : off+int(kl)]
	off += int(kl)
	vl, sz := binary.Uvarint(p[off:])
	if sz <= 0 || off+sz+int(vl) > len(p) {
		return nil, nil, 0, fmt.Errorf("btree: corrupt leaf value")
	}
	off += sz
	val = p[off : off+int(vl)]
	return key, val, off + int(vl), nil
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	it, err := t.Seek(key)
	if err != nil {
		return nil, false
	}
	k, v, ok := it.Next()
	if !ok || !bytes.Equal(k, key) {
		return nil, false
	}
	return v, true
}

// Seek positions an iterator at the first entry with key >= the argument.
func (t *Tree) Seek(key []byte) (*Iterator, error) {
	if t.empty {
		return &Iterator{t: t, page: -1}, nil
	}
	leaf, err := t.findLeaf(key)
	if err != nil {
		return nil, err
	}
	it := &Iterator{t: t, page: leaf}
	p := t.page(leaf)
	n, off := pageHeader(p)
	it.remaining = n
	it.off = off
	// Skip entries below the key.
	for it.remaining > 0 {
		k, _, next, err := leafEntry(p, it.off)
		if err != nil {
			return nil, err
		}
		if bytes.Compare(k, key) >= 0 {
			break
		}
		it.off = next
		it.remaining--
	}
	return it, nil
}

// Iterator walks leaf entries in key order.
type Iterator struct {
	t         *Tree
	page      int
	off       int
	remaining int
}

// Next returns the next entry; ok is false at the end. The returned slices
// alias the tree image and must not be modified.
func (it *Iterator) Next() (key, val []byte, ok bool) {
	for {
		if it.page < 0 {
			return nil, nil, false
		}
		if it.remaining == 0 {
			// Advance to the next leaf page: leaves are laid out first and
			// contiguously, so the successor is page+1 while it is a leaf.
			it.page++
			if it.page >= len(it.t.pageOff)-1 {
				it.page = -1
				continue
			}
			p := it.t.page(it.page)
			if len(p) == 0 || p[0] != pageLeaf {
				it.page = -1
				continue
			}
			it.remaining, it.off = pageHeader(p)
			continue
		}
		p := it.t.page(it.page)
		k, v, next, err := leafEntry(p, it.off)
		if err != nil {
			it.page = -1
			return nil, nil, false
		}
		it.off = next
		it.remaining--
		return k, v, true
	}
}
