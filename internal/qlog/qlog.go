// Package qlog is the query flight recorder: an always-on, bounded,
// low-overhead log of every query the index served — traced or not,
// including the ones that were shed, timed out, tripped a budget, or
// settled as certified-partial answers. Each query produces one compact
// Record (keywords, semantics, K, requested algorithm and resolved
// engine, outcome class, duration, decoded bytes, cache hits, candidate
// pulls, a deterministic result-set fingerprint, and the exemplar trace
// ID when tail sampling retained the trace), pushed through a lossy
// bounded queue into an NDJSON sink with size-based rotation.
//
// The recorder never blocks the query path: the Offer fast path is a
// non-blocking channel send, and when the drain goroutine falls behind
// the record is dropped and counted instead of making the query wait.
// Fingerprints contain no wall-clock input — two runs of the same query
// against the same snapshot produce the same fingerprint — which is what
// turns a captured log into a deterministic replay workload (see
// internal/bench's capture→replay harness).
package qlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
)

// Outcome classes. Every record carries exactly one; together they
// partition the serving plane's typed error taxonomy (DESIGN.md §12)
// plus the admission layer's shed decision, which never reaches an
// engine at all.
const (
	// OutcomeOK is a query that ran to completion.
	OutcomeOK = "ok"
	// OutcomePartial is an aborted query settled as a certified-partial
	// answer (SearchOptions.AllowPartial): the caller saw a nil error.
	OutcomePartial = "partial"
	// OutcomeDeadline is a query aborted by its deadline.
	OutcomeDeadline = "deadline"
	// OutcomeCancelled is a query aborted by caller cancellation.
	OutcomeCancelled = "cancelled"
	// OutcomeBudget is a query aborted by a resource budget
	// (decoded bytes or candidate pulls).
	OutcomeBudget = "budget"
	// OutcomeShed is a query rejected by admission control before any
	// engine ran; it carries no engine, duration, or fingerprint.
	OutcomeShed = "shed"
	// OutcomeError is any other failure (bad algorithm, internal error).
	OutcomeError = "error"
)

// Record is one query's flight-recorder entry, one NDJSON line in the
// sink. Fields that are zero for a given outcome (fingerprint on errors,
// trace ID on untraced queries) are omitted from the encoding.
type Record struct {
	// Seq is the recorder-assigned monotonic sequence number (1-based).
	Seq uint64 `json:"seq,omitempty"`
	// OffsetNs is the query's arrival offset, in nanoseconds since the
	// recorder started — the replay harness paces a captured workload by
	// the differences between consecutive offsets. It is timing metadata,
	// never part of the fingerprint.
	OffsetNs int64 `json:"offset_ns,omitempty"`
	// Op is the entry point: "search", "topk", or "topk_stream".
	Op string `json:"op"`
	// Keywords are the tokenized, deduplicated query keywords.
	Keywords []string `json:"keywords"`
	// Semantics is the LCA variant, "elca" or "slca".
	Semantics string `json:"sem"`
	// K is the requested result bound (0 = complete evaluation).
	K int `json:"k,omitempty"`
	// Algo is the requested algorithm ("auto", "join", "stack", ...).
	Algo string `json:"algo"`
	// Engine is the engine that actually ran (the planner's choice for
	// algo=auto). Empty for shed queries.
	Engine string `json:"engine,omitempty"`
	// Outcome is the outcome class (see the Outcome constants).
	Outcome string `json:"outcome"`
	// DurationNs is the query's wall time in nanoseconds.
	DurationNs int64 `json:"duration_ns,omitempty"`
	// Results is the number of results returned (or streamed).
	Results int `json:"results"`
	// Shards is the scatter-gather fan-out: the number of shards the
	// query was dispatched to by a sharded index's coordinator. Zero for
	// queries served by an unsharded index (the field is then omitted,
	// keeping workload files from older recorders parseable and
	// vice versa for readers that tolerate its absence).
	Shards int `json:"shards,omitempty"`
	// DecodedBytes, CacheHits, and Candidates are the query's resource
	// profile: in-memory bytes of every inverted list it touched, decoded-
	// list cache hits among those, and candidate rows pulled by the
	// score-ordered engines.
	DecodedBytes int64 `json:"decoded_bytes,omitempty"`
	CacheHits    int64 `json:"cache_hits,omitempty"`
	Candidates   int64 `json:"candidates,omitempty"`
	// Fingerprint is the deterministic result-set hash (16 hex digits,
	// see Hash). Present for ok and partial outcomes only.
	Fingerprint string `json:"fp,omitempty"`
	// TraceID links to the tail-sampled trace store when the query was
	// traced and retained — the /traces/{id} exemplar.
	TraceID uint64 `json:"trace_id,omitempty"`
	// StageNs is the critical-path attribution of a traced query:
	// nanoseconds per stage (see internal/obs: admission, plan, open,
	// decode, join, merge, settle). Untraced queries omit it — attribution
	// exists only where a timeline exists.
	StageNs map[string]int64 `json:"stage_ns,omitempty"`
	// StragglerShard is 1 + the ID of the shard the scatter's critical
	// path waited on, so the zero value (omitted) means "not scattered or
	// not traced" without colliding with shard 0.
	StragglerShard int `json:"straggler_shard,omitempty"`
	// Err is the classified error text for non-ok outcomes.
	Err string `json:"err,omitempty"`
}

// Encode renders the record as one NDJSON line (no trailing newline).
func (r Record) Encode() ([]byte, error) {
	return json.Marshal(r)
}

// Parse decodes one NDJSON line into a Record. Unknown fields are
// rejected so a corrupted or foreign line fails loudly instead of
// half-loading.
func Parse(line []byte) (Record, error) {
	var r Record
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Record{}, err
	}
	return r, nil
}

// Hash is an accumulating FNV-1a result-set fingerprint. It folds in
// each result's identity (Dewey) and score in rank order, so two result
// sets fingerprint equal exactly when they agree element-for-element in
// order — no wall-clock, no map iteration, no pointer values.
type Hash uint64

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewHash returns the fingerprint of the empty result set.
func NewHash() Hash { return fnvOffset }

func (h Hash) bytes(s string) Hash {
	x := uint64(h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnvPrime
	}
	return Hash(x)
}

func (h Hash) u64(v uint64) Hash {
	x := uint64(h)
	for i := 0; i < 8; i++ {
		x ^= (v >> (8 * i)) & 0xff
		x *= fnvPrime
	}
	return Hash(x)
}

// Result folds one result into the fingerprint: its Dewey identity and
// its raw score bits, in rank order. Folding the fixed-width score bits
// after the variable-width Dewey keeps adjacent results from colliding
// across their boundary.
func (h Hash) Result(dewey string, score float64) Hash {
	return h.bytes(dewey).u64(math.Float64bits(score))
}

// String renders the fingerprint as 16 lowercase hex digits, the form
// stored in Record.Fingerprint.
func (h Hash) String() string {
	return fmt.Sprintf("%016x", uint64(h))
}

// ParseHash decodes a Record.Fingerprint back into a Hash.
func ParseHash(s string) (Hash, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	return Hash(v), err
}

// WriteFile writes records as an NDJSON workload file, one line each —
// the format ReadFile, the replay harness, and GET /qlog share.
func WriteFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, r := range recs {
		line, err := r.Encode()
		if err != nil {
			f.Close()
			return err
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads an NDJSON workload file written by WriteFile (or
// captured by a Recorder sink). Blank lines are skipped; a malformed
// line fails with its line number.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		r, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("qlog: %s:%d: %w", path, lineNo, err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("qlog: %s: %w", path, err)
	}
	return out, nil
}
