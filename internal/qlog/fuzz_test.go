package qlog

import (
	"reflect"
	"testing"
)

// FuzzQLogRecord: any record built from fuzzer-controlled fields must
// survive the Encode→Parse round trip exactly — the property the replay
// harness (and any external log consumer) relies on. Fields omitted when
// zero must also reappear as their zero values.
func FuzzQLogRecord(f *testing.F) {
	f.Add(uint64(1), int64(5), "topk", "alpha beta", "elca", 10, "auto", "topk",
		OutcomeOK, int64(123), 3, int64(4096), int64(1), int64(33), "00000000deadbeef", uint64(7), "")
	f.Add(uint64(0), int64(0), "search", "", "slca", 0, "join", "",
		OutcomeShed, int64(0), 0, int64(0), int64(0), int64(0), "", uint64(0), "shed")
	f.Add(uint64(9), int64(-3), "topk_stream", "xéß �", "elca", -1, "rdil", "rdil",
		OutcomePartial, int64(-1), -2, int64(-5), int64(-6), int64(-7), "zzz", uint64(1<<63), "err \"quoted\" \n newline")
	f.Fuzz(func(t *testing.T, seq uint64, offset int64, op, kws, sem string, k int,
		algo, engine, outcome string, dur int64, results int,
		decoded, hits, cands int64, fp string, traceID uint64, errText string) {
		in := Record{
			Seq: seq, OffsetNs: offset, Op: op,
			Semantics: sem, K: k, Algo: algo, Engine: engine, Outcome: outcome,
			DurationNs: dur, Results: results, DecodedBytes: decoded,
			CacheHits: hits, Candidates: cands, Fingerprint: fp,
			TraceID: traceID, Err: errText,
		}
		if kws != "" {
			in.Keywords = splitKeywords(kws)
		}
		line, err := in.Encode()
		if err != nil {
			// Encoding only fails on invalid UTF-8 sequences json.Marshal
			// replaces rather than rejects — Marshal of this struct cannot
			// actually error, so any error is a bug.
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		out, err := Parse(line)
		if err != nil {
			t.Fatalf("Parse(Encode(%+v)) = %v\nline: %s", in, err, line)
		}
		// json.Marshal coerces invalid UTF-8 to U+FFFD, so compare through
		// a second round trip: once coerced, the form must be stable.
		line2, err := out.Encode()
		if err != nil {
			t.Fatalf("re-Encode: %v", err)
		}
		out2, err := Parse(line2)
		if err != nil {
			t.Fatalf("re-Parse: %v", err)
		}
		if !reflect.DeepEqual(out, out2) {
			t.Fatalf("round trip not stable:\nfirst:  %+v\nsecond: %+v", out, out2)
		}
	})
}

// splitKeywords is a tiny deterministic splitter for the fuzz input.
func splitKeywords(s string) []string {
	var out []string
	word := ""
	for _, r := range s {
		if r == ' ' {
			if word != "" {
				out = append(out, word)
				word = ""
			}
			continue
		}
		word += string(r)
	}
	if word != "" {
		out = append(out, word)
	}
	return out
}
