package qlog

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func testRecord(i int) Record {
	return Record{
		Op:        "topk",
		Keywords:  []string{"alpha", fmt.Sprintf("beta%d", i)},
		Semantics: "elca",
		K:         10,
		Algo:      "auto",
		Engine:    "topk",
		Outcome:   OutcomeOK,
		Results:   3,
	}
}

func TestRecordRoundTrip(t *testing.T) {
	in := Record{
		Seq: 7, OffsetNs: 12345, Op: "search",
		Keywords: []string{"xml", "keyword"}, Semantics: "slca",
		K: 5, Algo: "auto", Engine: "join", Outcome: OutcomePartial,
		DurationNs: 98765, Results: 2, DecodedBytes: 4096, CacheHits: 1,
		Candidates: 33, Fingerprint: NewHash().Result("1.2.3", 0.5).String(),
		TraceID: 42, Err: "budget exceeded: decoded_bytes 9 > limit 1",
	}
	line, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Parse(line)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"op":"topk","keywords":["a"],"sem":"elca","algo":"auto","outcome":"ok","results":0,"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestHashDeterministic: the fingerprint depends only on the
// (dewey, score) sequence — order-sensitive, boundary-safe, stable.
func TestHashDeterministic(t *testing.T) {
	a := NewHash().Result("1.2", 0.5).Result("1.3", 0.25)
	b := NewHash().Result("1.2", 0.5).Result("1.3", 0.25)
	if a != b {
		t.Fatal("same sequence, different hash")
	}
	if NewHash().Result("1.3", 0.25).Result("1.2", 0.5) == a {
		t.Fatal("order-insensitive hash")
	}
	if NewHash().Result("1.2", 0.25) == NewHash().Result("1.2", 0.5) {
		t.Fatal("score ignored")
	}
	// The boundary between dewey and score must not shift content: the
	// dewey "1.2" with one score is distinct from dewey "1.22" cases.
	if NewHash().Result("1.2", 0) == NewHash().Result("1.20", 0) {
		t.Fatal("dewey boundary collision")
	}
	rt, err := ParseHash(a.String())
	if err != nil || rt != a {
		t.Fatalf("ParseHash(%q) = %v, %v", a.String(), rt, err)
	}
}

func TestWorkloadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.ndjson")
	recs := []Record{testRecord(1), testRecord(2), testRecord(3)}
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Fatalf("file round trip mismatch: %+v", got)
	}
	// A malformed line fails with its line number.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("{not json\n")
	f.Close()
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), ":4:") {
		t.Fatalf("malformed line error missing line number: %v", err)
	}
}

// TestRecorderRingAndSink: records flow through the queue into both the
// bounded ring and the NDJSON sink; sequence numbers are monotonic.
func TestRecorderRingAndSink(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Options{Dir: dir, RingCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.Offer(testRecord(i))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Ring keeps only the newest RingCap records, oldest first.
	recent := r.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recent))
	}
	for i, rec := range recent {
		if want := uint64(7 + i); rec.Seq != want {
			t.Errorf("ring[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
	}
	// The sink holds all ten.
	sunk, err := ReadFile(filepath.Join(dir, "qlog.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sunk) != 10 {
		t.Fatalf("sink holds %d records, want 10", len(sunk))
	}
	for i, rec := range sunk {
		if rec.Seq != uint64(i+1) {
			t.Errorf("sink[%d].Seq = %d, want %d", i, rec.Seq, i+1)
		}
		if rec.OffsetNs <= 0 {
			t.Errorf("sink[%d].OffsetNs = %d, want > 0", i, rec.OffsetNs)
		}
	}
	if r.Records() != 10 || r.Dropped() != 0 {
		t.Fatalf("records=%d dropped=%d, want 10/0", r.Records(), r.Dropped())
	}
}

// TestRecorderNeverBlocks: with the drain goroutine unable to keep up
// (tiny queue, many concurrent offerers), Offer returns promptly and the
// overflow is dropped and counted — never blocked.
func TestRecorderNeverBlocks(t *testing.T) {
	r, err := New(Options{QueueCap: 1, RingCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	const offers = 5000
	var wg sync.WaitGroup
	done := make(chan struct{})
	go func() {
		defer close(done)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < offers/8; i++ {
					r.Offer(testRecord(i))
				}
			}(g)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Offer blocked under a saturated queue")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := r.Records() + r.Dropped(); got != offers {
		t.Fatalf("records+dropped = %d, want %d", got, offers)
	}
	// Offers after Close are silently ignored, as is a nil recorder.
	r.Offer(testRecord(0))
	var nilRec *Recorder
	nilRec.Offer(testRecord(0))
	if nilRec.Enabled() || r.Enabled() {
		t.Fatal("closed or nil recorder reports enabled")
	}
}

// TestRecorderRotation: the sink rotates past MaxFileBytes, numbering
// continues across restarts, and pruning bounds the rotation count.
func TestRecorderRotation(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Options{Dir: dir, MaxFileBytes: 256, MaxFiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r.Offer(testRecord(i))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Rotations() == 0 {
		t.Fatal("no rotation despite 50 records against a 256-byte threshold")
	}
	idxs := rotIndexes(dir)
	if len(idxs) > 2 {
		t.Fatalf("%d rotated files kept, want <= 2", len(idxs))
	}
	highWater := idxs[len(idxs)-1]

	// Restart in the same dir: numbering continues, nothing overwritten.
	r2, err := New(Options{Dir: dir, MaxFileBytes: 256, MaxFiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r2.Offer(testRecord(i))
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	idxs2 := rotIndexes(dir)
	if idxs2[len(idxs2)-1] <= highWater {
		t.Fatalf("rotation numbering did not continue: %v then %v", idxs, idxs2)
	}
	if r2.SinkErrors() != 0 {
		t.Fatalf("%d sink errors on restart", r2.SinkErrors())
	}
}

// TestCloseFlushes: everything offered before Close is durable in the
// sink afterwards, and Close is idempotent.
func TestCloseFlushes(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		r.Offer(testRecord(i))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	sunk, err := ReadFile(filepath.Join(dir, "qlog.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sunk) != n {
		t.Fatalf("sink holds %d records after Close, want %d (accepted %d)", len(sunk), n, r.Records())
	}
}

// TestMemoryOnlyRecorder: the zero-Options recorder never touches disk.
func TestMemoryOnlyRecorder(t *testing.T) {
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r.Offer(testRecord(1))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := r.Recent(); len(got) != 1 {
		t.Fatalf("ring holds %d, want 1", len(got))
	}
}
