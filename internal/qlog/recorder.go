package qlog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxFileBytes = 8 << 20 // rotate the sink past 8 MiB
	DefaultMaxFiles     = 4       // rotated files kept beside the live one
	DefaultRingCap      = 512     // records served by Recent / GET /qlog
	DefaultQueueCap     = 1024    // records in flight to the drain goroutine
)

// Options configures a Recorder. The zero value is a memory-only
// recorder: records land in the bounded recent ring (for Recent and the
// /qlog route) and nothing touches disk.
type Options struct {
	// Dir, when non-empty, enables the NDJSON sink: records append to
	// Dir/qlog.ndjson, which rotates to qlog.NNNNNN.ndjson once it
	// exceeds MaxFileBytes, keeping at most MaxFiles rotated files.
	Dir string
	// MaxFileBytes is the rotation threshold (default 8 MiB).
	MaxFileBytes int64
	// MaxFiles bounds how many rotated files are kept (default 4);
	// older rotations are deleted.
	MaxFiles int
	// RingCap bounds the in-memory recent-record ring (default 512).
	RingCap int
	// QueueCap bounds the queue between Offer and the drain goroutine
	// (default 1024). A full queue drops the record and counts the drop —
	// Offer never waits.
	QueueCap int
}

// Recorder is the query flight recorder. Offer is safe for concurrent
// use from any number of query goroutines and never blocks: records
// pass through a bounded channel to a single drain goroutine that owns
// the recent ring and the NDJSON sink. All bookkeeping is atomic; a nil
// *Recorder is a no-op on every method.
type Recorder struct {
	opt   Options
	start time.Time

	seq     atomic.Uint64
	records atomic.Int64 // records accepted into the queue
	dropped atomic.Int64 // records dropped on a full queue
	rotates atomic.Int64 // sink rotations performed
	sinkErr atomic.Int64 // sink write/rotate errors (records still ring-buffered)
	obsC    atomic.Pointer[obs.QLogCounters]

	ch     chan Record
	quit   chan struct{}
	done   chan struct{}
	closed atomic.Bool

	// ringMu guards the recent ring only; it is taken by the drain
	// goroutine and Recent readers, never by Offer.
	ringMu   sync.Mutex
	ring     []Record
	ringLen  int
	ringNext int

	f        *os.File
	fileSize int64
	rotIndex int
	closeErr error
}

// New builds a recorder and starts its drain goroutine. With Options.Dir
// set, the sink file is created (the directory too, if needed) and an
// existing qlog.ndjson is appended to; rotation numbering continues from
// the highest rotated file already present, so restarts never overwrite
// a previous run's capture.
func New(opt Options) (*Recorder, error) {
	if opt.MaxFileBytes <= 0 {
		opt.MaxFileBytes = DefaultMaxFileBytes
	}
	if opt.MaxFiles <= 0 {
		opt.MaxFiles = DefaultMaxFiles
	}
	if opt.RingCap <= 0 {
		opt.RingCap = DefaultRingCap
	}
	if opt.QueueCap <= 0 {
		opt.QueueCap = DefaultQueueCap
	}
	r := &Recorder{
		opt:   opt,
		start: time.Now(),
		ch:    make(chan Record, opt.QueueCap),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		ring:  make([]Record, opt.RingCap),
	}
	if opt.Dir != "" {
		if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("qlog: %w", err)
		}
		f, err := os.OpenFile(r.livePath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("qlog: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("qlog: %w", err)
		}
		r.f = f
		r.fileSize = st.Size()
		r.rotIndex = maxRotIndex(opt.Dir)
	}
	go r.drain()
	return r, nil
}

// SetObs installs the metrics counters the recorder increments (records,
// drops, rotations, sink errors). Nil-safe on both sides.
func (r *Recorder) SetObs(c *obs.QLogCounters) {
	if r == nil {
		return
	}
	r.obsC.Store(c)
}

// Offer submits one record. It stamps the sequence number and — when the
// caller did not — the arrival offset, then hands the record to the
// drain goroutine without ever waiting: if the queue is full the record
// is dropped and the drop counted. Safe on a nil or closed recorder.
func (r *Recorder) Offer(rec Record) {
	if r == nil || r.closed.Load() {
		return
	}
	rec.Seq = r.seq.Add(1)
	if rec.OffsetNs == 0 {
		// The query arrived (roughly) DurationNs before it finished.
		off := time.Since(r.start).Nanoseconds() - rec.DurationNs
		if off < 1 {
			off = 1
		}
		rec.OffsetNs = off
	}
	select {
	case r.ch <- rec:
		r.records.Add(1)
		r.obsC.Load().RecordAccepted()
	default:
		r.dropped.Add(1)
		r.obsC.Load().RecordDropped()
	}
}

// Recent returns the retained recent records, oldest first. The slice is
// a copy; mutating it does not affect the ring.
func (r *Recorder) Recent() []Record {
	if r == nil {
		return nil
	}
	r.ringMu.Lock()
	defer r.ringMu.Unlock()
	out := make([]Record, 0, r.ringLen)
	start := r.ringNext - r.ringLen
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.ringLen; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// Records returns how many records were accepted (dropped ones excluded).
func (r *Recorder) Records() int64 {
	if r == nil {
		return 0
	}
	return r.records.Load()
}

// Dropped returns how many records were dropped on a full queue.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Rotations returns how many sink rotations have happened.
func (r *Recorder) Rotations() int64 {
	if r == nil {
		return 0
	}
	return r.rotates.Load()
}

// SinkErrors returns how many sink write/rotate errors occurred; the
// affected records stayed in the recent ring.
func (r *Recorder) SinkErrors() int64 {
	if r == nil {
		return 0
	}
	return r.sinkErr.Load()
}

// Enabled reports whether the recorder accepts records (non-nil and not
// closed) — the facade's single cheap check before building a record.
func (r *Recorder) Enabled() bool {
	return r != nil && !r.closed.Load()
}

// Close stops accepting records, drains everything already queued into
// the ring and sink, flushes, and closes the sink file. Idempotent;
// concurrent callers all wait for the drain to finish.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	if !r.closed.Swap(true) {
		close(r.quit)
	}
	<-r.done
	return r.closeErr
}

// drain is the single consumer: it owns the ring and the sink.
func (r *Recorder) drain() {
	defer close(r.done)
	for {
		select {
		case rec := <-r.ch:
			r.consume(rec)
		case <-r.quit:
			for {
				select {
				case rec := <-r.ch:
					r.consume(rec)
				default:
					if r.f != nil {
						r.closeErr = r.f.Close()
						r.f = nil
					}
					return
				}
			}
		}
	}
}

// consume appends one record to the ring and the sink.
func (r *Recorder) consume(rec Record) {
	r.ringMu.Lock()
	r.ring[r.ringNext] = rec
	r.ringNext = (r.ringNext + 1) % len(r.ring)
	if r.ringLen < len(r.ring) {
		r.ringLen++
	}
	r.ringMu.Unlock()
	if r.f == nil {
		return
	}
	line, err := rec.Encode()
	if err != nil {
		r.noteSinkErr()
		return
	}
	line = append(line, '\n')
	if _, err := r.f.Write(line); err != nil {
		r.noteSinkErr()
		return
	}
	r.fileSize += int64(len(line))
	if r.fileSize >= r.opt.MaxFileBytes {
		r.rotate()
	}
}

// rotate closes the live file, renames it to the next numbered rotation,
// prunes rotations beyond MaxFiles, and reopens a fresh live file.
func (r *Recorder) rotate() {
	if err := r.f.Close(); err != nil {
		r.noteSinkErr()
	}
	r.f = nil
	r.rotIndex++
	rotated := filepath.Join(r.opt.Dir, fmt.Sprintf("qlog.%06d.ndjson", r.rotIndex))
	if err := os.Rename(r.livePath(), rotated); err != nil {
		r.noteSinkErr()
	}
	r.pruneRotations()
	f, err := os.OpenFile(r.livePath(), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		r.noteSinkErr()
		return
	}
	r.f = f
	r.fileSize = 0
	r.rotates.Add(1)
	r.obsC.Load().RecordRotation()
}

// pruneRotations deletes the oldest rotated files beyond MaxFiles.
func (r *Recorder) pruneRotations() {
	idxs := rotIndexes(r.opt.Dir)
	for len(idxs) > r.opt.MaxFiles {
		os.Remove(filepath.Join(r.opt.Dir, fmt.Sprintf("qlog.%06d.ndjson", idxs[0])))
		idxs = idxs[1:]
	}
}

func (r *Recorder) noteSinkErr() {
	r.sinkErr.Add(1)
	r.obsC.Load().RecordSinkError()
}

func (r *Recorder) livePath() string {
	return filepath.Join(r.opt.Dir, "qlog.ndjson")
}

// rotIndexes lists the rotation indexes present in dir, ascending.
func rotIndexes(dir string) []int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "qlog.") || !strings.HasSuffix(name, ".ndjson") || name == "qlog.ndjson" {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, "qlog."), ".ndjson")
		if n, err := strconv.Atoi(num); err == nil {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// maxRotIndex returns the highest rotation index in dir (0 when none).
func maxRotIndex(dir string) int {
	idxs := rotIndexes(dir)
	if len(idxs) == 0 {
		return 0
	}
	return idxs[len(idxs)-1]
}
