package obs

import (
	"runtime"
	"runtime/debug"
)

// ProcessSnapshot is the process-level identity and runtime state sampled
// into every metrics Snapshot: who this binary is (the xkw_build_info
// labels and the /version route) and the two cheapest liveness signals a
// dashboard wants next to the query metrics (goroutine count, live heap).
type ProcessSnapshot struct {
	// Version is the main module's version from the embedded build info
	// ("(devel)" for a plain `go build` of the working tree).
	Version string `json:"version"`
	// Revision is the VCS revision stamped into the build, if any.
	Revision string `json:"revision,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Goroutines is the live goroutine count at snapshot time.
	Goroutines int `json:"goroutines"`
	// HeapBytes is the live heap (runtime.MemStats.HeapAlloc) at snapshot
	// time.
	HeapBytes uint64 `json:"heap_bytes"`
}

// buildVersion and buildRevision are read once at init: build info never
// changes while the process runs, and debug.ReadBuildInfo walks the
// embedded module data on every call.
var buildVersion, buildRevision = func() (version, revision string) {
	version = "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, ""
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return version, revision
}()

// CurrentProcess samples the process state. ReadMemStats is a
// stop-the-world-free read in modern Go but still costs microseconds;
// it runs per Snapshot (i.e. per scrape), never on the query path.
func CurrentProcess() ProcessSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ProcessSnapshot{
		Version:    buildVersion,
		Revision:   buildRevision,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Goroutines: runtime.NumGoroutine(),
		HeapBytes:  ms.HeapAlloc,
	}
}
