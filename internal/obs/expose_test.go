package obs

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPublishExpvarLastWins: publishing under a taken name neither panics
// (the expvar package panics on duplicate registration) nor serves the old
// registry — the variable atomically follows the latest publication.
func TestPublishExpvarLastWins(t *testing.T) {
	const name = "xkw_obs_test_last_wins"
	a, b := NewMetrics(), NewMetrics()
	a.RecordQuery(EngineJoin, "one", 0, time.Millisecond, 1, nil, nil)
	b.RecordQuery(EngineJoin, "two", 0, time.Millisecond, 2, nil, nil)
	b.RecordQuery(EngineJoin, "three", 0, time.Millisecond, 3, nil, nil)

	a.PublishExpvar(name)
	a.PublishExpvar(name) // republishing the same registry is a no-op
	read := func() int64 {
		v := expvar.Get(name)
		if v == nil {
			t.Fatal("variable not registered")
		}
		var snap Snapshot
		if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
			t.Fatalf("expvar value is not a snapshot: %v", err)
		}
		for _, e := range snap.Engines {
			if e.Engine == EngineJoin.String() {
				return e.Queries
			}
		}
		return 0
	}
	if got := read(); got != 1 {
		t.Fatalf("expvar serves %d queries, want a's 1", got)
	}
	b.PublishExpvar(name)
	if got := read(); got != 2 {
		t.Fatalf("after rebind expvar serves %d queries, want b's 2", got)
	}

	// Concurrent republication must be race-free and end on some registry.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				a.PublishExpvar(name)
			} else {
				b.PublishExpvar(name)
			}
		}(i)
	}
	wg.Wait()
	if got := read(); got != 1 && got != 2 {
		t.Fatalf("expvar serves neither registry: %d", got)
	}

	// A name registered outside the metrics registry is left alone.
	taken := "xkw_obs_test_taken"
	expvar.Publish(taken, expvar.Func(func() any { return "external" }))
	a.PublishExpvar(taken) // must not panic
}

// TestPrometheusCacheAndWriterLines: the exposition carries the cache and
// writer counters introduced alongside snapshot isolation.
func TestPrometheusCacheAndWriterLines(t *testing.T) {
	m := NewMetrics()
	m.Store.RecordCacheHit()
	m.Store.RecordCacheMiss()
	m.Store.RecordCacheEvictions(3)
	m.Writer.RecordMutation(true, 5, true, time.Millisecond, nil)
	m.Writer.RecordMutation(false, 2, false, time.Millisecond, nil)

	var sb strings.Builder
	m.Snapshot().WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"xkw_store_cache_hits_total 1",
		"xkw_store_cache_misses_total 1",
		"xkw_store_cache_evictions_total 3",
		"xkw_writer_inserts_total 1",
		"xkw_writer_removes_total 1",
		"xkw_writer_dirty_terms_total 7",
		"xkw_writer_renumbered_total 1",
		"xkw_writer_snapshots_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
