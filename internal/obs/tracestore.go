package obs

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceStore is a bounded, tail-sampled store of completed query traces.
// Tail sampling decides what to keep AFTER a query finishes, when its
// latency and outcome are known — the opposite of head sampling, which
// must guess up front and therefore misses exactly the traces worth
// keeping. The policy:
//
//   - Every interesting trace — error, cancellation, or latency at or
//     above the slow threshold (a threshold of 0 marks every trace slow,
//     which is how a debugging session forces full capture) — goes into a
//     ring of keepCap entries. Nothing evicts an interesting trace except
//     ring wrap-around, i.e. newer interesting traces.
//   - The rest are reservoir-sampled into sampleCap slots, so the store
//     always holds a uniform sample of ordinary traffic to compare the
//     tail against.
//
// Both bounds are fixed at construction, so the store's memory is capped
// regardless of traffic. Sampling decisions use only the recorded latency,
// the outcome, and a seeded RNG — never the wall clock — so the policy is
// deterministic under test.
//
// Retained traces get a process-unique increasing ID; histogram exemplars
// (Histogram.SetExemplar) link latency buckets to these IDs, and the
// /traces HTTP endpoints serve them back as full span trees.
type TraceStore struct {
	mu        sync.Mutex
	keepCap   int
	sampleCap int
	threshold time.Duration
	rng       *rand.Rand
	nextID    uint64
	offered   int64 // ordinary traces offered to the reservoir so far

	keep     []StoredTrace // ring of interesting traces
	keepNext int
	sample   []StoredTrace // reservoir of ordinary traces

	// maxSpans is the per-trace span cap the facade applies to traces it
	// creates while this store is installed (0 = the trace default).
	maxSpans atomic.Int64
}

// Trace retention kinds, most interesting first.
const (
	KindError     = "error"     // the query failed
	KindCancelled = "cancelled" // the query was cancelled or timed out
	KindSlow      = "slow"      // latency at or above the slow threshold
	KindSampled   = "sampled"   // ordinary trace kept by the reservoir
)

// StoredTrace is one retained query trace with its outcome metadata and
// the full span tree + event log.
type StoredTrace struct {
	ID      uint64        `json:"id"`
	Engine  string        `json:"engine"`
	Query   string        `json:"query"`
	K       int           `json:"k,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Results int           `json:"results"`
	Err     string        `json:"err,omitempty"`
	Kind    string        `json:"kind"`
	Spans   []Span        `json:"spans"`
	Events  []Event       `json:"events"`
	Dropped int           `json:"dropped,omitempty"`
	// Stages is the critical-path reduction of the span tree (BreakdownOf),
	// precomputed at retention so /traces/{id} answers "where did the time
	// go" without re-deriving it.
	Stages *StageBreakdown `json:"stages,omitempty"`
}

// TraceSummary is the listing form of a stored trace: the outcome
// metadata without the span tree and event log.
type TraceSummary struct {
	ID      uint64        `json:"id"`
	Engine  string        `json:"engine"`
	Query   string        `json:"query"`
	K       int           `json:"k,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Results int           `json:"results"`
	Err     string        `json:"err,omitempty"`
	Kind    string        `json:"kind"`
	Spans   int           `json:"spans"`
	Events  int           `json:"events"`
	// Dropped counts spans and events the trace discarded at its bounds
	// (SetMaxSpans / DefaultMaxEvents) — nonzero means the timeline is
	// truncated.
	Dropped int `json:"dropped,omitempty"`
}

// DefaultKeepTraces and DefaultSampleTraces bound the two retention
// classes of a TraceStore built with caps <= 0.
const (
	DefaultKeepTraces   = 256
	DefaultSampleTraces = 64
)

// NewTraceStore builds a trace store keeping up to keepCap interesting
// (slow/error/cancelled) traces and reservoir-sampling up to sampleCap of
// the rest. threshold is the slow boundary: traces at or above it are
// always kept; threshold 0 marks every trace slow (full capture). seed
// fixes the reservoir RNG so sampling is reproducible. Caps <= 0 select
// the defaults.
func NewTraceStore(keepCap, sampleCap int, threshold time.Duration, seed int64) *TraceStore {
	if keepCap <= 0 {
		keepCap = DefaultKeepTraces
	}
	if sampleCap <= 0 {
		sampleCap = DefaultSampleTraces
	}
	if threshold < 0 {
		threshold = 0
	}
	return &TraceStore{
		keepCap:   keepCap,
		sampleCap: sampleCap,
		threshold: threshold,
		rng:       rand.New(rand.NewSource(seed)),
		keep:      make([]StoredTrace, 0, keepCap),
		sample:    make([]StoredTrace, 0, sampleCap),
	}
}

// SetMaxSpans sets the per-trace span cap the facade applies to new
// traces while this store is installed (n <= 0 restores the trace
// default). Serving the cap from the store keeps it one atomic load away
// from every query without widening the facade's setter surface.
func (ts *TraceStore) SetMaxSpans(n int) {
	if ts == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	ts.maxSpans.Store(int64(n))
}

// MaxSpans returns the configured per-trace span cap (0 = trace default).
func (ts *TraceStore) MaxSpans() int {
	if ts == nil {
		return 0
	}
	return int(ts.maxSpans.Load())
}

// SlowThreshold returns the slow boundary of the retention policy.
func (ts *TraceStore) SlowThreshold() time.Duration {
	if ts == nil {
		return 0
	}
	return ts.threshold
}

// classify maps a query outcome to its retention kind.
func (ts *TraceStore) classify(elapsed time.Duration, err error) string {
	switch {
	case err != nil && isCancel(err):
		return KindCancelled
	case err != nil:
		return KindError
	case elapsed >= ts.threshold:
		return KindSlow
	default:
		return KindSampled
	}
}

// Add offers one completed query trace to the store. Interesting traces
// (anything but KindSampled) are always retained; ordinary ones pass
// through the reservoir. On retention the trace is stamped with its new ID
// (also returned); a reservoir rejection returns 0 and retains nothing.
// Nil-safe on both receiver and trace.
func (ts *TraceStore) Add(engine Engine, query string, k int, elapsed time.Duration, results int, err error, tr *Trace) uint64 {
	if ts == nil || tr == nil {
		return 0
	}
	kind := ts.classify(elapsed, err)
	st := StoredTrace{
		Engine:  engine.String(),
		Query:   query,
		K:       k,
		Elapsed: elapsed,
		Results: results,
		Kind:    kind,
		Spans:   tr.Spans(),
		Events:  tr.Events(),
		Dropped: tr.Dropped(),
	}
	if err != nil {
		st.Err = err.Error()
	}
	if len(st.Spans) > 0 {
		bd := BreakdownOf(st.Spans, elapsed)
		st.Stages = &bd
	}

	ts.mu.Lock()
	defer ts.mu.Unlock()
	if kind != KindSampled {
		ts.nextID++
		st.ID = ts.nextID
		if len(ts.keep) < ts.keepCap {
			ts.keep = append(ts.keep, st)
		} else {
			ts.keep[ts.keepNext] = st
		}
		ts.keepNext = (ts.keepNext + 1) % ts.keepCap
		tr.id = st.ID
		return st.ID
	}
	// Algorithm R over the ordinary traffic: the i-th offer survives with
	// probability sampleCap/i, leaving a uniform sample.
	ts.offered++
	slot := -1
	if len(ts.sample) < ts.sampleCap {
		slot = len(ts.sample)
		ts.sample = append(ts.sample, StoredTrace{})
	} else if j := ts.rng.Int63n(ts.offered); j < int64(ts.sampleCap) {
		slot = int(j)
	}
	if slot < 0 {
		return 0
	}
	ts.nextID++
	st.ID = ts.nextID
	ts.sample[slot] = st
	tr.id = st.ID
	return st.ID
}

// Traces lists every retained trace as a summary, newest first.
func (ts *TraceStore) Traces() []TraceSummary {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceSummary, 0, len(ts.keep)+len(ts.sample))
	add := func(st *StoredTrace) {
		out = append(out, TraceSummary{
			ID:      st.ID,
			Engine:  st.Engine,
			Query:   st.Query,
			K:       st.K,
			Elapsed: st.Elapsed,
			Results: st.Results,
			Err:     st.Err,
			Kind:    st.Kind,
			Spans:   len(st.Spans),
			Events:  len(st.Events),
			Dropped: st.Dropped,
		})
	}
	for i := range ts.keep {
		add(&ts.keep[i])
	}
	for i := range ts.sample {
		add(&ts.sample[i])
	}
	// IDs are assigned in retention order, so sorting by ID descending is
	// newest-first without consulting any clock.
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// Get returns the stored trace with the given ID.
func (ts *TraceStore) Get(id uint64) (StoredTrace, bool) {
	if ts == nil {
		return StoredTrace{}, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for i := range ts.keep {
		if ts.keep[i].ID == id {
			return ts.keep[i], true
		}
	}
	for i := range ts.sample {
		if ts.sample[i].ID == id {
			return ts.sample[i], true
		}
	}
	return StoredTrace{}, false
}

// Len returns how many traces are currently retained.
func (ts *TraceStore) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.keep) + len(ts.sample)
}
