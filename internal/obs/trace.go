package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// EventKind is the type tag of one trace event. The taxonomy (documented
// per constant, with the meaning of the numeric payload fields) is the
// contract golden-trace tests and the renderers rely on.
type EventKind uint8

const (
	// EvListOpen: an inverted list was opened for a keyword.
	// Str=term, N1=rows (occurrences), N2=max level, N3=encoded bytes when
	// the list is disk-backed (0 for purely in-memory lists).
	EvListOpen EventKind = iota + 1
	// EvDecode: list bytes were actually decoded (first touch of a
	// disk-backed term, or a lazily-materialized column).
	// Str=term, N1=blocks decoded (runs / length groups / delta blocks),
	// N2=compressed (on-disk) bytes, N3=decoded (in-memory) bytes.
	EvDecode
	// EvJoinOrder: the engine fixed its evaluation order over the lists.
	// Str=order description ("rows:12<40<103" or an index permutation),
	// N1=list count, N2=rows of the driving (shortest/first) list,
	// N3=total rows.
	EvJoinOrder
	// EvJoinStep: one per-level join was executed.
	// Str="merge" or "index", N1=level, N2=outer (intermediate) cardinality,
	// N3=inner column runs, F=outer/inner selectivity estimate.
	EvJoinStep
	// EvPlanSwitch: the dynamic optimizer switched join algorithm or the
	// hybrid engine chose its plan. Str=plan chosen, N1=level (0 for a
	// query-level decision), N2 and N3=the triggering cardinalities
	// (intermediate size and column runs, or estimated result count and
	// the ratio*K cutoff).
	EvPlanSwitch
	// EvThreshold: the top-K unseen-result threshold was recomputed.
	// N1=level, N2=buffered candidates, N3=results emitted so far,
	// F=threshold value. Consecutive identical (level, value) updates are
	// deduplicated.
	EvThreshold
	// EvEmit: a result was proven safe and emitted.
	// N1=level, N2=emitted count after this result, F=result score.
	EvEmit
	// EvTerminated: the engine stopped before exhausting its input.
	// N1=level reached, N2=rows/postings consumed, N3=total rows a full
	// scan would have read.
	EvTerminated
	// EvCancelChecks: cancellation-check accounting for one evaluation.
	// N1=checks performed, N2=stride (loop iterations between checks).
	EvCancelChecks
	// EvQuarantine: a term's on-disk bytes failed verification and the
	// term was quarantined. Str=term plus cause.
	EvQuarantine
	// EvNote: engine-specific summary counters that fit no other kind.
	// Str=free-form "name=value ..." text, N1..N3 engine-specific.
	EvNote
)

var kindNames = map[EventKind]string{
	EvListOpen:     "list-open",
	EvDecode:       "decode",
	EvJoinOrder:    "join-order",
	EvJoinStep:     "join-step",
	EvPlanSwitch:   "plan-switch",
	EvThreshold:    "threshold",
	EvEmit:         "emit",
	EvTerminated:   "terminated",
	EvCancelChecks: "cancel-checks",
	EvQuarantine:   "quarantine",
	EvNote:         "note",
}

// String names the event kind for rendering and golden tests.
func (k EventKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Event is one typed trace event. A single flat struct (kind tag plus a
// string and three integer and one float payload slots, interpreted per
// kind) keeps the event log a single slice append with no per-kind
// allocation.
type Event struct {
	At   time.Duration `json:"at_ns"`
	Span int32         `json:"span"`
	Kind EventKind     `json:"kind"`
	Str  string        `json:"str,omitempty"`
	N1   int64         `json:"n1,omitempty"`
	N2   int64         `json:"n2,omitempty"`
	N3   int64         `json:"n3,omitempty"`
	F    float64       `json:"f,omitempty"`
}

// Span is one named interval of a trace (an engine phase: a column sweep,
// a merge pass, a verification loop). Parent is -1 for root spans.
type Span struct {
	Name   string        `json:"name"`
	Parent int32         `json:"parent"`
	Start  time.Duration `json:"start_ns"`
	End    time.Duration `json:"end_ns"`
}

// DefaultMaxEvents bounds a trace's event log; further events are dropped
// and counted, so a pathological query cannot make its own trace the
// memory problem.
const DefaultMaxEvents = 4096

// DefaultMaxSpans bounds a trace's span tree the same way. Wide scatters
// matter here: stitching folds every shard's spans into the coordinator
// trace (AdoptChild), so without a cap a 64-shard fan-out would multiply
// the span tree by the shard count.
const DefaultMaxSpans = 4096

// Trace is a per-query execution trace: spans plus typed events on a
// monotonic clock starting at NewTrace. A nil *Trace is the disabled
// state — every method is a nil-check no-op, which is the entire hot-path
// cost of disabled tracing. A Trace is NOT safe for concurrent use; it
// belongs to exactly one query evaluation.
type Trace struct {
	start    time.Time
	max      int
	maxSpans int
	spans    []Span
	events   []Event
	cur      int32 // innermost open span, -1 at root
	id       uint64

	dropped int
	lastThL int64   // dedup state for EvThreshold
	lastThV float64 // dedup state for EvThreshold
}

// NewTrace starts a trace on the monotonic clock with the default event
// and span bounds.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), max: DefaultMaxEvents, maxSpans: DefaultMaxSpans, cur: -1, lastThL: -1}
}

// SetMaxSpans caps the span tree at n spans (n <= 0 removes the cap).
// Spans past the cap — including spans grafted in by AdoptChild — are
// discarded and counted in Dropped.
func (t *Trace) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	t.maxSpans = n
}

// NewChild starts a trace for one shard of a scattered query, sharing
// the parent's clock and bounds so its timestamps need no rebasing when
// AdoptChild stitches it back in. The child is independent until then:
// it is used by exactly one shard goroutine while the parent waits, which
// is what keeps the not-concurrency-safe Trace contract intact. Nil
// parent returns nil (tracing stays disabled shard-side).
func (t *Trace) NewChild() *Trace {
	if t == nil {
		return nil
	}
	return &Trace{start: t.start, max: t.max, maxSpans: t.maxSpans, cur: -1, lastThL: -1}
}

// Enabled reports whether the trace is collecting (false for nil).
func (t *Trace) Enabled() bool { return t != nil }

// Duration returns the time elapsed since the trace started.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Events returns the recorded events (shared slice; do not mutate).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Spans returns the recorded spans (shared slice; do not mutate).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Dropped reports how many events were discarded after the bound.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	return t.dropped
}

// ID returns the trace's TraceStore ID — nonzero only after the trace was
// retained by a TraceStore (see TraceStore.Add), 0 otherwise.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// TraceExport is the machine-readable form of a trace: the full span tree
// plus the typed event log, suitable for sharing or offline diffing. Span
// parent indexes refer into Spans; event Span fields likewise.
type TraceExport struct {
	ID      uint64  `json:"id,omitempty"`
	Spans   []Span  `json:"spans"`
	Events  []Event `json:"events"`
	Dropped int     `json:"dropped,omitempty"`
}

// Export copies the trace into its exportable form (zero value for nil).
func (t *Trace) Export() TraceExport {
	if t == nil {
		return TraceExport{}
	}
	return TraceExport{ID: t.id, Spans: t.spans, Events: t.events, Dropped: t.dropped}
}

// MarshalJSON serializes the trace as its Export form, so structures
// embedding a *Trace (QueryStats, HTTP responses) produce the span tree
// and event log rather than an empty object.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.Export())
}

// Start opens a span and returns its id (-1 on a nil trace). Spans nest:
// the new span's parent is the innermost span still open.
func (t *Trace) Start(name string) int32 {
	if t == nil {
		return -1
	}
	if t.maxSpans > 0 && len(t.spans) >= t.maxSpans {
		t.dropped++
		return -1
	}
	id := int32(len(t.spans))
	t.spans = append(t.spans, Span{Name: name, Parent: t.cur, Start: time.Since(t.start), End: -1})
	t.cur = id
	return id
}

// Interval appends an already-measured closed span with explicit times on
// t's clock, without touching the open-span nesting. It records intervals
// measured outside the Start/End discipline — e.g. the worker-pool queue
// wait that elapsed before a shard goroutine could even touch its trace.
func (t *Trace) Interval(name string, start, end time.Duration) int32 {
	if t == nil {
		return -1
	}
	if t.maxSpans > 0 && len(t.spans) >= t.maxSpans {
		t.dropped++
		return -1
	}
	if start < 0 {
		start = 0
	}
	if end < start {
		end = start
	}
	id := int32(len(t.spans))
	t.spans = append(t.spans, Span{Name: name, Parent: t.cur, Start: start, End: end})
	return id
}

// AdoptChild grafts a finished child trace (NewChild) into t as a subtree
// under a new wrapper span named name: the child's spans follow with
// parent indexes remapped (child roots hang off the wrapper) and its
// events keep their shared-clock timestamps. The caller stitches children
// in shard-ID order, which is what keeps Export deterministic regardless
// of shard completion order. Bounds apply: spans or events past t's caps
// are discarded and counted, and truncation never leaves a dangling
// parent (children are appended parents-first, so dropping a tail is
// safe); events whose span was truncated reattach to the wrapper.
func (t *Trace) AdoptChild(name string, child *Trace) {
	if t == nil || child == nil {
		return
	}
	t.dropped += child.dropped
	if t.maxSpans > 0 && len(t.spans) >= t.maxSpans {
		t.dropped += 1 + len(child.spans) + len(child.events)
		return
	}
	// Wrapper covers the child's recorded activity.
	var lo, hi time.Duration
	for i, sp := range child.spans {
		end := sp.End
		if end < 0 {
			end = sp.Start
		}
		if i == 0 || sp.Start < lo {
			lo = sp.Start
		}
		if end > hi {
			hi = end
		}
	}
	for _, e := range child.events {
		if e.At > hi {
			hi = e.At
		}
	}
	wrap := int32(len(t.spans))
	t.spans = append(t.spans, Span{Name: name, Parent: t.cur, Start: lo, End: hi})
	off := wrap + 1
	kept := 0
	for _, sp := range child.spans {
		if t.maxSpans > 0 && len(t.spans) >= t.maxSpans {
			t.dropped++
			continue
		}
		if sp.Parent < 0 {
			sp.Parent = wrap
		} else {
			sp.Parent += off
		}
		t.spans = append(t.spans, sp)
		kept++
	}
	for _, e := range child.events {
		if len(t.events) >= t.max {
			t.dropped++
			continue
		}
		if e.Span < 0 || int(e.Span) >= kept {
			e.Span = wrap
		} else {
			e.Span += off
		}
		t.events = append(t.events, e)
	}
}

// End closes the span (no-op on a nil trace or id < 0).
func (t *Trace) End(id int32) {
	if t == nil || id < 0 || int(id) >= len(t.spans) {
		return
	}
	t.spans[id].End = time.Since(t.start)
	if t.cur == id {
		t.cur = t.spans[id].Parent
	}
}

// add appends one event, enforcing the bound.
func (t *Trace) add(e Event) {
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	e.At = time.Since(t.start)
	e.Span = t.cur
	t.events = append(t.events, e)
}

// ListOpen records an inverted-list open (see EvListOpen).
func (t *Trace) ListOpen(term string, rows, maxLevel int, encodedBytes int64) {
	if t == nil {
		return
	}
	t.add(Event{Kind: EvListOpen, Str: term, N1: int64(rows), N2: int64(maxLevel), N3: encodedBytes})
}

// Decode records an actual decode of list bytes (see EvDecode).
func (t *Trace) Decode(term string, blocks int, compressedBytes, decodedBytes int64) {
	if t == nil {
		return
	}
	t.add(Event{Kind: EvDecode, Str: term, N1: int64(blocks), N2: compressedBytes, N3: decodedBytes})
}

// JoinOrder records the evaluation-order decision (see EvJoinOrder).
func (t *Trace) JoinOrder(order string, lists, driverRows int, totalRows int64) {
	if t == nil {
		return
	}
	t.add(Event{Kind: EvJoinOrder, Str: order, N1: int64(lists), N2: int64(driverRows), N3: totalRows})
}

// JoinStep records one executed per-level join (see EvJoinStep).
func (t *Trace) JoinStep(kind string, level, outer, inner int) {
	if t == nil {
		return
	}
	sel := 0.0
	if inner > 0 {
		sel = float64(outer) / float64(inner)
	}
	t.add(Event{Kind: EvJoinStep, Str: kind, N1: int64(level), N2: int64(outer), N3: int64(inner), F: sel})
}

// PlanSwitch records a dynamic plan decision with its triggering
// cardinalities (see EvPlanSwitch).
func (t *Trace) PlanSwitch(plan string, level, card1, card2 int) {
	if t == nil {
		return
	}
	t.add(Event{Kind: EvPlanSwitch, Str: plan, N1: int64(level), N2: int64(card1), N3: int64(card2)})
}

// Threshold records a top-K unseen-result threshold update, deduplicating
// consecutive identical (level, value) pairs (see EvThreshold).
func (t *Trace) Threshold(level int, value float64, buffered, emitted int) {
	if t == nil {
		return
	}
	if int64(level) == t.lastThL && value == t.lastThV {
		return
	}
	t.lastThL, t.lastThV = int64(level), value
	t.add(Event{Kind: EvThreshold, N1: int64(level), N2: int64(buffered), N3: int64(emitted), F: value})
}

// Emit records one emitted result (see EvEmit).
func (t *Trace) Emit(level, emitted int, score float64) {
	if t == nil {
		return
	}
	t.add(Event{Kind: EvEmit, N1: int64(level), N2: int64(emitted), F: score})
}

// Terminated records an early-termination point (see EvTerminated).
func (t *Trace) Terminated(level int, consumed, total int64) {
	if t == nil {
		return
	}
	t.add(Event{Kind: EvTerminated, N1: int64(level), N2: consumed, N3: total})
}

// CancelChecks records the cancellation-check accounting (see
// EvCancelChecks). Zero checks are not recorded.
func (t *Trace) CancelChecks(checks int64, stride int) {
	if t == nil || checks == 0 {
		return
	}
	t.add(Event{Kind: EvCancelChecks, N1: checks, N2: int64(stride)})
}

// Quarantine records a quarantine hit from the durable store (see
// EvQuarantine).
func (t *Trace) Quarantine(term, cause string) {
	if t == nil {
		return
	}
	t.add(Event{Kind: EvQuarantine, Str: term + ": " + cause})
}

// Note records engine-specific summary counters (see EvNote).
func (t *Trace) Note(text string, n1, n2, n3 int64) {
	if t == nil {
		return
	}
	t.add(Event{Kind: EvNote, Str: text, N1: n1, N2: n2, N3: n3})
}

// Signature returns a time-free, deterministic digest of the trace — one
// line per event with its kind and string payload — for golden-trace
// tests. Numeric payloads are included for kinds whose numbers are
// deterministic functions of the corpus (list opens, join steps).
func (t *Trace) Signature() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range t.events {
		b.WriteString(e.Kind.String())
		switch e.Kind {
		case EvListOpen:
			fmt.Fprintf(&b, "(%s rows=%d maxlev=%d)", e.Str, e.N1, e.N2)
		case EvDecode:
			fmt.Fprintf(&b, "(%s blocks=%d)", e.Str, e.N1)
		case EvJoinOrder:
			fmt.Fprintf(&b, "(%s)", e.Str)
		case EvJoinStep, EvPlanSwitch:
			fmt.Fprintf(&b, "(%s lev=%d %d:%d)", e.Str, e.N1, e.N2, e.N3)
		case EvThreshold:
			fmt.Fprintf(&b, "(lev=%d)", e.N1)
		case EvEmit:
			fmt.Fprintf(&b, "(lev=%d n=%d)", e.N1, e.N2)
		case EvTerminated:
			fmt.Fprintf(&b, "(lev=%d)", e.N1)
		case EvQuarantine, EvNote:
			fmt.Fprintf(&b, "(%s)", e.Str)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render writes a human-readable rendering of the trace: the span tree
// with events attached in order.
func (t *Trace) Render(w io.Writer) {
	if t == nil {
		fmt.Fprintln(w, "(tracing disabled)")
		return
	}
	depth := func(span int32) int {
		d := 0
		for s := span; s >= 0 && int(s) < len(t.spans); s = t.spans[s].Parent {
			d++
		}
		return d
	}
	fmt.Fprintf(w, "trace: %d span(s), %d event(s)", len(t.spans), len(t.events))
	if t.dropped > 0 {
		fmt.Fprintf(w, ", %d dropped", t.dropped)
	}
	fmt.Fprintln(w)
	// Interleave span starts and events chronologically.
	si, ei := 0, 0
	for si < len(t.spans) || ei < len(t.events) {
		if ei >= len(t.events) || (si < len(t.spans) && t.spans[si].Start <= t.events[ei].At) {
			sp := t.spans[si]
			dur := "open"
			if sp.End >= 0 {
				dur = (sp.End - sp.Start).Round(time.Microsecond).String()
			}
			fmt.Fprintf(w, "%s%+10s ▶ %s (%s)\n", strings.Repeat("  ", depth(sp.Parent)+1),
				sp.Start.Round(time.Microsecond), sp.Name, dur)
			si++
			continue
		}
		e := t.events[ei]
		fmt.Fprintf(w, "%s%+10s · %s\n", strings.Repeat("  ", depth(e.Span)+1),
			e.At.Round(time.Microsecond), eventText(e))
		ei++
	}
}

// eventText renders one event with its payload decoded per kind.
func eventText(e Event) string {
	switch e.Kind {
	case EvListOpen:
		return fmt.Sprintf("list-open %q rows=%d maxlev=%d bytes=%d", e.Str, e.N1, e.N2, e.N3)
	case EvDecode:
		return fmt.Sprintf("decode %q blocks=%d compressed=%dB decoded=%dB", e.Str, e.N1, e.N2, e.N3)
	case EvJoinOrder:
		return fmt.Sprintf("join-order %s lists=%d driver-rows=%d total-rows=%d", e.Str, e.N1, e.N2, e.N3)
	case EvJoinStep:
		return fmt.Sprintf("join-step %s level=%d outer=%d inner=%d sel=%.3f", e.Str, e.N1, e.N2, e.N3, e.F)
	case EvPlanSwitch:
		return fmt.Sprintf("plan-switch → %s level=%d cards=%d:%d", e.Str, e.N1, e.N2, e.N3)
	case EvThreshold:
		return fmt.Sprintf("threshold level=%d value=%.4f buffered=%d emitted=%d", e.N1, e.F, e.N2, e.N3)
	case EvEmit:
		return fmt.Sprintf("emit level=%d #%d score=%.4f", e.N1, e.N2, e.F)
	case EvTerminated:
		return fmt.Sprintf("terminated-early level=%d consumed=%d/%d", e.N1, e.N2, e.N3)
	case EvCancelChecks:
		return fmt.Sprintf("cancel-checks n=%d stride=%d", e.N1, e.N2)
	case EvQuarantine:
		return fmt.Sprintf("quarantine %s", e.Str)
	case EvNote:
		return fmt.Sprintf("note %s [%d %d %d]", e.Str, e.N1, e.N2, e.N3)
	}
	return fmt.Sprintf("event kind=%d", e.Kind)
}
