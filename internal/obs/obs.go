// Package obs is the observability substrate of the search engine: an
// allocation-conscious metrics core (atomic counters, bounded histograms,
// monotonic timers) plus a per-query Trace that records spans and typed
// events — inverted-list opens and decodes, join-order decisions, dynamic
// join-plan switches with their triggering cardinalities, top-K threshold
// updates and early-termination points, cancellation-check strides, and
// quarantine hits from the durable store.
//
// The package has no third-party dependencies and two cost contracts:
//
//   - Tracing disabled (nil *Trace): every record method is a single nil
//     check. Engines additionally guard any argument construction behind
//     their own `if tr != nil`, so a query that never asked for a trace
//     pays one pointer comparison per instrumentation site.
//   - Metrics: counters are single atomic adds; histograms are one atomic
//     add into a fixed bucket array. No locks on the query path (the
//     slow-query log takes a mutex, but only for queries that already
//     exceeded the latency threshold).
package obs

import (
	"sync/atomic"
	"time"
)

// Engine identifies one of the evaluation engines for metric attribution.
type Engine uint8

const (
	// EngineJoin is the paper's complete join-based evaluation (internal/core).
	EngineJoin Engine = iota
	// EngineTopK is the join-based top-K star join (internal/topk).
	EngineTopK
	// EngineStack is the stack-based baseline (internal/stack).
	EngineStack
	// EngineIxLookup is the index-based baseline (internal/ixlookup).
	EngineIxLookup
	// EngineRDIL is the RDIL top-K baseline (internal/rdil).
	EngineRDIL
	// EngineHybrid is the Section V-D hybrid selector (internal/topk).
	EngineHybrid
	// EngineNaive is the brute-force oracle (internal/naive).
	EngineNaive

	numEngines

	// EngineBackground tags traces belonging to no query engine — the
	// write path offers its compaction runs to the flight recorder under
	// this label. Deliberately outside the per-engine metric arrays: it
	// labels traces, never per-engine counters.
	EngineBackground Engine = 0xFF
)

var engineNames = [numEngines]string{
	EngineJoin:     "join",
	EngineTopK:     "topk",
	EngineStack:    "stack",
	EngineIxLookup: "ixlookup",
	EngineRDIL:     "rdil",
	EngineHybrid:   "hybrid",
	EngineNaive:    "naive",
}

// String names the engine for labels and rendering.
func (e Engine) String() string {
	if e == EngineBackground {
		return "background"
	}
	if int(e) < len(engineNames) {
		return engineNames[e]
	}
	return "unknown"
}

// Engines returns every engine identifier in label order.
func Engines() []Engine {
	out := make([]Engine, numEngines)
	for i := range out {
		out[i] = Engine(i)
	}
	return out
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// latencyBounds are the fixed upper bucket bounds of the duration
// histogram; the last implicit bucket is +Inf. Exponential-ish spacing
// covers sub-50µs in-memory joins through multi-second cold scans.
var latencyBounds = [...]time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
}

// Histogram is a bounded latency histogram with fixed exponential bucket
// bounds. Observations are lock-free; the zero value is ready to use.
// Each bucket additionally carries an exemplar slot: the ID of the last
// stored trace whose latency fell in that bucket, linking a histogram
// bucket to a concrete trace in the TraceStore (0 = no exemplar yet).
type Histogram struct {
	counts    [len(latencyBounds) + 1]atomic.Int64
	exemplars [len(latencyBounds) + 1]atomic.Int64 // trace IDs, 0 = none
	count     atomic.Int64
	sum       atomic.Int64 // nanoseconds
}

// bucketIndex returns the index of the bucket d falls into.
func bucketIndex(d time.Duration) int {
	i := 0
	for i < len(latencyBounds) && d > latencyBounds[i] {
		i++
	}
	return i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// SetExemplar links the bucket d falls into to a stored trace: snapshots
// then expose the trace ID next to the bucket count, so a latency bucket
// (say the one holding the p99) is one lookup away from a full trace of a
// query that landed there. Last write wins; nil-safe.
func (h *Histogram) SetExemplar(d time.Duration, traceID int64) {
	if h == nil || traceID == 0 {
		return
	}
	h.exemplars[bucketIndex(d)].Store(traceID)
}

// BucketCount is one histogram bucket in a snapshot; LE == 0 marks the
// final +Inf bucket. ExemplarTraceID, when nonzero, names a stored trace
// whose latency fell in this bucket.
type BucketCount struct {
	LE              time.Duration `json:"le_ns"`
	N               int64         `json:"n"`
	ExemplarTraceID int64         `json:"exemplar_trace_id,omitempty"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	SumNano int64         `json:"sum_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot copies the histogram counters. Buckets with zero observations
// are included so exposition formats stay fixed-shape.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		SumNano: h.sum.Load(),
		Buckets: make([]BucketCount, len(latencyBounds)+1),
	}
	for i := range latencyBounds {
		s.Buckets[i] = BucketCount{LE: latencyBounds[i], N: h.counts[i].Load(), ExemplarTraceID: h.exemplars[i].Load()}
	}
	last := len(latencyBounds)
	s.Buckets[last] = BucketCount{LE: 0, N: h.counts[last].Load(), ExemplarTraceID: h.exemplars[last].Load()}
	return s
}

// Mean returns the mean observed duration, or zero with no observations.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNano / s.Count)
}
