package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promFamily is one metric family as the checker reconstructs it.
type promFamily struct {
	help, typ string
	helpFirst bool // HELP appeared before TYPE
	samples   int
}

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// parseSampleLine splits "name{labels} value" into its parts, undoing the
// label-value escapes of the exposition format.
func parseSampleLine(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("no value separator")
	}
	s.name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++ // skip the escaped rune
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set")
		}
		for _, pair := range splitLabels(rest[1:end]) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				return s, fmt.Errorf("label %q has no =", pair)
			}
			name := pair[:eq]
			val := pair[eq+1:]
			if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
				return s, fmt.Errorf("label %q value not quoted", name)
			}
			unescaped := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n").Replace(val[1 : len(val)-1])
			s.labels[name] = unescaped
		}
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", strings.TrimSpace(rest), err)
	}
	s.value = v
	return s, nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(body string) []string {
	if body == "" {
		return nil
	}
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(body); i++ {
		switch {
		case inQuote && body[i] == '\\':
			i++
		case body[i] == '"':
			inQuote = !inQuote
		case !inQuote && body[i] == ',':
			out = append(out, body[start:i])
			start = i + 1
		}
	}
	return append(out, body[start:])
}

// baseFamily strips the histogram series suffixes off a sample name.
func baseFamily(name string, families map[string]*promFamily) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f, ok := families[base]; ok && f.typ == "histogram" {
				return base
			}
		}
	}
	return name
}

// checkExposition is a minimal exposition-format (0.0.4) checker: every
// sample belongs to a family with a HELP and a TYPE declared before it, a
// histogram's buckets carry ascending le values ending at +Inf with
// monotone nondecreasing cumulative counts agreeing with _count, and no
// unescaped line feeds survive in HELP or label values (guaranteed here
// by line-based parsing succeeding).
func checkExposition(t *testing.T, text string) {
	t.Helper()
	families := map[string]*promFamily{}
	var samples []promSample
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			name := parts[2]
			f := families[name]
			if f == nil {
				f = &promFamily{}
				families[name] = f
			}
			if f.samples > 0 {
				t.Fatalf("line %d: %s %s after samples of the family", ln+1, parts[1], name)
			}
			switch parts[1] {
			case "HELP":
				if f.help != "" {
					t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
				}
				if len(parts) < 4 || parts[3] == "" {
					t.Fatalf("line %d: empty HELP for %s", ln+1, name)
				}
				f.help = parts[3]
				f.helpFirst = f.typ == ""
			case "TYPE":
				if f.typ != "" {
					t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
				}
				if len(parts) < 4 {
					t.Fatalf("line %d: TYPE without a type", ln+1)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("line %d: unknown TYPE %q", ln+1, parts[3])
				}
				f.typ = parts[3]
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			t.Fatalf("line %d: %v (%q)", ln+1, err, line)
		}
		s.line = ln + 1
		samples = append(samples, s)
		base := baseFamily(s.name, families)
		f := families[base]
		if f == nil {
			t.Fatalf("line %d: sample %s has no HELP/TYPE", ln+1, s.name)
		}
		if f.help == "" || f.typ == "" {
			t.Fatalf("line %d: family %s missing HELP or TYPE before samples", ln+1, base)
		}
		if !f.helpFirst {
			t.Fatalf("family %s declares TYPE before HELP", base)
		}
		f.samples++
	}

	// Histogram series invariants, grouped by (family, labels minus le).
	type histSeries struct {
		les     []float64
		cums    []float64
		sum     *float64
		count   *float64
		anyLine int
	}
	hists := map[string]*histSeries{}
	keyOf := func(base string, labels map[string]string) string {
		names := make([]string, 0, len(labels))
		for n := range labels {
			if n != "le" {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		var b strings.Builder
		b.WriteString(base)
		for _, n := range names {
			fmt.Fprintf(&b, "|%s=%s", n, labels[n])
		}
		return b.String()
	}
	for _, s := range samples {
		base := baseFamily(s.name, families)
		if families[base].typ != "histogram" {
			continue
		}
		h := hists[keyOf(base, s.labels)]
		if h == nil {
			h = &histSeries{anyLine: s.line}
			hists[keyOf(base, s.labels)] = h
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			leStr, ok := s.labels["le"]
			if !ok {
				t.Fatalf("line %d: histogram bucket without le label", s.line)
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				var err error
				le, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					t.Fatalf("line %d: bad le %q", s.line, leStr)
				}
			}
			h.les = append(h.les, le)
			h.cums = append(h.cums, s.value)
		case strings.HasSuffix(s.name, "_sum"):
			v := s.value
			h.sum = &v
		case strings.HasSuffix(s.name, "_count"):
			v := s.value
			h.count = &v
		default:
			t.Fatalf("line %d: bare sample %s of histogram family", s.line, s.name)
		}
	}
	for key, h := range hists {
		if len(h.les) == 0 {
			t.Fatalf("histogram series %s has no buckets", key)
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				t.Fatalf("histogram series %s: le out of order at index %d (%g <= %g)", key, i, h.les[i], h.les[i-1])
			}
			if h.cums[i] < h.cums[i-1] {
				t.Fatalf("histogram series %s: cumulative bucket counts decrease at index %d", key, i)
			}
		}
		if !math.IsInf(h.les[len(h.les)-1], 1) {
			t.Fatalf("histogram series %s: last bucket is not +Inf", key)
		}
		if h.count == nil || h.sum == nil {
			t.Fatalf("histogram series %s missing _sum or _count", key)
		}
		if *h.count != h.cums[len(h.cums)-1] {
			t.Fatalf("histogram series %s: _count %g != +Inf bucket %g", key, *h.count, h.cums[len(h.cums)-1])
		}
	}
}

// TestWritePrometheusParses feeds a populated registry — every engine,
// store, writer (including the writer latency histogram), and gauge
// family — through the minimal exposition checker.
func TestWritePrometheusParses(t *testing.T) {
	m := NewMetrics()
	for i, e := range Engines() {
		m.RecordQuery(e, fmt.Sprintf("query %d", i), i, time.Duration(i+1)*time.Millisecond, i, nil, nil)
	}
	m.Store.RecordOpen()
	m.Store.RecordDecode(3, 100, 400)
	m.Store.RecordCacheHit()
	m.Store.RecordCacheMiss()
	m.Writer.RecordMutation(true, 4, true, 2*time.Millisecond, nil)
	m.Writer.RecordMutation(false, 1, false, 700*time.Microsecond, nil)
	m.SetGaugeSource(func() Gauges {
		return Gauges{SnapshotGen: 3, PinnedQueries: 1, CacheLists: 7, CacheBytes: 4096}
	})

	var sb strings.Builder
	m.Snapshot().WritePrometheus(&sb)
	out := sb.String()
	checkExposition(t, out)

	for _, want := range []string{
		"xkw_writer_duration_seconds_bucket{le=\"+Inf\"} 2",
		"xkw_writer_duration_seconds_count 2",
		"xkw_snapshot_generation 3",
		"xkw_pinned_queries 1",
		"xkw_store_cache_lists 7",
		"xkw_store_cache_bytes 4096",
		"xkw_store_cache_hit_ratio 0.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestExpositionEscaping: HELP text and label values with backslashes,
// quotes, and line feeds survive exposition without corrupting the
// line-oriented format.
func TestExpositionEscaping(t *testing.T) {
	if got := escapeHelp("a\\b\nc"); got != `a\\b\nc` {
		t.Fatalf("escapeHelp = %q", got)
	}
	if got := escapeLabel("say \"hi\"\\\n"); got != `say \"hi\"\\\n` {
		t.Fatalf("escapeLabel = %q", got)
	}
	// A hostile engine label (impossible today — engine names are a fixed
	// enum — but the exposition layer must not depend on that).
	s := Snapshot{Engines: []EngineSnapshot{{Engine: "bad\"name\nwith\\escapes"}}}
	var sb strings.Builder
	s.WritePrometheus(&sb)
	checkExposition(t, sb.String())
	sample, err := parseSampleLine(strings.Split(sb.String(), "\n")[2])
	if err != nil {
		t.Fatalf("first sample does not parse: %v", err)
	}
	if got := sample.labels["engine"]; got != "bad\"name\nwith\\escapes" {
		t.Fatalf("label round-trip = %q", got)
	}
}
