package obs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// addTrace offers one synthetic trace with a span and an event, so
// retention can be checked to carry the full payload.
func addTrace(ts *TraceStore, q string, elapsed time.Duration, err error) uint64 {
	tr := NewTrace()
	sp := tr.Start("test")
	tr.Note(q, 1, 2, 3)
	tr.End(sp)
	return ts.Add(EngineJoin, q, 10, elapsed, 1, err, tr)
}

// TestTraceStoreTailPolicy: errors, cancellations, and slow traces are
// always retained (until ring capacity), ordinary traces only through the
// reservoir, and the whole policy is a pure function of (latency, outcome,
// seed) — no wall clock involved.
func TestTraceStoreTailPolicy(t *testing.T) {
	ts := NewTraceStore(4, 2, 10*time.Millisecond, 1)

	slowID := addTrace(ts, "slow", 20*time.Millisecond, nil)
	errID := addTrace(ts, "error", time.Millisecond, errors.New("boom"))
	cancelID := addTrace(ts, "cancel", time.Millisecond, context.Canceled)
	for _, id := range []uint64{slowID, errID, cancelID} {
		if id == 0 {
			t.Fatalf("interesting trace was not retained (ids %d %d %d)", slowID, errID, cancelID)
		}
	}
	for id, kind := range map[uint64]string{slowID: KindSlow, errID: KindError, cancelID: KindCancelled} {
		st, ok := ts.Get(id)
		if !ok {
			t.Fatalf("trace %d not found", id)
		}
		if st.Kind != kind {
			t.Fatalf("trace %d kind = %s, want %s", id, st.Kind, kind)
		}
		if len(st.Spans) != 1 || len(st.Events) != 1 {
			t.Fatalf("trace %d lost its payload: %d spans %d events", id, len(st.Spans), len(st.Events))
		}
	}

	// Fast, error-free traffic flows through the reservoir: never more
	// than sampleCap retained, and the interesting ring is untouched.
	for i := 0; i < 100; i++ {
		addTrace(ts, fmt.Sprintf("fast %d", i), time.Microsecond, nil)
	}
	var kept, sampled int
	for _, s := range ts.Traces() {
		if s.Kind == KindSampled {
			sampled++
		} else {
			kept++
		}
	}
	if kept != 3 {
		t.Fatalf("interesting traces = %d, want 3", kept)
	}
	if sampled != 2 {
		t.Fatalf("sampled traces = %d, want cap 2", sampled)
	}

	// Interesting traces survive until ring capacity, then the oldest is
	// overwritten by newer interesting traces — never by sampled ones.
	id4 := addTrace(ts, "slow 4", 15*time.Millisecond, nil)
	if _, ok := ts.Get(slowID); !ok {
		t.Fatal("ring not full, oldest slow trace dropped early")
	}
	id5 := addTrace(ts, "slow 5", 15*time.Millisecond, nil)
	if _, ok := ts.Get(slowID); ok {
		t.Fatal("ring past capacity still holds the oldest trace")
	}
	for _, id := range []uint64{errID, cancelID, id4, id5} {
		if _, ok := ts.Get(id); !ok {
			t.Fatalf("trace %d evicted out of LRU order", id)
		}
	}
}

// TestTraceStoreDeterministic: two stores fed the identical offer
// sequence with the same seed retain the identical IDs — the reservoir
// never consults the clock.
func TestTraceStoreDeterministic(t *testing.T) {
	run := func() []uint64 {
		ts := NewTraceStore(8, 4, 10*time.Millisecond, 42)
		for i := 0; i < 200; i++ {
			elapsed := time.Duration(i%7) * time.Millisecond // all fast
			var err error
			if i%31 == 0 {
				err = errors.New("x")
			}
			addTrace(ts, fmt.Sprintf("q%d", i), elapsed, err)
		}
		var ids []uint64
		for _, s := range ts.Traces() {
			ids = append(ids, s.ID)
		}
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs retained %d vs %d traces", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retained sets diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestTraceStoreThresholdZeroKeepsAll: threshold 0 marks every completed
// trace slow, forcing full capture — the knob the end-to-end serving test
// relies on to find its query's trace.
func TestTraceStoreThresholdZeroKeepsAll(t *testing.T) {
	ts := NewTraceStore(64, 4, 0, 1)
	for i := 0; i < 32; i++ {
		if id := addTrace(ts, fmt.Sprintf("q%d", i), time.Duration(i), nil); id == 0 {
			t.Fatalf("trace %d not captured under threshold 0", i)
		}
	}
	if got := ts.Len(); got != 32 {
		t.Fatalf("retained %d traces, want all 32", got)
	}
	for _, s := range ts.Traces() {
		if s.Kind != KindSlow {
			t.Fatalf("threshold 0 classified %q as %s", s.Query, s.Kind)
		}
	}
}

// TestTraceStoreExemplarLinkage: a retained trace's ID lands in the
// latency bucket its elapsed time falls into, and the snapshot exposes it.
func TestTraceStoreExemplarLinkage(t *testing.T) {
	ts := NewTraceStore(8, 2, 0, 1)
	m := NewMetrics()
	elapsed := 3 * time.Millisecond
	id := addTrace(ts, "exemplar", elapsed, nil)
	if id == 0 {
		t.Fatal("trace not retained")
	}
	m.Engine(EngineJoin).Latency.Observe(elapsed)
	m.Engine(EngineJoin).Latency.SetExemplar(elapsed, int64(id))

	snap := m.Snapshot()
	var found bool
	for _, e := range snap.Engines {
		if e.Engine != EngineJoin.String() {
			continue
		}
		for _, b := range e.Latency.Buckets {
			if b.ExemplarTraceID == int64(id) {
				if b.N == 0 {
					t.Fatal("exemplar on an empty bucket")
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no bucket carries exemplar trace %d", id)
	}
}
