package obs

// Write-path counters of the incremental index: the write-ahead log and
// the background compactor. Recording is lock-free and nil-safe, matching
// the other counter families in this package.

// WALCounters accumulates write-ahead-log activity: appends (one per
// group commit), records and framed bytes written, fsyncs issued, log
// rotations at compaction commits, and what recovery replayed or
// quarantined at Load time.
type WALCounters struct {
	Appends          Counter // group commits (each one Write + one Sync)
	Records          Counter // mutation records appended
	Bytes            Counter // framed bytes appended
	Fsyncs           Counter // fsyncs issued by appends
	Rotations        Counter // log rotations (compaction generation flips)
	ReplayedRecords  Counter // records replayed by Load-time recovery
	QuarantinedBytes Counter // torn/corrupt tail bytes dropped by recovery
	Errors           Counter // append/rotation failures (mutation not acked)
}

// RecordAppend notes one group commit of records totalling bytes framed
// bytes. Nil-safe.
func (w *WALCounters) RecordAppend(records int, bytes int64) {
	if w == nil {
		return
	}
	w.Appends.Inc()
	w.Records.Add(int64(records))
	w.Bytes.Add(bytes)
	w.Fsyncs.Inc()
}

// RecordRotation notes one log rotation. Nil-safe.
func (w *WALCounters) RecordRotation() {
	if w == nil {
		return
	}
	w.Rotations.Inc()
}

// RecordReplay notes a Load-time recovery: how many acknowledged records
// were replayed and how many tail bytes were quarantined. Nil-safe.
func (w *WALCounters) RecordReplay(records int, quarantined int64) {
	if w == nil {
		return
	}
	w.ReplayedRecords.Add(int64(records))
	w.QuarantinedBytes.Add(quarantined)
}

// RecordError notes one failed append or rotation. Nil-safe.
func (w *WALCounters) RecordError() {
	if w == nil {
		return
	}
	w.Errors.Inc()
}

// WALSnapshot is a point-in-time copy of WALCounters.
type WALSnapshot struct {
	Appends          int64 `json:"appends"`
	Records          int64 `json:"records"`
	Bytes            int64 `json:"bytes"`
	Fsyncs           int64 `json:"fsyncs"`
	Rotations        int64 `json:"rotations"`
	ReplayedRecords  int64 `json:"replayed_records"`
	QuarantinedBytes int64 `json:"quarantined_bytes"`
	Errors           int64 `json:"errors"`
}

// Snapshot copies the WAL counters (zero snapshot for nil).
func (w *WALCounters) Snapshot() WALSnapshot {
	if w == nil {
		return WALSnapshot{}
	}
	return WALSnapshot{
		Appends:          w.Appends.Load(),
		Records:          w.Records.Load(),
		Bytes:            w.Bytes.Load(),
		Fsyncs:           w.Fsyncs.Load(),
		Rotations:        w.Rotations.Load(),
		ReplayedRecords:  w.ReplayedRecords.Load(),
		QuarantinedBytes: w.QuarantinedBytes.Load(),
		Errors:           w.Errors.Load(),
	}
}

// CompactionCounters accumulates background-compaction activity: completed
// runs, delta operations folded into new base generations, folds abandoned
// because a slow-path publish outran them (or the rebased suffix could not
// be re-applied fast), failures, and the cumulative compaction time.
type CompactionCounters struct {
	Runs      Counter // compactions that published a folded snapshot
	FoldedOps Counter // delta operations folded into base generations
	Abandoned Counter // folds discarded as stale (retried on the next trigger)
	Errors    Counter // compactions failed by an I/O or commit error
	Nanos     Counter // cumulative wall time spent compacting
}

// RecordRun notes one completed compaction that folded ops delta
// operations. Nil-safe.
func (c *CompactionCounters) RecordRun(ops int, nanos int64) {
	if c == nil {
		return
	}
	c.Runs.Inc()
	c.FoldedOps.Add(int64(ops))
	c.Nanos.Add(nanos)
}

// RecordAbandoned notes one fold discarded as stale. Nil-safe.
func (c *CompactionCounters) RecordAbandoned(nanos int64) {
	if c == nil {
		return
	}
	c.Abandoned.Inc()
	c.Nanos.Add(nanos)
}

// RecordError notes one failed compaction. Nil-safe.
func (c *CompactionCounters) RecordError(nanos int64) {
	if c == nil {
		return
	}
	c.Errors.Inc()
	c.Nanos.Add(nanos)
}

// CompactionSnapshot is a point-in-time copy of CompactionCounters.
type CompactionSnapshot struct {
	Runs      int64 `json:"runs"`
	FoldedOps int64 `json:"folded_ops"`
	Abandoned int64 `json:"abandoned"`
	Errors    int64 `json:"errors"`
	Nanos     int64 `json:"nanos"`
}

// Snapshot copies the compaction counters (zero snapshot for nil).
func (c *CompactionCounters) Snapshot() CompactionSnapshot {
	if c == nil {
		return CompactionSnapshot{}
	}
	return CompactionSnapshot{
		Runs:      c.Runs.Load(),
		FoldedOps: c.FoldedOps.Load(),
		Abandoned: c.Abandoned.Load(),
		Errors:    c.Errors.Load(),
		Nanos:     c.Nanos.Load(),
	}
}
