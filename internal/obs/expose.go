package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format (version 0.0.4). Metric names are prefixed with "xkw_".
func (s Snapshot) WritePrometheus(w io.Writer) {
	fmt.Fprintln(w, "# HELP xkw_queries_total Completed queries per engine.")
	fmt.Fprintln(w, "# TYPE xkw_queries_total counter")
	for _, e := range s.Engines {
		fmt.Fprintf(w, "xkw_queries_total{engine=%q} %d\n", e.Engine, e.Queries)
	}
	fmt.Fprintln(w, "# HELP xkw_query_errors_total Failed queries per engine (excluding cancellations).")
	fmt.Fprintln(w, "# TYPE xkw_query_errors_total counter")
	for _, e := range s.Engines {
		fmt.Fprintf(w, "xkw_query_errors_total{engine=%q} %d\n", e.Engine, e.Errors)
	}
	fmt.Fprintln(w, "# HELP xkw_query_cancelled_total Cancelled queries per engine.")
	fmt.Fprintln(w, "# TYPE xkw_query_cancelled_total counter")
	for _, e := range s.Engines {
		fmt.Fprintf(w, "xkw_query_cancelled_total{engine=%q} %d\n", e.Engine, e.Cancelled)
	}
	fmt.Fprintln(w, "# HELP xkw_query_results_total Results returned per engine.")
	fmt.Fprintln(w, "# TYPE xkw_query_results_total counter")
	for _, e := range s.Engines {
		fmt.Fprintf(w, "xkw_query_results_total{engine=%q} %d\n", e.Engine, e.Results)
	}
	fmt.Fprintln(w, "# HELP xkw_query_duration_seconds Query latency per engine.")
	fmt.Fprintln(w, "# TYPE xkw_query_duration_seconds histogram")
	for _, e := range s.Engines {
		cum := int64(0)
		for _, b := range e.Latency.Buckets {
			cum += b.N
			le := "+Inf"
			if b.LE != 0 {
				le = fmt.Sprintf("%g", b.LE.Seconds())
			}
			fmt.Fprintf(w, "xkw_query_duration_seconds_bucket{engine=%q,le=%q} %d\n", e.Engine, le, cum)
		}
		fmt.Fprintf(w, "xkw_query_duration_seconds_sum{engine=%q} %g\n",
			e.Engine, time.Duration(e.Latency.SumNano).Seconds())
		fmt.Fprintf(w, "xkw_query_duration_seconds_count{engine=%q} %d\n", e.Engine, e.Latency.Count)
	}
	st := s.Store
	storeCounters := []struct {
		name, help string
		v          int64
	}{
		{"xkw_store_list_opens_total", "Inverted-list opens.", st.ListOpens},
		{"xkw_store_list_decodes_total", "Inverted lists decoded from disk bytes.", st.ListDecodes},
		{"xkw_store_blocks_decoded_total", "Encoded blocks decoded.", st.BlocksDecoded},
		{"xkw_store_compressed_bytes_total", "On-disk bytes fed to decoders.", st.CompressedBytes},
		{"xkw_store_decoded_bytes_total", "In-memory bytes produced by decoders.", st.DecodedBytes},
		{"xkw_store_sparse_skips_total", "Sparse-index skips taken during seeks.", st.SparseSkips},
		{"xkw_store_quarantines_total", "Terms quarantined on read.", st.Quarantines},
		{"xkw_store_cache_hits_total", "Decoded-list cache hits.", st.CacheHits},
		{"xkw_store_cache_misses_total", "Decoded-list cache misses.", st.CacheMisses},
		{"xkw_store_cache_evictions_total", "Decoded lists evicted by the cache size bound.", st.CacheEvictions},
	}
	for _, c := range storeCounters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v)
	}
	wr := s.Writer
	writerCounters := []struct {
		name, help string
		v          int64
	}{
		{"xkw_writer_inserts_total", "Published element insertions.", wr.Inserts},
		{"xkw_writer_removes_total", "Published element removals.", wr.Removes},
		{"xkw_writer_errors_total", "Rejected mutations.", wr.Errors},
		{"xkw_writer_dirty_terms_total", "Inverted lists rebuilt by mutations.", wr.DirtyTerms},
		{"xkw_writer_renumbered_total", "Gap-exhausted subtree renumberings.", wr.Renumbered},
		{"xkw_writer_snapshots_total", "Index snapshots published.", wr.Snapshots},
	}
	for _, c := range writerCounters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v)
	}
}

// expvarSlots maps each published expvar name to the Metrics registry the
// published function currently reads. The indirection makes PublishExpvar
// safe to call any number of times, concurrently, and from any number of
// Metrics registries in one process: expvar.Publish — which panics on a
// duplicate name — runs exactly once per name, and later publications
// rebind the name to the newest registry instead of panicking or silently
// pointing at a stale one.
var (
	expvarMu    sync.Mutex
	expvarSlots = map[string]*atomic.Pointer[Metrics]{}
)

// PublishExpvar publishes the metrics under the given expvar name as a
// live JSON snapshot. It is idempotent and concurrency-safe: publishing a
// name again (from this or any other Metrics, e.g. a second index in the
// same process) rebinds the name to the latest registry — never the
// duplicate-name panic of a bare expvar.Publish.
func (m *Metrics) PublishExpvar(name string) {
	if m == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if slot, ok := expvarSlots[name]; ok {
		slot.Store(m)
		return
	}
	slot := &atomic.Pointer[Metrics]{}
	slot.Store(m)
	expvarSlots[name] = slot
	if expvar.Get(name) != nil {
		// The name was taken by someone outside this registry; leave it.
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return slot.Load().Snapshot() }))
}
