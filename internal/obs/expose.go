package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// escapeHelp escapes a HELP docstring per the text exposition format:
// backslash and line feed are the only escapes defined for HELP lines.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the text exposition format:
// backslash, double quote, and line feed.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// header writes the HELP/TYPE preamble of one metric family.
func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// writeHistogramSeries writes the bucket/sum/count series of one
// histogram. labels is a preformatted, already-escaped label list without
// braces ("" for none); le is appended to it per bucket.
func writeHistogramSeries(w io.Writer, name, labels string, h HistogramSnapshot) {
	brace := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	buckets := h.Buckets
	if len(buckets) == 0 {
		// A zero-valued snapshot still exposes the fixed bucket shape, so
		// scrape targets never see a bucketless histogram.
		buckets = make([]BucketCount, len(latencyBounds)+1)
		for i := range latencyBounds {
			buckets[i].LE = latencyBounds[i]
		}
	}
	cum := int64(0)
	for _, b := range buckets {
		cum += b.N
		le := "+Inf"
		if b.LE != 0 {
			le = fmt.Sprintf("%g", b.LE.Seconds())
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, brace(`le="`+le+`"`), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, brace(""), time.Duration(h.SumNano).Seconds())
	fmt.Fprintf(w, "%s_count%s %d\n", name, brace(""), h.Count)
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format (version 0.0.4). Metric names are prefixed with "xkw_"; HELP
// text and label values are escaped per the format. Exemplar trace IDs
// are not part of the 0.0.4 format — they are exposed in the JSON
// snapshot (see BucketCount.ExemplarTraceID) and the /traces endpoints.
func (s Snapshot) WritePrometheus(w io.Writer) {
	engineCounters := []struct {
		name, help string
		v          func(e EngineSnapshot) int64
	}{
		{"xkw_queries_total", "Completed queries per engine.", func(e EngineSnapshot) int64 { return e.Queries }},
		{"xkw_query_errors_total", "Failed queries per engine (excluding cancellations).", func(e EngineSnapshot) int64 { return e.Errors }},
		{"xkw_query_cancelled_total", "Cancelled queries per engine.", func(e EngineSnapshot) int64 { return e.Cancelled }},
		{"xkw_query_results_total", "Results returned per engine.", func(e EngineSnapshot) int64 { return e.Results }},
	}
	for _, c := range engineCounters {
		header(w, c.name, c.help, "counter")
		for _, e := range s.Engines {
			fmt.Fprintf(w, "%s{engine=\"%s\"} %d\n", c.name, escapeLabel(e.Engine), c.v(e))
		}
	}
	header(w, "xkw_query_duration_seconds", "Query latency per engine.", "histogram")
	for _, e := range s.Engines {
		writeHistogramSeries(w, "xkw_query_duration_seconds", `engine="`+escapeLabel(e.Engine)+`"`, e.Latency)
	}
	st := s.Store
	storeCounters := []struct {
		name, help string
		v          int64
	}{
		{"xkw_store_list_opens_total", "Inverted-list opens.", st.ListOpens},
		{"xkw_store_list_decodes_total", "Inverted lists decoded from disk bytes.", st.ListDecodes},
		{"xkw_store_blocks_decoded_total", "Encoded blocks decoded.", st.BlocksDecoded},
		{"xkw_store_compressed_bytes_total", "On-disk bytes fed to decoders.", st.CompressedBytes},
		{"xkw_store_decoded_bytes_total", "In-memory bytes produced by decoders.", st.DecodedBytes},
		{"xkw_store_sparse_skips_total", "Sparse-index skips taken during seeks.", st.SparseSkips},
		{"xkw_store_quarantines_total", "Terms quarantined on read.", st.Quarantines},
		{"xkw_store_cache_hits_total", "Decoded-list cache hits.", st.CacheHits},
		{"xkw_store_cache_misses_total", "Decoded-list cache misses.", st.CacheMisses},
		{"xkw_store_cache_evictions_total", "Decoded lists evicted by the cache size bound.", st.CacheEvictions},
	}
	for _, c := range storeCounters {
		header(w, c.name, c.help, "counter")
		fmt.Fprintf(w, "%s %d\n", c.name, c.v)
	}
	wr := s.Writer
	writerCounters := []struct {
		name, help string
		v          int64
	}{
		{"xkw_writer_inserts_total", "Published element insertions.", wr.Inserts},
		{"xkw_writer_removes_total", "Published element removals.", wr.Removes},
		{"xkw_writer_errors_total", "Rejected mutations.", wr.Errors},
		{"xkw_writer_dirty_terms_total", "Inverted lists rebuilt by mutations.", wr.DirtyTerms},
		{"xkw_writer_renumbered_total", "Gap-exhausted subtree renumberings.", wr.Renumbered},
		{"xkw_writer_snapshots_total", "Index snapshots published.", wr.Snapshots},
	}
	for _, c := range writerCounters {
		header(w, c.name, c.help, "counter")
		fmt.Fprintf(w, "%s %d\n", c.name, c.v)
	}
	header(w, "xkw_writer_duration_seconds", "End-to-end mutation latency including snapshot publication.", "histogram")
	writeHistogramSeries(w, "xkw_writer_duration_seconds", "", wr.Latency)
	wl := s.WAL
	walCounters := []struct {
		name, help string
		v          int64
	}{
		{"xkw_wal_appends_total", "Write-ahead-log group commits (one write + one fsync each).", wl.Appends},
		{"xkw_wal_records_total", "Mutation records appended to the write-ahead log.", wl.Records},
		{"xkw_wal_bytes_total", "Framed bytes appended to the write-ahead log.", wl.Bytes},
		{"xkw_wal_fsyncs_total", "Fsyncs issued by write-ahead-log appends.", wl.Fsyncs},
		{"xkw_wal_rotations_total", "Write-ahead-log rotations at compaction commits.", wl.Rotations},
		{"xkw_wal_replayed_records_total", "Records replayed by Load-time recovery.", wl.ReplayedRecords},
		{"xkw_wal_quarantined_bytes_total", "Torn or corrupt tail bytes dropped by recovery.", wl.QuarantinedBytes},
		{"xkw_wal_errors_total", "Write-ahead-log append or rotation failures.", wl.Errors},
	}
	for _, c := range walCounters {
		header(w, c.name, c.help, "counter")
		fmt.Fprintf(w, "%s %d\n", c.name, c.v)
	}
	cp := s.Compaction
	compactionCounters := []struct {
		name, help string
		v          int64
	}{
		{"xkw_compaction_runs_total", "Compactions that published a folded snapshot.", cp.Runs},
		{"xkw_compaction_folded_ops_total", "Delta operations folded into base generations.", cp.FoldedOps},
		{"xkw_compaction_abandoned_total", "Folds discarded as stale (retried on the next trigger).", cp.Abandoned},
		{"xkw_compaction_errors_total", "Compactions failed by an I/O or commit error.", cp.Errors},
	}
	for _, c := range compactionCounters {
		header(w, c.name, c.help, "counter")
		fmt.Fprintf(w, "%s %d\n", c.name, c.v)
	}
	header(w, "xkw_compaction_seconds_total", "Cumulative wall time spent compacting.", "counter")
	fmt.Fprintf(w, "xkw_compaction_seconds_total %g\n", time.Duration(cp.Nanos).Seconds())
	pl := s.Planner
	plannerCounters := []struct {
		name, help string
		v          int64
	}{
		{"xkw_planner_plans_total", "Query plans built (trivial or cost-based).", pl.Plans},
		{"xkw_planner_auto_plans_total", "Query plans built by the cost model (AlgoAuto).", pl.AutoPlans},
		{"xkw_plan_cache_hits_total", "Plan-cache hits.", pl.CacheHits},
		{"xkw_plan_cache_misses_total", "Plan-cache misses.", pl.CacheMisses},
		{"xkw_plan_cache_evictions_total", "Plans evicted by the plan-cache LRU bound.", pl.CacheEvictions},
		{"xkw_plan_cache_invalidations_total", "Plans dropped by mutation publishes.", pl.CacheInvalidations},
	}
	for _, c := range plannerCounters {
		header(w, c.name, c.help, "counter")
		fmt.Fprintf(w, "%s %d\n", c.name, c.v)
	}
	ql := s.QLog
	qlogCounters := []struct {
		name, help string
		v          int64
	}{
		{"xkw_qlog_records_total", "Query flight-recorder records accepted.", ql.Records},
		{"xkw_qlog_dropped_total", "Query flight-recorder records dropped on a full queue.", ql.Dropped},
		{"xkw_qlog_rotations_total", "Query flight-recorder sink rotations.", ql.Rotations},
		{"xkw_qlog_sink_errors_total", "Query flight-recorder sink write/rotate errors.", ql.SinkErrors},
	}
	for _, c := range qlogCounters {
		header(w, c.name, c.help, "counter")
		fmt.Fprintf(w, "%s %d\n", c.name, c.v)
	}
	sv := s.Serving
	servingCounters := []struct {
		name, help string
		v          int64
	}{
		{"xkw_admission_rejected_total", "Queries shed (503) by admission control.", sv.AdmissionRejected},
		{"xkw_admission_enqueued_total", "Queries that waited in the admission queue.", sv.AdmissionEnqueued},
		{"xkw_queries_partial_total", "Aborted queries settled as certified-partial answers.", sv.PartialQueries},
		{"xkw_budget_decoded_trips_total", "Queries aborted by the decoded-bytes budget.", sv.BudgetDecodedTrips},
		{"xkw_budget_candidate_trips_total", "Queries aborted by the candidate budget.", sv.BudgetCandidateTrips},
	}
	for _, c := range servingCounters {
		header(w, c.name, c.help, "counter")
		fmt.Fprintf(w, "%s %d\n", c.name, c.v)
	}
	sd := s.Shard
	shardCounters := []struct {
		name, help string
		v          int64
	}{
		{"xkw_shard_fanouts_total", "Queries scattered across every shard of a sharded index.", sd.FanOuts},
		{"xkw_shard_early_cancels_total", "Shard evaluations stopped early by threshold exchange.", sd.EarlyCancels},
		{"xkw_shard_straggler_total", "Scattered queries whose critical path waited on a straggler shard.", sd.Stragglers},
	}
	for _, c := range shardCounters {
		header(w, c.name, c.help, "counter")
		fmt.Fprintf(w, "%s %d\n", c.name, c.v)
	}
	header(w, "xkw_stage_seconds_total", "Critical-path query time attributed per stage and engine.", "counter")
	for _, r := range s.Attribution.Stages {
		fmt.Fprintf(w, "xkw_stage_seconds_total{stage=\"%s\",engine=\"%s\"} %g\n",
			escapeLabel(r.Stage), escapeLabel(r.Engine), time.Duration(r.Nanos).Seconds())
	}
	g := s.Gauges
	gauges := []struct {
		name, help string
		v          float64
	}{
		{"xkw_shards", "Shard count of a sharded index (0 when unsharded).", float64(g.Shards)},
		{"xkw_inflight", "Queries currently admitted and executing.", float64(sv.Inflight)},
		{"xkw_draining", "1 while the server is draining, else 0.", float64(sv.Draining)},
		{"xkw_snapshot_generation", "Generation of the currently published index snapshot.", float64(g.SnapshotGen)},
		{"xkw_pinned_queries", "In-flight queries currently holding a snapshot pin.", float64(g.PinnedQueries)},
		{"xkw_store_cache_lists", "Decoded lists currently held by the cache.", float64(g.CacheLists)},
		{"xkw_store_cache_bytes", "Decoded bytes currently held by the cache.", float64(g.CacheBytes)},
		{"xkw_store_cache_hit_ratio", "Decoded-list cache hit ratio since process start.", st.CacheHitRatio},
		{"xkw_plan_cache_entries", "Plans currently held by the plan cache.", float64(g.PlanCacheEntries)},
		{"xkw_plan_cache_hit_ratio", "Plan-cache hit ratio since process start.", pl.CacheHitRatio},
		{"xkw_delta_ops", "Mutations held by the published snapshot's delta segment.", float64(g.DeltaOps)},
		{"xkw_delta_terms", "Distinct terms overlaid by the published delta segment.", float64(g.DeltaTerms)},
		{"xkw_wal_records", "Records in the live write-ahead log awaiting the next compaction.", float64(g.WALRecords)},
	}
	for _, c := range gauges {
		header(w, c.name, c.help, "gauge")
		fmt.Fprintf(w, "%s %g\n", c.name, c.v)
	}
	if len(s.ShardGauges) > 0 {
		header(w, "xkw_shard_snapshot_generation", "Per-shard published snapshot generation.", "gauge")
		for _, sg := range s.ShardGauges {
			fmt.Fprintf(w, "xkw_shard_snapshot_generation{shard=\"%d\"} %d\n", sg.ID, sg.SnapshotGen)
		}
		header(w, "xkw_shard_pinned_queries", "Per-shard in-flight queries holding a snapshot pin.", "gauge")
		for _, sg := range s.ShardGauges {
			fmt.Fprintf(w, "xkw_shard_pinned_queries{shard=\"%d\"} %d\n", sg.ID, sg.PinnedQueries)
		}
		header(w, "xkw_shard_plan_cache_entries", "Per-shard plan-cache occupancy.", "gauge")
		for _, sg := range s.ShardGauges {
			fmt.Fprintf(w, "xkw_shard_plan_cache_entries{shard=\"%d\"} %d\n", sg.ID, sg.PlanCacheEntries)
		}
	}
	p := s.Process
	header(w, "xkw_build_info", "Build identity; value is always 1, the labels carry the information.", "gauge")
	fmt.Fprintf(w, "xkw_build_info{version=\"%s\",goversion=\"%s\"} 1\n", escapeLabel(p.Version), escapeLabel(p.GoVersion))
	header(w, "xkw_goroutines", "Live goroutines at scrape time.", "gauge")
	fmt.Fprintf(w, "xkw_goroutines %d\n", p.Goroutines)
	header(w, "xkw_heap_bytes", "Live heap bytes (runtime HeapAlloc) at scrape time.", "gauge")
	fmt.Fprintf(w, "xkw_heap_bytes %d\n", p.HeapBytes)
}

// expvarSlots maps each published expvar name to the Metrics registry the
// published function currently reads. The indirection makes PublishExpvar
// safe to call any number of times, concurrently, and from any number of
// Metrics registries in one process: expvar.Publish — which panics on a
// duplicate name — runs exactly once per name, and later publications
// rebind the name to the newest registry instead of panicking or silently
// pointing at a stale one.
var (
	expvarMu    sync.Mutex
	expvarSlots = map[string]*atomic.Pointer[Metrics]{}
)

// PublishExpvar publishes the metrics under the given expvar name as a
// live JSON snapshot. It is idempotent and concurrency-safe: publishing a
// name again (from this or any other Metrics, e.g. a second index in the
// same process) rebinds the name to the latest registry — never the
// duplicate-name panic of a bare expvar.Publish.
func (m *Metrics) PublishExpvar(name string) {
	if m == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if slot, ok := expvarSlots[name]; ok {
		slot.Store(m)
		return
	}
	slot := &atomic.Pointer[Metrics]{}
	slot.Store(m)
	expvarSlots[name] = slot
	if expvar.Get(name) != nil {
		// The name was taken by someone outside this registry; leave it.
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return slot.Load().Snapshot() }))
}
