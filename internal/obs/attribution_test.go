package obs

import (
	"strings"
	"testing"
	"time"
)

// TestBreakdownNested: the critical path attributes gaps to the
// innermost enclosing stage, nested stage spans never double-count, and
// the per-stage nanos plus the remainder reconstruct the wall time
// exactly.
func TestBreakdownNested(t *testing.T) {
	spans := []Span{
		{Name: "topk/auto", Parent: -1, Start: 0, End: -1}, // still open: clamps to wall
		{Name: "stage/plan", Parent: 0, Start: 5, End: 10},
		{Name: "stage/open", Parent: 0, Start: 10, End: 40},
		{Name: "stage/decode", Parent: 2, Start: 15, End: 35},
		{Name: "stage/join", Parent: 0, Start: 40, End: 90},
	}
	bd := BreakdownOf(spans, 100)
	want := map[string]int64{"plan": 5, "open": 10, "decode": 20, "join": 50}
	got := map[string]int64{}
	var sum int64
	for _, s := range bd.Stages {
		got[s.Stage] = s.Nanos
		sum += s.Nanos
		if wantShare := float64(s.Nanos) / 100; s.Share != wantShare {
			t.Errorf("stage %s share %v, want %v", s.Stage, s.Share, wantShare)
		}
	}
	for st, ns := range want {
		if got[st] != ns {
			t.Errorf("stage %s = %dns, want %d (all: %v)", st, got[st], ns, got)
		}
	}
	if bd.OtherNs != 15 {
		t.Errorf("OtherNs = %d, want 15", bd.OtherNs)
	}
	if sum+bd.OtherNs != bd.WallNs {
		t.Errorf("stages (%d) + other (%d) != wall (%d)", sum, bd.OtherNs, bd.WallNs)
	}
	if bd.Dominant != StageJoin {
		t.Errorf("Dominant = %q, want %q", bd.Dominant, StageJoin)
	}
	if bd.Straggler != -1 || len(bd.Shards) != 0 {
		t.Errorf("unsharded trace reports shards: straggler=%d shards=%v", bd.Straggler, bd.Shards)
	}
}

// TestBreakdownStraggler: concurrent shard wrappers form one scatter —
// only the straggler is descended, the per-shard rows split queue wait
// from run time, and the exact-sum invariant holds with overlapping
// siblings present.
func TestBreakdownStraggler(t *testing.T) {
	spans := []Span{
		{Name: "topk/auto/sharded", Parent: -1, Start: 0, End: 100},
		{Name: "shard/0", Parent: 0, Start: 10, End: 50},
		{Name: "stage/admission", Parent: 1, Start: 10, End: 15},
		{Name: "stage/join", Parent: 1, Start: 15, End: 50},
		{Name: "shard/1", Parent: 0, Start: 10, End: 80},
		{Name: "stage/admission", Parent: 4, Start: 10, End: 30},
		{Name: "stage/join", Parent: 4, Start: 30, End: 80},
		{Name: "stage/merge", Parent: 0, Start: 80, End: 95},
	}
	bd := BreakdownOf(spans, 100)
	got := map[string]int64{}
	var sum int64
	for _, s := range bd.Stages {
		got[s.Stage] = s.Nanos
		sum += s.Nanos
	}
	// Critical path: 10ns to the scatter (other), then the straggler
	// shard/1 (20 admission + 50 join; shard/0 runs off-path), then merge
	// 15, then 5 trailing (other).
	want := map[string]int64{"admission": 20, "join": 50, "merge": 15}
	for st, ns := range want {
		if got[st] != ns {
			t.Errorf("stage %s = %dns, want %d (all: %v)", st, got[st], ns, got)
		}
	}
	if bd.OtherNs != 15 {
		t.Errorf("OtherNs = %d, want 15", bd.OtherNs)
	}
	if sum+bd.OtherNs != bd.WallNs {
		t.Errorf("stages (%d) + other (%d) != wall (%d)", sum, bd.OtherNs, bd.WallNs)
	}
	if bd.Straggler != 1 {
		t.Errorf("Straggler = %d, want 1", bd.Straggler)
	}
	wantShards := []ShardTiming{{Shard: 0, QueueNs: 5, RunNs: 35}, {Shard: 1, QueueNs: 20, RunNs: 50}}
	if len(bd.Shards) != len(wantShards) {
		t.Fatalf("Shards = %v, want %v", bd.Shards, wantShards)
	}
	for i, w := range wantShards {
		if bd.Shards[i] != w {
			t.Errorf("Shards[%d] = %v, want %v", i, bd.Shards[i], w)
		}
	}
	if bd.Dominant != StageJoin {
		t.Errorf("Dominant = %q, want %q", bd.Dominant, StageJoin)
	}
}

// TestBreakdownZeroWall: a zero-duration trace reduces to the empty
// breakdown instead of dividing by zero.
func TestBreakdownZeroWall(t *testing.T) {
	bd := BreakdownOf([]Span{{Name: "stage/join", Parent: -1, Start: 0, End: 0}}, 0)
	if len(bd.Stages) != 0 || bd.WallNs != 0 || bd.OtherNs != 0 {
		t.Errorf("zero-wall breakdown not empty: %+v", bd)
	}
}

// TestStageSignature: the signature projects out durations and shard
// fan-out — a 2-shard and a 4-shard stitching of the same per-shard
// stage set signature identically, and coordinator-side stages stay
// separate from shard-side ones.
func TestStageSignature(t *testing.T) {
	mk := func(shards int) []Span {
		spans := []Span{{Name: "topk/auto/sharded", Parent: -1, Start: 0, End: 100}}
		for s := 0; s < shards; s++ {
			w := int32(len(spans))
			spans = append(spans,
				Span{Name: ShardSpanName(s), Parent: 0, Start: 10, End: 80},
				Span{Name: "stage/admission", Parent: w, Start: 10, End: 15},
				Span{Name: "stage/join", Parent: w, Start: 15, End: 80},
			)
		}
		spans = append(spans, Span{Name: "stage/merge", Parent: 0, Start: 80, End: 95})
		return spans
	}
	sig2, sig4 := StageSignature(mk(2)), StageSignature(mk(4))
	if sig2 != sig4 {
		t.Errorf("signature varies with shard count:\n%s\nvs\n%s", sig2, sig4)
	}
	if want := "stages: merge\nshard-stages: admission,join\n"; sig2 != want {
		t.Errorf("signature = %q, want %q", sig2, want)
	}

	flat := StageSignature([]Span{
		{Name: "topk/auto", Parent: -1, Start: 0, End: 100},
		{Name: "stage/join", Parent: 0, Start: 0, End: 90},
		{Name: "stage/plan", Parent: 0, Start: 0, End: 5},
	})
	if want := "stages: plan,join\n"; flat != want {
		t.Errorf("unsharded signature = %q, want %q", flat, want)
	}
	if strings.Contains(flat, "shard-stages") {
		t.Errorf("unsharded signature mentions shard stages: %q", flat)
	}
}

// TestSpanShard rejects names that are not stitched shard wrappers.
func TestSpanShard(t *testing.T) {
	if id, ok := SpanShard("shard/3"); !ok || id != 3 {
		t.Errorf("SpanShard(shard/3) = %d,%v", id, ok)
	}
	for _, bad := range []string{"shard/-1", "shard/x", "stage/join", "shards/1"} {
		if _, ok := SpanShard(bad); ok {
			t.Errorf("SpanShard(%q) accepted", bad)
		}
	}
}

// TestAdoptChildRemap: grafting a child trace remaps span parents under
// the wrapper and reattaches the child's events.
func TestAdoptChildRemap(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("root")
	child := tr.NewChild()
	sp := child.Stage(StageJoin)
	child.Note("shard work", 1, 2, 3)
	child.End(sp)
	child.Note("after close", 0, 0, 0) // cur == -1: reattaches to wrapper
	tr.AdoptChild(ShardSpanName(0), child)
	tr.End(root)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	if spans[1].Name != "shard/0" || spans[1].Parent != 0 {
		t.Errorf("wrapper = %+v, want shard/0 under root", spans[1])
	}
	if spans[2].Name != "stage/join" || spans[2].Parent != 1 {
		t.Errorf("child span = %+v, want stage/join under wrapper", spans[2])
	}
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(events), events)
	}
	if events[0].Span != 2 {
		t.Errorf("in-span event remapped to %d, want 2", events[0].Span)
	}
	if events[1].Span != 1 {
		t.Errorf("root-level child event remapped to %d, want wrapper 1", events[1].Span)
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", tr.Dropped())
	}
}

// TestSpanCap: Start past the cap drops and counts; AdoptChild
// tail-truncates the grafted subtree without dangling parents and
// counts every discarded span.
func TestSpanCap(t *testing.T) {
	tr := NewTrace()
	tr.SetMaxSpans(2)
	tr.Start("a")
	tr.Start("b")
	if id := tr.Start("c"); id != -1 {
		t.Errorf("Start past cap returned %d, want -1", id)
	}
	if tr.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", tr.Dropped())
	}

	// Truncating adoption: room for the wrapper and one child span only.
	tr2 := NewTrace()
	tr2.SetMaxSpans(3)
	tr2.Start("root")
	child := tr2.NewChild()
	s1 := child.Stage(StageOpen)
	child.End(s1)
	s2 := child.Stage(StageJoin)
	child.Note("in join", 0, 0, 0)
	child.End(s2)
	tr2.AdoptChild(ShardSpanName(0), child)
	spans := tr2.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3 (cap): %+v", len(spans), spans)
	}
	if spans[2].Name != "stage/open" || spans[2].Parent != 1 {
		t.Errorf("kept child span = %+v, want stage/open under wrapper", spans[2])
	}
	if tr2.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1 (the truncated stage/join)", tr2.Dropped())
	}
	// The event's span (stage/join) was truncated; it reattaches to the
	// wrapper rather than pointing past the span slice.
	events := tr2.Events()
	if len(events) != 1 || events[0].Span != 1 {
		t.Fatalf("events = %+v, want one event on wrapper span 1", events)
	}

	// Adoption with no room at all: wrapper, spans, and events all count.
	tr3 := NewTrace()
	tr3.SetMaxSpans(1)
	tr3.Start("root")
	tr3.AdoptChild(ShardSpanName(0), child)
	if len(tr3.Spans()) != 1 {
		t.Errorf("full-trace adoption appended spans: %+v", tr3.Spans())
	}
	if want := 1 + len(child.Spans()) + len(child.Events()); tr3.Dropped() != want {
		t.Errorf("Dropped = %d, want %d", tr3.Dropped(), want)
	}
}

// TestInterval: explicit-time spans clamp negatives, never reorder
// start/end, and leave the open-span nesting untouched.
func TestInterval(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("root")
	id := tr.Interval("stage/admission", -5*time.Nanosecond, -10*time.Nanosecond)
	if id != 1 {
		t.Fatalf("Interval id = %d, want 1", id)
	}
	sp := tr.Spans()[id]
	if sp.Start != 0 || sp.End != 0 {
		t.Errorf("clamped interval = [%v,%v], want [0,0]", sp.Start, sp.End)
	}
	if sp.Parent != root {
		t.Errorf("interval parent = %d, want %d", sp.Parent, root)
	}
	// Nesting untouched: the next Start still nests under root.
	nxt := tr.Start("next")
	if tr.Spans()[nxt].Parent != root {
		t.Errorf("Interval moved the open-span cursor")
	}
}
