package obs

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// EngineMetrics accumulates per-engine query counters. All fields are
// atomics; recording is lock-free.
type EngineMetrics struct {
	Queries   Counter
	Errors    Counter
	Cancelled Counter
	Results   Counter
	Latency   Histogram
}

// StoreCounters accumulates column-store read-path counters. A *StoreCounters
// is installed on a colstore.Store with SetObs; a nil receiver disables
// recording with a single pointer check.
type StoreCounters struct {
	ListOpens       Counter // inverted-list opens (lazy or cached)
	ListDecodes     Counter // lists actually decoded from disk bytes
	BlocksDecoded   Counter // runs/length-groups/delta blocks decoded
	CompressedBytes Counter // on-disk bytes fed to decoders
	DecodedBytes    Counter // in-memory bytes produced by decoders
	SparseSkips     Counter // sparse-index skips taken during seeks
	Quarantines     Counter // terms quarantined on read
	CacheHits       Counter // decoded-list cache hits
	CacheMisses     Counter // decoded-list cache misses (disk decode follows)
	CacheEvictions  Counter // decoded lists evicted by the size bound
}

// RecordCacheHit notes one decoded-list cache hit. Nil-safe.
func (s *StoreCounters) RecordCacheHit() {
	if s == nil {
		return
	}
	s.CacheHits.Inc()
}

// RecordCacheMiss notes one decoded-list cache miss. Nil-safe.
func (s *StoreCounters) RecordCacheMiss() {
	if s == nil {
		return
	}
	s.CacheMisses.Inc()
}

// RecordCacheEvictions notes n decoded lists evicted by the cache's size
// bound. Nil-safe.
func (s *StoreCounters) RecordCacheEvictions(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.CacheEvictions.Add(n)
}

// RecordOpen notes one list open. Nil-safe.
func (s *StoreCounters) RecordOpen() {
	if s == nil {
		return
	}
	s.ListOpens.Inc()
}

// RecordDecode notes one completed list decode. Nil-safe.
func (s *StoreCounters) RecordDecode(blocks int, compressed, decoded int64) {
	if s == nil {
		return
	}
	s.ListDecodes.Inc()
	s.BlocksDecoded.Add(int64(blocks))
	s.CompressedBytes.Add(compressed)
	s.DecodedBytes.Add(decoded)
}

// RecordSparseSkips notes sparse-index skips taken during a seek. Nil-safe.
func (s *StoreCounters) RecordSparseSkips(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.SparseSkips.Add(n)
}

// RecordQuarantine notes one quarantined term. Nil-safe.
func (s *StoreCounters) RecordQuarantine() {
	if s == nil {
		return
	}
	s.Quarantines.Inc()
}

// StoreSnapshot is a point-in-time copy of StoreCounters. CacheHitRatio
// is derived at snapshot time — hits / (hits + misses), 0 with no
// lookups — so dashboards and /readyz read it directly instead of each
// re-deriving it from the raw counters.
type StoreSnapshot struct {
	ListOpens       int64   `json:"list_opens"`
	ListDecodes     int64   `json:"list_decodes"`
	BlocksDecoded   int64   `json:"blocks_decoded"`
	CompressedBytes int64   `json:"compressed_bytes"`
	DecodedBytes    int64   `json:"decoded_bytes"`
	SparseSkips     int64   `json:"sparse_skips"`
	Quarantines     int64   `json:"quarantines"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	CacheEvictions  int64   `json:"cache_evictions"`
	CacheHitRatio   float64 `json:"cache_hit_ratio"`
}

// Snapshot copies the store counters (zero snapshot for nil).
func (s *StoreCounters) Snapshot() StoreSnapshot {
	if s == nil {
		return StoreSnapshot{}
	}
	out := StoreSnapshot{
		ListOpens:       s.ListOpens.Load(),
		ListDecodes:     s.ListDecodes.Load(),
		BlocksDecoded:   s.BlocksDecoded.Load(),
		CompressedBytes: s.CompressedBytes.Load(),
		DecodedBytes:    s.DecodedBytes.Load(),
		SparseSkips:     s.SparseSkips.Load(),
		Quarantines:     s.Quarantines.Load(),
		CacheHits:       s.CacheHits.Load(),
		CacheMisses:     s.CacheMisses.Load(),
		CacheEvictions:  s.CacheEvictions.Load(),
	}
	if lookups := out.CacheHits + out.CacheMisses; lookups > 0 {
		out.CacheHitRatio = float64(out.CacheHits) / float64(lookups)
	}
	return out
}

// ServingCounters accumulates the serving plane's overload-protection
// counters: admission-control decisions, the in-flight gauge, and the
// deadline/budget degradation outcomes. The facade increments the partial
// and budget counters; the HTTP layer increments the admission ones.
type ServingCounters struct {
	AdmissionRejected    Counter // queries shed (503) by admission control
	AdmissionEnqueued    Counter // queries that waited in the admission queue
	InflightGauge        Counter // currently admitted queries (up/down)
	Draining             Counter // 1 while the server is draining, else 0
	PartialQueries       Counter // aborted queries settled as certified-partial answers
	BudgetDecodedTrips   Counter // queries aborted by the decoded-bytes budget
	BudgetCandidateTrips Counter // queries aborted by the candidate budget
}

// ServingSnapshot is a point-in-time copy of ServingCounters.
type ServingSnapshot struct {
	AdmissionRejected    int64 `json:"admission_rejected"`
	AdmissionEnqueued    int64 `json:"admission_enqueued"`
	Inflight             int64 `json:"inflight"`
	Draining             int64 `json:"draining"`
	PartialQueries       int64 `json:"partial_queries"`
	BudgetDecodedTrips   int64 `json:"budget_decoded_trips"`
	BudgetCandidateTrips int64 `json:"budget_candidate_trips"`
}

// Snapshot copies the serving counters (zero snapshot for nil).
func (s *ServingCounters) Snapshot() ServingSnapshot {
	if s == nil {
		return ServingSnapshot{}
	}
	return ServingSnapshot{
		AdmissionRejected:    s.AdmissionRejected.Load(),
		AdmissionEnqueued:    s.AdmissionEnqueued.Load(),
		Inflight:             s.InflightGauge.Load(),
		Draining:             s.Draining.Load(),
		PartialQueries:       s.PartialQueries.Load(),
		BudgetDecodedTrips:   s.BudgetDecodedTrips.Load(),
		BudgetCandidateTrips: s.BudgetCandidateTrips.Load(),
	}
}

// QLogCounters accumulates query-flight-recorder counters. A
// *QLogCounters is installed on a qlog.Recorder with SetObs; a nil
// receiver disables recording with a single pointer check.
type QLogCounters struct {
	Records    Counter // records accepted into the recorder queue
	Dropped    Counter // records dropped because the queue was full
	Rotations  Counter // sink file rotations
	SinkErrors Counter // sink write/rotate errors (records stayed in the ring)
}

// RecordAccepted notes one record accepted by the recorder. Nil-safe.
func (q *QLogCounters) RecordAccepted() {
	if q == nil {
		return
	}
	q.Records.Inc()
}

// RecordDropped notes one record dropped on a full queue. Nil-safe.
func (q *QLogCounters) RecordDropped() {
	if q == nil {
		return
	}
	q.Dropped.Inc()
}

// RecordRotation notes one sink rotation. Nil-safe.
func (q *QLogCounters) RecordRotation() {
	if q == nil {
		return
	}
	q.Rotations.Inc()
}

// RecordSinkError notes one sink write/rotate error. Nil-safe.
func (q *QLogCounters) RecordSinkError() {
	if q == nil {
		return
	}
	q.SinkErrors.Inc()
}

// QLogSnapshot is a point-in-time copy of QLogCounters.
type QLogSnapshot struct {
	Records    int64 `json:"records"`
	Dropped    int64 `json:"dropped"`
	Rotations  int64 `json:"rotations"`
	SinkErrors int64 `json:"sink_errors"`
}

// Snapshot copies the recorder counters (zero snapshot for nil).
func (q *QLogCounters) Snapshot() QLogSnapshot {
	if q == nil {
		return QLogSnapshot{}
	}
	return QLogSnapshot{
		Records:    q.Records.Load(),
		Dropped:    q.Dropped.Load(),
		Rotations:  q.Rotations.Load(),
		SinkErrors: q.SinkErrors.Load(),
	}
}

// PlannerCounters accumulates planner and plan-cache counters. A
// *PlannerCounters is installed on an exec.PlanCache with SetObs; a nil
// receiver disables recording with a single pointer check.
type PlannerCounters struct {
	Plans              Counter // plans built (trivial or cost-based)
	AutoPlans          Counter // plans built by the cost model (AlgoAuto)
	CacheHits          Counter // plan-cache hits
	CacheMisses        Counter // plan-cache misses (a plan build follows)
	CacheEvictions     Counter // plans evicted by the LRU bound
	CacheInvalidations Counter // plans dropped by mutation publishes
}

// RecordPlan notes one plan build; auto marks a cost-based choice.
// Nil-safe.
func (p *PlannerCounters) RecordPlan(auto bool) {
	if p == nil {
		return
	}
	p.Plans.Inc()
	if auto {
		p.AutoPlans.Inc()
	}
}

// RecordCacheHit notes one plan-cache hit. Nil-safe.
func (p *PlannerCounters) RecordCacheHit() {
	if p == nil {
		return
	}
	p.CacheHits.Inc()
}

// RecordCacheMiss notes one plan-cache miss. Nil-safe.
func (p *PlannerCounters) RecordCacheMiss() {
	if p == nil {
		return
	}
	p.CacheMisses.Inc()
}

// RecordCacheEviction notes one plan evicted by the LRU bound. Nil-safe.
func (p *PlannerCounters) RecordCacheEviction() {
	if p == nil {
		return
	}
	p.CacheEvictions.Inc()
}

// RecordCacheInvalidations notes n plans dropped because a mutation
// published a new snapshot generation. Nil-safe.
func (p *PlannerCounters) RecordCacheInvalidations(n int) {
	if p == nil || n == 0 {
		return
	}
	p.CacheInvalidations.Add(int64(n))
}

// PlannerSnapshot is a point-in-time copy of PlannerCounters, with the
// cache hit ratio derived at snapshot time (0 with no lookups).
type PlannerSnapshot struct {
	Plans              int64   `json:"plans"`
	AutoPlans          int64   `json:"auto_plans"`
	CacheHits          int64   `json:"cache_hits"`
	CacheMisses        int64   `json:"cache_misses"`
	CacheEvictions     int64   `json:"cache_evictions"`
	CacheInvalidations int64   `json:"cache_invalidations"`
	CacheHitRatio      float64 `json:"cache_hit_ratio"`
}

// Snapshot copies the planner counters (zero snapshot for nil).
func (p *PlannerCounters) Snapshot() PlannerSnapshot {
	if p == nil {
		return PlannerSnapshot{}
	}
	out := PlannerSnapshot{
		Plans:              p.Plans.Load(),
		AutoPlans:          p.AutoPlans.Load(),
		CacheHits:          p.CacheHits.Load(),
		CacheMisses:        p.CacheMisses.Load(),
		CacheEvictions:     p.CacheEvictions.Load(),
		CacheInvalidations: p.CacheInvalidations.Load(),
	}
	if lookups := out.CacheHits + out.CacheMisses; lookups > 0 {
		out.CacheHitRatio = float64(out.CacheHits) / float64(lookups)
	}
	return out
}

// Gauges are point-in-time values (not cumulative counters) sampled from
// the serving index when a snapshot is taken: the snapshot/writer state
// and the decoded-list cache occupancy. They come from a gauge source the
// index installs with SetGaugeSource, because the underlying state (the
// published snapshot pointer, the cache) lives outside this package.
type Gauges struct {
	// SnapshotGen is the generation of the currently published snapshot
	// (1 for a freshly built index, +1 per published mutation).
	SnapshotGen int64 `json:"snapshot_gen"`
	// PinnedQueries is the number of in-flight queries currently holding
	// a snapshot pin.
	PinnedQueries int64 `json:"pinned_queries"`
	// CacheLists and CacheBytes are the decoded-list cache occupancy.
	CacheLists int64 `json:"cache_lists"`
	CacheBytes int64 `json:"cache_bytes"`
	// PlanCacheEntries is the plan cache's current occupancy.
	PlanCacheEntries int64 `json:"plan_cache_entries"`
	// DeltaOps and DeltaTerms are the published snapshot's in-memory delta
	// segment size: appended operations not yet folded into a base
	// generation, and the inverted lists the delta overlays. Both are 0
	// when the published snapshot is fully materialized.
	DeltaOps   int64 `json:"delta_ops"`
	DeltaTerms int64 `json:"delta_terms"`
	// WALRecords is the record count of the current write-ahead-log file
	// (0 when no WAL is attached); compaction resets it at rotation.
	WALRecords int64 `json:"wal_records"`
	// Shards is the shard count of a sharded index (0 for an unsharded
	// one); when set, the other gauges are coordinator-level aggregates
	// across every shard.
	Shards int64 `json:"shards,omitempty"`
}

// gaugeSource supplies live gauge values at snapshot time.
type gaugeSource func() Gauges

// ShardCounters accumulates coordinator-side counters of a sharded
// index's scatter-gather query path.
type ShardCounters struct {
	// FanOuts counts queries scattered across every shard.
	FanOuts Counter
	// EarlyCancels counts shard evaluations the coordinator stopped
	// early because the global K-th score exceeded the shard's next
	// possible result (threshold exchange).
	EarlyCancels Counter
	// Stragglers counts scattered queries whose critical path named a
	// straggler shard — a fan-out where the gather genuinely waited on one
	// shard (fan-outs of one contacted shard never count).
	Stragglers Counter
}

// ShardSnapshot is a point-in-time copy of ShardCounters.
type ShardSnapshot struct {
	FanOuts      int64 `json:"fanouts"`
	EarlyCancels int64 `json:"early_cancels"`
	Stragglers   int64 `json:"stragglers"`
}

// Snapshot copies the shard counters (zero snapshot for nil).
func (s *ShardCounters) Snapshot() ShardSnapshot {
	if s == nil {
		return ShardSnapshot{}
	}
	return ShardSnapshot{FanOuts: s.FanOuts.Load(), EarlyCancels: s.EarlyCancels.Load(), Stragglers: s.Stragglers.Load()}
}

// StageCounters accumulates critical-path attribution across every traced
// query: per-stage × per-engine critical-path nanos, and per-shard
// queue/run time plus straggler counts of scattered queries. It is the
// data source of the /attribution endpoint and the xkw_stage_seconds_total
// metric family. Stage recording is lock-free; the per-shard rows take a
// mutex, but only on traced scatter-gather queries.
type StageCounters struct {
	nanos [numStages][numEngines]Counter

	mu         sync.Mutex
	shardQueue []int64
	shardRun   []int64
	shardStrag []int64
}

// RecordBreakdown folds one query's stage breakdown into the aggregates.
// Nil-safe on both receiver and breakdown.
func (c *StageCounters) RecordBreakdown(e Engine, bd *StageBreakdown) {
	if c == nil || bd == nil || int(e) >= int(numEngines) {
		return
	}
	for _, st := range bd.Stages {
		if i := stageIndex(st.Stage); i >= 0 && st.Nanos > 0 {
			c.nanos[i][e].Add(st.Nanos)
		}
	}
	if len(bd.Shards) == 0 && bd.Straggler < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	grow := func(n int) {
		for len(c.shardQueue) < n {
			c.shardQueue = append(c.shardQueue, 0)
			c.shardRun = append(c.shardRun, 0)
			c.shardStrag = append(c.shardStrag, 0)
		}
	}
	for _, s := range bd.Shards {
		if s.Shard < 0 {
			continue
		}
		grow(s.Shard + 1)
		c.shardQueue[s.Shard] += s.QueueNs
		c.shardRun[s.Shard] += s.RunNs
	}
	if bd.Straggler >= 0 && len(bd.Shards) > 1 {
		grow(bd.Straggler + 1)
		c.shardStrag[bd.Straggler]++
	}
}

// StageEngineNanos is one (stage, engine) cell of the cumulative
// critical-path attribution.
type StageEngineNanos struct {
	Stage  string `json:"stage"`
	Engine string `json:"engine"`
	Nanos  int64  `json:"nanos"`
}

// ShardTimeRow is the cumulative stitched timing of one shard: total
// queue wait, total run time, and how often it was the straggler.
type ShardTimeRow struct {
	Shard      int   `json:"shard"`
	QueueNs    int64 `json:"queue_ns"`
	RunNs      int64 `json:"run_ns"`
	Stragglers int64 `json:"stragglers"`
}

// AttributionSnapshot is a point-in-time copy of StageCounters: the
// non-zero (stage, engine) cells in canonical stage then engine order,
// and the per-shard rows in shard order.
type AttributionSnapshot struct {
	Stages []StageEngineNanos `json:"stages,omitempty"`
	Shards []ShardTimeRow     `json:"shards,omitempty"`
}

// Snapshot copies the stage counters (zero snapshot for nil).
func (c *StageCounters) Snapshot() AttributionSnapshot {
	if c == nil {
		return AttributionSnapshot{}
	}
	var out AttributionSnapshot
	for i, st := range stageOrder {
		for e := Engine(0); e < numEngines; e++ {
			if v := c.nanos[i][e].Load(); v > 0 {
				out.Stages = append(out.Stages, StageEngineNanos{Stage: st, Engine: e.String(), Nanos: v})
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.shardQueue {
		out.Shards = append(out.Shards, ShardTimeRow{
			Shard:      i,
			QueueNs:    c.shardQueue[i],
			RunNs:      c.shardRun[i],
			Stragglers: c.shardStrag[i],
		})
	}
	return out
}

// ShardGauge is the per-shard gauge row of a sharded index: each shard's
// published snapshot generation, in-flight pins, and plan-cache
// occupancy, sampled at snapshot time from a source installed with
// SetShardSource.
type ShardGauge struct {
	ID               int   `json:"id"`
	SnapshotGen      int64 `json:"snapshot_gen"`
	PinnedQueries    int64 `json:"pinned_queries"`
	PlanCacheEntries int64 `json:"plan_cache_entries"`
}

// shardSource supplies live per-shard gauge rows at snapshot time.
type shardSource func() []ShardGauge

// SetShardSource installs the function Snapshot calls to sample
// per-shard gauges (nil uninstalls it). Nil-safe.
func (m *Metrics) SetShardSource(fn func() []ShardGauge) {
	if m == nil {
		return
	}
	if fn == nil {
		m.shardGauges.Store(nil)
		return
	}
	src := shardSource(fn)
	m.shardGauges.Store(&src)
}

// SetGaugeSource installs the function Snapshot calls to sample the live
// gauges (nil uninstalls it). Nil-safe.
func (m *Metrics) SetGaugeSource(fn func() Gauges) {
	if m == nil {
		return
	}
	if fn == nil {
		m.gauges.Store(nil)
		return
	}
	src := gaugeSource(fn)
	m.gauges.Store(&src)
}

// WriterMetrics accumulates index-mutation counters. Recording is
// lock-free; one writer publishes at a time, but readers snapshot
// concurrently.
type WriterMetrics struct {
	Inserts    Counter // InsertElement calls that published a snapshot
	Removes    Counter // RemoveElement calls that published a snapshot
	Errors     Counter // mutations rejected before publication
	DirtyTerms Counter // inverted lists rebuilt across all mutations
	Renumbered Counter // gap-exhausted subtree renumberings (Section III-A fallback)
	Snapshots  Counter // snapshots published (== successful mutations)
	Latency    Histogram
}

// RecordMutation records one mutation attempt: its kind (insert or
// remove), the number of inverted lists rebuilt, whether the JDewey gap
// fallback renumbered a subtree, and the end-to-end latency including
// snapshot publication. Failed mutations count only as errors. Nil-safe.
func (w *WriterMetrics) RecordMutation(insert bool, dirty int, renumbered bool, elapsed time.Duration, err error) {
	if w == nil {
		return
	}
	if err != nil {
		w.Errors.Inc()
		return
	}
	if insert {
		w.Inserts.Inc()
	} else {
		w.Removes.Inc()
	}
	w.DirtyTerms.Add(int64(dirty))
	if renumbered {
		w.Renumbered.Inc()
	}
	w.Snapshots.Inc()
	w.Latency.Observe(elapsed)
}

// WriterSnapshot is a point-in-time copy of WriterMetrics.
type WriterSnapshot struct {
	Inserts    int64             `json:"inserts"`
	Removes    int64             `json:"removes"`
	Errors     int64             `json:"errors"`
	DirtyTerms int64             `json:"dirty_terms"`
	Renumbered int64             `json:"renumbered"`
	Snapshots  int64             `json:"snapshots"`
	Latency    HistogramSnapshot `json:"latency"`
}

// Snapshot copies the writer counters (zero snapshot for nil).
func (w *WriterMetrics) Snapshot() WriterSnapshot {
	if w == nil {
		return WriterSnapshot{}
	}
	return WriterSnapshot{
		Inserts:    w.Inserts.Load(),
		Removes:    w.Removes.Load(),
		Errors:     w.Errors.Load(),
		DirtyTerms: w.DirtyTerms.Load(),
		Renumbered: w.Renumbered.Load(),
		Snapshots:  w.Snapshots.Load(),
		Latency:    w.Latency.Snapshot(),
	}
}

// SlowQuery is one entry of the slow-query log.
type SlowQuery struct {
	When     time.Time     `json:"when"`
	Engine   string        `json:"engine"`
	Query    string        `json:"query"`
	K        int           `json:"k,omitempty"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	Results  int           `json:"results"`
	Err      string        `json:"err,omitempty"`
	TraceSig string        `json:"trace,omitempty"`
}

// slowLogCap bounds the slow-query ring buffer.
const slowLogCap = 64

// Metrics is the process-wide (or per-index) metrics registry: per-engine
// query counters and latency histograms, column-store read counters, and
// a bounded slow-query log. Recording on the query path is lock-free; the
// slow-query log takes a mutex, but only for queries already past the
// configured latency threshold.
type Metrics struct {
	engines [numEngines]EngineMetrics
	Store   StoreCounters
	Writer  WriterMetrics
	Planner PlannerCounters
	Serving ServingCounters
	QLog    QLogCounters
	Shard   ShardCounters
	Stage   StageCounters
	WAL     WALCounters
	Compact CompactionCounters
	gauges  atomic.Pointer[gaugeSource]
	// shardGauges, when set, samples per-shard gauge rows of a sharded
	// index (see SetShardSource).
	shardGauges atomic.Pointer[shardSource]

	slowThresholdNs Counter // configured slow-query latency threshold (0 = disabled)

	slowMu   sync.Mutex
	slowRing [slowLogCap]SlowQuery
	slowLen  int
	slowNext int
}

// NewMetrics returns a ready registry with the slow-query log disabled.
func NewMetrics() *Metrics { return &Metrics{} }

// Engine returns the metric set of one engine for direct recording.
func (m *Metrics) Engine(e Engine) *EngineMetrics {
	if m == nil || int(e) >= int(numEngines) {
		return nil
	}
	return &m.engines[e]
}

// SetSlowQueryThreshold sets the latency past which a query is captured
// in the slow-query log. Zero or negative disables the log.
func (m *Metrics) SetSlowQueryThreshold(d time.Duration) {
	if m == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	// Counter is monotonic in spirit only; store the raw value.
	m.slowThresholdNs.v.Store(int64(d))
}

// SlowQueryThreshold returns the configured threshold (0 = disabled).
func (m *Metrics) SlowQueryThreshold() time.Duration {
	if m == nil {
		return 0
	}
	return time.Duration(m.slowThresholdNs.Load())
}

// RecordQuery records one completed query: engine counters, latency
// histogram, and — if elapsed exceeds the slow-query threshold — a
// slow-log entry. Nil-safe.
func (m *Metrics) RecordQuery(e Engine, query string, k int, elapsed time.Duration, results int, err error, tr *Trace) {
	if m == nil || int(e) >= int(numEngines) {
		return
	}
	em := &m.engines[e]
	em.Queries.Inc()
	em.Results.Add(int64(results))
	em.Latency.Observe(elapsed)
	if err != nil {
		if isCancel(err) {
			em.Cancelled.Inc()
		} else {
			em.Errors.Inc()
		}
	}
	if th := m.SlowQueryThreshold(); th > 0 && elapsed >= th {
		sq := SlowQuery{
			When:    time.Now(),
			Engine:  e.String(),
			Query:   query,
			K:       k,
			Elapsed: elapsed,
			Results: results,
		}
		if err != nil {
			sq.Err = err.Error()
		}
		if tr != nil {
			sq.TraceSig = tr.Signature()
		}
		m.slowMu.Lock()
		m.slowRing[m.slowNext] = sq
		m.slowNext = (m.slowNext + 1) % slowLogCap
		if m.slowLen < slowLogCap {
			m.slowLen++
		}
		m.slowMu.Unlock()
	}
}

// isCancel reports whether err is a context cancellation; the facade
// propagates context errors unwrapped or wrapped, so errors.Is suffices.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// SlowQueries returns the slow-query log, oldest first.
func (m *Metrics) SlowQueries() []SlowQuery {
	if m == nil {
		return nil
	}
	m.slowMu.Lock()
	defer m.slowMu.Unlock()
	out := make([]SlowQuery, 0, m.slowLen)
	start := m.slowNext - m.slowLen
	if start < 0 {
		start += slowLogCap
	}
	for i := 0; i < m.slowLen; i++ {
		out = append(out, m.slowRing[(start+i)%slowLogCap])
	}
	return out
}

// EngineSnapshot is a point-in-time copy of one engine's metrics.
type EngineSnapshot struct {
	Engine    string            `json:"engine"`
	Queries   int64             `json:"queries"`
	Errors    int64             `json:"errors"`
	Cancelled int64             `json:"cancelled"`
	Results   int64             `json:"results"`
	Latency   HistogramSnapshot `json:"latency"`
}

// Snapshot is a point-in-time copy of a Metrics registry.
type Snapshot struct {
	Engines     []EngineSnapshot    `json:"engines"`
	Store       StoreSnapshot       `json:"store"`
	Writer      WriterSnapshot      `json:"writer"`
	Planner     PlannerSnapshot     `json:"planner"`
	Serving     ServingSnapshot     `json:"serving"`
	QLog        QLogSnapshot        `json:"qlog"`
	Shard       ShardSnapshot       `json:"shard"`
	WAL         WALSnapshot         `json:"wal"`
	Compaction  CompactionSnapshot  `json:"compaction"`
	Attribution AttributionSnapshot `json:"attribution"`
	Process     ProcessSnapshot     `json:"process"`
	Gauges      Gauges              `json:"gauges"`
	ShardGauges []ShardGauge        `json:"shard_gauges,omitempty"`
	SlowQueries []SlowQuery         `json:"slow_queries,omitempty"`
}

// Snapshot copies every counter in the registry and samples the installed
// gauge source. Safe to call concurrently with recording.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	s := Snapshot{Store: m.Store.Snapshot(), Writer: m.Writer.Snapshot(), Planner: m.Planner.Snapshot(), Serving: m.Serving.Snapshot(), QLog: m.QLog.Snapshot(), Shard: m.Shard.Snapshot(), WAL: m.WAL.Snapshot(), Compaction: m.Compact.Snapshot(), Attribution: m.Stage.Snapshot(), Process: CurrentProcess(), SlowQueries: m.SlowQueries()}
	if src := m.gauges.Load(); src != nil {
		s.Gauges = (*src)()
	}
	if src := m.shardGauges.Load(); src != nil {
		s.ShardGauges = (*src)()
	}
	for e := Engine(0); e < numEngines; e++ {
		em := &m.engines[e]
		s.Engines = append(s.Engines, EngineSnapshot{
			Engine:    e.String(),
			Queries:   em.Queries.Load(),
			Errors:    em.Errors.Load(),
			Cancelled: em.Cancelled.Load(),
			Results:   em.Results.Load(),
			Latency:   em.Latency.Snapshot(),
		})
	}
	return s
}
