package obs

import (
	"sort"
	"strconv"
	"strings"
	"time"
)

// Stage spans and the critical-path analyzer. Every traced query —
// sharded or single-index — tags its phases with spans from a closed
// stage taxonomy ("stage/<name>"); a sharded query additionally stitches
// each shard's trace in as a "shard/<id>" subtree (see Trace.AdoptChild).
// BreakdownOf reduces any such timeline to a deterministic per-stage
// attribution: it partitions the query's wall time along the critical
// path, so the per-stage nanos plus the unattributed remainder sum to
// the wall time exactly.

// The closed stage taxonomy. Stage spans may repeat (every decode gets
// its own stage/decode span) and nest under one another (decode nests
// inside open); the analyzer attributes each instant to the innermost
// enclosing stage on the critical path.
const (
	// StageAdmission is queue wait before evaluation — for a stitched
	// shard subtree, the wait for a worker-pool slot.
	StageAdmission = "admission"
	// StagePlan is engine resolution: registry lookup, or cost-based
	// planning through the plan cache for AlgoAuto.
	StagePlan = "plan"
	// StageOpen is inverted-list resolution: memo/cache lookups and
	// extent capture (the decode of cache misses nests inside as its own
	// stage).
	StageOpen = "open"
	// StageDecode is checksum verification plus block decode of list
	// bytes.
	StageDecode = "decode"
	// StageJoin is the engine's evaluation proper — the LCA join, stack
	// merge, lookup probe loop, or top-K star join.
	StageJoin = "join"
	// StageMerge is the coordinator-side merge of per-shard answers into
	// the global rank order.
	StageMerge = "merge"
	// StageSettle is the query epilogue: abort classification and
	// certified-partial settlement (recertification, for a coordinator).
	StageSettle = "settle"
	// StageCompact is background write-path work: folding a delta segment
	// into a new base generation and rotating the write-ahead log. It
	// appears in compaction traces (offered to the flight recorder by the
	// compactor), never on a query's own critical path.
	StageCompact = "compact"
)

// stageOrder is the canonical stage order used everywhere stages are
// enumerated: breakdowns, signatures, metrics, and dominant-stage ties.
var stageOrder = [...]string{StageAdmission, StagePlan, StageOpen, StageDecode, StageJoin, StageMerge, StageSettle, StageCompact}

// numStages sizes per-stage metric arrays.
const numStages = len(stageOrder)

// Stages returns the closed stage taxonomy in canonical order.
func Stages() []string { return append([]string(nil), stageOrder[:]...) }

// stageIndex maps a stage name to its canonical index (-1 if unknown).
func stageIndex(stage string) int {
	for i, s := range stageOrder {
		if s == stage {
			return i
		}
	}
	return -1
}

const (
	stageSpanPrefix = "stage/"
	shardSpanPrefix = "shard/"
)

// StageSpanName names the span tagging one stage interval.
func StageSpanName(stage string) string { return stageSpanPrefix + stage }

// SpanStage reports the stage a span tags, if any.
func SpanStage(name string) (string, bool) {
	return strings.CutPrefix(name, stageSpanPrefix)
}

// ShardSpanName names the wrapper span of one stitched shard subtree.
func ShardSpanName(shard int) string { return shardSpanPrefix + strconv.Itoa(shard) }

// SpanShard reports the shard ID of a stitched shard wrapper span.
func SpanShard(name string) (int, bool) {
	s, ok := strings.CutPrefix(name, shardSpanPrefix)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Stage opens a stage span (nil-safe; close with End like any span).
func (t *Trace) Stage(stage string) int32 { return t.Start(StageSpanName(stage)) }

// StageNanos is one stage's share of a query's critical path.
type StageNanos struct {
	Stage string `json:"stage"`
	Nanos int64  `json:"nanos"`
	// Share is Nanos over the query's wall time.
	Share float64 `json:"share"`
}

// ShardTiming is the stitched timing of one shard's evaluation: the
// worker-pool queue wait and the run time (wrapper duration minus wait).
type ShardTiming struct {
	Shard   int   `json:"shard"`
	QueueNs int64 `json:"queue_ns"`
	RunNs   int64 `json:"run_ns"`
}

// StageBreakdown is the critical-path reduction of one trace: per-stage
// time in canonical order (zero stages omitted), the unattributed
// remainder, the dominant stage, and — for a scatter-gather trace — the
// per-shard timings and the straggler shard on the critical path. The
// invariant the reduction guarantees: the stage nanos plus OtherNs sum
// to WallNs exactly.
type StageBreakdown struct {
	WallNs int64        `json:"wall_ns"`
	Stages []StageNanos `json:"stages,omitempty"`
	// OtherNs is wall time on the critical path outside every stage span
	// (tokenization, dispatch, trace bookkeeping).
	OtherNs int64 `json:"other_ns"`
	// Dominant is the stage with the most critical-path time (canonical
	// order breaks ties; empty when no stage was tagged).
	Dominant string `json:"dominant,omitempty"`
	// Straggler is the shard whose stitched subtree ends last — the one
	// the coordinator's gather actually waited for. -1 when the trace has
	// no shard subtrees.
	Straggler int           `json:"straggler_shard"`
	Shards    []ShardTiming `json:"shards,omitempty"`
}

// BreakdownOf reduces a span timeline to its stage breakdown. wall is
// the query's elapsed time (span clocks are relative to the trace
// start, so wall bounds every interval; open spans are clamped to it).
//
// The critical-path rules, all deterministic:
//
//   - The path starts at the root span's window and descends into child
//     spans in start order; time between children attributes to the
//     innermost enclosing stage span, or to "other" outside any stage.
//   - Concurrent "shard/<id>" wrapper spans under one parent form one
//     scatter; the path descends only the straggler — the wrapper with
//     the latest end (lowest shard ID on ties) — because the gather
//     waits exactly that long. Sibling shards run off the path.
//   - A stage span's interior attributes to nested stage spans where
//     present (decode inside open) and to the span's own stage in the
//     gaps, so repeated and nested stage spans never double-count.
func BreakdownOf(spans []Span, wall time.Duration) StageBreakdown {
	bd := StageBreakdown{WallNs: wall.Nanoseconds(), Straggler: -1}
	if wall <= 0 {
		return bd
	}
	n := len(spans)
	// kids[i] lists span i's children; kids[n] the top-level spans.
	kids := make([][]int32, n+1)
	for i := range spans {
		p := int(spans[i].Parent)
		if p < 0 || p >= n {
			p = n
		}
		kids[p] = append(kids[p], int32(i))
	}
	clamp := func(d time.Duration) time.Duration {
		if d < 0 || d > wall {
			return wall
		}
		return d
	}

	acc := make(map[string]int64, numStages+1)
	var walk func(children []int32, lo, hi time.Duration, stage string)
	walk = func(children []int32, lo, hi time.Duration, stage string) {
		cs := append([]int32(nil), children...)
		sort.SliceStable(cs, func(a, b int) bool { return spans[cs[a]].Start < spans[cs[b]].Start })
		// One scatter per parent: keep only the straggler shard wrapper.
		straggler := int32(-1)
		stragglerID := 0
		var stragglerEnd time.Duration = -1
		for _, c := range cs {
			if id, ok := SpanShard(spans[c].Name); ok {
				if e := clamp(spans[c].End); e > stragglerEnd || (e == stragglerEnd && id < stragglerID) {
					straggler, stragglerID, stragglerEnd = c, id, e
				}
			}
		}
		cursor := lo
		for _, c := range cs {
			if _, ok := SpanShard(spans[c].Name); ok && c != straggler {
				continue
			}
			clo, chi := spans[c].Start, clamp(spans[c].End)
			if clo < cursor {
				clo = cursor
			}
			if chi > hi {
				chi = hi
			}
			if chi <= clo {
				continue
			}
			acc[stage] += int64(clo - cursor)
			cst := stage
			if s, ok := SpanStage(spans[c].Name); ok {
				cst = s
			}
			walk(kids[c], clo, chi, cst)
			cursor = chi
		}
		if hi > cursor {
			acc[stage] += int64(hi - cursor)
		}
	}
	walk(kids[n], 0, wall, "")

	bd.OtherNs = acc[""]
	for _, st := range stageOrder {
		ns := acc[st]
		if ns <= 0 {
			continue
		}
		bd.Stages = append(bd.Stages, StageNanos{Stage: st, Nanos: ns, Share: float64(ns) / float64(bd.WallNs)})
		if bd.Dominant == "" || ns > acc[bd.Dominant] {
			bd.Dominant = st
		}
	}

	// Per-shard timings and the global straggler (latest-ending wrapper
	// anywhere in the tree, lowest ID on ties).
	var stragglerEnd time.Duration = -1
	for i := range spans {
		id, ok := SpanShard(spans[i].Name)
		if !ok {
			continue
		}
		end := clamp(spans[i].End)
		total := int64(end - spans[i].Start)
		if total < 0 {
			total = 0
		}
		var queue int64
		for _, c := range kids[i] {
			if s, ok := SpanStage(spans[c].Name); ok && s == StageAdmission {
				queue += int64(clamp(spans[c].End) - spans[c].Start)
			}
		}
		run := total - queue
		if run < 0 {
			run = 0
		}
		bd.Shards = append(bd.Shards, ShardTiming{Shard: id, QueueNs: queue, RunNs: run})
		if end > stragglerEnd || (end == stragglerEnd && (bd.Straggler < 0 || id < bd.Straggler)) {
			bd.Straggler, stragglerEnd = id, end
		}
	}
	sort.Slice(bd.Shards, func(a, b int) bool { return bd.Shards[a].Shard < bd.Shards[b].Shard })
	return bd
}

// StageSignature reduces a span timeline to a time-free stage signature:
// the set of stages tagged outside every stitched shard subtree, then
// the union of stages tagged inside them — both in canonical order, with
// durations and shard fan-out projected out. It is the timeline analogue
// of the result-fingerprint shard invariance: the same query evaluated
// at any shard count signatures identically.
func StageSignature(spans []Span) string {
	inShard := make([]bool, len(spans))
	sharded := false
	for i := range spans {
		if _, ok := SpanShard(spans[i].Name); ok {
			inShard[i] = true
			sharded = true
			continue
		}
		if p := int(spans[i].Parent); p >= 0 && p < i && inShard[p] {
			inShard[i] = true
		}
	}
	coord := map[string]bool{}
	shard := map[string]bool{}
	for i := range spans {
		s, ok := SpanStage(spans[i].Name)
		if !ok {
			continue
		}
		if inShard[i] {
			shard[s] = true
		} else {
			coord[s] = true
		}
	}
	pick := func(set map[string]bool) string {
		var out []string
		for _, st := range stageOrder {
			if set[st] {
				out = append(out, st)
			}
		}
		return strings.Join(out, ",")
	}
	sig := "stages: " + pick(coord) + "\n"
	if sharded {
		sig += "shard-stages: " + pick(shard) + "\n"
	}
	return sig
}
