package obs

import (
	"bytes"
	"context"
	"errors"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	id := tr.Start("x")
	tr.ListOpen("w", 1, 2, 3)
	tr.Decode("w", 1, 2, 3)
	tr.JoinOrder("o", 1, 2, 3)
	tr.JoinStep("merge", 0, 1, 2)
	tr.PlanSwitch("index", 0, 1, 2)
	tr.Threshold(0, 1.5, 1, 0)
	tr.Emit(0, 1, 2.5)
	tr.Terminated(0, 1, 2)
	tr.CancelChecks(5, 64)
	tr.Quarantine("w", "crc")
	tr.Note("n", 0, 0, 0)
	tr.End(id)
	if tr.Events() != nil || tr.Spans() != nil || tr.Dropped() != 0 || tr.Signature() != "" {
		t.Fatal("nil trace accumulated state")
	}
	var buf bytes.Buffer
	tr.Render(&buf)
	if !strings.Contains(buf.String(), "disabled") {
		t.Fatalf("nil render = %q", buf.String())
	}
}

func TestTraceEventsAndSpans(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("query")
	tr.ListOpen("apple", 10, 4, 128)
	inner := tr.Start("join")
	tr.JoinOrder("rows:10<20", 2, 10, 30)
	tr.JoinStep("merge", 3, 10, 20)
	tr.End(inner)
	tr.Threshold(3, 0.5, 2, 0)
	tr.Threshold(3, 0.5, 2, 0) // consecutive duplicate: deduped
	tr.Threshold(2, 0.5, 2, 1) // different level: kept
	tr.Emit(2, 1, 0.75)
	tr.End(root)

	evs := tr.Events()
	kinds := make([]EventKind, len(evs))
	for i, e := range evs {
		kinds[i] = e.Kind
	}
	want := []EventKind{EvListOpen, EvJoinOrder, EvJoinStep, EvThreshold, EvThreshold, EvEmit}
	if len(kinds) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d kind = %v, want %v", i, kinds[i], want[i])
		}
	}
	// Span attribution: JoinOrder was recorded inside "join".
	if evs[1].Span != inner {
		t.Fatalf("join-order span = %d, want %d", evs[1].Span, inner)
	}
	sp := tr.Spans()
	if len(sp) != 2 || sp[0].Parent != -1 || sp[1].Parent != root {
		t.Fatalf("span tree wrong: %+v", sp)
	}
	if sp[1].End < sp[1].Start {
		t.Fatal("inner span not closed")
	}

	sig := tr.Signature()
	for _, frag := range []string{"list-open(apple rows=10 maxlev=4)", "join-order(rows:10<20)", "threshold(lev=3)", "emit(lev=2 n=1)"} {
		if !strings.Contains(sig, frag) {
			t.Fatalf("signature missing %q:\n%s", frag, sig)
		}
	}
	var buf bytes.Buffer
	tr.Render(&buf)
	out := buf.String()
	for _, frag := range []string{"query", "join-order", "threshold level=2"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestTraceEventBound(t *testing.T) {
	tr := NewTrace()
	tr.max = 8
	for i := 0; i < 20; i++ {
		tr.Emit(0, i, 1)
	}
	if len(tr.Events()) != 8 {
		t.Fatalf("events = %d, want 8", len(tr.Events()))
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped = %d, want 12", tr.Dropped())
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Microsecond) // bucket 0 (<=50µs)
	h.Observe(70 * time.Microsecond) // bucket 1 (<=100µs)
	h.Observe(10 * time.Second)      // +Inf bucket
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0].N != 1 || s.Buckets[1].N != 1 {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.LE != 0 || last.N != 1 {
		t.Fatalf("+Inf bucket = %+v", last)
	}
	if s.Mean() <= 0 {
		t.Fatal("mean not positive")
	}
}

func TestMetricsRecordAndSlowLog(t *testing.T) {
	m := NewMetrics()
	m.RecordQuery(EngineTopK, "a b", 5, 2*time.Millisecond, 3, nil, nil)
	m.RecordQuery(EngineTopK, "a b", 5, time.Millisecond, 0, errors.New("boom"), nil)
	m.RecordQuery(EngineJoin, "c", 0, time.Millisecond, 1, context.Canceled, nil)
	s := m.Snapshot()
	var topk, join EngineSnapshot
	for _, e := range s.Engines {
		switch e.Engine {
		case "topk":
			topk = e
		case "join":
			join = e
		}
	}
	if topk.Queries != 2 || topk.Errors != 1 || topk.Results != 3 {
		t.Fatalf("topk snapshot = %+v", topk)
	}
	if join.Cancelled != 1 || join.Errors != 0 {
		t.Fatalf("join snapshot = %+v", join)
	}
	if len(s.SlowQueries) != 0 {
		t.Fatal("slow log captured with threshold disabled")
	}

	m.SetSlowQueryThreshold(time.Millisecond)
	tr := NewTrace()
	tr.JoinOrder("rows:1", 1, 1, 1)
	m.RecordQuery(EngineTopK, "slow one", 10, 5*time.Millisecond, 7, nil, tr)
	m.RecordQuery(EngineTopK, "fast one", 10, 10*time.Microsecond, 7, nil, nil)
	slow := m.SlowQueries()
	if len(slow) != 1 || slow[0].Query != "slow one" || slow[0].K != 10 {
		t.Fatalf("slow log = %+v", slow)
	}
	if !strings.Contains(slow[0].TraceSig, "join-order") {
		t.Fatalf("slow entry missing trace signature: %+v", slow[0])
	}
}

func TestSlowLogRingWraps(t *testing.T) {
	m := NewMetrics()
	m.SetSlowQueryThreshold(1)
	for i := 0; i < slowLogCap+5; i++ {
		m.RecordQuery(EngineJoin, string(rune('a'+i%26)), 0, time.Second, 0, nil, nil)
	}
	slow := m.SlowQueries()
	if len(slow) != slowLogCap {
		t.Fatalf("slow log len = %d, want %d", len(slow), slowLogCap)
	}
}

func TestStoreCountersNilSafe(t *testing.T) {
	var s *StoreCounters
	s.RecordOpen()
	s.RecordDecode(1, 2, 3)
	s.RecordSparseSkips(4)
	s.RecordQuarantine()
	if s.Snapshot() != (StoreSnapshot{}) {
		t.Fatal("nil store counters accumulated state")
	}
	var real StoreCounters
	real.RecordOpen()
	real.RecordDecode(2, 10, 40)
	real.RecordSparseSkips(3)
	real.RecordQuarantine()
	snap := real.Snapshot()
	want := StoreSnapshot{ListOpens: 1, ListDecodes: 1, BlocksDecoded: 2, CompressedBytes: 10, DecodedBytes: 40, SparseSkips: 3, Quarantines: 1}
	if snap != want {
		t.Fatalf("snapshot = %+v, want %+v", snap, want)
	}
}

func TestExposition(t *testing.T) {
	m := NewMetrics()
	m.RecordQuery(EngineTopK, "q", 3, time.Millisecond, 2, nil, nil)
	m.Store.RecordDecode(4, 100, 400)
	s := m.Snapshot()

	var prom bytes.Buffer
	s.WritePrometheus(&prom)
	out := prom.String()
	for _, frag := range []string{
		`xkw_queries_total{engine="topk"} 1`,
		`xkw_query_duration_seconds_count{engine="topk"} 1`,
		`le="+Inf"`,
		"xkw_store_blocks_decoded_total 4",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("prometheus output missing %q:\n%s", frag, out)
		}
	}

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"engine": "topk"`, `"blocks_decoded": 4`} {
		if !strings.Contains(js.String(), frag) {
			t.Fatalf("json output missing %q:\n%s", frag, js.String())
		}
	}

	m.PublishExpvar("xkw_test_metrics")
	m.PublishExpvar("xkw_test_metrics") // duplicate must not panic
	v := expvar.Get("xkw_test_metrics")
	if v == nil || !strings.Contains(v.String(), "topk") {
		t.Fatalf("expvar publication missing: %v", v)
	}
}

func TestSnapshotConcurrentWithRecording(t *testing.T) {
	m := NewMetrics()
	m.SetSlowQueryThreshold(1)
	const perG, goroutines = 500, 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.RecordQuery(EngineTopK, "q", 1, time.Millisecond, 1, nil, nil)
				m.Store.RecordDecode(1, 1, 1)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		_ = m.Snapshot()
	}
	wg.Wait()
	if got := m.Snapshot().Engines[int(EngineTopK)].Queries; got != perG*goroutines {
		t.Fatalf("queries = %d, want %d", got, perG*goroutines)
	}
}
