// Package jdewey implements the JDewey node encoding of Section III-A of the
// paper. Every node is assigned a JDewey number that is unique within its
// tree level, with the order requirement that children of a higher-numbered
// parent carry higher numbers than children of a lower-numbered parent. The
// JDewey sequence of a node is the vector of JDewey numbers on its root
// path; two coordinates (level, number) identify a node, which is what lets
// inverted lists be stored column-by-column.
package jdewey

import (
	"fmt"
	"sort"

	"repro/internal/xmltree"
)

// Seq is a JDewey sequence: element i-1 is the JDewey number of the node's
// ancestor at level i (the node itself occupies the last position).
type Seq []uint32

// Level returns the level of the node the sequence identifies.
func (s Seq) Level() int { return len(s) }

// Compare orders sequences in JDewey order: S1 < S2 iff S1 is a proper
// prefix of S2 or S1(j) < S2(j) at the first differing position.
func Compare(a, b Seq) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// LCA returns the level and JDewey number of the lowest common ancestor of
// the two sequences. Per Section III-A, it is the largest i such that
// S1(i) = S2(i); because JDewey numbers are unique per level, equality at i
// implies equality at every position before i. ok is false when the
// sequences share no component (nodes from different trees).
func LCA(a, b Seq) (level int, num uint32, ok bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := n - 1; i >= 0; i-- {
		if a[i] == b[i] {
			return i + 1, a[i], true
		}
	}
	return 0, 0, false
}

// Encoding assigns and maintains JDewey numbers for one document. Numbers
// are assigned in document order per level; Gap extra numbers are reserved
// after each parent's block of children so that future insertions can be
// accommodated without renumbering (Section III-A's reserved spaces).
type Encoding struct {
	Doc *xmltree.Document
	Gap int

	levelMax []uint32 // levelMax[l] = highest number assigned at level l (1-based index)
}

// Assign assigns JDewey numbers to every node of doc with the given
// reservation gap (gap >= 0) and returns the maintenance handle.
func Assign(doc *xmltree.Document, gap int) *Encoding {
	if gap < 0 {
		gap = 0
	}
	e := &Encoding{Doc: doc, Gap: gap}
	e.reassignAll()
	return e
}

func (e *Encoding) reassignAll() {
	doc := e.Doc
	doc.InvalidateJDeweyIndex()
	e.levelMax = make([]uint32, doc.Depth+2)
	if doc.Root == nil {
		return
	}
	doc.Root.JD = 1
	e.levelMax[1] = 1
	// Assign level by level: iterating parents at level l in JDewey order
	// and numbering their children consecutively guarantees the order
	// requirement by construction.
	frontier := []*xmltree.Node{doc.Root}
	level := 2
	for len(frontier) > 0 {
		var next []*xmltree.Node
		var n uint32
		for _, p := range frontier {
			for _, c := range p.Children {
				n++
				c.JD = n
				next = append(next, c)
			}
			if len(p.Children) > 0 {
				n += uint32(e.Gap)
			}
		}
		if level < len(e.levelMax) {
			e.levelMax[level] = n
		}
		frontier = next
		level++
	}
}

// Insert attaches child under parent at sibling position pos and assigns
// it a valid JDewey number. When the parent's reserved space is exhausted,
// the lowest legally-movable ancestor subtree is renumbered (the Section
// III-A fallback) and returned, so callers maintaining derived structures
// (inverted lists keyed by JDewey numbers) know exactly which occurrences
// changed identity; renumbered is nil when the gap absorbed the insert.
// The inserted child must be a leaf.
func (e *Encoding) Insert(parent *xmltree.Node, child *xmltree.Node, pos int) (renumbered *xmltree.Node, err error) {
	if len(child.Children) != 0 {
		return nil, fmt.Errorf("jdewey: Insert supports leaf children only")
	}
	e.Doc.InsertChild(parent, child, pos)
	if child.Level >= len(e.levelMax) {
		grown := make([]uint32, child.Level+1)
		copy(grown, e.levelMax)
		e.levelMax = grown
	}
	e.Doc.InvalidateJDeweyIndex()
	lo, hi := e.insertBounds(parent, child)
	if lo+1 < hi {
		child.JD = lo + 1
		if child.JD > e.levelMax[child.Level] {
			e.levelMax[child.Level] = child.JD
		}
		return nil, nil
	}
	// No reserved space left between the neighbours: re-encode the lowest
	// ancestor subtree that can legally move to the top of its level.
	a := e.reencodeRoot(parent)
	e.renumberSubtree(a)
	return a, nil
}

// insertBounds computes the open interval (lo, hi) of legal numbers for a
// new node at child.Level under parent: greater than every number whose
// parent precedes parent (and than existing siblings, to keep assignment
// append-only within the family), and smaller than every number whose
// parent follows parent.
func (e *Encoding) insertBounds(parent, child *xmltree.Node) (lo, hi uint32) {
	level := child.Level
	hi = ^uint32(0)
	for _, v := range e.Doc.NodesAtLevel(level) {
		if v == child {
			continue
		}
		switch {
		case v.Parent.JD < parent.JD || v.Parent == parent:
			if v.JD > lo {
				lo = v.JD
			}
		case v.Parent.JD > parent.JD:
			if v.JD < hi {
				hi = v.JD
			}
		}
	}
	return lo, hi
}

// reencodeRoot walks up from parent to the lowest ancestor that may be
// renumbered to the top of its level: an ancestor a qualifies when no node
// at a's level has a parent numbered higher than a's parent (or a is the
// root). Renumbering a's whole subtree to fresh maxima then preserves the
// order requirement globally.
func (e *Encoding) reencodeRoot(parent *xmltree.Node) *xmltree.Node {
	a := parent
	for a.Parent != nil {
		maxParent := uint32(0)
		for _, v := range e.Doc.NodesAtLevel(a.Level) {
			if v.Parent != nil && v.Parent.JD > maxParent {
				maxParent = v.Parent.JD
			}
		}
		if a.Parent.JD >= maxParent {
			return a
		}
		a = a.Parent
	}
	return a
}

// renumberSubtree gives every node in a's subtree a fresh number above the
// current maximum of its level, level by level.
func (e *Encoding) renumberSubtree(a *xmltree.Node) {
	e.Doc.InvalidateJDeweyIndex()
	frontier := []*xmltree.Node{a}
	for len(frontier) > 0 {
		level := frontier[0].Level
		n := e.levelMax[level]
		var next []*xmltree.Node
		for _, v := range frontier {
			n++
			v.JD = n
			next = append(next, v.Children...)
		}
		e.levelMax[level] = n + uint32(e.Gap)
		frontier = next
	}
}

// LevelMax reports the highest JDewey number reserved or assigned so far
// at level (0 when the level has no nodes yet). Delta segments use it to
// mint numbers strictly above every base assignment without mutating the
// encoding.
func (e *Encoding) LevelMax(level int) uint32 {
	if level < 0 || level >= len(e.levelMax) {
		return 0
	}
	return e.levelMax[level]
}

// Adopt wraps an existing (already assigned, e.g. loaded from disk) valid
// numbering in a maintenance handle with the given reservation gap for
// future insertions. It validates the numbering first.
func Adopt(doc *xmltree.Document, gap int) (*Encoding, error) {
	if err := Check(doc); err != nil {
		return nil, err
	}
	if gap < 0 {
		gap = 0
	}
	e := &Encoding{Doc: doc, Gap: gap}
	e.levelMax = make([]uint32, doc.Depth+2)
	for _, n := range doc.Nodes {
		if n.JD > e.levelMax[n.Level] {
			e.levelMax[n.Level] = n.JD
		}
	}
	return e, nil
}

// CloneFor duplicates the maintenance handle onto a cloned document
// carrying the same numbering (see xmltree.Document.Clone). The per-level
// maxima are copied, so insertions against the clone reserve numbers
// exactly as they would have against the original.
func (e *Encoding) CloneFor(doc *xmltree.Document) *Encoding {
	return &Encoding{Doc: doc, Gap: e.Gap, levelMax: append([]uint32(nil), e.levelMax...)}
}

// Remove detaches n's subtree from the document. Deletion needs no
// renumbering: the numbers simply disappear (Section III-A).
func (e *Encoding) Remove(n *xmltree.Node) {
	e.Doc.RemoveNode(n)
}

// Check validates the two JDewey requirements over the whole document:
// per-level uniqueness and the cross-parent order property. It returns the
// first violation found, or nil.
func Check(doc *xmltree.Document) error {
	for l := 1; l <= doc.Depth; l++ {
		seen := make(map[uint32]*xmltree.Node)
		for _, v := range doc.NodesAtLevel(l) {
			if v.JD == 0 {
				return fmt.Errorf("jdewey: node %v at level %d has no number", v.Dewey, l)
			}
			if prev, dup := seen[v.JD]; dup {
				return fmt.Errorf("jdewey: duplicate number %d at level %d (%v and %v)", v.JD, l, prev.Dewey, v.Dewey)
			}
			seen[v.JD] = v
		}
	}
	// The order requirement is equivalent to: sorted by own number, parent
	// numbers are non-decreasing.
	for l := 2; l <= doc.Depth; l++ {
		nodes := append([]*xmltree.Node(nil), doc.NodesAtLevel(l)...)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].JD < nodes[j].JD })
		for i := 1; i < len(nodes); i++ {
			if nodes[i-1].Parent.JD > nodes[i].Parent.JD {
				return fmt.Errorf("jdewey: order violation at level %d: %d (parent %d) < %d (parent %d)",
					l, nodes[i-1].JD, nodes[i-1].Parent.JD, nodes[i].JD, nodes[i].Parent.JD)
			}
		}
	}
	return nil
}
