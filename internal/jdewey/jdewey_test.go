package jdewey

import (
	"math/rand"
	"testing"

	"repro/internal/testutil"
	"repro/internal/xmltree"
)

// figure1 builds a small tree in the spirit of the paper's Figure 1: a
// three-level bibliography where some leaves contain "xml" and "data".
func figure1() *xmltree.Document {
	return xmltree.NewBuilder().
		Open("bib").
		Open("book").
		Leaf("title", "semistructured data").
		Open("chapter").
		Leaf("section", "xml basics").
		Leaf("section", "data models").
		Close().
		Close().
		Open("book").
		Leaf("title", "xml processing").
		Close().
		Open("book").
		Leaf("title", "databases").
		Open("chapter").
		Leaf("section", "xml data").
		Close().
		Close().
		Close().
		Doc()
}

func TestAssignBasic(t *testing.T) {
	doc := figure1()
	Assign(doc, 0)
	if err := Check(doc); err != nil {
		t.Fatal(err)
	}
	if doc.Root.JD != 1 {
		t.Errorf("root JD = %d", doc.Root.JD)
	}
	// Document order within a level implies ascending JDewey numbers.
	for l := 1; l <= doc.Depth; l++ {
		nodes := doc.NodesAtLevel(l)
		for i := 1; i < len(nodes); i++ {
			if nodes[i-1].JD >= nodes[i].JD {
				t.Fatalf("level %d numbers not ascending in document order", l)
			}
		}
	}
}

func TestAssignWithGapLeavesRoom(t *testing.T) {
	doc := figure1()
	Assign(doc, 2)
	if err := Check(doc); err != nil {
		t.Fatal(err)
	}
	// With gap 2 the children of the second parent at a level start at
	// least 2 numbers after the previous family.
	chapters := doc.Root.Children[0].Children[1]
	book3chap := doc.Root.Children[2].Children[1]
	if book3chap.Children[0].JD <= chapters.Children[1].JD+2 {
		t.Errorf("gap not applied: %d vs %d", book3chap.Children[0].JD, chapters.Children[1].JD)
	}
}

func TestSeqCompareAndLCA(t *testing.T) {
	doc := figure1()
	Assign(doc, 0)
	// LCA of the two "section" leaves under the same chapter is the chapter.
	chapter := doc.Root.Children[0].Children[1]
	s1 := Seq(chapter.Children[0].JDeweySeq())
	s2 := Seq(chapter.Children[1].JDeweySeq())
	level, num, ok := LCA(s1, s2)
	if !ok || level != chapter.Level || num != chapter.JD {
		t.Fatalf("LCA = (%d, %d, %v), want (%d, %d)", level, num, ok, chapter.Level, chapter.JD)
	}
	// LCA across books is the root.
	s3 := Seq(doc.Root.Children[1].Children[0].JDeweySeq())
	level, num, ok = LCA(s1, s3)
	if !ok || level != 1 || num != doc.Root.JD {
		t.Fatalf("cross-book LCA = (%d, %d, %v)", level, num, ok)
	}
	// Prefixes order before extensions.
	if Compare(s1[:2], s1) != -1 || Compare(s1, s1[:2]) != 1 || Compare(s1, s1) != 0 {
		t.Error("prefix ordering violated")
	}
	if _, _, ok := LCA(Seq{}, s1); ok {
		t.Error("empty sequence has no LCA")
	}
}

// TestProperty31 checks Property 3.1 on random documents: if S1 < S2 in
// JDewey order then S1(i) <= S2(i) for every shared position.
func TestProperty31(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		doc := testutil.RandomDoc(rng, testutil.MediumParams())
		Assign(doc, rng.Intn(3))
		if err := Check(doc); err != nil {
			t.Fatal(err)
		}
		nodes := doc.Nodes
		for probe := 0; probe < 300; probe++ {
			a := Seq(nodes[rng.Intn(len(nodes))].JDeweySeq())
			b := Seq(nodes[rng.Intn(len(nodes))].JDeweySeq())
			if Compare(a, b) > 0 {
				a, b = b, a
			}
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for i := 0; i < n; i++ {
				if a[i] > b[i] {
					t.Fatalf("Property 3.1 violated: %v vs %v at %d", a, b, i)
				}
			}
		}
	}
}

// TestLCAMatchesDewey verifies that the JDewey LCA operator finds the same
// node as longest-common-prefix on Dewey IDs, for random node pairs.
func TestLCAMatchesDewey(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		doc := testutil.RandomDoc(rng, testutil.MediumParams())
		Assign(doc, 0)
		nodes := doc.Nodes
		for probe := 0; probe < 200; probe++ {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			level, num, ok := LCA(Seq(u.JDeweySeq()), Seq(v.JDeweySeq()))
			if !ok {
				t.Fatal("nodes of one tree must share the root")
			}
			got := doc.NodeByJDewey(level, num)
			// Reference: walk up from the deeper node.
			a, b := u, v
			for a.Level > b.Level {
				a = a.Parent
			}
			for b.Level > a.Level {
				b = b.Parent
			}
			for a != b {
				a, b = a.Parent, b.Parent
			}
			if got != a {
				t.Fatalf("JDewey LCA = %v, want %v", got.Dewey, a.Dewey)
			}
		}
	}
}

func TestInsertWithinGap(t *testing.T) {
	doc := figure1()
	e := Assign(doc, 3)
	book := doc.Root.Children[0]
	n := &xmltree.Node{Tag: "title", Text: "appendix"}
	renum, err := e.Insert(book, n, len(book.Children))
	if err != nil {
		t.Fatal(err)
	}
	if renum != nil {
		t.Error("insert within reserved gap must not re-encode")
	}
	if err := Check(doc); err != nil {
		t.Fatal(err)
	}
	if n.JD == 0 {
		t.Error("inserted node unnumbered")
	}
}

func TestInsertForcesReencode(t *testing.T) {
	doc := figure1()
	e := Assign(doc, 0) // no reserved space anywhere
	book := doc.Root.Children[0]
	// The first book already has children, and later books' children hold
	// the adjacent numbers, so inserting here must trigger a re-encode.
	n := &xmltree.Node{Tag: "title", Text: "extra"}
	renum, err := e.Insert(book, n, len(book.Children))
	if err != nil {
		t.Fatal(err)
	}
	if renum == nil {
		t.Error("expected re-encode with zero gap")
	} else if renum != book && !contains(renum, book) {
		t.Errorf("renumbered root %v does not cover the insert site", renum.Dewey)
	}
	if err := Check(doc); err != nil {
		t.Fatal(err)
	}
}

func contains(a, b *xmltree.Node) bool {
	for v := b; v != nil; v = v.Parent {
		if v == a {
			return true
		}
	}
	return false
}

func TestInsertRejectsSubtrees(t *testing.T) {
	doc := figure1()
	e := Assign(doc, 1)
	sub := &xmltree.Node{Tag: "x", Children: []*xmltree.Node{{Tag: "y"}}}
	if _, err := e.Insert(doc.Root, sub, 0); err == nil {
		t.Error("inserting a subtree must be rejected")
	}
}

func TestRemoveKeepsValidity(t *testing.T) {
	doc := figure1()
	e := Assign(doc, 1)
	e.Remove(doc.Root.Children[1])
	if err := Check(doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Root.Children) != 2 {
		t.Errorf("children after removal = %d", len(doc.Root.Children))
	}
}

// TestRandomMaintenance interleaves random inserts and removals and checks
// validity after every operation.
func TestRandomMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		doc := testutil.RandomDoc(rng, testutil.SmallParams())
		e := Assign(doc, rng.Intn(4))
		for op := 0; op < 30; op++ {
			if rng.Intn(3) == 0 && doc.Len() > 2 {
				victims := doc.Nodes[1:]
				e.Remove(victims[rng.Intn(len(victims))])
			} else {
				parent := doc.Nodes[rng.Intn(doc.Len())]
				n := &xmltree.Node{Tag: "z", Text: "kw0"}
				if _, err := e.Insert(parent, n, rng.Intn(len(parent.Children)+1)); err != nil {
					t.Fatal(err)
				}
			}
			if err := Check(doc); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
		}
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	doc := figure1()
	Assign(doc, 0)
	// Duplicate number within a level.
	l2 := doc.NodesAtLevel(2)
	save := l2[1].JD
	l2[1].JD = l2[0].JD
	if Check(doc) == nil {
		t.Error("duplicate number not detected")
	}
	l2[1].JD = save
	// Order violation across parents.
	l3 := doc.NodesAtLevel(3)
	first, last := l3[0], l3[len(l3)-1]
	first.JD, last.JD = last.JD, first.JD
	if Check(doc) == nil {
		t.Error("order violation not detected")
	}
	first.JD, last.JD = last.JD, first.JD
	// Missing number.
	doc.Root.JD = 0
	if Check(doc) == nil {
		t.Error("missing number not detected")
	}
}
