package invindex

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dewey"
	"repro/internal/occur"
	"repro/internal/testutil"
	"repro/internal/xmltree"
)

func buildSample(t *testing.T) (*xmltree.Document, *Index) {
	t.Helper()
	doc, err := xmltree.Parse(strings.NewReader(
		`<bib>
			<book><title>xml data</title><chapter><sec>xml</sec><sec>data models</sec></chapter></book>
			<book><title>databases</title></book>
			<paper>xml keyword search</paper>
		</bib>`))
	if err != nil {
		t.Fatal(err)
	}
	return doc, Build(occur.Extract(doc))
}

func TestBuild(t *testing.T) {
	doc, idx := buildSample(t)
	if idx.N != doc.Len() || idx.Depth != doc.Depth {
		t.Fatal("metadata wrong")
	}
	xml := idx.Get("xml")
	if xml == nil || xml.Len() != 3 {
		t.Fatalf("|L_xml| = %v", xml)
	}
	for i := 1; i < xml.Len(); i++ {
		if dewey.Compare(xml.Postings[i-1].ID, xml.Postings[i].ID) >= 0 {
			t.Fatal("postings not in document order")
		}
	}
	if idx.Get("absent") != nil {
		t.Error("absent term must return nil")
	}
}

func TestLookups(t *testing.T) {
	_, idx := buildSample(t)
	xml := idx.Get("xml")
	// All xml occurrences: title(1.1.1), sec(1.1.2.1), paper(1.3).
	first := xml.Postings[0].ID
	if i := xml.SearchGE(dewey.ID{1}); i != 0 {
		t.Errorf("SearchGE(root) = %d", i)
	}
	if i := xml.Pred(first); i != -1 {
		t.Errorf("Pred(first) = %d", i)
	}
	if i := xml.Succ(dewey.ID{1, 9}); i != xml.Len() {
		t.Errorf("Succ(beyond) = %d", i)
	}
	// Subtree of book 1 (Dewey 1.1) holds two xml occurrences.
	lo, hi := xml.SubtreeRange(dewey.ID{1, 1})
	if hi-lo != 2 {
		t.Errorf("subtree range of 1.1 = [%d, %d)", lo, hi)
	}
	if !xml.ContainsUnder(dewey.ID{1, 3}) {
		t.Error("paper subtree must contain xml")
	}
	if xml.ContainsUnder(dewey.ID{1, 2}) {
		t.Error("book 2 subtree must not contain xml")
	}
}

func TestMaxScoreUnder(t *testing.T) {
	_, idx := buildSample(t)
	xml := idx.Get("xml")
	root := dewey.ID{1}
	undamped := xml.MaxScoreUnder(root, 1.0)
	damped := xml.MaxScoreUnder(root, 0.5)
	if undamped <= 0 || damped <= 0 {
		t.Fatal("expected positive scores")
	}
	if damped >= undamped {
		t.Errorf("damping must lower the best deep score: %v vs %v", damped, undamped)
	}
	if got := xml.MaxScoreUnder(dewey.ID{1, 2}, 1.0); got != 0 {
		t.Errorf("empty subtree score = %v", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		doc := testutil.RandomDoc(rng, testutil.MediumParams())
		idx := Build(occur.Extract(doc))
		for w, l := range idx.Lists {
			buf := l.AppendEncoded(nil)
			back, n, err := DecodeList(w, buf)
			if err != nil {
				t.Fatalf("decode %q: %v", w, err)
			}
			if n != len(buf) {
				t.Fatalf("decode %q consumed %d of %d", w, n, len(buf))
			}
			if back.Len() != l.Len() {
				t.Fatalf("decode %q: %d postings, want %d", w, back.Len(), l.Len())
			}
			for i := range l.Postings {
				if dewey.Compare(back.Postings[i].ID, l.Postings[i].ID) != 0 ||
					back.Postings[i].Score != l.Postings[i].Score {
					t.Fatalf("decode %q: posting %d mismatch", w, i)
				}
			}
		}
	}
}

func TestDecodeCorruption(t *testing.T) {
	_, idx := buildSample(t)
	l := idx.Get("xml")
	buf := l.AppendEncoded(nil)
	for cut := 0; cut < len(buf); cut++ {
		if lst, _, err := DecodeList("xml", buf[:cut]); err == nil && lst.Len() == l.Len() {
			t.Fatalf("truncation at %d yielded a full list", cut)
		}
	}
	// Header claiming an absurd count must fail fast.
	if _, _, err := DecodeList("xml", []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}); err == nil {
		t.Error("absurd posting count accepted")
	}
}

// TestBTreeStorageAgreesWithLists: every posting must be retrievable from
// the key-per-posting B-tree, and a keyword-prefix scan must enumerate
// exactly that keyword's postings in document order — the access pattern
// the index-based system performs against BerkeleyDB.
func TestBTreeStorageAgreesWithLists(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	doc := testutil.RandomDoc(rng, testutil.MediumParams())
	idx := Build(occur.Extract(doc))
	tree, err := idx.BuildKeyPerPostingBTree()
	if err != nil {
		t.Fatal(err)
	}
	for w, l := range idx.Lists {
		// Point lookups.
		for _, p := range l.Postings {
			if _, ok := tree.Get(OrderedKey(w, p.ID)); !ok {
				t.Fatalf("posting (%q, %v) missing from B-tree", w, p.ID)
			}
		}
		// Prefix scan enumerates the list in order.
		it, err := tree.Seek(OrderedKey(w, dewey.ID{}))
		if err != nil {
			t.Fatal(err)
		}
		prefix := append([]byte(w), 0)
		count := 0
		for {
			k, _, ok := it.Next()
			if !ok || len(k) < len(prefix) || string(k[:len(prefix)]) != string(prefix) {
				break
			}
			if dewey.Compare(l.Postings[count].ID, decodeOrderedKey(k[len(prefix):])) != 0 {
				t.Fatalf("scan order mismatch for %q at %d", w, count)
			}
			count++
		}
		if count != l.Len() {
			t.Fatalf("prefix scan of %q returned %d of %d postings", w, count, l.Len())
		}
	}
}

func decodeOrderedKey(b []byte) dewey.ID {
	id := make(dewey.ID, len(b)/4)
	for i := range id {
		id[i] = uint32(b[4*i])<<24 | uint32(b[4*i+1])<<16 | uint32(b[4*i+2])<<8 | uint32(b[4*i+3])
	}
	return id
}

func TestSizeAccounting(t *testing.T) {
	_, idx := buildSample(t)
	il := idx.EncodedSize()
	bt := idx.KeyPerPostingBTreeSize()
	rd := idx.ScoreOrderBTreeSize()
	if il <= 0 || bt <= 0 || rd <= 0 {
		t.Fatal("sizes must be positive")
	}
	// The key-per-posting B-tree duplicates keywords per posting and must
	// dominate the compressed lists, as in Table I.
	if bt <= il {
		t.Errorf("B-tree size %d not larger than compressed lists %d", bt, il)
	}
}
