// Package invindex implements the document-order Dewey inverted lists that
// the baseline systems (the stack-based algorithm [5], the index-based
// algorithms [6][8], and RDIL [5]) operate on, including the prefix
// compression of [6] used for on-disk storage and the size accounting
// behind Table I.
package invindex

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/btree"
	"repro/internal/dewey"
	"repro/internal/occur"
	"repro/internal/xmltree"
)

// Posting is one keyword occurrence in document order.
type Posting struct {
	ID    dewey.ID
	Node  *xmltree.Node // back-pointer for result materialization; nil when decoded from disk
	Score float32       // local score g(v, w)
}

// List is one keyword's postings in document order.
type List struct {
	Word     string
	Postings []Posting
}

// Len returns the keyword frequency |L|.
func (l *List) Len() int { return len(l.Postings) }

// Index is the full document-order inverted index.
type Index struct {
	N     int // element-node count of the document
	Depth int
	Lists map[string]*List
}

// Build constructs the index from an occurrence map.
func Build(m *occur.Map) *Index {
	idx := &Index{N: m.N, Depth: m.Depth, Lists: make(map[string]*List, len(m.Terms))}
	for term, occs := range m.Terms {
		l := &List{Word: term, Postings: make([]Posting, len(occs))}
		for i, o := range occs {
			l.Postings[i] = Posting{ID: o.Node.Dewey, Node: o.Node, Score: o.Score}
		}
		idx.Lists[term] = l
	}
	return idx
}

// Get returns the list for a term, or nil when the term is unindexed.
func (idx *Index) Get(term string) *List { return idx.Lists[term] }

// --- lookup primitives used by the index-based algorithms ---

// SearchGE returns the index of the first posting whose Dewey ID is >= id.
func (l *List) SearchGE(id dewey.ID) int {
	return sort.Search(len(l.Postings), func(i int) bool {
		return dewey.Compare(l.Postings[i].ID, id) >= 0
	})
}

// Pred returns the index of the last posting strictly before id in document
// order, or -1.
func (l *List) Pred(id dewey.ID) int { return l.SearchGE(id) - 1 }

// Succ returns the index of the first posting at or after id, or len.
func (l *List) Succ(id dewey.ID) int { return l.SearchGE(id) }

// SubtreeRange returns the half-open posting interval [lo, hi) of
// occurrences inside the subtree rooted at the node with Dewey ID u. The
// upper bound comes from the successor prefix (u with its last component
// incremented), which follows every descendant of u in document order.
func (l *List) SubtreeRange(u dewey.ID) (lo, hi int) {
	lo = l.SearchGE(u)
	next := u.Clone()
	next[len(next)-1]++
	hi = l.SearchGE(next)
	return lo, hi
}

// ContainsUnder reports whether the subtree rooted at u contains at least
// one occurrence of the list's keyword.
func (l *List) ContainsUnder(u dewey.ID) bool {
	lo, hi := l.SubtreeRange(u)
	return lo < hi
}

// MaxScoreUnder returns the maximum damped local score of the list's
// occurrences inside the subtree of u (at level len(u)), with damping base
// decay. It returns 0 when the subtree holds no occurrence. The scan is
// linear in the subtree's occurrence count, which is exactly the cost the
// paper attributes to score evaluation in RDIL-style processing.
func (l *List) MaxScoreUnder(u dewey.ID, decay float64) float64 {
	lo, hi := l.SubtreeRange(u)
	best := 0.0
	for i := lo; i < hi; i++ {
		s := float64(l.Postings[i].Score) * math.Pow(decay, float64(len(l.Postings[i].ID)-len(u)))
		if s > best {
			best = s
		}
	}
	return best
}

// --- serialization: the prefix-compression scheme of [6] ---

// AppendEncoded appends the list's on-disk form: postings delta-compressed
// against their predecessor by shared-prefix length, followed by the suffix
// components and the quantized score.
func (l *List) AppendEncoded(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(l.Postings)))
	var prev dewey.ID
	for _, p := range l.Postings {
		shared := dewey.CommonPrefixLen(prev, p.ID)
		buf = binary.AppendUvarint(buf, uint64(shared))
		buf = binary.AppendUvarint(buf, uint64(len(p.ID)-shared))
		for _, c := range p.ID[shared:] {
			buf = binary.AppendUvarint(buf, uint64(c))
		}
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(p.Score))
		prev = p.ID
	}
	return buf
}

// DecodeList decodes one list encoded by AppendEncoded, returning the list
// and the number of bytes consumed. Decoded postings carry no Node
// back-pointer.
func DecodeList(word string, buf []byte) (*List, int, error) {
	n, off := binary.Uvarint(buf)
	if off <= 0 {
		return nil, 0, fmt.Errorf("invindex: truncated list header")
	}
	if n > uint64(len(buf)) {
		return nil, 0, fmt.Errorf("invindex: implausible posting count %d", n)
	}
	l := &List{Word: word, Postings: make([]Posting, 0, n)}
	var prev dewey.ID
	for i := uint64(0); i < n; i++ {
		shared, sz := binary.Uvarint(buf[off:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("invindex: truncated posting %d", i)
		}
		off += sz
		suffix, sz := binary.Uvarint(buf[off:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("invindex: truncated posting %d", i)
		}
		off += sz
		if shared > uint64(len(prev)) || shared+suffix > 1<<16 {
			return nil, 0, fmt.Errorf("invindex: corrupt prefix lengths in posting %d", i)
		}
		id := make(dewey.ID, shared+suffix)
		copy(id, prev[:shared])
		for j := uint64(0); j < suffix; j++ {
			c, sz := binary.Uvarint(buf[off:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("invindex: truncated component in posting %d", i)
			}
			if c > 1<<32-1 {
				return nil, 0, fmt.Errorf("invindex: component overflow in posting %d", i)
			}
			id[shared+uint64(j)] = uint32(c)
			off += sz
		}
		if off+4 > len(buf) {
			return nil, 0, fmt.Errorf("invindex: truncated score in posting %d", i)
		}
		sc := math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		l.Postings = append(l.Postings, Posting{ID: id, Score: sc})
		prev = id
	}
	return l, off, nil
}

// EncodedSize returns the total byte size of the prefix-compressed lists:
// the "stack-based" inverted-list row of Table I.
func (idx *Index) EncodedSize() int64 {
	var total int64
	var buf []byte
	for _, l := range idx.Lists {
		buf = l.AppendEncoded(buf[:0])
		total += int64(len(buf))
	}
	return total
}

// OrderedKey encodes (keyword, Dewey ID) so that lexicographic byte order
// equals (keyword, document) order: the keyword, a NUL separator, then
// each Dewey component as 4 big-endian bytes. This is the key layout of
// the index-based system's single B-tree, where every posting is its own
// key entry.
func OrderedKey(word string, id dewey.ID) []byte {
	key := make([]byte, 0, len(word)+1+4*len(id))
	key = append(key, word...)
	key = append(key, 0)
	for _, c := range id {
		key = binary.BigEndian.AppendUint32(key, c)
	}
	return key
}

// BuildKeyPerPostingBTree materializes the index-based system's storage: a
// single page-based B+-tree whose key entries are whole (keyword, Dewey
// ID) pairs with the quantized score as the value. Its real serialized
// size — key duplication and page structure included — is the Table I
// "index-based" row.
func (idx *Index) BuildKeyPerPostingBTree() (*btree.Tree, error) {
	words := make([]string, 0, len(idx.Lists))
	for w := range idx.Lists {
		words = append(words, w)
	}
	sort.Strings(words)
	b := btree.NewBuilder()
	var val [4]byte
	for _, w := range words {
		for _, p := range idx.Lists[w].Postings {
			binary.LittleEndian.PutUint32(val[:], math.Float32bits(p.Score))
			b.Add(OrderedKey(w, p.ID), val[:])
		}
	}
	img, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return btree.Open(img)
}

// KeyPerPostingBTreeSize is the serialized size of the tree
// BuildKeyPerPostingBTree builds.
func (idx *Index) KeyPerPostingBTreeSize() int64 {
	t, err := idx.BuildKeyPerPostingBTree()
	if err != nil {
		return 0
	}
	return t.Size()
}

// ScoreOrderBTreeSize measures RDIL's additional per-keyword B-trees built
// on top of the document-order lists: one tree per keyword keyed by Dewey
// ID with an 8-byte record pointer per posting.
func (idx *Index) ScoreOrderBTreeSize() int64 {
	var total int64
	var ptr [8]byte
	for _, l := range idx.Lists {
		b := btree.NewBuilder()
		for i, p := range l.Postings {
			binary.BigEndian.PutUint64(ptr[:], uint64(i))
			b.Add(OrderedKey("", p.ID)[1:], ptr[:])
		}
		img, err := b.Finish()
		if err != nil {
			return 0
		}
		total += int64(len(img))
	}
	return total
}
