package dewey

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func id(cs ...uint32) ID { return ID(cs) }

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b ID
		want int
	}{
		{id(1), id(1), 0},
		{id(1), id(1, 1), -1},
		{id(1, 1), id(1), 1},
		{id(1, 1, 2), id(1, 1, 3), -1},
		{id(1, 2), id(1, 1, 9), 1},
		{id(1, 1, 2, 2, 1), id(1, 1, 2, 3, 2), -1},
		{nil, id(1), -1},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Compare(c.b, c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestAncestry(t *testing.T) {
	root := id(1)
	mid := id(1, 1, 2)
	leaf := id(1, 1, 2, 3, 2)
	if !root.IsAncestorOf(mid) || !root.IsAncestorOf(leaf) || !mid.IsAncestorOf(leaf) {
		t.Fatal("expected ancestor relations to hold")
	}
	if mid.IsAncestorOf(mid) {
		t.Error("a node is not its own strict ancestor")
	}
	if !mid.IsAncestorOrSelf(mid) {
		t.Error("IsAncestorOrSelf must accept self")
	}
	if id(1, 2).IsAncestorOf(id(1, 1, 9)) {
		t.Error("sibling branch is not an ancestor")
	}
	if leaf.IsAncestorOf(mid) {
		t.Error("descendant is not an ancestor")
	}
}

func TestLCA(t *testing.T) {
	// The paper's Figure 1 example: lca(1.1.2.2.1, 1.1.2.3.2) = 1.1.2.
	got := LCA(id(1, 1, 2, 2, 1), id(1, 1, 2, 3, 2))
	if Compare(got, id(1, 1, 2)) != 0 {
		t.Errorf("LCA = %v, want 1.1.2", got)
	}
	if got := LCA(id(1), id(1, 5)); Compare(got, id(1)) != 0 {
		t.Errorf("LCA with ancestor = %v, want 1", got)
	}
	if got := LCA(id(2), id(3)); len(got) != 0 {
		t.Errorf("disjoint LCA = %v, want empty", got)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, d := range []ID{id(1), id(1, 1, 2, 3, 2), id(7, 0, 42)} {
		s := d.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if Compare(d, back) != 0 {
			t.Errorf("round trip %v -> %q -> %v", d, s, back)
		}
	}
	for _, bad := range []string{"", "1..2", "1.x", "1.99999999999999"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	ids := []ID{id(1), id(1, 1, 2, 3, 2), id(1<<20, 1, 1<<31-1)}
	var buf []byte
	for _, d := range ids {
		buf = d.AppendBinary(buf)
	}
	off := 0
	for _, want := range ids {
		got, n, err := DecodeBinary(buf[off:])
		if err != nil {
			t.Fatalf("DecodeBinary: %v", err)
		}
		if Compare(got, want) != 0 {
			t.Errorf("decoded %v, want %v", got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Errorf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	d := id(1, 2, 3)
	buf := d.AppendBinary(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeBinary(buf[:cut]); err == nil && cut < len(buf) {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	if _, _, err := DecodeBinary([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Error("garbage header not detected")
	}
}

func TestCompareTotalOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() ID {
		d := make(ID, 1+rng.Intn(6))
		for i := range d {
			d[i] = uint32(1 + rng.Intn(4))
		}
		return d
	}
	// Antisymmetry and transitivity on random triples.
	f := func() bool {
		a, b, c := gen(), gen(), gen()
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLCAIsCommonAncestorProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		// Random pair sharing a random prefix.
		pre := make(ID, rng.Intn(4))
		for i := range pre {
			pre[i] = uint32(1 + rng.Intn(3))
		}
		mk := func() ID {
			d := pre.Clone()
			for i, n := 0, rng.Intn(4); i < n; i++ {
				d = append(d, uint32(1+rng.Intn(3)))
			}
			return d
		}
		a, b := mk(), mk()
		l := LCA(a, b)
		if !l.IsAncestorOrSelf(a) || !l.IsAncestorOrSelf(b) {
			return false
		}
		// No longer common prefix exists.
		n := len(l)
		return n >= len(a) || n >= len(b) || a[n] != b[n]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
