// Package dewey implements Dewey identifiers for XML tree nodes.
//
// A Dewey ID is the vector of sibling ordinals on the path from the root to
// a node (the root itself is the single component 1). Dewey IDs order nodes
// in document order and encode ancestor-descendant relationships as prefix
// relationships, which is the property the stack-based and index-based
// baseline algorithms of the paper rely on.
package dewey

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// ID is a Dewey identifier. Component i is the 1-based ordinal of the node's
// ancestor at depth i+1 among its siblings; the first component is always the
// ordinal of the root (1 for single-document trees).
type ID []uint32

// Clone returns a copy of the ID that does not share backing storage.
func (d ID) Clone() ID {
	c := make(ID, len(d))
	copy(c, d)
	return c
}

// Level reports the tree depth of the node, with the root at level 1.
func (d ID) Level() int { return len(d) }

// Compare orders IDs in document order: ancestors precede descendants and
// siblings order by ordinal. It returns -1, 0, or +1.
func Compare(a, b ID) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// IsAncestorOf reports whether a is a strict ancestor of b.
func (d ID) IsAncestorOf(b ID) bool {
	if len(d) >= len(b) {
		return false
	}
	for i := range d {
		if d[i] != b[i] {
			return false
		}
	}
	return true
}

// IsAncestorOrSelf reports whether a is b or an ancestor of b.
func (d ID) IsAncestorOrSelf(b ID) bool {
	return len(d) == len(b) && Compare(d, b) == 0 || d.IsAncestorOf(b)
}

// LCA returns the lowest common ancestor of a and b, i.e. their longest
// common prefix. The result shares storage with a.
func LCA(a, b ID) ID {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

// CommonPrefixLen returns the length of the longest common prefix of a and b.
func CommonPrefixLen(a, b ID) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// String formats the ID in the dotted notation used by the paper, e.g.
// "1.1.2.3".
func (d ID) String() string {
	if len(d) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, c := range d {
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(strconv.FormatUint(uint64(c), 10))
	}
	return sb.String()
}

// Parse parses the dotted notation produced by String.
func Parse(s string) (ID, error) {
	if s == "" {
		return nil, fmt.Errorf("dewey: empty id")
	}
	parts := strings.Split(s, ".")
	id := make(ID, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dewey: bad component %q: %w", p, err)
		}
		id[i] = uint32(v)
	}
	return id, nil
}

// AppendBinary appends a self-delimiting binary encoding of the ID
// (a varint length followed by varint components) to buf and returns the
// extended slice. It is the on-disk representation used by the
// document-order inverted lists.
func (d ID) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d)))
	for _, c := range d {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	return buf
}

// DecodeBinary decodes an ID encoded by AppendBinary from the front of buf,
// returning the ID and the number of bytes consumed.
func DecodeBinary(buf []byte) (ID, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("dewey: truncated length")
	}
	if n > uint64(len(buf)) { // cheap sanity bound: each component takes >=1 byte
		return nil, 0, fmt.Errorf("dewey: invalid length %d", n)
	}
	off := sz
	id := make(ID, n)
	for i := range id {
		v, sz := binary.Uvarint(buf[off:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("dewey: truncated component %d", i)
		}
		if v > 1<<32-1 {
			return nil, 0, fmt.Errorf("dewey: component %d overflows uint32", i)
		}
		id[i] = uint32(v)
		off += sz
	}
	return id, off, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
