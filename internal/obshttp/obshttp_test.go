package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	xmlsearch "repro"
	"repro/internal/obs"
)

const testXML = `<dblp>
  <conf name="icde">
    <paper><title>top-k keyword search in xml databases</title></paper>
    <paper><title>adaptive query processing</title></paper>
  </conf>
  <conf name="vldb">
    <paper><title>keyword proximity search</title></paper>
    <paper><title>xml storage engines</title></paper>
  </conf>
</dblp>`

// newServer builds an in-memory index with trace capture at threshold 0
// (retain everything) and serves it through the operational handler.
func newServer(t *testing.T) (*xmlsearch.Index, *httptest.Server) {
	t.Helper()
	ix, err := xmlsearch.Open(strings.NewReader(testXML))
	if err != nil {
		t.Fatal(err)
	}
	ix.SetTraceStore(obs.NewTraceStore(64, 8, 0, 1))
	srv := httptest.NewServer(NewHandler(ix, Options{}))
	t.Cleanup(srv.Close)
	return ix, srv
}

func get(t *testing.T, url string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d\nbody: %s", url, resp.StatusCode, wantStatus, body)
	}
	return body
}

func TestMetricsRoutes(t *testing.T) {
	_, srv := newServer(t)
	get(t, srv.URL+"/search?q=keyword+search", http.StatusOK)

	prom := string(get(t, srv.URL+"/metrics", http.StatusOK))
	for _, want := range []string{
		"# TYPE xkw_queries_total counter",
		"xkw_query_duration_seconds_bucket",
		"xkw_snapshot_generation 1",
		"xkw_writer_duration_seconds_count 0",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var snap obs.Snapshot
	if err := json.Unmarshal(get(t, srv.URL+"/metrics.json", http.StatusOK), &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if snap.Gauges.SnapshotGen != 1 {
		t.Errorf("snapshot_gen = %d, want 1", snap.Gauges.SnapshotGen)
	}
	var queries int64
	for _, e := range snap.Engines {
		queries += e.Queries
	}
	if queries == 0 {
		t.Error("/metrics.json reports zero queries after a /search")
	}
}

func TestHealthRoutes(t *testing.T) {
	_, srv := newServer(t)
	var hz map[string]string
	if err := json.Unmarshal(get(t, srv.URL+"/healthz", http.StatusOK), &hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" {
		t.Errorf("healthz status = %q", hz["status"])
	}
	var rz struct {
		Status   string `json:"status"`
		Degraded bool   `json:"degraded"`
		Terms    int    `json:"terms"`
	}
	if err := json.Unmarshal(get(t, srv.URL+"/readyz", http.StatusOK), &rz); err != nil {
		t.Fatal(err)
	}
	if rz.Status != "ready" || rz.Degraded {
		t.Errorf("readyz = %+v on a pristine index", rz)
	}
	if rz.Terms == 0 {
		t.Error("readyz reports zero terms")
	}
}

func TestSlowLogRoute(t *testing.T) {
	ix, srv := newServer(t)
	ix.SetSlowQueryThreshold(time.Nanosecond) // everything is slow
	get(t, srv.URL+"/search?q=xml", http.StatusOK)
	body := string(get(t, srv.URL+"/slow", http.StatusOK))
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("slow log empty after a slow query")
	}
	var sq obs.SlowQuery
	if err := json.Unmarshal([]byte(lines[0]), &sq); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, lines[0])
	}
	if sq.Query != "xml" {
		t.Errorf("slow query = %q, want \"xml\"", sq.Query)
	}
}

func TestSearchRouteValidation(t *testing.T) {
	_, srv := newServer(t)
	get(t, srv.URL+"/search", http.StatusBadRequest)                    // no q
	get(t, srv.URL+"/search?q=xml&k=frog", http.StatusBadRequest)       // bad k
	get(t, srv.URL+"/search?q=xml&engine=turbo", http.StatusBadRequest) // bad engine
	get(t, srv.URL+"/search?q=xml&sem=wrong", http.StatusBadRequest)    // bad sem
	get(t, srv.URL+"/search?q=%2C%2C%2C", http.StatusBadRequest)        // no keywords
	get(t, srv.URL+"/metrics", http.StatusOK)                           // method filter sanity
	resp, err := http.Post(srv.URL+"/search?q=xml", "text/plain", nil)  // POST rejected
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /search = %d, want 405", resp.StatusCode)
	}
}

func TestSearchEngines(t *testing.T) {
	_, srv := newServer(t)
	for _, eng := range []string{"", "join", "topk", "stack", "ixlookup", "rdil", "hybrid"} {
		url := srv.URL + "/search?q=keyword+search&k=3"
		if eng != "" {
			url += "&engine=" + eng
		}
		var out struct {
			Engine  string             `json:"engine"`
			Results []xmlsearch.Result `json:"results"`
			TraceID uint64             `json:"trace_id"`
		}
		if err := json.Unmarshal(get(t, url, http.StatusOK), &out); err != nil {
			t.Fatalf("engine %q: %v", eng, err)
		}
		if len(out.Results) == 0 {
			t.Errorf("engine %q returned no results", eng)
		}
		if out.TraceID == 0 {
			t.Errorf("engine %q: trace not captured under threshold 0", eng)
		}
	}
	// k=0 requests a complete evaluation.
	var out struct {
		K       int                `json:"k"`
		Results []xmlsearch.Result `json:"results"`
	}
	if err := json.Unmarshal(get(t, srv.URL+"/search?q=keyword+search&k=0", http.StatusOK), &out); err != nil {
		t.Fatal(err)
	}
	if out.K != 0 || len(out.Results) == 0 {
		t.Errorf("complete evaluation: k=%d results=%d", out.K, len(out.Results))
	}
}

func TestTraceRoutes(t *testing.T) {
	_, srv := newServer(t)
	var sr struct {
		TraceID uint64 `json:"trace_id"`
	}
	if err := json.Unmarshal(get(t, srv.URL+"/search?q=adaptive+query", http.StatusOK), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.TraceID == 0 {
		t.Fatal("search trace not retained under threshold 0")
	}

	var sums []obs.TraceSummary
	if err := json.Unmarshal(get(t, srv.URL+"/traces", http.StatusOK), &sums); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range sums {
		if s.ID == sr.TraceID {
			found = true
			if s.Query != "adaptive query" {
				t.Errorf("summary query = %q", s.Query)
			}
		}
	}
	if !found {
		t.Fatalf("/traces does not list trace %d", sr.TraceID)
	}

	var st obs.StoredTrace
	if err := json.Unmarshal(get(t, srv.URL+"/traces/"+utoa(sr.TraceID), http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Spans) == 0 {
		t.Error("stored trace has no spans")
	}
	if st.Kind != obs.KindSlow {
		t.Errorf("kind = %q, want %q under threshold 0", st.Kind, obs.KindSlow)
	}

	get(t, srv.URL+"/traces/999999", http.StatusNotFound)
	get(t, srv.URL+"/traces/frog", http.StatusBadRequest)
}

func TestTraceRoutesWithoutStore(t *testing.T) {
	ix, err := xmlsearch.Open(strings.NewReader(testXML))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(ix, Options{}))
	defer srv.Close()
	get(t, srv.URL+"/traces", http.StatusNotFound)
	get(t, srv.URL+"/traces/1", http.StatusNotFound)
	get(t, srv.URL+"/search?q=xml", http.StatusOK) // queries still work
}

func TestPprofRoutes(t *testing.T) {
	_, srv := newServer(t)
	body := string(get(t, srv.URL+"/debug/pprof/", http.StatusOK))
	if !strings.Contains(body, "goroutine") {
		t.Error("pprof index does not list the goroutine profile")
	}
	get(t, srv.URL+"/debug/pprof/goroutine?debug=1", http.StatusOK)
	get(t, srv.URL+"/debug/pprof/cmdline", http.StatusOK)
}

// TestServeOnDiskIndexEndToEnd is the e2e path of the operational plane:
// save an index to disk, load it back (disk-backed column store), serve
// it, drive a query through /search, and follow the returned trace ID
// through /traces and /traces/{id} to the span tree — with -slow 0
// semantics (threshold 0) forcing every trace to be retained.
func TestServeOnDiskIndexEndToEnd(t *testing.T) {
	src, err := xmlsearch.Open(strings.NewReader(testXML))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := src.Save(dir); err != nil {
		t.Fatal(err)
	}
	ix, err := xmlsearch.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	ix.SetSlowQueryThreshold(time.Nanosecond)
	ix.SetTraceStore(obs.NewTraceStore(obs.DefaultKeepTraces, obs.DefaultSampleTraces, 0, 1))
	srv := httptest.NewServer(NewHandler(ix, Options{}))
	defer srv.Close()

	// Readiness reflects the on-disk index's self-verification.
	var rz struct {
		Status string `json:"status"`
		Format int    `json:"format"`
	}
	if err := json.Unmarshal(get(t, srv.URL+"/readyz", http.StatusOK), &rz); err != nil {
		t.Fatal(err)
	}
	if rz.Status != "ready" {
		t.Fatalf("on-disk index not ready: %+v", rz)
	}
	if rz.Format != 2 {
		t.Errorf("format = %d, want 2 (checksummed)", rz.Format)
	}

	// Query, then find the query's own trace through the store.
	var sr struct {
		TraceID uint64             `json:"trace_id"`
		Results []xmlsearch.Result `json:"results"`
	}
	if err := json.Unmarshal(get(t, srv.URL+"/search?q=keyword+search&k=2&engine=topk", http.StatusOK), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) == 0 {
		t.Fatal("no results from the on-disk index")
	}
	if sr.TraceID == 0 {
		t.Fatal("trace not captured")
	}
	var st obs.StoredTrace
	if err := json.Unmarshal(get(t, srv.URL+"/traces/"+utoa(sr.TraceID), http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Query != "keyword search" || st.Engine != "topk" || len(st.Spans) == 0 {
		t.Errorf("stored trace = engine %q query %q spans %d", st.Engine, st.Query, len(st.Spans))
	}

	// The slow log saw it too, and the metrics exposition still parses.
	if !strings.Contains(string(get(t, srv.URL+"/slow", http.StatusOK)), "keyword search") {
		t.Error("slow log missing the query")
	}
	if !strings.Contains(string(get(t, srv.URL+"/metrics", http.StatusOK)), "xkw_store_list_decodes_total") {
		t.Error("metrics exposition missing store counters")
	}
}

func utoa(u uint64) string { return strconv.FormatUint(u, 10) }
