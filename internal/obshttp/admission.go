package obshttp

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Admission control and graceful drain for the /search endpoint. The
// policy is a bounded in-flight semaphore plus a short wait queue: up to
// MaxInflight queries execute concurrently, up to QueueLen more wait for
// a slot, and everything beyond that is shed immediately with 503 and
// Retry-After — a full queue means the server is already a queue-length
// behind, so making the client wait longer only converts overload into
// latency for everyone. Draining flips the policy to shed-everything-new
// while in-flight queries run out their grace period, after which the
// drain context hard-cancels them (CapPartial engines then return their
// certified partial answers).

// admitResult is the outcome of one admission attempt.
type admitResult int

const (
	admitOK   admitResult = iota
	admitShed             // no capacity, or draining: 503 + Retry-After
	admitGone             // the client disconnected while queued
)

type admission struct {
	serving *obs.ServingCounters

	sem   chan struct{} // in-flight slots; nil = no admission control
	queue chan struct{} // wait-queue slots; nil = shed on a full sem

	// Completed-query latency ring, feeding the shed path's Retry-After
	// estimate: the median over the last latRingSize completions
	// approximates how long one queued slot takes to drain.
	latMu   sync.Mutex
	latRing [latRingSize]int64 // nanoseconds; zero = unfilled slot
	latN    int                // completions recorded (caps the ring scan)

	draining     atomic.Bool
	drainOnce    sync.Once
	drainStarted chan struct{} // closed when draining begins
	// drainCtx is cancelled at the drain hard deadline; every admitted
	// query's context is derived from it, so queries still running when
	// the grace period ends abort (and, with partial=1, settle).
	drainCtx    context.Context
	drainCancel context.CancelFunc
}

func newAdmission(maxInflight, queueLen int, sc *obs.ServingCounters) *admission {
	a := &admission{serving: sc, drainStarted: make(chan struct{})}
	a.drainCtx, a.drainCancel = context.WithCancel(context.Background())
	if maxInflight > 0 {
		a.sem = make(chan struct{}, maxInflight)
		if queueLen > 0 {
			a.queue = make(chan struct{}, queueLen)
		}
	}
	return a
}

const (
	// latRingSize bounds the completed-query latency window.
	latRingSize = 64
	// defaultLatency stands in for the observed p50 until enough queries
	// have completed to estimate one.
	defaultLatency = 100 * time.Millisecond
	// maxRetryAfter caps the advertised backoff; a drain also advertises
	// this, since a draining server will never serve the retry itself.
	maxRetryAfter = 60
)

// noteLatency records one completed query's wall time into the ring.
func (a *admission) noteLatency(d time.Duration) {
	if d <= 0 {
		return
	}
	a.latMu.Lock()
	a.latRing[a.latN%latRingSize] = int64(d)
	a.latN++
	a.latMu.Unlock()
}

// latencyP50 is the median over the recorded window (defaultLatency
// until anything has been recorded).
func (a *admission) latencyP50() time.Duration {
	a.latMu.Lock()
	defer a.latMu.Unlock()
	n := a.latN
	if n > latRingSize {
		n = latRingSize
	}
	if n == 0 {
		return defaultLatency
	}
	vals := make([]int64, n)
	copy(vals, a.latRing[:n])
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return time.Duration(vals[(n-1)/2])
}

// retryAfterSeconds derives the Retry-After a shed response advertises:
// the time for the current queue plus one slot to drain at the observed
// median query latency, in whole seconds, clamped to [1, maxRetryAfter].
// A longer queue or slower queries push the advertised backoff out, so
// clients spread their retries instead of stampeding back while the
// server is still behind; draining advertises the cap outright.
func (a *admission) retryAfterSeconds() int {
	if a.draining.Load() {
		return maxRetryAfter
	}
	queued := 0
	if a.queue != nil {
		queued = len(a.queue)
	}
	drain := time.Duration(queued+1) * a.latencyP50()
	secs := int((drain + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfter {
		secs = maxRetryAfter
	}
	return secs
}

// admit runs the policy for one request. An admitOK result must be paired
// with exactly one release call.
func (a *admission) admit(ctx context.Context) admitResult {
	if a.draining.Load() {
		a.serving.AdmissionRejected.Inc()
		return admitShed
	}
	if a.sem == nil {
		a.serving.InflightGauge.Add(1)
		return admitOK
	}
	select {
	case a.sem <- struct{}{}:
		a.serving.InflightGauge.Add(1)
		return admitOK
	default:
	}
	if a.queue == nil {
		a.serving.AdmissionRejected.Inc()
		return admitShed
	}
	select {
	case a.queue <- struct{}{}:
	default:
		a.serving.AdmissionRejected.Inc()
		return admitShed
	}
	a.serving.AdmissionEnqueued.Inc()
	defer func() { <-a.queue }()
	select {
	case a.sem <- struct{}{}:
		if a.draining.Load() {
			// Draining began while this request was queued; hand the slot
			// back rather than start new work on a stopping server.
			<-a.sem
			a.serving.AdmissionRejected.Inc()
			return admitShed
		}
		a.serving.InflightGauge.Add(1)
		return admitOK
	case <-ctx.Done():
		return admitGone
	case <-a.drainStarted:
		a.serving.AdmissionRejected.Inc()
		return admitShed
	}
}

// release returns an admitted query's in-flight slot.
func (a *admission) release() {
	a.serving.InflightGauge.Add(-1)
	if a.sem != nil {
		<-a.sem
	}
}

// startDrain flips the server into draining (idempotent): new queries
// shed, queued waiters wake and shed, and after grace the drain context
// cancels whatever is still running. grace <= 0 cancels immediately.
func (a *admission) startDrain(grace time.Duration) {
	a.drainOnce.Do(func() {
		a.draining.Store(true)
		a.serving.Draining.Add(1)
		close(a.drainStarted)
		if grace > 0 {
			time.AfterFunc(grace, a.drainCancel)
		} else {
			a.drainCancel()
		}
	})
}

// queryContext derives the context an admitted query runs under: the
// request's own (client disconnect cancels), additionally cancelled when
// the drain hard deadline fires.
func (a *admission) queryContext(ctx context.Context) (context.Context, context.CancelFunc) {
	qctx, cancel := context.WithCancel(ctx)
	stop := context.AfterFunc(a.drainCtx, cancel)
	return qctx, func() { stop(); cancel() }
}
