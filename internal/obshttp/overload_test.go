package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	xmlsearch "repro"
	"repro/internal/obs"
)

// Overload-protection tests: the error-taxonomy status mapping, the
// admission policy, the -race overload hammer, and the graceful-drain
// end-to-end flow.

// resetHook installs a testHookQueryStart for one test.
func resetHook(t *testing.T, hook func(ctx context.Context)) {
	t.Helper()
	testHookQueryStart = hook
	t.Cleanup(func() { testHookQueryStart = nil })
}

func getResp(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestSearchStatusMapping drives each abort class through /search and
// asserts the taxonomy: deadline→504, budget-without-partial→422,
// budget-with-partial→200 (certified partial), bad parameters→400.
func TestSearchStatusMapping(t *testing.T) {
	_, srv := newServer(t)
	get(t, srv.URL+"/search?q=keyword+search&timeout=1ns", http.StatusGatewayTimeout)
	get(t, srv.URL+"/search?q=keyword+search&maxcand=1", http.StatusUnprocessableEntity)
	get(t, srv.URL+"/search?q=keyword+search&maxbytes=1", http.StatusUnprocessableEntity)

	var out struct {
		Partial     bool               `json:"partial"`
		UnseenBound float64            `json:"unseen_bound"`
		Results     []xmlsearch.Result `json:"results"`
		TraceID     uint64             `json:"trace_id"`
	}
	if err := json.Unmarshal(get(t, srv.URL+"/search?q=keyword+search&maxcand=1&partial=1", http.StatusOK), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Partial {
		t.Error("budget trip with partial=1 not reported as partial")
	}
	for _, r := range out.Results {
		if r.Exact && r.Score < out.UnseenBound {
			t.Errorf("result %s exact below the unseen bound %v", r.Dewey, out.UnseenBound)
		}
	}
	if out.TraceID == 0 {
		t.Error("partial query not retained by the trace store")
	}

	// A complete answer must not be marked partial. (Fresh struct: the
	// field is omitempty, so unmarshal would keep the stale true.)
	out.Partial = false
	if err := json.Unmarshal(get(t, srv.URL+"/search?q=keyword+search&partial=1", http.StatusOK), &out); err != nil {
		t.Fatal(err)
	}
	if out.Partial {
		t.Error("complete answer reported partial")
	}

	get(t, srv.URL+"/search?q=xml&timeout=frog", http.StatusBadRequest)
	get(t, srv.URL+"/search?q=xml&timeout=-1s", http.StatusBadRequest)
	get(t, srv.URL+"/search?q=xml&maxbytes=-1", http.StatusBadRequest)
	get(t, srv.URL+"/search?q=xml&maxcand=frog", http.StatusBadRequest)
	get(t, srv.URL+"/search?q=xml&partial=frog", http.StatusBadRequest)
}

// TestSearchStatusFunc pins the error→status map, including the
// cancellation class that is impractical to provoke over a real socket.
func TestSearchStatusFunc(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{xmlsearch.ErrNoKeywords, http.StatusBadRequest},
		{fmt.Errorf("wrap: %w", xmlsearch.ErrDeadlineExceeded), http.StatusGatewayTimeout},
		{fmt.Errorf("wrap: %w", xmlsearch.ErrCancelled), StatusClientClosedRequest},
		{fmt.Errorf("wrap: %w", xmlsearch.ErrBudgetExceeded), http.StatusUnprocessableEntity},
		{fmt.Errorf("anything else"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := searchStatus(c.err); got != c.want {
			t.Errorf("searchStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func newTestAdmission(maxInflight, queueLen int) *admission {
	return newAdmission(maxInflight, queueLen, &obs.NewMetrics().Serving)
}

// TestAdmissionPolicy exercises the semaphore+queue state machine
// directly: capacity, shedding, queue handoff, and release accounting.
func TestAdmissionPolicy(t *testing.T) {
	ctx := context.Background()

	// No limit configured: everything admits.
	a := newTestAdmission(0, 0)
	for i := 0; i < 100; i++ {
		if got := a.admit(ctx); got != admitOK {
			t.Fatalf("unlimited admission refused: %v", got)
		}
	}

	// Limit 1, no queue: second concurrent request sheds.
	a = newTestAdmission(1, 0)
	if a.admit(ctx) != admitOK {
		t.Fatal("first admit refused")
	}
	if a.admit(ctx) != admitShed {
		t.Fatal("over-capacity admit not shed")
	}
	a.release()
	if a.admit(ctx) != admitOK {
		t.Fatal("admit after release refused")
	}
	a.release()

	// Limit 1 + queue 1: one waits, the next sheds, release hands over.
	a = newTestAdmission(1, 1)
	if a.admit(ctx) != admitOK {
		t.Fatal("first admit refused")
	}
	queued := make(chan admitResult, 1)
	go func() { queued <- a.admit(ctx) }()
	waitForEnqueue(t, a)
	if got := a.admit(ctx); got != admitShed {
		t.Fatalf("third request = %v, want shed (queue full)", got)
	}
	a.release()
	if got := <-queued; got != admitOK {
		t.Fatalf("queued request = %v, want OK after release", got)
	}
	a.release()

	// A queued waiter whose client disconnects reports gone.
	a = newTestAdmission(1, 1)
	a.admit(ctx)
	cctx, cancel := context.WithCancel(ctx)
	go func() { queued <- a.admit(cctx) }()
	waitForEnqueue(t, a)
	cancel()
	if got := <-queued; got != admitGone {
		t.Fatalf("cancelled queued request = %v, want gone", got)
	}
	a.release()
}

// waitForEnqueue blocks until the admission queue holds one waiter.
func waitForEnqueue(t *testing.T, a *admission) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(a.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionDrain: draining sheds new arrivals, wakes queued waiters
// with a shed, and cancels the drain context at the grace deadline.
func TestAdmissionDrain(t *testing.T) {
	ctx := context.Background()
	a := newTestAdmission(1, 4)
	if a.admit(ctx) != admitOK {
		t.Fatal("first admit refused")
	}
	queued := make(chan admitResult, 1)
	go func() { queued <- a.admit(ctx) }()
	waitForEnqueue(t, a)

	a.startDrain(50 * time.Millisecond)
	a.startDrain(time.Hour) // idempotent: the first grace stands
	if got := <-queued; got != admitShed {
		t.Fatalf("queued waiter at drain = %v, want shed", got)
	}
	if a.admit(ctx) != admitShed {
		t.Fatal("post-drain admit not shed")
	}
	qctx, cancel := a.queryContext(ctx)
	defer cancel()
	select {
	case <-qctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("drain grace deadline never cancelled the query context")
	}
	a.release()
}

// hammerRequest builds one randomized hammer query: tight or absent
// deadlines and budgets, sometimes opting into partial answers.
func hammerRequest(rng *rand.Rand, base string) string {
	url := base + "/search?q=keyword+search&k=3"
	switch rng.Intn(4) {
	case 0:
		url += fmt.Sprintf("&timeout=%dus", 1+rng.Intn(500))
	case 1:
		url += fmt.Sprintf("&maxcand=%d", 1+rng.Intn(8))
	case 2:
		url += fmt.Sprintf("&maxbytes=%d", 1+rng.Intn(256))
	}
	if rng.Intn(2) == 0 {
		url += "&partial=1"
	}
	return url
}

// TestOverloadHammer is the -race overload test: 2x max-inflight workers
// firing randomized tight-deadline/budget queries against a concurrently
// mutating index. Asserts every response is from the expected taxonomy,
// every shed carries Retry-After, and afterwards: no leaked goroutines,
// no stuck snapshot pins, and decoded-cache occupancy at steady state.
func TestOverloadHammer(t *testing.T) {
	ix, err := xmlsearch.Open(strings.NewReader(testXML))
	if err != nil {
		t.Fatal(err)
	}
	ix.SetTraceStore(obs.NewTraceStore(64, 8, 0, 1))
	const maxInflight, queueLen = 4, 2
	h := NewHandler(ix, Options{MaxInflight: maxInflight, QueueLen: queueLen})
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Uncontended baseline for the admitted-latency comparison.
	client := srv.Client()
	warm := func() time.Duration {
		start := time.Now()
		resp, err := client.Get(srv.URL + "/search?q=keyword+search&k=3")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return time.Since(start)
	}
	warm()
	var base []time.Duration
	for i := 0; i < 50; i++ {
		base = append(base, warm())
	}
	sort.Slice(base, func(i, j int) bool { return base[i] < base[j] })
	uncontendedP99 := base[len(base)-1]

	steadyCache := ix.Metrics().Snapshot().Gauges.CacheBytes
	before := runtime.NumGoroutine()

	// Writer goroutine: mutate the index for the hammer's whole duration.
	stopWriter := make(chan struct{})
	var writerDone sync.WaitGroup
	writerDone.Add(1)
	go func() {
		defer writerDone.Done()
		for i := 0; ; i++ {
			select {
			case <-stopWriter:
				return
			default:
			}
			d, err := ix.InsertElement("1.1", 0, "note", "keyword churn")
			if err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if err := ix.RemoveElement(d); err != nil {
				t.Errorf("remove %s: %v", d, err)
				return
			}
		}
	}()

	const workers = 2 * maxInflight
	var (
		mu        sync.Mutex
		admitted  []time.Duration
		shed      int
		badStatus []string
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				url := hammerRequest(rng, srv.URL)
				start := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					t.Errorf("GET %s: %v", url, err)
					return
				}
				d := time.Since(start)
				retryAfter := resp.Header.Get("Retry-After")
				resp.Body.Close()
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					admitted = append(admitted, d)
				case http.StatusServiceUnavailable:
					shed++
					if retryAfter == "" {
						badStatus = append(badStatus, "503 without Retry-After")
					}
				case http.StatusGatewayTimeout, http.StatusUnprocessableEntity, StatusClientClosedRequest:
					// Deadline, budget, or drain-cancel classes: expected.
				default:
					badStatus = append(badStatus, fmt.Sprintf("%s -> %d", url, resp.StatusCode))
				}
				mu.Unlock()
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	close(stopWriter)
	writerDone.Wait()

	if len(badStatus) > 0 {
		t.Fatalf("unexpected responses: %v", badStatus)
	}
	if len(admitted) == 0 {
		t.Fatal("hammer admitted nothing")
	}
	t.Logf("hammer: %d admitted, %d shed, rejected counter %d",
		len(admitted), shed, ix.Metrics().Snapshot().Serving.AdmissionRejected)

	// Admitted-latency check. The 2x criterion assumes the admitted
	// queries get real CPU; a single-core -race runner serializes them, so
	// a floor keeps the check meaningful without false alarms.
	sort.Slice(admitted, func(i, j int) bool { return admitted[i] < admitted[j] })
	p99 := admitted[(len(admitted)-1)*99/100]
	limit := 2 * uncontendedP99
	if floor := 250 * time.Millisecond; limit < floor {
		limit = floor
	}
	if p99 > limit {
		t.Errorf("admitted p99 %v exceeds %v (uncontended p99 %v)", p99, limit, uncontendedP99)
	}

	// Steady state: no stuck pins, goroutines settle, cache bytes return
	// to their warmed value.
	client.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines did not settle: %d before hammer, %d after", before, n)
	}
	if pins := ix.Metrics().Snapshot().Gauges.PinnedQueries; pins != 0 {
		t.Errorf("snapshot pins stuck at %d", pins)
	}
	if inflight := ix.Metrics().Snapshot().Serving.Inflight; inflight != 0 {
		t.Errorf("inflight gauge stuck at %d", inflight)
	}
	warm() // one clean query repopulates anything the mutations dirtied
	if got := ix.Metrics().Snapshot().Gauges.CacheBytes; got > steadyCache*2+4096 {
		t.Errorf("cache bytes %d far above steady state %d", got, steadyCache)
	}
}

// TestDrainE2E is the graceful-shutdown flow: with a query in flight,
// StartDrain must flip /readyz to 503 and shed new queries immediately,
// while the in-flight query runs to completion within the grace period.
func TestDrainE2E(t *testing.T) {
	ix, err := xmlsearch.Open(strings.NewReader(testXML))
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(ix, Options{MaxInflight: 2, QueueLen: 1})
	srv := httptest.NewServer(h)
	defer srv.Close()

	started := make(chan struct{}, 8)
	release := make(chan struct{})
	var gate atomic.Bool
	gate.Store(true)
	resetHook(t, func(ctx context.Context) {
		if !gate.Load() {
			return
		}
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	})

	// Open the slow in-flight query.
	slow := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/search?q=keyword+search&k=3")
		if err != nil {
			t.Errorf("slow query: %v", err)
			slow <- nil
			return
		}
		slow <- resp
	}()
	<-started
	gate.Store(false) // later queries run unhooked

	h.StartDrain(5 * time.Second)
	if !h.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}

	// Readiness flips before anything else: load balancers must stop
	// routing here while in-flight work finishes.
	if resp := getResp(t, srv.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", resp.StatusCode)
	}
	// New queries shed with Retry-After.
	resp := getResp(t, srv.URL+"/search?q=xml")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new query during drain = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	// Liveness and metrics stay up throughout the drain.
	if resp := getResp(t, srv.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz during drain = %d", resp.StatusCode)
	}

	// The in-flight query completes normally within the grace period.
	close(release)
	r := <-slow
	if r == nil {
		t.Fatal("slow query failed")
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("in-flight query during drain = %d, want 200", r.StatusCode)
	}
	if ix.Metrics().Snapshot().Serving.Draining != 1 {
		t.Error("draining gauge not set")
	}
}

// TestDrainDeadlineCancelsInflight: when the grace period ends before an
// in-flight query finishes, the drain context aborts it — the client gets
// a prompt classified response instead of a hang.
func TestDrainDeadlineCancelsInflight(t *testing.T) {
	ix, err := xmlsearch.Open(strings.NewReader(testXML))
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(ix, Options{MaxInflight: 2, QueueLen: 1})
	srv := httptest.NewServer(h)
	defer srv.Close()

	started := make(chan struct{}, 1)
	resetHook(t, func(ctx context.Context) {
		select {
		case started <- struct{}{}:
		default:
			return // only the first query blocks
		}
		<-ctx.Done() // woken only by the drain hard deadline (or disconnect)
	})

	slow := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/search?q=keyword+search&k=3&partial=1")
		if err != nil {
			t.Errorf("slow query: %v", err)
			slow <- nil
			return
		}
		slow <- resp
	}()
	<-started

	h.StartDrain(30 * time.Millisecond)
	select {
	case r := <-slow:
		if r == nil {
			t.Fatal("slow query transport error")
		}
		defer r.Body.Close()
		// The drain kill lands as a cancellation: either before evaluation
		// (classified 499) or mid-evaluation with partial=1 settling into a
		// certified-partial 200. Both are prompt, clean exits.
		if r.StatusCode != StatusClientClosedRequest && r.StatusCode != http.StatusOK {
			t.Fatalf("drain-killed query = %d, want 499 or certified-partial 200", r.StatusCode)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain deadline did not abort the in-flight query")
	}
}
