// Package obshttp is the operational plane of a serving index: one
// http.Handler exposing Prometheus and JSON metrics, liveness/readiness
// probes backed by the storage layer's self-verification, the slow-query
// log, the tail-sampled trace store, the Go runtime profiles, and a
// query endpoint whose every execution is traced and offered to the
// trace store — so an operator can go from "p99 spiked" to the span
// tree of an actual slow query without redeploying.
//
// The handler holds only a Server — the observability-and-query slice
// of the facade that both *xmlsearch.Index and *xmlsearch.Sharded
// implement; all state it serves is the index's own observability
// surface (Metrics, Health, SlowQueries, TraceStore). It is safe for
// concurrent use and adds no locks of its own beyond what those
// surfaces already guarantee.
package obshttp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	xmlsearch "repro"
	"repro/internal/obs"
	"repro/internal/qlog"
)

// StatusClientClosedRequest is the nginx-convention status for a query
// aborted because the client disconnected (there is no standard code;
// 499 is the de-facto one).
const StatusClientClosedRequest = 499

// Options configures the handler: admission control and default query
// limits for /search, plus the process-global profiling knobs applied at
// construction. The zero value serves without admission control or
// default deadline (every query runs to completion unless the request
// asks otherwise).
type Options struct {
	// MaxInflight bounds the number of /search queries executing
	// concurrently; 0 disables admission control entirely.
	MaxInflight int
	// QueueLen bounds how many queries may wait for an in-flight slot
	// before new arrivals are shed with 503 + Retry-After; 0 sheds as soon
	// as MaxInflight is reached. Ignored when MaxInflight is 0.
	QueueLen int
	// DefaultTimeout is the per-query deadline applied when the request
	// carries no timeout parameter; 0 means no default deadline.
	DefaultTimeout time.Duration

	// MutexProfileFraction samples 1/n of mutex contention events
	// (runtime.SetMutexProfileFraction). 0 leaves the current setting.
	MutexProfileFraction int
	// BlockProfileRate samples blocking events lasting at least rate
	// nanoseconds (runtime.SetBlockProfileRate). 0 leaves the current
	// setting.
	BlockProfileRate int
}

// Server is the slice of the search facade the handler serves: the
// observability surface plus the traced query entry points. Both
// *xmlsearch.Index and *xmlsearch.Sharded satisfy it, so one
// operational plane fronts either layout.
type Server interface {
	Metrics() *obs.Metrics
	Stats() obs.Snapshot
	Health() xmlsearch.Health
	SlowQueries() []obs.SlowQuery
	TraceStore() *obs.TraceStore
	QueryLog() *qlog.Recorder
	SearchTraced(ctx context.Context, query string, opt xmlsearch.SearchOptions) ([]xmlsearch.Result, *xmlsearch.QueryStats, error)
	TopKTraced(ctx context.Context, query string, k int, opt xmlsearch.SearchOptions) ([]xmlsearch.Result, *xmlsearch.QueryStats, error)
	Plan(query string, k int, opt xmlsearch.SearchOptions) (*xmlsearch.QueryPlan, error)
}

// shardIntrospector is the optional extension a sharded index adds on
// top of Server: the per-shard routing table GET /shards serves.
type shardIntrospector interface {
	Shards() int
	ShardInfo() []xmlsearch.ShardInfo
}

// Handler serves the operational routes over one index. Beyond
// http.Handler it exposes the drain lifecycle: StartDrain flips /readyz
// to 503 and sheds new queries while in-flight ones run out the grace
// period.
type Handler struct {
	ix             Server
	adm            *admission
	defaultTimeout time.Duration
	mux            *http.ServeMux
}

// ServeHTTP dispatches to the handler's routes.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// StartDrain begins a graceful drain (idempotent): /readyz flips to 503
// so load balancers stop routing here, new /search queries are shed with
// 503, queued ones wake and shed, and queries still running when grace
// elapses are cancelled — with partial=1 they settle into certified
// partial answers instead of errors. The caller then stops the listener
// (http.Server.Shutdown) to wait the drain out.
func (h *Handler) StartDrain(grace time.Duration) { h.adm.startDrain(grace) }

// Draining reports whether StartDrain has been called.
func (h *Handler) Draining() bool { return h.adm.draining.Load() }

// testHookQueryStart, when non-nil, runs inside /search after admission
// with the query's derived context — the drain and overload tests use it
// to hold a query in flight deterministically.
var testHookQueryStart func(ctx context.Context)

// NewHandler builds the operational-plane handler for ix. Routes:
//
//	GET /                  route directory (text)
//	GET /metrics           Prometheus text exposition (format 0.0.4)
//	GET /metrics.json      full metrics snapshot as JSON (incl. exemplars)
//	GET /healthz           liveness: 200 once the process serves
//	GET /readyz            readiness: storage Health(); 503 on file damage
//	GET /slow              slow-query log, NDJSON, oldest first
//	GET /qlog              flight-recorder recent ring, NDJSON, oldest first
//	GET /version           build identity + process runtime state (JSON)
//	GET /traces            tail-sampled trace summaries, newest first
//	GET /traces/{id}       one retained trace: full span tree + events
//	GET /search            run a query (q, k, engine, sem, timeout,
//	                       partial, maxbytes, maxcand) traced
//	GET /shards            per-shard routing table (404 when unsharded)
//	GET /debug/pprof/...   Go runtime profiles
//
// Queries through /search honor the request context, so a disconnected
// client cancels the evaluation, and the cancellation itself is a
// tail-sampling "keep" signal. With Options.MaxInflight set, /search is
// behind admission control: queries beyond the in-flight bound wait in a
// short queue, and beyond that are shed with 503 + Retry-After derived
// from the live queue depth and observed query latency.
func NewHandler(ix Server, opt Options) *Handler {
	if opt.MutexProfileFraction > 0 {
		runtime.SetMutexProfileFraction(opt.MutexProfileFraction)
	}
	if opt.BlockProfileRate > 0 {
		runtime.SetBlockProfileRate(opt.BlockProfileRate)
	}
	h := &Handler{
		ix:             ix,
		adm:            newAdmission(opt.MaxInflight, opt.QueueLen, &ix.Metrics().Serving),
		defaultTimeout: opt.DefaultTimeout,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", h.root)
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("GET /metrics.json", h.metricsJSON)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /readyz", h.readyz)
	mux.HandleFunc("GET /slow", h.slow)
	mux.HandleFunc("GET /qlog", h.qlog)
	mux.HandleFunc("GET /attribution", h.attribution)
	mux.HandleFunc("GET /version", h.version)
	mux.HandleFunc("GET /traces", h.traces)
	mux.HandleFunc("GET /traces/{id}", h.traceByID)
	mux.HandleFunc("GET /search", h.search)
	mux.HandleFunc("GET /shards", h.shards)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	h.mux = mux
	return h
}

func (h *Handler) root(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `xkwserve operational plane
  /metrics          Prometheus exposition
  /metrics.json     metrics snapshot (JSON, with exemplar trace IDs)
  /healthz          liveness
  /readyz           readiness (storage self-verification)
  /slow             slow-query log (NDJSON)
  /qlog             query flight recorder, recent records (NDJSON)
  /attribution      per-stage / per-shard latency attribution (JSON)
  /version          build identity + process state (JSON)
  /traces           tail-sampled traces
  /traces/{id}      one trace (span tree + events)
  /search?q=&k=&engine=&sem=&timeout=&partial=&maxbytes=&maxcand=
  /shards           per-shard routing table (sharded indexes only)
  /debug/pprof/     Go runtime profiles
`)
}

func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.ix.Stats().WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func (h *Handler) metricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.ix.Stats())
}

func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyzResponse is the readiness report: the storage layer's eager
// self-verification result. Quarantined terms degrade service (those
// keywords read as absent) but keep it up — 200 with degraded=true;
// file-level damage means whole lists may be missing — 503.
type readyzResponse struct {
	Status      string                `json:"status"`
	Degraded    bool                  `json:"degraded"`
	Format      int                   `json:"format"`
	Terms       int                   `json:"terms"`
	Quarantined int                   `json:"quarantined"`
	Faults      []xmlsearch.TermFault `json:"faults,omitempty"`
	FileDamage  []string              `json:"file_damage,omitempty"`
}

func (h *Handler) readyz(w http.ResponseWriter, r *http.Request) {
	if h.adm.draining.Load() {
		// Draining flips readiness first, so load balancers stop routing
		// here before the listener goes away.
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{Status: "draining"})
		return
	}
	hl := h.ix.Health()
	resp := readyzResponse{
		Status:      "ready",
		Degraded:    hl.Degraded(),
		Format:      hl.Format,
		Terms:       hl.Terms,
		Quarantined: len(hl.Quarantined),
		Faults:      hl.Quarantined,
		FileDamage:  hl.FileDamage,
	}
	status := http.StatusOK
	if len(hl.FileDamage) > 0 {
		resp.Status = "unready"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// slow streams the slow-query log as NDJSON, one obs.SlowQuery per line,
// oldest first — the shape `jq` and log shippers want.
func (h *Handler) slow(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, sq := range h.ix.SlowQueries() {
		if enc.Encode(sq) != nil {
			return
		}
	}
}

// qlog streams the flight recorder's recent ring as NDJSON, oldest
// first — the same line format the disk sink writes, so a captured ring
// is directly replayable by `xkwbench -exp replay`. The drop and
// rotation state ride along as headers (headers must precede the body):
// X-QLog-Records is the total records ever accepted, X-QLog-Dropped the
// records lost to queue overflow — a nonzero delta between two scrapes
// tells the scraper its captured ring has gaps.
func (h *Handler) qlog(w http.ResponseWriter, r *http.Request) {
	rec := h.ix.QueryLog()
	if rec == nil {
		http.Error(w, "query log disabled (no recorder installed)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-QLog-Records", strconv.FormatInt(rec.Records(), 10))
	w.Header().Set("X-QLog-Dropped", strconv.FormatInt(rec.Dropped(), 10))
	enc := json.NewEncoder(w)
	for _, q := range rec.Recent() {
		if enc.Encode(q) != nil {
			return
		}
	}
}

// attributionResponse is the GET /attribution reply: where query wall
// time has gone since the process started, stage by stage (with each
// stage's share of the total attributed time) and — for scattered
// queries — shard by shard.
type attributionResponse struct {
	TotalNs    int64              `json:"total_ns"`
	Stages     []attributionStage `json:"stages"`
	Shards     []obs.ShardTimeRow `json:"shards,omitempty"`
	Stragglers int64              `json:"stragglers_total"`
}

// attributionStage is one stage's cumulative critical-path time and its
// share of the total across every engine that ran it.
type attributionStage struct {
	Stage  string  `json:"stage"`
	Engine string  `json:"engine"`
	Nanos  int64   `json:"nanos"`
	Share  float64 `json:"share"`
}

// attribution aggregates the critical-path stage counters into the
// "where did my latency go" report: per-stage × per-engine time with
// shares of the total, the per-shard queue/run split, and how often each
// scatter waited on a straggler.
func (h *Handler) attribution(w http.ResponseWriter, r *http.Request) {
	s := h.ix.Stats()
	var total int64
	for _, row := range s.Attribution.Stages {
		total += row.Nanos
	}
	resp := attributionResponse{
		TotalNs:    total,
		Stages:     []attributionStage{},
		Shards:     s.Attribution.Shards,
		Stragglers: s.Shard.Stragglers,
	}
	for _, row := range s.Attribution.Stages {
		st := attributionStage{Stage: row.Stage, Engine: row.Engine, Nanos: row.Nanos}
		if total > 0 {
			st.Share = float64(row.Nanos) / float64(total)
		}
		resp.Stages = append(resp.Stages, st)
	}
	writeJSON(w, http.StatusOK, resp)
}

// version serves the build identity and live process state — what
// xkw_build_info and the process gauges expose to Prometheus, in JSON
// form for humans and deploy tooling.
func (h *Handler) version(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.CurrentProcess())
}

func (h *Handler) store(w http.ResponseWriter) *obs.TraceStore {
	ts := h.ix.TraceStore()
	if ts == nil {
		http.Error(w, "trace capture disabled (no trace store installed)", http.StatusNotFound)
	}
	return ts
}

func (h *Handler) traces(w http.ResponseWriter, r *http.Request) {
	ts := h.store(w)
	if ts == nil {
		return
	}
	sums := ts.Traces()
	if sums == nil {
		sums = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, sums)
}

func (h *Handler) traceByID(w http.ResponseWriter, r *http.Request) {
	ts := h.store(w)
	if ts == nil {
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad trace id", http.StatusBadRequest)
		return
	}
	st, ok := ts.Get(id)
	if !ok {
		http.Error(w, "no such trace (evicted or never retained)", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// shardsResponse is the GET /shards reply: the fan-out width and the
// per-shard routing table.
type shardsResponse struct {
	Shards int                   `json:"shards"`
	Table  []xmlsearch.ShardInfo `json:"table"`
}

// shards serves the sharded index's routing table; a plain index has no
// shards to introspect and answers 404.
func (h *Handler) shards(w http.ResponseWriter, r *http.Request) {
	si, ok := h.ix.(shardIntrospector)
	if !ok {
		http.Error(w, "not a sharded index", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, shardsResponse{Shards: si.Shards(), Table: si.ShardInfo()})
}

// engineByName maps the ?engine= parameter to an Algorithm. The names
// match obs.Engine labels; "topk" selects the default join-based top-K
// engine explicitly, "auto" the cost-based planner.
func engineByName(name string) (xmlsearch.Algorithm, error) {
	switch name {
	case "", "join", "topk":
		return xmlsearch.AlgoJoin, nil
	case "stack":
		return xmlsearch.AlgoStack, nil
	case "ixlookup":
		return xmlsearch.AlgoIndexLookup, nil
	case "rdil":
		return xmlsearch.AlgoRDIL, nil
	case "hybrid":
		return xmlsearch.AlgoHybrid, nil
	case "auto":
		return xmlsearch.AlgoAuto, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want join, stack, ixlookup, rdil, hybrid, topk, auto)", name)
	}
}

// searchResponse is the /search reply: the ranked results plus the
// query's execution profile. TraceID is nonzero when the tail sampler
// retained the trace — follow it to /traces/{id}.
type searchResponse struct {
	Query   string             `json:"query"`
	Engine  string             `json:"engine"`
	K       int                `json:"k,omitempty"`
	Elapsed time.Duration      `json:"elapsed_ns"`
	Results []xmlsearch.Result `json:"results"`
	TraceID uint64             `json:"trace_id,omitempty"`
	// Shards is the scatter-gather fan-out when the serving index is
	// sharded; omitted for a plain index.
	Shards int `json:"shards,omitempty"`
	// Partial marks a certified-partial answer (the query was aborted by
	// its deadline or budget with partial=1 set); each result's exact
	// field says whether it is proven to belong to the true answer.
	// UnseenBound is the engine's bound on any unreturned result's score.
	Partial     bool    `json:"partial,omitempty"`
	UnseenBound float64 `json:"unseen_bound,omitempty"`
	// Plan is the query plan the evaluation resolved through (always the
	// trivially planned engine for explicit ?engine= values; the cached
	// cost-based choice for engine=auto).
	Plan *xmlsearch.QueryPlan `json:"plan,omitempty"`
}

// parseSearchOptions parses the option parameters shared by every /search
// query. It writes the 400 itself and returns ok=false on a bad value.
func (h *Handler) parseSearchOptions(w http.ResponseWriter, r *http.Request) (opt xmlsearch.SearchOptions, ok bool) {
	algo, err := engineByName(r.URL.Query().Get("engine"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return opt, false
	}
	opt.Algorithm = algo
	switch sem := r.URL.Query().Get("sem"); sem {
	case "", "elca":
		opt.Semantics = xmlsearch.ELCA
	case "slca":
		opt.Semantics = xmlsearch.SLCA
	default:
		http.Error(w, "bad sem parameter (want elca or slca)", http.StatusBadRequest)
		return opt, false
	}
	opt.Timeout = h.defaultTimeout
	if ts := r.URL.Query().Get("timeout"); ts != "" {
		d, err := time.ParseDuration(ts)
		if err != nil || d < 0 {
			http.Error(w, "bad timeout parameter (want a Go duration, e.g. 250ms)", http.StatusBadRequest)
			return opt, false
		}
		opt.Timeout = d
	}
	if bs := r.URL.Query().Get("maxbytes"); bs != "" {
		n, err := strconv.ParseInt(bs, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad maxbytes parameter", http.StatusBadRequest)
			return opt, false
		}
		opt.MaxDecodedBytes = n
	}
	if cs := r.URL.Query().Get("maxcand"); cs != "" {
		n, err := strconv.ParseInt(cs, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad maxcand parameter", http.StatusBadRequest)
			return opt, false
		}
		opt.MaxCandidates = n
	}
	if ps := r.URL.Query().Get("partial"); ps != "" {
		b, err := strconv.ParseBool(ps)
		if err != nil {
			http.Error(w, "bad partial parameter", http.StatusBadRequest)
			return opt, false
		}
		opt.AllowPartial = b
	}
	return opt, true
}

// searchStatus maps a query error to its HTTP status: the full error
// taxonomy of the overload-protection surface.
func searchStatus(err error) int {
	switch {
	case errors.Is(err, xmlsearch.ErrNoKeywords):
		return http.StatusBadRequest
	case errors.Is(err, xmlsearch.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, xmlsearch.ErrCancelled):
		return StatusClientClosedRequest
	case errors.Is(err, xmlsearch.ErrBudgetExceeded):
		// The query as posed cannot be answered within its own limits (and
		// the caller did not opt into a partial answer); retrying without
		// backoff would trip again, so this is a 422, not a 503.
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

// offerShed records an admission-control rejection into the flight
// recorder (no-op when none is installed). Shed records carry the query
// shape but no engine, duration, or fingerprint — nothing ran.
func (h *Handler) offerShed(q string, k int, opt xmlsearch.SearchOptions) {
	rec := h.ix.QueryLog()
	if !rec.Enabled() {
		return
	}
	op := "topk"
	if k == 0 {
		op = "search"
	}
	sem := "elca"
	if opt.Semantics == xmlsearch.SLCA {
		sem = "slca"
	}
	rec.Offer(qlog.Record{
		Op:        op,
		Keywords:  xmlsearch.Keywords(q),
		Semantics: sem,
		K:         k,
		Algo:      opt.Algorithm.String(),
		Outcome:   qlog.OutcomeShed,
	})
}

// search runs one traced query. q is required; k defaults to 10 and
// k=0 requests a complete (non-top-K) evaluation; engine and sem select
// the evaluation engine and LCA semantics; timeout, maxbytes, and
// maxcand bound the query's resources; partial=1 turns a deadline or
// budget abort into a certified-partial 200 instead of an error status.
func (h *Handler) search(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		n, err := strconv.Atoi(ks)
		if err != nil || n < 0 {
			http.Error(w, "bad k parameter", http.StatusBadRequest)
			return
		}
		k = n
	}
	opt, ok := h.parseSearchOptions(w, r)
	if !ok {
		return
	}

	switch h.adm.admit(r.Context()) {
	case admitShed:
		// A shed query never reaches an engine, so the facade's flight-
		// recorder hook never sees it; record the rejection here so the
		// capture is a complete picture of offered load, not just served
		// load.
		h.offerShed(q, k, opt)
		w.Header().Set("Retry-After", strconv.Itoa(h.adm.retryAfterSeconds()))
		http.Error(w, "overloaded: query shed by admission control", http.StatusServiceUnavailable)
		return
	case admitGone:
		return // client disconnected while queued; nobody is listening
	}
	defer h.adm.release()
	ctx, cancel := h.adm.queryContext(r.Context())
	defer cancel()
	if hook := testHookQueryStart; hook != nil {
		hook(ctx)
	}

	var (
		rs   []xmlsearch.Result
		qs   *xmlsearch.QueryStats
		qerr error
	)
	if k == 0 {
		rs, qs, qerr = h.ix.SearchTraced(ctx, q, opt)
	} else {
		rs, qs, qerr = h.ix.TopKTraced(ctx, q, k, opt)
	}
	if qerr != nil {
		writeJSON(w, searchStatus(qerr), map[string]any{"error": qerr.Error(), "trace_id": qs.TraceID})
		return
	}
	// Completed-query latency feeds the shed path's Retry-After estimate.
	h.adm.noteLatency(qs.Elapsed)
	if rs == nil {
		rs = []xmlsearch.Result{}
	}
	// Best-effort: the plan is diagnostic context, a planning error must
	// not fail a query that already succeeded.
	plan, _ := h.ix.Plan(q, k, opt)
	resp := searchResponse{
		Query:   q,
		Engine:  qs.Engine,
		K:       k,
		Elapsed: qs.Elapsed,
		Results: rs,
		TraceID: qs.TraceID,
		Partial: qs.Partial,
		Plan:    plan,
	}
	if si, ok := h.ix.(shardIntrospector); ok {
		resp.Shards = si.Shards()
	}
	if qs.Partial {
		resp.UnseenBound = qs.UnseenBound
	}
	writeJSON(w, http.StatusOK, resp)
}
