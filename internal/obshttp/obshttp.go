// Package obshttp is the operational plane of a serving index: one
// http.Handler exposing Prometheus and JSON metrics, liveness/readiness
// probes backed by the storage layer's self-verification, the slow-query
// log, the tail-sampled trace store, the Go runtime profiles, and a
// query endpoint whose every execution is traced and offered to the
// trace store — so an operator can go from "p99 spiked" to the span
// tree of an actual slow query without redeploying.
//
// The handler holds only an *xmlsearch.Index; all state it serves is the
// index's own observability surface (Metrics, Health, SlowQueries,
// TraceStore). It is safe for concurrent use and adds no locks of its
// own beyond what those surfaces already guarantee.
package obshttp

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	xmlsearch "repro"
	"repro/internal/obs"
)

// Options configures the process-global profiling knobs the handler
// applies when constructed. Both default to off (0): mutex and block
// profiling cost on every contended lock operation, so they are opt-in.
type Options struct {
	// MutexProfileFraction samples 1/n of mutex contention events
	// (runtime.SetMutexProfileFraction). 0 leaves the current setting.
	MutexProfileFraction int
	// BlockProfileRate samples blocking events lasting at least rate
	// nanoseconds (runtime.SetBlockProfileRate). 0 leaves the current
	// setting.
	BlockProfileRate int
}

// handler serves the operational routes over one index.
type handler struct {
	ix *xmlsearch.Index
}

// NewHandler builds the operational-plane handler for ix. Routes:
//
//	GET /                  route directory (text)
//	GET /metrics           Prometheus text exposition (format 0.0.4)
//	GET /metrics.json      full metrics snapshot as JSON (incl. exemplars)
//	GET /healthz           liveness: 200 once the process serves
//	GET /readyz            readiness: storage Health(); 503 on file damage
//	GET /slow              slow-query log, NDJSON, oldest first
//	GET /traces            tail-sampled trace summaries, newest first
//	GET /traces/{id}       one retained trace: full span tree + events
//	GET /search            run a query (q, k, engine, sem) traced
//	GET /debug/pprof/...   Go runtime profiles
//
// Queries through /search honor the request context, so a disconnected
// client cancels the evaluation, and the cancellation itself is a
// tail-sampling "keep" signal.
func NewHandler(ix *xmlsearch.Index, opt Options) http.Handler {
	if opt.MutexProfileFraction > 0 {
		runtime.SetMutexProfileFraction(opt.MutexProfileFraction)
	}
	if opt.BlockProfileRate > 0 {
		runtime.SetBlockProfileRate(opt.BlockProfileRate)
	}
	h := &handler{ix: ix}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", h.root)
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("GET /metrics.json", h.metricsJSON)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /readyz", h.readyz)
	mux.HandleFunc("GET /slow", h.slow)
	mux.HandleFunc("GET /traces", h.traces)
	mux.HandleFunc("GET /traces/{id}", h.traceByID)
	mux.HandleFunc("GET /search", h.search)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func (h *handler) root(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `xkwserve operational plane
  /metrics          Prometheus exposition
  /metrics.json     metrics snapshot (JSON, with exemplar trace IDs)
  /healthz          liveness
  /readyz           readiness (storage self-verification)
  /slow             slow-query log (NDJSON)
  /traces           tail-sampled traces
  /traces/{id}      one trace (span tree + events)
  /search?q=&k=&engine=&sem=
  /debug/pprof/     Go runtime profiles
`)
}

func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.ix.Stats().WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func (h *handler) metricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.ix.Stats())
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyzResponse is the readiness report: the storage layer's eager
// self-verification result. Quarantined terms degrade service (those
// keywords read as absent) but keep it up — 200 with degraded=true;
// file-level damage means whole lists may be missing — 503.
type readyzResponse struct {
	Status      string                `json:"status"`
	Degraded    bool                  `json:"degraded"`
	Format      int                   `json:"format"`
	Terms       int                   `json:"terms"`
	Quarantined int                   `json:"quarantined"`
	Faults      []xmlsearch.TermFault `json:"faults,omitempty"`
	FileDamage  []string              `json:"file_damage,omitempty"`
}

func (h *handler) readyz(w http.ResponseWriter, r *http.Request) {
	hl := h.ix.Health()
	resp := readyzResponse{
		Status:      "ready",
		Degraded:    hl.Degraded(),
		Format:      hl.Format,
		Terms:       hl.Terms,
		Quarantined: len(hl.Quarantined),
		Faults:      hl.Quarantined,
		FileDamage:  hl.FileDamage,
	}
	status := http.StatusOK
	if len(hl.FileDamage) > 0 {
		resp.Status = "unready"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// slow streams the slow-query log as NDJSON, one obs.SlowQuery per line,
// oldest first — the shape `jq` and log shippers want.
func (h *handler) slow(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, sq := range h.ix.SlowQueries() {
		if enc.Encode(sq) != nil {
			return
		}
	}
}

func (h *handler) store(w http.ResponseWriter) *obs.TraceStore {
	ts := h.ix.TraceStore()
	if ts == nil {
		http.Error(w, "trace capture disabled (no trace store installed)", http.StatusNotFound)
	}
	return ts
}

func (h *handler) traces(w http.ResponseWriter, r *http.Request) {
	ts := h.store(w)
	if ts == nil {
		return
	}
	sums := ts.Traces()
	if sums == nil {
		sums = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, sums)
}

func (h *handler) traceByID(w http.ResponseWriter, r *http.Request) {
	ts := h.store(w)
	if ts == nil {
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad trace id", http.StatusBadRequest)
		return
	}
	st, ok := ts.Get(id)
	if !ok {
		http.Error(w, "no such trace (evicted or never retained)", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// engineByName maps the ?engine= parameter to an Algorithm. The names
// match obs.Engine labels; "topk" selects the default join-based top-K
// engine explicitly, "auto" the cost-based planner.
func engineByName(name string) (xmlsearch.Algorithm, error) {
	switch name {
	case "", "join", "topk":
		return xmlsearch.AlgoJoin, nil
	case "stack":
		return xmlsearch.AlgoStack, nil
	case "ixlookup":
		return xmlsearch.AlgoIndexLookup, nil
	case "rdil":
		return xmlsearch.AlgoRDIL, nil
	case "hybrid":
		return xmlsearch.AlgoHybrid, nil
	case "auto":
		return xmlsearch.AlgoAuto, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want join, stack, ixlookup, rdil, hybrid, topk, auto)", name)
	}
}

// searchResponse is the /search reply: the ranked results plus the
// query's execution profile. TraceID is nonzero when the tail sampler
// retained the trace — follow it to /traces/{id}.
type searchResponse struct {
	Query   string             `json:"query"`
	Engine  string             `json:"engine"`
	K       int                `json:"k,omitempty"`
	Elapsed time.Duration      `json:"elapsed_ns"`
	Results []xmlsearch.Result `json:"results"`
	TraceID uint64             `json:"trace_id,omitempty"`
	// Plan is the query plan the evaluation resolved through (always the
	// trivially planned engine for explicit ?engine= values; the cached
	// cost-based choice for engine=auto).
	Plan *xmlsearch.QueryPlan `json:"plan,omitempty"`
}

// search runs one traced query. q is required; k defaults to 10 and
// k=0 requests a complete (non-top-K) evaluation; engine and sem select
// the evaluation engine and LCA semantics.
func (h *handler) search(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		n, err := strconv.Atoi(ks)
		if err != nil || n < 0 {
			http.Error(w, "bad k parameter", http.StatusBadRequest)
			return
		}
		k = n
	}
	algo, err := engineByName(r.URL.Query().Get("engine"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	opt := xmlsearch.SearchOptions{Algorithm: algo}
	switch sem := r.URL.Query().Get("sem"); sem {
	case "", "elca":
		opt.Semantics = xmlsearch.ELCA
	case "slca":
		opt.Semantics = xmlsearch.SLCA
	default:
		http.Error(w, "bad sem parameter (want elca or slca)", http.StatusBadRequest)
		return
	}

	var (
		rs   []xmlsearch.Result
		qs   *xmlsearch.QueryStats
		qerr error
	)
	if k == 0 {
		rs, qs, qerr = h.ix.SearchTraced(r.Context(), q, opt)
	} else {
		rs, qs, qerr = h.ix.TopKTraced(r.Context(), q, k, opt)
	}
	if qerr != nil {
		status := http.StatusInternalServerError
		if errors.Is(qerr, xmlsearch.ErrNoKeywords) {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, map[string]any{"error": qerr.Error(), "trace_id": qs.TraceID})
		return
	}
	if rs == nil {
		rs = []xmlsearch.Result{}
	}
	// Best-effort: the plan is diagnostic context, a planning error must
	// not fail a query that already succeeded.
	plan, _ := h.ix.Plan(q, k, opt)
	writeJSON(w, http.StatusOK, searchResponse{
		Query:   q,
		Engine:  qs.Engine,
		K:       k,
		Elapsed: qs.Elapsed,
		Results: rs,
		TraceID: qs.TraceID,
		Plan:    plan,
	})
}
