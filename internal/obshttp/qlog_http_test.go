package obshttp

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	xmlsearch "repro"
	"repro/internal/qlog"
)

// TestRouteContentTypes audits every non-pprof route: each must declare
// an explicit Content-Type so scrapers, log shippers, and browsers never
// fall back to sniffing — and the routes that promise extra headers
// (/qlog's drop/rotation counters) must actually set them before the
// body goes out.
func TestRouteContentTypes(t *testing.T) {
	ix, srv := newServer(t)
	rec, err := qlog.New(qlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rec.Close() })
	ix.SetQueryLog(rec)
	if _, err := ix.TopK("keyword search", 3, xmlsearch.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	waitForRecords(t, rec, 1)

	cases := []struct {
		path        string
		wantStatus  int
		contentType string
		headers     map[string]string
	}{
		{"/", http.StatusOK, "text/plain; charset=utf-8", nil},
		{"/metrics", http.StatusOK, "text/plain; version=0.0.4; charset=utf-8", nil},
		{"/metrics.json", http.StatusOK, "application/json", nil},
		{"/healthz", http.StatusOK, "application/json", nil},
		{"/readyz", http.StatusOK, "application/json", nil},
		{"/slow", http.StatusOK, "application/x-ndjson", nil},
		{"/qlog", http.StatusOK, "application/x-ndjson",
			map[string]string{"X-QLog-Records": "1", "X-QLog-Dropped": "0"}},
		{"/attribution", http.StatusOK, "application/json", nil},
		{"/version", http.StatusOK, "application/json", nil},
		{"/traces", http.StatusOK, "application/json", nil},
		{"/traces/999999", http.StatusNotFound, "text/plain; charset=utf-8", nil},
		{"/search?q=keyword+search&k=3", http.StatusOK, "application/json", nil},
		{"/search", http.StatusBadRequest, "text/plain; charset=utf-8", nil},
	}
	for _, tc := range cases {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("GET %s: status %d, want %d", tc.path, resp.StatusCode, tc.wantStatus)
		}
		if got := resp.Header.Get("Content-Type"); got != tc.contentType {
			t.Errorf("GET %s: Content-Type %q, want %q", tc.path, got, tc.contentType)
		}
		for k, want := range tc.headers {
			if got := resp.Header.Get(k); got != want {
				t.Errorf("GET %s: header %s=%q, want %q", tc.path, k, got, want)
			}
		}
	}
}

// TestQLogRoute: disabled → 404; enabled → the recent ring as NDJSON,
// one parseable record per query, oldest first.
func TestQLogRoute(t *testing.T) {
	ix, srv := newServer(t)
	get(t, srv.URL+"/qlog", http.StatusNotFound)

	rec, err := qlog.New(qlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rec.Close() })
	ix.SetQueryLog(rec)

	queries := []string{"keyword search", "xml storage", "adaptive query"}
	for _, q := range queries {
		if _, err := ix.TopK(q, 5, xmlsearch.SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	waitForRecords(t, rec, len(queries))

	body := get(t, srv.URL+"/qlog", http.StatusOK)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != len(queries) {
		t.Fatalf("/qlog returned %d lines, want %d:\n%s", len(lines), len(queries), body)
	}
	for i, line := range lines {
		r, err := qlog.Parse([]byte(line))
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if r.Outcome != qlog.OutcomeOK || r.Op != "topk" || r.Fingerprint == "" {
			t.Errorf("line %d: outcome=%q op=%q fp=%q, want ok/topk/nonempty", i, r.Outcome, r.Op, r.Fingerprint)
		}
		if got, want := strings.Join(r.Keywords, " "), queries[i]; got != want {
			t.Errorf("line %d: keywords %q, want %q (oldest first)", i, got, want)
		}
	}
}

// TestVersionRoute: /version serves the build identity with live
// process state.
func TestVersionRoute(t *testing.T) {
	_, srv := newServer(t)
	body := get(t, srv.URL+"/version", http.StatusOK)
	var v struct {
		Version    string `json:"version"`
		GoVersion  string `json:"go_version"`
		Goroutines int    `json:"goroutines"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Version == "" || v.GoVersion == "" || v.Goroutines <= 0 {
		t.Fatalf("implausible /version payload: %s", body)
	}
}

// TestShedRecorded: a query rejected by admission control still lands in
// the flight recorder, outcome "shed", with the query shape but no
// engine or fingerprint.
func TestShedRecorded(t *testing.T) {
	ix, err := xmlsearch.Open(strings.NewReader(testXML))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := qlog.New(qlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rec.Close() })
	ix.SetQueryLog(rec)

	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	resetHook(t, func(ctx context.Context) {
		once.Do(func() { close(started) })
		select {
		case <-release:
		case <-ctx.Done():
		}
	})
	defer close(release)

	srv := httptest.NewServer(NewHandler(ix, Options{MaxInflight: 1}))
	t.Cleanup(srv.Close)

	// Hold one query in flight, then shed the next.
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/search?q=keyword+search&k=3")
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started
	resp, err := http.Get(srv.URL + "/search?q=xml+storage&k=7&sem=slca")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second query status %d, want 503", resp.StatusCode)
	}
	release <- struct{}{}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	waitForRecords(t, rec, 1)
	var shed *qlog.Record
	for _, r := range rec.Recent() {
		if r.Outcome == qlog.OutcomeShed {
			r := r
			shed = &r
		}
	}
	if shed == nil {
		t.Fatalf("no shed record in ring: %+v", rec.Recent())
	}
	if shed.Op != "topk" || shed.K != 7 || shed.Semantics != "slca" {
		t.Errorf("shed record shape: %+v", shed)
	}
	if shed.Engine != "" || shed.Fingerprint != "" || shed.DurationNs != 0 {
		t.Errorf("shed record carries execution fields it should not: %+v", shed)
	}
}

// waitForRecords polls until the recorder's drain goroutine has consumed
// at least n records into the ring (Offer is asynchronous by design).
func waitForRecords(t *testing.T, rec *qlog.Recorder, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(rec.Recent()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("recorder ring has %d records, want >= %d", len(rec.Recent()), n)
		}
		time.Sleep(time.Millisecond)
	}
}
