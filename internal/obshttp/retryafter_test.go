package obshttp

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	xmlsearch "repro"
	"repro/internal/obs"
)

func newTestServer(t *testing.T, ix Server) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(ix, Options{}))
	t.Cleanup(srv.Close)
	return srv
}

func testAdmission(maxInflight, queueLen int) *admission {
	var m obs.Metrics
	return newAdmission(maxInflight, queueLen, &m.Serving)
}

// fill records n completions of d each — enough to dominate the ring's
// median when n > latRingSize/2.
func fill(a *admission, n int, d time.Duration) {
	for i := 0; i < n; i++ {
		a.noteLatency(d)
	}
}

// TestRetryAfterScaling pins the derived Retry-After: it grows with both
// the observed median latency and the wait-queue depth, never drops
// below 1s, caps at maxRetryAfter, and a draining server always
// advertises the cap.
func TestRetryAfterScaling(t *testing.T) {
	// Before any completion the estimate runs on the default latency:
	// one slot at 100ms rounds up to the 1s floor.
	a := testAdmission(1, 8)
	if got := a.retryAfterSeconds(); got != 1 {
		t.Fatalf("empty ring: Retry-After %d, want 1", got)
	}

	// Slower observed queries push the advertised backoff out.
	fill(a, latRingSize, 2*time.Second)
	if got := a.retryAfterSeconds(); got != 2 {
		t.Fatalf("2s median, empty queue: Retry-After %d, want 2", got)
	}

	// A deeper wait queue pushes it out further: each queued request is
	// one more median-latency drain ahead of the retrying client.
	prev := a.retryAfterSeconds()
	for i := 0; i < 3; i++ {
		a.queue <- struct{}{}
		got := a.retryAfterSeconds()
		if got <= prev {
			t.Fatalf("queue depth %d: Retry-After %d, want > %d", i+1, got, prev)
		}
		prev = got
	}
	// Depth 3 at a 2s median: (3+1)*2s = 8s exactly.
	if prev != 8 {
		t.Fatalf("queue depth 3 at 2s median: Retry-After %d, want 8", prev)
	}

	// The median is robust to a burst of outliers: 64 fast completions
	// after the slow window bring the estimate back down.
	fill(a, latRingSize, 10*time.Millisecond)
	for i := 0; i < 3; i++ {
		<-a.queue
	}
	if got := a.retryAfterSeconds(); got != 1 {
		t.Fatalf("after recovery: Retry-After %d, want 1", got)
	}

	// Pathological latency clamps at the cap instead of telling clients
	// to go away for minutes.
	b := testAdmission(1, 8)
	fill(b, latRingSize, 5*time.Minute)
	if got := b.retryAfterSeconds(); got != maxRetryAfter {
		t.Fatalf("5m median: Retry-After %d, want cap %d", got, maxRetryAfter)
	}

	// Draining advertises the cap outright — this server will not serve
	// the retry, however fast its queries were.
	c := testAdmission(1, 8)
	fill(c, latRingSize, time.Millisecond)
	c.startDrain(time.Minute)
	if got := c.retryAfterSeconds(); got != maxRetryAfter {
		t.Fatalf("draining: Retry-After %d, want %d", got, maxRetryAfter)
	}
}

// TestShardsRoute: a sharded server exposes its routing table at
// /shards and stamps the fan-out on search responses; a plain index
// 404s the route and omits the field.
func TestShardsRoute(t *testing.T) {
	sh, err := xmlsearch.OpenSharded(strings.NewReader(testXML), 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, sh)

	var sr struct {
		Shards int `json:"shards"`
		Table  []struct {
			ID   int `json:"id"`
			Docs int `json:"docs"`
		} `json:"table"`
	}
	if err := json.Unmarshal(get(t, srv.URL+"/shards", 200), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Shards != 2 || len(sr.Table) != 2 {
		t.Fatalf("shards response %+v, want 2 shards with 2 table rows", sr)
	}
	if sr.Table[0].Docs+sr.Table[1].Docs != 2 {
		t.Fatalf("table docs %+v, want 2 total", sr.Table)
	}

	var qr struct {
		Shards int `json:"shards"`
	}
	if err := json.Unmarshal(get(t, srv.URL+"/search?q=keyword", 200), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Shards != 2 {
		t.Fatalf("search response shards = %d, want 2", qr.Shards)
	}

	// A plain (unsharded) index has no routing table to introspect.
	ix, err := xmlsearch.Open(strings.NewReader(testXML))
	if err != nil {
		t.Fatal(err)
	}
	plain := newTestServer(t, ix)
	get(t, plain.URL+"/shards", 404)
	qr.Shards = 0
	if err := json.Unmarshal(get(t, plain.URL+"/search?q=keyword", 200), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Shards != 0 {
		t.Fatalf("unsharded search response shards = %d, want omitted", qr.Shards)
	}
}
