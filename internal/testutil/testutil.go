// Package testutil provides deterministic random XML documents and queries
// shared by the property-based and cross-engine equivalence tests.
package testutil

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/xmltree"
)

// DocParams controls RandomDoc.
type DocParams struct {
	MaxNodes   int      // approximate upper bound on element count
	MaxFanout  int      // max children per element
	MaxDepth   int      // max tree depth
	Vocab      []string // words sampled into element text
	WordsPer   int      // max words per element's direct text
	TextChance float64  // probability an element carries direct text
}

// SmallParams are sized for exhaustive cross-engine comparisons.
func SmallParams() DocParams {
	return DocParams{
		MaxNodes:   60,
		MaxFanout:  4,
		MaxDepth:   6,
		Vocab:      Vocab(8),
		WordsPer:   3,
		TextChance: 0.7,
	}
}

// MediumParams are sized for join-plan and top-K stress tests.
func MediumParams() DocParams {
	return DocParams{
		MaxNodes:   600,
		MaxFanout:  6,
		MaxDepth:   9,
		Vocab:      Vocab(20),
		WordsPer:   4,
		TextChance: 0.6,
	}
}

// Vocab returns n distinct synthetic words kw0..kw(n-1).
func Vocab(n int) []string {
	v := make([]string, n)
	for i := range v {
		v[i] = fmt.Sprintf("kw%d", i)
	}
	return v
}

// RandomDoc generates a random document under p using rng. The result
// always has at least a root element; element tags cycle through a small
// set so structure does not depend on tag names.
func RandomDoc(rng *rand.Rand, p DocParams) *xmltree.Document {
	if p.MaxNodes < 1 {
		p.MaxNodes = 1
	}
	if p.MaxFanout < 1 {
		p.MaxFanout = 1
	}
	if p.MaxDepth < 1 {
		p.MaxDepth = 1
	}
	tags := []string{"a", "b", "c", "d"}
	budget := 1 + rng.Intn(p.MaxNodes)
	b := xmltree.NewBuilder()
	var grow func(depth int)
	grow = func(depth int) {
		if p.TextChance > 0 && rng.Float64() < p.TextChance && len(p.Vocab) > 0 {
			nw := 1 + rng.Intn(p.WordsPer)
			words := make([]string, nw)
			for i := range words {
				words[i] = p.Vocab[rng.Intn(len(p.Vocab))]
			}
			b.Text(strings.Join(words, " "))
		}
		if depth >= p.MaxDepth {
			return
		}
		kids := rng.Intn(p.MaxFanout + 1)
		for i := 0; i < kids && budget > 0; i++ {
			budget--
			b.Open(tags[rng.Intn(len(tags))])
			grow(depth + 1)
			b.Close()
		}
	}
	b.Open("root")
	budget--
	grow(1)
	b.Close()
	doc := b.Doc()
	// Guarantee at least one keyword occurrence so index-level tests always
	// have something to chew on.
	if len(p.Vocab) > 0 {
		hasText := false
		for _, n := range doc.Nodes {
			if n.Text != "" {
				hasText = true
				break
			}
		}
		if !hasText {
			doc.Root.Text = p.Vocab[0]
		}
	}
	return doc
}

// RandomQuery draws k distinct keywords from vocab. It may return fewer
// than k when vocab is small.
func RandomQuery(rng *rand.Rand, vocab []string, k int) []string {
	perm := rng.Perm(len(vocab))
	if k > len(vocab) {
		k = len(vocab)
	}
	q := make([]string, 0, k)
	for _, i := range perm[:k] {
		q = append(q, vocab[i])
	}
	return q
}
