package xmlsearch

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/colstore"
	"repro/internal/faultinject"
	"repro/internal/xmltree"
)

// Corpus is a searchable index over several XML documents at once. The
// documents are grafted under one synthetic root — the same trick the
// paper's evaluation plays when it regroups DBLP by conference and year —
// so every engine works unchanged; results additionally carry which source
// document they came from. Results rooted at the synthetic corpus element
// itself (keywords co-occurring only across documents) are filtered out,
// since no real subtree corresponds to them.
type Corpus struct {
	*Index
	names []string
}

// OpenCorpus parses and indexes the XML documents at the given paths into
// one corpus. At least one path is required.
func OpenCorpus(paths []string, opts ...Option) (*Corpus, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("xmlsearch: empty corpus")
	}
	readers := make([]io.Reader, len(paths))
	closers := make([]io.Closer, 0, len(paths))
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	names := make([]string, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, fmt.Errorf("xmlsearch: corpus: %w", err)
		}
		closers = append(closers, f)
		readers[i] = f
		names[i] = filepath.Base(p)
	}
	return OpenCorpusReaders(readers, names, opts...)
}

// OpenCorpusReaders indexes one document per reader; names label the
// documents in results (len(names) must equal len(readers)).
func OpenCorpusReaders(readers []io.Reader, names []string, opts ...Option) (*Corpus, error) {
	if len(readers) == 0 || len(readers) != len(names) {
		return nil, fmt.Errorf("xmlsearch: corpus needs equally many readers and names")
	}
	root := &xmltree.Node{Tag: "corpus"}
	merged := &xmltree.Document{Root: root}
	for i, r := range readers {
		doc, err := xmltree.Parse(r)
		if err != nil {
			return nil, fmt.Errorf("xmlsearch: corpus document %q: %w", names[i], err)
		}
		root.Children = append(root.Children, doc.Root)
	}
	merged.Refresh()
	idx, err := FromDocument(merged, opts...)
	if err != nil {
		return nil, err
	}
	return &Corpus{Index: idx, names: append([]string(nil), names...)}, nil
}

// Docs returns the document names in corpus order.
func (c *Corpus) Docs() []string { return append([]string(nil), c.names...) }

// FileOf reports which source document a result belongs to, from its Dewey
// identifier ("1.<i>..." is the i-th document). The synthetic corpus root
// itself belongs to no document.
func (c *Corpus) FileOf(r Result) string {
	parts := strings.SplitN(r.Dewey, ".", 3)
	if len(parts) < 2 {
		return ""
	}
	i, err := strconv.Atoi(parts[1])
	if err != nil || i < 1 || i > len(c.names) {
		return ""
	}
	return c.names[i-1]
}

// Search evaluates the query over the whole corpus, dropping the synthetic
// root if it surfaces as a result.
func (c *Corpus) Search(query string, opt SearchOptions) ([]Result, error) {
	rs, err := c.Index.Search(query, opt)
	return dropSyntheticRoot(rs), err
}

// TopK returns the corpus-wide top-K (the synthetic root excluded).
func (c *Corpus) TopK(query string, k int, opt SearchOptions) ([]Result, error) {
	// Fetch one extra in case the synthetic root occupies a slot.
	rs, err := c.Index.TopK(query, k+1, opt)
	if err != nil {
		return nil, err
	}
	rs = dropSyntheticRoot(rs)
	if len(rs) > k {
		rs = rs[:k]
	}
	return rs, nil
}

const corpusNamesMagic = "XKWNAM1\n"

// Save persists the corpus index with the same atomic-commit guarantees as
// Index.Save; the document names are bundled into the same committed
// generation, so a crash can never separate them from the index they label.
func (c *Corpus) Save(dir string) error {
	return c.Index.saveFS(dir, faultinject.OS(),
		map[string][]byte{fileCorpusNames: encodeCorpusNames(c.names)})
}

func encodeCorpusNames(names []string) []byte {
	buf := []byte(corpusNamesMagic)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, n := range names {
		buf = binary.AppendUvarint(buf, uint64(len(n)))
		buf = append(buf, n...)
	}
	return buf
}

// parseCorpusNames decodes a corpus.names payload with the same hardening
// as parseIndexMeta: the count is bounded before allocation and trailing
// bytes are rejected.
func parseCorpusNames(data []byte) ([]string, error) {
	if len(data) < len(corpusNamesMagic) || string(data[:len(corpusNamesMagic)]) != corpusNamesMagic {
		return nil, fmt.Errorf("xmlsearch: load: not a corpus.names file")
	}
	off := len(corpusNamesMagic)
	count, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return nil, fmt.Errorf("xmlsearch: load: truncated corpus names header")
	}
	off += sz
	if count > uint64(len(data)-off) {
		return nil, fmt.Errorf("xmlsearch: load: corpus claims %d names, %d bytes remain", count, len(data)-off)
	}
	names := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		l, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			return nil, fmt.Errorf("xmlsearch: load: truncated corpus name %d", i)
		}
		off += sz
		if l > uint64(len(data)-off) {
			return nil, fmt.Errorf("xmlsearch: load: truncated corpus name %d", i)
		}
		names = append(names, string(data[off:off+int(l)]))
		off += int(l)
	}
	if off != len(data) {
		return nil, fmt.Errorf("xmlsearch: load: %d trailing bytes after corpus names", len(data)-off)
	}
	return names, nil
}

// LoadCorpus opens an index directory written by Corpus.Save. Damage
// handling matches Load: per-term damage degrades (see Health), metadata
// damage is a clean error.
func LoadCorpus(dir string) (*Corpus, error) {
	idx, err := Load(dir)
	if err != nil {
		return nil, err
	}
	gen, v2, err := colstore.CurrentGen(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, genFileName(fileCorpusNames, gen, v2)))
	if err != nil {
		return nil, fmt.Errorf("xmlsearch: load: %w", err)
	}
	if v2 {
		if data, err = colstore.StripFooter(data); err != nil {
			return nil, fmt.Errorf("xmlsearch: load %s: %w", fileCorpusNames, err)
		}
	}
	names, err := parseCorpusNames(data)
	if err != nil {
		return nil, err
	}
	return &Corpus{Index: idx, names: names}, nil
}

func dropSyntheticRoot(rs []Result) []Result {
	out := rs[:0]
	for _, r := range rs {
		if r.Level == 1 {
			continue
		}
		out = append(out, r)
	}
	return out
}
