package xmlsearch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/dewey"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/qlog"
	"repro/internal/shard"
)

// Scatter-gather query evaluation. Every entry point tokenizes once,
// fans the keywords out to every shard through the bounded worker pool,
// and merges the per-shard answers under the canonical result order
// (score desc, level desc, Dewey asc — exec.Compare). Shard-local Dewey
// identifiers are remapped to global ones by shifting the top-level
// component by the shard's child offset. Results rooted at a shard's
// synthetic root (level 1) are dropped, mirroring Corpus.
//
// Top-K additionally exchanges thresholds: the streaming path offers
// every shard result to a shared top-K score heap, and a shard whose
// next result scores strictly below the global K-th is cancelled — its
// remaining results descend in score, so none can displace the k
// already-offered better ones. Cancelling is therefore invisible in the
// answer; only genuinely aborted shards (deadline, budget) make the
// merged answer partial.

// mergedResult pairs a remapped result with its parsed Dewey identifier
// so the merge sort does not re-parse per comparison.
type mergedResult struct {
	res Result
	id  dewey.ID
}

// remapResult rewrites a shard-local result into global coordinates:
// shard-local Dewey "1.j.rest" becomes "1.(j+off).rest". It reports
// false for results to drop (the shard's synthetic root, level 1).
func remapResult(r Result, off int) (mergedResult, bool) {
	if r.Level <= 1 {
		return mergedResult{}, false
	}
	id, err := dewey.Parse(r.Dewey)
	if err != nil || len(id) < 2 {
		return mergedResult{}, false
	}
	id[1] += uint32(off)
	r.Dewey = id.String()
	return mergedResult{res: r, id: id}, true
}

// mergeRanked sorts merged results into the canonical global order and
// returns the results, truncated to k when k > 0.
func mergeRanked(ms []mergedResult, k int) []Result {
	sort.Slice(ms, func(a, b int) bool {
		if c := exec.Compare(ms[a].res.Score, ms[b].res.Score, ms[a].res.Level, ms[b].res.Level); c != 0 {
			return c < 0
		}
		return dewey.Compare(ms[a].id, ms[b].id) < 0
	})
	if k > 0 && len(ms) > k {
		ms = ms[:k]
	}
	rs := make([]Result, len(ms))
	for i := range ms {
		rs[i] = ms[i].res
	}
	return rs
}

// composeErr picks the error the caller sees from the per-shard errors
// (each already classified by the shard's own epilogue): the first
// (lowest shard index) error that is not a cancellation — sibling-cancel
// turns one shard's failure into cancellations everywhere else — falling
// back to the first cancellation (all-cancelled means the caller's own
// context was cancelled).
func composeErr(errs []error) error {
	var first error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if first == nil {
			first = e
		}
		if !errors.Is(e, ErrCancelled) {
			return e
		}
	}
	return first
}

// scatter runs fn(i, ctx, str) on every shard through the worker pool
// under a shared cancellable context, then composes the per-shard errors.
// fn must confine its writes to index-i slots.
//
// When the coordinator is traced, each shard runs under its own child
// trace (str) on the coordinator's clock: the wait for a worker-pool slot
// becomes the shard's admission stage span, the shard's engine emits its
// own stage spans into str, and an aborted shard notes its cancel cause.
// After the pool drains, the children are stitched into the coordinator
// trace as shard/<i> wrapper spans in shard-ID order — not completion
// order — so Export is deterministic for a given set of shard runs.
func (sh *Sharded) scatter(ctx context.Context, tr *obs.Trace, fn func(i int, ctx context.Context, str *obs.Trace) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	n := len(sh.shards)
	errs := make([]error, n)
	var kids []*obs.Trace
	if tr.Enabled() {
		kids = make([]*obs.Trace, n)
		for i := range kids {
			kids[i] = tr.NewChild()
		}
	}
	sh.metrics.Shard.FanOuts.Inc()
	sh.pool.EachTimed(n, func(i int, wait time.Duration) {
		var str *obs.Trace
		if kids != nil {
			str = kids[i]
			// The queue-slot wait ended just now, so the admission span
			// covers [now-wait, now] on the shared coordinator clock.
			end := str.Duration()
			start := end - wait
			if start < 0 {
				start = 0
			}
			str.Interval(obs.StageSpanName(obs.StageAdmission), start, end)
		}
		errs[i] = fn(i, sctx, str)
		if errs[i] != nil {
			str.Note("shard-abort: "+errs[i].Error(), 0, 0, 0)
			// Stop siblings: their partial work cannot complete the answer.
			cancel()
		}
	})
	for i, c := range kids {
		tr.AdoptChild(obs.ShardSpanName(i), c)
	}
	return composeErr(errs)
}

// composePartial folds the per-shard run metadata into the global one.
// The answer is partial only when a shard genuinely aborted mid-run
// (coordinator-cancelled shards are complete by the threshold argument
// above); the global unseen bound is then the max over the genuine
// partials' bounds and the cancelled shards' last emitted scores — every
// result any shard did not surface scores at or below it.
func composePartial(metas []exec.RunMeta, cancelled []bool, lastScore []float64, hasLast []bool) exec.RunMeta {
	var meta exec.RunMeta
	for i := range metas {
		if metas[i].Partial && !cancelled[i] {
			meta.Partial = true
		}
	}
	if !meta.Partial {
		return meta
	}
	bound := math.Inf(-1)
	for i := range metas {
		switch {
		case metas[i].Partial && !cancelled[i]:
			if metas[i].UnseenBound > bound {
				bound = metas[i].UnseenBound
			}
		case cancelled[i] && hasLast[i]:
			if lastScore[i] > bound {
				bound = lastScore[i]
			}
		}
	}
	meta.UnseenBound = bound
	return meta
}

// recertify recomputes each merged result's Exact flag against the
// global unseen bound when the composed answer is partial (per-shard
// flags certified only shard-local ranks).
func recertify(rs []Result, meta exec.RunMeta) {
	if !meta.Partial {
		return
	}
	for i := range rs {
		rs[i].Exact = rs[i].Score >= meta.UnseenBound
	}
}

// finish is the coordinator's query epilogue, mirroring Index.finishQuery:
// coordinator metrics, slow-query log, tail-sampled trace capture, and
// one flight-recorder record per scatter-gather query — carrying the
// merged-rank fingerprint (shard-count-invariant by construction) and
// the shard fan-out count. The per-shard resource profiles accumulate in
// each shard's own registry, so the coordinator record carries none.
func (sh *Sharded) finish(e obs.Engine, op, query string, k int, elapsed time.Duration, rs []Result, results int, meta exec.RunMeta, visible error, tr *obs.Trace, opt SearchOptions) {
	sh.metrics.RecordQuery(e, query, k, elapsed, results, visible, tr)
	bd := recordBreakdown(sh.metrics, e, elapsed, tr)
	if bd != nil && bd.Straggler >= 0 && len(sh.shards) > 1 {
		sh.metrics.Shard.Stragglers.Inc()
	}
	if visible == nil && meta.Partial {
		sh.metrics.Serving.PartialQueries.Add(1)
	}
	var traceID uint64
	if ts := sh.traces.Load(); ts != nil && tr != nil {
		if id := ts.Add(e, query, k, elapsed, results, visible, tr); id != 0 {
			traceID = id
			if em := sh.metrics.Engine(e); em != nil {
				em.Latency.SetExemplar(elapsed, int64(id))
			}
		}
	}
	r := sh.qlog.Load()
	if !r.Enabled() {
		return
	}
	out := outcomeClass(visible, visible)
	if visible == nil && meta.Partial {
		out = qlog.OutcomePartial
	}
	rec := qlog.Record{
		Op:         op,
		Keywords:   Keywords(query),
		Semantics:  semLabel(opt.Semantics),
		K:          k,
		Algo:       opt.Algorithm.String(),
		Engine:     e.String(),
		Outcome:    out,
		DurationNs: elapsed.Nanoseconds(),
		Results:    results,
		Shards:     len(sh.shards),
		TraceID:    traceID,
	}
	if visible == nil {
		rec.Fingerprint = resultsHash(rs).String()
	} else {
		rec.Err = visible.Error()
	}
	annotateStages(&rec, bd)
	r.Offer(rec)
}

// searchScatterObs is the sharded complete evaluation: batch scatter to
// every shard (each resolving its own engine, including per-shard
// cost-based planning for AlgoAuto), then a full merge.
func (sh *Sharded) searchScatterObs(ctx context.Context, query string, kws []string, opt SearchOptions, tr *obs.Trace) (rs []Result, meta exec.RunMeta, err error) {
	start := time.Now()
	sh.pinned.Add(1)
	eng := searchEngineSlot(opt.Algorithm)
	defer func() {
		sh.pinned.Add(-1)
		sh.finish(eng, "search", query, 0, time.Since(start), rs, len(rs), meta, err, tr, opt)
	}()
	defer guard(&err)
	if kws == nil {
		kws = Keywords(query)
	}
	if len(kws) == 0 {
		return nil, meta, ErrNoKeywords
	}
	sh.mu.RLock()
	offs, _ := sh.offsetsLocked()
	sh.mu.RUnlock()
	n := len(sh.shards)
	perShard := make([][]mergedResult, n)
	metas := make([]exec.RunMeta, n)
	err = sh.scatter(ctx, tr, func(i int, sctx context.Context, str *obs.Trace) error {
		srs, smeta, _, serr := sh.shards[i].searchObs(sctx, query, kws, opt, str)
		if serr != nil {
			return serr
		}
		metas[i] = smeta
		for _, r := range srs {
			if m, ok := remapResult(r, offs[i]); ok {
				perShard[i] = append(perShard[i], m)
			}
		}
		return nil
	})
	if err != nil {
		return nil, meta, err
	}
	msp := tr.Stage(obs.StageMerge)
	meta = composePartial(metas, make([]bool, n), nil, nil)
	var all []mergedResult
	for i := range perShard {
		all = append(all, perShard[i]...)
	}
	rs = mergeRanked(all, 0)
	tr.End(msp)
	ssp := tr.Stage(obs.StageSettle)
	recertify(rs, meta)
	tr.End(ssp)
	return rs, meta, nil
}

// topKScatterObs is the sharded top-K evaluation. The star-join
// algorithms (AlgoJoin's top-K mode, and TopKStream always) go through
// the streaming scatter with threshold exchange; every other algorithm —
// including AlgoAuto, which plans per shard against each shard's own
// statistics and generation-keyed plan cache — runs a batch scatter of
// per-shard top-(k+1) evaluations (the extra slot absorbs a shard root
// occupying a rank).
func (sh *Sharded) topKScatterObs(ctx context.Context, query string, kws []string, k int, opt SearchOptions, tr *obs.Trace) (rs []Result, meta exec.RunMeta, err error) {
	start := time.Now()
	sh.pinned.Add(1)
	eng := topKEngineSlot(opt.Algorithm)
	defer func() {
		sh.pinned.Add(-1)
		sh.finish(eng, "topk", query, k, time.Since(start), rs, len(rs), meta, err, tr, opt)
	}()
	defer guard(&err)
	if k <= 0 {
		return nil, meta, errPositiveK()
	}
	if kws == nil {
		kws = Keywords(query)
	}
	if len(kws) == 0 {
		return nil, meta, ErrNoKeywords
	}
	if opt.Algorithm == AlgoJoin {
		rs, meta, err = sh.streamGather(ctx, query, kws, k, opt, tr)
	} else {
		rs, meta, err = sh.batchGatherTopK(ctx, query, kws, k, opt, tr)
	}
	if err != nil {
		return nil, meta, err
	}
	ssp := tr.Stage(obs.StageSettle)
	recertify(rs, meta)
	tr.End(ssp)
	return rs, meta, nil
}

// batchGatherTopK scatters per-shard top-(k+1) evaluations and merges.
func (sh *Sharded) batchGatherTopK(ctx context.Context, query string, kws []string, k int, opt SearchOptions, tr *obs.Trace) ([]Result, exec.RunMeta, error) {
	sh.mu.RLock()
	offs, _ := sh.offsetsLocked()
	sh.mu.RUnlock()
	n := len(sh.shards)
	perShard := make([][]mergedResult, n)
	metas := make([]exec.RunMeta, n)
	err := sh.scatter(ctx, tr, func(i int, sctx context.Context, str *obs.Trace) error {
		srs, smeta, _, serr := sh.shards[i].topKObs(sctx, query, kws, k+1, opt, str)
		if serr != nil {
			return serr
		}
		metas[i] = smeta
		for _, r := range srs {
			if m, ok := remapResult(r, offs[i]); ok {
				perShard[i] = append(perShard[i], m)
			}
		}
		return nil
	})
	if err != nil {
		return nil, exec.RunMeta{}, err
	}
	msp := tr.Stage(obs.StageMerge)
	defer tr.End(msp)
	meta := composePartial(metas, make([]bool, n), nil, nil)
	var all []mergedResult
	for i := range perShard {
		all = append(all, perShard[i]...)
	}
	return mergeRanked(all, k), meta, nil
}

// streamGather is the threshold-exchange scatter: every shard streams
// its ranked results (top k+1, covering a root-occupied slot) into a
// shared top-K score heap; when a shard's just-emitted result scores
// strictly below the global K-th, the shard is cancelled — its later
// results score no higher, so at least k already-offered results beat
// them all and the merged top-K is unaffected.
func (sh *Sharded) streamGather(ctx context.Context, query string, kws []string, k int, opt SearchOptions, tr *obs.Trace) ([]Result, exec.RunMeta, error) {
	sh.mu.RLock()
	offs, _ := sh.offsetsLocked()
	sh.mu.RUnlock()
	n := len(sh.shards)
	perShard := make([][]mergedResult, n)
	metas := make([]exec.RunMeta, n)
	cancelled := make([]bool, n)
	lastScore := make([]float64, n)
	hasLast := make([]bool, n)
	thr := shard.NewThreshold(k)
	err := sh.scatter(ctx, tr, func(i int, sctx context.Context, str *obs.Trace) error {
		emit := func(r Result) bool {
			m, ok := remapResult(r, offs[i])
			if !ok {
				return true
			}
			perShard[i] = append(perShard[i], m)
			lastScore[i], hasLast[i] = r.Score, true
			thr.Offer(r.Score)
			if thr.Kth() > r.Score {
				cancelled[i] = true
				sh.metrics.Shard.EarlyCancels.Inc()
				// emit runs on the shard goroutine inside topKStreamObs,
				// so noting the cancel cause on str is single-goroutine.
				str.Note("early-cancel: threshold exchange", int64(i), 0, 0)
				return false
			}
			return true
		}
		_, smeta, serr := sh.shards[i].topKStreamObs(sctx, query, kws, k+1, opt, emit, str)
		if serr != nil {
			return serr
		}
		metas[i] = smeta
		return nil
	})
	if err != nil {
		return nil, exec.RunMeta{}, err
	}
	msp := tr.Stage(obs.StageMerge)
	defer tr.End(msp)
	meta := composePartial(metas, cancelled, lastScore, hasLast)
	var all []mergedResult
	for i := range perShard {
		all = append(all, perShard[i]...)
	}
	return mergeRanked(all, k), meta, nil
}

// topKStreamScatterObs is the sharded streaming top-K. A global rank
// order only exists after the gather, so the stream is buffered: the
// threshold-exchange scatter completes, then the merged results are
// delivered to fn in rank order (fn returning false stops delivery
// cleanly). Per-shard evaluation still streams — and is still cancelled
// early — inside the scatter.
func (sh *Sharded) topKStreamScatterObs(ctx context.Context, query string, kws []string, k int, opt SearchOptions, fn func(Result) bool, tr *obs.Trace) (delivered int, meta exec.RunMeta, err error) {
	start := time.Now()
	sh.pinned.Add(1)
	var deliveredRs []Result
	defer func() {
		sh.pinned.Add(-1)
		sh.finish(obs.EngineTopK, "topk_stream", query, k, time.Since(start), deliveredRs, delivered, meta, err, tr, opt)
	}()
	defer guard(&err)
	if k <= 0 {
		return 0, meta, errPositiveK()
	}
	if fn == nil {
		return 0, meta, errNilCallback()
	}
	if kws == nil {
		kws = Keywords(query)
	}
	if len(kws) == 0 {
		return 0, meta, ErrNoKeywords
	}
	rs, m, serr := sh.streamGather(ctx, query, kws, k, opt, tr)
	if serr != nil {
		return 0, meta, serr
	}
	meta = m
	ssp := tr.Stage(obs.StageSettle)
	recertify(rs, meta)
	tr.End(ssp)
	for _, r := range rs {
		if !fn(r) {
			break
		}
		delivered++
	}
	deliveredRs = rs[:delivered]
	return delivered, meta, nil
}

// --- public query surface (mirrors Index) ---

// Search evaluates the complete ranked result set across every shard.
func (sh *Sharded) Search(query string, opt SearchOptions) ([]Result, error) {
	return sh.SearchContext(context.Background(), query, opt)
}

// SearchContext is Search honoring a context.
func (sh *Sharded) SearchContext(ctx context.Context, query string, opt SearchOptions) ([]Result, error) {
	rs, _, err := sh.searchScatterObs(ctx, query, nil, opt, nil)
	return rs, err
}

// TopK returns the k globally best results in descending score order.
func (sh *Sharded) TopK(query string, k int, opt SearchOptions) ([]Result, error) {
	return sh.TopKContext(context.Background(), query, k, opt)
}

// TopKContext is TopK honoring a context.
func (sh *Sharded) TopKContext(ctx context.Context, query string, k int, opt SearchOptions) ([]Result, error) {
	rs, _, err := sh.topKScatterObs(ctx, query, nil, k, opt, nil)
	return rs, err
}

// TopKStream delivers the k globally best results to fn in rank order.
// Unlike Index.TopKStream, delivery begins only after the scatter-gather
// completes (a global rank needs every shard's answer); fn returning
// false stops delivery.
func (sh *Sharded) TopKStream(query string, k int, opt SearchOptions, fn func(Result) bool) error {
	return sh.TopKStreamContext(context.Background(), query, k, opt, fn)
}

// TopKStreamContext is TopKStream honoring a context.
func (sh *Sharded) TopKStreamContext(ctx context.Context, query string, k int, opt SearchOptions, fn func(Result) bool) error {
	_, _, err := sh.topKStreamScatterObs(ctx, query, nil, k, opt, fn, nil)
	return err
}

// newTrace builds a coordinator trace honoring the installed trace
// store's span cap, mirroring Index.newTrace.
func (sh *Sharded) newTrace() *obs.Trace {
	tr := obs.NewTrace()
	if n := sh.traces.Load().MaxSpans(); n > 0 {
		tr.SetMaxSpans(n)
	}
	return tr
}

// SearchTraced is SearchContext with a coordinator-level trace attached.
func (sh *Sharded) SearchTraced(ctx context.Context, query string, opt SearchOptions) ([]Result, *QueryStats, error) {
	tr := sh.newTrace()
	sp := tr.Start("search/" + spanName(opt.Algorithm, false) + "/sharded")
	rs, meta, err := sh.searchScatterObs(ctx, query, nil, opt, tr)
	tr.End(sp)
	return rs, newQueryStats(query, searchEngineSlot(opt.Algorithm), 0, len(rs), meta, tr), err
}

// TopKTraced is TopKContext with a coordinator-level trace attached.
func (sh *Sharded) TopKTraced(ctx context.Context, query string, k int, opt SearchOptions) ([]Result, *QueryStats, error) {
	tr := sh.newTrace()
	sp := tr.Start("topk/" + spanName(opt.Algorithm, true) + "/sharded")
	rs, meta, err := sh.topKScatterObs(ctx, query, nil, k, opt, tr)
	tr.End(sp)
	return rs, newQueryStats(query, topKEngineSlot(opt.Algorithm), k, len(rs), meta, tr), err
}

// TopKStreamTraced is TopKStreamContext with a coordinator-level trace.
func (sh *Sharded) TopKStreamTraced(ctx context.Context, query string, k int, opt SearchOptions, fn func(Result) bool) (*QueryStats, error) {
	tr := sh.newTrace()
	sp := tr.Start("topk-stream/" + obs.EngineTopK.String() + "/sharded")
	delivered, meta, err := sh.topKStreamScatterObs(ctx, query, nil, k, opt, fn, tr)
	tr.End(sp)
	return newQueryStats(query, obs.EngineTopK, k, delivered, meta, tr), err
}

// ShardedQuery is a validated, pre-tokenized query bound to a sharded
// index — the sharded counterpart of PreparedQuery.
type ShardedQuery struct {
	sh       *Sharded
	query    string
	keywords []string
	opt      SearchOptions
}

// Prepare tokenizes and validates the query under the given options,
// with the same contract as Index.Prepare.
func (sh *Sharded) Prepare(query string, opt SearchOptions) (*ShardedQuery, error) {
	keywords := Keywords(query)
	if len(keywords) == 0 {
		return nil, ErrNoKeywords
	}
	if opt.Algorithm != AlgoAuto && !engines.HasAlgo(int(opt.Algorithm)) {
		return nil, fmt.Errorf("xmlsearch: unknown algorithm %v", opt.Algorithm)
	}
	return &ShardedQuery{sh: sh, query: query, keywords: keywords, opt: opt}, nil
}

// Query returns the original query text.
func (sq *ShardedQuery) Query() string { return sq.query }

// Keywords returns the resolved keywords (shared slice; do not mutate).
func (sq *ShardedQuery) Keywords() []string { return sq.keywords }

// Search evaluates the complete ranked result set.
func (sq *ShardedQuery) Search(ctx context.Context) ([]Result, error) {
	rs, _, err := sq.sh.searchScatterObs(ctx, sq.query, sq.keywords, sq.opt, nil)
	return rs, err
}

// TopK returns the k globally best results.
func (sq *ShardedQuery) TopK(ctx context.Context, k int) ([]Result, error) {
	rs, _, err := sq.sh.topKScatterObs(ctx, sq.query, sq.keywords, k, sq.opt, nil)
	return rs, err
}

// TopKStream delivers the merged top-K to fn in rank order.
func (sq *ShardedQuery) TopKStream(ctx context.Context, k int, fn func(Result) bool) error {
	_, _, err := sq.sh.topKStreamScatterObs(ctx, sq.query, sq.keywords, k, sq.opt, fn, nil)
	return err
}

// Plan returns a representative query plan: shard 0's (each shard plans
// independently against its own statistics at execution time, so a
// sharded query has no single global plan).
func (sh *Sharded) Plan(query string, k int, opt SearchOptions) (*QueryPlan, error) {
	return sh.shards[0].Plan(query, k, opt)
}

// errPositiveK and errNilCallback share the facade's exact error text.
func errPositiveK() error   { return fmt.Errorf("xmlsearch: k must be positive") }
func errNilCallback() error { return fmt.Errorf("xmlsearch: nil callback") }
