package xmlsearch

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/colstore"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Durability and compaction of the incremental write path. With a WAL
// attached (EnableWAL, or Load on a directory that has one), the index
// directory is always "generation <gen> + wal.<gen>": every acknowledged
// mutation is either folded into the committed column generation or
// recorded in the log beside it, so Open after a crash replays the log
// over the loaded base and loses nothing that was acknowledged. The
// background compactor folds the in-memory delta segment into a new
// column generation and rotates the log, keeping both the delta and the
// log bounded regardless of corpus size; see DESIGN.md §16 for the state
// machine and its crash points.

var errIndexClosed = fmt.Errorf("xmlsearch: index closed")

// --- WAL record codec ---
//
// One record per mutation, first byte the opcode, strings length-prefixed
// with uvarints. The codec is deliberately tiny: records re-enter the
// index through the same validation as live mutations, so a decoded
// record carries no trusted invariants beyond its framing.

const (
	walOpInsert = 1
	walOpRemove = 2
)

func appendWALString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readWALString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return "", nil, fmt.Errorf("truncated string")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// encodeInsertRecord frames one InsertElement as a WAL payload.
func encodeInsertRecord(parentDewey string, pos int, tag, text string) []byte {
	b := []byte{walOpInsert}
	b = appendWALString(b, parentDewey)
	b = binary.AppendUvarint(b, uint64(pos))
	b = appendWALString(b, tag)
	return appendWALString(b, text)
}

// encodeRemoveRecord frames one RemoveElement as a WAL payload.
func encodeRemoveRecord(deweyStr string) []byte {
	b := []byte{walOpRemove}
	return appendWALString(b, deweyStr)
}

// decodeMutationRecord parses a WAL payload back into a Mutation.
func decodeMutationRecord(p []byte) (Mutation, error) {
	if len(p) == 0 {
		return Mutation{}, fmt.Errorf("empty record")
	}
	op, rest := p[0], p[1:]
	var m Mutation
	var err error
	switch op {
	case walOpInsert:
		if m.ID, rest, err = readWALString(rest); err != nil {
			return Mutation{}, err
		}
		pos, sz := binary.Uvarint(rest)
		if sz <= 0 || pos > 1<<31 {
			return Mutation{}, fmt.Errorf("bad position")
		}
		m.Pos = int(pos)
		rest = rest[sz:]
		if m.Tag, rest, err = readWALString(rest); err != nil {
			return Mutation{}, err
		}
		if m.Text, rest, err = readWALString(rest); err != nil {
			return Mutation{}, err
		}
	case walOpRemove:
		m.Remove = true
		if m.ID, rest, err = readWALString(rest); err != nil {
			return Mutation{}, err
		}
	default:
		return Mutation{}, fmt.Errorf("unknown opcode %d", op)
	}
	if len(rest) != 0 {
		return Mutation{}, fmt.Errorf("%d trailing bytes", len(rest))
	}
	return m, nil
}

// encodeDeltaOp frames one recorded delta operation; the delta holds only
// appending leaf inserts, so every op is WAL-encodable.
func encodeDeltaOp(op deltaOp) []byte {
	return encodeInsertRecord(op.parent.String(), op.pos, op.tag, op.text)
}

// walAppend makes a mutation batch durable before it publishes: one group
// commit (one write, one fsync) for all records. Called under writeMu. A
// nil log (no WAL attached) is a successful no-op; an append error means
// nothing in the batch may be acknowledged, so the caller must not
// publish.
func (ix *Index) walAppend(records [][]byte) error {
	if ix.log == nil {
		return nil
	}
	n, err := ix.log.Append(records)
	if err != nil {
		ix.metrics.WAL.RecordError()
		return fmt.Errorf("xmlsearch: %w", err)
	}
	ix.walRecords.Add(int64(len(records)))
	ix.metrics.WAL.RecordAppend(len(records), n)
	return nil
}

// EnableWAL attaches a write-ahead log to the index, making every
// subsequent mutation durable in dir before it is acknowledged. The
// current state is first persisted to dir as a committed generation with
// an empty log beside it (folding any in-memory delta), so dir is
// immediately loadable. Enabling is idempotent for the same directory;
// attaching a second directory is an error.
func (ix *Index) EnableWAL(dir string) error {
	return ix.enableWALFS(dir, faultinject.OS())
}

// enableWALFS is EnableWAL with an injectable filesystem — the crash
// tests' entry point.
func (ix *Index) enableWALFS(dir string, fsys faultinject.FS) error {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	if ix.closed.Load() {
		return errIndexClosed
	}
	if ix.log != nil {
		if dir == ix.walDir {
			return nil
		}
		return fmt.Errorf("xmlsearch: wal already attached at %s", ix.walDir)
	}
	s := ix.view()
	if s.delta != nil {
		s = ix.materializeOf(s)
		s.epoch = ix.epochs.Add(1)
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("xmlsearch: wal: %w", err)
	}
	gen, err := colstore.NextGen(dir)
	if err != nil {
		return fmt.Errorf("xmlsearch: wal: %w", err)
	}
	if err := ix.writeGenFiles(s, dir, gen, fsys, nil); err != nil {
		return err
	}
	// The log file must exist before the CURRENT flip references its
	// generation: recovery treats "committed gen without wal.<gen>" as a
	// non-WAL directory and would silently skip replay.
	log, err := wal.Create(fsys, filepath.Join(dir, wal.FileName(gen)), gen, nil)
	if err != nil {
		return fmt.Errorf("xmlsearch: %w", err)
	}
	if err := colstore.CommitGen(dir, gen, fsys); err != nil {
		log.Close()
		return err
	}
	colstore.RemoveStaleGens(dir, gen, fsys, fileDocument, fileMeta, fileCorpusNames)
	if s != ix.view() {
		ix.publish(s)
	}
	ix.log = log
	ix.walDir = dir
	ix.walFsys = fsys
	ix.walRecords.Store(0)
	return nil
}

// Close stops the background compactor and detaches the write-ahead log.
// Mutations after Close fail with an error; queries keep serving the last
// published snapshot. Acknowledged mutations are already durable — every
// WAL append synced — so Close is about releasing the file handle, not
// about flushing.
func (ix *Index) Close() error {
	ix.writeMu.Lock()
	ix.closed.Store(true)
	ix.writeMu.Unlock()
	// No new background compactions can start now (maybeCompact checks
	// closed under writeMu), so the wait is bounded.
	ix.compactWG.Wait()
	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	err := ix.log.Close()
	ix.log = nil
	return err
}

// --- compaction ---

// defaultCompactionThreshold is the delta-ops / WAL-records count that
// triggers a background fold. It bounds both the per-query delta merge
// cost and the replay work of a crash recovery.
const defaultCompactionThreshold = 64

// SetCompactionThreshold tunes the background compaction trigger: a fold
// starts when the published delta holds n operations or the current log
// file holds n records. n == 0 restores the default; n < 0 disables
// background compaction entirely (explicit Compact still works), which
// the differential tests use to pin deltas open.
func (ix *Index) SetCompactionThreshold(n int) {
	ix.compactThreshold.Store(int64(n))
}

func (ix *Index) compactionTrigger() int64 {
	if v := ix.compactThreshold.Load(); v != 0 {
		return v
	}
	return defaultCompactionThreshold
}

// maybeCompact starts a background compaction when the published delta or
// the write-ahead log has outgrown the threshold. Called under writeMu
// after a publish; the fold itself runs off the lock, so writers and
// queries continue unblocked.
func (ix *Index) maybeCompact() {
	t := ix.compactionTrigger()
	if t < 0 || ix.closed.Load() {
		return
	}
	cur := ix.view()
	if (cur.delta == nil || int64(len(cur.delta.ops)) < t) &&
		(ix.log == nil || ix.walRecords.Load() < t) {
		return
	}
	if !ix.compactMu.TryLock() {
		return // one compaction at a time; the next publish re-triggers
	}
	ix.compactWG.Add(1)
	go func() {
		defer ix.compactWG.Done()
		defer ix.compactMu.Unlock()
		ix.compactOnce()
	}()
}

// Compact synchronously folds the in-memory delta segment into a fully
// materialized snapshot and, with a WAL attached, commits it as a new
// column generation with a freshly rotated (empty or near-empty) log.
// It waits for any in-flight background compaction first. A no-op on an
// already-compact index.
func (ix *Index) Compact() error {
	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()
	return ix.compactOnce()
}

// compactOnce is one compaction run under compactMu. The expensive fold
// (materializeOf, O(corpus)) and the new generation's file writes happen
// off writeMu; only the commit — suffix rebase, log rotation, snapshot
// swap — holds it, so writer stalls stay O(delta suffix), independent of
// corpus size.
//
// Crash ordering: the new generation's files and its wal.<gen'> (carrying
// the mutations published during the fold) are all on disk before the
// CURRENT flip, and the old generation's files are removed only after it.
// A crash before the flip recovers from the old generation + old log
// (which still holds every folded record); after it, from the new pair.
func (ix *Index) compactOnce() (err error) {
	start := time.Now()
	cur := ix.view()
	if cur.delta == nil && (ix.log == nil || ix.walRecords.Load() == 0) {
		return nil // nothing to fold, nothing to rotate
	}
	foldedOps := 0
	if cur.delta != nil {
		foldedOps = len(cur.delta.ops)
	}
	// Offer the run to the flight recorder (when one is installed) as a
	// stage/compact trace, so compaction shows up in the same tail-sampled
	// store and per-stage attribution as the queries it competes with.
	ts := ix.traces.Load()
	var tr *obs.Trace
	if ts != nil {
		tr = obs.NewTrace()
	}
	span := tr.Stage(obs.StageCompact)
	defer func() {
		tr.End(span)
		ts.Add(obs.EngineBackground, "(compaction)", 0, time.Since(start), foldedOps, err, tr)
	}()
	folded := ix.materializeOf(cur)
	tr.Note("fold", int64(foldedOps), int64(folded.docLen()), 0)

	var gen uint64
	if ix.log != nil {
		var err error
		gen, err = colstore.NextGen(ix.walDir)
		if err == nil {
			err = ix.writeGenFiles(folded, ix.walDir, gen, ix.walFsys, nil)
		}
		if err != nil {
			ix.metrics.Compact.RecordError(int64(time.Since(start)))
			return err
		}
	}

	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	latest := ix.view()
	if latest.epoch != cur.epoch {
		// A slow-path mutation published a different materialized base
		// while we folded: the fold is stale. Drop it (the uncommitted
		// generation files are swept by the next commit's RemoveStaleGens)
		// and let the next trigger retry against the new base.
		ix.metrics.Compact.RecordAbandoned(int64(time.Since(start)))
		return nil
	}
	// Mutations published during the fold extended the same chain with
	// fast appends; rebase that suffix onto the folded snapshot.
	var suffix []deltaOp
	if latest.delta != nil {
		suffix = latest.delta.ops[foldedOps:]
	}
	if ix.log != nil {
		records := make([][]byte, len(suffix))
		for i, op := range suffix {
			records[i] = encodeDeltaOp(op)
		}
		newLog, err := wal.Create(ix.walFsys, filepath.Join(ix.walDir, wal.FileName(gen)), gen, records)
		if err != nil {
			ix.metrics.WAL.RecordError()
			ix.metrics.Compact.RecordError(int64(time.Since(start)))
			return fmt.Errorf("xmlsearch: %w", err)
		}
		if err := colstore.CommitGen(ix.walDir, gen, ix.walFsys); err != nil {
			newLog.Close()
			ix.metrics.Compact.RecordError(int64(time.Since(start)))
			return err
		}
		colstore.RemoveStaleGens(ix.walDir, gen, ix.walFsys, fileDocument, fileMeta, fileCorpusNames)
		old := ix.log
		ix.log = newLog
		old.Close()
		ix.walRecords.Store(int64(len(records)))
		ix.metrics.WAL.RecordRotation()
		tr.Note("rotate", int64(gen), int64(len(records)), 0)
	}
	next := folded
	next.epoch = ix.epochs.Add(1)
	for _, op := range suffix {
		parent := next.nodeByDewey(op.parent)
		if parent == nil || op.pos != len(next.visibleChildren(parent)) {
			parent = nil
		}
		var ok bool
		var ns *snapshot
		if parent != nil {
			ns, ok = ix.fastInsert(next, parent, op.pos, op.tag, op.text)
		}
		if !ok {
			// The folded base renumbered something the suffix depended on
			// and the op is no longer a fast append there. The disk side is
			// already committed (and consistent: generation + log replay
			// equals the live state); keep serving the existing chain and
			// let a later compaction fold it wholesale.
			ix.metrics.Compact.RecordAbandoned(int64(time.Since(start)))
			return nil
		}
		next = ns
	}
	ix.publish(next)
	ix.metrics.Compact.RecordRun(foldedOps, int64(time.Since(start)))
	return nil
}
