package xmlsearch

import (
	"math"
	"math/rand"
	"os"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestStressXL is an extended randomized equivalence session, enabled with
// XKW_STRESS=1: larger random documents, deeper trees, more trials, all
// engines and both semantics against each other through the public facade.
func TestStressXL(t *testing.T) {
	if os.Getenv("XKW_STRESS") == "" {
		t.Skip("set XKW_STRESS=1 to run the extended stress session")
	}
	rng := rand.New(rand.NewSource(20260704))
	params := testutil.DocParams{
		MaxNodes:   4000,
		MaxFanout:  8,
		MaxDepth:   14,
		Vocab:      testutil.Vocab(30),
		WordsPer:   5,
		TextChance: 0.55,
	}
	for trial := 0; trial < 40; trial++ {
		doc := testutil.RandomDoc(rng, params)
		idx, err := FromDocument(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 3, 4, 5} {
			q := strings.Join(testutil.RandomQuery(rng, params.Vocab, k), " ")
			for _, sem := range []Semantics{ELCA, SLCA} {
				ref, err := idx.Search(q, SearchOptions{Semantics: sem})
				if err != nil {
					t.Fatal(err)
				}
				for _, algo := range []Algorithm{AlgoStack, AlgoIndexLookup} {
					rs, err := idx.Search(q, SearchOptions{Semantics: sem, Algorithm: algo})
					if err != nil {
						t.Fatal(err)
					}
					compareResultSets(t, trial, q, sem, rs, ref)
				}
				if len(ref) > 0 {
					for _, kk := range []int{1, 7, 30} {
						want := kk
						if len(ref) < want {
							want = len(ref)
						}
						for _, algo := range []Algorithm{AlgoJoin, AlgoRDIL, AlgoHybrid} {
							top, err := idx.TopK(q, kk, SearchOptions{Semantics: sem, Algorithm: algo})
							if err != nil {
								t.Fatal(err)
							}
							if len(top) != want {
								t.Fatalf("trial %d %q sem %v algo %d k=%d: %d results, want %d",
									trial, q, sem, algo, kk, len(top), want)
							}
							for i := range top {
								if math.Abs(top[i].Score-ref[i].Score) > 1e-6*(1+math.Abs(ref[i].Score)) {
									t.Fatalf("trial %d %q sem %v algo %d rank %d: %v vs %v",
										trial, q, sem, algo, i, top[i].Score, ref[i].Score)
								}
							}
						}
					}
				}
			}
		}
	}
}

func compareResultSets(t *testing.T, trial int, q string, sem Semantics, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trial %d %q sem %v: %d vs %d results", trial, q, sem, len(got), len(want))
	}
	byID := map[string]float64{}
	for _, r := range want {
		byID[r.Dewey] = r.Score
	}
	for _, r := range got {
		s, ok := byID[r.Dewey]
		if !ok {
			t.Fatalf("trial %d %q sem %v: unexpected %s", trial, q, sem, r.Dewey)
		}
		if math.Abs(r.Score-s) > 1e-6*(1+math.Abs(s)) {
			t.Fatalf("trial %d %q sem %v: %s score %v vs %v", trial, q, sem, r.Dewey, r.Score, s)
		}
	}
}
