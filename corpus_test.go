package xmlsearch

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func corpusReaders() ([]io.Reader, []string) {
	docs := []string{
		`<bib><book><title>xml data management</title></book></bib>`,
		`<articles><paper>keyword search over xml</paper><paper>data mining</paper></articles>`,
		`<notes><n>unrelated content here</n></notes>`,
	}
	rs := make([]io.Reader, len(docs))
	for i, d := range docs {
		rs[i] = strings.NewReader(d)
	}
	return rs, []string{"bib.xml", "articles.xml", "notes.xml"}
}

func TestCorpusSearchAndAttribution(t *testing.T) {
	readers, names := corpusReaders()
	c, err := OpenCorpusReaders(readers, names)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Docs(); len(got) != 3 || got[0] != "bib.xml" {
		t.Fatalf("Docs = %v", got)
	}
	rs, err := c.Search("xml data", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no corpus results")
	}
	files := map[string]bool{}
	for _, r := range rs {
		if r.Level == 1 {
			t.Fatalf("synthetic corpus root leaked into results: %+v", r)
		}
		f := c.FileOf(r)
		if f == "" {
			t.Fatalf("result %s has no file attribution", r.Dewey)
		}
		files[f] = true
	}
	// "xml data" co-occurs within bib.xml's title; the cross-document
	// combination must not produce a corpus-root result.
	if !files["bib.xml"] {
		t.Errorf("expected a result from bib.xml; files=%v", files)
	}
	if files["notes.xml"] {
		t.Error("notes.xml contains neither keyword")
	}
}

func TestCorpusTopK(t *testing.T) {
	readers, names := corpusReaders()
	c, err := OpenCorpusReaders(readers, names)
	if err != nil {
		t.Fatal(err)
	}
	top, err := c.TopK("xml", 2, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || len(top) > 2 {
		t.Fatalf("top-2 returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("corpus top-K not ranked")
		}
	}
	if c.FileOf(top[0]) == "" {
		t.Error("top result lacks attribution")
	}
}

func TestCorpusErrors(t *testing.T) {
	if _, err := OpenCorpusReaders(nil, nil); err == nil {
		t.Error("empty corpus must error")
	}
	if _, err := OpenCorpusReaders([]io.Reader{strings.NewReader("<a/>")}, []string{"a", "b"}); err == nil {
		t.Error("mismatched names must error")
	}
	if _, err := OpenCorpusReaders([]io.Reader{strings.NewReader("not xml")}, []string{"bad"}); err == nil {
		t.Error("unparsable member must error")
	}
	if _, err := OpenCorpus(nil); err == nil {
		t.Error("no paths must error")
	}
	if _, err := OpenCorpus([]string{"/definitely/not/there.xml"}); err == nil {
		t.Error("missing file must error")
	}
}

func TestCorpusFromFiles(t *testing.T) {
	dir := t.TempDir()
	paths := make([]string, 2)
	for i, content := range []string{
		`<a><t>alpha beta</t></a>`,
		`<b><t>alpha</t><t>beta</t></b>`,
	} {
		paths[i] = filepath.Join(dir, []string{"one.xml", "two.xml"}[i])
		if err := os.WriteFile(paths[i], []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, err := OpenCorpus(paths)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.Search("alpha beta", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// one.xml: the <t> leaf; two.xml: the <b> root element of that file.
	wantFiles := map[string]bool{"one.xml": true, "two.xml": true}
	for _, r := range rs {
		delete(wantFiles, c.FileOf(r))
	}
	if len(wantFiles) != 0 {
		t.Errorf("missing results from %v; got %v", wantFiles, rs)
	}
	if f := c.FileOf(Result{Dewey: "1"}); f != "" {
		t.Error("corpus root must have no file")
	}
	if f := c.FileOf(Result{Dewey: "1.99.1"}); f != "" {
		t.Error("out-of-range attribution must be empty")
	}
}
