package xmlsearch

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/gen"
)

// Cancellation and panic-containment tests for the Context entry points.

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func testIndexForCtx(t *testing.T) *Index {
	t.Helper()
	ds := gen.DBLP(0.01, 5)
	idx, err := FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestSearchContextCancelled: an already-cancelled context returns
// context.Canceled from every algorithm without scanning.
func TestSearchContextCancelled(t *testing.T) {
	idx := testIndexForCtx(t)
	for _, algo := range []Algorithm{AlgoJoin, AlgoStack, AlgoIndexLookup} {
		rs, err := idx.SearchContext(cancelledCtx(), "sensor network", SearchOptions{Algorithm: algo})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("algo %d: err = %v, want context.Canceled", algo, err)
		}
		if rs != nil {
			t.Errorf("algo %d: results returned alongside cancellation", algo)
		}
	}
}

// TestTopKContextCancelled is the acceptance criterion: TopKContext with
// an already-cancelled context returns context.Canceled for every top-K
// engine without completing the scan.
func TestTopKContextCancelled(t *testing.T) {
	idx := testIndexForCtx(t)
	for _, algo := range []Algorithm{AlgoJoin, AlgoRDIL, AlgoHybrid, AlgoStack, AlgoIndexLookup} {
		rs, err := idx.TopKContext(cancelledCtx(), "sensor network", 5, SearchOptions{Algorithm: algo})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("algo %d: err = %v, want context.Canceled", algo, err)
		}
		if rs != nil {
			t.Errorf("algo %d: results returned alongside cancellation", algo)
		}
	}
}

func TestTopKStreamContextCancelled(t *testing.T) {
	idx := testIndexForCtx(t)
	called := false
	err := idx.TopKStreamContext(cancelledCtx(), "sensor network", 5, SearchOptions{},
		func(Result) bool { called = true; return true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("callback invoked despite pre-cancelled context")
	}
}

// TestContextDeadline: an expired deadline surfaces as DeadlineExceeded.
func TestContextDeadline(t *testing.T) {
	idx := testIndexForCtx(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := idx.TopKContext(ctx, "sensor network", 5, SearchOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestContextVariantsMatchPlainAPI: with a live context the Context entry
// points return exactly what the plain API returns.
func TestContextVariantsMatchPlainAPI(t *testing.T) {
	idx := testIndexForCtx(t)
	for _, algo := range []Algorithm{AlgoJoin, AlgoStack, AlgoIndexLookup} {
		plain, err1 := idx.Search("sensor network", SearchOptions{Algorithm: algo})
		ctxed, err2 := idx.SearchContext(context.Background(), "sensor network", SearchOptions{Algorithm: algo})
		if err1 != nil || err2 != nil {
			t.Fatalf("algo %d: %v / %v", algo, err1, err2)
		}
		if !reflect.DeepEqual(plain, ctxed) {
			t.Errorf("algo %d: Search and SearchContext disagree", algo)
		}
	}
	for _, algo := range []Algorithm{AlgoJoin, AlgoRDIL, AlgoHybrid} {
		plain, err1 := idx.TopK("sensor network", 5, SearchOptions{Algorithm: algo})
		ctxed, err2 := idx.TopKContext(context.Background(), "sensor network", 5, SearchOptions{Algorithm: algo})
		if err1 != nil || err2 != nil {
			t.Fatalf("algo %d: %v / %v", algo, err1, err2)
		}
		if !reflect.DeepEqual(plain, ctxed) {
			t.Errorf("algo %d: TopK and TopKContext disagree", algo)
		}
	}
}

// TestCorpusContextCancelled covers the corpus wrappers.
func TestCorpusContextCancelled(t *testing.T) {
	c := makeCorpus(t, faultDocA, faultDocB)
	if _, err := c.SearchContext(cancelledCtx(), "sensor", SearchOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("corpus search: %v", err)
	}
	if _, err := c.TopKContext(cancelledCtx(), "sensor", 3, SearchOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("corpus topk: %v", err)
	}
}

// TestPanicContainment: a panic out of the engines (here provoked by an
// Index in an impossible state) surfaces as an error wrapping ErrInternal
// instead of crashing the caller.
func TestPanicContainment(t *testing.T) {
	broken := &Index{} // nil doc and store: any evaluation panics
	if _, err := broken.TopKContext(context.Background(), "sensor", 3, SearchOptions{}); !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if _, err := broken.SearchContext(context.Background(), "sensor", SearchOptions{}); !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if err := broken.TopKStreamContext(context.Background(), "sensor", 3, SearchOptions{}, func(Result) bool { return true }); !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
}
