package xmlsearch

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
)

// Certified-partial and error-taxonomy tests for the resilience layer:
// budgets and deadlines through SearchOptions, the AllowPartial
// settlement, and the public error sentinels.

// assertExactPrefix is the acceptance-criterion check: every Exact=true
// result of a partial answer must appear in the unconstrained true top-K
// at the identical rank, and the Exact results must form a prefix.
func assertExactPrefix(t *testing.T, partial, full []Result, bound float64) int {
	t.Helper()
	exact := 0
	for i, r := range partial {
		if r.Exact != (r.Score >= bound) {
			t.Fatalf("rank %d: Exact=%v inconsistent with score %v vs bound %v", i, r.Exact, r.Score, bound)
		}
		if !r.Exact {
			continue
		}
		if i > exact {
			t.Fatalf("rank %d: Exact result below a non-exact one", i)
		}
		exact++
		if i >= len(full) {
			t.Fatalf("rank %d: Exact result beyond the %d true results", i, len(full))
		}
		if r.Dewey != full[i].Dewey || math.Abs(r.Score-full[i].Score) > 1e-9*(1+math.Abs(full[i].Score)) {
			t.Fatalf("rank %d: Exact result %s (%v) differs from true top-K %s (%v)",
				i, r.Dewey, r.Score, full[i].Dewey, full[i].Score)
		}
	}
	return exact
}

// TestPartialBudgetDifferential sweeps the candidate budget from 1 up to
// the full evaluation's needs: AllowPartial must turn every budget trip
// into a nil-error partial answer whose Exact prefix matches the
// unconstrained run rank-for-rank.
func TestPartialBudgetDifferential(t *testing.T) {
	ds := gen.DBLP(0.05, 7)
	idx, err := FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const k = 10
	// Correlated queries emit results early (the paper's Figure 10(b)/(c)
	// behaviour), so mid-run budget trips catch the engine with proven
	// results in hand — the interesting case for certification.
	queries := []string{"sensor network", "database sensor", "network query processing"}
	for _, q := range ds.Correlated {
		queries = append(queries, strings.Join(q, " "))
	}
	partials, exacts := 0, 0
	for _, query := range queries {
		full, fs, err := idx.TopKTraced(ctx, query, k, SearchOptions{})
		if err != nil {
			t.Fatalf("%q unconstrained: %v", query, err)
		}
		if fs.Partial {
			t.Fatalf("%q unconstrained run claims to be partial", query)
		}
		budgets := []int64{}
		for n := int64(1); n <= 100; n += 3 {
			budgets = append(budgets, n)
		}
		for n := int64(128); n <= 1<<16; n *= 2 {
			budgets = append(budgets, n)
		}
		for _, n := range budgets {
			opt := SearchOptions{MaxCandidates: n, AllowPartial: true}
			rs, qs, err := idx.TopKTraced(ctx, query, k, opt)
			if err != nil {
				t.Fatalf("%q maxcand=%d: %v (AllowPartial must settle budget trips)", query, n, err)
			}
			if !qs.Partial {
				// Budget sufficed: the answer must be the true top-K, all exact.
				if len(rs) != len(full) {
					t.Fatalf("%q maxcand=%d: complete run has %d results, want %d", query, n, len(rs), len(full))
				}
				for i := range rs {
					if !rs[i].Exact || rs[i].Dewey != full[i].Dewey {
						t.Fatalf("%q maxcand=%d rank %d: complete result not exact/equal", query, n, i)
					}
				}
				continue
			}
			partials++
			exacts += assertExactPrefix(t, rs, full, qs.UnseenBound)
		}
	}
	if partials == 0 {
		t.Fatal("no budget ever tripped; the sweep tested nothing")
	}
	if exacts == 0 {
		t.Error("no partial answer ever certified a result; bound is uselessly loose")
	}
}

// TestPartialDeadlineDifferential sweeps tight deadlines: every outcome
// must be either a classified deadline error (expired before the engine
// produced anything certifiable) or a nil-error partial answer whose
// Exact prefix matches the unconstrained run.
func TestPartialDeadlineDifferential(t *testing.T) {
	ds := gen.DBLP(0.1, 3)
	idx, err := FromDocument(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const k = 10
	query := "sensor network database"
	full, _, err := idx.TopKTraced(ctx, query, k, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []time.Duration{time.Nanosecond, time.Microsecond, 20 * time.Microsecond,
		100 * time.Microsecond, time.Millisecond, 50 * time.Millisecond} {
		for rep := 0; rep < 4; rep++ {
			rs, qs, err := idx.TopKTraced(ctx, query, k, SearchOptions{Timeout: d, AllowPartial: true})
			switch {
			case err != nil:
				if !errors.Is(err, ErrDeadlineExceeded) {
					t.Fatalf("timeout=%v: err = %v, want ErrDeadlineExceeded", d, err)
				}
			case qs.Partial:
				assertExactPrefix(t, rs, full, qs.UnseenBound)
			default:
				if len(rs) != len(full) {
					t.Fatalf("timeout=%v: complete run has %d results, want %d", d, len(rs), len(full))
				}
			}
		}
	}
}

// TestErrorTaxonomy pins the public sentinels: deadline expiry and caller
// cancellation are distinct, both still match their context sentinel, and
// budget trips carry ErrBudgetExceeded.
func TestErrorTaxonomy(t *testing.T) {
	idx := testIndexForCtx(t)

	_, err := idx.TopKContext(context.Background(), "sensor network", 5, SearchOptions{Timeout: time.Nanosecond})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("timeout: err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout: err = %v, want to also match context.DeadlineExceeded", err)
	}
	if errors.Is(err, ErrCancelled) {
		t.Errorf("timeout: err = %v must not match ErrCancelled", err)
	}

	_, err = idx.TopKContext(cancelledCtx(), "sensor network", 5, SearchOptions{})
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("cancel: err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancel: err = %v, want to also match context.Canceled", err)
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("cancel: err = %v must not match ErrDeadlineExceeded", err)
	}

	_, err = idx.TopKContext(context.Background(), "sensor network", 5, SearchOptions{MaxCandidates: 1})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("budget: err = %v, want ErrBudgetExceeded", err)
	}

	// Budget trips on engines without partial support surface as errors
	// even with AllowPartial: nothing can be certified.
	_, err = idx.TopKContext(context.Background(), "sensor network", 5,
		SearchOptions{Algorithm: AlgoHybrid, MaxCandidates: 1, AllowPartial: true})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("hybrid budget: err = %v, want ErrBudgetExceeded (no CapPartial)", err)
	}
}

// TestPartialSearchComplete covers the complete-evaluation path (Search,
// join engine): a decoded-bytes budget trip settles into a partial answer
// with nothing falsely certified.
func TestPartialSearchComplete(t *testing.T) {
	idx := testIndexForCtx(t)
	full, err := idx.Search("sensor network", SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range full {
		if !r.Exact {
			t.Fatal("unconstrained result not marked Exact")
		}
	}
	rs, qs, err := idx.SearchTraced(context.Background(), "sensor network",
		SearchOptions{MaxDecodedBytes: 1, AllowPartial: true})
	if err != nil {
		t.Fatalf("AllowPartial must settle the decode-budget trip, got %v", err)
	}
	if !qs.Partial {
		t.Fatal("a 1-byte decode budget cannot complete, yet the answer claims completeness")
	}
	for i, r := range rs {
		if r.Exact && !math.IsInf(qs.UnseenBound, 1) {
			// Exact results (if any) must honor the differential property.
			if i >= len(full) || r.Dewey != full[i].Dewey {
				t.Fatalf("rank %d: exact result %s not at true rank", i, r.Dewey)
			}
		}
		if r.Exact && math.IsInf(qs.UnseenBound, 1) {
			t.Fatalf("rank %d: result certified against an infinite bound", i)
		}
	}
	if m := idx.Metrics().Snapshot().Serving; m.PartialQueries == 0 || m.BudgetDecodedTrips == 0 {
		t.Errorf("serving counters not advanced: %+v", m)
	}
}
